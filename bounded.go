package rlts

import (
	"rlts/internal/baseline/online"
)

// The one-pass error-bounded simplifiers: O(n) time, O(1) working
// memory, and a hard guarantee that the simplification error stays
// within the bound (re-proved against the exact error oracle by the
// internal/check pillar). They are the production rivals of the
// Min-Size search: far faster, at some cost in compression. Library
// extensions beyond the paper's evaluation, like the Min-Size family.

// CISED returns a simplification of t whose SED error is guaranteed to
// stay within bound, in one pass (the synchronous circle intersection
// test of Lin et al., arXiv:1801.05360).
func CISED(t Trajectory, bound float64) (Trajectory, error) {
	kept, err := online.CISED(t, bound)
	if err != nil {
		return nil, err
	}
	return t.Pick(kept), nil
}

// OPERB returns a simplification of t whose PED error is guaranteed to
// stay within bound, in one pass (the directed fitting-function bound
// of Lin et al., arXiv:1702.05597).
func OPERB(t Trajectory, bound float64) (Trajectory, error) {
	kept, err := online.OPERB(t, bound)
	if err != nil {
		return nil, err
	}
	return t.Pick(kept), nil
}
