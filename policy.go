package rlts

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"rlts/internal/core"
	"rlts/internal/storage"
)

// Policy is a trained RLTS policy bound to the options it was trained
// for. Obtain one with Train or LoadPolicy.
type Policy struct {
	t *core.Trained
	r *rand.Rand
}

// TrainConfig holds the training hyper-parameters. The zero value is
// usable: every field defaults to the paper's setting.
type TrainConfig struct {
	LearningRate float64 // Adam learning rate (default 1e-3)
	Gamma        float64 // reward discount (default 0.99)
	Episodes     int     // episodes per trajectory per epoch (default 10)
	Epochs       int     // passes over the training set (default 1)
	Hidden       int     // hidden layer width (default 20)
	WRatio       float64 // training budget as a fraction of |T| (default 0.1)
	Seed         int64   // RNG seed (default 1)
	Workers      int     // parallel rollout workers (default 0 = GOMAXPROCS, 1 = serial); any value trains the same policy
	Entropy      float64 // entropy-bonus coefficient (default 0 = off, as in the paper)
	Log          io.Writer
}

// DefaultTrainConfig returns the paper's hyper-parameters.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{LearningRate: 1e-3, Gamma: 0.99, Episodes: 10, Epochs: 1, Hidden: 20, WRatio: 0.1, Seed: 1}
}

// TrainStats reports what happened during training.
type TrainStats struct {
	EpisodesRun int
	StepsRun    int
	BestReward  float64
	FinalReward float64
}

// Train learns an RLTS policy for the given options over a repository of
// training trajectories. The paper samples 1,000 trajectories of ~1,000
// points and runs 10 episodes per trajectory.
func Train(dataset []Trajectory, opts Options, cfg TrainConfig) (*Policy, TrainStats, error) {
	to := core.DefaultTrainOptions()
	if cfg.LearningRate > 0 {
		to.RL.LearningRate = cfg.LearningRate
	}
	if cfg.Gamma > 0 {
		to.RL.Gamma = cfg.Gamma
	}
	if cfg.Episodes > 0 {
		to.RL.Episodes = cfg.Episodes
	}
	if cfg.Epochs > 0 {
		to.RL.Epochs = cfg.Epochs
	}
	if cfg.Hidden > 0 {
		to.RL.Hidden = cfg.Hidden
	}
	if cfg.WRatio > 0 {
		to.WRatio = cfg.WRatio
	}
	if cfg.Seed != 0 {
		to.RL.Seed = cfg.Seed
	}
	to.RL.Workers = cfg.Workers
	to.RL.Entropy = cfg.Entropy
	to.RL.Log = cfg.Log
	if cfg.Log != nil {
		to.RL.LogEvery = 50
	}
	trained, res, err := core.Train(dataset, opts, to)
	if err != nil {
		return nil, TrainStats{}, err
	}
	stats := TrainStats{
		EpisodesRun: res.EpisodesRun,
		StepsRun:    res.StepsRun,
		BestReward:  res.BestReward,
		FinalReward: res.FinalReward,
	}
	return &Policy{t: trained, r: rand.New(rand.NewSource(to.RL.Seed))}, stats, nil
}

// Options returns the configuration the policy was trained for.
func (p *Policy) Options() Options { return p.t.Opts }

// Internal exposes the underlying trained policy for in-module consumers
// (cmd/rlts-server); external packages cannot name the returned type's
// package and should use the Simplifier interface instead.
func (p *Policy) Internal() *core.Trained { return p.t }

// Name returns the paper's name for the configured algorithm
// (e.g. "RLTS-Skip+").
func (p *Policy) Name() string { return p.t.Opts.Name() }

// Simplifier returns the policy as a Simplifier, using the paper's
// inference mode for its variant: stochastic sampling for the Online
// variant, greedy argmax for the batch variants.
func (p *Policy) Simplifier() Simplifier {
	return funcSimplifier{p.Name(), func(t Trajectory, w int) ([]int, error) {
		if err := checkW(w); err != nil {
			return nil, err
		}
		return p.t.Simplify(t, w, p.r)
	}}
}

// GreedySimplifier returns the policy as a deterministic (argmax)
// Simplifier regardless of variant.
func (p *Policy) GreedySimplifier() Simplifier {
	return funcSimplifier{p.Name(), func(t Trajectory, w int) ([]int, error) {
		if err := checkW(w); err != nil {
			return nil, err
		}
		return p.t.SimplifyGreedy(t, w)
	}}
}

// Save writes the policy (weights + options) to w as JSON.
func (p *Policy) Save(w io.Writer) error { return p.t.Save(w) }

// SaveFile writes the policy to a file atomically: the previous content
// survives intact if the write fails partway.
func (p *Policy) SaveFile(path string) error {
	return storage.WriteAtomic(path, p.t.Save)
}

// LoadPolicy reads a policy written by Save.
func LoadPolicy(r io.Reader) (*Policy, error) {
	t, err := core.LoadTrained(r)
	if err != nil {
		return nil, err
	}
	return &Policy{t: t, r: rand.New(rand.NewSource(1))}, nil
}

// LoadPolicyFile reads a policy from a file.
func LoadPolicyFile(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadPolicy(f)
}

// Stream is the push-based online interface: feed points as a sensor
// produces them; the buffer always holds the current simplification.
// Only policies of the Online variant can stream.
type Stream struct {
	s *core.Streamer
}

// NewStream creates a streaming simplifier with buffer budget w.
func (p *Policy) NewStream(w int) (*Stream, error) {
	if p.t.Opts.Variant != Online {
		return nil, fmt.Errorf("rlts: only Online-variant policies can stream, got %s", p.Name())
	}
	s, err := core.NewStreamer(p.t.Policy, w, p.t.Opts, true, p.r)
	if err != nil {
		return nil, err
	}
	return &Stream{s: s}, nil
}

// Push feeds the next observed point.
func (s *Stream) Push(pt Point) { s.s.Push(pt) }

// Snapshot returns the current simplified trajectory, always ending at
// the latest observation.
func (s *Stream) Snapshot() Trajectory { return s.s.Snapshot() }

// Seen returns how many points have been pushed.
func (s *Stream) Seen() int { return s.s.Seen() }

// BufferSize returns the number of points currently buffered.
func (s *Stream) BufferSize() int { return s.s.BufferSize() }
