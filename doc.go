// Package rlts is a Go implementation of "Trajectory Simplification with
// Reinforcement Learning" (Wang, Long, Cong — ICDE 2021).
//
// It solves the Min-Error trajectory simplification problem: given a
// trajectory of time-stamped points and a storage budget W, keep at most W
// points (always including the endpoints) so that the error of the
// simplified trajectory — under SED, PED, DAD or SAD — is as small as
// possible. Two modes are supported: online (points arrive one by one and
// dropped points are gone; buffer of size W) and batch (the whole
// trajectory is available).
//
// The package exposes:
//
//   - The paper's contribution: the RLTS family of learned simplifiers
//     (RLTS, RLTS-Skip for both modes; RLTS+, RLTS-Skip+, RLTS++ and
//     RLTS-Skip++ for the batch mode), trained with REINFORCE on a
//     repository of trajectories (Train) and applied via Policy.
//   - Every baseline the paper compares against: STTrace, SQUISH and
//     SQUISH-E (online); Bellman, Top-Down, Bottom-Up and Span-Search
//     (batch) — all behind the same Simplifier interface.
//   - The four error measurements and evaluation helpers (Error).
//   - A push-based streaming interface for sensor-side deployment
//     (Policy.NewStream).
//   - Seeded synthetic dataset generators with the statistical character
//     of the paper's Geolife, T-Drive and Truck datasets (Generate).
//
// A minimal end-to-end use:
//
//	train := rlts.Generate(rlts.Geolife(), 1, 100, 500)
//	policy, _, err := rlts.Train(train, rlts.NewOptions(rlts.SED, rlts.Online), rlts.DefaultTrainConfig())
//	if err != nil { ... }
//	simplified, err := policy.Simplifier().Simplify(myTrajectory, len(myTrajectory)/10)
//
// See examples/ for runnable programs and DESIGN.md / EXPERIMENTS.md for
// the reproduction methodology.
package rlts
