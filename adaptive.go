package rlts

import (
	"rlts/internal/adaptive"
)

// Adaptive measure selection — a prototype of the paper's future-work
// direction (§VII): choosing the error measurement per trajectory instead
// of globally.

// TrajectoryFeatures summarizes the dynamics that differentiate the four
// error measures (heading churn, speed dispersion, sampling regularity).
type TrajectoryFeatures = adaptive.Features

// ExtractFeatures computes TrajectoryFeatures for t.
func ExtractFeatures(t Trajectory) TrajectoryFeatures { return adaptive.Extract(t) }

// RecommendMeasure inspects the trajectory's dynamics and recommends the
// error measure whose signal dominates: DAD for turn-heavy movement, SAD
// for stop-and-go speed patterns, SED for irregular sampling, PED
// otherwise.
func RecommendMeasure(t Trajectory) (Measure, TrajectoryFeatures) {
	return adaptive.Recommend(t)
}

// SimplifyBalanced simplifies t under every measure using the given
// per-measure simplifier factory and returns the result minimizing the
// worst normalized error across all four measures, plus the measure that
// produced it.
func SimplifyBalanced(t Trajectory, w int, mk func(Measure) Simplifier) (Measure, Trajectory, error) {
	m, kept, err := adaptive.SelectBalanced(t, w, func(t Trajectory, w int, m Measure) ([]int, error) {
		out, err := mk(m).Simplify(t, w)
		if err != nil {
			return nil, err
		}
		return KeptIndices(t, out)
	})
	if err != nil {
		return 0, nil, err
	}
	return m, t.Pick(kept), nil
}
