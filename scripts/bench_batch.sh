#!/bin/sh
# Regenerates BENCH_batch.json: the batched-inference throughput baseline.
#
# The sweep times nn.Network.ForwardBatch against the per-state Forward
# path and the lockstep core.BatchEngine against sequential core.Simplify.
# Every batched configuration is bit-identical to the single-state path
# (the check harness and internal/core tests enforce this), so the file
# records throughput only; the machine block carries the provenance a
# reader needs to judge the numbers.
set -e
cd "$(dirname "$0")/.."

NUM_CPU=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
MAXPROCS="${GOMAXPROCS:-$NUM_CPU}"
echo "== provenance: num_cpu=$NUM_CPU gomaxprocs=$MAXPROCS =="
if [ "$MAXPROCS" = 1 ]; then
	echo '########################################################################' >&2
	echo "# WARNING: GOMAXPROCS=1 (num_cpu=$NUM_CPU)." >&2
	echo '# Every number this run produces is SINGLE-CORE. Do not publish them' >&2
	echo '# as multi-core results; the per_core_scaling table in the machine' >&2
	echo '# block records what was actually measured.' >&2
	echo '########################################################################' >&2
fi
go run ./cmd/rlts-bench -batch -batch-out BENCH_batch.json
echo "== kernel micro benches (bit-identity + allocation + fastmath contract) =="
go test ./internal/nn -run '^$' -bench 'ForwardSingle|ForwardBatch64|FastTanh' -benchmem
