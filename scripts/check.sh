#!/bin/sh
# Full verification gate: vet, build, and the test suite under the race
# detector (which exercises the parallel trainer and the parallel
# evaluation harness). This is what `make check` runs.
set -e
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
echo "check: OK"
