#!/bin/sh
# Full verification gate: vet, build, the test suite under the race
# detector (which exercises the parallel trainer and the parallel
# evaluation harness), and a short fuzz smoke pass over every fuzz
# target. This is what `make check` runs.
set -e
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...

# FUZZTIME can be raised for a deeper run; 10s per target keeps the gate
# fast while still shaking out regressions in the parsers and handlers.
FUZZTIME="${FUZZTIME:-10s}"
echo "== fuzz smoke ($FUZZTIME per target) =="
go test ./internal/traj -run '^$' -fuzz '^FuzzReadCSV$' -fuzztime "$FUZZTIME"
go test ./internal/traj -run '^$' -fuzz '^FuzzReadPLT$' -fuzztime "$FUZZTIME"
go test ./internal/traj -run '^$' -fuzz '^FuzzFromPoints$' -fuzztime "$FUZZTIME"
go test ./internal/server -run '^$' -fuzz '^FuzzSimplifyHandler$' -fuzztime "$FUZZTIME"
go test ./internal/server -run '^$' -fuzz '^FuzzStatsHandler$' -fuzztime "$FUZZTIME"
echo "check: OK"
