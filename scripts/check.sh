#!/bin/sh
# Full verification gate: vet, build, the test suite under the race
# detector (which exercises the parallel trainer and the parallel
# evaluation harness), a benchmark smoke pass over the metrics hot paths,
# a live /metrics scrape against a real server process, and a short fuzz
# smoke pass over every fuzz target. This is what `make check` runs.
set -e
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...

# The differential/metamorphic harness runs in the suite above at scale 1;
# the gate gives it a deeper, dedicated pass so oracle drift can't hide
# behind a fast default. Deterministic seeds: a failure here reproduces.
echo "== differential harness (internal/check, CHECK_SCALE=${CHECK_SCALE:-4}) =="
CHECK_SCALE="${CHECK_SCALE:-4}" go test -race -count=1 ./internal/check

# Batch-engine differential: the lockstep BatchEngine must be bitwise
# identical to sequential Simplify at every width, both inference modes,
# over the adversarial generator set — plus the engine/eval equality
# tests in their home packages. Scaled by the same CHECK_SCALE knob.
echo "== batch-engine differential (CHECK_SCALE=${CHECK_SCALE:-4}) =="
CHECK_SCALE="${CHECK_SCALE:-4}" go test -race -count=1 -run 'TestBatchEngineDifferential' ./internal/check
go test -race -count=1 -run 'TestBatchEngine|TestForwardBatch|TestRunSetBatched' ./internal/core ./internal/nn ./internal/eval

# FastMath tolerance pillar: the fused approximate kernels against the
# exact path on real decision states — abs/rel bounds on every ProbsBatch
# output, argmax stability on every adversarial family, end-to-end greedy
# kept-index equality — plus the kernel-level contract tests (dense tanh
# sweep, special values, fusion tolerance) in internal/nn. Same
# CHECK_SCALE knob deepens the state coverage.
echo "== fastmath tolerance pillar (CHECK_SCALE=${CHECK_SCALE:-4}) =="
CHECK_SCALE="${CHECK_SCALE:-4}" go test -race -count=1 -run 'TestFastMathTolerance|TestFastCloneIsolation' ./internal/check
go test -race -count=1 -run 'TestFastTanh|TestForwardBatchFast|TestForwardVectorZeroAlloc|TestKernelClone' ./internal/nn

# Durable session store: the spill/rehydrate differential (a streamer
# serialized through the binary codec at adversarial cut points must
# continue bit-identically) plus the server-level durability tests —
# restart bit-identity, corrupt-file quarantine, injected disk failure,
# Close racing live traffic — all under the race detector.
echo "== stream spill/rehydrate pillar (CHECK_SCALE=${CHECK_SCALE:-4}) =="
CHECK_SCALE="${CHECK_SCALE:-4}" go test -race -count=1 -run 'TestSpillRehydrateDifferential' ./internal/check
go test -race -count=1 -run 'TestStreamer(Resume|State)|TestDecodeStreamerState|TestResumeStreamer|TestExportRestore|TestRestore' ./internal/core ./internal/buffer
go test -race -count=1 -run 'TestStream(Restart|LRU|Spill|CloseSpilled|Traversal)|TestServerCloseRacesStreamTraffic' ./internal/server

# Fleet budget pillar: the allocator must distribute exactly the global
# budget deterministically regardless of member ordering, and a rebalance
# against live streamers must never let the fleet's stored-point total
# exceed that budget, even transiently between two resizes. The server
# suite adds the HTTP lifecycle and the spill/restart survival of fleet
# records (allocations rehydrate bit-identically; see TestFleetSurvivesRestart).
echo "== fleet budget pillar (CHECK_SCALE=${CHECK_SCALE:-4}) =="
CHECK_SCALE="${CHECK_SCALE:-4}" go test -race -count=1 -run 'TestFleetAllocateDifferential|TestFleetRebalanceBudgetInvariant' ./internal/check
go test -race -count=1 ./internal/fleet
go test -race -count=1 -run 'TestFleet|TestStreamList' ./internal/server

# Error-bounded pillar: CISED/OPERB kept sets re-scored by the exact
# oracle on every adversarial family (including the overflow-probing
# extreme/huge ones) must never exceed the requested bound, and their
# compression must stay within a small factor of the Min-Size DP. The
# package suites add the degenerate-input contract and the bound=eps
# HTTP routing. Same CHECK_SCALE knob deepens the sweep.
echo "== error-bounded pillar (CHECK_SCALE=${CHECK_SCALE:-4}) =="
CHECK_SCALE="${CHECK_SCALE:-4}" go test -race -count=1 -run 'TestBoundedOnePass' ./internal/check
go test -race -count=1 -run 'TestBounded|TestSearchBudget' ./internal/baseline/online ./internal/minsize
go test -race -count=1 -run 'TestBounded|TestBudgetConflict' ./internal/server

# Dirty-ingest pillar: repair output must always satisfy the strict
# FromPoints contract (every corruption family x every profile x every
# config), clean input must pass through bit-identically, and chunking /
# export-resume cuts must be invisible — plus the repairer unit suite,
# the hostile generator families, and the server-level wiring (one-shot,
# batch, stream, spill-envelope v2 restart bit-identity, classified
# reject codes). Same CHECK_SCALE knob deepens the sweeps.
echo "== dirty-ingest repair pillar (CHECK_SCALE=${CHECK_SCALE:-4}) =="
CHECK_SCALE="${CHECK_SCALE:-4}" go test -race -count=1 -run 'TestRepair' ./internal/check
go test -race -count=1 -run 'TestRepair|TestResumeRepairer|TestValidateDuplicateTime|TestDownsampleDirtyTail|TestCleanFloorsMinPoints' ./internal/traj
go test -race -count=1 -run 'TestDirty|TestFamilies|TestEveryFamilyRepairs|TestCorrupt|TestCompose|TestOutlierInStop|TestDupOfOutlier' ./internal/gen
go test -race -count=1 -run 'TestSimplifyRepair|TestBatchRepair|TestStreamRepair|TestStreamRejectCodes|TestSpillEnvelopeV1|TestPointsErrorCode' ./internal/server

# Crash-restart smoke with the real binary: boot with a spill dir, open a
# session and push half a stream, SIGTERM (the drain path spills it),
# restart against the same directory, push the rest and make sure the
# rehydrated session answers with everything it saw.
echo "== crash-restart smoke =="
SPILL_PORT="${SPILL_PORT:-18322}"
SPILL_DIR="$(mktemp -d /tmp/rlts-spill-check.XXXXXX)"
go build -o /tmp/rlts-server-check ./cmd/rlts-server
/tmp/rlts-server-check -addr "127.0.0.1:$SPILL_PORT" -spill-dir "$SPILL_DIR" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$SPILL_DIR"' EXIT
ok=""
for i in 1 2 3 4 5 6 7 8 9 10; do
    if curl -fsS "http://127.0.0.1:$SPILL_PORT/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.5
done
[ -n "$ok" ] || { echo "crash-restart: server never answered on :$SPILL_PORT"; exit 1; }
SID=$(curl -fsS -X POST "http://127.0.0.1:$SPILL_PORT/v1/stream" \
    -d '{"measure":"SED","w":5}' | sed 's/.*"id":"\([0-9a-f]*\)".*/\1/')
[ -n "$SID" ] || { echo "crash-restart: no session id"; exit 1; }
curl -fsS -X POST "http://127.0.0.1:$SPILL_PORT/v1/stream/$SID/points" \
    -d '{"points":[[0,0,0],[1,0,1],[2,5,2],[3,0,3]]}' >/dev/null
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
ls "$SPILL_DIR"/*.sess >/dev/null 2>&1 || { echo "crash-restart: no spill file after SIGTERM"; exit 1; }
/tmp/rlts-server-check -addr "127.0.0.1:$SPILL_PORT" -spill-dir "$SPILL_DIR" &
SERVER_PID=$!
ok=""
for i in 1 2 3 4 5 6 7 8 9 10; do
    if curl -fsS "http://127.0.0.1:$SPILL_PORT/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.5
done
[ -n "$ok" ] || { echo "crash-restart: restarted server never answered"; exit 1; }
curl -fsS -X POST "http://127.0.0.1:$SPILL_PORT/v1/stream/$SID/points" \
    -d '{"points":[[4,0,4],[5,2,5]]}' >/dev/null || {
    echo "crash-restart: push to rehydrated session failed"; exit 1; }
SNAP=$(curl -fsS "http://127.0.0.1:$SPILL_PORT/v1/stream/$SID")
echo "$SNAP" | grep -q '"seen":6' || {
    echo "crash-restart: rehydrated session lost points: $SNAP"; exit 1; }
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
rm -rf "$SPILL_DIR"
trap - EXIT
echo "crash-restart: OK"

# One iteration per obs benchmark: catches compile errors and gross
# regressions (a panicking Observe, an encoder that hangs) without
# turning the gate into a benchmark run.
echo "== obs bench smoke (1 iteration each) =="
go test ./internal/obs -run '^$' -bench . -benchtime 1x

# Live scrape check: boot the real server, curl /metrics, and make sure
# the exposition output mentions our metric namespace. Guards the whole
# wiring chain (registry -> handler -> route), not just the encoder.
echo "== /metrics scrape check =="
SCRAPE_PORT="${SCRAPE_PORT:-18321}"
go build -o /tmp/rlts-server-check ./cmd/rlts-server
/tmp/rlts-server-check -addr "127.0.0.1:$SCRAPE_PORT" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
# Wait for readiness on /healthz; that request also seeds the request
# counter so the scrape below has a series to find (the middleware records
# a request after its response is written, so a first scrape never shows
# itself).
ok=""
for i in 1 2 3 4 5 6 7 8 9 10; do
    if curl -fsS "http://127.0.0.1:$SCRAPE_PORT/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.5
done
[ -n "$ok" ] || { echo "scrape check: server never answered on :$SCRAPE_PORT"; exit 1; }
curl -fsS "http://127.0.0.1:$SCRAPE_PORT/metrics" >/tmp/rlts-scrape.txt
grep -q '^rlts_http_requests_total' /tmp/rlts-scrape.txt || {
    echo "scrape check: no rlts_http_requests_total in /metrics output"
    cat /tmp/rlts-scrape.txt
    exit 1
}
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
echo "scrape check: OK"

# FUZZTIME can be raised for a deeper run; 10s per target keeps the gate
# fast while still shaking out regressions in the parsers and handlers.
FUZZTIME="${FUZZTIME:-10s}"
echo "== fuzz smoke ($FUZZTIME per target) =="
go test ./internal/traj -run '^$' -fuzz '^FuzzReadCSV$' -fuzztime "$FUZZTIME"
go test ./internal/traj -run '^$' -fuzz '^FuzzReadPLT$' -fuzztime "$FUZZTIME"
go test ./internal/traj -run '^$' -fuzz '^FuzzFromPoints$' -fuzztime "$FUZZTIME"
go test ./internal/traj -run '^$' -fuzz '^FuzzRepair$' -fuzztime "$FUZZTIME"
go test ./internal/server -run '^$' -fuzz '^FuzzSimplifyHandler$' -fuzztime "$FUZZTIME"
go test ./internal/server -run '^$' -fuzz '^FuzzStatsHandler$' -fuzztime "$FUZZTIME"
go test ./internal/server -run '^$' -fuzz '^FuzzSessionDecode$' -fuzztime "$FUZZTIME"
echo "check: OK"
