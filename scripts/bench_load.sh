#!/bin/sh
# Sustained-load serving benchmark: the real HTTP stack under concurrent
# batch-simplify traffic, exact kernels then FastMath kernels, reporting
# saturated-core trajectories/s and request latency percentiles. The
# short embedded pair in BENCH_batch.json comes from the same harness;
# this script runs it long enough (10s per mode by default, LOAD_DURATION
# to override) for steady-state numbers.
set -e
cd "$(dirname "$0")/.."

NUM_CPU=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
MAXPROCS="${GOMAXPROCS:-$NUM_CPU}"
DUR="${LOAD_DURATION:-10s}"
echo "== provenance: num_cpu=$NUM_CPU gomaxprocs=$MAXPROCS duration=$DUR/mode =="
if [ "$MAXPROCS" = 1 ]; then
	echo '########################################################################' >&2
	echo "# WARNING: GOMAXPROCS=1 (num_cpu=$NUM_CPU)." >&2
	echo '# Sustained-load QPS below is SINGLE-CORE capacity. Do not publish' >&2
	echo '# it as a multi-core figure.' >&2
	echo '########################################################################' >&2
fi
echo "== exact kernels =="
go run ./cmd/rlts-bench -load -load-duration "$DUR"
echo "== fastmath kernels (?fast=1) =="
go run ./cmd/rlts-bench -load -load-duration "$DUR" -load-fast
