#!/bin/sh
# Regenerates BENCH_rollout.json: the rollout-engine benchmark baseline.
#
# BenchmarkTrainParallel trains the same policy (bit-identical output) at
# workers=1/2/4; the speedup column is only meaningful when GOMAXPROCS > 1.
# The micro benches document the zero-allocation hot paths.
set -e
cd "$(dirname "$0")/.."

# Provenance: the baseline file records both values so a reader can tell
# whether the workers sweep was measured on real parallel hardware.
NUM_CPU=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
MAXPROCS="${GOMAXPROCS:-$NUM_CPU}"
echo "== provenance: num_cpu=$NUM_CPU gomaxprocs=$MAXPROCS =="
if [ "$MAXPROCS" = 1 ]; then
	echo '########################################################################' >&2
	echo "# WARNING: GOMAXPROCS=1 (num_cpu=$NUM_CPU)." >&2
	echo '# The workers sweep below is flat by construction on one scheduler' >&2
	echo '# thread; record these numbers as single-core provenance only.' >&2
	echo '########################################################################' >&2
fi
echo "== TrainParallel =="
go test . -run xxx -bench BenchmarkTrainParallel -benchmem -benchtime 3x
echo "== Hot-path allocation benches =="
go test ./internal/rl/ -run xxx -bench 'Rollout|ProbsInto' -benchmem
go test ./internal/core/ -run xxx -bench BenchmarkBuildState -benchmem
go test ./internal/buffer/ -run xxx -bench BenchmarkKLowest -benchmem
echo
echo "Update BENCH_rollout.json with the numbers above, including the"
echo "machine block's num_cpu=$NUM_CPU and gomaxprocs=$MAXPROCS; on a"
echo "single-core runner the workers sweep is flat by construction."
