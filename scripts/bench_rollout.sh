#!/bin/sh
# Regenerates BENCH_rollout.json: the rollout-engine benchmark baseline.
#
# BenchmarkTrainParallel trains the same policy (bit-identical output) at
# workers=1/2/4; the speedup column is only meaningful when GOMAXPROCS > 1.
# The micro benches document the zero-allocation hot paths.
set -e
cd "$(dirname "$0")/.."

echo "== TrainParallel (GOMAXPROCS=$(go env GOMAXPROCS 2>/dev/null || nproc)) =="
go test . -run xxx -bench BenchmarkTrainParallel -benchmem -benchtime 3x
echo "== Hot-path allocation benches =="
go test ./internal/rl/ -run xxx -bench 'Rollout|ProbsInto' -benchmem
go test ./internal/core/ -run xxx -bench BenchmarkBuildState -benchmem
go test ./internal/buffer/ -run xxx -bench BenchmarkKLowest -benchmem
echo
echo "Update BENCH_rollout.json with the numbers above and the machine's"
echo "CPU count; on a single-core runner the workers sweep is flat by"
echo "construction."
