package rlts

import (
	"rlts/internal/query"
)

// Query helpers: the workloads that motivate simplification. They run on
// raw and simplified trajectories alike, so the quality cost of a
// simplification can be measured directly (see the "query" experiment of
// cmd/rlts-bench).

// Rect is an axis-aligned spatial region for range queries.
type Rect = query.Rect

// PositionAt returns the interpolated position of the object at time ts,
// clamped to the trajectory's time span.
func PositionAt(t Trajectory, ts float64) Point { return query.PositionAt(t, ts) }

// WithinDuring reports whether the object's interpolated path enters r at
// any time within [t1, t2].
func WithinDuring(t Trajectory, r Rect, t1, t2 float64) bool {
	return query.WithinDuring(t, r, t1, t2)
}

// NearestApproach returns the minimum distance from the object's path to
// the query location q and the time at which it occurs.
func NearestApproach(t Trajectory, q Point) (dist, at float64) {
	return query.NearestApproach(t, q)
}

// DTW returns the dynamic-time-warping distance between two trajectories.
func DTW(a, b Trajectory) float64 { return query.DTW(a, b) }

// DiscreteFrechet returns the discrete Fréchet distance between two
// trajectories.
func DiscreteFrechet(a, b Trajectory) float64 { return query.DiscreteFrechet(a, b) }
