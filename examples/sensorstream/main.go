// Sensorstream: the paper's online scenario. A GPS sensor with a tiny
// buffer receives points one at a time; RLTS-Skip decides, per point,
// whether to drop a buffered point or skip incoming ones. The example
// streams a simulated truck trip through the policy and periodically
// reports the state of the buffer, then compares the final simplification
// with SQUISH-E run over the same stream.
//
//	go run ./examples/sensorstream
package main

import (
	"fmt"
	"log"

	"rlts"
)

func main() {
	// Train an online RLTS-Skip policy (J=2 skip actions, as in the paper).
	opts := rlts.NewOptions(rlts.SED, rlts.Online)
	opts.J = 2
	cfg := rlts.DefaultTrainConfig()
	cfg.Epochs = 3
	train := rlts.Generate(rlts.Truck(), 7, 60, 300)
	policy, _, err := rlts.Train(train, opts, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The sensor: a 2,000-point truck trip, buffer budget 64 points.
	trip := rlts.Generate(rlts.Truck(), 1234, 1, 2000)[0]
	const budget = 64

	stream, err := policy.NewStream(budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d points through a %d-point buffer with %s\n",
		trip.Len(), budget, policy.Name())
	for i, p := range trip {
		stream.Push(p)
		if (i+1)%500 == 0 {
			snap := stream.Snapshot()
			e, err := rlts.Error(rlts.SED, trip[:i+1], snap)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  after %4d points: buffer %d/%d, running SED error %.3f\n",
				i+1, stream.BufferSize(), budget, e)
		}
	}
	final := stream.Snapshot()
	rltsErr, err := rlts.Error(rlts.SED, trip, final)
	if err != nil {
		log.Fatal(err)
	}

	// The baseline sees the same stream (its API is slice-driven, but it
	// processes points strictly left to right, so this is the same mode).
	base, err := rlts.SQUISHE(rlts.SED).Simplify(trip, budget)
	if err != nil {
		log.Fatal(err)
	}
	baseErr, err := rlts.Error(rlts.SED, trip, base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal simplifications of %d points:\n", trip.Len())
	fmt.Printf("  %-10s %3d points, SED error %.3f\n", policy.Name(), final.Len(), rltsErr)
	fmt.Printf("  %-10s %3d points, SED error %.3f\n", "SQUISH-E", base.Len(), baseErr)
}
