// Queryimpact: the motivation experiment of the paper's introduction —
// simplification exists to cut storage and query cost. This example
// simplifies a fleet 10x with the embedded pretrained RLTS+ policy and
// with Uniform sampling, then compares how well three query types answer
// on the compressed data: position-at-time, range queries and trajectory
// similarity (DTW).
//
//	go run ./examples/queryimpact
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"rlts"
	"rlts/pretrained"
)

func main() {
	policy, err := pretrained.Load(rlts.SED, rlts.Plus)
	if err != nil {
		log.Fatal(err)
	}
	fleet := rlts.Generate(rlts.Geolife(), 4242, 15, 800)
	algos := []rlts.Simplifier{policy.Simplifier(), rlts.Uniform()}

	fmt.Println("10x compression; query answers vs the raw data:")
	for _, a := range algos {
		r := rand.New(rand.NewSource(7))
		var posErr, dtwRel float64
		var posProbes int
		var agree, rangeProbes int
		for _, t := range fleet {
			s, err := a.Simplify(t, t.Len()/10)
			if err != nil {
				log.Fatal(err)
			}
			t0, t1 := t[0].T, t[t.Len()-1].T
			for p := 0; p < 30; p++ {
				ts := t0 + r.Float64()*(t1-t0)
				d := dist(rlts.PositionAt(t, ts), rlts.PositionAt(s, ts))
				posErr += d
				posProbes++
			}
			for p := 0; p < 10; p++ {
				ts := t0 + r.Float64()*(t1-t0)
				c := rlts.PositionAt(t, ts)
				half := 50.0
				rect := rlts.Rect{MinX: c.X - half, MinY: c.Y - half, MaxX: c.X + half, MaxY: c.Y + half}
				w := (t1 - t0) * 0.05
				qs := t0 + r.Float64()*(t1-t0-w)
				if rlts.WithinDuring(t, rect, qs, qs+w) == rlts.WithinDuring(s, rect, qs, qs+w) {
					agree++
				}
				rangeProbes++
			}
			// Similarity self-distance: DTW(raw, simplified) normalized by
			// path length approximates the similarity distortion.
			dtwRel += rlts.DTW(t, s) / float64(t.Len())
		}
		fmt.Printf("  %-10s mean position error %6.2fm   range agreement %5.1f%%   DTW distortion %6.2fm/pt\n",
			a.Name(),
			posErr/float64(posProbes),
			100*float64(agree)/float64(rangeProbes),
			dtwRel/float64(len(fleet)))
	}
}

func dist(a, b rlts.Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}
