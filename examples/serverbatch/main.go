// Serverbatch: the paper's batch scenario. A server holds accumulated
// trajectories and wants to shrink storage to 10% while keeping query
// error low. The example trains RLTS+ policies for all four error
// measures and pits them against Top-Down and Bottom-Up on a held-out
// fleet of taxi trips, printing a Figure-4-style comparison.
//
//	go run ./examples/serverbatch
package main

import (
	"fmt"
	"log"

	"rlts"
)

func main() {
	cfg := rlts.DefaultTrainConfig()
	cfg.Epochs = 3
	train := rlts.Generate(rlts.TDrive(), 21, 50, 300)
	fleet := rlts.Generate(rlts.TDrive(), 2100, 20, 800)
	const ratio = 0.1

	fmt.Printf("storage reduction to %.0f%% on %d trajectories (T-Drive profile)\n\n",
		ratio*100, len(fleet))
	fmt.Printf("%-8s  %-12s  %-12s\n", "measure", "algorithm", "mean error")
	for _, m := range rlts.Measures {
		policy, _, err := rlts.Train(train, rlts.NewOptions(m, rlts.Plus), cfg)
		if err != nil {
			log.Fatal(err)
		}
		algos := []rlts.Simplifier{
			policy.Simplifier(),
			rlts.TopDown(m),
			rlts.BottomUp(m),
		}
		if m == rlts.DAD {
			algos = append(algos, rlts.SpanSearch())
		}
		for _, a := range algos {
			var sum float64
			for _, t := range fleet {
				w := int(ratio * float64(t.Len()))
				s, err := a.Simplify(t, w)
				if err != nil {
					log.Fatal(err)
				}
				e, err := rlts.Error(m, t, s)
				if err != nil {
					log.Fatal(err)
				}
				sum += e
			}
			fmt.Printf("%-8s  %-12s  %.4f\n", m, a.Name(), sum/float64(len(fleet)))
		}
		fmt.Println()
	}
}
