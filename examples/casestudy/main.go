// Casestudy: reproduces Figure 7 — one raw trajectory (blue) with its
// simplifications (red dashed) by RLTS and the online baselines, rendered
// to an SVG per algorithm with the SED error in the caption.
//
//	go run ./examples/casestudy [-o DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"

	"rlts"
	"rlts/internal/viz"
)

func main() {
	outDir := flag.String("o", ".", "output directory for the SVG files")
	flag.Parse()

	cfg := rlts.DefaultTrainConfig()
	cfg.Epochs = 3
	train := rlts.Generate(rlts.Geolife(), 31, 60, 300)
	policy, _, err := rlts.Train(train, rlts.NewOptions(rlts.SED, rlts.Online), cfg)
	if err != nil {
		log.Fatal(err)
	}

	tr := rlts.Generate(rlts.Geolife(), 777, 1, 600)[0]
	w := tr.Len() / 10

	algos := []rlts.Simplifier{
		policy.Simplifier(),
		rlts.STTrace(rlts.SED),
		rlts.SQUISH(rlts.SED),
		rlts.SQUISHE(rlts.SED),
	}
	fmt.Printf("case study: %d-point trajectory, W=%d\n", tr.Len(), w)
	for _, a := range algos {
		s, err := a.Simplify(tr, w)
		if err != nil {
			log.Fatal(err)
		}
		e, err := rlts.Error(rlts.SED, tr, s)
		if err != nil {
			log.Fatal(err)
		}
		fig := viz.NewFigure(tr, fmt.Sprintf("eps = %.3f; raw %d points, simplified %d", e, tr.Len(), s.Len()))
		fig.AddOverlay(s, a.Name())
		name := strings.ToLower(strings.ReplaceAll(a.Name(), "-", ""))
		path := filepath.Join(*outDir, fmt.Sprintf("casestudy_%s.svg", name))
		if err := fig.SaveSVG(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s SED error %.3f -> %s\n", a.Name(), e, path)
	}
}
