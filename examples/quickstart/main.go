// Quickstart: generate synthetic GPS data, train a small RLTS policy,
// simplify a held-out trajectory and compare against a classic baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rlts"
)

func main() {
	// 1. A training repository: 60 Geolife-like trajectories of 300 points.
	train := rlts.Generate(rlts.Geolife(), 1, 60, 300)

	// 2. Learn an online-mode policy for the SED measure. A few epochs on
	// this small repository takes seconds; real deployments train longer.
	cfg := rlts.DefaultTrainConfig()
	cfg.Epochs = 3
	policy, stats, err := rlts.Train(train, rlts.NewOptions(rlts.SED, rlts.Online), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s: %d episodes, %d transitions\n",
		policy.Name(), stats.EpisodesRun, stats.StepsRun)

	// 3. Simplify a held-out trajectory to 10% of its size.
	target := rlts.Generate(rlts.Geolife(), 99, 1, 1000)[0]
	w := target.Len() / 10
	simplified, err := policy.Simplifier().Simplify(target, w)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare against SQUISH-E, the strongest online baseline.
	baseline, err := rlts.SQUISHE(rlts.SED).Simplify(target, w)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, s rlts.Trajectory) {
		e, err := rlts.Error(rlts.SED, target, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s kept %4d/%d points, SED error %.3f\n", name, s.Len(), target.Len(), e)
	}
	report(policy.Name(), simplified)
	report("SQUISH-E", baseline)
}
