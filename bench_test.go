package rlts

import (
	"fmt"
	"math/rand"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/eval"
	"rlts/internal/gen"
	"rlts/internal/nn"
	"rlts/internal/rl"
)

// ---------------------------------------------------------------------------
// Paper reproduction benches: one per table and figure, running the same
// experiment harness as cmd/rlts-bench at quick scale. A benchmark
// iteration is a full experiment (including policy training where the
// experiment needs it); run `go run ./cmd/rlts-bench -exp ID -scale
// default` for the full-size tables.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := eval.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ctx := eval.NewContext(eval.QuickScale(), 1, nil)
		tb, err := e.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1DatasetStats(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkExpBellman(b *testing.B)         { benchExperiment(b, "bellman") }
func BenchmarkFig3Variants(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4Effectiveness(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkExpPolicyAblation(b *testing.B)  { benchExperiment(b, "policy") }
func BenchmarkExpVaryK(b *testing.B)           { benchExperiment(b, "k") }
func BenchmarkExpVaryJ(b *testing.B)           { benchExperiment(b, "j") }
func BenchmarkFig5Efficiency(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkExpScalability(b *testing.B)     { benchExperiment(b, "scale") }
func BenchmarkFig6VaryW(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7CaseStudy(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkTable2TrainingTime(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig8TrainingCost(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkExpInference(b *testing.B)       { benchExperiment(b, "infer") }
func BenchmarkExpQueryImpact(b *testing.B)     { benchExperiment(b, "query") }
func BenchmarkExpFleet(b *testing.B)           { benchExperiment(b, "fleet") }
func BenchmarkExpNoiseRobustness(b *testing.B) { benchExperiment(b, "noise") }
func BenchmarkExpStorageCost(b *testing.B)     { benchExperiment(b, "storage") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: the per-point costs behind the efficiency claims.
// ---------------------------------------------------------------------------

func benchPolicy(b *testing.B, opts core.Options) *rl.Policy {
	b.Helper()
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 20, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkRLTSPerPoint measures the online per-point decision cost
// (state build + network inference + drop + repair), the quantity Figure
// 5 reports for the online mode.
func BenchmarkRLTSPerPoint(b *testing.B) {
	opts := core.DefaultOptions(errm.SED, core.Online)
	p := benchPolicy(b, opts)
	tr := gen.New(gen.Truck(), 1).Trajectory(10000)
	w := 1000
	b.ResetTimer()
	processed := 0
	for i := 0; i < b.N; i += len(tr) - w {
		kept, err := core.Simplify(p, tr, w, opts, false, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = kept
		processed += len(tr) - w
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(processed), "ns/point")
}

// BenchmarkSQUISHEPerPoint is the baseline counterpart of
// BenchmarkRLTSPerPoint.
func BenchmarkSQUISHEPerPoint(b *testing.B) {
	tr := gen.New(gen.Truck(), 1).Trajectory(10000)
	w := 1000
	b.ResetTimer()
	processed := 0
	for i := 0; i < b.N; i += len(tr) - w {
		s, err := SQUISHE(SED).Simplify(tr, w)
		if err != nil {
			b.Fatal(err)
		}
		_ = s
		processed += len(tr) - w
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(processed), "ns/point")
}

// BenchmarkBottomUp measures the batch baseline on a mid-size trajectory.
func BenchmarkBottomUp(b *testing.B) {
	tr := gen.New(gen.Truck(), 1).Trajectory(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BottomUp(SED).Simplify(tr, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRLTSPlusBatch measures RLTS+ on the same workload as
// BenchmarkBottomUp.
func BenchmarkRLTSPlusBatch(b *testing.B) {
	opts := core.DefaultOptions(errm.SED, core.Plus)
	p := benchPolicy(b, opts)
	tr := gen.New(gen.Truck(), 1).Trajectory(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simplify(p, tr, 500, opts, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyForward measures one policy-network inference.
func BenchmarkPolicyForward(b *testing.B) {
	p := benchPolicy(b, core.DefaultOptions(errm.SED, core.Online))
	state := []float64{0.1, 0.5, 1.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Probs(state, nil, false)
	}
}

// BenchmarkTrainingStep measures REINFORCE throughput in transitions per
// second (the paper's 10M-transition training budget).
func BenchmarkTrainingStep(b *testing.B) {
	ds := gen.New(gen.Geolife(), 1).Dataset(4, 200)
	opts := core.DefaultOptions(errm.SED, core.Online)
	to := core.DefaultTrainOptions()
	to.RL.Episodes = 2
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i += steps {
		_, res, err := core.Train(ds, opts, to)
		if err != nil {
			b.Fatal(err)
		}
		steps = res.StepsRun
		if steps == 0 {
			b.Fatal("no steps run")
		}
	}
}

// BenchmarkTrainParallel measures one full training run at each worker
// count. The policy produced is bit-identical across the sub-benchmarks
// (see rl.TrainConfig.Workers); only the wall-clock should change, and
// only on a multi-core runner — scripts/bench_rollout.sh records the
// numbers with the machine's GOMAXPROCS into BENCH_rollout.json.
func BenchmarkTrainParallel(b *testing.B) {
	ds := gen.New(gen.Geolife(), 1).Dataset(8, 300)
	opts := core.DefaultOptions(errm.SED, core.Online)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			to := core.DefaultTrainOptions()
			to.RL.Episodes = 8
			to.RL.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Train(ds, opts, to); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkErrorComputation measures the evaluation-side full-trajectory
// error computation.
func BenchmarkErrorComputation(b *testing.B) {
	tr := gen.New(gen.Geolife(), 1).Trajectory(5000)
	kept, err := BottomUp(SED).Simplify(tr, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Error(SED, tr, kept); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures the synthetic data generator.
func BenchmarkGenerate(b *testing.B) {
	g := gen.New(gen.Geolife(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Trajectory(1000)
	}
}

// BenchmarkNNForwardBackward measures a full gradient step of the policy
// network.
func BenchmarkNNForwardBackward(b *testing.B) {
	spec := nn.MLPSpec{In: 3, Hidden: []int{20}, Out: 3, BatchNorm: true, Activation: "tanh"}
	net, err := nn.NewMLP(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.1, -0.3, 0.7}
	grad := []float64{0.5, -0.25, -0.25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
		net.Backward(grad)
	}
}
