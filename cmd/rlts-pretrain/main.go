// Command rlts-pretrain regenerates the policy files embedded by the
// pretrained package: RLTS (online) and RLTS+ (batch) for each of the
// four error measures, trained on the synthetic Geolife profile at the
// default benchmark scale.
//
//	go run ./cmd/rlts-pretrain -o pretrained/data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/obs"
	"rlts/internal/storage"
)

func main() {
	var (
		out    = flag.String("o", "pretrained/data", "output directory")
		count  = flag.Int("count", 60, "training trajectories")
		length = flag.Int("len", 1000, "points per training trajectory")
		epochs = flag.Int("epochs", 5, "training epochs")
		seed    = flag.Int64("seed", 1, "seed")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.CommandLogger(os.Stderr, "rlts-pretrain", false, *logJSON)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	ds := gen.New(gen.Geolife(), *seed).Dataset(*count, *length)
	for _, variant := range []struct {
		v    core.Variant
		name string
	}{{core.Online, "online"}, {core.Plus, "plus"}} {
		for _, m := range errm.Measures {
			opts := core.DefaultOptions(m, variant.v)
			to := core.DefaultTrainOptions()
			to.RL.Epochs = *epochs
			to.RL.Seed = *seed
			start := time.Now()
			trained, res, err := core.Train(ds, opts, to)
			if err != nil {
				fail(err)
			}
			path := filepath.Join(*out, variant.name+"_"+strings.ToLower(m.String())+".json")
			if err := storage.WriteAtomic(path, trained.Save); err != nil {
				fail(err)
			}
			logger.Info("policy written", "path", path, "transitions", res.StepsRun,
				"elapsed", time.Since(start).Round(time.Millisecond).String())
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rlts-pretrain: %v\n", err)
	os.Exit(1)
}
