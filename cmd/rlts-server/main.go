// Command rlts-server runs the trajectory simplification HTTP service
// with the embedded pretrained policies loaded (RLTS and RLTS+ for all
// four measures) alongside every heuristic baseline.
//
//	rlts-server -addr :8080
//	curl -s localhost:8080/v1/algorithms
//	curl -s -X POST localhost:8080/v1/simplify -d '{
//	  "algorithm": "rlts+", "measure": "SED", "ratio": 0.1,
//	  "points": [[0,0,0],[1,0,1],[2,5,2],[3,0,3],[4,0,4]]}'
//	curl -s localhost:8080/metrics          # Prometheus text format
//
// Streaming sessions (online variant only):
//
//	curl -s -X POST localhost:8080/v1/stream -d '{"measure":"SED","w":50}'
//	curl -s -X POST localhost:8080/v1/stream/ID/points -d '{"points":[[0,0,0],[1,0,1]]}'
//	curl -s localhost:8080/v1/stream/ID     # snapshot
//	curl -s -X DELETE localhost:8080/v1/stream/ID
//
// Fleets (a shared storage budget across many sessions; see DESIGN.md §15):
//
//	curl -s -X POST localhost:8080/v1/fleet -d '{"budget":500,"strategy":"error-greedy"}'
//	curl -s -X POST localhost:8080/v1/fleet/FID/attach -d '{"session":"ID"}'
//	curl -s -X POST localhost:8080/v1/fleet/FID/rebalance
//	curl -s localhost:8080/v1/fleet/FID     # allocation + per-member errors
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlts"
	"rlts/internal/core"
	"rlts/internal/obs"
	"rlts/internal/server"
	"rlts/pretrained"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxConc    = flag.Int("max-concurrent", server.DefaultMaxConcurrent, "simultaneous requests before 429 load shedding (negative = unlimited)")
		reqTO      = flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request deadline (negative = none)")
		maxPts     = flag.Int("max-points", server.DefaultMaxPoints, "largest trajectory accepted per request (negative = unlimited)")
		drain      = flag.Duration("drain-timeout", server.DefaultDrainTimeout, "how long in-flight requests may finish after SIGTERM")
		streamTTL  = flag.Duration("stream-ttl", server.DefaultStreamTTL, "evict streaming sessions idle longer than this (negative = never)")
		maxStreams = flag.Int("max-streams", server.DefaultMaxStreams, "concurrently open streaming sessions before 429 (negative = unlimited)")
		spillDir   = flag.String("spill-dir", "", "directory for durable session spill; empty = sessions are memory-only")
		maxHot     = flag.Int("max-hot-sessions", server.DefaultMaxHotSessions, "sessions kept in memory before cold ones spill to -spill-dir (negative = spill only on shutdown)")
		shards     = flag.Int("shards", server.DefaultStreamShards, "lock shards for the streaming session store")
		fleetEvery = flag.Duration("fleet-rebalance", 0, "rebalance every fleet's budget allocation on this cadence (0 = only on explicit POST .../rebalance)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		noFast     = flag.Bool("disable-fast", false, "refuse ?fast=1 FastMath kernels; every request runs exact")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		verbose    = flag.Bool("v", false, "log every request (Debug level)")
	)
	flag.Parse()
	logger := obs.CommandLogger(os.Stderr, "rlts-server", *verbose, *logJSON)

	var policies []*core.Trained
	for _, v := range []rlts.Variant{rlts.Online, rlts.Plus} {
		for _, m := range rlts.Measures {
			p, err := pretrained.Load(m, v)
			if err != nil {
				logger.Error("loading pretrained policy", "variant", v, "measure", m, "err", err)
				os.Exit(1)
			}
			policies = append(policies, trainedOf(p))
		}
	}
	cfg := server.Config{
		MaxConcurrent:       *maxConc,
		RequestTimeout:      *reqTO,
		MaxPoints:           *maxPts,
		StreamTTL:           *streamTTL,
		MaxStreams:          *maxStreams,
		SpillDir:            *spillDir,
		MaxHotSessions:      *maxHot,
		StreamShards:        *shards,
		FleetRebalanceEvery: *fleetEvery,
		EnablePprof:         *pprofOn,
		DisableFast:         *noFast,
		Logger:              logger,
	}
	sv := server.NewWith(policies, cfg)
	defer sv.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           sv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
	}
	// SIGTERM/SIGINT stop accepting connections and drain in-flight
	// requests instead of dropping them mid-simplification.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("listening", "addr", *addr, "policies", len(policies), "pprof", *pprofOn)
	if err := server.Serve(ctx, srv, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "rlts-server: %v\n", err)
		os.Exit(1)
	}
	// The listener has drained: no request can touch a session anymore,
	// so spill them all for the next process to rehydrate.
	if *spillDir != "" {
		if err := sv.DrainStreams(); err != nil {
			logger.Error("spilling sessions on shutdown", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("drained, bye")
}

// trainedOf unwraps the public Policy into the internal representation
// the server consumes.
func trainedOf(p *rlts.Policy) *core.Trained { return p.Internal() }
