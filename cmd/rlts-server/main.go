// Command rlts-server runs the trajectory simplification HTTP service
// with the embedded pretrained policies loaded (RLTS and RLTS+ for all
// four measures) alongside every heuristic baseline.
//
//	rlts-server -addr :8080
//	curl -s localhost:8080/v1/algorithms
//	curl -s -X POST localhost:8080/v1/simplify -d '{
//	  "algorithm": "rlts+", "measure": "SED", "ratio": 0.1,
//	  "points": [[0,0,0],[1,0,1],[2,5,2],[3,0,3],[4,0,4]]}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"rlts"
	"rlts/internal/core"
	"rlts/internal/server"
	"rlts/pretrained"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	var policies []*core.Trained
	for _, v := range []rlts.Variant{rlts.Online, rlts.Plus} {
		for _, m := range rlts.Measures {
			p, err := pretrained.Load(m, v)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rlts-server: loading %v/%v: %v\n", v, m, err)
				os.Exit(1)
			}
			policies = append(policies, trainedOf(p))
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(policies).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
	}
	fmt.Fprintf(os.Stderr, "rlts-server: %d policies loaded, listening on %s\n", len(policies), *addr)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "rlts-server: %v\n", err)
		os.Exit(1)
	}
}

// trainedOf unwraps the public Policy into the internal representation
// the server consumes.
func trainedOf(p *rlts.Policy) *core.Trained { return p.Internal() }
