// Command rlts-datagen emits seeded synthetic trajectory datasets with the
// statistical character of the paper's Geolife, T-Drive and Truck datasets
// (Table I), in the traj_id,x,y,t CSV format, plus a Table-I-style summary
// on stderr.
//
// Usage:
//
//	rlts-datagen -dataset geolife -count 100 -len 1000 -seed 1 -o data.csv
//	rlts-datagen -dataset truck -count 10 -len 500            # CSV to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rlts/internal/gen"
	"rlts/internal/obs"
	"rlts/internal/storage"
	"rlts/internal/traj"
)

func main() {
	var (
		dataset = flag.String("dataset", "geolife", "dataset profile: geolife, tdrive or truck")
		count   = flag.Int("count", 100, "number of trajectories")
		length  = flag.Int("len", 1000, "points per trajectory")
		minLen  = flag.Int("minlen", 0, "if > 0, vary lengths uniformly in [minlen, len]")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output CSV file (default: stdout)")
		quiet   = flag.Bool("q", false, "suppress the summary on stderr")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.CommandLogger(os.Stderr, "rlts-datagen", !*quiet, *logJSON)

	profile, ok := gen.ByName(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "rlts-datagen: unknown dataset %q (want geolife, tdrive or truck)\n", *dataset)
		os.Exit(2)
	}
	if *count < 1 || *length < 2 {
		fmt.Fprintln(os.Stderr, "rlts-datagen: -count must be >= 1 and -len >= 2")
		os.Exit(2)
	}
	g := gen.New(profile, *seed)
	var ds []traj.Trajectory
	if *minLen > 0 && *minLen < *length {
		ds = g.DatasetVaried(*count, *minLen, *length)
	} else {
		ds = g.Dataset(*count, *length)
	}

	var err error
	if *out != "" {
		err = storage.WriteAtomic(*out, func(w io.Writer) error {
			return traj.WriteCSV(w, ds)
		})
	} else {
		err = traj.WriteCSV(os.Stdout, ds)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlts-datagen: write: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		logger.Info("dataset generated", "profile", profile.Name, "seed", *seed,
			"trajectories", len(ds))
		fmt.Fprintln(os.Stderr, traj.Summarize(ds))
	}
}
