package main

// The -load harness: sustained-load serving benchmark. It stands up the
// real HTTP stack (server.Handler with the full hardening middleware) on
// a loopback listener, loads the embedded pretrained RLTS+ policy, and
// hammers POST /v1/simplify/batch from concurrent clients for a fixed
// wall-clock window — measuring what an operator actually gets:
// trajectories simplified per second end to end (JSON decode, validation,
// engine sharding, JSON encode) and request latency percentiles. With
// -load-fast the clients opt into the FastMath kernels (?fast=1), so an
// exact/fast pair of runs isolates the kernel contribution under load.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"rlts"
	"rlts/internal/core"
	"rlts/internal/gen"
	"rlts/internal/obs"
	"rlts/internal/server"
	"rlts/pretrained"
)

// loadConfig shapes one sustained-load run. Zero fields take defaults.
type loadConfig struct {
	Duration time.Duration // measurement window (default 10s)
	Conc     int           // concurrent clients (default 4*GOMAXPROCS)
	Items    int           // trajectories per batch request (default 64)
	Points   int           // points per trajectory (default 100)
	Fast     bool          // request the FastMath kernels (?fast=1)
	Seed     int64
}

func (c loadConfig) normalized() loadConfig {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Conc <= 0 {
		c.Conc = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Items <= 0 {
		c.Items = 64
	}
	if c.Points <= 0 {
		c.Points = 100
	}
	return c
}

// loadSummary is the published result of one sustained-load run.
type loadSummary struct {
	Mode            string  `json:"mode"` // "exact" or "fast"
	DurationS       float64 `json:"duration_s"`
	Concurrency     int     `json:"concurrency"`
	ItemsPerRequest int     `json:"items_per_request"`
	PointsPerItem   int     `json:"points_per_item"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	Trajectories    int64   `json:"trajectories"`
	TrajPerSec      float64 `json:"trajectories_per_sec"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	LatencyP50Ms    float64 `json:"latency_p50_ms"`
	LatencyP90Ms    float64 `json:"latency_p90_ms"`
	LatencyP99Ms    float64 `json:"latency_p99_ms"`
}

// runLoad executes one sustained-load run and returns its summary.
func runLoad(cfg loadConfig) (*loadSummary, error) {
	cfg = cfg.normalized()
	pol, err := pretrained.Load(rlts.SED, rlts.Plus)
	if err != nil {
		return nil, fmt.Errorf("load pretrained policy: %w", err)
	}
	trained := pol.Internal()

	// Own metrics registry so repeated runs in one process don't stack
	// counters; MaxConcurrent is disabled because a capacity benchmark
	// that sheds its own offered load measures the shedder, not the
	// simplifier.
	s := server.NewWith([]*core.Trained{trained}, server.Config{
		Metrics:       obs.NewRegistry(),
		MaxConcurrent: -1,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, err := loadRequestBody(trained, cfg)
	if err != nil {
		return nil, err
	}
	url := srv.URL + "/v1/simplify/batch"
	if cfg.Fast {
		url += "?fast=1"
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Conc,
		MaxIdleConnsPerHost: cfg.Conc,
	}}

	type clientStats struct {
		latencies []time.Duration
		requests  int
		errors    int
	}
	stats := make([]clientStats, cfg.Conc)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					st.errors++
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.requests++
				if cerr != nil || resp.StatusCode != http.StatusOK {
					st.errors++
					continue
				}
				st.latencies = append(st.latencies, time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := &loadSummary{
		Mode:            modeName(cfg.Fast),
		DurationS:       round2(elapsed.Seconds()),
		Concurrency:     cfg.Conc,
		ItemsPerRequest: cfg.Items,
		PointsPerItem:   cfg.Points,
	}
	var lats []time.Duration
	for i := range stats {
		sum.Requests += stats[i].requests
		sum.Errors += stats[i].errors
		lats = append(lats, stats[i].latencies...)
	}
	ok := len(lats)
	sum.Trajectories = int64(ok) * int64(cfg.Items)
	sum.TrajPerSec = round2(float64(sum.Trajectories) / elapsed.Seconds())
	sum.RequestsPerSec = round2(float64(ok) / elapsed.Seconds())
	if ok > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) float64 {
			ix := int(p * float64(ok-1))
			return round2(float64(lats[ix].Microseconds()) / 1000)
		}
		sum.LatencyP50Ms = q(0.50)
		sum.LatencyP90Ms = q(0.90)
		sum.LatencyP99Ms = q(0.99)
	}
	return sum, nil
}

// loadRequestBody builds the constant batch request every client posts:
// Items geolife-like trajectories of Points points at the default 0.1
// keep ratio. One body for all requests keeps the generator out of the
// measurement; the server decodes it fresh each time, which is the cost
// being measured.
func loadRequestBody(trained *core.Trained, cfg loadConfig) ([]byte, error) {
	type item struct {
		Points [][3]float64 `json:"points"`
	}
	req := struct {
		Algorithm string  `json:"algorithm"`
		Measure   string  `json:"measure"`
		Ratio     float64 `json:"ratio,omitempty"` // zero = server default 0.1
		Items     []item  `json:"items"`
	}{Algorithm: trained.Opts.Name(), Measure: trained.Opts.Measure.String()}
	r := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Items; i++ {
		t := gen.New(gen.Geolife(), r.Int63()).Trajectory(cfg.Points)
		it := item{Points: make([][3]float64, len(t))}
		for j, p := range t {
			it.Points[j] = [3]float64{p.X, p.Y, p.T}
		}
		req.Items = append(req.Items, it)
	}
	return json.Marshal(&req)
}

func modeName(fast bool) string {
	if fast {
		return "fast"
	}
	return "exact"
}

// runLoadBench is the `rlts-bench -load` entry point: one sustained run,
// written as JSON to out ("-"/"" = stdout) with a one-line summary on
// stderr.
func runLoadBench(out string, cfg loadConfig) error {
	warnSingleProc()
	sum, err := runLoad(cfg)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	fmt.Fprintf(os.Stderr, "sustained load (%s): %.0f trajectories/s, %.0f req/s, p50 %.2fms p99 %.2fms, %d errors\n",
		sum.Mode, sum.TrajPerSec, sum.RequestsPerSec, sum.LatencyP50Ms, sum.LatencyP99Ms, sum.Errors)
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}
