package main

// The -batch sweep: measures batched policy inference against the
// single-state path at both the kernel level (nn.Network.ForwardBatch vs
// per-state Forward) and the engine level (core.BatchEngine vs
// sequential core.Simplify), and writes the numbers as the
// BENCH_batch.json baseline. Every batched configuration it times is
// bit-identical to the single-state path by construction (DESIGN.md
// §12), so the sweep is pure throughput: no accuracy column is needed.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/nn"
	"rlts/internal/rl"
)

// batchWidths is the kernel sweep; engineWidths the lockstep-engine one.
var (
	batchWidths  = []int{1, 2, 4, 8, 16, 32, 64}
	engineWidths = []int{1, 4, 16, 64}
)

type batchPoint struct {
	B          int     `json:"b"`
	NsPerState float64 `json:"ns_per_state"`
	Speedup    float64 `json:"speedup_vs_single"`
}

type enginePoint struct {
	Width      int     `json:"width"`
	NsPerPoint float64 `json:"ns_per_point"`
	Speedup    float64 `json:"speedup_vs_sequential"`
}

// coreScalePoint is one row of the per-core scaling table: procs
// goroutines hammering ForwardBatch concurrently (each on its own policy
// clone), aggregate wall-clock throughput across all of them.
type coreScalePoint struct {
	Procs      int     `json:"procs"`
	NsPerState float64 `json:"aggregate_ns_per_state"`
	Speedup    float64 `json:"speedup_vs_1"`
	Efficiency float64 `json:"parallel_efficiency"`
}

// fastPoint is one width of the exact-vs-fast kernel comparison.
type fastPoint struct {
	B               int     `json:"b"`
	ExactNsPerState float64 `json:"exact_ns_per_state"`
	FastNsPerState  float64 `json:"fast_ns_per_state"`
	Speedup         float64 `json:"speedup_fast_vs_exact"`
}

type batchBaseline struct {
	Description string `json:"description"`
	Machine     struct {
		CPU            string           `json:"cpu"`
		NumCPU         int              `json:"num_cpu"`
		GoMaxProcs     int              `json:"gomaxprocs"`
		Note           string           `json:"note"`
		PerCoreScaling []coreScalePoint `json:"per_core_scaling"`
	} `json:"machine"`
	ForwardKernel struct {
		Spec             string       `json:"spec"`
		SingleNsPerState float64      `json:"single_ns_per_state"`
		Batch            []batchPoint `json:"batch"`
	} `json:"forward_kernel"`
	Engine struct {
		Dataset              string        `json:"dataset"`
		SequentialNsPerPoint float64       `json:"sequential_ns_per_point"`
		Batch                []enginePoint `json:"batch"`
	} `json:"engine"`
	FastMath struct {
		Contract struct {
			TanhMaxAbsError  float64 `json:"tanh_max_abs_error"`
			ProbsMaxAbsError float64 `json:"probs_max_abs_error"`
			ProbsMaxRelError float64 `json:"probs_max_rel_error"`
		} `json:"contract"`
		Kernel []fastPoint `json:"kernel"`
		Engine struct {
			Width           int     `json:"width"`
			ExactNsPerPoint float64 `json:"exact_ns_per_point"`
			FastNsPerPoint  float64 `json:"fast_ns_per_point"`
			Speedup         float64 `json:"speedup_fast_vs_exact"`
		} `json:"engine"`
	} `json:"fastmath"`
	SustainedLoad []loadSummary `json:"sustained_load,omitempty"`
}

// measure times fn (which must perform `units` units of work per call)
// until at least minTime has elapsed and returns ns per unit.
func measure(units int, fn func()) float64 {
	const minTime = 100 * time.Millisecond
	fn() // warm scratch buffers so allocation noise stays out of the timing
	total := time.Duration(0)
	calls := 0
	for total < minTime {
		start := time.Now()
		fn()
		total += time.Since(start)
		calls++
	}
	return float64(total.Nanoseconds()) / float64(calls*units)
}

func runBatchSweep(out string, seed int64) error {
	warnSingleProc()
	opts := core.DefaultOptions(errm.SED, core.Plus)
	hidden := rl.DefaultTrainConfig().Hidden
	r := rand.New(rand.NewSource(seed))
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), hidden, r)
	if err != nil {
		return err
	}

	var b batchBaseline
	b.Description = "Baseline for batched policy inference: nn ForwardBatch vs per-state " +
		"Forward, and the lockstep core.BatchEngine vs sequential core.Simplify. " +
		"All batched paths are bit-identical to the single-state path (DESIGN.md §12); " +
		"this file records throughput only. Regenerate with scripts/bench_batch.sh."
	b.Machine.CPU = cpuModel()
	b.Machine.NumCPU = runtime.NumCPU()
	b.Machine.GoMaxProcs = runtime.GOMAXPROCS(0)
	b.Machine.Note = "Single-thread sweep. The exact kernel speedup ceiling is set by " +
		"math.Tanh, which the bit-identity contract forbids replacing with a vectorised " +
		"approximation and which accounts for roughly half the forward cost at the " +
		"paper's 20-unit policy; the gain that remains comes from amortised layer " +
		"dispatch and cache-resident weights. The fastmath section lifts that ceiling: " +
		"FastTanh plus the folded-weight fused matmul (DESIGN.md §13) is where the " +
		"kernel-level speedup comes from. Engine-level numbers fold in env stepping, " +
		"state gathering and lane bookkeeping, which dominate at this policy size, so " +
		"they compress toward 1.0x. The batch serving path earns its keep from request " +
		"amortisation and shard-level parallelism across workers (see BatchWorkers)."

	// Kernel sweep: one spec, the serving-default policy shape.
	in, outN := opts.StateSize(), opts.NumActions()
	b.ForwardKernel.Spec = fmt.Sprintf("in=%d hidden=[%d] out=%d batchnorm+tanh", in, hidden, outN)
	maxB := batchWidths[len(batchWidths)-1]
	states := make([]float64, maxB*in)
	for i := range states {
		states[i] = r.NormFloat64()
	}
	single := measure(maxB, func() {
		for s := 0; s < maxB; s++ {
			p.Net.Forward(states[s*in:(s+1)*in], false)
		}
	})
	b.ForwardKernel.SingleNsPerState = round2(single)
	for _, width := range batchWidths {
		ns := measure(width, func() {
			p.Net.ForwardBatch(states[:width*in], width)
		})
		b.ForwardKernel.Batch = append(b.ForwardKernel.Batch, batchPoint{
			B: width, NsPerState: round2(ns), Speedup: round2(single / ns),
		})
	}

	// Exact-vs-fast kernel comparison: same weights, same states, the
	// only delta is the kernel selection on the clone.
	fp := p.Clone()
	fp.SetKernel(nn.KernelFast)
	b.FastMath.Contract.TanhMaxAbsError = nn.FastTanhMaxAbsError
	b.FastMath.Contract.ProbsMaxAbsError = nn.FastProbsMaxAbsError
	b.FastMath.Contract.ProbsMaxRelError = nn.FastProbsMaxRelError
	for i, width := range batchWidths {
		exactNs := b.ForwardKernel.Batch[i].NsPerState
		fastNs := measure(width, func() {
			fp.Net.ForwardBatch(states[:width*in], width)
		})
		b.FastMath.Kernel = append(b.FastMath.Kernel, fastPoint{
			B:               width,
			ExactNsPerState: exactNs,
			FastNsPerState:  round2(fastNs),
			Speedup:         round2(exactNs / fastNs),
		})
	}

	// Per-core scaling: the same widest-batch forward, run from 1 to
	// NumCPU concurrent workers (each on its own clone). Honest
	// provenance for the multi-core headline numbers — on a single-core
	// machine this table has exactly one row and says so.
	b.Machine.PerCoreScaling = perCoreScaling(p, in, maxB, states)

	// Engine sweep: a fixed evaluation set stepped to completion, widest
	// shard first so every width sees warm caches.
	const (
		nTraj = 64
		nLen  = 200
	)
	data := gen.New(gen.Geolife(), seed).Dataset(nTraj, nLen)
	b.Engine.Dataset = fmt.Sprintf("geolife %dx%d points, w=0.1, greedy inference", nTraj, nLen)
	items := make([]core.BatchItem, len(data))
	points := 0
	for i, t := range data {
		w := len(t) / 10
		if w < 2 {
			w = 2
		}
		items[i] = core.BatchItem{T: t, W: w}
		points += len(t)
	}
	seq := measure(points, func() {
		for _, it := range items {
			if _, err := core.Simplify(p, it.T, it.W, opts, false, nil); err != nil {
				panic(err)
			}
		}
	})
	b.Engine.SequentialNsPerPoint = round2(seq)
	for _, width := range engineWidths {
		eng, err := core.NewBatchEngine(p.Clone(), opts, false)
		if err != nil {
			return err
		}
		ns := measure(points, func() {
			for lo := 0; lo < len(items); lo += width {
				hi := lo + width
				if hi > len(items) {
					hi = len(items)
				}
				for _, res := range eng.Run(items[lo:hi]) {
					if res.Err != nil {
						panic(res.Err)
					}
				}
			}
		})
		b.Engine.Batch = append(b.Engine.Batch, enginePoint{
			Width: width, NsPerPoint: round2(ns), Speedup: round2(seq / ns),
		})
	}

	// Engine-level exact vs fast at the widest shard: the same lockstep
	// run with the engine's policy flipped to the FastMath kernels.
	{
		width := engineWidths[len(engineWidths)-1]
		runAll := func(eng *core.BatchEngine) float64 {
			return measure(points, func() {
				for lo := 0; lo < len(items); lo += width {
					hi := lo + width
					if hi > len(items) {
						hi = len(items)
					}
					for _, res := range eng.Run(items[lo:hi]) {
						if res.Err != nil {
							panic(res.Err)
						}
					}
				}
			})
		}
		exactEng, err := core.NewBatchEngine(p.Clone(), opts, false)
		if err != nil {
			return err
		}
		fastEng, err := core.NewBatchEngine(p.Clone(), opts, false)
		if err != nil {
			return err
		}
		fastEng.SetKernel(nn.KernelFast)
		exactNs := runAll(exactEng)
		fastNs := runAll(fastEng)
		b.FastMath.Engine.Width = width
		b.FastMath.Engine.ExactNsPerPoint = round2(exactNs)
		b.FastMath.Engine.FastNsPerPoint = round2(fastNs)
		b.FastMath.Engine.Speedup = round2(exactNs / fastNs)
	}

	// Short sustained-load runs, exact then fast, so the serving numbers
	// live next to the kernel numbers they are built from. The standalone
	// `rlts-bench -load` runs longer and with custom shapes.
	for _, fast := range []bool{false, true} {
		sum, err := runLoad(loadConfig{
			Duration: 3 * time.Second, Fast: fast, Seed: seed,
		})
		if err != nil {
			return err
		}
		b.SustainedLoad = append(b.SustainedLoad, *sum)
	}

	enc, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("batch sweep written to %s (single %.0f ns/state, b=%d %.0f ns/state)\n",
		out, b.ForwardKernel.SingleNsPerState, maxB,
		b.ForwardKernel.Batch[len(b.ForwardKernel.Batch)-1].NsPerState)
	return nil
}

// warnSingleProc shouts when the process is pinned to one scheduler
// thread: every multi-core number the sweep publishes would silently be a
// single-core number, which is exactly the provenance bug the per-core
// scaling table exists to prevent.
func warnSingleProc() {
	if runtime.GOMAXPROCS(0) > 1 {
		return
	}
	fmt.Fprintln(os.Stderr, strings.Repeat("#", 72))
	fmt.Fprintf(os.Stderr, "# WARNING: GOMAXPROCS=1 (num_cpu=%d).\n", runtime.NumCPU())
	fmt.Fprintln(os.Stderr, "# Every throughput number below is SINGLE-CORE. Do not publish these")
	fmt.Fprintln(os.Stderr, "# as multi-core results. The machine block records the actual")
	fmt.Fprintln(os.Stderr, "# per-core scaling table measured under this setting.")
	fmt.Fprintln(os.Stderr, strings.Repeat("#", 72))
}

// coreScaleProcs picks the worker counts of the scaling table: powers of
// two up to NumCPU, always including 1 and NumCPU.
func coreScaleProcs() []int {
	n := runtime.NumCPU()
	procs := []int{1}
	for p := 2; p < n; p *= 2 {
		procs = append(procs, p)
	}
	if n > 1 {
		procs = append(procs, n)
	}
	return procs
}

// perCoreScaling measures aggregate ForwardBatch throughput at growing
// worker counts. Each worker owns a policy clone (exclusive scratch, the
// serving pattern), so the table captures memory-bandwidth and scheduler
// effects, not lock contention.
func perCoreScaling(p *rl.Policy, in, maxB int, states []float64) []coreScalePoint {
	const window = 150 * time.Millisecond
	var rows []coreScalePoint
	var base float64
	for _, procs := range coreScaleProcs() {
		clones := make([]*rl.Policy, procs)
		for i := range clones {
			clones[i] = p.Clone()
			clones[i].Net.ForwardBatch(states[:maxB*in], maxB) // warm scratch
		}
		counts := make([]int64, procs)
		start := time.Now()
		deadline := start.Add(window)
		var wg sync.WaitGroup
		for w := 0; w < procs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var n int64
				for time.Now().Before(deadline) {
					clones[w].Net.ForwardBatch(states[:maxB*in], maxB)
					n += int64(maxB)
				}
				counts[w] = n
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var total int64
		for _, c := range counts {
			total += c
		}
		ns := float64(elapsed.Nanoseconds()) / float64(total)
		if base == 0 {
			base = ns
		}
		speedup := base / ns
		rows = append(rows, coreScalePoint{
			Procs:      procs,
			NsPerState: round2(ns),
			Speedup:    round2(speedup),
			Efficiency: round2(speedup / float64(procs)),
		})
	}
	return rows
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// cpuModel reads the CPU model name for the machine provenance block;
// best-effort, "unknown" when /proc/cpuinfo is unavailable.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return "unknown"
}
