package main

// The -batch sweep: measures batched policy inference against the
// single-state path at both the kernel level (nn.Network.ForwardBatch vs
// per-state Forward) and the engine level (core.BatchEngine vs
// sequential core.Simplify), and writes the numbers as the
// BENCH_batch.json baseline. Every batched configuration it times is
// bit-identical to the single-state path by construction (DESIGN.md
// §12), so the sweep is pure throughput: no accuracy column is needed.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/rl"
)

// batchWidths is the kernel sweep; engineWidths the lockstep-engine one.
var (
	batchWidths  = []int{1, 2, 4, 8, 16, 32, 64}
	engineWidths = []int{1, 4, 16, 64}
)

type batchPoint struct {
	B          int     `json:"b"`
	NsPerState float64 `json:"ns_per_state"`
	Speedup    float64 `json:"speedup_vs_single"`
}

type enginePoint struct {
	Width      int     `json:"width"`
	NsPerPoint float64 `json:"ns_per_point"`
	Speedup    float64 `json:"speedup_vs_sequential"`
}

type batchBaseline struct {
	Description string `json:"description"`
	Machine     struct {
		CPU        string `json:"cpu"`
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Note       string `json:"note"`
	} `json:"machine"`
	ForwardKernel struct {
		Spec             string       `json:"spec"`
		SingleNsPerState float64      `json:"single_ns_per_state"`
		Batch            []batchPoint `json:"batch"`
	} `json:"forward_kernel"`
	Engine struct {
		Dataset              string        `json:"dataset"`
		SequentialNsPerPoint float64       `json:"sequential_ns_per_point"`
		Batch                []enginePoint `json:"batch"`
	} `json:"engine"`
}

// measure times fn (which must perform `units` units of work per call)
// until at least minTime has elapsed and returns ns per unit.
func measure(units int, fn func()) float64 {
	const minTime = 100 * time.Millisecond
	fn() // warm scratch buffers so allocation noise stays out of the timing
	total := time.Duration(0)
	calls := 0
	for total < minTime {
		start := time.Now()
		fn()
		total += time.Since(start)
		calls++
	}
	return float64(total.Nanoseconds()) / float64(calls*units)
}

func runBatchSweep(out string, seed int64) error {
	opts := core.DefaultOptions(errm.SED, core.Plus)
	hidden := rl.DefaultTrainConfig().Hidden
	r := rand.New(rand.NewSource(seed))
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), hidden, r)
	if err != nil {
		return err
	}

	var b batchBaseline
	b.Description = "Baseline for batched policy inference: nn ForwardBatch vs per-state " +
		"Forward, and the lockstep core.BatchEngine vs sequential core.Simplify. " +
		"All batched paths are bit-identical to the single-state path (DESIGN.md §12); " +
		"this file records throughput only. Regenerate with scripts/bench_batch.sh."
	b.Machine.CPU = cpuModel()
	b.Machine.NumCPU = runtime.NumCPU()
	b.Machine.GoMaxProcs = runtime.GOMAXPROCS(0)
	b.Machine.Note = "Single-thread sweep. The kernel speedup ceiling is set by " +
		"math.Tanh, which the bit-identity contract forbids replacing with a vectorised " +
		"approximation and which accounts for roughly half the forward cost at the " +
		"paper's 20-unit policy; the gain that remains comes from amortised layer " +
		"dispatch and cache-resident weights, and grows with layer width. Engine-level " +
		"numbers fold in env stepping, state gathering and lane bookkeeping, which " +
		"dominate at this policy size: expect them at or below 1.0x single-thread. The " +
		"batch serving path earns its keep from request amortisation and shard-level " +
		"parallelism across workers (see BatchWorkers), not single-thread kernel gains."

	// Kernel sweep: one spec, the serving-default policy shape.
	in, outN := opts.StateSize(), opts.NumActions()
	b.ForwardKernel.Spec = fmt.Sprintf("in=%d hidden=[%d] out=%d batchnorm+tanh", in, hidden, outN)
	maxB := batchWidths[len(batchWidths)-1]
	states := make([]float64, maxB*in)
	for i := range states {
		states[i] = r.NormFloat64()
	}
	single := measure(maxB, func() {
		for s := 0; s < maxB; s++ {
			p.Net.Forward(states[s*in:(s+1)*in], false)
		}
	})
	b.ForwardKernel.SingleNsPerState = round2(single)
	for _, width := range batchWidths {
		ns := measure(width, func() {
			p.Net.ForwardBatch(states[:width*in], width)
		})
		b.ForwardKernel.Batch = append(b.ForwardKernel.Batch, batchPoint{
			B: width, NsPerState: round2(ns), Speedup: round2(single / ns),
		})
	}

	// Engine sweep: a fixed evaluation set stepped to completion, widest
	// shard first so every width sees warm caches.
	const (
		nTraj = 64
		nLen  = 200
	)
	data := gen.New(gen.Geolife(), seed).Dataset(nTraj, nLen)
	b.Engine.Dataset = fmt.Sprintf("geolife %dx%d points, w=0.1, greedy inference", nTraj, nLen)
	items := make([]core.BatchItem, len(data))
	points := 0
	for i, t := range data {
		w := len(t) / 10
		if w < 2 {
			w = 2
		}
		items[i] = core.BatchItem{T: t, W: w}
		points += len(t)
	}
	seq := measure(points, func() {
		for _, it := range items {
			if _, err := core.Simplify(p, it.T, it.W, opts, false, nil); err != nil {
				panic(err)
			}
		}
	})
	b.Engine.SequentialNsPerPoint = round2(seq)
	for _, width := range engineWidths {
		eng, err := core.NewBatchEngine(p.Clone(), opts, false)
		if err != nil {
			return err
		}
		ns := measure(points, func() {
			for lo := 0; lo < len(items); lo += width {
				hi := lo + width
				if hi > len(items) {
					hi = len(items)
				}
				for _, res := range eng.Run(items[lo:hi]) {
					if res.Err != nil {
						panic(res.Err)
					}
				}
			}
		})
		b.Engine.Batch = append(b.Engine.Batch, enginePoint{
			Width: width, NsPerPoint: round2(ns), Speedup: round2(seq / ns),
		})
	}

	enc, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("batch sweep written to %s (single %.0f ns/state, b=%d %.0f ns/state)\n",
		out, b.ForwardKernel.SingleNsPerState, maxB,
		b.ForwardKernel.Batch[len(b.ForwardKernel.Batch)-1].NsPerState)
	return nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// cpuModel reads the CPU model name for the machine provenance block;
// best-effort, "unknown" when /proc/cpuinfo is unavailable.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return "unknown"
}
