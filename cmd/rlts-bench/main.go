// Command rlts-bench regenerates the paper's tables and figures on the
// synthetic dataset substrate.
//
// Usage:
//
//	rlts-bench -list
//	rlts-bench -exp fig4
//	rlts-bench -exp all -scale default
//	rlts-bench -exp fig5 -scale paper        # paper-size runs take hours
//
// Experiment ids map to the paper as recorded in DESIGN.md's
// per-experiment index; -scale selects quick, default or paper sizing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rlts/internal/eval"
	"rlts/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id, or \"all\"")
		scale   = flag.String("scale", "default", "scale: quick, default or paper")
		seed    = flag.Int64("seed", 1, "experiment seed")
		list    = flag.Bool("list", false, "list available experiments")
		verbose = flag.Bool("v", false, "log training progress")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		workers = flag.Int("workers", 0, "parallel workers for training and evaluation (0 = all CPUs, 1 = serial)")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		batch   = flag.Bool("batch", false, "run the batched-inference throughput sweep instead of an experiment")
		batchTo = flag.String("batch-out", "", "write the -batch sweep as JSON to this file (default: stdout)")
		batchW  = flag.Int("batch-width", 0, "evaluate trained policies through the lockstep batch engine in shards of this many trajectories (0 = per-trajectory; results identical either way)")
		fastK   = flag.Bool("fast", false, "evaluate trained policies on the FastMath kernels (bounded approximation, see DESIGN.md §13)")
		load    = flag.Bool("load", false, "run the sustained-load serving benchmark instead of an experiment")
		loadDur = flag.Duration("load-duration", 10*time.Second, "sustained-load measurement window")
		loadCC  = flag.Int("load-conc", 0, "sustained-load concurrent clients (0 = 4*GOMAXPROCS)")
		loadIt  = flag.Int("load-items", 64, "trajectories per sustained-load batch request")
		loadPts = flag.Int("load-points", 100, "points per sustained-load trajectory")
		loadFst = flag.Bool("load-fast", false, "sustained-load clients request the FastMath kernels (?fast=1)")
		loadTo  = flag.String("load-out", "", "write the -load summary as JSON to this file (default: stdout)")
	)
	flag.Parse()
	logger := obs.CommandLogger(os.Stderr, "rlts-bench", *verbose, *logJSON)

	if *batch {
		if err := runBatchSweep(*batchTo, *seed); err != nil {
			fail(err)
		}
		return
	}
	if *load {
		err := runLoadBench(*loadTo, loadConfig{
			Duration: *loadDur, Conc: *loadCC, Items: *loadIt,
			Points: *loadPts, Fast: *loadFst, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		return
	}
	if *list {
		fmt.Println("available experiments:")
		for _, e := range eval.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "rlts-bench: provide -exp ID or -list")
		os.Exit(2)
	}
	s, err := eval.ScaleByName(*scale)
	if err != nil {
		fail(err)
	}
	var logSink *os.File
	if *verbose {
		logSink = os.Stderr
	}
	ctx := eval.NewContext(s, *seed, logSink)
	ctx.Workers = *workers
	ctx.BatchWidth = *batchW
	ctx.FastKernel = *fastK

	exps := eval.Experiments()
	if *exp != "all" {
		e, err := eval.ExperimentByID(*exp)
		if err != nil {
			fail(err)
		}
		exps = []eval.Experiment{e}
	}
	for _, e := range exps {
		logger.Debug("experiment starting", "id", e.ID, "paper", e.Paper, "scale", s.Name)
		start := time.Now()
		tb, err := e.Run(ctx)
		if err != nil {
			fail(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Println(tb.String())
		fmt.Printf("(%s reproduces %s; ran in %v at scale %q)\n\n",
			e.ID, e.Paper, time.Since(start).Round(time.Millisecond), s.Name)
		if *csvDir != "" {
			path, err := tb.SaveCSV(*csvDir)
			if err != nil {
				fail(err)
			}
			fmt.Printf("(series written to %s)\n\n", path)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rlts-bench: %v\n", err)
	os.Exit(1)
}
