// Command rlts-train learns an RLTS policy and writes it to a JSON file
// usable by rlts-simplify.
//
// Training data comes either from a CSV file (-in, traj_id,x,y,t format)
// or from a synthetic dataset profile (-gen, with -count/-len/-seed).
//
// Usage:
//
//	rlts-train -gen geolife -count 200 -len 500 -measure SED -variant rlts+ -o policy.json
//	rlts-train -in trips.csv -measure DAD -variant rlts -j 2 -epochs 3 -o policy.json
//
// Long runs can checkpoint themselves and be resumed after a crash with
// the bit-identical result of an uninterrupted run (same data flags and
// hyper-parameters required):
//
//	rlts-train -gen geolife -count 1000 -checkpoint train.ckpt -o policy.json
//	rlts-train -gen geolife -count 1000 -checkpoint train.ckpt -resume -o policy.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/obs"
	"rlts/internal/rl"
	"rlts/internal/storage"
	"rlts/internal/traj"
)

func main() {
	var (
		in       = flag.String("in", "", "training CSV file (traj_id,x,y,t)")
		genName  = flag.String("gen", "", "generate training data from a profile: geolife, tdrive or truck")
		count    = flag.Int("count", 200, "trajectories to generate (with -gen)")
		length   = flag.Int("len", 500, "points per generated trajectory (with -gen)")
		seed     = flag.Int64("seed", 1, "seed for generation and training")
		measure  = flag.String("measure", "SED", "error measure: SED, PED, DAD or SAD")
		variant  = flag.String("variant", "rlts", "variant: rlts, rlts+ or rlts++")
		k        = flag.Int("k", 3, "state size k")
		j        = flag.Int("j", 0, "skip horizon J (0 = no skipping)")
		episodes = flag.Int("episodes", 10, "episodes per trajectory per epoch")
		epochs   = flag.Int("epochs", 1, "passes over the training set")
		lr       = flag.Float64("lr", 1e-3, "Adam learning rate")
		gamma    = flag.Float64("gamma", 0.99, "reward discount")
		wratio   = flag.Float64("wratio", 0.1, "training budget as a fraction of |T|")
		workers  = flag.Int("workers", 0, "parallel rollout workers (0 = all CPUs, 1 = serial; same result either way)")
		ckpt     = flag.String("checkpoint", "", "checkpoint file, atomically rewritten during training (empty = no checkpointing)")
		ckptN    = flag.Int("checkpoint-every", 1, "batches between checkpoint writes")
		resume   = flag.Bool("resume", false, "continue from -checkpoint instead of starting fresh (needs identical data flags)")
		out      = flag.String("o", "policy.json", "output policy file")
		metrics  = flag.String("metrics-out", "", "dump final training metrics (Prometheus text format) to this file")
		verbose  = flag.Bool("v", false, "log training progress")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.CommandLogger(os.Stderr, "rlts-train", *verbose, *logJSON)

	m, err := errm.Parse(*measure)
	if err != nil {
		fail(err)
	}
	v, err := core.ParseVariant(*variant)
	if err != nil {
		fail(err)
	}
	opts := core.Options{Measure: m, Variant: v, K: *k, J: *j}
	if err := opts.Validate(); err != nil {
		fail(err)
	}

	var dataset []traj.Trajectory
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		dataset, err = traj.ReadCSV(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	case *genName != "":
		profile, ok := gen.ByName(*genName)
		if !ok {
			fail(fmt.Errorf("unknown dataset %q", *genName))
		}
		dataset = gen.New(profile, *seed).Dataset(*count, *length)
	default:
		fail(fmt.Errorf("provide training data with -in FILE or -gen PROFILE"))
	}

	to := core.DefaultTrainOptions()
	to.RL.Episodes = *episodes
	to.RL.Epochs = *epochs
	to.RL.LearningRate = *lr
	to.RL.Gamma = *gamma
	to.RL.Seed = *seed
	to.RL.Workers = *workers
	to.RL.Checkpoint = *ckpt
	to.RL.CheckpointEvery = *ckptN
	to.WRatio = *wratio
	to.RL.Logger = logger
	if *verbose {
		to.RL.Log = os.Stderr
		to.RL.LogEvery = 50
	}
	if *resume && *ckpt == "" {
		fail(fmt.Errorf("-resume needs -checkpoint to name the checkpoint file"))
	}

	var (
		trained *core.Trained
		res     *rl.TrainResult
	)
	start := time.Now()
	if *resume {
		logger.Info("resuming", "algorithm", opts.Name(), "measure", m.String(), "checkpoint", *ckpt)
		trained, res, err = core.ResumeTrain(dataset, opts, to)
	} else {
		logger.Info("training", "algorithm", opts.Name(), "measure", m.String(),
			"k", *k, "j", *j, "trajectories", len(dataset))
		trained, res, err = core.Train(dataset, opts, to)
	}
	if err != nil {
		if *ckpt != "" {
			fmt.Fprintf(os.Stderr, "rlts-train: run aborted; resume with the same flags plus -resume (checkpoint: %s)\n", *ckpt)
		}
		fail(err)
	}
	if !res.Health.Ok() {
		fmt.Fprintf(os.Stderr, "rlts-train: WARNING: divergence guards fired (%d rollout skips, %d gradient skips, %d rollbacks); policy is the last good state\n",
			res.Health.RolloutSkips, res.Health.GradSkips, res.Health.Rollbacks)
		for _, ev := range res.Health.Events {
			fmt.Fprintf(os.Stderr, "rlts-train:   batch %d: %s: %s\n", ev.Batch, ev.Kind, ev.Detail)
		}
	}

	if err := storage.WriteAtomic(*out, func(w io.Writer) error {
		return trained.Save(w)
	}); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "rlts-train: policy written to %s\n", *out)
	if *metrics != "" {
		if err := storage.WriteAtomic(*metrics, func(w io.Writer) error {
			return obs.Default().WriteText(w)
		}); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "rlts-train: metrics written to %s\n", *metrics)
	}

	// The closing one-liner reads from the metrics registry — the same
	// numbers a scrape or -metrics-out would report — so the summary and
	// the exported telemetry can never disagree.
	samples := snapshotMetrics()
	fmt.Fprintf(os.Stderr,
		"rlts-train: done: episodes=%d best_reward=%.4f guard_trips=%d checkpoints=%d elapsed=%v\n",
		int(metricValue(samples, "rlts_train_episodes_total", nil)),
		res.BestReward,
		sumMetric(samples, "rlts_train_guard_trips_total"),
		int(metricValue(samples, "rlts_train_checkpoints_total", nil)),
		time.Since(start).Round(time.Millisecond))
}

// snapshotMetrics round-trips the default registry through its own text
// encoding, yielding a flat sample list to pull summary values from.
func snapshotMetrics() []obs.Sample {
	var buf bytes.Buffer
	if err := obs.Default().WriteText(&buf); err != nil {
		return nil
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		return nil
	}
	return samples
}

func metricValue(samples []obs.Sample, name string, labels map[string]string) float64 {
	v, _ := obs.Find(samples, name, labels)
	return v
}

// sumMetric totals every series of a labeled counter family (e.g. guard
// trips across kinds).
func sumMetric(samples []obs.Sample, name string) int {
	var total float64
	for _, s := range samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return int(total)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rlts-train: %v\n", err)
	os.Exit(1)
}
