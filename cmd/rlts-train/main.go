// Command rlts-train learns an RLTS policy and writes it to a JSON file
// usable by rlts-simplify.
//
// Training data comes either from a CSV file (-in, traj_id,x,y,t format)
// or from a synthetic dataset profile (-gen, with -count/-len/-seed).
//
// Usage:
//
//	rlts-train -gen geolife -count 200 -len 500 -measure SED -variant rlts+ -o policy.json
//	rlts-train -in trips.csv -measure DAD -variant rlts -j 2 -epochs 3 -o policy.json
//
// Long runs can checkpoint themselves and be resumed after a crash with
// the bit-identical result of an uninterrupted run (same data flags and
// hyper-parameters required):
//
//	rlts-train -gen geolife -count 1000 -checkpoint train.ckpt -o policy.json
//	rlts-train -gen geolife -count 1000 -checkpoint train.ckpt -resume -o policy.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/rl"
	"rlts/internal/storage"
	"rlts/internal/traj"
)

func main() {
	var (
		in       = flag.String("in", "", "training CSV file (traj_id,x,y,t)")
		genName  = flag.String("gen", "", "generate training data from a profile: geolife, tdrive or truck")
		count    = flag.Int("count", 200, "trajectories to generate (with -gen)")
		length   = flag.Int("len", 500, "points per generated trajectory (with -gen)")
		seed     = flag.Int64("seed", 1, "seed for generation and training")
		measure  = flag.String("measure", "SED", "error measure: SED, PED, DAD or SAD")
		variant  = flag.String("variant", "rlts", "variant: rlts, rlts+ or rlts++")
		k        = flag.Int("k", 3, "state size k")
		j        = flag.Int("j", 0, "skip horizon J (0 = no skipping)")
		episodes = flag.Int("episodes", 10, "episodes per trajectory per epoch")
		epochs   = flag.Int("epochs", 1, "passes over the training set")
		lr       = flag.Float64("lr", 1e-3, "Adam learning rate")
		gamma    = flag.Float64("gamma", 0.99, "reward discount")
		wratio   = flag.Float64("wratio", 0.1, "training budget as a fraction of |T|")
		workers  = flag.Int("workers", 0, "parallel rollout workers (0 = all CPUs, 1 = serial; same result either way)")
		ckpt     = flag.String("checkpoint", "", "checkpoint file, atomically rewritten during training (empty = no checkpointing)")
		ckptN    = flag.Int("checkpoint-every", 1, "batches between checkpoint writes")
		resume   = flag.Bool("resume", false, "continue from -checkpoint instead of starting fresh (needs identical data flags)")
		out      = flag.String("o", "policy.json", "output policy file")
		verbose  = flag.Bool("v", false, "log training progress")
	)
	flag.Parse()

	m, err := errm.Parse(*measure)
	if err != nil {
		fail(err)
	}
	v, err := core.ParseVariant(*variant)
	if err != nil {
		fail(err)
	}
	opts := core.Options{Measure: m, Variant: v, K: *k, J: *j}
	if err := opts.Validate(); err != nil {
		fail(err)
	}

	var dataset []traj.Trajectory
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		dataset, err = traj.ReadCSV(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	case *genName != "":
		profile, ok := gen.ByName(*genName)
		if !ok {
			fail(fmt.Errorf("unknown dataset %q", *genName))
		}
		dataset = gen.New(profile, *seed).Dataset(*count, *length)
	default:
		fail(fmt.Errorf("provide training data with -in FILE or -gen PROFILE"))
	}

	to := core.DefaultTrainOptions()
	to.RL.Episodes = *episodes
	to.RL.Epochs = *epochs
	to.RL.LearningRate = *lr
	to.RL.Gamma = *gamma
	to.RL.Seed = *seed
	to.RL.Workers = *workers
	to.RL.Checkpoint = *ckpt
	to.RL.CheckpointEvery = *ckptN
	to.WRatio = *wratio
	if *verbose {
		to.RL.Log = os.Stderr
		to.RL.LogEvery = 50
	}
	if *resume && *ckpt == "" {
		fail(fmt.Errorf("-resume needs -checkpoint to name the checkpoint file"))
	}

	var (
		trained *core.Trained
		res     *rl.TrainResult
	)
	start := time.Now()
	if *resume {
		fmt.Fprintf(os.Stderr, "rlts-train: resuming %s/%s from %s\n", opts.Name(), m, *ckpt)
		trained, res, err = core.ResumeTrain(dataset, opts, to)
	} else {
		fmt.Fprintf(os.Stderr, "rlts-train: training %s/%s (k=%d, J=%d) on %d trajectories\n",
			opts.Name(), m, *k, *j, len(dataset))
		trained, res, err = core.Train(dataset, opts, to)
	}
	if err != nil {
		if *ckpt != "" {
			fmt.Fprintf(os.Stderr, "rlts-train: run aborted; resume with the same flags plus -resume (checkpoint: %s)\n", *ckpt)
		}
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "rlts-train: %d episodes, %d transitions in %v (best episode reward %.4f)\n",
		res.EpisodesRun, res.StepsRun, time.Since(start).Round(time.Millisecond), res.BestReward)
	if !res.Health.Ok() {
		fmt.Fprintf(os.Stderr, "rlts-train: WARNING: divergence guards fired (%d rollout skips, %d gradient skips, %d rollbacks); policy is the last good state\n",
			res.Health.RolloutSkips, res.Health.GradSkips, res.Health.Rollbacks)
		for _, ev := range res.Health.Events {
			fmt.Fprintf(os.Stderr, "rlts-train:   batch %d: %s: %s\n", ev.Batch, ev.Kind, ev.Detail)
		}
	}

	if err := storage.WriteAtomic(*out, func(w io.Writer) error {
		return trained.Save(w)
	}); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "rlts-train: policy written to %s\n", *out)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rlts-train: %v\n", err)
	os.Exit(1)
}
