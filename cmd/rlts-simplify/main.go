// Command rlts-simplify reduces every trajectory in a CSV file to a
// storage budget, using either a trained RLTS policy or one of the
// baseline algorithms, and reports the resulting errors.
//
// Usage:
//
//	rlts-simplify -in trips.csv -policy policy.json -ratio 0.1 -o out.csv
//	rlts-simplify -in trips.csv -algo bottomup -measure SED -w 50 -o out.csv
//
// Baselines: sttrace, squish, squishe (online); topdown, bottomup,
// bellman, spansearch (batch); uniform.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	baseBatch "rlts/internal/baseline/batch"
	baseOnline "rlts/internal/baseline/online"
	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/obs"
	"rlts/internal/storage"
	"rlts/internal/traj"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV file (traj_id,x,y,t)")
		out     = flag.String("o", "", "output CSV file for the simplified trajectories (default: none)")
		policy  = flag.String("policy", "", "trained RLTS policy file (from rlts-train)")
		algo    = flag.String("algo", "", "baseline algorithm name (alternative to -policy)")
		measure = flag.String("measure", "SED", "error measure for baselines and reporting")
		w       = flag.Int("w", 0, "absolute storage budget per trajectory")
		ratio   = flag.Float64("ratio", 0.1, "storage budget as a fraction of |T| (ignored when -w is set)")
		seed    = flag.Int64("seed", 1, "seed for stochastic policies")
		verbose = flag.Bool("v", false, "log per-trajectory progress")
		logJSON = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.CommandLogger(os.Stderr, "rlts-simplify", *verbose, *logJSON)

	if *in == "" {
		fail(fmt.Errorf("provide an input file with -in"))
	}
	m, err := errm.Parse(*measure)
	if err != nil {
		fail(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	dataset, err := traj.ReadCSV(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	run, name, policyMeasure, err := resolveAlgorithm(*policy, *algo, m, *seed)
	if err != nil {
		fail(err)
	}
	if policyMeasure != nil {
		// A trained policy dictates its own error measure; report under it
		// rather than the (possibly defaulted) -measure flag.
		m = *policyMeasure
	}

	var (
		results  []traj.Trajectory
		totalErr float64
		totalDur time.Duration
		points   int
	)
	for i, t := range dataset {
		budget := *w
		if budget <= 0 {
			budget = int(*ratio * float64(len(t)))
		}
		if budget < 2 {
			budget = 2
		}
		start := time.Now()
		kept, err := run(t, budget)
		totalDur += time.Since(start)
		if err != nil {
			fail(fmt.Errorf("trajectory %d: %w", i, err))
		}
		simplified := t.Pick(kept)
		results = append(results, simplified)
		totalErr += errm.Error(m, t, kept)
		points += len(t)
		logger.Debug("trajectory simplified", "index", i, "in_points", len(t),
			"out_points", len(kept), "budget", budget)
	}

	fmt.Printf("algorithm:      %s\n", name)
	fmt.Printf("trajectories:   %d (%d points)\n", len(dataset), points)
	fmt.Printf("mean %s error: %.6g\n", m, totalErr/float64(len(dataset)))
	fmt.Printf("total time:     %v (%.3f us/point)\n",
		totalDur.Round(time.Microsecond), float64(totalDur.Microseconds())/float64(points))

	if *out != "" {
		err := storage.WriteAtomic(*out, func(w io.Writer) error {
			return traj.WriteCSV(w, results)
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("written:        %s\n", *out)
	}
}

type runFunc func(t traj.Trajectory, w int) ([]int, error)

// resolveAlgorithm returns the runner, its display name and — when a
// trained policy is loaded — the measure it was trained for (nil for
// baselines, which use the -measure flag).
func resolveAlgorithm(policyPath, algo string, m errm.Measure, seed int64) (runFunc, string, *errm.Measure, error) {
	switch {
	case policyPath != "" && algo != "":
		return nil, "", nil, fmt.Errorf("use either -policy or -algo, not both")
	case policyPath != "":
		f, err := os.Open(policyPath)
		if err != nil {
			return nil, "", nil, err
		}
		defer f.Close()
		trained, err := core.LoadTrained(f)
		if err != nil {
			return nil, "", nil, err
		}
		r := rand.New(rand.NewSource(seed))
		pm := trained.Opts.Measure
		return func(t traj.Trajectory, w int) ([]int, error) {
			return trained.Simplify(t, w, r)
		}, trained.Opts.Name(), &pm, nil
	default:
		switch algo {
		case "sttrace":
			return func(t traj.Trajectory, w int) ([]int, error) { return baseOnline.STTrace(t, w, m) }, "STTrace", nil, nil
		case "squish":
			return func(t traj.Trajectory, w int) ([]int, error) { return baseOnline.SQUISH(t, w, m) }, "SQUISH", nil, nil
		case "squishe", "squish-e":
			return func(t traj.Trajectory, w int) ([]int, error) { return baseOnline.SQUISHE(t, w, m) }, "SQUISH-E", nil, nil
		case "topdown", "top-down":
			return func(t traj.Trajectory, w int) ([]int, error) { return baseBatch.TopDown(t, w, m) }, "Top-Down", nil, nil
		case "bottomup", "bottom-up":
			return func(t traj.Trajectory, w int) ([]int, error) { return baseBatch.BottomUp(t, w, m) }, "Bottom-Up", nil, nil
		case "bellman":
			return func(t traj.Trajectory, w int) ([]int, error) { return baseBatch.Bellman(t, w, m) }, "Bellman", nil, nil
		case "spansearch", "span-search":
			return func(t traj.Trajectory, w int) ([]int, error) { return baseBatch.SpanSearch(t, w) }, "Span-Search", nil, nil
		case "uniform":
			return func(t traj.Trajectory, w int) ([]int, error) { return baseOnline.Uniform(t, w) }, "Uniform", nil, nil
		case "":
			return nil, "", nil, fmt.Errorf("provide -policy FILE or -algo NAME")
		default:
			return nil, "", nil, fmt.Errorf("unknown algorithm %q", algo)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rlts-simplify: %v\n", err)
	os.Exit(1)
}
