package main

import (
	"os"
	"path/filepath"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
)

func TestResolveAlgorithmBaselines(t *testing.T) {
	names := []string{"sttrace", "squish", "squishe", "topdown", "bottomup", "bellman", "spansearch", "uniform"}
	tr := gen.New(gen.Geolife(), 1).Trajectory(60)
	for _, name := range names {
		run, label, pm, err := resolveAlgorithm("", name, errm.SED, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if label == "" {
			t.Errorf("%s: empty label", name)
		}
		if pm != nil {
			t.Errorf("%s: baseline returned a policy measure", name)
		}
		kept, err := run(tr, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(kept) > 10 {
			t.Errorf("%s: kept %d", name, len(kept))
		}
	}
}

func TestResolveAlgorithmErrors(t *testing.T) {
	if _, _, _, err := resolveAlgorithm("", "", errm.SED, 1); err == nil {
		t.Error("neither policy nor algo: accepted")
	}
	if _, _, _, err := resolveAlgorithm("", "warp-drive", errm.SED, 1); err == nil {
		t.Error("unknown algo accepted")
	}
	if _, _, _, err := resolveAlgorithm("x.json", "sttrace", errm.SED, 1); err == nil {
		t.Error("both policy and algo accepted")
	}
	if _, _, _, err := resolveAlgorithm(filepath.Join(t.TempDir(), "missing.json"), "", errm.SED, 1); err == nil {
		t.Error("missing policy file accepted")
	}
}

func TestResolveAlgorithmPolicyFile(t *testing.T) {
	// Train a minimal policy, save it, and resolve it.
	opts := core.DefaultOptions(errm.SED, core.Online)
	to := core.DefaultTrainOptions()
	to.RL.Episodes = 3
	ds := gen.New(gen.Geolife(), 2).Dataset(5, 60)
	trained, _, err := core.Train(ds, opts, to)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trained.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	run, label, pm, err := resolveAlgorithm(path, "", errm.PED, 1)
	if err != nil {
		t.Fatal(err)
	}
	if label != "RLTS" {
		t.Errorf("label = %q", label)
	}
	if pm == nil || *pm != errm.SED {
		t.Errorf("policy measure = %v, want SED (the trained measure)", pm)
	}
	tr := gen.New(gen.Geolife(), 3).Trajectory(80)
	kept, err := run(tr, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > 12 {
		t.Errorf("kept %d", len(kept))
	}
}
