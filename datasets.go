package rlts

import (
	"io"

	"rlts/internal/gen"
	"rlts/internal/traj"
)

// DatasetProfile describes a synthetic dataset generator configuration.
type DatasetProfile = gen.Config

// Geolife returns the dense multi-modal profile matching the paper's
// Geolife statistics (1-5 s sampling, ~10 m spacing).
func Geolife() DatasetProfile { return gen.Geolife() }

// TDrive returns the sparse taxi profile matching the paper's T-Drive
// statistics (~177 s sampling, ~623 m spacing).
func TDrive() DatasetProfile { return gen.TDrive() }

// Truck returns the freight-truck profile matching the paper's Truck
// statistics (3-60 s sampling, ~83 m spacing).
func Truck() DatasetProfile { return gen.Truck() }

// Generate produces count seeded synthetic trajectories of n points each.
func Generate(profile DatasetProfile, seed int64, count, n int) []Trajectory {
	return gen.New(profile, seed).Dataset(count, n)
}

// GenerateVaried produces count trajectories with lengths drawn uniformly
// from [minN, maxN].
func GenerateVaried(profile DatasetProfile, seed int64, count, minN, maxN int) []Trajectory {
	return gen.New(profile, seed).DatasetVaried(count, minN, maxN)
}

// DatasetStats summarizes a dataset the way the paper's Table I does.
type DatasetStats = traj.Stats

// Summarize computes dataset statistics.
func Summarize(ts []Trajectory) DatasetStats { return traj.Summarize(ts) }

// WriteCSV writes trajectories in the traj_id,x,y,t CSV format used by
// the cmd/ tools.
func WriteCSV(w io.Writer, ts []Trajectory) error { return traj.WriteCSV(w, ts) }

// ReadCSV reads trajectories in the traj_id,x,y,t CSV format.
func ReadCSV(r io.Reader) ([]Trajectory, error) { return traj.ReadCSV(r) }
