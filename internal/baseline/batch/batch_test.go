package batch

import (
	"testing"
	"testing/quick"

	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

func testTraj(seed int64, n int) traj.Trajectory {
	return gen.New(gen.Geolife(), seed).Trajectory(n)
}

func validSimplification(t *testing.T, tr traj.Trajectory, kept []int, w int, name string) {
	t.Helper()
	if len(kept) > w {
		t.Errorf("%s: kept %d > W %d", name, len(kept), w)
	}
	if kept[0] != 0 || kept[len(kept)-1] != len(tr)-1 {
		t.Errorf("%s: endpoints not kept", name)
	}
	if !tr.Pick(kept).IsSimplificationOf(tr) {
		t.Errorf("%s: not a valid simplification", name)
	}
}

func TestBottomUpAndTopDownValid(t *testing.T) {
	tr := testTraj(1, 150)
	for _, m := range errm.Measures {
		ku, err := BottomUp(tr, 20, m)
		if err != nil {
			t.Fatal(err)
		}
		validSimplification(t, tr, ku, 20, "BottomUp/"+m.String())
		kd, err := TopDown(tr, 20, m)
		if err != nil {
			t.Fatal(err)
		}
		validSimplification(t, tr, kd, 20, "TopDown/"+m.String())
	}
}

func TestBellmanValidAndNoWorse(t *testing.T) {
	tr := testTraj(2, 60)
	const w = 10
	for _, m := range errm.Measures {
		kb, err := Bellman(tr, w, m)
		if err != nil {
			t.Fatal(err)
		}
		validSimplification(t, tr, kb, w, "Bellman/"+m.String())
		optimal := errm.Error(m, tr, kb)
		for name, f := range map[string]func(traj.Trajectory, int, errm.Measure) ([]int, error){
			"BottomUp": BottomUp, "TopDown": TopDown,
		} {
			kh, err := f(tr, w, m)
			if err != nil {
				t.Fatal(err)
			}
			he := errm.Error(m, tr, kh)
			if optimal > he+1e-9 {
				t.Errorf("%v: Bellman error %v exceeds %s error %v — not optimal", m, optimal, name, he)
			}
		}
	}
}

func TestBellmanExactOnKnownInstance(t *testing.T) {
	// A spike trajectory: straight line with one off-line point. Keeping
	// the spike point gives zero error with 3 kept points.
	tr := traj.Trajectory{
		geo.Pt(0, 0, 0), geo.Pt(1, 0, 1), geo.Pt(2, 0, 2),
		geo.Pt(3, 5, 3), // spike
		geo.Pt(4, 10, 4), geo.Pt(5, 15, 5),
	}
	kept, err := Bellman(tr, 3, errm.PED)
	if err != nil {
		t.Fatal(err)
	}
	if e := errm.Error(errm.PED, tr, kept); e > 1e-9 {
		t.Errorf("Bellman error %v on exactly-representable instance, kept %v", e, kept)
	}
}

func TestBottomUpEqualsGreedyMergeSemantics(t *testing.T) {
	// On a straight line every drop has zero cost, so Bottom-Up must reach
	// exactly W points with zero error.
	tr := make(traj.Trajectory, 40)
	for i := range tr {
		tr[i] = geo.Pt(float64(i), 0, float64(i))
	}
	kept, err := BottomUp(tr, 5, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 5 {
		t.Errorf("kept %d, want 5", len(kept))
	}
	if e := errm.Error(errm.SED, tr, kept); e != 0 {
		t.Errorf("error %v, want 0", e)
	}
}

func TestTopDownPicksWorstSpike(t *testing.T) {
	// With budget 3, Top-Down must keep the largest spike.
	tr := traj.Trajectory{
		geo.Pt(0, 0, 0), geo.Pt(1, 1, 1), geo.Pt(2, 0, 2),
		geo.Pt(3, 7, 3), // dominant spike
		geo.Pt(4, 0, 4), geo.Pt(5, 0, 5),
	}
	kept, err := TopDown(tr, 3, errm.PED)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ix := range kept {
		if ix == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("TopDown kept %v, expected the spike at 3", kept)
	}
}

func TestSpanSearchValidAndBounded(t *testing.T) {
	tr := testTraj(3, 200)
	kept, derr, err := SpanSearchError(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	validSimplification(t, tr, kept, 30, "SpanSearch")
	if derr < 0 {
		t.Errorf("negative DAD error %v", derr)
	}
	// Span-Search is a dedicated DAD algorithm: it should be competitive
	// with (not wildly worse than) Bottom-Up under DAD.
	kb, err := BottomUp(tr, 30, errm.DAD)
	if err != nil {
		t.Fatal(err)
	}
	be := errm.Error(errm.DAD, tr, kb)
	if derr > be*3+0.5 {
		t.Errorf("SpanSearch DAD %v much worse than BottomUp %v", derr, be)
	}
}

func TestShortInputsKeptWhole(t *testing.T) {
	tr := testTraj(4, 8)
	for name, f := range map[string]func(traj.Trajectory, int, errm.Measure) ([]int, error){
		"BottomUp": BottomUp, "TopDown": TopDown, "Bellman": Bellman,
	} {
		kept, err := f(tr, 20, errm.SED)
		if err != nil {
			t.Fatal(err)
		}
		if len(kept) != 8 {
			t.Errorf("%s: kept %d, want 8", name, len(kept))
		}
	}
	kept, err := SpanSearch(tr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 8 {
		t.Errorf("SpanSearch: kept %d, want 8", len(kept))
	}
}

func TestArgumentValidation(t *testing.T) {
	tr := testTraj(5, 40)
	for name, f := range map[string]func(traj.Trajectory, int, errm.Measure) ([]int, error){
		"BottomUp": BottomUp, "TopDown": TopDown, "Bellman": Bellman,
	} {
		if _, err := f(tr, 1, errm.SED); err == nil {
			t.Errorf("%s: W=1 accepted", name)
		}
		if _, err := f(tr[:1], 5, errm.SED); err == nil {
			t.Errorf("%s: single point accepted", name)
		}
		if _, err := f(tr, 5, errm.Measure(42)); err == nil {
			t.Errorf("%s: invalid measure accepted", name)
		}
	}
	if _, err := SpanSearch(tr, 1); err == nil {
		t.Error("SpanSearch: W=1 accepted")
	}
}

func TestBellmanOptimalProperty(t *testing.T) {
	// For random small instances, Bellman's error must lower-bound both
	// heuristics under SED and PED.
	f := func(seed int64, wByte uint8) bool {
		n := 15 + int(wByte%15)
		w := 4 + int(wByte%5)
		tr := testTraj(seed, n)
		for _, m := range []errm.Measure{errm.SED, errm.PED} {
			kb, err := Bellman(tr, w, m)
			if err != nil {
				return false
			}
			be := errm.Error(m, tr, kb)
			ku, err := BottomUp(tr, w, m)
			if err != nil {
				return false
			}
			if be > errm.Error(m, tr, ku)+1e-9 {
				return false
			}
			kd, err := TopDown(tr, w, m)
			if err != nil {
				return false
			}
			if be > errm.Error(m, tr, kd)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBottomUpBudgetExactProperty(t *testing.T) {
	f := func(seed int64, wByte uint8) bool {
		n := 20 + int(wByte%40)
		w := 3 + int(wByte%10)
		tr := testTraj(seed, n)
		kept, err := BottomUp(tr, w, errm.SED)
		if err != nil {
			return false
		}
		return len(kept) == w && tr.Pick(kept).IsSimplificationOf(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
