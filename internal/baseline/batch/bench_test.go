package batch

import (
	"testing"

	"rlts/internal/errm"
	"rlts/internal/gen"
)

func BenchmarkBottomUp(b *testing.B) {
	t := gen.New(gen.Truck(), 1).Trajectory(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BottomUp(t, 500, errm.SED); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopDown(b *testing.B) {
	t := gen.New(gen.Truck(), 1).Trajectory(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopDown(t, 500, errm.SED); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBellmanShort(b *testing.B) {
	t := gen.New(gen.Geolife(), 1).Trajectory(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bellman(t, 20, errm.SED); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpanSearch(b *testing.B) {
	t := gen.New(gen.Truck(), 1).Trajectory(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpanSearch(t, 500); err != nil {
			b.Fatal(err)
		}
	}
}
