// Package batch implements the batch-mode Min-Error algorithms the paper
// compares against:
//
//	Bellman     — the exact dynamic program (min-max formulation), cubic
//	              time; only feasible on short trajectories.
//	TopDown     — budgeted Douglas-Peucker: repeatedly split the segment
//	              with the largest error at its worst point until W points
//	              are kept.
//	BottomUp    — start from all points and repeatedly drop the point whose
//	              removal introduces the smallest error,
//	              O((n-W)(n' + log n)).
//	SpanSearch  — the DAD-specific binary search over error bounds with a
//	              greedy maximal-span cover.
package batch

import (
	"container/heap"
	"fmt"
	"sort"

	"rlts/internal/buffer"
	"rlts/internal/errm"
	"rlts/internal/traj"
)

func checkArgs(n, w int) error {
	if w < 2 {
		return fmt.Errorf("batch: budget W must be >= 2, got %d", w)
	}
	if n < 2 {
		return traj.ErrTooShort
	}
	return nil
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// BottomUp simplifies t to at most w points by repeatedly dropping the
// point with the smallest merge cost (the Eq. 12 value: the error of the
// segment its removal would create, over every original point in the
// span).
func BottomUp(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
	n := len(t)
	if err := checkArgs(n, w); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("batch: invalid measure %d", int(m))
	}
	if n <= w {
		return allIndices(n), nil
	}
	buf := buffer.New(n)
	for i := 0; i < n; i++ {
		buf.Append(i, t[i])
	}
	for e := buf.Head().Next(); e != buf.Tail(); e = e.Next() {
		buf.SetValue(e, errm.SegmentError(m, t, e.Prev().Index, e.Next().Index))
	}
	for buf.Size() > w {
		d := buf.Min()
		prev, next := buf.Drop(d)
		if prev.Prev() != nil {
			buf.SetValue(prev, errm.SegmentError(m, t, prev.Prev().Index, next.Index))
		}
		if next.Next() != nil {
			buf.SetValue(next, errm.SegmentError(m, t, prev.Index, next.Next().Index))
		}
	}
	return buf.Indices(), nil
}

// TopDown simplifies t to at most w points Douglas-Peucker style: starting
// from the endpoints, repeatedly split the segment with the largest error
// at its maximum-error point.
func TopDown(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
	n := len(t)
	if err := checkArgs(n, w); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("batch: invalid measure %d", int(m))
	}
	if n <= w {
		return allIndices(n), nil
	}
	h := &segHeap{}
	heap.Init(h)
	pushSeg(h, t, m, 0, n-1)
	kept := 2
	for kept < w && h.Len() > 0 {
		s := heap.Pop(h).(splitSeg)
		if s.err == 0 {
			// Every remaining segment is exact; no further split helps.
			heap.Push(h, s)
			break
		}
		pushSeg(h, t, m, s.a, s.split)
		pushSeg(h, t, m, s.split, s.b)
		kept++
	}
	// Collect kept indices: the segment endpoints remaining in the heap.
	marks := map[int]bool{0: true, n - 1: true}
	for _, s := range *h {
		marks[s.a] = true
		marks[s.b] = true
	}
	out := make([]int, 0, len(marks))
	for ix := range marks {
		out = append(out, ix)
	}
	sort.Ints(out)
	return out, nil
}

// splitSeg is a segment in the Top-Down heap with its worst interior point.
type splitSeg struct {
	a, b  int
	split int
	err   float64
}

type segHeap []splitSeg

func (h segHeap) Len() int            { return len(h) }
func (h segHeap) Less(i, j int) bool  { return h[i].err > h[j].err } // max-heap
func (h segHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *segHeap) Push(x interface{}) { *h = append(*h, x.(splitSeg)) }
func (h *segHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

func pushSeg(h *segHeap, t traj.Trajectory, m errm.Measure, a, b int) {
	if b <= a+1 {
		heap.Push(h, splitSeg{a: a, b: b, split: -1, err: 0})
		return
	}
	worst, at := -1.0, a+1
	for i := a + 1; i < b; i++ {
		if e := errm.PointError(m, t, a, i, b); e > worst {
			worst, at = e, i
		}
	}
	heap.Push(h, splitSeg{a: a, b: b, split: at, err: worst})
}

// Bellman computes the exact Min-Error simplification (minimum over
// simplifications of the maximum segment error) with at most w kept
// points, via dynamic programming. It precomputes all pairwise segment
// errors, so it needs O(n^2) memory and O(n^3) time — use it only on
// short trajectories, as the paper does (~300 points).
func Bellman(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
	n := len(t)
	if err := checkArgs(n, w); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("batch: invalid measure %d", int(m))
	}
	if n <= w {
		return allIndices(n), nil
	}
	// segErr[a][b] = error of anchor segment (a, b).
	segErr := make([][]float64, n)
	for a := 0; a < n; a++ {
		segErr[a] = make([]float64, n)
		for b := a + 1; b < n; b++ {
			segErr[a][b] = errm.SegmentError(m, t, a, b)
		}
	}
	const inf = 1e308
	// d[c][i]: minimal max-error over simplifications of T[0..i] keeping
	// exactly c+1 points and ending at i. parent[c][i] reconstructs.
	d := make([][]float64, w)
	parent := make([][]int, w)
	for c := 0; c < w; c++ {
		d[c] = make([]float64, n)
		parent[c] = make([]int, n)
		for i := range d[c] {
			d[c][i] = inf
			parent[c][i] = -1
		}
	}
	d[0][0] = 0
	for c := 1; c < w; c++ {
		for i := 1; i < n; i++ {
			for l := c - 1; l < i; l++ {
				if d[c-1][l] >= inf {
					continue
				}
				v := d[c-1][l]
				if e := segErr[l][i]; e > v {
					v = e
				}
				if v < d[c][i] {
					d[c][i] = v
					parent[c][i] = l
				}
			}
		}
	}
	// The best simplification may use fewer than w points.
	bestC, bestV := -1, inf
	for c := 1; c < w; c++ {
		if d[c][n-1] < bestV {
			bestC, bestV = c, d[c][n-1]
		}
	}
	if bestC < 0 {
		return nil, fmt.Errorf("batch: Bellman found no solution (w=%d, n=%d)", w, n)
	}
	kept := make([]int, 0, bestC+1)
	for c, i := bestC, n-1; i >= 0 && c >= 0; c-- {
		kept = append(kept, i)
		i = parent[c][i]
		if c == 0 {
			break
		}
	}
	// Reverse.
	for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
		kept[l], kept[r] = kept[r], kept[l]
	}
	return kept, nil
}
