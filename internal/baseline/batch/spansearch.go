package batch

import (
	"fmt"
	"math"

	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

// SpanSearch simplifies t to at most w points under the direction-aware
// distance (DAD), following the span-search idea: binary-search the
// smallest error bound tau for which a greedy maximal-span cover needs at
// most w points, then return that cover.
//
// The greedy cover extends each anchor segment as far as possible while
// the segment direction stays within tau of every original motion
// direction in its span — the direction-sector feasibility test of the
// original algorithm. The binary search runs a fixed number of iterations
// over [0, pi], giving the O(c n log n)-style behaviour the paper cites.
func SpanSearch(t traj.Trajectory, w int) ([]int, error) {
	n := len(t)
	if err := checkArgs(n, w); err != nil {
		return nil, err
	}
	if n <= w {
		return allIndices(n), nil
	}
	// Motion directions of the original segments; nil-direction (stationary)
	// segments impose no constraint, mirroring geo.DirectionDistance.
	dirs := make([]float64, n-1)
	moving := make([]bool, n-1)
	for i := 0; i < n-1; i++ {
		s := t.Segment(i, i+1)
		moving[i] = !s.IsDegenerate()
		dirs[i] = s.Direction()
	}

	lo, hi := 0.0, math.Pi
	var best []int
	if kept := greedyCover(t, dirs, moving, hi); len(kept) <= w {
		best = kept
	} else {
		return nil, fmt.Errorf("batch: SpanSearch cannot meet budget %d even at tau=pi", w)
	}
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		kept := greedyCover(t, dirs, moving, mid)
		if len(kept) <= w {
			hi = mid
			best = kept
		} else {
			lo = mid
		}
	}
	return best, nil
}

// greedyCover returns a simplification whose every segment has DAD error
// at most tau, using greedy maximal spans.
func greedyCover(t traj.Trajectory, dirs []float64, moving []bool, tau float64) []int {
	n := len(t)
	kept := []int{0}
	a := 0
	for a < n-1 {
		// Extend b as far as the direction constraint allows.
		b := a + 1
		for b < n-1 && spanOK(t, dirs, moving, a, b+1, tau) {
			b++
		}
		kept = append(kept, b)
		a = b
	}
	return kept
}

// spanOK reports whether the anchor segment (a, b) stays within tau of all
// motion directions in [a, b).
func spanOK(t traj.Trajectory, dirs []float64, moving []bool, a, b int, tau float64) bool {
	anchor := t.Segment(a, b)
	if anchor.IsDegenerate() {
		// A degenerate anchor has no direction; it is acceptable only if
		// nothing in the span moves either.
		for j := a; j < b; j++ {
			if moving[j] {
				return false
			}
		}
		return true
	}
	ad := anchor.Direction()
	for j := a; j < b; j++ {
		if !moving[j] {
			continue
		}
		if geo.AngularDifference(ad, dirs[j]) > tau {
			return false
		}
	}
	return true
}

// SpanSearchError is a convenience returning the DAD error alongside the
// kept indices.
func SpanSearchError(t traj.Trajectory, w int) ([]int, float64, error) {
	kept, err := SpanSearch(t, w)
	if err != nil {
		return nil, 0, err
	}
	return kept, errm.Error(errm.DAD, t, kept), nil
}
