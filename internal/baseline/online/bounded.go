// Error-bounded one-pass simplifiers: the O(n) production rivals of the
// Min-Error algorithms. Instead of a point budget W they take an error
// bound eps and keep as few points as they can while *guaranteeing* the
// simplification error stays within eps:
//
//	CISED — "One-Pass Trajectory Simplification Using the Synchronous
//	        Euclidean Distance" (Lin et al., arXiv:1801.05360). Bounds
//	        the SED via the synchronous circle intersection test: in
//	        velocity space every skipped point constrains the segment's
//	        average velocity to a disk, and a candidate endpoint is
//	        feasible while its velocity stays inside the intersection.
//	        This is the strong (CISED-S) variant: kept points are
//	        original points.
//	OPERB — "One-Pass Error Bounded Trajectory Simplification" (Lin et
//	        al., arXiv:1702.05597). Bounds the PED via a directed
//	        fitting function: every skipped point constrains the
//	        segment's direction to an angular sector around the anchor,
//	        and the endpoint must reach at least as far as every point
//	        it covers so clamped projections stay on the segment.
//
// Both run one pass in O(n) time and O(1) working memory (CISED keeps
// cisedEdges scalars, OPERB a sector and a distance). The bound is proved
// against the exact errm.Error oracle by the internal/check pillar
// (bounded_test.go) over every adversarial family; the serving mode
// (POST /v1/simplify with "bound") re-scores every response the same way.
//
// # Degenerate inputs
//
// A negative, NaN or Inf eps is an error. eps == 0 keeps every point
// (error exactly 0). n < 2 is traj.ErrTooShort. Non-finite intermediate
// arithmetic (extreme ±6e307 coordinates overflowing a difference, or a
// non-increasing time span from an unvalidated caller) never breaks the
// bound: any non-finite feasibility quantity conservatively fails the
// test, which only keeps more points.
package online

import (
	"fmt"
	"math"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// cisedEdges is the number of half-planes approximating each synchronous
// circle (the paper's inscribed regular m-gon; m=16 loses at most
// 1-cos(pi/16) ~ 1.9% of the feasible disk).
const cisedEdges = 16

// boundGuard shrinks the requested bound by one part in 1e9 before any
// feasibility arithmetic, so the simplifier's rounding can never land a
// kept set epsilon-above the bound when the exact oracle re-scores it.
// The slack is ~7 decimal orders above float64 rounding noise and ~7
// below any meaningful bound, so it never changes a real decision.
const boundGuard = 1 - 1e-9

// feasSlack returns the absolute slack the feasibility tests must leave
// against the exact oracle's re-scoring at coordinate magnitude mag: the
// relative boundGuard is useless once the requested bound drops below
// the oracle's own rounding floor. The geo fast paths round at ~1e-15
// relative to the coordinates; the overflow-guarded wide paths (which
// engage above ~1e150, where squared differences overflow) are proven
// only to 1e-9 relative by the scaling differential in internal/check —
// the slack sits a couple of orders above each. A bound below this floor
// makes every skip unprovable, and the simplifiers honestly degrade to
// the identity simplification (error exactly 0) instead of returning a
// kept set the oracle could score above the bound.
func feasSlack(mag float64) float64 {
	if mag > 1e150 {
		return mag * 1e-8
	}
	return mag * 1e-13
}

// coordMag returns the largest coordinate component magnitude of t.
func coordMag(t traj.Trajectory) float64 {
	var m float64
	for _, p := range t {
		m = math.Max(m, math.Max(math.Abs(p.X), math.Abs(p.Y)))
	}
	return m
}

func checkBound(n int, eps float64) error {
	if n < 2 {
		return traj.ErrTooShort
	}
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("online: error bound must be finite and >= 0, got %v", eps)
	}
	return nil
}

// CISED simplifies t to the kept indices of an error-bounded
// simplification with SED error <= eps, in one O(n) pass (CISED-S).
//
// For the anchor P_s, a candidate endpoint P_k covers a skipped point P_i
// within SED eps iff the segment's average velocity v = (P_k-P_s)/(t_k-t_s)
// lies in the disk centered at v_i = (P_i-P_s)/(t_i-t_s) with radius
// eps/(t_i-t_s) — the synchronous circle, independent of t_k. The pass
// maintains the intersection of the inscribed regular cisedEdges-gons of
// those disks as one half-plane offset per fixed edge direction (O(1)
// state); when the next point's velocity falls outside, the previous
// point is emitted and becomes the new anchor.
func CISED(t traj.Trajectory, eps float64) ([]int, error) {
	n := len(t)
	if err := checkBound(n, eps); err != nil {
		return nil, err
	}
	if eps = eps*boundGuard - feasSlack(coordMag(t)); eps <= 0 {
		// Zero bound, or a bound below the oracle's rounding floor at this
		// coordinate scale: no skip is provable, keep every point.
		return allIndices(n), nil
	}

	// Fixed edge normals shared by every inscribed polygon: the region is
	// {v : nx[j]*v.x + ny[j]*v.y <= off[j]} and a disk (c, r) contributes
	// off[j] = min(off[j], n_j·c + r*cos(pi/m)).
	var nx, ny, off [cisedEdges]float64
	for j := range nx {
		a := 2 * math.Pi * (float64(j) + 0.5) / cisedEdges
		nx[j], ny[j] = math.Cos(a), math.Sin(a)
	}
	inset := math.Cos(math.Pi / cisedEdges)
	reset := func() {
		for j := range off {
			off[j] = math.Inf(1)
		}
	}
	reset()

	kept := []int{0}
	s := 0
	for k := 1; k < n; k++ {
		dt := t[k].T - t[s].T
		vx := (t[k].X - t[s].X) / dt
		vy := (t[k].Y - t[s].Y) / dt
		feasible := dt > 0 && isFinite(vx) && isFinite(vy)
		for j := 0; feasible && j < cisedEdges; j++ {
			// A NaN product fails the comparison, hence the test: exactly
			// the conservative behavior the package doc promises.
			if !(nx[j]*vx+ny[j]*vy <= off[j]) {
				feasible = false
			}
		}
		if !feasible {
			// Emit the last feasible endpoint and restart behind k. When k
			// is the anchor's immediate successor the adjacent segment
			// s->k has zero error by definition, so k itself is kept.
			if k == s+1 {
				kept = append(kept, k)
				s = k
			} else {
				kept = append(kept, k-1)
				s = k - 1
				k-- // reprocess k against the new anchor
			}
			reset()
			continue
		}
		// P_k joins the covered prefix: its synchronous circle (center is
		// its own velocity) constrains all later endpoints.
		r := eps / dt
		for j := range off {
			if o := nx[j]*vx + ny[j]*vy + r*inset; o < off[j] || math.IsNaN(o) {
				// A NaN offset (overflowed center on the extreme families)
				// poisons the region so the next point cuts: conservative.
				off[j] = o
			}
		}
	}
	return appendLast(kept, n-1), nil
}

// OPERB simplifies t to the kept indices of an error-bounded
// simplification with PED error <= eps, in one O(n) pass.
//
// For the anchor P_s, a skipped point P_i farther than eps from P_s
// constrains the segment's direction to the sector of half-angle
// asin(eps/|P_sP_i|) around the direction of P_i (the directed fitting
// function); a point within eps of the anchor is covered by any segment
// (the anchor itself is on it). The endpoint must additionally reach at
// least as far from the anchor as every covered point, so the oracle's
// clamped projection cannot slide past the segment end. The pass keeps
// one sector (center, half-width) and one distance.
func OPERB(t traj.Trajectory, eps float64) ([]int, error) {
	n := len(t)
	if err := checkBound(n, eps); err != nil {
		return nil, err
	}
	if eps = eps*boundGuard - feasSlack(coordMag(t)); eps <= 0 {
		// Zero bound, or a bound below the oracle's rounding floor at this
		// coordinate scale: no skip is provable, keep every point.
		return allIndices(n), nil
	}

	var (
		hasSector bool    // false: every direction is still feasible
		secC      float64 // sector center direction (radians)
		secW      float64 // sector half-width; < 0 marks an empty sector
		maxD      float64 // farthest covered point from the anchor
	)
	reset := func() { hasSector, secC, secW, maxD = false, 0, 0, 0 }

	kept := []int{0}
	s := 0
	for k := 1; k < n; k++ {
		d := geo.Dist(t[s], t[k])
		theta := math.Atan2(t[k].Y-t[s].Y, t[k].X-t[s].X)
		feasible := isFinite(d) && d >= maxD
		if feasible && hasSector {
			feasible = secW >= 0 && math.Abs(angDiff(theta, secC)) <= secW
		}
		if !feasible {
			if k == s+1 {
				kept = append(kept, k)
				s = k
			} else {
				kept = append(kept, k-1)
				s = k - 1
				k--
			}
			reset()
			continue
		}
		if d > maxD {
			maxD = d
		}
		if d > eps {
			// Constraining point: intersect the sector with its cone.
			w := math.Asin(eps / d)
			if !hasSector {
				hasSector, secC, secW = true, theta, w
			} else {
				// Work in the frame of the current center: the new arc is
				// [delta-w, delta+w], the old one [-secW, secW].
				delta := angDiff(theta, secC)
				lo := math.Max(-secW, delta-w)
				hi := math.Min(secW, delta+w)
				secC = math.Atan2(math.Sin(secC+(lo+hi)/2), math.Cos(secC+(lo+hi)/2))
				secW = (hi - lo) / 2 // < 0: empty, next point cuts
			}
		}
	}
	return appendLast(kept, n-1), nil
}

// appendLast closes the open segment at the final point, which is already
// present when the last processed point was kept by a cut.
func appendLast(kept []int, last int) []int {
	if kept[len(kept)-1] == last {
		return kept
	}
	return append(kept, last)
}

// angDiff returns the signed angular difference a-b folded into
// (-pi, pi].
func angDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	switch {
	case d > math.Pi:
		d -= 2 * math.Pi
	case d <= -math.Pi:
		d += 2 * math.Pi
	}
	return d
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
