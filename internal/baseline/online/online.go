// Package online implements the online-mode Min-Error baselines the paper
// compares against: STTrace, SQUISH and SQUISH-E. All three share the
// buffered scan framework (fill a W-point buffer, then drop one point per
// incoming point) and differ only in how a point's importance value is
// defined and repaired after a drop:
//
//	STTrace   — importance is recomputed exactly from the current
//	            neighbours (Potamias et al.).
//	SQUISH    — the dropped point's priority is *added* to its neighbours,
//	            carrying accumulated error forward (Muckell et al. 2011).
//	SQUISH-E  — the dropped point's priority is carried as a *maximum*,
//	            the refined update of Muckell et al. 2014.
//
// The importance of a point is the measure-generic online value (package
// errm), so all baselines run under SED, PED, DAD and SAD as in the
// paper's comparison. All three run in O((n-W) log W).
package online

import (
	"fmt"

	"rlts/internal/buffer"
	"rlts/internal/errm"
	"rlts/internal/traj"
)

// repairFunc updates the values of the two neighbours of a dropped entry.
// carried tracks per-entry error carried over from earlier drops.
type repairFunc func(buf *buffer.Buffer, m errm.Measure, dropped, prev, next *buffer.Entry, carried map[*buffer.Entry]float64)

// STTrace simplifies t to at most w points using exact neighbour
// recomputation.
func STTrace(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
	return runOnline(t, w, m, func(buf *buffer.Buffer, m errm.Measure, dropped, prev, next *buffer.Entry, _ map[*buffer.Entry]float64) {
		if prev.Prev() != nil {
			buf.SetValue(prev, errm.OnlineValue(m, prev.Prev().P, prev.P, next.P))
		}
		if next.Next() != nil {
			buf.SetValue(next, errm.OnlineValue(m, prev.P, next.P, next.Next().P))
		}
	})
}

// SQUISH simplifies t to at most w points, distributing a dropped point's
// priority additively to its neighbours.
func SQUISH(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
	return runOnline(t, w, m, func(buf *buffer.Buffer, m errm.Measure, dropped, prev, next *buffer.Entry, carried map[*buffer.Entry]float64) {
		dv := dropped.Value()
		carried[prev] += dv
		carried[next] += dv
		if prev.Prev() != nil {
			buf.SetValue(prev, errm.OnlineValue(m, prev.Prev().P, prev.P, next.P)+carried[prev])
		}
		if next.Next() != nil {
			buf.SetValue(next, errm.OnlineValue(m, prev.P, next.P, next.Next().P)+carried[next])
		}
	})
}

// SQUISHE simplifies t to at most w points, carrying a dropped point's
// priority to its neighbours as a maximum (the SQUISH-E refinement).
func SQUISHE(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
	return runOnline(t, w, m, func(buf *buffer.Buffer, m errm.Measure, dropped, prev, next *buffer.Entry, carried map[*buffer.Entry]float64) {
		dv := dropped.Value()
		if dv > carried[prev] {
			carried[prev] = dv
		}
		if dv > carried[next] {
			carried[next] = dv
		}
		if prev.Prev() != nil {
			buf.SetValue(prev, errm.OnlineValue(m, prev.Prev().P, prev.P, next.P)+carried[prev])
		}
		if next.Next() != nil {
			buf.SetValue(next, errm.OnlineValue(m, prev.P, next.P, next.Next().P)+carried[next])
		}
	})
}

// Uniform keeps every ceil(n/w)-th point (plus the endpoints). It is not a
// paper baseline but a useful sanity floor for the evaluation harness.
func Uniform(t traj.Trajectory, w int) ([]int, error) {
	n := len(t)
	if err := checkArgs(n, w); err != nil {
		return nil, err
	}
	if n <= w {
		return allIndices(n), nil
	}
	kept := make([]int, 0, w)
	// Spread w kept points evenly across [0, n-1].
	for i := 0; i < w; i++ {
		ix := i * (n - 1) / (w - 1)
		if len(kept) > 0 && kept[len(kept)-1] == ix {
			continue
		}
		kept = append(kept, ix)
	}
	if kept[len(kept)-1] != n-1 {
		kept = append(kept, n-1)
	}
	return kept, nil
}

func runOnline(t traj.Trajectory, w int, m errm.Measure, repair repairFunc) ([]int, error) {
	n := len(t)
	if err := checkArgs(n, w); err != nil {
		return nil, err
	}
	if !m.Valid() {
		return nil, fmt.Errorf("online: invalid measure %d", int(m))
	}
	if n <= w {
		return allIndices(n), nil
	}
	buf := buffer.New(w + 1)
	carried := make(map[*buffer.Entry]float64)
	for i := 0; i < w; i++ {
		buf.Append(i, t[i])
	}
	for e := buf.Head().Next(); e != buf.Tail(); e = e.Next() {
		buf.SetValue(e, errm.OnlineValue(m, e.Prev().P, e.P, e.Next().P))
	}
	for i := w; i < n; i++ {
		old := buf.Tail()
		buf.Append(i, t[i])
		buf.SetValue(old, errm.OnlineValue(m, old.Prev().P, old.P, old.Next().P)+carried[old])
		d := buf.Min()
		prev, next := buf.Drop(d)
		delete(carried, d)
		repair(buf, m, d, prev, next, carried)
	}
	return buf.Indices(), nil
}

func checkArgs(n, w int) error {
	if w < 2 {
		return fmt.Errorf("online: budget W must be >= 2, got %d", w)
	}
	if n < 2 {
		return traj.ErrTooShort
	}
	return nil
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
