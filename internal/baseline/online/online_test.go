package online

import (
	"testing"
	"testing/quick"

	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

type algo struct {
	name string
	run  func(traj.Trajectory, int, errm.Measure) ([]int, error)
}

func algos() []algo {
	return []algo{
		{"STTrace", STTrace},
		{"SQUISH", SQUISH},
		{"SQUISH-E", SQUISHE},
	}
}

func testTraj(seed int64, n int) traj.Trajectory {
	return gen.New(gen.Geolife(), seed).Trajectory(n)
}

func TestAlgorithmsProduceValidSimplifications(t *testing.T) {
	tr := testTraj(1, 120)
	for _, a := range algos() {
		for _, m := range errm.Measures {
			t.Run(a.name+"/"+m.String(), func(t *testing.T) {
				kept, err := a.run(tr, 20, m)
				if err != nil {
					t.Fatal(err)
				}
				if len(kept) > 20 {
					t.Errorf("kept %d > 20", len(kept))
				}
				if kept[0] != 0 || kept[len(kept)-1] != len(tr)-1 {
					t.Errorf("endpoints not kept: %v...%v", kept[0], kept[len(kept)-1])
				}
				if !tr.Pick(kept).IsSimplificationOf(tr) {
					t.Error("not a valid simplification")
				}
			})
		}
	}
}

func TestShortTrajectoryKeptWhole(t *testing.T) {
	tr := testTraj(2, 10)
	for _, a := range algos() {
		kept, err := a.run(tr, 20, errm.SED)
		if err != nil {
			t.Fatal(err)
		}
		if len(kept) != 10 {
			t.Errorf("%s: kept %d, want all 10", a.name, len(kept))
		}
	}
}

func TestArgumentValidation(t *testing.T) {
	tr := testTraj(3, 50)
	for _, a := range algos() {
		if _, err := a.run(tr, 1, errm.SED); err == nil {
			t.Errorf("%s: W=1 accepted", a.name)
		}
		if _, err := a.run(tr[:1], 5, errm.SED); err == nil {
			t.Errorf("%s: single point accepted", a.name)
		}
		if _, err := a.run(tr, 5, errm.Measure(99)); err == nil {
			t.Errorf("%s: invalid measure accepted", a.name)
		}
	}
}

func TestStraightLineIsFree(t *testing.T) {
	// On a constant-velocity straight line every simplification is exact;
	// all algorithms must achieve zero error.
	tr := make(traj.Trajectory, 50)
	for i := range tr {
		tr[i] = geo.Pt(float64(i), 2*float64(i), float64(i))
	}
	for _, a := range algos() {
		kept, err := a.run(tr, 5, errm.SED)
		if err != nil {
			t.Fatal(err)
		}
		if e := errm.Error(errm.SED, tr, kept); e > 1e-9 {
			t.Errorf("%s: straight line error %v, want 0", a.name, e)
		}
	}
}

func TestAlgorithmsDiffer(t *testing.T) {
	// The three heuristics make different choices on a noisy trajectory;
	// if all outputs coincide the carry logic is probably dead code.
	tr := testTraj(5, 300)
	outs := make([][]int, 0, 3)
	for _, a := range algos() {
		kept, err := a.run(tr, 30, errm.SED)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, kept)
	}
	same := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(outs[0], outs[1]) && same(outs[1], outs[2]) {
		t.Error("STTrace, SQUISH and SQUISH-E produced identical output on noisy data")
	}
}

func TestUniform(t *testing.T) {
	tr := testTraj(7, 100)
	kept, err := Uniform(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > 10 {
		t.Errorf("kept %d > 10", len(kept))
	}
	if kept[0] != 0 || kept[len(kept)-1] != 99 {
		t.Error("endpoints not kept")
	}
	// Short input returned whole.
	kept, err = Uniform(tr[:5], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 5 {
		t.Errorf("short input: kept %d", len(kept))
	}
	if _, err := Uniform(tr, 0); err == nil {
		t.Error("W=0 accepted")
	}
}

func TestBudgetRespectedProperty(t *testing.T) {
	f := func(seed int64, wByte uint8) bool {
		n := 30 + int(wByte%50)
		w := 4 + int(wByte%12)
		tr := testTraj(seed, n)
		for _, a := range algos() {
			kept, err := a.run(tr, w, errm.PED)
			if err != nil {
				return false
			}
			if len(kept) > w {
				return false
			}
			if !tr.Pick(kept).IsSimplificationOf(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
