package online

import (
	"testing"

	"rlts/internal/errm"
	"rlts/internal/gen"
)

func benchAlgo(b *testing.B, f func() ([]int, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTTrace(b *testing.B) {
	t := gen.New(gen.Truck(), 1).Trajectory(10000)
	b.ResetTimer()
	benchAlgo(b, func() ([]int, error) { return STTrace(t, 1000, errm.SED) })
}

func BenchmarkSQUISH(b *testing.B) {
	t := gen.New(gen.Truck(), 1).Trajectory(10000)
	b.ResetTimer()
	benchAlgo(b, func() ([]int, error) { return SQUISH(t, 1000, errm.SED) })
}

func BenchmarkSQUISHE(b *testing.B) {
	t := gen.New(gen.Truck(), 1).Trajectory(10000)
	b.ResetTimer()
	benchAlgo(b, func() ([]int, error) { return SQUISHE(t, 1000, errm.SED) })
}
