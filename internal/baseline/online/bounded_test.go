package online

import (
	"math"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

type boundedAlgo struct {
	name string
	m    errm.Measure
	run  func(traj.Trajectory, float64) ([]int, error)
}

func boundedAlgos() []boundedAlgo {
	return []boundedAlgo{
		{"CISED", errm.SED, CISED},
		{"OPERB", errm.PED, OPERB},
	}
}

// requireBound asserts kept is a valid simplification of tr whose error
// under the algorithm's measure does not exceed eps.
func requireBound(t *testing.T, a boundedAlgo, tr traj.Trajectory, eps float64, kept []int) {
	t.Helper()
	if err := errm.CheckKept(tr, kept); err != nil {
		t.Fatalf("%s eps=%v: invalid kept %v: %v", a.name, eps, kept, err)
	}
	e := errm.Error(a.m, tr, kept)
	if math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("%s eps=%v: non-finite error %v", a.name, eps, e)
	}
	if e > eps {
		t.Fatalf("%s: error %v exceeds bound %v (kept %v)", a.name, e, eps, kept)
	}
}

func TestBoundedMeetsBoundOnGenerated(t *testing.T) {
	for _, a := range boundedAlgos() {
		for _, n := range []int{2, 3, 10, 120} {
			tr := testTraj(int64(n), n)
			for _, eps := range []float64{1e-9, 0.5, 5, 500} {
				kept, err := a.run(tr, eps)
				if err != nil {
					t.Fatalf("%s n=%d eps=%v: %v", a.name, n, eps, err)
				}
				requireBound(t, a, tr, eps, kept)
			}
		}
	}
}

func TestBoundedCompressesEasyShapes(t *testing.T) {
	// Constant-velocity collinear motion: both simplifiers must see that
	// two points suffice (exact arithmetic on small integers).
	line := make(traj.Trajectory, 0, 50)
	for i := 0; i < 50; i++ {
		line = append(line, geo.Pt(float64(2*i), float64(3*i), float64(i)))
	}
	// Stationary: zero-length segments everywhere.
	still := make(traj.Trajectory, 0, 50)
	for i := 0; i < 50; i++ {
		still = append(still, geo.Pt(7, -3, float64(i)))
	}
	for _, a := range boundedAlgos() {
		for name, tr := range map[string]traj.Trajectory{"line": line, "stationary": still} {
			kept, err := a.run(tr, 0.25)
			if err != nil {
				t.Fatalf("%s %s: %v", a.name, name, err)
			}
			requireBound(t, a, tr, 0.25, kept)
			if len(kept) != 2 {
				t.Errorf("%s %s: kept %d points, want 2", a.name, name, len(kept))
			}
		}
	}
	// OPERB on a variable-speed line still keeps 2 (PED ignores time);
	// CISED must keep more (SED does not) yet stay under the bound.
	varSpeed := make(traj.Trajectory, 0, 40)
	tm := 0.0
	for i := 0; i < 40; i++ {
		varSpeed = append(varSpeed, geo.Pt(float64(i*i), 0, tm))
		tm += 1
	}
	kept, err := OPERB(varSpeed, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("OPERB variable-speed line: kept %d, want 2", len(kept))
	}
	ck, err := CISED(varSpeed, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	requireBound(t, boundedAlgos()[0], varSpeed, 0.25, ck)
	if len(ck) <= 2 {
		t.Errorf("CISED variable-speed line: kept %d, expected > 2 (SED is time-aware)", len(ck))
	}
}

func TestBoundedDegenerateInputs(t *testing.T) {
	for _, a := range boundedAlgos() {
		// n < 2.
		if _, err := a.run(nil, 1); err == nil {
			t.Errorf("%s: no error for empty trajectory", a.name)
		}
		if _, err := a.run(traj.Trajectory{geo.Pt(0, 0, 0)}, 1); err == nil {
			t.Errorf("%s: no error for 1-point trajectory", a.name)
		}
		two := traj.Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 1, 1)}
		// Invalid bounds.
		for _, eps := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
			if _, err := a.run(two, eps); err == nil {
				t.Errorf("%s: no error for eps=%v", a.name, eps)
			}
		}
		// eps == 0 keeps everything: trivially within the bound.
		zigzag := traj.Trajectory{
			geo.Pt(0, 0, 0), geo.Pt(1, 50, 1), geo.Pt(2, -50, 2), geo.Pt(3, 50, 3), geo.Pt(4, 0, 4),
		}
		kept, err := a.run(zigzag, 0)
		if err != nil {
			t.Fatalf("%s eps=0: %v", a.name, err)
		}
		if len(kept) != len(zigzag) {
			t.Errorf("%s eps=0: kept %d of %d", a.name, len(kept), len(zigzag))
		}
		requireBound(t, a, zigzag, 0, kept)
		// n == 2 is already simplified.
		kept, err = a.run(two, 1)
		if err != nil {
			t.Fatalf("%s n=2: %v", a.name, err)
		}
		if len(kept) != 2 || kept[0] != 0 || kept[1] != 1 {
			t.Errorf("%s n=2: kept %v", a.name, kept)
		}
	}
}

func TestBoundedExtremeCoordinates(t *testing.T) {
	// The ±6e307 corner-jumping family: coordinate differences stay finite
	// but squares overflow. The simplifiers must neither panic nor emit a
	// kept set the exact oracle scores above the bound, and may fall back
	// to keeping everything (adjacent segments have zero error).
	const mag = 6e307
	tr := traj.Trajectory{
		geo.Pt(mag, mag, 0), geo.Pt(-mag, mag, 2), geo.Pt(-mag, -mag, 4),
		geo.Pt(mag, -mag, 6), geo.Pt(0, 0, 8), geo.Pt(mag, 0, 10), geo.Pt(mag, mag, 12),
	}
	for _, a := range boundedAlgos() {
		for _, eps := range []float64{1, 1e300} {
			kept, err := a.run(tr, eps)
			if err != nil {
				t.Fatalf("%s eps=%v: %v", a.name, eps, err)
			}
			requireBound(t, a, tr, eps, kept)
		}
	}
}

func TestBoundedUnorderedTimestampsKeepEverything(t *testing.T) {
	// Library callers bypassing traj validation must still get a valid,
	// bound-satisfying answer: a non-positive time span conservatively
	// cuts, degrading to the identity simplification.
	tr := traj.Trajectory{geo.Pt(0, 0, 5), geo.Pt(1, 0, 3), geo.Pt(2, 0, 1)}
	kept, err := CISED(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 3 {
		t.Errorf("CISED unordered: kept %v, want identity", kept)
	}
}

func BenchmarkCISED(b *testing.B) {
	tr := testTraj(1, 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CISED(tr, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOPERB(b *testing.B) {
	tr := testTraj(1, 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OPERB(tr, 2); err != nil {
			b.Fatal(err)
		}
	}
}
