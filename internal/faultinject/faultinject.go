// Package faultinject supplies the controlled failures the fault-tolerance
// tests inject: environments that emit NaN rewards or states mid-episode,
// training hooks that "crash" a run at a chosen batch boundary, and HTTP
// handlers that panic or stall. Production code never imports it; the
// trainer and server are exercised through their public hook points
// (rl.TrainConfig.OnBatch, server.Harden) so the injection surface is
// exactly the surface real faults would hit.
package faultinject

import (
	"errors"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"rlts/internal/rl"
)

// ErrCrash is the sentinel a CrashAfter hook aborts training with,
// standing in for a process kill at a batch boundary.
var ErrCrash = errors.New("faultinject: injected crash")

// CrashAfter returns an rl.TrainConfig.OnBatch hook that lets n batches
// complete (and checkpoint) and then aborts training with ErrCrash.
// Because the hook runs after the checkpoint write, the on-disk state is
// exactly what a kill between batches would leave behind.
func CrashAfter(n int) func(batch int) error {
	return func(batch int) error {
		if batch >= n {
			return ErrCrash
		}
		return nil
	}
}

// Env wraps an rl.Env and corrupts its outputs at configurable points.
// The zero offsets (-1) disable each fault. Step counting restarts at
// every Reset, so the fault fires once per episode.
type Env struct {
	Inner rl.Env
	// NaNRewardAt poisons the reward of this 0-based step (-1 = never).
	NaNRewardAt int
	// NaNStateAt poisons the first feature of the state returned by this
	// 0-based step's transition (-1 = never).
	NaNStateAt int

	step  int
	state []float64 // scratch copy so the inner env's buffers stay clean
}

// NewEnv wraps inner with all faults disabled; set the fault fields
// afterwards.
func NewEnv(inner rl.Env) *Env {
	return &Env{Inner: inner, NaNRewardAt: -1, NaNStateAt: -1}
}

func (e *Env) Reset() (state []float64, mask []bool, done bool) {
	e.step = 0
	return e.Inner.Reset()
}

func (e *Env) Step(action int) (state []float64, mask []bool, reward float64, done bool) {
	state, mask, reward, done = e.Inner.Step(action)
	if e.step == e.NaNRewardAt {
		reward = math.NaN()
	}
	if e.step == e.NaNStateAt && len(state) > 0 {
		// Copy before poisoning: the inner env reuses its state buffer.
		e.state = append(e.state[:0], state...)
		e.state[0] = math.NaN()
		state = e.state
	}
	e.step++
	return state, mask, reward, done
}

func (e *Env) StateSize() int  { return e.Inner.StateSize() }
func (e *Env) NumActions() int { return e.Inner.NumActions() }

// ErrDiskFull is the sentinel FailWrites fails with, standing in for a
// full or dying disk under the session spill path.
var ErrDiskFull = errors.New("faultinject: injected write failure")

// FailWrites returns a write hook (server.Config.SpillWrite) that lets
// the first n writes through to write and fails every one after with
// ErrDiskFull — a disk that fills up mid-flight. With n = 0 every write
// fails. Safe for concurrent use (spill writes from different shards can
// overlap).
func FailWrites(n int, write func(path string, data []byte) error) func(path string, data []byte) error {
	var attempts atomic.Int64
	return func(path string, data []byte) error {
		if attempts.Add(1) > int64(n) {
			return ErrDiskFull
		}
		return write(path, data)
	}
}

// PanicHandler returns an http.Handler that panics with msg — the probe
// for the server's panic-recovery middleware.
func PanicHandler(msg string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(msg)
	})
}

// SlowHandler returns a handler that signals on started (if non-nil),
// holds the request for d (or until the request context dies), then
// answers 200 "slow-ok". It probes load shedding, deadlines and graceful
// drain.
func SlowHandler(d time.Duration, started chan<- struct{}) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-time.After(d):
			w.Write([]byte("slow-ok"))
		case <-r.Context().Done():
			w.WriteHeader(http.StatusGatewayTimeout)
		}
	})
}
