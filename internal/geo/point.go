// Package geo provides the low-level spatio-temporal geometry used by the
// trajectory simplification algorithms: points, segments, and the distance,
// angle and speed primitives the four error measurements are built from.
//
// All coordinates are planar (x, y) in an arbitrary but consistent unit
// (the paper reports errors in units of 10 m); timestamps are float64
// seconds. The package is allocation-free on the hot paths.
package geo

import (
	"fmt"
	"math"
)

// Point is a spatio-temporal point: a location (X, Y) observed at time T.
type Point struct {
	X, Y float64
	T    float64
}

// Pt is a convenience constructor for a Point.
func Pt(x, y, t float64) Point { return Point{X: x, Y: y, T: t} }

// Dist returns the Euclidean distance between the locations of p and q.
func Dist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between the locations of
// p and q. It avoids the square root on paths that only compare distances.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Equal reports whether p and q have identical coordinates and timestamps.
func (p Point) Equal(q Point) bool {
	return p.X == q.X && p.Y == q.Y && p.T == q.T
}

// String renders the point as "(x, y)@t".
func (p Point) String() string {
	return fmt.Sprintf("(%.6g, %.6g)@%.6g", p.X, p.Y, p.T)
}

// IsFinite reports whether all fields of p are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0) &&
		!math.IsNaN(p.T) && !math.IsInf(p.T, 0)
}

// Lerp linearly interpolates between the locations of p and q with
// parameter u in [0, 1]: u = 0 yields p's location, u = 1 yields q's.
// The timestamp of the result is interpolated as well. When a coordinate
// difference overflows float64 (endpoints near opposite extremes of the
// range), the affected component falls back to the convex form
// (1-u)*a + u*b, which cannot overflow for u in [0, 1] and finite
// endpoints, so representable interpolants are never lost to an
// intermediate Inf.
func Lerp(p, q Point, u float64) Point {
	return Point{
		X: lerp1(p.X, q.X, u),
		Y: lerp1(p.Y, q.Y, u),
		T: lerp1(p.T, q.T, u),
	}
}

func lerp1(a, b, u float64) float64 {
	v := a + u*(b-a)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		// b-a overflowed (or u*(b-a) produced 0*Inf): the convex form is
		// bounded by max(|a|, |b|) for u in [0, 1], hence finite.
		return (1-u)*a + u*b
	}
	return v
}
