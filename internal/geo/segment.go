package geo

import "math"

// Segment is the directed line segment from A to B. A segment of a
// simplified trajectory approximates the sub-trajectory of original points
// between (and including) its endpoints; the error measures in package errm
// quantify how badly.
type Segment struct {
	A, B Point
}

// Seg is a convenience constructor for a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return Dist(s.A, s.B) }

// Duration returns the time spanned by the segment (B.T - A.T).
// It can be zero for degenerate segments.
func (s Segment) Duration() float64 { return s.B.T - s.A.T }

// Speed returns the constant speed at which the object is interpreted to
// move along the segment: Length / Duration. A zero (or negative, for
// unsorted input) duration yields 0 speed, so degenerate segments never
// produce Inf/NaN.
func (s Segment) Speed() float64 {
	dt := s.Duration()
	if dt <= 0 {
		return 0
	}
	return s.Length() / dt
}

// Direction returns the heading of the segment in radians in (-pi, pi],
// measured counter-clockwise from the positive x-axis. A zero-length
// segment has direction 0.
func (s Segment) Direction() float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	if dx == 0 && dy == 0 {
		return 0
	}
	return math.Atan2(dy, dx)
}

// IsDegenerate reports whether the segment endpoints share a location.
func (s Segment) IsDegenerate() bool {
	return s.A.X == s.B.X && s.A.Y == s.B.Y
}

// ClosestParam returns the parameter u in [0, 1] such that Lerp(A, B, u)
// is the point on the segment closest to p's location.
func (s Segment) ClosestParam(p Point) float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	den := dx*dx + dy*dy
	if den == 0 {
		return 0
	}
	u := ((p.X-s.A.X)*dx + (p.Y-s.A.Y)*dy) / den
	return math.Max(0, math.Min(1, u))
}

// TimeParam returns the parameter u in [0, 1] locating time t
// proportionally within the segment's time span. A degenerate time span
// maps everything to 0.
func (s Segment) TimeParam(t float64) float64 {
	dt := s.Duration()
	if dt <= 0 {
		return 0
	}
	u := (t - s.A.T) / dt
	return math.Max(0, math.Min(1, u))
}

// At returns the synchronized position on the segment at time t: the
// location the object would occupy at t if it moved along the segment at
// constant speed over the segment's time span.
func (s Segment) At(t float64) Point {
	return Lerp(s.A, s.B, s.TimeParam(t))
}
