package geo

import "math"

// Segment is the directed line segment from A to B. A segment of a
// simplified trajectory approximates the sub-trajectory of original points
// between (and including) its endpoints; the error measures in package errm
// quantify how badly.
type Segment struct {
	A, B Point
}

// Seg is a convenience constructor for a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return Dist(s.A, s.B) }

// Duration returns the time spanned by the segment (B.T - A.T).
// It can be zero for degenerate segments.
func (s Segment) Duration() float64 { return s.B.T - s.A.T }

// Speed returns the constant speed at which the object is interpreted to
// move along the segment: Length / Duration. A zero (or negative, for
// unsorted input) duration yields 0 speed, so degenerate segments never
// produce Inf/NaN. When both the length and the duration overflow float64
// (endpoints near ±MaxFloat64 in space and time), the ratio is recomputed
// from halved differences, which cannot overflow for finite endpoints.
func (s Segment) Speed() float64 {
	dt := s.Duration()
	if dt <= 0 {
		return 0
	}
	v := s.Length() / dt
	if math.IsNaN(v) || math.IsInf(dt, 0) {
		// Inf/Inf, or a finite length over an overflowed duration (which
		// the fast path collapses to 0): halving every difference keeps
		// them finite and the halves cancel in the ratio.
		hl := math.Hypot(s.B.X/2-s.A.X/2, s.B.Y/2-s.A.Y/2)
		hdt := s.B.T/2 - s.A.T/2
		if hdt <= 0 {
			return 0
		}
		return hl / hdt
	}
	return v
}

// Direction returns the heading of the segment in radians in (-pi, pi],
// measured counter-clockwise from the positive x-axis. A zero-length
// segment has direction 0.
func (s Segment) Direction() float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	if dx == 0 && dy == 0 {
		return 0
	}
	return math.Atan2(dy, dx)
}

// IsDegenerate reports whether the segment endpoints share a location.
func (s Segment) IsDegenerate() bool {
	return s.A.X == s.B.X && s.A.Y == s.B.Y
}

// ClosestParam returns the parameter u in [0, 1] such that Lerp(A, B, u)
// is the point on the segment closest to p's location. Inputs whose
// squared length overflows float64 are projected with normalized
// arithmetic instead, so extreme (but finite) coordinates never yield NaN.
func (s Segment) ClosestParam(p Point) float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	den := dx*dx + dy*dy
	if den == 0 {
		return 0
	}
	if math.IsInf(den, 0) {
		return s.closestParamWide(p)
	}
	u := ((p.X-s.A.X)*dx + (p.Y-s.A.Y)*dy) / den
	return clamp01(u)
}

// closestParamWide is the overflow-safe slow path of ClosestParam: the
// segment direction is normalized by its largest half-component (halving
// keeps differences of finite values finite) before projecting, so no
// intermediate square of a raw coordinate difference is ever formed.
func (s Segment) closestParamWide(p Point) float64 {
	hx, hy := s.B.X/2-s.A.X/2, s.B.Y/2-s.A.Y/2
	m := math.Max(math.Abs(hx), math.Abs(hy))
	if m == 0 {
		return 0
	}
	nx, ny := hx/m, hy/m
	vx, vy := p.X/2-s.A.X/2, p.Y/2-s.A.Y/2
	// u = (v·d)/|d|² with d = 2m·(nx, ny) and v = 2·(vx, vy); the factors
	// of two cancel. Divide by the O(1) norm first so the only remaining
	// division is by m, which is huge on this path.
	u := (vx*nx + vy*ny) / (nx*nx + ny*ny) / m
	return clamp01(u)
}

// clamp01 clamps u to [0, 1], mapping NaN (a pathological magnitude
// spread where opposing contributions both overflow) to 0.
func clamp01(u float64) float64 {
	if math.IsNaN(u) {
		return 0
	}
	return math.Max(0, math.Min(1, u))
}

// TimeParam returns the parameter u in [0, 1] locating time t
// proportionally within the segment's time span. A degenerate time span
// maps everything to 0. A time span that overflows float64 is recomputed
// from halved timestamps (finite for finite inputs), so astronomically
// long segments still interpolate instead of collapsing to an endpoint.
func (s Segment) TimeParam(t float64) float64 {
	dt := s.Duration()
	if dt <= 0 {
		return 0
	}
	if math.IsInf(dt, 0) {
		return clamp01((t/2 - s.A.T/2) / (s.B.T/2 - s.A.T/2))
	}
	u := (t - s.A.T) / dt
	return clamp01(u)
}

// At returns the synchronized position on the segment at time t: the
// location the object would occupy at t if it moved along the segment at
// constant speed over the segment's time span.
func (s Segment) At(t float64) Point {
	return Lerp(s.A, s.B, s.TimeParam(t))
}
