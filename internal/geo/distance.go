package geo

import "math"

// PerpendicularDistance returns the shortest Euclidean distance from p's
// location to the segment s (distance to the closest point on the segment,
// which is the standard PED primitive).
func PerpendicularDistance(s Segment, p Point) float64 {
	u := s.ClosestParam(p)
	c := Lerp(s.A, s.B, u)
	return Dist(p, c)
}

// SynchronizedDistance returns the synchronized Euclidean distance (SED)
// from p to the segment s: the distance between p's location and the
// position on s synchronized to p's timestamp.
func SynchronizedDistance(s Segment, p Point) float64 {
	return Dist(p, s.At(p.T))
}

// AngularDifference returns the absolute difference between two headings
// (radians), folded into [0, pi].
func AngularDifference(a, b float64) float64 {
	d := math.Abs(a - b)
	d = math.Mod(d, 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// DirectionDistance returns the direction-aware distance (DAD primitive)
// between the anchor segment s and the motion segment m: the angular
// difference of their headings in [0, pi] radians. Degenerate segments
// (zero length) contribute their 0 heading, matching the interpretation
// that a stationary object has no preferred direction.
func DirectionDistance(s, m Segment) float64 {
	if s.IsDegenerate() || m.IsDegenerate() {
		// A stationary stretch imposes no direction constraint.
		return 0
	}
	return AngularDifference(s.Direction(), m.Direction())
}

// SpeedDistance returns the speed-aware distance (SAD primitive) between
// the anchor segment s and the motion segment m: the absolute difference
// of their constant-speed interpretations. Two speeds that both saturate
// to +Inf (true values beyond float64 range) compare equal — returning 0
// instead of the Inf-Inf NaN the naive subtraction would produce.
func SpeedDistance(s, m Segment) float64 {
	a, b := s.Speed(), m.Speed()
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 0
	}
	return math.Abs(a - b)
}
