package geo

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2, 0), Pt(1, 2, 5), 0},
		{"unit x", Pt(0, 0, 0), Pt(1, 0, 0), 1},
		{"unit y", Pt(0, 0, 0), Pt(0, 1, 0), 1},
		{"3-4-5", Pt(0, 0, 0), Pt(3, 4, 0), 5},
		{"negative coords", Pt(-1, -1, 0), Pt(2, 3, 0), 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dist(tc.p, tc.q); !almost(got, tc.want) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
			if got := Dist2(tc.p, tc.q); !almost(got, tc.want*tc.want) {
				t.Errorf("Dist2(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
			}
		})
	}
}

func TestDistSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by int32) bool {
		p := Pt(float64(ax), float64(ay), 0)
		q := Pt(float64(bx), float64(by), 0)
		return Dist(p, q) == Dist(q, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a, b, c := Pt(float64(ax), float64(ay), 0), Pt(float64(bx), float64(by), 0), Pt(float64(cx), float64(cy), 0)
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0, 0), Pt(10, 20, 100)
	if got := Lerp(p, q, 0); !got.Equal(p) {
		t.Errorf("Lerp u=0 = %v, want %v", got, p)
	}
	if got := Lerp(p, q, 1); !got.Equal(q) {
		t.Errorf("Lerp u=1 = %v, want %v", got, q)
	}
	mid := Lerp(p, q, 0.5)
	if !almost(mid.X, 5) || !almost(mid.Y, 10) || !almost(mid.T, 50) {
		t.Errorf("Lerp u=0.5 = %v, want (5,10)@50", mid)
	}
}

func TestSegmentLengthSpeedDirection(t *testing.T) {
	s := Seg(Pt(0, 0, 0), Pt(3, 4, 10))
	if !almost(s.Length(), 5) {
		t.Errorf("Length = %v, want 5", s.Length())
	}
	if !almost(s.Duration(), 10) {
		t.Errorf("Duration = %v, want 10", s.Duration())
	}
	if !almost(s.Speed(), 0.5) {
		t.Errorf("Speed = %v, want 0.5", s.Speed())
	}
	if !almost(s.Direction(), math.Atan2(4, 3)) {
		t.Errorf("Direction = %v, want %v", s.Direction(), math.Atan2(4, 3))
	}
}

func TestDegenerateSegment(t *testing.T) {
	s := Seg(Pt(1, 1, 0), Pt(1, 1, 0))
	if !s.IsDegenerate() {
		t.Fatal("expected degenerate")
	}
	if s.Speed() != 0 {
		t.Errorf("degenerate Speed = %v, want 0", s.Speed())
	}
	if s.Direction() != 0 {
		t.Errorf("degenerate Direction = %v, want 0", s.Direction())
	}
	// Zero-duration but nonzero length: speed must not be Inf.
	s2 := Seg(Pt(0, 0, 5), Pt(3, 0, 5))
	if v := s2.Speed(); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("zero-duration Speed = %v, want finite", v)
	}
}

func TestClosestParam(t *testing.T) {
	s := Seg(Pt(0, 0, 0), Pt(10, 0, 10))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3, 0), 0.5},
		{Pt(-5, 0, 0), 0}, // clamped before A
		{Pt(15, 0, 0), 1}, // clamped after B
		{Pt(2, -7, 0), 0.2},
	}
	for _, tc := range tests {
		if got := s.ClosestParam(tc.p); !almost(got, tc.want) {
			t.Errorf("ClosestParam(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPerpendicularDistance(t *testing.T) {
	s := Seg(Pt(0, 0, 0), Pt(10, 0, 10))
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"above middle", Pt(5, 3, 5), 3},
		{"on segment", Pt(7, 0, 2), 0},
		{"beyond end", Pt(13, 4, 0), 5},
		{"before start", Pt(-3, -4, 0), 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := PerpendicularDistance(s, tc.p); !almost(got, tc.want) {
				t.Errorf("PED = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSynchronizedDistance(t *testing.T) {
	// Object interpreted to move 0->10 on x over t in [0,10].
	s := Seg(Pt(0, 0, 0), Pt(10, 0, 10))
	// At t=5, synced position is (5,0). Point at (5,4,5) has SED 4.
	if got := SynchronizedDistance(s, Pt(5, 4, 5)); !almost(got, 4) {
		t.Errorf("SED = %v, want 4", got)
	}
	// At t=2, synced position is (2,0).
	if got := SynchronizedDistance(s, Pt(6, 0, 2)); !almost(got, 4) {
		t.Errorf("SED = %v, want 4", got)
	}
	// Timestamp outside the span is clamped to the nearer endpoint.
	if got := SynchronizedDistance(s, Pt(10, 0, 99)); !almost(got, 0) {
		t.Errorf("SED clamped = %v, want 0", got)
	}
}

func TestSEDGreaterEqualPEDProperty(t *testing.T) {
	// The synchronized point is *a* point on the segment, so SED is always
	// >= the distance to the *closest* point (PED).
	f := func(ax, ay, bx, by, px, py int16, tu uint8) bool {
		s := Seg(Pt(float64(ax), float64(ay), 0), Pt(float64(bx), float64(by), 10))
		p := Pt(float64(px), float64(py), float64(tu)/25.5)
		return SynchronizedDistance(s, p) >= PerpendicularDistance(s, p)-eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngularDifference(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{0, math.Pi / 2, math.Pi / 2},
		{-math.Pi / 2, math.Pi / 2, math.Pi},
		{3, -3, 2*math.Pi - 6}, // wraps around
		{math.Pi, -math.Pi, 0},
	}
	for _, tc := range tests {
		if got := AngularDifference(tc.a, tc.b); !almost(got, tc.want) {
			t.Errorf("AngularDifference(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAngularDifferenceRangeProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Keep magnitudes sane so Mod stays accurate.
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		d := AngularDifference(a, b)
		return d >= -eps && d <= math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectionDistance(t *testing.T) {
	east := Seg(Pt(0, 0, 0), Pt(1, 0, 1))
	north := Seg(Pt(0, 0, 0), Pt(0, 1, 1))
	west := Seg(Pt(0, 0, 0), Pt(-1, 0, 1))
	if got := DirectionDistance(east, north); !almost(got, math.Pi/2) {
		t.Errorf("east-north = %v, want pi/2", got)
	}
	if got := DirectionDistance(east, west); !almost(got, math.Pi) {
		t.Errorf("east-west = %v, want pi", got)
	}
	stationary := Seg(Pt(0, 0, 0), Pt(0, 0, 1))
	if got := DirectionDistance(east, stationary); got != 0 {
		t.Errorf("stationary = %v, want 0", got)
	}
}

func TestSpeedDistance(t *testing.T) {
	fast := Seg(Pt(0, 0, 0), Pt(10, 0, 1))  // speed 10
	slow := Seg(Pt(0, 0, 0), Pt(10, 0, 10)) // speed 1
	if got := SpeedDistance(fast, slow); !almost(got, 9) {
		t.Errorf("SpeedDistance = %v, want 9", got)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !Pt(1, 2, 3).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	bad := []Point{
		{X: math.NaN()}, {Y: math.Inf(1)}, {T: math.Inf(-1)},
	}
	for _, p := range bad {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestSegmentAtClamps(t *testing.T) {
	s := Seg(Pt(0, 0, 10), Pt(10, 0, 20))
	if got := s.At(5); !almost(got.X, 0) {
		t.Errorf("At(before) = %v, want start", got)
	}
	if got := s.At(25); !almost(got.X, 10) {
		t.Errorf("At(after) = %v, want end", got)
	}
	if got := s.At(15); !almost(got.X, 5) {
		t.Errorf("At(mid) = %v, want x=5", got)
	}
}
