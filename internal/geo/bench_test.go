package geo

import "testing"

var sinkF float64

func BenchmarkDist(b *testing.B) {
	p, q := Pt(1, 2, 0), Pt(4, 6, 10)
	for i := 0; i < b.N; i++ {
		sinkF = Dist(p, q)
	}
}

func BenchmarkSynchronizedDistance(b *testing.B) {
	s := Seg(Pt(0, 0, 0), Pt(100, 50, 60))
	p := Pt(40, 30, 25)
	for i := 0; i < b.N; i++ {
		sinkF = SynchronizedDistance(s, p)
	}
}

func BenchmarkPerpendicularDistance(b *testing.B) {
	s := Seg(Pt(0, 0, 0), Pt(100, 50, 60))
	p := Pt(40, 30, 25)
	for i := 0; i < b.N; i++ {
		sinkF = PerpendicularDistance(s, p)
	}
}

func BenchmarkDirectionDistance(b *testing.B) {
	s := Seg(Pt(0, 0, 0), Pt(100, 50, 60))
	m := Seg(Pt(40, 30, 25), Pt(45, 28, 30))
	for i := 0; i < b.N; i++ {
		sinkF = DirectionDistance(s, m)
	}
}

func BenchmarkSpeedDistance(b *testing.B) {
	s := Seg(Pt(0, 0, 0), Pt(100, 50, 60))
	m := Seg(Pt(40, 30, 25), Pt(45, 28, 30))
	for i := 0; i < b.N; i++ {
		sinkF = SpeedDistance(s, m)
	}
}
