package rl

import (
	"math/rand"
	"testing"
)

// staticEnv is a benchmark env that reuses its state and mask buffers the
// way the real MDPs do, so the rollout machinery is measured in isolation.
type staticEnv struct {
	step, n int
	state   []float64
	mask    []bool
}

func (s *staticEnv) Reset() ([]float64, []bool, bool) {
	s.step = 0
	if s.state == nil {
		s.state = []float64{1, 0}
		s.mask = []bool{true, true}
	}
	return s.state, s.mask, false
}

func (s *staticEnv) Step(a int) ([]float64, []bool, float64, bool) {
	s.step++
	r := 0.0
	if a == 0 {
		r = 1
	}
	return s.state, s.mask, r, s.step >= s.n
}

func (s *staticEnv) StateSize() int  { return 2 }
func (s *staticEnv) NumActions() int { return 2 }

// BenchmarkRollout measures one 50-step episode through the reusable
// rollout path: with episode and policy scratch warm, the loop must not
// allocate at all.
func BenchmarkRollout(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p, err := NewPolicy(2, 2, 20, r)
	if err != nil {
		b.Fatal(err)
	}
	env := &staticEnv{n: 50}
	ep := &Episode{}
	rolloutInto(ep, env, p, r, false) // warm the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rolloutInto(ep, env, p, r, false)
	}
}

// BenchmarkProbsInto measures the zero-allocation forward used by the
// rollout and gradient hot paths.
func BenchmarkProbsInto(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p, err := NewPolicy(3, 3, 20, r)
	if err != nil {
		b.Fatal(err)
	}
	state := []float64{0.1, 0.5, 1.2}
	mask := FullMask(3)
	p.probsInto(state, mask, false) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.probsInto(state, mask, false)
	}
}
