// Package rl provides the reinforcement-learning machinery shared by all
// RLTS variants: a Markov-decision-process environment interface, a
// stochastic softmax policy backed by package nn, and a REINFORCE trainer
// (policy gradient with mean/std return normalization, the "PNet" method of
// the paper's Eq. 11).
package rl

import (
	"math"
	"math/rand"
)

// Env is a Markov decision process as seen by the trainer. A single Env
// value models one episode at a time: Reset starts a new episode, Step
// advances it.
//
// The mask returned with each state marks the currently legal actions
// (e.g. a skip action is illegal when fewer points remain than it would
// skip). Implementations must return at least one legal action whenever
// done is false.
type Env interface {
	// Reset starts a new episode and returns the first state. If the
	// episode is degenerate (nothing to decide), done is true and the
	// trainer records an empty episode.
	Reset() (state []float64, mask []bool, done bool)
	// Step performs the action sampled for the last returned state and
	// yields the resulting reward and next state.
	Step(action int) (state []float64, mask []bool, reward float64, done bool)
	// StateSize returns the fixed dimensionality of states.
	StateSize() int
	// NumActions returns the fixed size of the action space.
	NumActions() int
}

// Episode is the trace of one rollout: parallel slices of states, masks,
// actions and rewards. Keys, when present, give each step a progress key
// (see Progresser) used to align returns across episodes of different
// lengths.
type Episode struct {
	States  [][]float64
	Masks   [][]bool
	Actions []int
	Rewards []float64
	Keys    []int
}

// Progresser is an optional Env extension. When implemented, Rollout
// records ProgressKey before every step, and the trainer normalizes
// returns across episodes at equal *progress* rather than equal step
// index. This matters for MDPs whose actions advance the episode by
// variable amounts (the skip actions of RLTS-Skip): comparing the return
// "after t decisions" across episodes that are at different points of the
// trajectory mixes incomparable futures, while comparing "at scan
// position i" does not.
type Progresser interface {
	// ProgressKey identifies the episode's current position; it must be
	// strictly monotone within an episode.
	ProgressKey() int
}

// EnvCloner is an optional Env extension enabling parallel rollouts: a
// clone is an independent environment over the same underlying task, so
// several episodes can run concurrently. Clones may share read-only data
// (e.g. the trajectory) but no mutable state. Environments that do not
// implement it are rolled out by a single worker (the rest of the
// training pipeline still parallelizes).
type EnvCloner interface {
	CloneEnv() Env
}

// Len returns the number of transitions in the episode.
func (e *Episode) Len() int { return len(e.Actions) }

// reset truncates the episode for reuse, keeping every backing array so a
// new rollout of similar length allocates nothing.
func (e *Episode) reset() {
	e.States = e.States[:0]
	e.Masks = e.Masks[:0]
	e.Actions = e.Actions[:0]
	e.Rewards = e.Rewards[:0]
	e.Keys = e.Keys[:0]
}

// pushStep records a decision, copying state and mask into episode-owned
// storage (environments are free to reuse their state buffers between
// steps — the copy must therefore happen before Env.Step). Slices retained
// from a previous rollout via reset are reused when large enough. The
// reward is appended separately once Step reveals it.
func (e *Episode) pushStep(state []float64, mask []bool, action int) {
	n := len(e.States)
	if n < cap(e.States) {
		e.States = e.States[:n+1]
		e.States[n] = append(e.States[n][:0], state...)
	} else {
		e.States = append(e.States, append([]float64(nil), state...))
	}
	if n < cap(e.Masks) {
		e.Masks = e.Masks[:n+1]
	} else {
		e.Masks = append(e.Masks, nil)
	}
	if mask == nil {
		// A nil mask means "all actions legal" downstream; keep it nil.
		e.Masks[n] = nil
	} else {
		e.Masks[n] = append(e.Masks[n][:0], mask...)
	}
	e.Actions = append(e.Actions, action)
}

// TotalReward returns the undiscounted sum of rewards, which by Eq. 9
// equals minus the final simplification error for the RLTS MDPs.
func (e *Episode) TotalReward() float64 {
	var s float64
	for _, r := range e.Rewards {
		s += r
	}
	return s
}

// Returns computes the discounted cumulative returns R_t for each step.
func (e *Episode) Returns(gamma float64) []float64 {
	return e.returnsInto(nil, gamma)
}

// returnsInto is Returns writing into dst (grown only when too small), so
// the trainer can reuse one buffer per episode slot across batches.
func (e *Episode) returnsInto(dst []float64, gamma float64) []float64 {
	if cap(dst) < len(e.Rewards) {
		dst = make([]float64, len(e.Rewards))
	}
	dst = dst[:len(e.Rewards)]
	var acc float64
	for i := len(e.Rewards) - 1; i >= 0; i-- {
		acc = e.Rewards[i] + gamma*acc
		dst[i] = acc
	}
	return dst
}

// NormalizeReturns standardizes the returns to zero mean and unit standard
// deviation — the variance-reduction baseline of Eq. 11. A constant return
// vector normalizes to all zeros (no gradient), and a single-step episode
// keeps its raw sign.
func NormalizeReturns(returns []float64) []float64 {
	n := len(returns)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	var mean float64
	for _, r := range returns {
		mean += r
	}
	mean /= float64(n)
	var varAcc float64
	for _, r := range returns {
		d := r - mean
		varAcc += d * d
	}
	std := math.Sqrt(varAcc / float64(n))
	if std < 1e-12 {
		// Degenerate episode: all returns equal. Without spread there is
		// no preference signal; emit zeros rather than dividing by ~0.
		return out
	}
	for i, r := range returns {
		out[i] = (r - mean) / std
	}
	return out
}

// SampleAction draws an action index from the probability vector.
func SampleAction(probs []float64, r *rand.Rand) int {
	u := r.Float64()
	var acc float64
	last := 0
	for i, p := range probs {
		if p > 0 {
			last = i
		}
		acc += p
		if u < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive-probability
	// action.
	return last
}

// GreedyAction returns the index of the largest probability.
func GreedyAction(probs []float64) int {
	best, bestP := 0, math.Inf(-1)
	for i, p := range probs {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// FullMask returns a mask with all n actions legal.
func FullMask(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}
