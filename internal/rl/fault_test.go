// Fault-tolerance tests: checkpoint/resume determinism and divergence
// guards, exercised through the faultinject harness. They live in an
// external test package because faultinject imports rl.
package rl_test

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"rlts/internal/faultinject"
	"rlts/internal/rl"
)

// stairEnv is a deterministic environment: Reset fully determines the
// episode given the action sequence, so a resumed run sees the exact
// state/reward stream the uninterrupted run saw. The state varies with
// the step and the running action sum (exercising batch-norm statistics),
// and the reward favors matching the step parity.
type stairEnv struct {
	n     int
	phase float64
	step  int
	acc   float64
	state [2]float64
}

func (s *stairEnv) mk() []float64 {
	s.state[0] = math.Sin(s.phase + 0.7*float64(s.step))
	s.state[1] = s.acc / float64(s.n)
	return s.state[:]
}

func (s *stairEnv) Reset() ([]float64, []bool, bool) {
	s.step, s.acc = 0, 0
	return s.mk(), rl.FullMask(2), false
}

func (s *stairEnv) Step(a int) ([]float64, []bool, float64, bool) {
	r := 0.0
	if (s.step+a)%2 == 0 {
		r = 1
	}
	s.acc += float64(a)
	s.step++
	return s.mk(), rl.FullMask(2), r, s.step >= s.n
}

func (s *stairEnv) StateSize() int  { return 2 }
func (s *stairEnv) NumActions() int { return 2 }

// stairEnvs builds k fresh environments; called separately for every run
// so no state leaks between the runs under comparison.
func stairEnvs(k int) []rl.Env {
	envs := make([]rl.Env, k)
	for i := range envs {
		envs[i] = &stairEnv{n: 6 + i, phase: float64(i)}
	}
	return envs
}

func stairConfig() rl.TrainConfig {
	cfg := rl.DefaultTrainConfig()
	cfg.Episodes = 4
	cfg.Epochs = 3
	cfg.Hidden = 6
	cfg.Seed = 11
	cfg.LearningRate = 1e-2
	return cfg
}

func policyBytes(t *testing.T, p *rl.Policy) []byte {
	t.Helper()
	if p == nil {
		t.Fatal("nil policy")
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeBitIdentical is the headline guarantee: a run killed at any
// batch boundary and resumed from its checkpoint ends with the
// bit-identical policy of the uninterrupted run — even when the resumed
// run uses a different worker count.
func TestResumeBitIdentical(t *testing.T) {
	const numEnvs = 4 // 4 envs x 3 epochs = 12 batches
	base, err := rl.Train(stairEnvs(numEnvs), stairConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantFinal := policyBytes(t, base.Final)
	wantBest := policyBytes(t, base.Best)

	for _, crashAt := range []int{1, 3, 7, 11, 12} {
		for _, resumeWorkers := range []int{1, 3} {
			ckpt := filepath.Join(t.TempDir(), "train.ckpt")

			cfg := stairConfig()
			cfg.Checkpoint = ckpt
			cfg.Workers = 1
			cfg.OnBatch = faultinject.CrashAfter(crashAt)
			_, err := rl.Train(stairEnvs(numEnvs), cfg)
			if !errors.Is(err, faultinject.ErrCrash) {
				t.Fatalf("crashAt=%d: want ErrCrash, got %v", crashAt, err)
			}

			ck, err := rl.ReadCheckpointFile(ckpt)
			if err != nil {
				t.Fatalf("crashAt=%d: read checkpoint: %v", crashAt, err)
			}
			if ck.Batch != crashAt {
				t.Fatalf("crashAt=%d: checkpoint at batch %d", crashAt, ck.Batch)
			}
			cfg2 := stairConfig()
			cfg2.Checkpoint = ckpt
			cfg2.Workers = resumeWorkers
			res, err := rl.ResumePolicy(ck, stairEnvs(numEnvs), cfg2)
			if err != nil {
				t.Fatalf("crashAt=%d: resume: %v", crashAt, err)
			}

			if got := policyBytes(t, res.Final); !bytes.Equal(got, wantFinal) {
				t.Errorf("crashAt=%d workers=%d: resumed final policy differs from uninterrupted run", crashAt, resumeWorkers)
			}
			if got := policyBytes(t, res.Best); !bytes.Equal(got, wantBest) {
				t.Errorf("crashAt=%d workers=%d: resumed best policy differs", crashAt, resumeWorkers)
			}
			if res.BestReward != base.BestReward || res.FinalReward != base.FinalReward {
				t.Errorf("crashAt=%d: rewards (%v, %v) != uninterrupted (%v, %v)",
					crashAt, res.BestReward, res.FinalReward, base.BestReward, base.FinalReward)
			}
			if res.EpisodesRun != base.EpisodesRun || res.StepsRun != base.StepsRun {
				t.Errorf("crashAt=%d: counters (%d, %d) != uninterrupted (%d, %d)",
					crashAt, res.EpisodesRun, res.StepsRun, base.EpisodesRun, base.StepsRun)
			}
		}
	}
}

// TestResumeRejectsMismatchedConfig: resuming under hyper-parameters that
// would diverge from the original run must fail loudly, not silently
// train something else.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	cfg := stairConfig()
	cfg.Checkpoint = ckpt
	cfg.OnBatch = faultinject.CrashAfter(2)
	if _, err := rl.Train(stairEnvs(3), cfg); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatal(err)
	}
	ck, err := rl.ReadCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	bad := stairConfig()
	bad.Seed = 999
	if _, err := rl.ResumePolicy(ck, stairEnvs(3), bad); err == nil {
		t.Error("resume with different seed accepted")
	}
	bad = stairConfig()
	bad.LearningRate = 5e-3
	if _, err := rl.ResumePolicy(ck, stairEnvs(3), bad); err == nil {
		t.Error("resume with different learning rate accepted")
	}
	if _, err := rl.ResumePolicy(ck, stairEnvs(1), stairConfig()); err == nil {
		t.Error("resume positioned beyond the environment list accepted")
	}
}

// TestCheckpointRejectsCorruption: a truncated or garbage checkpoint file
// must be refused at load time, never half-restored.
func TestCheckpointRejectsCorruption(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	cfg := stairConfig()
	cfg.Checkpoint = ckpt
	cfg.OnBatch = faultinject.CrashAfter(2)
	if _, err := rl.Train(stairEnvs(3), cfg); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range [][]byte{
		raw[:len(raw)/2],
		[]byte("not json"),
		[]byte(`{"version": 999}`),
		{},
	} {
		if err := os.WriteFile(ckpt, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := rl.ReadCheckpointFile(ckpt); err == nil {
			t.Errorf("corrupt checkpoint (%d bytes) accepted", len(corrupt))
		}
	}
}

// TestNaNRewardSkipsBatch: an injected NaN reward must be caught by the
// post-rollout scan — the batch is skipped, the event is reported, and
// the final policy stays finite.
func TestNaNRewardSkipsBatch(t *testing.T) {
	envs := stairEnvs(3)
	poisoned := faultinject.NewEnv(envs[1])
	poisoned.NaNRewardAt = 1
	envs[1] = poisoned

	cfg := stairConfig()
	cfg.Epochs = 2
	res, err := rl.Train(envs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Health.Ok() {
		t.Fatal("NaN reward went unnoticed")
	}
	if res.Health.RolloutSkips != 2 { // env 1 poisoned in each of 2 epochs
		t.Errorf("RolloutSkips = %d, want 2", res.Health.RolloutSkips)
	}
	if len(res.Health.Events) == 0 || res.Health.Events[0].Kind != rl.HealthRolloutSkip {
		t.Errorf("events = %+v, want rollout-skip", res.Health.Events)
	}
	if !res.Final.Net.ParamsFinite() {
		t.Error("final policy has non-finite parameters")
	}
}

// TestNaNStateSkipsBatch: a NaN state makes the policy forward pass panic
// inside the rollout worker; the guard must convert that into a skipped
// batch, not a dead process, and keep training the healthy environments.
func TestNaNStateSkipsBatch(t *testing.T) {
	envs := stairEnvs(3)
	poisoned := faultinject.NewEnv(envs[2])
	poisoned.NaNStateAt = 1
	envs[2] = poisoned

	cfg := stairConfig()
	cfg.Epochs = 1
	res, err := rl.Train(envs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Health.RolloutSkips != 1 {
		t.Errorf("RolloutSkips = %d, want 1", res.Health.RolloutSkips)
	}
	if !res.Final.Net.ParamsFinite() {
		t.Error("final policy has non-finite parameters")
	}
	// The two healthy environments still trained: the optimizer stepped.
	if res.EpisodesRun != 2*cfg.Episodes {
		t.Errorf("EpisodesRun = %d, want %d", res.EpisodesRun, 2*cfg.Episodes)
	}
}

// TestHealthSurvivesCheckpoint: guard events recorded before a crash must
// come back with the resumed run's report.
func TestHealthSurvivesCheckpoint(t *testing.T) {
	envs := stairEnvs(3)
	poisoned := faultinject.NewEnv(envs[0])
	poisoned.NaNRewardAt = 0
	envs[0] = poisoned

	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	cfg := stairConfig()
	cfg.Epochs = 1
	cfg.Checkpoint = ckpt
	cfg.OnBatch = faultinject.CrashAfter(2)
	if _, err := rl.Train(envs, cfg); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatal("expected injected crash")
	}
	ck, err := rl.ReadCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Health.RolloutSkips != 1 {
		t.Fatalf("checkpointed RolloutSkips = %d, want 1", ck.Health.RolloutSkips)
	}
	cfg2 := stairConfig()
	cfg2.Epochs = 1
	res, err := rl.ResumePolicy(ck, stairEnvs(3), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Health.RolloutSkips != 1 || len(res.Health.Events) != 1 {
		t.Errorf("resumed health = %+v, want the pre-crash event preserved", res.Health)
	}
}
