package rl

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"rlts/internal/nn"
)

// TrainConfig holds the hyper-parameters of REINFORCE training, defaulted
// to the paper's settings (§VI-A).
type TrainConfig struct {
	LearningRate float64 // Adam learning rate; paper: 1e-3
	Gamma        float64 // reward discount; paper: 0.99
	Episodes     int     // episodes generated per trajectory (one update per batch); paper: 10
	Epochs       int     // passes over the trajectory list; default 1
	Hidden       int     // hidden layer width; paper: 20
	Seed         int64   // RNG seed for init, sampling and shuffling
	// Entropy adds an entropy bonus beta*H(pi(.|s)) to the objective,
	// discouraging premature collapse onto one action. The paper does not
	// use one (0 disables); it is provided for ablation.
	Entropy  float64
	Log      io.Writer // optional progress sink (nil = silent)
	LogEvery int       // log every n trajectories (0 = never)
}

// DefaultTrainConfig returns the paper's hyper-parameters.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		LearningRate: 1e-3,
		Gamma:        0.99,
		Episodes:     10,
		Hidden:       20,
		Seed:         1,
	}
}

func (c *TrainConfig) fillDefaults() {
	d := DefaultTrainConfig()
	if c.LearningRate <= 0 {
		c.LearningRate = d.LearningRate
	}
	if c.Gamma <= 0 {
		c.Gamma = d.Gamma
	}
	if c.Episodes <= 0 {
		c.Episodes = d.Episodes
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Hidden <= 0 {
		c.Hidden = d.Hidden
	}
}

// TrainResult reports what training produced. Best is the snapshot with
// the highest single-episode total reward (the paper's criterion); Final
// is the policy after the last update. Episode rewards are only comparable
// within one trajectory, so when training spans many trajectories of
// different difficulty Final is usually the better choice and is what the
// higher-level trainers use.
type TrainResult struct {
	Best        *Policy
	Final       *Policy
	BestReward  float64 // best single-episode total reward
	FinalReward float64 // total reward of the last episode
	EpisodesRun int
	StepsRun    int
}

// Rollout plays one episode of env under policy, sampling actions, and
// returns the recorded trace. train selects training-mode forwards so the
// batch-norm statistics learn the state distribution. If env implements
// Progresser, per-step progress keys are recorded for the trainer's
// return alignment.
func Rollout(env Env, p *Policy, r *rand.Rand, train bool) *Episode {
	ep := &Episode{}
	prog, hasProg := env.(Progresser)
	state, mask, done := env.Reset()
	for !done {
		if hasProg {
			ep.Keys = append(ep.Keys, prog.ProgressKey())
		}
		probs := p.Probs(state, mask, train)
		a := SampleAction(probs, r)
		next, nextMask, reward, d := env.Step(a)
		ep.States = append(ep.States, state)
		ep.Masks = append(ep.Masks, mask)
		ep.Actions = append(ep.Actions, a)
		ep.Rewards = append(ep.Rewards, reward)
		state, mask, done = next, nextMask, d
	}
	return ep
}

// Train runs REINFORCE over a stream of environments. envs yields one Env
// per training trajectory (the caller typically wraps a dataset); for each
// it generates cfg.Episodes episodes and applies one optimizer update per
// episode. It returns the best policy observed.
func Train(envs []Env, cfg TrainConfig) (*TrainResult, error) {
	cfg.fillDefaults()
	if len(envs) == 0 {
		return nil, fmt.Errorf("rl: no training environments")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	p, err := NewPolicy(envs[0].StateSize(), envs[0].NumActions(), cfg.Hidden, r)
	if err != nil {
		return nil, err
	}
	return TrainPolicy(p, envs, cfg)
}

// TrainPolicy is Train with a caller-supplied initial policy, allowing
// warm starts and architecture experiments.
func TrainPolicy(p *Policy, envs []Env, cfg TrainConfig) (*TrainResult, error) {
	cfg.fillDefaults()
	if len(envs) == 0 {
		return nil, fmt.Errorf("rl: no training environments")
	}
	for _, env := range envs {
		if env.StateSize() != p.Spec.In || env.NumActions() != p.Spec.Out {
			return nil, fmt.Errorf("rl: env shape (%d states, %d actions) does not match policy (%d, %d)",
				env.StateSize(), env.NumActions(), p.Spec.In, p.Spec.Out)
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	adam := nn.NewAdam(p.Net.Params(), cfg.LearningRate)

	res := &TrainResult{Best: p.Clone(), BestReward: math.Inf(-1)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for ti, env := range envs {
			// Generate the trajectory's episode batch under the current
			// policy; one optimizer update per batch.
			batch := make([]*Episode, 0, cfg.Episodes)
			for e := 0; e < cfg.Episodes; e++ {
				ep := Rollout(env, p, r, true)
				if ep.Len() == 0 {
					continue
				}
				batch = append(batch, ep)
				res.EpisodesRun++
				res.StepsRun += ep.Len()
				total := ep.TotalReward()
				res.FinalReward = total
				if total > res.BestReward {
					res.BestReward = total
					res.Best = p.Clone()
				}
			}
			if len(batch) > 0 {
				updateBatch(p, adam, batch, cfg.Gamma, cfg.Entropy)
			}
			if cfg.Log != nil && cfg.LogEvery > 0 && (ti+1)%cfg.LogEvery == 0 {
				fmt.Fprintf(cfg.Log, "rl: epoch %d, trajectory %d/%d, best reward %.4f, last %.4f\n",
					epoch+1, ti+1, len(envs), res.BestReward, res.FinalReward)
			}
		}
	}
	res.Final = p
	return res, nil
}

// updateBatch applies one REINFORCE update from a batch of episodes rolled
// out on the same trajectory. Returns are normalized per *position* across
// the batch (Eq. 11's \hat R_t and sigma_t): the baseline at a position is
// the mean return over the episodes at that same position, which removes
// the strong positional trend the returns carry (simplification errors
// only accumulate, so a whole-episode baseline would mostly encode "early
// actions look bad", not action quality).
//
// Position is the episode's progress key when the environment provides one
// (equal scan index for the RLTS MDPs, so episodes that skipped different
// numbers of points still compare like with like), falling back to the
// step index otherwise.
func updateBatch(p *Policy, adam *nn.Adam, batch []*Episode, gamma, entropy float64) {
	returns := make([][]float64, len(batch))
	coeffs := make([][]float64, len(batch))
	for i, ep := range batch {
		returns[i] = ep.Returns(gamma)
		coeffs[i] = make([]float64, ep.Len())
	}
	// Group step references by position.
	type ref struct{ ep, t int }
	groups := make(map[int][]ref)
	for i, ep := range batch {
		for t := 0; t < ep.Len(); t++ {
			key := t
			if len(ep.Keys) == ep.Len() {
				key = ep.Keys[t]
			}
			groups[key] = append(groups[key], ref{i, t})
		}
	}
	for _, refs := range groups {
		if len(refs) < 2 {
			continue // a single sample carries no comparative signal
		}
		var mean float64
		for _, rf := range refs {
			mean += returns[rf.ep][rf.t]
		}
		mean /= float64(len(refs))
		var varAcc float64
		for _, rf := range refs {
			d := returns[rf.ep][rf.t] - mean
			varAcc += d * d
		}
		std := math.Sqrt(varAcc / float64(len(refs)))
		if std < 1e-12 {
			continue
		}
		for _, rf := range refs {
			coeffs[rf.ep][rf.t] = (returns[rf.ep][rf.t] - mean) / std
		}
	}
	p.Net.ZeroGrad()
	var steps int
	for i, ep := range batch {
		for t := 0; t < ep.Len(); t++ {
			steps++
			if coeffs[i][t] != 0 {
				p.accumulateStep(ep.States[t], ep.Masks[t], ep.Actions[t], coeffs[i][t])
			}
			if entropy > 0 {
				p.accumulateEntropy(ep.States[t], ep.Masks[t], entropy)
			}
		}
	}
	if steps > 0 {
		adam.Step(float64(steps))
	}
}
