package rl

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rlts/internal/nn"
)

// TrainConfig holds the hyper-parameters of REINFORCE training, defaulted
// to the paper's settings (§VI-A).
type TrainConfig struct {
	LearningRate float64 // Adam learning rate; paper: 1e-3
	Gamma        float64 // reward discount; paper: 0.99
	Episodes     int     // episodes generated per trajectory (one update per batch); paper: 10
	Epochs       int     // passes over the trajectory list; default 1
	Hidden       int     // hidden layer width; paper: 20
	Seed         int64   // RNG seed for init, sampling and shuffling
	// Workers sets how many goroutines roll out episodes and accumulate
	// gradients within each per-trajectory batch: 0 means GOMAXPROCS,
	// 1 runs everything on the calling goroutine. The math is identical
	// for every worker count — per-episode RNGs are derived from Seed,
	// rollouts run against a frozen policy snapshot, and per-episode
	// gradients merge in episode order — so the trained policy is
	// bit-for-bit reproducible regardless of Workers.
	Workers int
	// Entropy adds an entropy bonus beta*H(pi(.|s)) to the objective,
	// discouraging premature collapse onto one action. The paper does not
	// use one (0 disables); it is provided for ablation.
	Entropy  float64
	Log      io.Writer // optional progress sink (nil = silent)
	LogEvery int       // log every n trajectories (0 = never)
	// Logger, when non-nil, receives a structured progress record every
	// LogEvery trajectories (alongside whatever Log gets): epoch, position,
	// rewards, last merged gradient norm and guard-trip counts. Metrics
	// themselves always flow into the obs default registry regardless.
	Logger *slog.Logger
	// Checkpoint, when non-empty, is a file path that periodically receives
	// an atomically-written training checkpoint (policy, best snapshot,
	// optimizer moments, RNG position, batch counter, health report).
	// A run resumed from it with ResumePolicy and the same dataset and
	// hyper-parameters produces the bit-identical final policy of an
	// uninterrupted run.
	Checkpoint string
	// CheckpointEvery sets how many batches elapse between checkpoint
	// writes (<=0 means every batch). The final batch is always
	// checkpointed regardless.
	CheckpointEvery int
	// OnBatch, when non-nil, runs after every completed batch (and after
	// any due checkpoint write) with the global 1-based batch number.
	// Returning a non-nil error aborts training with that error; the fault
	// injection tests use it to simulate crashes at batch boundaries.
	OnBatch func(batch int) error
}

// DefaultTrainConfig returns the paper's hyper-parameters.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		LearningRate: 1e-3,
		Gamma:        0.99,
		Episodes:     10,
		Hidden:       20,
		Seed:         1,
	}
}

func (c *TrainConfig) fillDefaults() {
	d := DefaultTrainConfig()
	if c.LearningRate <= 0 {
		c.LearningRate = d.LearningRate
	}
	if c.Gamma <= 0 {
		c.Gamma = d.Gamma
	}
	if c.Episodes <= 0 {
		c.Episodes = d.Episodes
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Hidden <= 0 {
		c.Hidden = d.Hidden
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
}

// TrainResult reports what training produced. Best is the snapshot with
// the highest single-episode total reward (the paper's criterion); Final
// is the policy after the last update. Episode rewards are only comparable
// within one trajectory, so when training spans many trajectories of
// different difficulty Final is usually the better choice and is what the
// higher-level trainers use.
type TrainResult struct {
	Best        *Policy
	Final       *Policy
	BestReward  float64 // best single-episode total reward
	FinalReward float64 // total reward of the last episode
	EpisodesRun int
	StepsRun    int
	// Health reports what the divergence guards saw: batches skipped for
	// non-finite rollouts, updates dropped for non-finite gradients, and
	// parameter rollbacks. A healthy run has Health.Ok() == true.
	Health TrainHealth
}

// Rollout plays one episode of env under policy, sampling actions, and
// returns the recorded trace. train selects training-mode forwards
// (batch-norm statistics update); the batch trainer always rolls out with
// train=false against a frozen snapshot and folds the statistics in once
// per batch. If env implements Progresser, per-step progress keys are
// recorded for the trainer's return alignment.
//
// States and masks are copied into episode-owned storage, so environments
// may reuse their state buffers between steps.
func Rollout(env Env, p *Policy, r *rand.Rand, train bool) *Episode {
	ep := &Episode{}
	rolloutInto(ep, env, p, r, train)
	return ep
}

// rolloutInto is Rollout reusing a caller-owned episode's storage.
func rolloutInto(ep *Episode, env Env, p *Policy, r *rand.Rand, train bool) {
	ep.reset()
	prog, hasProg := env.(Progresser)
	state, mask, done := env.Reset()
	for !done {
		if hasProg {
			ep.Keys = append(ep.Keys, prog.ProgressKey())
		}
		probs := p.probsInto(state, mask, train)
		a := SampleAction(probs, r)
		// Copy state/mask before Step: building the next state may overwrite
		// the environment's scratch buffers that state/mask alias.
		ep.pushStep(state, mask, a)
		var reward float64
		state, mask, reward, done = env.Step(a)
		ep.Rewards = append(ep.Rewards, reward)
	}
}

// Train runs REINFORCE over a stream of environments. envs yields one Env
// per training trajectory (the caller typically wraps a dataset); for each
// it generates cfg.Episodes episodes and applies one optimizer update per
// batch. It returns the best policy observed.
func Train(envs []Env, cfg TrainConfig) (*TrainResult, error) {
	cfg.fillDefaults()
	if len(envs) == 0 {
		return nil, fmt.Errorf("rl: no training environments")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	p, err := NewPolicy(envs[0].StateSize(), envs[0].NumActions(), cfg.Hidden, r)
	if err != nil {
		return nil, err
	}
	return TrainPolicy(p, envs, cfg)
}

// TrainPolicy is Train with a caller-supplied initial policy, allowing
// warm starts and architecture experiments.
//
// Within each per-trajectory batch the cfg.Episodes rollouts are
// independent given a frozen policy snapshot, so they are fanned out over
// cfg.Workers goroutines; see TrainConfig.Workers for the determinism
// guarantee.
func TrainPolicy(p *Policy, envs []Env, cfg TrainConfig) (*TrainResult, error) {
	cfg.fillDefaults()
	if err := validateEnvs(p, envs); err != nil {
		return nil, err
	}
	return trainLoop(p, envs, cfg, nil)
}

// ResumePolicy continues a training run from a checkpoint written by a
// previous TrainPolicy/ResumePolicy invocation with cfg.Checkpoint set.
// envs and the determinism-relevant hyper-parameters (seed, episodes,
// learning rate, gamma, entropy) must match the original run; cfg.Epochs
// may be raised to train longer. The resumed run replays the exact
// remaining batch sequence, so its final policy is bit-identical to the
// uninterrupted run's.
func ResumePolicy(ck *Checkpoint, envs []Env, cfg TrainConfig) (*TrainResult, error) {
	cfg.fillDefaults()
	if err := ck.compatible(cfg, len(envs)); err != nil {
		return nil, err
	}
	if err := validateEnvs(ck.Policy, envs); err != nil {
		return nil, err
	}
	return trainLoop(ck.Policy, envs, cfg, ck)
}

func validateEnvs(p *Policy, envs []Env) error {
	if len(envs) == 0 {
		return fmt.Errorf("rl: no training environments")
	}
	for _, env := range envs {
		if env.StateSize() != p.Spec.In || env.NumActions() != p.Spec.Out {
			return fmt.Errorf("rl: env shape (%d states, %d actions) does not match policy (%d, %d)",
				env.StateSize(), env.NumActions(), p.Spec.In, p.Spec.Out)
		}
	}
	return nil
}

// trainLoop is the shared epoch/batch loop of TrainPolicy and
// ResumePolicy: ck == nil starts fresh, otherwise the engine and result
// are restored and the loop continues from the checkpointed position.
func trainLoop(p *Policy, envs []Env, cfg TrainConfig, ck *Checkpoint) (*TrainResult, error) {
	eng := newEngine(p, cfg)
	res := &TrainResult{BestReward: math.Inf(-1)}
	startEpoch, startEnv := 0, 0
	if ck != nil {
		if err := eng.restore(ck, res); err != nil {
			return nil, err
		}
		startEpoch, startEnv = ck.Epoch, ck.Next
	}
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		first := 0
		if epoch == startEpoch {
			first = startEnv
		}
		for ti := first; ti < len(envs); ti++ {
			eng.runBatch(envs[ti], res)
			// The position the *next* batch runs at; a checkpoint taken now
			// resumes there.
			nextEpoch, nextEnv := epoch, ti+1
			if nextEnv == len(envs) {
				nextEpoch, nextEnv = epoch+1, 0
			}
			lastBatch := nextEpoch >= cfg.Epochs
			if cfg.Checkpoint != "" && (eng.batch%cfg.CheckpointEvery == 0 || lastBatch) {
				if err := eng.writeCheckpoint(cfg.Checkpoint, nextEpoch, nextEnv, res); err != nil {
					return nil, fmt.Errorf("rl: checkpoint: %w", err)
				}
			}
			if cfg.OnBatch != nil {
				if err := cfg.OnBatch(eng.batch); err != nil {
					return nil, err
				}
			}
			if cfg.LogEvery > 0 && (ti+1)%cfg.LogEvery == 0 {
				if cfg.Log != nil {
					fmt.Fprintf(cfg.Log, "rl: epoch %d, trajectory %d/%d, best reward %.4f, last %.4f\n",
						epoch+1, ti+1, len(envs), res.BestReward, res.FinalReward)
				}
				if cfg.Logger != nil {
					cfg.Logger.Info("training progress",
						"epoch", epoch+1, "trajectory", ti+1, "of", len(envs),
						"batch", eng.batch,
						"best_reward", res.BestReward, "last_reward", res.FinalReward,
						"grad_norm", trainMetrics().gradNorm.Value(),
						"guard_trips", res.Health.RolloutSkips+res.Health.GradSkips+res.Health.Rollbacks)
				}
			}
		}
	}
	res.Final = p
	if res.Best == nil {
		// No episode ever ran (all environments degenerate): the policy is
		// unchanged, so the final weights are also the best seen.
		res.Best = p.Clone()
	}
	return res, nil
}

// engine is the per-TrainPolicy-run rollout and update machinery: worker
// replicas of the policy, reusable episode and gradient storage, and the
// running episode counter that seeds per-episode RNGs.
type engine struct {
	master *Policy
	adam   *nn.Adam
	cfg    TrainConfig

	workers []*trainWorker
	eps     []*Episode  // cfg.Episodes slots, storage reused across batches
	epFail  []string    // per-episode rollout panic message ("" = ok)
	grads   [][]float64 // per-episode flattened gradients, merged in order
	steps   []int       // per-episode gradient step counts
	coeffs  [][]float64 // per-episode REINFORCE coefficients
	returns [][]float64 // per-episode discounted returns
	epSeq   uint64      // episodes started so far; seeds per-episode RNGs
	batch   int         // global 1-based batch counter (survives resume)

	// workerNanos[i] accumulates worker i's rollout busy time within the
	// current batch (each worker writes only its own slot, so the parallel
	// phase stays race-free); drained into the obs histogram per batch.
	workerNanos []int64

	// Divergence-guard scratch: the parameter and optimizer state saved
	// immediately before each Adam step, restored if the step produced
	// non-finite weights (buffers reused every batch).
	preParams []float64
	preAdam   nn.AdamState
}

// trainWorker owns everything one rollout/gradient goroutine touches: a
// full policy replica (network weights, batch-norm statistics and forward
// workspace), a reseedable RNG and, during the rollout phase, a cloned
// environment.
type trainWorker struct {
	id     int // index into engine.workerNanos
	policy *Policy
	rng    *rand.Rand
	env    Env
}

func newEngine(p *Policy, cfg TrainConfig) *engine {
	eng := &engine{
		master:  p,
		adam:    nn.NewAdam(p.Net.Params(), cfg.LearningRate),
		cfg:     cfg,
		eps:     make([]*Episode, cfg.Episodes),
		epFail:  make([]string, cfg.Episodes),
		grads:   make([][]float64, cfg.Episodes),
		steps:   make([]int, cfg.Episodes),
		coeffs:  make([][]float64, cfg.Episodes),
		returns: make([][]float64, cfg.Episodes),
	}
	for i := range eng.eps {
		eng.eps[i] = &Episode{}
	}
	nw := cfg.Workers
	if nw > cfg.Episodes {
		nw = cfg.Episodes
	}
	if nw < 1 {
		nw = 1
	}
	eng.workers = make([]*trainWorker, nw)
	eng.workerNanos = make([]int64, nw)
	for i := range eng.workers {
		eng.workers[i] = &trainWorker{
			id:     i,
			policy: p.Clone(),
			rng:    rand.New(rand.NewSource(0)),
		}
	}
	return eng
}

// deriveSeed maps (master seed, episode index) to an independent RNG seed
// with a splitmix64-style mix, so episode e always samples the same action
// stream no matter which worker runs it.
func deriveSeed(master int64, episode uint64) int64 {
	z := uint64(master) + 0x9e3779b97f4a7c15*(episode+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// syncWorkers refreshes every replica from the master policy (weights and
// batch-norm statistics), in place.
func (g *engine) syncWorkers() {
	for _, w := range g.workers {
		w.policy.Net.SyncFrom(g.master.Net)
	}
}

// parallel runs fn(worker, e) for e in [0, n) over up to nw workers.
// Episodes are claimed with an atomic counter, so worker assignment is
// scheduling-dependent — which is fine, because fn's output for episode e
// must not depend on the worker (replicas are bit-identical).
func (g *engine) parallel(nw, n int, fn func(w *trainWorker, e int)) {
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		for e := 0; e < n; e++ {
			fn(g.workers[0], e)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(w *trainWorker) {
			defer wg.Done()
			for {
				e := int(next.Add(1))
				if e >= n {
					return
				}
				fn(w, e)
			}
		}(g.workers[i])
	}
	wg.Wait()
}

// runBatch generates one batch of episodes on env and applies one
// REINFORCE update. The phases are:
//
//  1. sync replicas to the master (the frozen snapshot for this batch);
//  2. parallel rollouts with per-episode RNGs, train=false forwards;
//  3. divergence guard: if any rollout produced a non-finite state or
//     reward, the whole batch is discarded before it can touch the
//     statistics, the result, or the weights;
//  4. serial bookkeeping: reward stats, lazy best-policy clone (at most
//     one per batch), batch-norm running statistics updated once from the
//     collected states in episode order;
//  5. re-sync replicas (they need the updated statistics);
//  6. parallel per-episode gradient accumulation on the replicas;
//  7. serial merge of the per-episode gradients in episode order and a
//     single Adam step, guarded: a non-finite merged gradient drops the
//     update, and a step that yields non-finite weights is rolled back to
//     the pre-step parameters and optimizer moments.
//
// Every floating-point operation happens either serially on the master or
// per-episode on a replica that is bit-identical to the master, so the
// result does not depend on the worker count. The guards are themselves
// deterministic, so checkpoint/resume reproducibility holds even for runs
// that trip them.
func (g *engine) runBatch(env Env, res *TrainResult) {
	g.batch++
	numEp := g.cfg.Episodes
	g.syncWorkers()

	// Environment clones for the rollout phase (refreshed every batch — the
	// environment changes per trajectory). Without EnvCloner only one worker
	// rolls out (serially); the gradient phase still parallelizes.
	rolloutWorkers := len(g.workers)
	g.workers[0].env = env
	if cloner, ok := env.(EnvCloner); ok {
		for i := 1; i < rolloutWorkers; i++ {
			g.workers[i].env = cloner.CloneEnv()
		}
	} else {
		rolloutWorkers = 1
	}

	seqBase := g.epSeq
	g.epSeq += uint64(numEp)
	for i := range g.workerNanos {
		g.workerNanos[i] = 0
	}
	g.parallel(rolloutWorkers, numEp, func(w *trainWorker, e int) {
		start := time.Now()
		w.rng.Seed(deriveSeed(g.cfg.Seed, seqBase+uint64(e)))
		g.epFail[e] = safeRollout(g.eps[e], w.env, w.policy, w.rng)
		g.workerNanos[w.id] += time.Since(start).Nanoseconds()
	})
	met := trainMetrics()
	for _, ns := range g.workerNanos {
		if ns > 0 {
			met.rolloutWorkerSeconds.Observe(float64(ns) / 1e9)
		}
	}
	met.batches.Inc()

	// Guard: a non-finite state or reward (NaN coordinates slipping through
	// a caller, a diverged policy pushing the environment into overflow)
	// would poison the batch-norm statistics, the return normalization and
	// the gradients — and a rollout that panicked outright (e.g. NaN logits
	// leaving no legal action) produced no usable episode at all. Drop the
	// batch before anything downstream sees it.
	if detail := g.scanBatch(); detail != "" {
		res.Health.note(g.batch, HealthRolloutSkip, detail)
		return
	}

	// Serial bookkeeping over the collected episodes, in episode order.
	batchBest := math.Inf(-1)
	nonEmpty := 0
	for _, ep := range g.eps {
		if ep.Len() == 0 {
			continue
		}
		nonEmpty++
		res.EpisodesRun++
		res.StepsRun += ep.Len()
		met.episodes.Inc()
		met.steps.Add(uint64(ep.Len()))
		total := ep.TotalReward()
		met.episodeReward.Observe(total)
		res.FinalReward = total
		if total > batchBest {
			batchBest = total
		}
	}
	if nonEmpty == 0 {
		return
	}
	if batchBest > res.BestReward {
		// Snapshot lazily, at most once per batch: the rollouts all ran
		// against the same frozen policy, so one clone covers every episode
		// of the batch.
		res.BestReward = batchBest
		res.Best = g.master.Clone()
	}

	// Fold the batch's state distribution into the batch-norm running
	// statistics, once, in episode order.
	for _, ep := range g.eps {
		for _, s := range ep.States {
			g.master.Net.UpdateStats(s)
		}
	}
	g.syncWorkers()

	g.computeCoeffs()

	// Per-episode gradient accumulation on the replicas.
	g.parallel(len(g.workers), numEp, func(w *trainWorker, e int) {
		ep := g.eps[e]
		g.steps[e] = 0
		if ep.Len() == 0 {
			return
		}
		w.policy.Net.ZeroGrad()
		for t := 0; t < ep.Len(); t++ {
			g.steps[e]++
			if c := g.coeffs[e][t]; c != 0 {
				w.policy.accumulateStep(ep.States[t], ep.Masks[t], ep.Actions[t], c)
			}
			if g.cfg.Entropy > 0 {
				w.policy.accumulateEntropy(ep.States[t], ep.Masks[t], g.cfg.Entropy)
			}
		}
		if g.grads[e] == nil {
			g.grads[e] = make([]float64, 0, w.policy.Net.GradSize())
		}
		g.grads[e] = w.policy.Net.FlattenGrads(g.grads[e])
	})

	// Merge shards in episode order and take the single Adam step.
	g.master.Net.ZeroGrad()
	var steps int
	for e := 0; e < numEp; e++ {
		if g.steps[e] == 0 {
			continue
		}
		g.master.Net.AddGrads(g.grads[e])
		steps += g.steps[e]
	}
	if steps == 0 {
		return
	}
	// Guard: a non-finite merged gradient (overflow in the accumulation)
	// would corrupt the Adam moments for every later batch. Drop the update.
	if !g.master.Net.GradsFinite() {
		g.master.Net.ZeroGrad()
		res.Health.note(g.batch, HealthGradSkip, "non-finite merged gradient")
		return
	}
	met.gradNorm.Set(g.master.Net.GradNorm())
	// Guard: snapshot the weights and optimizer moments, step, and verify.
	// If the step still produced non-finite weights, roll back to the last
	// good policy rather than continuing from a corrupted one.
	g.preParams = g.master.Net.FlattenParams(g.preParams)
	g.adam.Snapshot(&g.preAdam)
	g.adam.Step(float64(steps))
	if !g.master.Net.ParamsFinite() {
		g.master.Net.SetParams(g.preParams)
		if err := g.adam.Restore(&g.preAdam); err != nil {
			panic("rl: rollback restore failed: " + err.Error()) // same optimizer, cannot happen
		}
		res.Health.note(g.batch, HealthRollback, "non-finite weights after update; rolled back")
	}
}

// safeRollout is rolloutInto converting a panic (an environment bug, or
// NaN logits leaving the masked softmax without a legal action) into an
// error message instead of killing the training process. Training mode is
// always false here: the batch trainer folds statistics in separately.
func safeRollout(ep *Episode, env Env, p *Policy, r *rand.Rand) (fail string) {
	defer func() {
		if rec := recover(); rec != nil {
			fail = fmt.Sprintf("rollout panic: %v", rec)
		}
	}()
	rolloutInto(ep, env, p, r, false)
	return ""
}

// scanBatch returns a description of the first rollout failure or
// non-finite value in the batch, or "" when the batch is clean.
func (g *engine) scanBatch() string {
	for e, msg := range g.epFail {
		if msg != "" {
			return fmt.Sprintf("episode %d: %s", e, msg)
		}
	}
	return scanEpisodes(g.eps)
}

// scanEpisodes returns a description of the first non-finite state or
// reward in the batch, or "" when everything is finite. Rewards stand in
// for the returns (a finite reward sequence has finite returns short of
// astronomical overflow, which the gradient guard still catches), and
// states stand in for the logits: finite weights on a finite state cannot
// produce non-finite logits.
func scanEpisodes(eps []*Episode) string {
	for e, ep := range eps {
		for t, r := range ep.Rewards {
			if !finite(r) {
				return fmt.Sprintf("episode %d step %d: reward %v", e, t, r)
			}
		}
		for t, s := range ep.States {
			for d, v := range s {
				if !finite(v) {
					return fmt.Sprintf("episode %d step %d: state[%d] = %v", e, t, d, v)
				}
			}
		}
	}
	return ""
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// computeCoeffs fills g.coeffs with the batch's per-step REINFORCE
// coefficients, reusing the engine's return and coefficient buffers.
func (g *engine) computeCoeffs() {
	batchCoeffs(g.eps, g.cfg.Gamma, g.coeffs, g.returns)
}

// batchCoeffs computes the per-step REINFORCE coefficients of a batch:
// discounted returns normalized per *position* across the batch (Eq. 11's
// \hat R_t and sigma_t). The baseline at a position is the mean return
// over the episodes at that same position, which removes the strong
// positional trend the returns carry (simplification errors only
// accumulate, so a whole-episode baseline would mostly encode "early
// actions look bad", not action quality).
//
// Position is the episode's progress key when the environment provides one
// (equal scan index for the RLTS MDPs, so episodes that skipped different
// numbers of points still compare like with like), falling back to the
// step index otherwise.
//
// coeffs and returns are per-episode output buffers of len(eps), resized
// in place (grown only when too small).
func batchCoeffs(eps []*Episode, gamma float64, coeffs, returns [][]float64) {
	for e, ep := range eps {
		returns[e] = ep.returnsInto(returns[e], gamma)
		c := coeffs[e]
		if cap(c) < ep.Len() {
			c = make([]float64, ep.Len())
		}
		c = c[:ep.Len()]
		for i := range c {
			c[i] = 0
		}
		coeffs[e] = c
	}
	// Group step references by position. Groups touch disjoint coefficient
	// entries and each group's statistics are accumulated in episode order,
	// so map iteration order does not affect the result.
	type ref struct{ ep, t int }
	groups := make(map[int][]ref)
	for e, ep := range eps {
		for t := 0; t < ep.Len(); t++ {
			key := t
			if len(ep.Keys) == ep.Len() {
				key = ep.Keys[t]
			}
			groups[key] = append(groups[key], ref{e, t})
		}
	}
	for _, refs := range groups {
		if len(refs) < 2 {
			continue // a single sample carries no comparative signal
		}
		var mean float64
		for _, rf := range refs {
			mean += returns[rf.ep][rf.t]
		}
		mean /= float64(len(refs))
		var varAcc float64
		for _, rf := range refs {
			d := returns[rf.ep][rf.t] - mean
			varAcc += d * d
		}
		std := math.Sqrt(varAcc / float64(len(refs)))
		if std < 1e-12 {
			continue
		}
		for _, rf := range refs {
			coeffs[rf.ep][rf.t] = (returns[rf.ep][rf.t] - mean) / std
		}
	}
}

// updateBatch applies one REINFORCE update from a batch of episodes to p,
// entirely serially: the reference implementation the parallel engine must
// reproduce bit for bit, kept for tests and as executable documentation.
func updateBatch(p *Policy, adam *nn.Adam, batch []*Episode, gamma, entropy float64) {
	coeffs := make([][]float64, len(batch))
	returns := make([][]float64, len(batch))
	batchCoeffs(batch, gamma, coeffs, returns)
	p.Net.ZeroGrad()
	var steps int
	for e, ep := range batch {
		for t := 0; t < ep.Len(); t++ {
			steps++
			if c := coeffs[e][t]; c != 0 {
				p.accumulateStep(ep.States[t], ep.Masks[t], ep.Actions[t], c)
			}
			if entropy > 0 {
				p.accumulateEntropy(ep.States[t], ep.Masks[t], entropy)
			}
		}
	}
	if steps > 0 {
		adam.Step(float64(steps))
	}
}
