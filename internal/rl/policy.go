package rl

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"rlts/internal/nn"
)

// Policy is a stochastic softmax policy pi_theta(a|s) parameterized by a
// small MLP (Eq. 10). It owns the network together with its architecture
// spec so it can be cloned and serialized.
type Policy struct {
	Spec nn.MLPSpec
	Net  *nn.Network
}

// NewPolicy builds a policy network for the given state and action sizes
// following the paper's architecture: one hidden layer of hidden units
// with batch normalization before a tanh activation, then a softmax
// output over the actions.
func NewPolicy(stateSize, numActions, hidden int, r *rand.Rand) (*Policy, error) {
	spec := nn.MLPSpec{
		In:         stateSize,
		Hidden:     []int{hidden},
		Out:        numActions,
		BatchNorm:  true,
		Activation: "tanh",
	}
	net, err := nn.NewMLP(spec, r)
	if err != nil {
		return nil, err
	}
	return &Policy{Spec: spec, Net: net}, nil
}

// Probs returns pi(.|state) restricted to the legal actions. train
// selects training-time forward behaviour (batch-norm statistics update).
func (p *Policy) Probs(state []float64, mask []bool, train bool) []float64 {
	logits := p.Net.Forward(state, train)
	if mask == nil {
		return nn.Softmax(logits)
	}
	return nn.MaskedSoftmax(logits, mask)
}

// Act selects an action for state: sampled from the distribution when
// sample is true (the paper's online-mode inference), greedy argmax
// otherwise (batch-mode inference).
func (p *Policy) Act(state []float64, mask []bool, sample bool, r *rand.Rand) int {
	probs := p.Probs(state, mask, false)
	if sample {
		return SampleAction(probs, r)
	}
	return GreedyAction(probs)
}

// Clone returns an independent deep copy of the policy.
func (p *Policy) Clone() *Policy {
	return &Policy{Spec: p.Spec, Net: nn.CloneMLP(p.Spec, p.Net)}
}

// Save writes the policy to w in the nn JSON format.
func (p *Policy) Save(w io.Writer) error { return nn.SaveMLP(w, p.Spec, p.Net) }

// LoadPolicy reads a policy written by Save.
func LoadPolicy(r io.Reader) (*Policy, error) {
	spec, net, err := nn.LoadMLP(r)
	if err != nil {
		return nil, fmt.Errorf("rl: load policy: %w", err)
	}
	return &Policy{Spec: spec, Net: net}, nil
}

// accumulateEntropy adds the gradient of -beta * H(pi(.|s)) (descent on
// the negated entropy bonus): dH/dz_i = -p_i * (ln p_i + H), so the
// accumulated gradient is beta * p_i * (ln p_i + H). Masked actions have
// p_i = 0 and contribute nothing.
func (p *Policy) accumulateEntropy(state []float64, mask []bool, beta float64) {
	probs := p.Probs(state, mask, false)
	var h float64
	for _, pi := range probs {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	grad := make([]float64, len(probs))
	for i, pi := range probs {
		if pi > 0 {
			grad[i] = beta * pi * (math.Log(pi) + h)
		}
	}
	p.Net.Backward(grad)
}

// accumulateStep adds the REINFORCE gradient contribution of one step:
// d/dtheta [ -Rnorm * ln pi(a|s) ], evaluated at the stored state.
// Gradients are accumulated into the network; the caller applies the
// optimizer step after the episode.
func (p *Policy) accumulateStep(state []float64, mask []bool, action int, coeff float64) {
	probs := p.Probs(state, mask, false)
	grad := make([]float64, len(probs))
	for i, pi := range probs {
		grad[i] = coeff * pi
	}
	grad[action] -= coeff
	p.Net.Backward(grad)
}
