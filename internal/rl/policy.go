package rl

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"rlts/internal/nn"
)

// Policy is a stochastic softmax policy pi_theta(a|s) parameterized by a
// small MLP (Eq. 10). It owns the network together with its architecture
// spec so it can be cloned and serialized.
//
// A Policy is not safe for concurrent use: the network layers and the
// probability/gradient scratch buffers are reused across calls. The
// parallel trainer and concurrent inference wrappers give every worker
// its own clone.
type Policy struct {
	Spec nn.MLPSpec
	Net  *nn.Network

	probs []float64 // forward scratch shared by probsInto callers
	grad  []float64 // backward scratch for accumulateStep/accumulateEntropy
}

// NewPolicy builds a policy network for the given state and action sizes
// following the paper's architecture: one hidden layer of hidden units
// with batch normalization before a tanh activation, then a softmax
// output over the actions.
func NewPolicy(stateSize, numActions, hidden int, r *rand.Rand) (*Policy, error) {
	spec := nn.MLPSpec{
		In:         stateSize,
		Hidden:     []int{hidden},
		Out:        numActions,
		BatchNorm:  true,
		Activation: "tanh",
	}
	net, err := nn.NewMLP(spec, r)
	if err != nil {
		return nil, err
	}
	return &Policy{Spec: spec, Net: net}, nil
}

// Probs returns pi(.|state) restricted to the legal actions. train
// selects training-time forward behaviour (batch-norm statistics update).
// The returned slice is freshly allocated; hot paths inside the package
// use probsInto instead.
func (p *Policy) Probs(state []float64, mask []bool, train bool) []float64 {
	out := make([]float64, p.Spec.Out)
	copy(out, p.probsInto(state, mask, train))
	return out
}

// probsInto is Probs writing into the policy's scratch buffer: zero
// allocations per call, but the result is only valid until the next
// forward on this policy.
func (p *Policy) probsInto(state []float64, mask []bool, train bool) []float64 {
	logits := p.Net.Forward(state, train)
	if p.probs == nil {
		p.probs = make([]float64, len(logits))
	}
	if mask == nil {
		return nn.SoftmaxInto(p.probs, logits)
	}
	return nn.MaskedSoftmaxInto(p.probs, logits, mask)
}

// ProbsBatch computes pi(.|state) for b states at once: states holds b
// row-major state rows, masks (when non-nil) one legal-action mask per
// row (a nil entry means all actions legal). The returned slice holds b
// row-major probability rows and is network-owned scratch, valid until
// the next forward on this policy. Each row is bit-identical to the
// inference-mode Probs on the same state — ForwardBatch matches
// Forward(state, false) exactly and the per-row softmax is the very
// same code both paths run (MaskedSoftmaxInto / SoftmaxInto permit dst
// aliasing logits, which is what happens here).
func (p *Policy) ProbsBatch(states []float64, b int, masks [][]bool) []float64 {
	logits := p.Net.ForwardBatch(states, b)
	out := p.Spec.Out
	for r := 0; r < b; r++ {
		row := logits[r*out : (r+1)*out]
		var mask []bool
		if masks != nil {
			mask = masks[r]
		}
		if mask == nil {
			nn.SoftmaxInto(row, row)
		} else {
			nn.MaskedSoftmaxInto(row, row, mask)
		}
	}
	return logits
}

// Act selects an action for state: sampled from the distribution when
// sample is true (the paper's online-mode inference), greedy argmax
// otherwise (batch-mode inference).
func (p *Policy) Act(state []float64, mask []bool, sample bool, r *rand.Rand) int {
	probs := p.probsInto(state, mask, false)
	if sample {
		return SampleAction(probs, r)
	}
	return GreedyAction(probs)
}

// Clone returns an independent deep copy of the policy, inheriting the
// source's inference-kernel selection (nn.CloneMLP carries it over).
func (p *Policy) Clone() *Policy {
	return &Policy{Spec: p.Spec, Net: nn.CloneMLP(p.Spec, p.Net)}
}

// SetKernel selects the inference kernel of the policy network:
// nn.KernelExact (the default, bit-identical to training forwards) or
// nn.KernelFast (fused approximate kernels with the bounded error
// contract of nn/fastmath.go). Fast policies are inference-only — the
// network panics on Backward after a fast forward — so training code
// must never select it.
func (p *Policy) SetKernel(k nn.Kernel) { p.Net.SetKernel(k) }

// Kernel reports the policy network's inference-kernel selection.
func (p *Policy) Kernel() nn.Kernel { return p.Net.Kernel() }

// Save writes the policy to w in the nn JSON format.
func (p *Policy) Save(w io.Writer) error { return nn.SaveMLP(w, p.Spec, p.Net) }

// LoadPolicy reads a policy written by Save.
func LoadPolicy(r io.Reader) (*Policy, error) {
	spec, net, err := nn.LoadMLP(r)
	if err != nil {
		return nil, fmt.Errorf("rl: load policy: %w", err)
	}
	return &Policy{Spec: spec, Net: net}, nil
}

// accumulateEntropy adds the gradient of -beta * H(pi(.|s)) (descent on
// the negated entropy bonus): dH/dz_i = -p_i * (ln p_i + H), so the
// accumulated gradient is beta * p_i * (ln p_i + H). Masked actions have
// p_i = 0 and contribute nothing.
func (p *Policy) accumulateEntropy(state []float64, mask []bool, beta float64) {
	probs := p.probsInto(state, mask, false)
	var h float64
	for _, pi := range probs {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	grad := p.gradScratch(len(probs))
	for i, pi := range probs {
		grad[i] = 0
		if pi > 0 {
			grad[i] = beta * pi * (math.Log(pi) + h)
		}
	}
	p.Net.Backward(grad)
}

// accumulateStep adds the REINFORCE gradient contribution of one step:
// d/dtheta [ -Rnorm * ln pi(a|s) ], evaluated at the stored state.
// Gradients are accumulated into the network; the caller applies the
// optimizer step after the episode.
func (p *Policy) accumulateStep(state []float64, mask []bool, action int, coeff float64) {
	probs := p.probsInto(state, mask, false)
	grad := p.gradScratch(len(probs))
	for i, pi := range probs {
		grad[i] = coeff * pi
	}
	grad[action] -= coeff
	p.Net.Backward(grad)
}

// gradScratch returns the reusable output-gradient buffer, allocating it
// on first use. Callers overwrite every element before Backward.
func (p *Policy) gradScratch(n int) []float64 {
	if len(p.grad) < n {
		p.grad = make([]float64, n)
	}
	return p.grad[:n]
}
