package rl

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rlts/internal/nn"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// banditEnv is a 10-step repeated two-armed bandit: action 0 pays 1,
// action 1 pays 0. The optimal policy always pulls arm 0.
type banditEnv struct {
	step int
	n    int
}

func (b *banditEnv) Reset() ([]float64, []bool, bool) {
	b.step = 0
	return []float64{1, 0}, FullMask(2), false
}

func (b *banditEnv) Step(a int) ([]float64, []bool, float64, bool) {
	b.step++
	r := 0.0
	if a == 0 {
		r = 1
	}
	done := b.step >= b.n
	return []float64{1, 0}, FullMask(2), r, done
}

func (b *banditEnv) StateSize() int  { return 2 }
func (b *banditEnv) NumActions() int { return 2 }

// corridorEnv tests state-dependent decisions: state[0] is +1 or -1 and
// the rewarding action matches the sign.
type corridorEnv struct {
	r    *rand.Rand
	step int
	cur  float64
}

func (c *corridorEnv) Reset() ([]float64, []bool, bool) {
	c.step = 0
	c.cur = 1
	if c.r.Intn(2) == 0 {
		c.cur = -1
	}
	return []float64{c.cur}, FullMask(2), false
}

func (c *corridorEnv) Step(a int) ([]float64, []bool, float64, bool) {
	want := 0
	if c.cur < 0 {
		want = 1
	}
	reward := 0.0
	if a == want {
		reward = 1
	}
	c.step++
	c.cur = 1
	if c.r.Intn(2) == 0 {
		c.cur = -1
	}
	return []float64{c.cur}, FullMask(2), reward, c.step >= 12
}

func (c *corridorEnv) StateSize() int  { return 1 }
func (c *corridorEnv) NumActions() int { return 2 }

func TestReturns(t *testing.T) {
	ep := &Episode{Rewards: []float64{1, 2, 3}}
	got := ep.Returns(1.0)
	want := []float64{6, 5, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Returns(1) = %v, want %v", got, want)
		}
	}
	got = ep.Returns(0.5)
	// R2 = 3; R1 = 2 + 0.5*3 = 3.5; R0 = 1 + 0.5*3.5 = 2.75
	want = []float64{2.75, 3.5, 3}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("Returns(0.5) = %v, want %v", got, want)
		}
	}
	if ep.TotalReward() != 6 {
		t.Errorf("TotalReward = %v", ep.TotalReward())
	}
}

func TestNormalizeReturns(t *testing.T) {
	out := NormalizeReturns([]float64{1, 2, 3})
	var mean float64
	for _, v := range out {
		mean += v
	}
	if !almost(mean/3, 0, 1e-12) {
		t.Errorf("normalized mean = %v", mean/3)
	}
	var sd float64
	for _, v := range out {
		sd += v * v
	}
	if !almost(math.Sqrt(sd/3), 1, 1e-12) {
		t.Errorf("normalized std = %v", math.Sqrt(sd/3))
	}
	// Constant returns give zero gradient signal.
	for _, v := range NormalizeReturns([]float64{5, 5, 5}) {
		if v != 0 {
			t.Errorf("constant returns normalized to %v", v)
		}
	}
	if len(NormalizeReturns(nil)) != 0 {
		t.Error("nil input should give empty output")
	}
}

func TestNormalizeReturnsProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		rs := make([]float64, len(raw))
		for i, v := range raw {
			rs[i] = float64(v)
		}
		out := NormalizeReturns(rs)
		var mean float64
		for _, v := range out {
			mean += v
		}
		return almost(mean/float64(len(out)), 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleActionDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	probs := []float64{0.2, 0.5, 0.3}
	counts := make([]int, 3)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleAction(probs, r)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if !almost(got, p, 0.02) {
			t.Errorf("action %d frequency %v, want ~%v", i, got, p)
		}
	}
}

func TestSampleActionSkipsZeros(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	probs := []float64{0, 1, 0}
	for i := 0; i < 100; i++ {
		if a := SampleAction(probs, r); a != 1 {
			t.Fatalf("sampled zero-probability action %d", a)
		}
	}
}

func TestGreedyAction(t *testing.T) {
	if a := GreedyAction([]float64{0.1, 0.7, 0.2}); a != 1 {
		t.Errorf("GreedyAction = %d, want 1", a)
	}
	if a := GreedyAction([]float64{0.9}); a != 0 {
		t.Errorf("GreedyAction = %d, want 0", a)
	}
}

func TestPolicyMasking(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p, err := NewPolicy(2, 3, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	mask := []bool{true, false, true}
	probs := p.Probs([]float64{0.5, -0.5}, mask, false)
	if probs[1] != 0 {
		t.Errorf("masked action probability %v", probs[1])
	}
	if !almost(probs[0]+probs[2], 1, 1e-12) {
		t.Errorf("legal probabilities sum to %v", probs[0]+probs[2])
	}
	for i := 0; i < 50; i++ {
		if a := p.Act([]float64{0.5, -0.5}, mask, true, r); a == 1 {
			t.Fatal("sampled masked action")
		}
	}
}

func TestTrainLearnsBandit(t *testing.T) {
	envs := make([]Env, 60)
	for i := range envs {
		envs[i] = &banditEnv{n: 10}
	}
	cfg := DefaultTrainConfig()
	cfg.Seed = 5
	cfg.LearningRate = 0.05
	res, err := Train(envs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probs := res.Best.Probs([]float64{1, 0}, FullMask(2), false)
	if probs[0] < 0.85 {
		t.Errorf("P(good arm) = %v after training, want > 0.85", probs[0])
	}
	if res.BestReward != 10 {
		t.Errorf("best reward = %v, want 10", res.BestReward)
	}
	if res.EpisodesRun != 600 {
		t.Errorf("episodes = %d, want 600", res.EpisodesRun)
	}
}

func TestTrainLearnsStateDependentPolicy(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	envs := make([]Env, 40)
	for i := range envs {
		envs[i] = &corridorEnv{r: r}
	}
	cfg := DefaultTrainConfig()
	cfg.Seed = 6
	cfg.LearningRate = 0.02
	res, err := Train(envs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pos := res.Best.Probs([]float64{1}, FullMask(2), false)
	neg := res.Best.Probs([]float64{-1}, FullMask(2), false)
	if pos[0] < 0.8 || neg[1] < 0.8 {
		t.Errorf("policy not state-dependent: P(0|+1)=%v P(1|-1)=%v", pos[0], neg[1])
	}
}

func TestEntropyBonusKeepsPolicyMixed(t *testing.T) {
	// With a large entropy bonus the bandit policy must stay near-uniform
	// even though arm 0 always pays; with none it commits to arm 0.
	mk := func(entropy float64) []float64 {
		envs := make([]Env, 40)
		for i := range envs {
			envs[i] = &banditEnv{n: 10}
		}
		cfg := DefaultTrainConfig()
		cfg.Seed = 4
		cfg.LearningRate = 0.05
		cfg.Entropy = entropy
		res, err := Train(envs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final.Probs([]float64{1, 0}, FullMask(2), false)
	}
	committed := mk(0)
	mixed := mk(5)
	if committed[0] < 0.8 {
		t.Errorf("without entropy bonus P(best) = %v, want > 0.8", committed[0])
	}
	if mixed[0] > 0.7 {
		t.Errorf("with large entropy bonus P(best) = %v, want <= 0.7 (near-uniform)", mixed[0])
	}
}

func TestProgressKeyAlignment(t *testing.T) {
	// Two episodes with different lengths but overlapping progress keys
	// must be normalized against each other at equal keys. Build them by
	// hand and check updateBatch changes the policy (signal flows).
	p, err := NewPolicy(1, 2, 4, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	adam := nn.NewAdam(p.Net.Params(), 0.05)
	mkEp := func(keys []int, rewards []float64, action int) *Episode {
		ep := &Episode{}
		for i := range keys {
			ep.States = append(ep.States, []float64{0.5})
			ep.Masks = append(ep.Masks, FullMask(2))
			ep.Actions = append(ep.Actions, action)
			ep.Rewards = append(ep.Rewards, rewards[i])
			ep.Keys = append(ep.Keys, keys[i])
		}
		return ep
	}
	// Episode A (action 0) does better at shared keys than episode B
	// (action 1); after the update, action 0 should gain probability.
	before := p.Probs([]float64{0.5}, FullMask(2), false)[0]
	a := mkEp([]int{10, 11, 12}, []float64{0, 0, 0}, 0)
	b := mkEp([]int{10, 12}, []float64{-5, -5}, 1)
	updateBatch(p, adam, []*Episode{a, b}, 1.0, 0)
	after := p.Probs([]float64{0.5}, FullMask(2), false)[0]
	if after <= before {
		t.Errorf("P(better action) %v -> %v, want increase", before, after)
	}
}

func TestTrainRejectsShapeMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p, _ := NewPolicy(3, 2, 4, r)
	if _, err := TrainPolicy(p, []Env{&banditEnv{n: 5}}, DefaultTrainConfig()); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := Train(nil, DefaultTrainConfig()); err == nil {
		t.Error("empty env list accepted")
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	p, err := NewPolicy(3, 4, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate batch-norm stats so the round trip covers state.
	for i := 0; i < 20; i++ {
		p.Probs([]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}, nil, true)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPolicy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.1, 0.9}
	p1 := p.Probs(x, nil, false)
	p2 := q.Probs(x, nil, false)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("probs differ after round trip: %v vs %v", p1, p2)
		}
	}
}

func TestRolloutRecordsEpisode(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	p, _ := NewPolicy(2, 2, 4, r)
	env := &banditEnv{n: 7}
	ep := Rollout(env, p, r, false)
	if ep.Len() != 7 {
		t.Fatalf("episode length %d, want 7", ep.Len())
	}
	if len(ep.States) != 7 || len(ep.Masks) != 7 || len(ep.Rewards) != 7 {
		t.Error("episode slices inconsistent")
	}
}
