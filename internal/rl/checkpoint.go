package rl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"rlts/internal/nn"
	"rlts/internal/storage"
)

// checkpointVersion guards the on-disk format; bump on incompatible
// changes.
const checkpointVersion = 1

// Checkpoint is the complete, resumable state of a training run at a
// batch boundary: the master policy, the best-episode snapshot, the Adam
// moments, the episode-sequence counter that positions the per-episode RNG
// streams, the loop position, and the accumulated statistics and health
// report. Together with the original environments and hyper-parameters it
// determines the rest of the run exactly, so resuming reproduces the
// uninterrupted run bit for bit.
type Checkpoint struct {
	// Determinism-relevant hyper-parameters of the originating run;
	// ResumePolicy refuses a config that disagrees.
	Seed         int64
	Episodes     int
	LearningRate float64
	Gamma        float64
	Entropy      float64

	Epoch int // epoch the next batch belongs to
	Next  int // environment index of the next batch within Epoch
	Batch int // global batches completed so far

	EpSeq       uint64 // episodes started so far (per-episode RNG position)
	BestReward  float64
	FinalReward float64
	EpisodesRun int
	StepsRun    int
	Health      TrainHealth

	Policy   *Policy // master policy at the boundary
	Best     *Policy // best-episode snapshot (nil if none yet)
	BNInited []bool  // per-BatchNorm-layer statistics-initialization flags
	Adam     nn.AdamState
}

// savedCheckpoint is the JSON wire format. BestReward is a pointer so the
// "no best yet" state (-Inf, which JSON cannot represent) round-trips as
// an absent field.
type savedCheckpoint struct {
	Version      int             `json:"version"`
	Seed         int64           `json:"seed"`
	Episodes     int             `json:"episodes"`
	LearningRate float64         `json:"learning_rate"`
	Gamma        float64         `json:"gamma"`
	Entropy      float64         `json:"entropy"`
	Epoch        int             `json:"epoch"`
	Next         int             `json:"next"`
	Batch        int             `json:"batch"`
	EpSeq        uint64          `json:"ep_seq"`
	BestReward   *float64        `json:"best_reward,omitempty"`
	FinalReward  float64         `json:"final_reward"`
	EpisodesRun  int             `json:"episodes_run"`
	StepsRun     int             `json:"steps_run"`
	Health       TrainHealth     `json:"health"`
	Policy       json.RawMessage `json:"policy"`
	Best         json.RawMessage `json:"best,omitempty"`
	BNInited     []bool          `json:"bn_inited"`
	Adam         nn.AdamState    `json:"adam"`
}

// Save writes the checkpoint to w as JSON.
func (ck *Checkpoint) Save(w io.Writer) error {
	sv := savedCheckpoint{
		Version:      checkpointVersion,
		Seed:         ck.Seed,
		Episodes:     ck.Episodes,
		LearningRate: ck.LearningRate,
		Gamma:        ck.Gamma,
		Entropy:      ck.Entropy,
		Epoch:        ck.Epoch,
		Next:         ck.Next,
		Batch:        ck.Batch,
		EpSeq:        ck.EpSeq,
		FinalReward:  ck.FinalReward,
		EpisodesRun:  ck.EpisodesRun,
		StepsRun:     ck.StepsRun,
		Health:       ck.Health,
		BNInited:     ck.BNInited,
		Adam:         ck.Adam,
	}
	var pbuf bytes.Buffer
	if err := ck.Policy.Save(&pbuf); err != nil {
		return fmt.Errorf("rl: checkpoint policy: %w", err)
	}
	sv.Policy = json.RawMessage(pbuf.Bytes())
	if ck.Best != nil {
		var bbuf bytes.Buffer
		if err := ck.Best.Save(&bbuf); err != nil {
			return fmt.Errorf("rl: checkpoint best policy: %w", err)
		}
		sv.Best = json.RawMessage(bbuf.Bytes())
		br := ck.BestReward
		sv.BestReward = &br
	}
	return json.NewEncoder(w).Encode(&sv)
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var sv savedCheckpoint
	if err := json.NewDecoder(r).Decode(&sv); err != nil {
		return nil, fmt.Errorf("rl: decode checkpoint: %w", err)
	}
	if sv.Version != checkpointVersion {
		return nil, fmt.Errorf("rl: checkpoint version %d, want %d", sv.Version, checkpointVersion)
	}
	if len(sv.Policy) == 0 {
		return nil, fmt.Errorf("rl: checkpoint has no policy")
	}
	p, err := LoadPolicy(bytes.NewReader(sv.Policy))
	if err != nil {
		return nil, fmt.Errorf("rl: checkpoint policy: %w", err)
	}
	ck := &Checkpoint{
		Seed:         sv.Seed,
		Episodes:     sv.Episodes,
		LearningRate: sv.LearningRate,
		Gamma:        sv.Gamma,
		Entropy:      sv.Entropy,
		Epoch:        sv.Epoch,
		Next:         sv.Next,
		Batch:        sv.Batch,
		EpSeq:        sv.EpSeq,
		BestReward:   math.Inf(-1),
		FinalReward:  sv.FinalReward,
		EpisodesRun:  sv.EpisodesRun,
		StepsRun:     sv.StepsRun,
		Health:       sv.Health,
		Policy:       p,
		BNInited:     sv.BNInited,
		Adam:         sv.Adam,
	}
	if len(sv.Best) > 0 {
		best, err := LoadPolicy(bytes.NewReader(sv.Best))
		if err != nil {
			return nil, fmt.Errorf("rl: checkpoint best policy: %w", err)
		}
		ck.Best = best
		if sv.BestReward != nil {
			ck.BestReward = *sv.BestReward
		}
	}
	if ck.Epoch < 0 || ck.Next < 0 || ck.Batch < 0 || ck.Episodes <= 0 {
		return nil, fmt.Errorf("rl: checkpoint has implausible position (epoch %d, next %d, batch %d, episodes %d)",
			ck.Epoch, ck.Next, ck.Batch, ck.Episodes)
	}
	return ck, nil
}

// WriteCheckpointFile atomically writes the checkpoint to path: a crash
// mid-write leaves the previous checkpoint intact, never a truncated file.
func WriteCheckpointFile(path string, ck *Checkpoint) error {
	return storage.WriteAtomic(path, ck.Save)
}

// ReadCheckpointFile loads a checkpoint from path.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rl: open checkpoint: %w", err)
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// compatible verifies that resuming under cfg replays the original run.
func (ck *Checkpoint) compatible(cfg TrainConfig, numEnvs int) error {
	if ck.Seed != cfg.Seed || ck.Episodes != cfg.Episodes ||
		ck.LearningRate != cfg.LearningRate || ck.Gamma != cfg.Gamma || ck.Entropy != cfg.Entropy {
		return fmt.Errorf("rl: checkpoint hyper-parameters (seed %d, episodes %d, lr %g, gamma %g, entropy %g) "+
			"do not match config (seed %d, episodes %d, lr %g, gamma %g, entropy %g)",
			ck.Seed, ck.Episodes, ck.LearningRate, ck.Gamma, ck.Entropy,
			cfg.Seed, cfg.Episodes, cfg.LearningRate, cfg.Gamma, cfg.Entropy)
	}
	if ck.Next > numEnvs {
		return fmt.Errorf("rl: checkpoint position %d is beyond the %d training environments (different dataset?)",
			ck.Next, numEnvs)
	}
	return nil
}

// writeCheckpoint captures the engine state at the current batch boundary
// and atomically persists it.
func (g *engine) writeCheckpoint(path string, epoch, next int, res *TrainResult) error {
	ck := &Checkpoint{
		Seed:         g.cfg.Seed,
		Episodes:     g.cfg.Episodes,
		LearningRate: g.cfg.LearningRate,
		Gamma:        g.cfg.Gamma,
		Entropy:      g.cfg.Entropy,
		Epoch:        epoch,
		Next:         next,
		Batch:        g.batch,
		EpSeq:        g.epSeq,
		BestReward:   res.BestReward,
		FinalReward:  res.FinalReward,
		EpisodesRun:  res.EpisodesRun,
		StepsRun:     res.StepsRun,
		Health:       res.Health,
		Policy:       g.master,
		Best:         res.Best,
		BNInited:     bnInited(g.master),
		Adam:         g.adam.State(),
	}
	start := time.Now()
	if err := WriteCheckpointFile(path, ck); err != nil {
		return err
	}
	met := trainMetrics()
	met.checkpointSeconds.Observe(time.Since(start).Seconds())
	met.checkpoints.Inc()
	return nil
}

// restore initializes the engine and result from a checkpoint. The engine
// was just built around ck.Policy, so only the optimizer moments, the
// counters, the batch-norm initialization flags and the result statistics
// need to come back.
func (g *engine) restore(ck *Checkpoint, res *TrainResult) error {
	if err := g.adam.Restore(&ck.Adam); err != nil {
		return fmt.Errorf("rl: checkpoint does not match policy architecture: %w", err)
	}
	if err := setBNInited(g.master, ck.BNInited); err != nil {
		return err
	}
	g.epSeq = ck.EpSeq
	g.batch = ck.Batch
	res.BestReward = ck.BestReward
	res.FinalReward = ck.FinalReward
	res.EpisodesRun = ck.EpisodesRun
	res.StepsRun = ck.StepsRun
	res.Health = ck.Health
	res.Best = ck.Best
	// Seed the cumulative counters with the pre-crash totals: a fresh
	// process starts them at zero, and without this a resumed run's
	// metrics (and rlts-train's closing summary, which reads them) would
	// cover only the post-resume episodes while res.EpisodesRun stayed
	// cumulative.
	met := trainMetrics()
	met.episodes.Add(uint64(ck.EpisodesRun))
	met.steps.Add(uint64(ck.StepsRun))
	met.batches.Add(uint64(ck.Batch))
	met.guardTrips[HealthRolloutSkip].Add(uint64(ck.Health.RolloutSkips))
	met.guardTrips[HealthGradSkip].Add(uint64(ck.Health.GradSkips))
	met.guardTrips[HealthRollback].Add(uint64(ck.Health.Rollbacks))
	return nil
}

// bnInited collects the statistics-initialization flag of every BatchNorm
// layer, in layer order. Policy serialization marks loaded layers as
// initialized unconditionally, which is right for inference but would
// diverge from a fresh layer still waiting to seed its mean with the
// first sample — so checkpoints carry the flags explicitly.
func bnInited(p *Policy) []bool {
	var flags []bool
	for _, l := range p.Net.Layers {
		if bn, ok := l.(*nn.BatchNorm); ok {
			flags = append(flags, bn.Inited())
		}
	}
	return flags
}

func setBNInited(p *Policy, flags []bool) error {
	var i int
	for _, l := range p.Net.Layers {
		bn, ok := l.(*nn.BatchNorm)
		if !ok {
			continue
		}
		if i >= len(flags) {
			return fmt.Errorf("rl: checkpoint has %d batch-norm flags, policy needs more", len(flags))
		}
		bn.SetInited(flags[i])
		i++
	}
	if i != len(flags) {
		return fmt.Errorf("rl: checkpoint has %d batch-norm flags, policy has %d layers", len(flags), i)
	}
	return nil
}
