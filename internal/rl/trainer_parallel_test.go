package rl

import (
	"bytes"
	"math/rand"
	"testing"
)

// CloneEnv makes banditEnv usable by the parallel rollout phase: all its
// state is rebuilt by Reset.
func (b *banditEnv) CloneEnv() Env { return &banditEnv{n: b.n} }

// trainBandit trains a fresh bandit policy with the given worker count and
// returns the serialized final and best policies plus the result stats.
func trainBandit(t *testing.T, workers int) ([]byte, []byte, *TrainResult) {
	t.Helper()
	envs := make([]Env, 30)
	for i := range envs {
		envs[i] = &banditEnv{n: 10}
	}
	cfg := DefaultTrainConfig()
	cfg.Seed = 11
	cfg.LearningRate = 0.05
	cfg.Workers = workers
	res, err := Train(envs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fin, best bytes.Buffer
	if err := res.Final.Save(&fin); err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Save(&best); err != nil {
		t.Fatal(err)
	}
	return fin.Bytes(), best.Bytes(), res
}

func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	fin1, best1, res1 := trainBandit(t, 1)
	for _, workers := range []int{2, 8} {
		finN, bestN, resN := trainBandit(t, workers)
		if !bytes.Equal(fin1, finN) {
			t.Errorf("final policy differs between Workers=1 and Workers=%d", workers)
		}
		if !bytes.Equal(best1, bestN) {
			t.Errorf("best policy differs between Workers=1 and Workers=%d", workers)
		}
		if res1.BestReward != resN.BestReward || res1.FinalReward != resN.FinalReward {
			t.Errorf("rewards differ between Workers=1 (%v/%v) and Workers=%d (%v/%v)",
				res1.BestReward, res1.FinalReward, workers, resN.BestReward, resN.FinalReward)
		}
		if res1.EpisodesRun != resN.EpisodesRun || res1.StepsRun != resN.StepsRun {
			t.Errorf("episode counts differ between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestTrainParallelWithoutCloner exercises the serial-rollout fallback: an
// environment that does not implement EnvCloner still trains under
// Workers>1 (rollouts on one goroutine, gradients fanned out) and produces
// the same policy as a fully serial run.
func TestTrainParallelWithoutCloner(t *testing.T) {
	train := func(workers int) []byte {
		r := rand.New(rand.NewSource(77))
		envs := make([]Env, 20)
		for i := range envs {
			envs[i] = &corridorEnv{r: r}
		}
		cfg := DefaultTrainConfig()
		cfg.Seed = 4
		cfg.LearningRate = 0.02
		cfg.Workers = workers
		res, err := Train(envs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Final.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(train(1), train(8)) {
		t.Error("non-cloneable env: policy differs between Workers=1 and Workers=8")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := make(map[int64]bool)
	for ep := uint64(0); ep < 1000; ep++ {
		s := deriveSeed(1, ep)
		if seen[s] {
			t.Fatalf("duplicate derived seed for episode %d", ep)
		}
		seen[s] = true
	}
	if deriveSeed(1, 0) == deriveSeed(2, 0) {
		t.Error("derived seeds collide across master seeds")
	}
}
