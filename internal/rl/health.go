package rl

// Health event kinds recorded by the trainer's divergence guards.
const (
	// HealthRolloutSkip: a rollout produced a non-finite state or reward
	// and the whole batch was discarded before it touched any statistics.
	HealthRolloutSkip = "rollout-skip"
	// HealthGradSkip: the merged batch gradient contained NaN/Inf and the
	// optimizer step was dropped.
	HealthGradSkip = "gradient-skip"
	// HealthRollback: an optimizer step yielded non-finite weights and the
	// policy was rolled back to the pre-step parameters and moments.
	HealthRollback = "rollback"
)

// maxHealthEvents bounds the per-run event log; the counters keep exact
// totals even when the detailed log saturates.
const maxHealthEvents = 32

// HealthEvent is one divergence-guard firing.
type HealthEvent struct {
	Batch  int    `json:"batch"` // global 1-based batch number
	Kind   string `json:"kind"`  // one of the Health* constants
	Detail string `json:"detail"`
}

// TrainHealth is the structured report of the trainer's divergence guards:
// instead of silently corrupting a run, a NaN/Inf anywhere in rollouts,
// gradients or weights increments a counter here and leaves the policy at
// its last good state. It serializes with checkpoints so a resumed run
// reports the same history as an uninterrupted one.
type TrainHealth struct {
	RolloutSkips int           `json:"rollout_skips,omitempty"`
	GradSkips    int           `json:"grad_skips,omitempty"`
	Rollbacks    int           `json:"rollbacks,omitempty"`
	Events       []HealthEvent `json:"events,omitempty"` // first maxHealthEvents, in order
}

// Ok reports whether no guard ever fired.
func (h *TrainHealth) Ok() bool {
	return h.RolloutSkips == 0 && h.GradSkips == 0 && h.Rollbacks == 0
}

func (h *TrainHealth) note(batch int, kind, detail string) {
	if c := trainMetrics().guardTrips[kind]; c != nil {
		c.Inc()
	}
	switch kind {
	case HealthRolloutSkip:
		h.RolloutSkips++
	case HealthGradSkip:
		h.GradSkips++
	case HealthRollback:
		h.Rollbacks++
	}
	if len(h.Events) < maxHealthEvents {
		h.Events = append(h.Events, HealthEvent{Batch: batch, Kind: kind, Detail: detail})
	}
}
