// Package gen generates synthetic GPS trajectory datasets with the
// statistical character of the paper's three real datasets (Table I):
// Geolife (dense multi-modal outdoor movement), T-Drive (sparsely sampled
// Beijing taxis) and Truck (freight trucks mixing highway hauls and urban
// crawling).
//
// The real datasets are proprietary downloads that are unavailable in this
// offline reproduction. What the simplification algorithms actually consume
// is a stream of (x, y, t) points whose *movement regimes* — straight
// constant-speed runs (droppable almost for free), turns, stops and speed
// changes (expensive to drop) — drive both the error measures and the
// learned policy. The generator reproduces those regimes with a correlated
// random walk whose sampling rate and mean inter-point distance match
// Table I, which preserves the relative behaviour of every algorithm the
// paper compares.
package gen

import (
	"math"
	"math/rand"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// Regime is one movement mode of the correlated random walk: a speed band
// plus heading-persistence parameters.
type Regime struct {
	Name      string
	MinSpeed  float64 // m/s
	MaxSpeed  float64 // m/s
	HeadingSD float64 // per-step heading jitter (radians)
	TurnProb  float64 // probability of a sharp turn per step
	StopProb  float64 // probability of entering a stop per step
}

// Config describes a synthetic dataset.
type Config struct {
	Name        string
	Regimes     []Regime
	SwitchProb  float64 // probability of switching regime per step
	MinGap      float64 // min sampling interval (s)
	MaxGap      float64 // max sampling interval (s)
	GPSNoise    float64 // isotropic position noise SD (m)
	StopMinSecs float64 // stop duration bounds
	StopMaxSecs float64

	// OutlierProb injects GPS outliers: with this probability per point,
	// an extra isotropic error of SD OutlierScale is added (urban-canyon
	// multipath spikes). Zero in the standard profiles; the robustness
	// experiment sweeps it.
	OutlierProb  float64
	OutlierScale float64 // outlier SD (m)
}

// WithOutliers returns a copy of the config with outlier injection
// enabled.
func (c Config) WithOutliers(prob, scale float64) Config {
	c.OutlierProb = prob
	c.OutlierScale = scale
	return c
}

// Generator produces trajectories from a Config deterministically per
// seed.
type Generator struct {
	cfg Config
	r   *rand.Rand
}

// New creates a Generator for cfg seeded with seed.
func New(cfg Config, seed int64) *Generator {
	return &Generator{cfg: cfg, r: rand.New(rand.NewSource(seed))}
}

// Config returns the generator's dataset configuration.
func (g *Generator) Config() Config { return g.cfg }

// Trajectory generates one trajectory with n points.
func (g *Generator) Trajectory(n int) traj.Trajectory {
	if n < 2 {
		panic("gen: trajectory needs at least 2 points")
	}
	cfg := g.cfg
	r := g.r

	regime := cfg.Regimes[r.Intn(len(cfg.Regimes))]
	heading := r.Float64() * 2 * math.Pi
	speed := regime.MinSpeed + r.Float64()*(regime.MaxSpeed-regime.MinSpeed)
	x, y := r.Float64()*1000, r.Float64()*1000
	t := 0.0
	stopUntil := -1.0

	out := make(traj.Trajectory, 0, n)
	for i := 0; i < n; i++ {
		nx := x + r.NormFloat64()*cfg.GPSNoise
		ny := y + r.NormFloat64()*cfg.GPSNoise
		if cfg.OutlierProb > 0 && r.Float64() < cfg.OutlierProb {
			nx += r.NormFloat64() * cfg.OutlierScale
			ny += r.NormFloat64() * cfg.OutlierScale
		}
		out = append(out, geo.Pt(nx, ny, t))

		gap := cfg.MinGap + r.Float64()*(cfg.MaxGap-cfg.MinGap)
		t += gap

		if t < stopUntil {
			continue // stationary: position unchanged (modulo GPS noise)
		}
		if r.Float64() < regime.StopProb {
			stopUntil = t + cfg.StopMinSecs + r.Float64()*(cfg.StopMaxSecs-cfg.StopMinSecs)
			continue
		}
		if r.Float64() < cfg.SwitchProb {
			regime = cfg.Regimes[r.Intn(len(cfg.Regimes))]
			speed = regime.MinSpeed + r.Float64()*(regime.MaxSpeed-regime.MinSpeed)
		}
		if r.Float64() < regime.TurnProb {
			// Sharp turn: up to +-120 degrees.
			heading += (r.Float64()*2 - 1) * (2 * math.Pi / 3)
		} else {
			heading += r.NormFloat64() * regime.HeadingSD
		}
		// Speed random walk within the regime band.
		span := regime.MaxSpeed - regime.MinSpeed
		speed += r.NormFloat64() * span * 0.1
		speed = math.Max(regime.MinSpeed, math.Min(regime.MaxSpeed, speed))

		x += speed * gap * math.Cos(heading)
		y += speed * gap * math.Sin(heading)
	}
	return out
}

// Dataset generates count trajectories of n points each.
func (g *Generator) Dataset(count, n int) []traj.Trajectory {
	out := make([]traj.Trajectory, count)
	for i := range out {
		out[i] = g.Trajectory(n)
	}
	return out
}

// DatasetVaried generates count trajectories whose lengths are drawn
// uniformly from [minN, maxN], matching the variability of real datasets.
func (g *Generator) DatasetVaried(count, minN, maxN int) []traj.Trajectory {
	out := make([]traj.Trajectory, count)
	for i := range out {
		n := minN
		if maxN > minN {
			n += g.r.Intn(maxN - minN + 1)
		}
		out[i] = g.Trajectory(n)
	}
	return out
}
