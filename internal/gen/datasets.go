package gen

// The three dataset profiles below are tuned so that the summary
// statistics of generated data land near the paper's Table I:
//
//	dataset   sampling rate   average distance
//	Geolife   1s ~ 5s         ~10 m
//	T-Drive   ~177s           ~623 m
//	Truck     3s ~ 60s        ~83 m
//
// Regime mixes follow the datasets' provenance: Geolife mixes walking,
// cycling and driving with frequent stops; T-Drive taxis move at urban
// driving speeds but are sampled so sparsely that consecutive points are
// far apart; trucks alternate long straight hauls with slow yard/urban
// crawling.

// Geolife returns the dense multi-modal profile.
func Geolife() Config {
	return Config{
		Name: "Geolife",
		Regimes: []Regime{
			{Name: "walk", MinSpeed: 0.5, MaxSpeed: 2, HeadingSD: 0.25, TurnProb: 0.05, StopProb: 0.01},
			{Name: "bike", MinSpeed: 2, MaxSpeed: 6, HeadingSD: 0.12, TurnProb: 0.03, StopProb: 0.005},
			{Name: "drive", MinSpeed: 5, MaxSpeed: 15, HeadingSD: 0.06, TurnProb: 0.02, StopProb: 0.008},
		},
		SwitchProb:  0.003,
		MinGap:      1,
		MaxGap:      5,
		GPSNoise:    1.5,
		StopMinSecs: 10,
		StopMaxSecs: 120,
	}
}

// TDrive returns the sparse taxi profile.
func TDrive() Config {
	return Config{
		Name: "T-Drive",
		Regimes: []Regime{
			{Name: "cruise", MinSpeed: 2, MaxSpeed: 8, HeadingSD: 0.5, TurnProb: 0.25, StopProb: 0.02},
			{Name: "arterial", MinSpeed: 4, MaxSpeed: 12, HeadingSD: 0.3, TurnProb: 0.15, StopProb: 0.01},
		},
		SwitchProb:  0.02,
		MinGap:      120,
		MaxGap:      240,
		GPSNoise:    8,
		StopMinSecs: 180,
		StopMaxSecs: 900,
	}
}

// Truck returns the freight-truck profile.
func Truck() Config {
	return Config{
		Name: "Truck",
		Regimes: []Regime{
			{Name: "highway", MinSpeed: 15, MaxSpeed: 25, HeadingSD: 0.015, TurnProb: 0.004, StopProb: 0.002},
			{Name: "urban", MinSpeed: 2, MaxSpeed: 10, HeadingSD: 0.2, TurnProb: 0.08, StopProb: 0.015},
		},
		SwitchProb:  0.005,
		MinGap:      3,
		MaxGap:      10,
		GPSNoise:    2,
		StopMinSecs: 30,
		StopMaxSecs: 600,
	}
}

// Sports returns a free-space profile for the sports-player tracking the
// paper's introduction cites [1]: very high sampling, abrupt direction
// reversals and sprint/jog/stand speed switching on a bounded field.
// Not one of the paper's three evaluation datasets; provided because the
// skip actions and DAD measure behave distinctively on this regime.
func Sports() Config {
	return Config{
		Name: "Sports",
		Regimes: []Regime{
			{Name: "stand", MinSpeed: 0, MaxSpeed: 0.5, HeadingSD: 1.0, TurnProb: 0.3, StopProb: 0.05},
			{Name: "jog", MinSpeed: 2, MaxSpeed: 4, HeadingSD: 0.4, TurnProb: 0.15, StopProb: 0.01},
			{Name: "sprint", MinSpeed: 5, MaxSpeed: 9, HeadingSD: 0.15, TurnProb: 0.1, StopProb: 0.02},
		},
		SwitchProb:  0.08,
		MinGap:      0.1,
		MaxGap:      0.2,
		GPSNoise:    0.3,
		StopMinSecs: 1,
		StopMaxSecs: 10,
	}
}

// ByName returns the profile for a dataset name ("geolife", "tdrive",
// "truck", "sports"), defaulting to Geolife for unknown names with
// ok = false.
func ByName(name string) (Config, bool) {
	switch name {
	case "geolife", "Geolife":
		return Geolife(), true
	case "tdrive", "t-drive", "T-Drive", "TDrive":
		return TDrive(), true
	case "truck", "Truck", "trucks", "Trucks":
		return Truck(), true
	case "sports", "Sports":
		return Sports(), true
	}
	return Geolife(), false
}

// Profiles lists the paper's three dataset profiles (Sports is an extra
// and not part of the Table-I reproduction).
func Profiles() []Config {
	return []Config{Geolife(), TDrive(), Truck()}
}
