package gen

// Dirty-stream corruption: production GPS feeds deliver fixes
// out-of-order, duplicated, gappy, noise-spiked and occasionally
// outright non-finite. DirtyConfig layers those defect classes on top of
// any clean generator profile — generate a trajectory with the usual
// regime Config, then Corrupt it — so every hostile-ingest scenario is
// seedable, composable and reproducible, the same way the clean
// generator made the paper's datasets reproducible.
//
// Corrupt returns raw fixes ([]geo.Point, possibly invalid as a
// trajectory) because its whole point is producing input that violates
// the strict contract; the repair stage (traj.Repairer) is what turns it
// back into a valid trajectory.

import (
	"math"
	"math/rand"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// DirtyConfig describes one mixture of stream defects. The zero value
// corrupts nothing: Corrupt returns the input fixes unchanged.
type DirtyConfig struct {
	Name string

	// Out-of-order arrival: each fix is delayed past up to SwapSpan
	// later fixes with probability SwapProb. A reordering window of at
	// least SwapSpan+1 repairs this class completely.
	SwapProb float64
	SwapSpan int

	// Duplicate timestamps: after a fix, a re-sent copy (same timestamp,
	// position jittered by DupJitter SD) follows with probability
	// DupProb.
	DupProb   float64
	DupJitter float64

	// Burst gaps: with probability GapProb per fix, the sensor goes
	// silent and every subsequent timestamp shifts by GapSecs.
	GapProb float64
	GapSecs float64

	// Noise spikes: with probability SpikeProb, a fix's position gains
	// an isotropic error of SD SpikeScale (urban-canyon multipath).
	SpikeProb  float64
	SpikeScale float64

	// Teleports: with probability TeleportProb, a fix jumps a hard
	// TeleportDist in a random direction (a wrong-constellation fix).
	TeleportProb float64
	TeleportDist float64

	// Mixed sampling rate: with probability RateSwitchProb per fix, the
	// inter-fix gaps toggle between their clean duration and RateFactor
	// times it (device power-saving mode kicking in and out).
	RateSwitchProb float64
	RateFactor     float64

	// Garbage: with probability GarbageProb, one field of a fix becomes
	// NaN or +-Inf (firmware bugs, serialization corruption).
	GarbageProb float64
}

// Compose merges defect families field-wise (maximum of each knob) into
// one configuration named name — the kitchen-sink construction.
func Compose(name string, cfgs ...DirtyConfig) DirtyConfig {
	out := DirtyConfig{Name: name}
	for _, c := range cfgs {
		out.SwapProb = math.Max(out.SwapProb, c.SwapProb)
		if c.SwapSpan > out.SwapSpan {
			out.SwapSpan = c.SwapSpan
		}
		out.DupProb = math.Max(out.DupProb, c.DupProb)
		out.DupJitter = math.Max(out.DupJitter, c.DupJitter)
		out.GapProb = math.Max(out.GapProb, c.GapProb)
		out.GapSecs = math.Max(out.GapSecs, c.GapSecs)
		out.SpikeProb = math.Max(out.SpikeProb, c.SpikeProb)
		out.SpikeScale = math.Max(out.SpikeScale, c.SpikeScale)
		out.TeleportProb = math.Max(out.TeleportProb, c.TeleportProb)
		out.TeleportDist = math.Max(out.TeleportDist, c.TeleportDist)
		out.RateSwitchProb = math.Max(out.RateSwitchProb, c.RateSwitchProb)
		out.RateFactor = math.Max(out.RateFactor, c.RateFactor)
		out.GarbageProb = math.Max(out.GarbageProb, c.GarbageProb)
	}
	return out
}

// DirtyFamilies returns the named defect families the check pillar and
// the dirty experiment iterate over: each isolates one defect class at a
// rate aggressive enough to be visible but repairable, and the final
// kitchen-sink entry composes them all.
func DirtyFamilies() []DirtyConfig {
	families := []DirtyConfig{
		{Name: "out-of-order", SwapProb: 0.15, SwapSpan: 4},
		{Name: "dup-times", DupProb: 0.12, DupJitter: 3},
		{Name: "burst-gaps", GapProb: 0.02, GapSecs: 300},
		{Name: "noise-spikes", SpikeProb: 0.05, SpikeScale: 500},
		{Name: "teleports", TeleportProb: 0.02, TeleportDist: 5000},
		{Name: "mixed-rate", RateSwitchProb: 0.05, RateFactor: 5},
		{Name: "garbage", GarbageProb: 0.05},
	}
	return append(families, Compose("kitchen-sink", families...))
}

// DirtyFamilyByName finds a family from DirtyFamilies by name; the
// second result is false when no family matches.
func DirtyFamilyByName(name string) (DirtyConfig, bool) {
	for _, f := range DirtyFamilies() {
		if f.Name == name {
			return f, true
		}
	}
	return DirtyConfig{}, false
}

// Corrupt applies the configured defects to a clean trajectory and
// returns the raw fix stream a hostile device would deliver — usually
// NOT a valid trajectory. Deterministic per (input, seed); the input is
// unchanged. Defects stack in sensor order: timestamp distortion (rate
// switches, burst gaps) happens at the source, position defects (spikes,
// teleports) corrupt the fix, duplicates and garbage corrupt the
// encoding, and arrival-order swaps happen last, in transit.
func (c DirtyConfig) Corrupt(t traj.Trajectory, seed int64) []geo.Point {
	r := rand.New(rand.NewSource(seed))
	out := make([]geo.Point, 0, len(t)+len(t)/8)

	// Timestamps: rebuild the time axis from the clean gaps, scaling by
	// the current rate factor and inserting silence bursts. Both keep
	// timestamps strictly increasing — order defects come later.
	factor := 1.0
	shift := 0.0
	prevCleanT := 0.0
	curT := 0.0
	for i, p := range t {
		if i == 0 {
			curT = p.T
		} else {
			if c.RateSwitchProb > 0 && r.Float64() < c.RateSwitchProb {
				if factor == 1 {
					factor = math.Max(c.RateFactor, 1)
				} else {
					factor = 1
				}
			}
			curT += (p.T - prevCleanT) * factor
		}
		prevCleanT = p.T
		if c.GapProb > 0 && r.Float64() < c.GapProb {
			shift += c.GapSecs
		}
		fix := geo.Pt(p.X, p.Y, curT+shift)

		// Position defects.
		if c.SpikeProb > 0 && r.Float64() < c.SpikeProb {
			fix.X += r.NormFloat64() * c.SpikeScale
			fix.Y += r.NormFloat64() * c.SpikeScale
		}
		if c.TeleportProb > 0 && r.Float64() < c.TeleportProb {
			theta := r.Float64() * 2 * math.Pi
			fix.X += c.TeleportDist * math.Cos(theta)
			fix.Y += c.TeleportDist * math.Sin(theta)
		}

		out = append(out, fix)

		// Encoding defects: re-sent duplicates and garbage fields.
		if c.DupProb > 0 && r.Float64() < c.DupProb {
			dup := fix
			dup.X += r.NormFloat64() * c.DupJitter
			dup.Y += r.NormFloat64() * c.DupJitter
			out = append(out, dup)
		}
	}
	if c.GarbageProb > 0 {
		garbage := [3]float64{math.NaN(), math.Inf(1), math.Inf(-1)}
		for i := range out {
			if r.Float64() >= c.GarbageProb {
				continue
			}
			v := garbage[r.Intn(len(garbage))]
			switch r.Intn(3) {
			case 0:
				out[i].X = v
			case 1:
				out[i].Y = v
			default:
				out[i].T = v
			}
		}
	}

	// Transit defects: delay fixes past up to SwapSpan successors.
	if c.SwapProb > 0 {
		span := c.SwapSpan
		if span < 1 {
			span = 1
		}
		for i := 0; i < len(out); i++ {
			if r.Float64() >= c.SwapProb {
				continue
			}
			j := i + 1 + r.Intn(span)
			if j >= len(out) {
				j = len(out) - 1
			}
			f := out[i]
			copy(out[i:j], out[i+1:j+1])
			out[j] = f
		}
	}
	return out
}

// Raw converts a trajectory (or repaired fix list) to the [][3]float64
// triple form the HTTP payloads and traj.Repair consume.
func Raw(points []geo.Point) [][3]float64 {
	out := make([][3]float64, len(points))
	for i, p := range points {
		out[i] = [3]float64{p.X, p.Y, p.T}
	}
	return out
}
