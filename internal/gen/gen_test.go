package gen

import (
	"testing"

	"rlts/internal/traj"
)

func TestDeterministicPerSeed(t *testing.T) {
	a := New(Geolife(), 42).Trajectory(200)
	b := New(Geolife(), 42).Trajectory(200)
	if !a.Equal(b) {
		t.Error("same seed produced different trajectories")
	}
	c := New(Geolife(), 43).Trajectory(200)
	if a.Equal(c) {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestGeneratedTrajectoriesValid(t *testing.T) {
	for _, cfg := range Profiles() {
		t.Run(cfg.Name, func(t *testing.T) {
			g := New(cfg, 7)
			for _, tr := range g.Dataset(5, 300) {
				if err := tr.Validate(); err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				if tr.Len() != 300 {
					t.Fatalf("%s: length %d", cfg.Name, tr.Len())
				}
			}
		})
	}
}

func TestSamplingRatesInRange(t *testing.T) {
	for _, cfg := range Profiles() {
		t.Run(cfg.Name, func(t *testing.T) {
			tr := New(cfg, 3).Trajectory(500)
			for i := 1; i < tr.Len(); i++ {
				gap := tr[i].T - tr[i-1].T
				if gap < cfg.MinGap-1e-9 || gap > cfg.MaxGap+1e-9 {
					t.Fatalf("gap %v outside [%v, %v]", gap, cfg.MinGap, cfg.MaxGap)
				}
			}
		})
	}
}

func TestDatasetStatisticsMatchTableI(t *testing.T) {
	// Loose bands around the paper's Table I averages: the substitution
	// only needs the right order of magnitude and regime character.
	tests := []struct {
		cfg              Config
		minDist, maxDist float64
	}{
		{Geolife(), 2, 30},    // paper: 9.96 m
		{TDrive(), 250, 1300}, // paper: 623 m
		{Truck(), 25, 220},    // paper: 82.74 m
	}
	for _, tc := range tests {
		t.Run(tc.cfg.Name, func(t *testing.T) {
			g := New(tc.cfg, 11)
			s := traj.Summarize(g.Dataset(20, 500))
			if s.AvgDistance < tc.minDist || s.AvgDistance > tc.maxDist {
				t.Errorf("%s avg distance %.1f outside [%v, %v]",
					tc.cfg.Name, s.AvgDistance, tc.minDist, tc.maxDist)
			}
			if s.AvgSampleRate < tc.cfg.MinGap || s.AvgSampleRate > tc.cfg.MaxGap {
				t.Errorf("%s avg gap %.1f outside config range", tc.cfg.Name, s.AvgSampleRate)
			}
		})
	}
}

func TestDatasetVaried(t *testing.T) {
	g := New(Truck(), 5)
	ds := g.DatasetVaried(30, 100, 200)
	if len(ds) != 30 {
		t.Fatalf("count = %d", len(ds))
	}
	sawDifferent := false
	for _, tr := range ds {
		if tr.Len() < 100 || tr.Len() > 200 {
			t.Fatalf("length %d outside [100, 200]", tr.Len())
		}
		if tr.Len() != ds[0].Len() {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Error("all varied lengths identical")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"geolife", "tdrive", "truck", "T-Drive", "Trucks", "sports"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("mars-rover"); ok {
		t.Error("unknown dataset accepted")
	}
}

func TestSportsProfile(t *testing.T) {
	tr := New(Sports(), 9).Trajectory(1000)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sub-second sampling and sharp dynamics.
	s := traj.Summarize([]traj.Trajectory{tr})
	if s.AvgSampleRate > 0.25 {
		t.Errorf("avg gap %v, want < 0.25s", s.AvgSampleRate)
	}
}

func TestOutlierInjection(t *testing.T) {
	clean := New(Geolife(), 5).Trajectory(2000)
	noisy := New(Geolife().WithOutliers(0.05, 500), 5).Trajectory(2000)
	// Outliers create large point-to-point jumps the clean data lacks.
	jumps := func(tr traj.Trajectory) int {
		n := 0
		for i := 1; i < tr.Len(); i++ {
			dx, dy := tr[i].X-tr[i-1].X, tr[i].Y-tr[i-1].Y
			if dx*dx+dy*dy > 300*300 {
				n++
			}
		}
		return n
	}
	if jc, jn := jumps(clean), jumps(noisy); jn <= jc {
		t.Errorf("outlier injection ineffective: clean %d jumps, noisy %d", jc, jn)
	}
}

func TestTrajectoryPanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=1 did not panic")
		}
	}()
	New(Geolife(), 1).Trajectory(1)
}

func TestStopsProduceSlowStretches(t *testing.T) {
	// Geolife has stops: some consecutive points should be nearly
	// stationary (within GPS noise), giving the RL policy easy drops.
	tr := New(Geolife(), 13).Trajectory(2000)
	slow := 0
	for i := 1; i < tr.Len(); i++ {
		dx := tr[i].X - tr[i-1].X
		dy := tr[i].Y - tr[i-1].Y
		if dx*dx+dy*dy < 25 { // < 5 m moved
			slow++
		}
	}
	if slow < 20 {
		t.Errorf("only %d near-stationary gaps in 2000 points; stops not working", slow)
	}
}
