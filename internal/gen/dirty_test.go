package gen

import (
	"errors"
	"math"
	"testing"

	"rlts/internal/traj"
)

func TestCorruptDeterministic(t *testing.T) {
	clean := New(Geolife(), 11).Trajectory(300)
	for _, fam := range DirtyFamilies() {
		a := fam.Corrupt(clean, 5)
		b := fam.Corrupt(clean, 5)
		if len(a) != len(b) {
			t.Fatalf("%s: same seed, different lengths", fam.Name)
		}
		for i := range a {
			// Bitwise: garbage fixes contain NaN, which never compares
			// equal to itself.
			if math.Float64bits(a[i].X) != math.Float64bits(b[i].X) ||
				math.Float64bits(a[i].Y) != math.Float64bits(b[i].Y) ||
				math.Float64bits(a[i].T) != math.Float64bits(b[i].T) {
				t.Fatalf("%s: same seed, fix %d differs", fam.Name, i)
			}
		}
	}
}

func TestCorruptZeroValueIsIdentity(t *testing.T) {
	clean := New(TDrive(), 3).Trajectory(100)
	out := DirtyConfig{}.Corrupt(clean, 1)
	if len(out) != clean.Len() {
		t.Fatalf("zero config changed length: %d vs %d", len(out), clean.Len())
	}
	for i, p := range out {
		if !p.Equal(clean[i]) {
			t.Fatalf("zero config changed fix %d", i)
		}
	}
}

// TestFamiliesProduceTheirDefect: each isolated family must actually
// break the strict contract in its own way (otherwise the robustness
// numbers measure nothing).
func TestFamiliesProduceTheirDefect(t *testing.T) {
	clean := New(Geolife(), 21).Trajectory(500)
	for _, fam := range DirtyFamilies() {
		out := fam.Corrupt(clean, 9)
		var unordered, dups, nonFinite int
		var maxJump float64
		for i, p := range out {
			if !p.IsFinite() {
				nonFinite++
				continue
			}
			if i > 0 && out[i-1].IsFinite() {
				if p.T < out[i-1].T {
					unordered++
				}
				if p.T == out[i-1].T {
					dups++
				}
				if d := math.Hypot(p.X-out[i-1].X, p.Y-out[i-1].Y); d > maxJump {
					maxJump = d
				}
			}
		}
		switch fam.Name {
		case "out-of-order":
			if unordered == 0 {
				t.Errorf("%s produced no unordered fixes", fam.Name)
			}
		case "dup-times":
			if dups == 0 {
				t.Errorf("%s produced no duplicate timestamps", fam.Name)
			}
		case "noise-spikes", "teleports":
			if maxJump < 300 {
				t.Errorf("%s max jump only %v", fam.Name, maxJump)
			}
		case "garbage":
			if nonFinite == 0 {
				t.Errorf("%s produced no non-finite fixes", fam.Name)
			}
		case "burst-gaps", "mixed-rate":
			cleanDur := clean.Duration()
			dirtyDur := out[len(out)-1].T - out[0].T
			if dirtyDur < cleanDur*1.2 {
				t.Errorf("%s did not stretch the time axis: %v vs %v", fam.Name, dirtyDur, cleanDur)
			}
		case "kitchen-sink":
			if unordered == 0 || dups == 0 || nonFinite == 0 {
				t.Errorf("%s missing defect classes: %d unordered, %d dups, %d non-finite",
					fam.Name, unordered, dups, nonFinite)
			}
		}
	}
}

// TestEveryFamilyRepairs: the acceptance criterion in miniature — every
// family's output, pushed through the repair stage with the documented
// serving defaults, yields a trajectory satisfying the strict contract.
func TestEveryFamilyRepairs(t *testing.T) {
	cfg := traj.RepairConfig{Window: 16, MaxSpeed: 60}
	for _, prof := range Profiles() {
		clean := New(prof, 17).Trajectory(400)
		for _, fam := range DirtyFamilies() {
			dirty := fam.Corrupt(clean, 23)
			repaired, rep, err := traj.Repair(Raw(dirty), cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", prof.Name, fam.Name, err)
			}
			if err := repaired.Validate(); err != nil {
				t.Fatalf("%s/%s: repaired output invalid: %v", prof.Name, fam.Name, err)
			}
			if rep.Pushed != len(dirty) {
				t.Fatalf("%s/%s: report pushed %d of %d", prof.Name, fam.Name, rep.Pushed, len(dirty))
			}
		}
	}
}

// TestOutlierInStopZeroDurationTeleport pins the gen.WithOutliers /
// stop-stretch / duplicate-timestamp interaction: an outlier injected
// while the walker is stopped, then re-sent as a duplicate, is a
// zero-duration teleport. The speed gate must classify it as an outlier
// — a division by the zero time delta would make the gate NaN-blind and
// let it through.
func TestOutlierInStopZeroDurationTeleport(t *testing.T) {
	cfg := Geolife()
	cfg.StopMinSecs, cfg.StopMaxSecs = 60, 120
	for i := range cfg.Regimes {
		cfg.Regimes[i].StopProb = 0.3 // stop often so outliers land inside stops
	}
	cfg = cfg.WithOutliers(0.3, 5000)
	clean := New(cfg, 41).Trajectory(600)

	// Re-send every fix at the same timestamp WITHOUT jitter: each
	// outlier spike inside a stop now has an exact-duplicate companion,
	// and the dup-radius check sees displacement 0 while the stop keeps
	// dt at exactly the sampling gap (and 0 within the dup group).
	dirty := DirtyConfig{DupProb: 1, DupJitter: 0}.Corrupt(clean, 43)

	repaired, rep, err := traj.Repair(Raw(dirty), traj.RepairConfig{Window: 8, MaxSpeed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := repaired.Validate(); err != nil {
		t.Fatalf("repaired output invalid: %v", err)
	}
	if rep.Outliers == 0 {
		t.Fatalf("outlier spikes not classified: %+v", rep)
	}
	if rep.Duplicates == 0 {
		t.Fatalf("duplicates not classified: %+v", rep)
	}
	// The gate must have removed the 5 km spikes: with the walker
	// capped at 15 m/s and gaps under 6 s, no repaired step can
	// legitimately exceed MaxSpeed * gap.
	for i := 1; i < repaired.Len(); i++ {
		dt := repaired[i].T - repaired[i-1].T
		if d := math.Hypot(repaired[i].X-repaired[i-1].X, repaired[i].Y-repaired[i-1].Y); d > 20*dt+1e-9 {
			t.Fatalf("step %d: residual teleport %v over %v s", i, d, dt)
		}
	}
}

// TestDupOfOutlierIsZeroDurationTeleport drives the defect directly: a
// duplicate timestamp whose position is kilometres away must be dropped
// by the dup-radius teleport check, never divided by dt=0.
func TestDupOfOutlierIsZeroDurationTeleport(t *testing.T) {
	raw := [][3]float64{
		{0, 0, 0}, {1, 0, 1}, {5000, 0, 1}, {2, 0, 2}, {3, 0, 3},
	}
	repaired, rep, err := traj.Repair(raw, traj.RepairConfig{MaxSpeed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outliers != 1 {
		t.Fatalf("zero-duration teleport not classified as outlier: %+v", rep)
	}
	for _, p := range repaired {
		if p.X == 5000 {
			t.Fatal("zero-duration teleport survived")
		}
	}
	if _, _, err := traj.Repair(raw, traj.RepairConfig{}); err != nil {
		t.Fatalf("ungated repair must still be total: %v", err)
	}
}

func TestComposeTakesMaxima(t *testing.T) {
	got := Compose("x",
		DirtyConfig{SwapProb: 0.1, SwapSpan: 2, GapSecs: 10},
		DirtyConfig{SwapProb: 0.05, SwapSpan: 6, GarbageProb: 0.2},
	)
	if got.SwapProb != 0.1 || got.SwapSpan != 6 || got.GapSecs != 10 || got.GarbageProb != 0.2 {
		t.Fatalf("compose wrong: %+v", got)
	}
	if got.Name != "x" {
		t.Fatalf("compose name %q", got.Name)
	}
}

func TestDirtyFamilyByName(t *testing.T) {
	if _, ok := DirtyFamilyByName("kitchen-sink"); !ok {
		t.Fatal("kitchen-sink missing")
	}
	if _, ok := DirtyFamilyByName("no-such"); ok {
		t.Fatal("phantom family found")
	}
}

func TestCorruptGarbageOnlyTooShort(t *testing.T) {
	// A fully-garbaged stream must fail repair with ErrTooShort, not
	// panic or emit an invalid trajectory.
	clean := New(Geolife(), 5).Trajectory(50)
	dirty := DirtyConfig{GarbageProb: 1}.Corrupt(clean, 1)
	if _, _, err := traj.Repair(Raw(dirty), traj.RepairConfig{}); !errors.Is(err, traj.ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}
