// Package adaptive prototypes the paper's future-work direction (§VII):
// "explore how to choose the error measurement (e.g., SED, PED, etc.)
// adaptively for different application scenarios."
//
// Two mechanisms are provided:
//
//   - Recommend: a feature-based rule that inspects a trajectory's
//     dynamics (heading churn, speed dispersion, jitter, sampling
//     regularity) and picks the measure whose notion of error the data
//     can meaningfully support.
//   - SelectBalanced: an ensemble that simplifies under every candidate
//     measure and returns the simplification minimizing the worst
//     *normalized* error across all four measures — a measure-agnostic
//     compromise for applications that cannot commit to one.
//
// This is an extension beyond the paper's evaluation; DESIGN.md records
// it as such.
package adaptive

import (
	"fmt"
	"math"

	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

// Features summarizes the dynamics that differentiate the error measures.
type Features struct {
	// MeanStep is the mean inter-point distance (the natural length scale
	// for SED/PED errors).
	MeanStep float64
	// SpeedCV is the coefficient of variation of per-segment speeds; high
	// values mean speed carries information (SAD territory).
	SpeedCV float64
	// HeadingChurn is the mean absolute heading change between
	// consecutive segments, in radians; high values mean direction
	// carries information (DAD territory).
	HeadingChurn float64
	// GapCV is the coefficient of variation of sampling intervals;
	// irregular sampling makes time-synchronized comparison (SED) more
	// informative than purely geometric comparison (PED).
	GapCV float64
}

// Extract computes Features for a trajectory.
func Extract(t traj.Trajectory) Features {
	var f Features
	n := len(t)
	if n < 3 {
		return f
	}
	var (
		sumStep, sumGap float64
		speeds          []float64
		prevHeading     float64
		havePrev        bool
		sumTurn         float64
		turns           int
	)
	for i := 1; i < n; i++ {
		s := t.Segment(i-1, i)
		sumStep += s.Length()
		sumGap += s.Duration()
		speeds = append(speeds, s.Speed())
		if !s.IsDegenerate() {
			h := s.Direction()
			if havePrev {
				sumTurn += geo.AngularDifference(prevHeading, h)
				turns++
			}
			prevHeading = h
			havePrev = true
		}
	}
	segs := float64(n - 1)
	f.MeanStep = sumStep / segs
	meanGap := sumGap / segs
	f.SpeedCV = coeffVar(speeds)
	if turns > 0 {
		f.HeadingChurn = sumTurn / float64(turns)
	}
	var gaps []float64
	for i := 1; i < n; i++ {
		gaps = append(gaps, t[i].T-t[i-1].T)
	}
	if meanGap > 0 {
		f.GapCV = coeffVar(gaps)
	}
	return f
}

func coeffVar(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var mean float64
	for _, v := range vs {
		mean += v
	}
	mean /= float64(len(vs))
	if mean == 0 {
		return 0
	}
	var varAcc float64
	for _, v := range vs {
		d := v - mean
		varAcc += d * d
	}
	return math.Sqrt(varAcc/float64(len(vs))) / mean
}

// Recommend picks the error measure whose signal dominates the
// trajectory's dynamics. The thresholds are deliberately simple — this is
// a prototype of the paper's future-work idea, not a tuned system:
//
//   - strong heading churn (> ~30 deg per segment) → DAD
//   - strong speed dispersion (CV > 0.8) with steady heading → SAD
//   - irregular sampling (gap CV > 0.5) → SED (synchronization matters)
//   - otherwise → PED (pure geometry suffices)
func Recommend(t traj.Trajectory) (errm.Measure, Features) {
	f := Extract(t)
	switch {
	case f.HeadingChurn > math.Pi/6:
		return errm.DAD, f
	case f.SpeedCV > 0.8:
		return errm.SAD, f
	case f.GapCV > 0.5:
		return errm.SED, f
	default:
		return errm.PED, f
	}
}

// BoundedAlgo names a backend of the error-bounded serving mode
// (POST /v1/simplify with "bound").
type BoundedAlgo string

const (
	// BoundedCISED is the one-pass SED-bounded simplifier.
	BoundedCISED BoundedAlgo = "cised"
	// BoundedOPERB is the one-pass PED-bounded simplifier.
	BoundedOPERB BoundedAlgo = "operb"
	// BoundedMinSize is the Min-Size binary search over a Min-Error
	// algorithm (typically the RL policy).
	BoundedMinSize BoundedAlgo = "minsize"
)

// RecommendBounded picks the backend for an error-bounded request on t
// under measure m. DAD and SAD have no one-pass error-bounded
// competitor, so they always go to the Min-Size search. For SED/PED the
// O(n) one-pass algorithms win on throughput, except where their greedy
// cuts forfeit most of the compression: short trajectories (the search
// is cheap there) and heading-churning ones (a one-pass feasibility
// region collapses at every turn, while the Min-Size search still finds
// segments spanning them). The thresholds are prototype-simple, like
// Recommend's.
func RecommendBounded(t traj.Trajectory, m errm.Measure) (BoundedAlgo, Features) {
	f := Extract(t)
	switch m {
	case errm.SED, errm.PED:
		if len(t) >= 32 && f.HeadingChurn <= math.Pi/4 {
			if m == errm.SED {
				return BoundedCISED, f
			}
			return BoundedOPERB, f
		}
	}
	return BoundedMinSize, f
}

// Simplifier is a per-measure Min-Error algorithm (budget in, kept
// indices out).
type Simplifier func(t traj.Trajectory, w int, m errm.Measure) ([]int, error)

// SelectBalanced simplifies t under every candidate measure with f and
// returns the kept indices minimizing the maximum *normalized* error over
// all four measures, together with the measure that produced them.
// Normalization divides SED/PED by the trajectory's mean step length, DAD
// by its mean heading change and SAD by its mean speed, so the four error
// scales become comparable.
func SelectBalanced(t traj.Trajectory, w int, f Simplifier) (errm.Measure, []int, error) {
	feats := Extract(t)
	scale := func(m errm.Measure) float64 { return measureScale(t, feats, m) }
	bestScore := math.Inf(1)
	var bestM errm.Measure
	var bestKept []int
	for _, m := range errm.Measures {
		kept, err := f(t, w, m)
		if err != nil {
			return 0, nil, fmt.Errorf("adaptive: simplifying under %v: %w", m, err)
		}
		var worst float64
		for _, em := range errm.Measures {
			if v := errm.Error(em, t, kept) / scale(em); v > worst {
				worst = v
			}
		}
		if worst < bestScore {
			bestScore = worst
			bestM = m
			bestKept = kept
		}
	}
	return bestM, bestKept, nil
}

// measureScale returns the normalization scale for m's errors on t.
// Every scale is guarded against overflow: one extreme-coordinate or
// near-zero-dt segment used to drive the SAD speed sum to +Inf, which
// made the normalized SAD error 0 for every candidate and silently
// removed SAD from the balance. A non-finite or non-positive scale
// falls back to 1 (unnormalized), which keeps the measure in play.
func measureScale(t traj.Trajectory, feats Features, m errm.Measure) float64 {
	switch m {
	case errm.SED, errm.PED:
		if usableScale(feats.MeanStep) {
			return feats.MeanStep
		}
	case errm.DAD:
		if usableScale(feats.HeadingChurn) {
			return feats.HeadingChurn
		}
	case errm.SAD:
		var sum float64
		for i := 1; i < len(t); i++ {
			sum += t.Segment(i-1, i).Speed()
		}
		if mean := sum / float64(len(t)-1); usableScale(mean) {
			return mean
		}
	}
	return 1
}

// usableScale reports whether v can divide an error without destroying
// its signal: positive and finite.
func usableScale(v float64) bool {
	return v > 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}
