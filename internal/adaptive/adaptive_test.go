package adaptive

import (
	"math"
	"testing"

	"rlts/internal/baseline/batch"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

// mkTraj builds a trajectory with controllable dynamics.
func mkTraj(n int, turnEvery int, speedPattern []float64, gapPattern []float64) traj.Trajectory {
	t := make(traj.Trajectory, n)
	x, y, ts := 0.0, 0.0, 0.0
	heading := 0.0
	for i := 0; i < n; i++ {
		t[i] = geo.Pt(x, y, ts)
		if turnEvery > 0 && i%turnEvery == turnEvery-1 {
			heading += math.Pi / 2
		}
		speed := speedPattern[i%len(speedPattern)]
		gap := gapPattern[i%len(gapPattern)]
		x += speed * gap * math.Cos(heading)
		y += speed * gap * math.Sin(heading)
		ts += gap
	}
	return t
}

func TestExtractFeatures(t *testing.T) {
	// Constant speed, straight line, uniform sampling: everything ~0.
	straight := mkTraj(50, 0, []float64{2}, []float64{1})
	f := Extract(straight)
	if f.SpeedCV > 0.01 || f.HeadingChurn > 0.01 || f.GapCV > 0.01 {
		t.Errorf("straight line features not near zero: %+v", f)
	}
	if !almost(f.MeanStep, 2, 1e-9) {
		t.Errorf("MeanStep = %v, want 2", f.MeanStep)
	}
	// Tiny trajectory: zero features, no panic.
	if got := Extract(straight[:2]); got.MeanStep != 0 {
		t.Errorf("short trajectory features = %+v", got)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRecommendByDynamics(t *testing.T) {
	tests := []struct {
		name string
		tr   traj.Trajectory
		want errm.Measure
	}{
		{
			"zigzag -> DAD",
			mkTraj(60, 2, []float64{2}, []float64{1}),
			errm.DAD,
		},
		{
			"stop-and-go -> SAD",
			mkTraj(60, 0, []float64{0.2, 8, 0.2, 9}, []float64{1}),
			errm.SAD,
		},
		{
			"irregular sampling -> SED",
			mkTraj(60, 0, []float64{2}, []float64{1, 1, 12}),
			errm.SED,
		},
		{
			"smooth and regular -> PED",
			mkTraj(60, 0, []float64{2}, []float64{1}),
			errm.PED,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, feats := Recommend(tc.tr)
			if got != tc.want {
				t.Errorf("Recommend = %v, want %v (features %+v)", got, tc.want, feats)
			}
		})
	}
}

func TestSelectBalanced(t *testing.T) {
	tr := gen.New(gen.Geolife(), 7).Trajectory(200)
	m, kept, err := SelectBalanced(tr, 30, func(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
		return batch.BottomUp(t, w, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid() {
		t.Errorf("invalid selected measure %v", m)
	}
	if len(kept) > 30 || !tr.Pick(kept).IsSimplificationOf(tr) {
		t.Error("invalid simplification")
	}
	// The balanced pick must be no worse (in its own normalized max-score)
	// than any single-measure result — verify against SED's result.
	sedKept, err := batch.BottomUp(tr, 30, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	score := func(kept []int) float64 {
		feats := Extract(tr)
		var worst float64
		for _, em := range errm.Measures {
			s := 1.0
			switch em {
			case errm.SED, errm.PED:
				s = feats.MeanStep
			case errm.DAD:
				s = feats.HeadingChurn
			case errm.SAD:
				var sum float64
				for i := 1; i < len(tr); i++ {
					sum += tr.Segment(i-1, i).Speed()
				}
				s = sum / float64(len(tr)-1)
			}
			if v := errm.Error(em, tr, kept) / s; v > worst {
				worst = v
			}
		}
		return worst
	}
	if score(kept) > score(sedKept)+1e-9 {
		t.Errorf("balanced pick score %v worse than SED-only %v", score(kept), score(sedKept))
	}
}

func TestMeasureScaleGuardsOverflow(t *testing.T) {
	// Regression: an extreme-coordinate segment drives the SAD speed sum
	// (and the MeanStep length sum) to +Inf, which used to make the
	// normalized error 0 for every candidate and silently drop the
	// measure from the balance. All scales must stay usable divisors.
	const mag = 8e307
	tr := traj.Trajectory{
		geo.Pt(-mag, 0, 0), geo.Pt(mag, 0, 1), geo.Pt(-mag, 0, 2),
		geo.Pt(mag, 0, 3), geo.Pt(0, 0, 4), geo.Pt(1, 0, 5),
	}
	feats := Extract(tr)
	for _, m := range errm.Measures {
		s := measureScale(tr, feats, m)
		if !usableScale(s) {
			t.Errorf("measureScale(%v) = %v, not a usable divisor", m, s)
		}
	}
	if s := measureScale(tr, feats, errm.SAD); s != 1 {
		t.Errorf("SAD scale = %v on overflowing speeds, want fallback 1", s)
	}
	// End to end: the ensemble must still return a valid simplification.
	m, kept, err := SelectBalanced(tr, 4, func(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
		return batch.BottomUp(t, w, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid() || len(kept) > 4 || !tr.Pick(kept).IsSimplificationOf(tr) {
		t.Errorf("invalid balanced result: measure %v kept %v", m, kept)
	}
}

func TestRecommendBounded(t *testing.T) {
	smooth := mkTraj(100, 0, []float64{2}, []float64{1})
	zigzag := mkTraj(100, 2, []float64{2}, []float64{1})
	short := mkTraj(10, 0, []float64{2}, []float64{1})
	tests := []struct {
		name string
		tr   traj.Trajectory
		m    errm.Measure
		want BoundedAlgo
	}{
		{"smooth SED -> one-pass CISED", smooth, errm.SED, BoundedCISED},
		{"smooth PED -> one-pass OPERB", smooth, errm.PED, BoundedOPERB},
		{"DAD has no one-pass rival", smooth, errm.DAD, BoundedMinSize},
		{"SAD has no one-pass rival", smooth, errm.SAD, BoundedMinSize},
		{"heading churn defeats one-pass", zigzag, errm.PED, BoundedMinSize},
		{"short input -> search is cheap", short, errm.SED, BoundedMinSize},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, feats := RecommendBounded(tc.tr, tc.m)
			if got != tc.want {
				t.Errorf("RecommendBounded = %v, want %v (features %+v)", got, tc.want, feats)
			}
		})
	}
}

func TestSelectBalancedPropagatesErrors(t *testing.T) {
	tr := gen.New(gen.Geolife(), 8).Trajectory(50)
	_, _, err := SelectBalanced(tr, 10, func(t traj.Trajectory, w int, m errm.Measure) ([]int, error) {
		return batch.Bellman(t, 1, m) // invalid budget -> error
	})
	if err == nil {
		t.Error("error not propagated")
	}
}
