// Package viz renders trajectories and their simplifications to SVG, in
// the visual style of the paper's Figure 7: the raw trajectory as a solid
// blue polyline, the simplification as a dashed red polyline with kept
// points marked, and the error in the caption.
package viz

import (
	"fmt"
	"io"
	"strings"

	"rlts/internal/storage"
	"rlts/internal/traj"
)

// Style controls the rendering. The zero value is unusable; start from
// DefaultStyle.
type Style struct {
	Width, Height int
	Padding       int
	RawColor      string
	SimpColor     string
	RawWidth      float64
	SimpWidth     float64
	PointRadius   float64
	FontSize      int
}

// DefaultStyle matches Figure 7: blue raw, dashed red simplification.
func DefaultStyle() Style {
	return Style{
		Width:       800,
		Height:      600,
		Padding:     30,
		RawColor:    "#1f4e9c",
		SimpColor:   "#c23b22",
		RawWidth:    1.2,
		SimpWidth:   1.6,
		PointRadius: 2.5,
		FontSize:    14,
	}
}

// Figure is one rendering: a raw trajectory with zero or more overlays.
type Figure struct {
	Raw      traj.Trajectory
	Overlays []Overlay
	Caption  string
	Style    Style
}

// Overlay is a simplified trajectory drawn over the raw one.
type Overlay struct {
	T     traj.Trajectory
	Label string
}

// NewFigure creates a figure with the default style.
func NewFigure(raw traj.Trajectory, caption string) *Figure {
	return &Figure{Raw: raw, Caption: caption, Style: DefaultStyle()}
}

// AddOverlay appends a simplification overlay.
func (f *Figure) AddOverlay(t traj.Trajectory, label string) {
	f.Overlays = append(f.Overlays, Overlay{T: t, Label: label})
}

// WriteSVG renders the figure as SVG.
func (f *Figure) WriteSVG(w io.Writer) error {
	if len(f.Raw) == 0 {
		return fmt.Errorf("viz: empty raw trajectory")
	}
	st := f.Style
	if st.Width <= 0 || st.Height <= 0 {
		st = DefaultStyle()
	}
	minX, minY := f.Raw[0].X, f.Raw[0].Y
	maxX, maxY := minX, minY
	for _, p := range f.Raw {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	pad := float64(st.Padding)
	toPix := func(x, y float64) (float64, float64) {
		px := pad + (x-minX)/spanX*(float64(st.Width)-2*pad)
		py := float64(st.Height) - pad - (y-minY)/spanY*(float64(st.Height)-2*pad)
		return px, py
	}
	poly := func(t traj.Trajectory) string {
		var b strings.Builder
		for i, p := range t {
			x, y := toPix(p.X, p.Y)
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", x, y)
		}
		return b.String()
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", st.Width, st.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		poly(f.Raw), st.RawColor, st.RawWidth)
	for _, ov := range f.Overlays {
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f" stroke-dasharray="6,4"/>`+"\n",
			poly(ov.T), st.SimpColor, st.SimpWidth)
		for _, p := range ov.T {
			x, y := toPix(p.X, p.Y)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.2f" fill="%s"/>`+"\n", x, y, st.PointRadius, st.SimpColor)
		}
	}
	caption := f.Caption
	if len(f.Overlays) == 1 && f.Overlays[0].Label != "" {
		caption = fmt.Sprintf("%s — %s", f.Overlays[0].Label, caption)
	}
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="%d">%s</text>`+"\n",
		st.Padding, st.FontSize, escapeXML(caption))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// SaveSVG renders the figure to a file atomically.
func (f *Figure) SaveSVG(path string) error {
	return storage.WriteAtomic(path, f.WriteSVG)
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
