package viz

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

func TestWriteSVG(t *testing.T) {
	raw := gen.New(gen.Geolife(), 1).Trajectory(100)
	simp := raw.Pick([]int{0, 20, 50, 99})
	f := NewFigure(raw, "eps = 1.234")
	f.AddOverlay(simp, "RLTS")
	var buf bytes.Buffer
	if err := f.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "stroke-dasharray",
		"RLTS — eps = 1.234", "circle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 4 kept points -> 4 circles.
	if got := strings.Count(out, "<circle"); got != 4 {
		t.Errorf("%d circles, want 4", got)
	}
}

func TestWriteSVGEmptyRawFails(t *testing.T) {
	f := NewFigure(nil, "x")
	if err := f.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty raw accepted")
	}
}

func TestDegenerateExtent(t *testing.T) {
	// All points identical: spans are zero; rendering must not divide by
	// zero or emit NaN coordinates.
	raw := traj.Trajectory{geo.Pt(5, 5, 0), geo.Pt(5, 5, 1), geo.Pt(5, 5, 2)}
	f := NewFigure(raw, "degenerate")
	var buf bytes.Buffer
	if err := f.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN in SVG output")
	}
}

func TestCaptionEscaped(t *testing.T) {
	raw := traj.Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 1, 1)}
	f := NewFigure(raw, `err < 5 & "quoted"`)
	var buf bytes.Buffer
	if err := f.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `err < 5 &`) {
		t.Error("caption not escaped")
	}
	if !strings.Contains(out, "&lt;") || !strings.Contains(out, "&amp;") {
		t.Error("expected escaped entities")
	}
}

func TestSaveSVG(t *testing.T) {
	raw := gen.New(gen.Truck(), 2).Trajectory(50)
	f := NewFigure(raw, "file test")
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := f.SaveSVG(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("file does not start with <svg")
	}
}

func TestMultipleOverlays(t *testing.T) {
	raw := gen.New(gen.Geolife(), 3).Trajectory(60)
	f := NewFigure(raw, "multi")
	f.AddOverlay(raw.Pick([]int{0, 30, 59}), "a")
	f.AddOverlay(raw.Pick([]int{0, 10, 59}), "b")
	var buf bytes.Buffer
	if err := f.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "stroke-dasharray"); got != 2 {
		t.Errorf("%d dashed polylines, want 2", got)
	}
}
