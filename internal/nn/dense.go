package nn

import (
	"math"
	"math/rand"
)

// Dense is a fully connected layer computing y = W*x + b, with W stored
// row-major as out x in.
type Dense struct {
	In, Out int
	W, B    *Param

	lastIn []float64
	out    []float64 // reused across Forward calls
	gin    []float64 // reused across Backward calls

	// Folded-weight scratch for the KernelFast fused kernel (fastmath.go):
	// the batch-norm affine folded into a private copy of W and b, rebuilt
	// per batch, never aliased by clones (CloneMLP builds fresh layers).
	fw, fb []float64
}

// NewDense creates a Dense layer with Xavier/Glorot-uniform initialized
// weights and zero biases, drawn from r for reproducibility.
func NewDense(in, out int, r *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   newParam("W", in*out),
		B:   newParam("b", out),
	}
	// Glorot uniform: U(-limit, limit), limit = sqrt(6 / (in + out)).
	limit := xavierLimit(in, out)
	for i := range d.W.Val {
		d.W.Val[i] = (r.Float64()*2 - 1) * limit
	}
	return d
}

func xavierLimit(in, out int) float64 {
	return math.Sqrt(6 / float64(in+out))
}

// Forward computes W*x + b and caches x for Backward. The returned slice
// is owned by the layer and overwritten by the next Forward call.
func (d *Dense) Forward(x []float64, _ bool) []float64 {
	checkLen("Dense input", len(x), d.In)
	d.lastIn = x
	if d.out == nil {
		d.out = make([]float64, d.Out)
	}
	y := d.out
	for o := 0; o < d.Out; o++ {
		row := d.W.Val[o*d.In : (o+1)*d.In]
		s := d.B.Val[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// Backward accumulates dL/dW and dL/db and returns dL/dx.
func (d *Dense) Backward(grad []float64) []float64 {
	checkLen("Dense grad", len(grad), d.Out)
	x := d.lastIn
	if d.gin == nil {
		d.gin = make([]float64, d.In)
	}
	gin := d.gin
	for i := range gin {
		gin[i] = 0
	}
	for o, g := range grad {
		if g == 0 {
			continue
		}
		row := d.W.Val[o*d.In : (o+1)*d.In]
		grow := d.W.Grad[o*d.In : (o+1)*d.In]
		d.B.Grad[o] += g
		for i, xi := range x {
			grow[i] += g * xi
			gin[i] += g * row[i]
		}
	}
	return gin
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutSize returns the output dimensionality.
func (d *Dense) OutSize() int { return d.Out }
