// Package nn is a small, dependency-free neural network substrate: dense
// layers, tanh/relu activations, batch normalization, softmax, Xavier
// initialization, the Adam optimizer and JSON serialization.
//
// It replaces the TensorFlow 1.8 stack used by the paper. The policy
// networks in this system are tiny (input k or k+J, one hidden layer of 20
// units, softmax output), so a straightforward single-sample forward /
// backward implementation on float64 slices is both sufficient and fast.
// Gradients are accumulated across the steps of an episode and applied in
// one optimizer step, exactly as the REINFORCE update (Eq. 11) requires.
package nn

import (
	"fmt"
	"math"
)

// Param is a named tensor of trainable values with its accumulated
// gradient. All tensors are flat float64 slices; shape is the owning
// layer's concern.
type Param struct {
	Name string
	Val  []float64
	Grad []float64
}

func newParam(name string, n int) *Param {
	return &Param{Name: name, Val: make([]float64, n), Grad: make([]float64, n)}
}

// Layer is one differentiable stage of a network. Forward caches whatever
// Backward needs, so calls must be paired: Forward(x) then Backward(grad)
// before the next Forward. Backward adds into the layer's parameter
// gradients and returns the gradient w.r.t. its input.
type Layer interface {
	Forward(x []float64, train bool) []float64
	Backward(grad []float64) []float64
	Params() []*Param
	// OutSize returns the length of the layer's output given its
	// configured input size.
	OutSize() int
	// ForwardBatch is the inference-mode matrix forward: x holds b
	// row-major input rows, dst b row-major output rows, and every row
	// is bit-identical to Forward(row, false). It never updates running
	// statistics and caches nothing for Backward; see batch.go.
	ForwardBatch(dst, x []float64, b int)
}

// Network is a sequential stack of layers producing logits.
type Network struct {
	Layers []Layer

	params    []*Param     // lazily built flat view of all layer parameters
	normDepth int          // 1 + index of last BatchNorm layer; 0 = unknown, -1 = none
	batchBuf  [2][]float64 // ping-pong scratch matrices for ForwardBatch
	kernel    Kernel       // inference kernel selection; see fastmath.go
	fastPass  bool         // last forward ran the fast kernel: Backward must refuse
}

// Forward runs x through all layers. train selects training-time behaviour
// (e.g. batch-norm statistics updates). Inference forwards (train=false)
// honor the selected kernel: with KernelFast they run the fused
// approximate path (see fastmath.go) and leave no caches for Backward.
func (n *Network) Forward(x []float64, train bool) []float64 {
	if !train && n.kernel == KernelFast {
		n.fastPass = true
		return n.forwardFast(x)
	}
	n.fastPass = false
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient of the loss w.r.t. the network output
// back through all layers, accumulating parameter gradients. It refuses
// to run after a KernelFast forward: the fast kernels populate none of
// the layer caches Backward consumes, so the gradients would be silently
// wrong rather than approximate.
func (n *Network) Backward(grad []float64) {
	if n.fastPass {
		panic("nn: Backward after a KernelFast forward (fast kernels are inference-only)")
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// UpdateStats runs x through the network in training mode far enough to
// update every normalization layer's running statistics, then stops (the
// logits are not needed). The parallel trainer uses it to absorb a batch
// of states into the batch-norm statistics exactly once per update, after
// all rollouts were generated against a frozen snapshot.
func (n *Network) UpdateStats(x []float64) {
	if n.normDepth == 0 {
		n.normDepth = -1
		for i, l := range n.Layers {
			if _, ok := l.(*BatchNorm); ok {
				n.normDepth = i + 1
			}
		}
	}
	for i := 0; i < n.normDepth; i++ {
		x = n.Layers[i].Forward(x, true)
	}
}

// Params returns all trainable parameters of the network. The slice is
// built once and cached; layers must not be added after the first call.
func (n *Network) Params() []*Param {
	if n.params == nil {
		for _, l := range n.Layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// GradSize returns the total number of gradient scalars, i.e. the length
// FlattenGrads needs.
func (n *Network) GradSize() int {
	var c int
	for _, p := range n.Params() {
		c += len(p.Grad)
	}
	return c
}

// FlattenGrads copies the accumulated gradients of every parameter into
// dst (resliced from dst[:0], so a buffer with enough capacity is reused
// allocation-free) and returns it. Order matches AddGrads.
func (n *Network) FlattenGrads(dst []float64) []float64 {
	dst = dst[:0]
	for _, p := range n.Params() {
		dst = append(dst, p.Grad...)
	}
	return dst
}

// AddGrads accumulates a flat gradient vector produced by FlattenGrads
// (typically on a replica of this network) into the parameter gradients.
func (n *Network) AddGrads(src []float64) {
	var off int
	for _, p := range n.Params() {
		g := p.Grad
		for i := range g {
			g[i] += src[off+i]
		}
		off += len(g)
	}
	checkLen("AddGrads input", len(src), off)
}

// GradNorm returns the L2 norm of the accumulated gradient across every
// parameter — the trainer's per-batch divergence telemetry.
func (n *Network) GradNorm() float64 {
	var sum float64
	for _, p := range n.Params() {
		for _, g := range p.Grad {
			sum += g * g
		}
	}
	return math.Sqrt(sum)
}

// FlattenParams copies every parameter value into dst (resliced from
// dst[:0], so a buffer with enough capacity is reused allocation-free) and
// returns it. Order matches SetParams and FlattenGrads.
func (n *Network) FlattenParams(dst []float64) []float64 {
	dst = dst[:0]
	for _, p := range n.Params() {
		dst = append(dst, p.Val...)
	}
	return dst
}

// SetParams restores parameter values from a flat vector produced by
// FlattenParams. The trainer's divergence guard uses it to roll back an
// update that produced non-finite weights.
func (n *Network) SetParams(src []float64) {
	var off int
	for _, p := range n.Params() {
		copy(p.Val, src[off:off+len(p.Val)])
		off += len(p.Val)
	}
	checkLen("SetParams input", len(src), off)
}

// ParamsFinite reports whether every parameter value is finite (no NaN or
// Inf anywhere in the network weights).
func (n *Network) ParamsFinite() bool {
	for _, p := range n.Params() {
		for _, v := range p.Val {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// GradsFinite reports whether every accumulated gradient value is finite.
func (n *Network) GradsFinite() bool {
	for _, p := range n.Params() {
		for _, v := range p.Grad {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// SyncFrom copies all parameter values and batch-norm running statistics
// from src into n, in place and without allocating. Both networks must
// have been built from the same spec; the worker replicas of the parallel
// trainer use this to refresh themselves from the master policy.
func (n *Network) SyncFrom(src *Network) {
	sp, dp := src.Params(), n.Params()
	checkLen("SyncFrom params", len(dp), len(sp))
	for i, p := range dp {
		copy(p.Val, sp[i].Val)
	}
	checkLen("SyncFrom layers", len(n.Layers), len(src.Layers))
	for i, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			sbn, ok := src.Layers[i].(*BatchNorm)
			if !ok {
				panic("nn: SyncFrom layer type mismatch")
			}
			bn.copyStatsFrom(sbn)
		}
	}
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	var c int
	for _, p := range n.Params() {
		c += len(p.Val)
	}
	return c
}

// Softmax writes the softmax of logits into a new slice, using the
// max-subtraction trick for numerical stability.
func Softmax(logits []float64) []float64 {
	return SoftmaxInto(make([]float64, len(logits)), logits)
}

// SoftmaxInto is Softmax writing into a caller-provided slice (len must
// equal len(logits)), for allocation-free hot paths. dst may alias logits.
func SoftmaxInto(dst, logits []float64) []float64 {
	checkLen("SoftmaxInto dst", len(dst), len(logits))
	max := math.Inf(-1)
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// MaskedSoftmax is Softmax restricted to the actions where mask[i] is
// true; masked-out entries get probability 0. It panics if no action is
// legal.
func MaskedSoftmax(logits []float64, mask []bool) []float64 {
	return MaskedSoftmaxInto(make([]float64, len(logits)), logits, mask)
}

// MaskedSoftmaxInto is MaskedSoftmax writing into a caller-provided slice
// (len must equal len(logits)). dst may alias logits.
func MaskedSoftmaxInto(dst, logits []float64, mask []bool) []float64 {
	checkLen("MaskedSoftmaxInto dst", len(dst), len(logits))
	max := math.Inf(-1)
	any := false
	for i, v := range logits {
		if mask[i] && v > max {
			max = v
			any = true
		}
	}
	if !any {
		panic("nn: MaskedSoftmax with no legal action")
	}
	var sum float64
	for i, v := range logits {
		if !mask[i] {
			dst[i] = 0
			continue
		}
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

func checkLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s length %d, want %d", name, got, want))
	}
}
