// Package nn is a small, dependency-free neural network substrate: dense
// layers, tanh/relu activations, batch normalization, softmax, Xavier
// initialization, the Adam optimizer and JSON serialization.
//
// It replaces the TensorFlow 1.8 stack used by the paper. The policy
// networks in this system are tiny (input k or k+J, one hidden layer of 20
// units, softmax output), so a straightforward single-sample forward /
// backward implementation on float64 slices is both sufficient and fast.
// Gradients are accumulated across the steps of an episode and applied in
// one optimizer step, exactly as the REINFORCE update (Eq. 11) requires.
package nn

import (
	"fmt"
	"math"
)

// Param is a named tensor of trainable values with its accumulated
// gradient. All tensors are flat float64 slices; shape is the owning
// layer's concern.
type Param struct {
	Name string
	Val  []float64
	Grad []float64
}

func newParam(name string, n int) *Param {
	return &Param{Name: name, Val: make([]float64, n), Grad: make([]float64, n)}
}

// Layer is one differentiable stage of a network. Forward caches whatever
// Backward needs, so calls must be paired: Forward(x) then Backward(grad)
// before the next Forward. Backward adds into the layer's parameter
// gradients and returns the gradient w.r.t. its input.
type Layer interface {
	Forward(x []float64, train bool) []float64
	Backward(grad []float64) []float64
	Params() []*Param
	// OutSize returns the length of the layer's output given its
	// configured input size.
	OutSize() int
}

// Network is a sequential stack of layers producing logits.
type Network struct {
	Layers []Layer
}

// Forward runs x through all layers. train selects training-time behaviour
// (e.g. batch-norm statistics updates).
func (n *Network) Forward(x []float64, train bool) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient of the loss w.r.t. the network output
// back through all layers, accumulating parameter gradients.
func (n *Network) Backward(grad []float64) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params returns all trainable parameters of the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	var c int
	for _, p := range n.Params() {
		c += len(p.Val)
	}
	return c
}

// Softmax writes the softmax of logits into a new slice, using the
// max-subtraction trick for numerical stability.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	max := math.Inf(-1)
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// MaskedSoftmax is Softmax restricted to the actions where mask[i] is
// true; masked-out entries get probability 0. It panics if no action is
// legal.
func MaskedSoftmax(logits []float64, mask []bool) []float64 {
	out := make([]float64, len(logits))
	max := math.Inf(-1)
	any := false
	for i, v := range logits {
		if mask[i] && v > max {
			max = v
			any = true
		}
	}
	if !any {
		panic("nn: MaskedSoftmax with no legal action")
	}
	var sum float64
	for i, v := range logits {
		if !mask[i] {
			continue
		}
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func checkLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s length %d, want %d", name, got, want))
	}
}
