package nn

import "math"

// Batched inference forwards. Every layer implements ForwardBatch: the
// matrix form of Forward(x, false) over b row-major input rows, producing
// b row-major output rows that are bit-identical, row by row, to the
// vector path. The batched serving engine (core.BatchEngine) drives one
// matrix forward per lockstep decision round instead of b vector
// forwards, amortizing per-call overhead (layer dispatch, length checks,
// scratch walks) and per-call recomputation (the batch-norm denominators)
// across the whole batch.
//
// Bit-identity discipline: a batched kernel may hoist a subexpression out
// of the row loop only when the hoisted value is computed by exactly the
// same float64 operations as the vector path computes per call (e.g. the
// batch-norm denominator sqrt(Var+Eps), which depends only on frozen
// statistics). Reassociating per-row accumulation, fusing
// multiply-divides, or substituting reciprocal multiplication for
// division would all change low bits and are not allowed — the batch
// engine's determinism proof (DESIGN.md §12) leans on exact equality.
//
// ForwardBatch is inference-only by design: it never updates batch-norm
// running statistics and caches nothing for Backward. Training keeps the
// single-sample path, whose Forward/Backward pairing the REINFORCE
// update requires.

// ForwardBatch runs b row-major input rows (len b*inSize) through all
// layers and returns the logits as b row-major output rows. The returned
// slice is network-owned scratch, valid until the next ForwardBatch call;
// after warm-up the call allocates nothing. Each output row is
// bit-identical to Forward(row, false) on the same network — under
// KernelExact via the exact kernels below, under KernelFast because both
// paths run the very same fused kernels (see fastmath.go).
func (n *Network) ForwardBatch(x []float64, b int) []float64 {
	if b <= 0 {
		panic("nn: ForwardBatch with non-positive batch size")
	}
	if n.kernel == KernelFast {
		n.fastPass = true
		return n.forwardBatchFast(x, b)
	}
	cur := x
	for i, l := range n.Layers {
		need := b * l.OutSize()
		// Ping-pong between two scratch matrices: layer i writes buffer
		// i%2 and reads the other one (or the caller's input), so no
		// layer ever reads the matrix it is overwriting.
		buf := n.batchBuf[i%2]
		if cap(buf) < need {
			buf = make([]float64, need)
			n.batchBuf[i%2] = buf
		}
		dst := buf[:need]
		l.ForwardBatch(dst, cur, b)
		cur = dst
	}
	return cur
}

// ForwardBatch implements the batched Dense forward: dst (b x Out) =
// x (b x In) * W^T + bias. Each row runs the exact per-output
// accumulation loop of the vector path, so rows are bit-identical to
// Forward.
func (d *Dense) ForwardBatch(dst, x []float64, b int) {
	checkLen("Dense batch input", len(x), b*d.In)
	checkLen("Dense batch dst", len(dst), b*d.Out)
	w, bias := d.W.Val, d.B.Val
	in, out := d.In, d.Out
	for r := 0; r < b; r++ {
		xr := x[r*in : (r+1)*in]
		yr := dst[r*out : (r+1)*out]
		for o := range yr {
			row := w[o*in : (o+1)*in]
			s := bias[o]
			for i, xi := range xr {
				s += row[i] * xi
			}
			yr[o] = s
		}
	}
}

// ForwardBatch implements the batched inference-mode BatchNorm forward:
// every row is normalized with the frozen running statistics and the
// affine transform, exactly as Forward(x, false) does per sample. The
// per-feature denominators sqrt(Var+Eps) depend only on the frozen
// statistics, so they are computed once per batch instead of once per
// row — the same float64 values the vector path produces per call.
// Running statistics are never updated here.
func (bn *BatchNorm) ForwardBatch(dst, x []float64, b int) {
	checkLen("BatchNorm batch input", len(x), b*bn.size)
	checkLen("BatchNorm batch dst", len(dst), b*bn.size)
	if bn.den == nil {
		bn.den = make([]float64, bn.size)
	}
	den := bn.den
	for i := range den {
		den[i] = math.Sqrt(bn.Var[i] + bn.Eps)
	}
	gamma, beta, mean := bn.Gamma.Val, bn.Beta.Val, bn.Mean
	for r := 0; r < b; r++ {
		xr := x[r*bn.size : (r+1)*bn.size]
		yr := dst[r*bn.size : (r+1)*bn.size]
		for i, v := range xr {
			nv := (v - mean[i]) / den[i]
			yr[i] = gamma[i]*nv + beta[i]
		}
	}
}

// ForwardBatch applies tanh element-wise over all b rows.
func (a *Tanh) ForwardBatch(dst, x []float64, b int) {
	checkLen("Tanh batch input", len(x), b*a.size)
	checkLen("Tanh batch dst", len(dst), b*a.size)
	for i, v := range x {
		dst[i] = math.Tanh(v)
	}
}

// ForwardBatch applies max(0, x) element-wise over all b rows.
func (a *ReLU) ForwardBatch(dst, x []float64, b int) {
	checkLen("ReLU batch input", len(x), b*a.size)
	checkLen("ReLU batch dst", len(dst), b*a.size)
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}
