package nn

import "math"

// Tanh is an element-wise hyperbolic tangent activation (the activation
// the paper uses in the hidden layer).
type Tanh struct {
	size    int
	lastOut []float64
	gin     []float64
}

// NewTanh creates a Tanh activation for vectors of the given size.
func NewTanh(size int) *Tanh { return &Tanh{size: size} }

// Forward applies tanh element-wise. The returned slice is owned by the
// layer and overwritten by the next Forward call.
func (a *Tanh) Forward(x []float64, _ bool) []float64 {
	checkLen("Tanh input", len(x), a.size)
	if a.lastOut == nil {
		a.lastOut = make([]float64, a.size)
	}
	y := a.lastOut
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

// Backward multiplies by 1 - tanh^2.
func (a *Tanh) Backward(grad []float64) []float64 {
	checkLen("Tanh grad", len(grad), a.size)
	if a.gin == nil {
		a.gin = make([]float64, a.size)
	}
	gin := a.gin
	for i, g := range grad {
		y := a.lastOut[i]
		gin[i] = g * (1 - y*y)
	}
	return gin
}

// Params returns nil: activations have no trainable parameters.
func (a *Tanh) Params() []*Param { return nil }

// OutSize returns the vector size.
func (a *Tanh) OutSize() int { return a.size }

// ReLU is an element-wise rectified linear activation, provided for
// ablation experiments against the paper's tanh choice.
type ReLU struct {
	size   int
	lastIn []float64
	out    []float64
	gin    []float64
}

// NewReLU creates a ReLU activation for vectors of the given size.
func NewReLU(size int) *ReLU { return &ReLU{size: size} }

// Forward applies max(0, x) element-wise. The returned slice is owned by
// the layer and overwritten by the next Forward call.
func (a *ReLU) Forward(x []float64, _ bool) []float64 {
	checkLen("ReLU input", len(x), a.size)
	a.lastIn = x
	if a.out == nil {
		a.out = make([]float64, a.size)
	}
	y := a.out
	for i, v := range x {
		if v > 0 {
			y[i] = v
		} else {
			y[i] = 0
		}
	}
	return y
}

// Backward passes gradient where the input was positive.
func (a *ReLU) Backward(grad []float64) []float64 {
	checkLen("ReLU grad", len(grad), a.size)
	if a.gin == nil {
		a.gin = make([]float64, a.size)
	}
	gin := a.gin
	for i, g := range grad {
		if a.lastIn[i] > 0 {
			gin[i] = g
		} else {
			gin[i] = 0
		}
	}
	return gin
}

// Params returns nil: activations have no trainable parameters.
func (a *ReLU) Params() []*Param { return nil }

// OutSize returns the vector size.
func (a *ReLU) OutSize() int { return a.size }
