package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseForward(t *testing.T) {
	d := NewDense(2, 2, rand.New(rand.NewSource(1)))
	copy(d.W.Val, []float64{1, 2, 3, 4}) // rows: [1 2], [3 4]
	copy(d.B.Val, []float64{10, 20})
	y := d.Forward([]float64{1, -1}, false)
	if !almost(y[0], 1-2+10, 1e-12) || !almost(y[1], 3-4+20, 1e-12) {
		t.Errorf("Forward = %v, want [9 19]", y)
	}
}

func TestDenseInputSizePanics(t *testing.T) {
	d := NewDense(3, 2, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Error("wrong input size did not panic")
		}
	}()
	d.Forward([]float64{1, 2}, false)
}

// lossGrad computes the policy-gradient style loss L = -ln softmax(logits)[a]
// and its gradient w.r.t. logits (= probs - onehot).
func lossGrad(logits []float64, a int) (float64, []float64) {
	p := Softmax(logits)
	g := make([]float64, len(p))
	copy(g, p)
	g[a] -= 1
	return -math.Log(p[a]), g
}

func TestMLPGradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	spec := MLPSpec{In: 3, Hidden: []int{5}, Out: 4, BatchNorm: false, Activation: "tanh"}
	net, err := NewMLP(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 1.1}
	const action = 2

	// Analytic gradients.
	net.ZeroGrad()
	logits := net.Forward(x, false)
	_, g := lossGrad(logits, action)
	net.Backward(g)

	// Finite differences on every parameter.
	const h = 1e-6
	for pi, p := range net.Params() {
		for j := range p.Val {
			orig := p.Val[j]
			p.Val[j] = orig + h
			lp, _ := lossGrad(net.Forward(x, false), action)
			p.Val[j] = orig - h
			lm, _ := lossGrad(net.Forward(x, false), action)
			p.Val[j] = orig
			want := (lp - lm) / (2 * h)
			if !almost(p.Grad[j], want, 1e-5) {
				t.Fatalf("param %d[%d] (%s): grad %v, finite diff %v", pi, j, p.Name, p.Grad[j], want)
			}
		}
	}
}

func TestMLPGradCheckWithBatchNorm(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	spec := MLPSpec{In: 3, Hidden: []int{4}, Out: 3, BatchNorm: true, Activation: "tanh"}
	net, err := NewMLP(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the running stats in train mode, then grad-check in eval mode
	// (where the stats are constants, matching the stop-gradient design).
	for i := 0; i < 50; i++ {
		net.Forward([]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}, true)
	}
	x := []float64{0.5, -1, 0.25}
	const action = 1
	net.ZeroGrad()
	_, g := lossGrad(net.Forward(x, false), action)
	net.Backward(g)

	const h = 1e-6
	for pi, p := range net.Params() {
		for j := range p.Val {
			orig := p.Val[j]
			p.Val[j] = orig + h
			lp, _ := lossGrad(net.Forward(x, false), action)
			p.Val[j] = orig - h
			lm, _ := lossGrad(net.Forward(x, false), action)
			p.Val[j] = orig
			want := (lp - lm) / (2 * h)
			if !almost(p.Grad[j], want, 1e-5) {
				t.Fatalf("param %d[%d] (%s): grad %v, finite diff %v", pi, j, p.Name, p.Grad[j], want)
			}
		}
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	var sum float64
	for _, v := range p {
		sum += v
	}
	if !almost(sum, 1, 1e-12) {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
	// Numerical stability with huge logits.
	p = Softmax([]float64{1000, 1000, 999})
	if math.IsNaN(p[0]) || !almost(p[0], p[1], 1e-12) {
		t.Errorf("unstable softmax: %v", p)
	}
}

func TestMaskedSoftmax(t *testing.T) {
	p := MaskedSoftmax([]float64{5, 1, 1}, []bool{false, true, true})
	if p[0] != 0 {
		t.Errorf("masked entry has probability %v", p[0])
	}
	if !almost(p[1]+p[2], 1, 1e-12) || !almost(p[1], 0.5, 1e-12) {
		t.Errorf("masked softmax wrong: %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("all-masked did not panic")
		}
	}()
	MaskedSoftmax([]float64{1}, []bool{false})
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm(1)
	r := rand.New(rand.NewSource(3))
	// Feed samples centered at 50 with std 5.
	for i := 0; i < 5000; i++ {
		bn.Forward([]float64{50 + 5*r.NormFloat64()}, true)
	}
	if !almost(bn.Mean[0], 50, 1.0) {
		t.Errorf("running mean = %v, want ~50", bn.Mean[0])
	}
	if !almost(math.Sqrt(bn.Var[0]), 5, 1.0) {
		t.Errorf("running std = %v, want ~5", math.Sqrt(bn.Var[0]))
	}
	// In eval mode a sample at the mean normalizes to ~0 (gamma 1, beta 0).
	y := bn.Forward([]float64{50}, false)
	if !almost(y[0], 0, 0.2) {
		t.Errorf("normalized mean sample = %v, want ~0", y[0])
	}
}

func TestBatchNormStateRoundTrip(t *testing.T) {
	bn := NewBatchNorm(3)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		bn.Forward([]float64{r.NormFloat64(), 3 + r.NormFloat64(), -2}, true)
	}
	s := bn.State()
	bn2 := NewBatchNorm(3)
	bn2.SetState(s)
	x := []float64{0.5, 3.5, -2}
	y1 := bn.Forward(x, false)
	y2 := bn2.Forward(x, false)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("outputs differ after state restore: %v vs %v", y1, y2)
		}
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// Minimize f(w) = sum (w_i - target_i)^2.
	target := []float64{3, -2, 0.5}
	p := newParam("w", 3)
	opt := NewAdam([]*Param{p}, 0.05)
	for step := 0; step < 2000; step++ {
		for i := range p.Val {
			p.Grad[i] = 2 * (p.Val[i] - target[i])
		}
		opt.Step(1)
	}
	for i := range p.Val {
		if !almost(p.Val[i], target[i], 1e-2) {
			t.Errorf("w[%d] = %v, want %v", i, p.Val[i], target[i])
		}
	}
	if opt.StepCount() != 2000 {
		t.Errorf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamAscentMaximizes(t *testing.T) {
	// Maximize f(w) = -(w-4)^2; ascent gradient df/dw = -2(w-4).
	p := newParam("w", 1)
	opt := NewAdamAscent([]*Param{p}, 0.05)
	for step := 0; step < 2000; step++ {
		p.Grad[0] = -2 * (p.Val[0] - 4)
		opt.Step(1)
	}
	if !almost(p.Val[0], 4, 1e-2) {
		t.Errorf("w = %v, want 4", p.Val[0])
	}
}

func TestMLPLearnsToClassify(t *testing.T) {
	// Two linearly separable inputs must get different argmax actions
	// after cross-entropy training — sanity that the whole stack learns.
	r := rand.New(rand.NewSource(11))
	spec := MLPSpec{In: 2, Hidden: []int{8}, Out: 2, BatchNorm: true, Activation: "tanh"}
	net, err := NewMLP(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewAdam(net.Params(), 0.01)
	samples := []struct {
		x []float64
		y int
	}{
		{[]float64{1, 0}, 0},
		{[]float64{0, 1}, 1},
		{[]float64{0.9, 0.1}, 0},
		{[]float64{0.2, 0.8}, 1},
	}
	for epoch := 0; epoch < 300; epoch++ {
		for _, s := range samples {
			logits := net.Forward(s.x, true)
			_, g := lossGrad(logits, s.y)
			net.Backward(g)
		}
		opt.Step(float64(len(samples)))
	}
	for _, s := range samples {
		p := Softmax(net.Forward(s.x, false))
		if p[s.y] < 0.8 {
			t.Errorf("input %v: P(correct) = %v, want > 0.8 (probs %v)", s.x, p[s.y], p)
		}
	}
}

func TestMLPSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	spec := MLPSpec{In: 3, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"}
	net, err := NewMLP(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		net.Forward([]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}, true)
	}
	var buf bytes.Buffer
	if err := SaveMLP(&buf, spec, net); err != nil {
		t.Fatal(err)
	}
	spec2, net2, err := LoadMLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.In != spec.In || spec2.Out != spec.Out || spec2.BatchNorm != spec.BatchNorm ||
		spec2.Activation != spec.Activation || len(spec2.Hidden) != len(spec.Hidden) || spec2.Hidden[0] != spec.Hidden[0] {
		t.Errorf("spec mismatch: %+v vs %+v", spec2, spec)
	}
	x := []float64{0.1, -0.2, 0.3}
	y1 := net.Forward(x, false)
	y2 := net2.Forward(x, false)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("outputs differ after round trip: %v vs %v", y1, y2)
		}
	}
}

func TestCloneMLP(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	spec := MLPSpec{In: 2, Hidden: []int{4}, Out: 2, BatchNorm: true}
	net, _ := NewMLP(spec, r)
	for i := 0; i < 10; i++ {
		net.Forward([]float64{r.NormFloat64(), r.NormFloat64()}, true)
	}
	c := CloneMLP(spec, net)
	x := []float64{0.4, -0.9}
	y1, y2 := net.Forward(x, false), c.Forward(x, false)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("clone differs: %v vs %v", y1, y2)
		}
	}
	// Mutating the clone must not affect the original.
	c.Params()[0].Val[0] += 1
	y3 := net.Forward(x, false)
	for i := range y1 {
		if y1[i] != y3[i] {
			t.Fatal("clone shares storage with original")
		}
	}
}

func TestMLPSpecValidate(t *testing.T) {
	bad := []MLPSpec{
		{In: 0, Out: 2},
		{In: 2, Out: 0},
		{In: 2, Out: 2, Hidden: []int{0}},
		{In: 2, Out: 2, Activation: "sigmoid"},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	if err := (MLPSpec{In: 3, Hidden: []int{20}, Out: 3, BatchNorm: true, Activation: "tanh"}).Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestNumParams(t *testing.T) {
	spec := MLPSpec{In: 3, Hidden: []int{20}, Out: 3, BatchNorm: true}
	net, _ := NewMLP(spec, rand.New(rand.NewSource(1)))
	// dense1: 3*20+20, bn: 20+20, dense2: 20*3+3
	want := 3*20 + 20 + 20 + 20 + 20*3 + 3
	if got := net.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestReLU(t *testing.T) {
	a := NewReLU(3)
	y := a.Forward([]float64{-1, 0, 2}, false)
	if y[0] != 0 || y[1] != 0 || y[2] != 2 {
		t.Errorf("ReLU forward = %v", y)
	}
	g := a.Backward([]float64{5, 5, 5})
	if g[0] != 0 || g[1] != 0 || g[2] != 5 {
		t.Errorf("ReLU backward = %v", g)
	}
}

func TestSGDMinimizesQuadratic(t *testing.T) {
	target := []float64{3, -2, 0.5}
	p := newParam("w", 3)
	opt := NewSGD([]*Param{p}, 0.05, 0.9)
	for step := 0; step < 500; step++ {
		for i := range p.Val {
			p.Grad[i] = 2 * (p.Val[i] - target[i])
		}
		opt.Step(1)
	}
	for i := range p.Val {
		if !almost(p.Val[i], target[i], 1e-2) {
			t.Errorf("w[%d] = %v, want %v", i, p.Val[i], target[i])
		}
	}
}

func TestSGDVsMomentumDiffer(t *testing.T) {
	grad := func(p *Param) { p.Grad[0] = 2 * (p.Val[0] - 1) }
	plain := newParam("a", 1)
	mom := newParam("b", 1)
	po := NewSGD([]*Param{plain}, 0.1, 0)
	mo := NewSGD([]*Param{mom}, 0.1, 0.9)
	for i := 0; i < 3; i++ {
		grad(plain)
		po.Step(1)
		grad(mom)
		mo.Step(1)
	}
	if plain.Val[0] == mom.Val[0] {
		t.Error("momentum had no effect")
	}
}
