package nn

import "math"

// Adam implements the Adam stochastic optimizer (Kingma & Ba) over a set
// of parameters. The paper trains with Adam at learning rate 1e-3.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	params   []*Param
	m, v     [][]float64
	t        int
	maximize bool
}

// NewAdam creates an optimizer for the given parameters with the standard
// hyper-parameters (beta1 0.9, beta2 0.999, eps 1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{
		LR:     lr,
		Beta1:  0.9,
		Beta2:  0.999,
		Eps:    1e-8,
		params: params,
		m:      make([][]float64, len(params)),
		v:      make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Val))
		a.v[i] = make([]float64, len(p.Val))
	}
	return a
}

// NewAdamAscent creates an Adam optimizer that performs gradient *ascent*,
// which is what the REINFORCE objective (maximize expected return) wants
// when gradients of the performance measure are accumulated directly.
func NewAdamAscent(params []*Param, lr float64) *Adam {
	a := NewAdam(params, lr)
	a.maximize = true
	return a
}

// Step applies one Adam update from the accumulated gradients and clears
// them. scale divides the gradients first (use it to average over an
// episode's steps).
func (a *Adam) Step(scale float64) {
	if scale == 0 {
		scale = 1
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Val {
			g := p.Grad[j] / scale
			if a.maximize {
				g = -g
			}
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.Val[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			p.Grad[j] = 0
		}
	}
}

// StepCount returns how many optimizer steps have been applied.
func (a *Adam) StepCount() int { return a.t }
