package nn

import (
	"fmt"
	"math"
)

// Adam implements the Adam stochastic optimizer (Kingma & Ba) over a set
// of parameters. The paper trains with Adam at learning rate 1e-3.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	params   []*Param
	m, v     [][]float64
	t        int
	maximize bool
}

// NewAdam creates an optimizer for the given parameters with the standard
// hyper-parameters (beta1 0.9, beta2 0.999, eps 1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{
		LR:     lr,
		Beta1:  0.9,
		Beta2:  0.999,
		Eps:    1e-8,
		params: params,
		m:      make([][]float64, len(params)),
		v:      make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Val))
		a.v[i] = make([]float64, len(p.Val))
	}
	return a
}

// NewAdamAscent creates an Adam optimizer that performs gradient *ascent*,
// which is what the REINFORCE objective (maximize expected return) wants
// when gradients of the performance measure are accumulated directly.
func NewAdamAscent(params []*Param, lr float64) *Adam {
	a := NewAdam(params, lr)
	a.maximize = true
	return a
}

// Step applies one Adam update from the accumulated gradients and clears
// them. scale divides the gradients first (use it to average over an
// episode's steps).
func (a *Adam) Step(scale float64) {
	if scale == 0 {
		scale = 1
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Val {
			g := p.Grad[j] / scale
			if a.maximize {
				g = -g
			}
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.Val[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			p.Grad[j] = 0
		}
	}
}

// StepCount returns how many optimizer steps have been applied.
func (a *Adam) StepCount() int { return a.t }

// AdamState is the serializable optimizer state: the step counter and the
// first/second moment estimates, in parameter order. Checkpointing needs
// it because resuming training with fresh moments would change every
// subsequent update (the bias-correction terms depend on t).
type AdamState struct {
	T int         `json:"t"`
	M [][]float64 `json:"m"`
	V [][]float64 `json:"v"`
}

// Snapshot copies the optimizer state into dst, reusing dst's slices when
// they are large enough so a per-batch snapshot allocates only once.
// Returns dst.
func (a *Adam) Snapshot(dst *AdamState) *AdamState {
	dst.T = a.t
	dst.M = copyStateInto(dst.M, a.m)
	dst.V = copyStateInto(dst.V, a.v)
	return dst
}

// State returns a deep copy of the optimizer state.
func (a *Adam) State() AdamState {
	var s AdamState
	a.Snapshot(&s)
	return s
}

// Restore sets the optimizer state from a snapshot taken on an optimizer
// over identically-shaped parameters. It fails (leaving a unchanged) when
// the shapes do not match.
func (a *Adam) Restore(s *AdamState) error {
	if len(s.M) != len(a.m) || len(s.V) != len(a.v) {
		return fmt.Errorf("nn: Adam state has %d/%d moment vectors, want %d", len(s.M), len(s.V), len(a.m))
	}
	for i := range a.m {
		if len(s.M[i]) != len(a.m[i]) || len(s.V[i]) != len(a.v[i]) {
			return fmt.Errorf("nn: Adam state moment %d has %d/%d values, want %d", i, len(s.M[i]), len(s.V[i]), len(a.m[i]))
		}
	}
	a.t = s.T
	for i := range a.m {
		copy(a.m[i], s.M[i])
		copy(a.v[i], s.V[i])
	}
	return nil
}

func copyStateInto(dst, src [][]float64) [][]float64 {
	if len(dst) != len(src) {
		dst = make([][]float64, len(src))
	}
	for i, s := range src {
		if len(dst[i]) != len(s) {
			dst[i] = make([]float64, len(s))
		}
		copy(dst[i], s)
	}
	return dst
}
