package nn

// SGD is plain stochastic gradient descent with optional momentum,
// provided as the ablation counterpart to Adam (the paper chose Adam
// "based on empirical findings"; this makes the comparison runnable).
type SGD struct {
	LR       float64
	Momentum float64
	params   []*Param
	velocity [][]float64
}

// NewSGD creates the optimizer. momentum 0 gives vanilla SGD.
func NewSGD(params []*Param, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params, velocity: make([][]float64, len(params))}
	for i, p := range params {
		s.velocity[i] = make([]float64, len(p.Val))
	}
	return s
}

// Step applies one update from the accumulated gradients and clears them.
// scale divides the gradients first (averaging over a batch).
func (s *SGD) Step(scale float64) {
	if scale == 0 {
		scale = 1
	}
	for i, p := range s.params {
		v := s.velocity[i]
		for j := range p.Val {
			g := p.Grad[j] / scale
			v[j] = s.Momentum*v[j] - s.LR*g
			p.Val[j] += v[j]
			p.Grad[j] = 0
		}
	}
}
