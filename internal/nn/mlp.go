package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// MLPSpec describes the architecture of a small multi-layer perceptron.
// The paper's policy network is {In: k (or k+J), Hidden: [20], Out: k (or
// k+J), BatchNorm: true, Activation: "tanh"}.
type MLPSpec struct {
	In         int    `json:"in"`
	Hidden     []int  `json:"hidden"`
	Out        int    `json:"out"`
	BatchNorm  bool   `json:"batch_norm"`
	Activation string `json:"activation"` // "tanh" or "relu"
}

// Validate checks the spec for obvious mistakes.
func (s MLPSpec) Validate() error {
	if s.In <= 0 || s.Out <= 0 {
		return fmt.Errorf("nn: MLPSpec in/out must be positive, got %d/%d", s.In, s.Out)
	}
	for _, h := range s.Hidden {
		if h <= 0 {
			return fmt.Errorf("nn: MLPSpec hidden size %d invalid", h)
		}
	}
	switch s.Activation {
	case "", "tanh", "relu":
	default:
		return fmt.Errorf("nn: MLPSpec activation %q unknown", s.Activation)
	}
	return nil
}

// NewMLP constructs the network described by spec, with weights drawn
// from r. The output layer produces raw logits; apply Softmax (or
// MaskedSoftmax) outside.
func NewMLP(spec MLPSpec, r *rand.Rand) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	act := func(size int) Layer {
		if spec.Activation == "relu" {
			return NewReLU(size)
		}
		return NewTanh(size)
	}
	var layers []Layer
	in := spec.In
	for _, h := range spec.Hidden {
		layers = append(layers, NewDense(in, h, r))
		if spec.BatchNorm {
			layers = append(layers, NewBatchNorm(h))
		}
		layers = append(layers, act(h))
		in = h
	}
	layers = append(layers, NewDense(in, spec.Out, r))
	return &Network{Layers: layers}, nil
}

// savedNet is the JSON wire format for a network: its spec plus the flat
// values of every parameter and the batch-norm running statistics, in
// layer order.
type savedNet struct {
	Spec   MLPSpec     `json:"spec"`
	Params [][]float64 `json:"params"`
	States [][]float64 `json:"states"`
}

// SaveMLP serializes a network built by NewMLP together with its spec.
func SaveMLP(w io.Writer, spec MLPSpec, net *Network) error {
	var sv savedNet
	sv.Spec = spec
	for _, p := range net.Params() {
		vals := make([]float64, len(p.Val))
		copy(vals, p.Val)
		sv.Params = append(sv.Params, vals)
	}
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			sv.States = append(sv.States, bn.State())
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&sv)
}

// LoadMLP reconstructs a network saved by SaveMLP.
func LoadMLP(r io.Reader) (MLPSpec, *Network, error) {
	var sv savedNet
	if err := json.NewDecoder(r).Decode(&sv); err != nil {
		return MLPSpec{}, nil, fmt.Errorf("nn: decode: %w", err)
	}
	net, err := NewMLP(sv.Spec, rand.New(rand.NewSource(0)))
	if err != nil {
		return MLPSpec{}, nil, err
	}
	ps := net.Params()
	if len(ps) != len(sv.Params) {
		return MLPSpec{}, nil, fmt.Errorf("nn: saved file has %d params, spec needs %d", len(sv.Params), len(ps))
	}
	for i, p := range ps {
		if len(p.Val) != len(sv.Params[i]) {
			return MLPSpec{}, nil, fmt.Errorf("nn: param %d size %d, want %d", i, len(sv.Params[i]), len(p.Val))
		}
		copy(p.Val, sv.Params[i])
	}
	var bi int
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			if bi >= len(sv.States) {
				return MLPSpec{}, nil, fmt.Errorf("nn: missing batch-norm state %d", bi)
			}
			bn.SetState(sv.States[bi])
			bi++
		}
	}
	return sv.Spec, net, nil
}

// CloneMLP deep-copies a network built by NewMLP (used to snapshot the
// best policy seen during training). The clone inherits the source's
// kernel selection, so fast-kernel serving clones stay fast through
// pool refills and worker fan-out.
func CloneMLP(spec MLPSpec, net *Network) *Network {
	c, err := NewMLP(spec, rand.New(rand.NewSource(0)))
	if err != nil {
		panic(err) // spec was already validated when net was built
	}
	c.kernel = net.kernel
	src, dst := net.Params(), c.Params()
	for i := range src {
		copy(dst[i].Val, src[i].Val)
	}
	var bns []*BatchNorm
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			bns = append(bns, bn)
		}
	}
	var bi int
	for _, l := range c.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			bn.SetState(bns[bi].State())
			bi++
		}
	}
	return c
}
