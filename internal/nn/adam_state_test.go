package nn

import (
	"math"
	"math/rand"
	"testing"
)

func testSpec() MLPSpec {
	return MLPSpec{In: 4, Hidden: []int{8}, Out: 3, BatchNorm: true, Activation: "tanh"}
}

// testNetWithSteps builds a small MLP and runs a few optimizer steps so
// Adam's moments are non-trivial.
func testNetWithSteps(t *testing.T, steps int) (*Network, *Adam) {
	t.Helper()
	r := rand.New(rand.NewSource(3))
	net, err := NewMLP(testSpec(), r)
	if err != nil {
		t.Fatal(err)
	}
	adam := NewAdam(net.Params(), 1e-2)
	in := make([]float64, 4)
	grad := make([]float64, 3)
	for s := 0; s < steps; s++ {
		for i := range in {
			in[i] = r.NormFloat64()
		}
		out := net.Forward(in, false)
		for i := range grad {
			grad[i] = out[i] - 0.5
		}
		net.ZeroGrad()
		net.Backward(grad)
		adam.Step(1)
	}
	return net, adam
}

func stepOnce(net *Network, adam *Adam) {
	in := []float64{1, -1, 0.5, 0}
	net.Forward(in, false)
	net.ZeroGrad()
	net.Backward([]float64{0.1, -0.2, 0.3})
	adam.Step(1)
}

// TestAdamStateRoundTrip: Snapshot/Restore must reproduce the optimizer
// exactly — identical parameters after identical further updates.
func TestAdamStateRoundTrip(t *testing.T) {
	netA, adamA := testNetWithSteps(t, 5)
	st := adamA.State()
	if st.T != 5 {
		t.Fatalf("snapshot T = %d, want 5", st.T)
	}

	// A second, differently-evolved optimizer over an identical network
	// adopts the snapshot; both must then step identically.
	netB, adamB := testNetWithSteps(t, 9)
	netB.SetParams(netA.FlattenParams(nil))
	if err := adamB.Restore(&st); err != nil {
		t.Fatal(err)
	}

	stepOnce(netA, adamA)
	stepOnce(netB, adamB)
	pa, pb := netA.FlattenParams(nil), netB.FlattenParams(nil)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("param %d diverged after restore: %v != %v", i, pa[i], pb[i])
		}
	}
}

// TestAdamRestoreRejectsShapeMismatch: restoring moments from a different
// architecture must error, not silently corrupt the optimizer.
func TestAdamRestoreRejectsShapeMismatch(t *testing.T) {
	_, adam := testNetWithSteps(t, 1)
	bad := AdamState{T: 1, M: [][]float64{{0}}, V: [][]float64{{0}}}
	if err := adam.Restore(&bad); err == nil {
		t.Error("mismatched AdamState accepted")
	}
}

// TestFlattenSetParamsRoundTrip: SetParams(FlattenParams()) is identity,
// and ParamsFinite detects injected poison.
func TestFlattenSetParamsRoundTrip(t *testing.T) {
	net, _ := testNetWithSteps(t, 2)
	flat := net.FlattenParams(nil)
	other, err := NewMLP(testSpec(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	other.SetParams(flat)
	back := other.FlattenParams(nil)
	for i := range flat {
		if flat[i] != back[i] {
			t.Fatalf("param %d changed in round trip", i)
		}
	}
	if !net.ParamsFinite() {
		t.Error("healthy net reported non-finite params")
	}
	flat[len(flat)/2] = math.NaN()
	net.SetParams(flat)
	if net.ParamsFinite() {
		t.Error("NaN parameter went undetected")
	}
}

// TestBatchNormInitedFlag: a training forward initializes the running
// statistics, and the explicit flag accessors can reset that — the
// property checkpoint restore depends on.
func TestBatchNormInitedFlag(t *testing.T) {
	bn := NewBatchNorm(3)
	if bn.Inited() {
		t.Fatal("fresh BatchNorm claims initialized statistics")
	}
	bn.Forward([]float64{1, 2, 3}, true)
	if !bn.Inited() {
		t.Fatal("training forward did not initialize statistics")
	}
	bn.SetInited(false)
	if bn.Inited() {
		t.Fatal("SetInited(false) ignored")
	}
}
