package nn

import "math"

// BatchNorm normalizes each feature with running mean/variance statistics
// and applies a learnable affine transform (gamma, beta). The paper applies
// batch normalization before the hidden activation "to avoid data scale
// issues" — the state features are raw trajectory errors whose magnitude
// varies wildly across datasets and measures.
//
// REINFORCE consumes one state at a time, so there is no minibatch to
// normalize over. Instead the layer keeps exponential running statistics,
// updated during training and frozen at inference, and normalizes every
// sample with them (the standard batch-norm inference path). Gradients flow
// through gamma and beta; the running statistics are treated as constants
// (stop-gradient), which is the usual simplification for online
// normalization and is stable for nets this small.
type BatchNorm struct {
	size     int
	Gamma    *Param
	Beta     *Param
	Mean     []float64 // running mean
	Var      []float64 // running variance
	Momentum float64   // update rate for running stats
	Eps      float64

	lastNorm []float64 // cached normalized input for Backward
	out      []float64 // reused across Forward calls
	gin      []float64 // reused across Backward calls
	den      []float64 // per-feature sqrt(Var+Eps) scratch for ForwardBatch
	fscale   []float64 // folded affine scale scratch for the fused fast kernel
	fshift   []float64 // folded affine shift scratch for the fused fast kernel
	inited   bool
}

// NewBatchNorm creates a BatchNorm layer over vectors of the given size.
func NewBatchNorm(size int) *BatchNorm {
	bn := &BatchNorm{
		size:     size,
		Gamma:    newParam("gamma", size),
		Beta:     newParam("beta", size),
		Mean:     make([]float64, size),
		Var:      make([]float64, size),
		Momentum: 0.01,
		Eps:      1e-5,
	}
	for i := range bn.Gamma.Val {
		bn.Gamma.Val[i] = 1
		bn.Var[i] = 1
	}
	return bn
}

// Forward normalizes x with the running statistics and applies the affine
// transform. In training mode the running statistics absorb the sample
// first.
func (bn *BatchNorm) Forward(x []float64, train bool) []float64 {
	checkLen("BatchNorm input", len(x), bn.size)
	if train {
		if !bn.inited {
			// Seed the statistics with the first sample to avoid a long
			// warm-up from the arbitrary (0, 1) initialization.
			copy(bn.Mean, x)
			bn.inited = true
		}
		m := bn.Momentum
		for i, v := range x {
			d := v - bn.Mean[i]
			bn.Mean[i] += m * d
			bn.Var[i] = (1-m)*bn.Var[i] + m*d*d
		}
	}
	if bn.out == nil {
		bn.out = make([]float64, bn.size)
		bn.lastNorm = make([]float64, bn.size)
	}
	y, norm := bn.out, bn.lastNorm
	for i, v := range x {
		nv := (v - bn.Mean[i]) / math.Sqrt(bn.Var[i]+bn.Eps)
		norm[i] = nv
		y[i] = bn.Gamma.Val[i]*nv + bn.Beta.Val[i]
	}
	return y
}

// Backward accumulates gamma/beta gradients and returns the input gradient
// through the frozen normalization.
func (bn *BatchNorm) Backward(grad []float64) []float64 {
	checkLen("BatchNorm grad", len(grad), bn.size)
	if bn.gin == nil {
		bn.gin = make([]float64, bn.size)
	}
	gin := bn.gin
	for i, g := range grad {
		bn.Gamma.Grad[i] += g * bn.lastNorm[i]
		bn.Beta.Grad[i] += g
		gin[i] = g * bn.Gamma.Val[i] / math.Sqrt(bn.Var[i]+bn.Eps)
	}
	return gin
}

// Params returns gamma and beta.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutSize returns the vector size.
func (bn *BatchNorm) OutSize() int { return bn.size }

// State returns the running statistics (mean then variance), used by
// serialization.
func (bn *BatchNorm) State() []float64 {
	s := make([]float64, 0, 2*bn.size)
	s = append(s, bn.Mean...)
	return append(s, bn.Var...)
}

// SetState restores running statistics captured by State.
func (bn *BatchNorm) SetState(s []float64) {
	checkLen("BatchNorm state", len(s), 2*bn.size)
	copy(bn.Mean, s[:bn.size])
	copy(bn.Var, s[bn.size:])
	bn.inited = true
}

// Inited reports whether the running statistics have absorbed at least one
// training sample. SetState marks the layer initialized (a saved policy has
// meaningful statistics), so checkpoints that must reproduce a fresh layer
// bit for bit record the flag separately and restore it with SetInited.
func (bn *BatchNorm) Inited() bool { return bn.inited }

// SetInited overrides the statistics-initialization flag; see Inited.
func (bn *BatchNorm) SetInited(v bool) { bn.inited = v }

// copyStatsFrom copies the running statistics (and their initialization
// flag) from another layer of the same size, without allocating.
func (bn *BatchNorm) copyStatsFrom(src *BatchNorm) {
	checkLen("BatchNorm stats", src.size, bn.size)
	copy(bn.Mean, src.Mean)
	copy(bn.Var, src.Var)
	bn.inited = src.inited
}
