package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestFastTanhKernel is the kernel-level contract test: a dense sweep of
// the active range plus every special value the satellite of the
// tolerance pillar names. The sweep asserts the published bound
// (FastTanhMaxAbsError), not the measured error, so coefficient or
// clamp changes that eat the margin fail here before they reach the
// probability-level pillar in internal/check.
func TestFastTanhKernel(t *testing.T) {
	// Dense sweep over [-20, 20]: 4M evenly spaced points plus 100k
	// log-spaced magnitudes (the fit error is not uniform in x, and the
	// tiny-|x| regime exercises the p/q cancellation).
	const n = 4_000_000
	maxErr, at := 0.0, 0.0
	for i := 0; i <= n; i++ {
		x := -20 + 40*float64(i)/float64(n)
		e := math.Abs(FastTanh(x) - math.Tanh(x))
		if e > maxErr {
			maxErr, at = e, x
		}
	}
	for i := 0; i < 100_000; i++ {
		x := math.Pow(10, -12+13.4*float64(i)/100_000) // 1e-12 .. ~2.5e1
		for _, s := range []float64{x, -x} {
			e := math.Abs(FastTanh(s) - math.Tanh(s))
			if e > maxErr {
				maxErr, at = e, s
			}
		}
	}
	t.Logf("measured max abs error %.3e at x=%g (published bound %.1e)", maxErr, at, FastTanhMaxAbsError)
	if maxErr > FastTanhMaxAbsError {
		t.Fatalf("FastTanh max abs error %.3e at x=%g exceeds published bound %.1e",
			maxErr, at, FastTanhMaxAbsError)
	}

	// Signed zeros pass through exactly.
	if v := FastTanh(0); v != 0 || math.Signbit(v) {
		t.Errorf("FastTanh(+0) = %v, want +0", v)
	}
	if v := FastTanh(math.Copysign(0, -1)); v != 0 || !math.Signbit(v) {
		t.Errorf("FastTanh(-0) = %v, want -0", v)
	}

	// Denormals: no trap, no NaN, error under the bound, sign preserved
	// or exactly zero (the numerator may underflow).
	for _, x := range []float64{5e-324, -5e-324, 1e-310, -1e-310, 2.2e-308, -2.2e-308} {
		v := FastTanh(x)
		if math.IsNaN(v) {
			t.Fatalf("FastTanh(%g) = NaN", x)
		}
		if math.Abs(v-math.Tanh(x)) > FastTanhMaxAbsError {
			t.Errorf("FastTanh(%g) = %v, error above bound", x, v)
		}
		if v != 0 && math.Signbit(v) != math.Signbit(x) {
			t.Errorf("FastTanh(%g) = %v: sign flipped", x, v)
		}
	}

	// Exact saturation at the extremes: every |x| >= 20 — including the
	// infinities — returns exactly ±1, matching math.Tanh's own rounded
	// value there.
	for _, x := range []float64{20, 25, 1e6, 1e300, math.Inf(1)} {
		if v := FastTanh(x); v != 1 {
			t.Errorf("FastTanh(%g) = %v, want exactly 1", x, v)
		}
		if v := FastTanh(-x); v != -1 {
			t.Errorf("FastTanh(%g) = %v, want exactly -1", -x, v)
		}
	}

	// NaN propagates.
	if v := FastTanh(math.NaN()); !math.IsNaN(v) {
		t.Errorf("FastTanh(NaN) = %v, want NaN", v)
	}

	// Odd symmetry is exact: the rational form is odd in x and the
	// clamp/saturation branches are symmetric.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 10_000; i++ {
		x := r.NormFloat64() * math.Pow(10, float64(r.Intn(9)-4))
		if FastTanh(-x) != -FastTanh(x) {
			t.Fatalf("FastTanh(-%g) != -FastTanh(%g)", x, x)
		}
	}
}

// TestFastTanhVecMatchesScalar pins the open-coded kernel loop to the
// scalar FastTanh bit for bit — the two are the same ops by
// construction, and this keeps them that way.
func TestFastTanhVecMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	xs := make([]float64, 0, 20_000)
	for i := 0; i < 4096; i++ {
		xs = append(xs, r.NormFloat64()*math.Pow(10, float64(r.Intn(13)-6)))
	}
	xs = append(xs, 0, math.Copysign(0, -1), 5e-324, -5e-324, 9, -9, 20, -20,
		math.Inf(1), math.Inf(-1), math.NaN(), 8.999999999, 19.999999, 1e300, -1e300)
	got := append([]float64(nil), xs...)
	fastTanhVec(got)
	for i, x := range xs {
		want := FastTanh(x)
		if got[i] != want && !(math.IsNaN(got[i]) && math.IsNaN(want)) {
			t.Fatalf("fastTanhVec(%g) = %v, FastTanh = %v", x, got[i], want)
		}
	}
}

// fastNet builds a warmed-up paper-shape network and returns it with its
// KernelFast twin (same weights and statistics, fast kernel selected).
func fastNet(t *testing.T, spec MLPSpec, seed int64) (*Network, *Network) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	net, err := NewMLP(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		net.Forward(randStates(r, 1, spec.In), true)
	}
	fast := CloneMLP(spec, net)
	fast.SetKernel(KernelFast)
	return net, fast
}

// TestForwardBatchFastTolerance bounds the fast batch kernel against the
// exact one across architectures (with and without batch-norm, tanh and
// relu, multi-hidden) and asserts the fused relu matches exactly —
// fusion only reassociates the batch-norm affine, and relu stacks carry
// no approximation at all unless batch-norm is present.
func TestForwardBatchFastTolerance(t *testing.T) {
	specs := []MLPSpec{
		{In: 3, Hidden: []int{20}, Out: 3, BatchNorm: true, Activation: "tanh"},
		{In: 5, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"},
		{In: 5, Hidden: []int{16}, Out: 5, BatchNorm: true, Activation: "relu"},
		{In: 4, Hidden: []int{8, 8}, Out: 6, BatchNorm: true, Activation: "tanh"},
		{In: 7, Hidden: []int{12}, Out: 2, BatchNorm: false, Activation: "tanh"},
		{In: 2, Hidden: nil, Out: 4, BatchNorm: false, Activation: ""},
	}
	r := rand.New(rand.NewSource(99))
	for _, spec := range specs {
		net, fast := fastNet(t, spec, 21)
		for _, b := range []int{1, 3, 16, 64} {
			x := randStates(r, b, spec.In)
			exact := append([]float64(nil), net.ForwardBatch(x, b)...)
			// Copy: the fast vector Forward below shares the same
			// network-owned scratch the batch forward returns.
			got := append([]float64(nil), fast.ForwardBatch(x, b)...)
			// Logit error compounds through at most two tanh layers and
			// the output affine; 1e-4 is ~3 orders of magnitude of
			// margin for these widths.
			const tol = 1e-4
			for i := range exact {
				if math.Abs(got[i]-exact[i]) > tol {
					t.Fatalf("%+v b=%d logit %d: fast %v vs exact %v", spec, b, i, got[i], exact[i])
				}
			}
			// The fast vector forward must be bit-identical to the fast
			// batch rows — it is the same fused kernel at b=1.
			for row := 0; row < b; row++ {
				want := got[row*spec.Out : (row+1)*spec.Out]
				vec := fast.Forward(x[row*spec.In:(row+1)*spec.In], false)
				for o := range want {
					if vec[o] != want[o] {
						t.Fatalf("%+v b=%d row %d: fast vector %v != fast batch %v", spec, b, row, vec[o], want[o])
					}
				}
			}
		}
	}
}

// TestForwardBatchFastZeroAlloc pins the fused path's allocation
// contract: after warm-up, nothing per call at any width.
func TestForwardBatchFastZeroAlloc(t *testing.T) {
	spec := MLPSpec{In: 5, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"}
	_, fast := fastNet(t, spec, 5)
	r := rand.New(rand.NewSource(8))
	x := randStates(r, 64, spec.In)
	fast.ForwardBatch(x, 64)
	for _, b := range []int{64, 16, 1, 64} {
		b := b
		allocs := testing.AllocsPerRun(10, func() {
			fast.ForwardBatch(x[:b*spec.In], b)
		})
		if allocs != 0 {
			t.Fatalf("fast ForwardBatch(b=%d) allocates %.1f per call, want 0", b, allocs)
		}
	}
}

// TestForwardVectorZeroAlloc is the satellite regression test for the
// non-batch serving hot path: a warmed-up inference Forward — Dense,
// BatchNorm and Tanh all reusing their layer-owned buffers — allocates
// nothing per call, in both kernels.
func TestForwardVectorZeroAlloc(t *testing.T) {
	spec := MLPSpec{In: 5, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"}
	net, fast := fastNet(t, spec, 6)
	r := rand.New(rand.NewSource(9))
	x := randStates(r, 1, spec.In)
	for name, n := range map[string]*Network{"exact": net, "fast": fast} {
		n.Forward(x, false) // warm layer buffers / fused scratch
		allocs := testing.AllocsPerRun(10, func() {
			n.Forward(x, false)
		})
		if allocs != 0 {
			t.Fatalf("%s Forward allocates %.1f per call, want 0", name, allocs)
		}
	}
}

// TestKernelCloneAndGuards pins the plumbing: clones inherit the kernel,
// training-mode forwards stay exact (and keep updating statistics), and
// Backward refuses to run after a fast forward instead of producing
// silently wrong gradients.
func TestKernelCloneAndGuards(t *testing.T) {
	spec := MLPSpec{In: 3, Hidden: []int{8}, Out: 3, BatchNorm: true, Activation: "tanh"}
	_, fast := fastNet(t, spec, 77)
	if got := CloneMLP(spec, fast).Kernel(); got != KernelFast {
		t.Fatalf("CloneMLP dropped the kernel: got %v", got)
	}

	// Training-mode forward on a fast network still runs the exact layer
	// path (statistics move; Backward works afterwards).
	var bn *BatchNorm
	for _, l := range fast.Layers {
		if b, ok := l.(*BatchNorm); ok {
			bn = b
		}
	}
	r := rand.New(rand.NewSource(3))
	before := append([]float64(nil), bn.Mean...)
	out := fast.Forward(randStates(r, 1, spec.In), true)
	moved := false
	for i := range before {
		if bn.Mean[i] != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("training-mode forward on a KernelFast network did not update statistics")
	}
	fast.Backward(make([]float64, len(out))) // must not panic after an exact pass

	// Inference forward flips to the fast kernel; Backward must refuse.
	fast.Forward(randStates(r, 1, spec.In), false)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after a fast forward did not panic")
		}
	}()
	fast.Backward(make([]float64, spec.Out))
}

func BenchmarkFastTanh(b *testing.B) {
	xs := make([]float64, 1024)
	r := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = r.NormFloat64() * 3
	}
	var sink float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, x := range xs {
			sink += FastTanh(x)
		}
	}
	benchScalarSink = sink
}

func BenchmarkMathTanh(b *testing.B) {
	xs := make([]float64, 1024)
	r := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = r.NormFloat64() * 3
	}
	var sink float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, x := range xs {
			sink += math.Tanh(x)
		}
	}
	benchScalarSink = sink
}

func BenchmarkForwardBatch64Fast(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	spec := MLPSpec{In: 5, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"}
	net, _ := NewMLP(spec, r)
	for i := 0; i < 200; i++ {
		net.Forward(randStates(r, 1, spec.In), true)
	}
	net.SetKernel(KernelFast)
	x := randStates(r, 64, spec.In)
	net.ForwardBatch(x, 64)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchSink = net.ForwardBatch(x, 64)
	}
}

var benchScalarSink float64
