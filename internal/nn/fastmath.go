package nn

import "math"

// FastMath inference kernels. The exact inference paths (Forward,
// ForwardBatch with KernelExact) are bit-identical to the single-sample
// training forward, which caps their speed: math.Tanh alone is roughly
// half the forward cost at the paper's 20-unit policy, and the
// bit-identity contract (batch.go) forbids approximating it or fusing
// the Dense/BatchNorm/activation row traversals. KernelFast is the
// explicit, opt-in relaxation of that contract:
//
//   - math.Tanh is replaced by FastTanh, a rational approximation with a
//     published maximum absolute error (FastTanhMaxAbsError);
//   - the frozen-BatchNorm normalization (x-mean)/sqrt(Var+Eps) followed
//     by gamma*nv+beta is algebraically folded into a per-feature
//     scale/shift pair and from there all the way into the Dense weights
//     and bias, so the matmul pass carries no affine work at all; the
//     activation then runs once over the cache-hot logits matrix. Two
//     traversals where the exact path makes three (plus a divide per
//     element), at the cost of reassociating the float64 operations.
//
// The divergence this buys is measured, not hoped: the tolerance pillar
// in internal/check bounds the probability error of the fast path
// against the exact path over every adversarial generator family and
// asserts that greedy (argmax) decisions never change — the invariant
// production callers actually rely on (DESIGN.md §13).
//
// KernelFast is inference-only. The fast forwards populate none of the
// layer caches Backward consumes, so Network.Backward panics after a
// fast forward rather than silently computing garbage gradients.
// Training code never selects it; serving sets it on dedicated policy
// clones (core.Trained.FastClone).

// Kernel selects the arithmetic contract of a network's inference
// forwards.
type Kernel int

const (
	// KernelExact is the default: every inference forward (vector or
	// batch) is bit-identical to the single-sample training forward.
	KernelExact Kernel = iota
	// KernelFast selects the fused approximate inference kernels: tanh
	// via FastTanh, Dense+BatchNorm+activation fused into one traversal.
	// Outputs carry a bounded approximation error; see the package notes
	// above and DESIGN.md §13.
	KernelFast
)

// String names the kernel for bench/serving provenance.
func (k Kernel) String() string {
	if k == KernelFast {
		return "fast"
	}
	return "exact"
}

// SetKernel selects the inference kernel for this network. KernelExact
// (the default) keeps every inference forward bit-identical to the
// training forward; KernelFast enables the fused approximate kernels.
// Training-mode forwards (train=true) always run exact.
func (n *Network) SetKernel(k Kernel) { n.kernel = k }

// Kernel reports the selected inference kernel.
func (n *Network) Kernel() Kernel { return n.kernel }

// Contract constants of the FastMath kernels, asserted continuously by
// internal/nn's dense-sweep test and internal/check's tolerance pillar.
// They are published bounds with margin over the measured worst case,
// not the measured values themselves (measured: tanh 4.4e-8 over a
// 4M-point sweep of [-20, 20]; probs abs 1.1e-7 and rel 1.3e-6 over the
// adversarial families at the harness seeds).
const (
	// FastTanhMaxAbsError bounds |FastTanh(x) - math.Tanh(x)| over all
	// finite x.
	FastTanhMaxAbsError = 1e-7
	// FastProbsMaxAbsError bounds the absolute error of any probability
	// produced by a KernelFast ProbsBatch/Probs against the exact path
	// on the same state, for the policy shapes this system trains
	// (paper-scale MLPs; the bound scales with the L1 norm of the output
	// layer rows, see DESIGN.md §13).
	FastProbsMaxAbsError = 1e-5
	// FastProbsMaxRelError bounds the relative error of any such
	// probability (equivalently ~FastProbsMaxRelError/epsilon ULPs: the
	// ULP distance of two positive float64s within relative distance r
	// is at most r/2^-52 plus one). Probabilities below
	// FastProbsRelFloor are exempt — softmax tails lose absolute
	// precision faster than any approximation contract can promise.
	FastProbsMaxRelError = 1e-4
	// FastProbsRelFloor is the probability magnitude below which only
	// the absolute bound applies.
	FastProbsRelFloor = 1e-9
)

// fastTanhSat is the |x| beyond which FastTanh returns exactly ±1.
// tanh(20) = 1 - ~8.2e-18, which rounds to 1.0 in float64, so the
// saturation is not merely within tolerance — it matches math.Tanh's own
// rounded value.
const fastTanhSat = 20

// fastTanhClamp is the fit boundary of the rational approximation:
// inputs beyond it are clamped, which costs at most 1-tanh(9) ~ 3.1e-8
// of absolute error — under the published bound.
const fastTanhClamp = 9

// Coefficients of the odd 13/6-degree rational minimax fit of tanh on
// [-9, 9] — the classic coefficient set used by Eigen's and XLA's fast
// tanh kernels. The fit targets ~1e-8 absolute error; evaluated in
// float64 the fit error dominates rounding.
const (
	tanhA1  = 4.89352455891786e-03
	tanhA3  = 6.37261928875436e-04
	tanhA5  = 1.48572235717979e-05
	tanhA7  = 5.12229709037114e-08
	tanhA9  = -8.60467152213735e-11
	tanhA11 = 2.00018790482477e-13
	tanhA13 = -2.76076847742355e-16
	tanhB0  = 4.89352518554385e-03
	tanhB2  = 2.26843463243900e-03
	tanhB4  = 1.18534705686654e-04
	tanhB6  = 1.19825839466702e-06
)

// FastTanh approximates math.Tanh with |error| <= FastTanhMaxAbsError
// for every finite input, at a fraction of the cost (no exp, no
// branching beyond range checks). Totality contract: NaN propagates,
// ±Inf and every |x| >= 20 return exactly ±1, ±0 return ±0, denormal
// inputs neither trap nor produce error above the bound, and
// FastTanh(-x) == -FastTanh(x) exactly (the rational form is odd and
// the clamps are symmetric).
func FastTanh(x float64) float64 {
	if x != x { // NaN
		return x
	}
	if x >= fastTanhSat {
		return 1
	}
	if x <= -fastTanhSat {
		return -1
	}
	if x > fastTanhClamp {
		x = fastTanhClamp
	} else if x < -fastTanhClamp {
		x = -fastTanhClamp
	}
	x2 := x * x
	p := x * (tanhA1 + x2*(tanhA3+x2*(tanhA5+x2*(tanhA7+x2*(tanhA9+x2*(tanhA11+x2*tanhA13))))))
	q := tanhB0 + x2*(tanhB2+x2*(tanhB4+x2*tanhB6))
	return p / q
}

// fusedAct names the activation folded into a fused Dense kernel.
type fusedAct int

const (
	actNone fusedAct = iota
	actTanh
	actReLU
)

// forwardBatchFast is the KernelFast batch forward: it walks the layer
// stack fusing every Dense [+ BatchNorm] [+ Tanh/ReLU] run into a single
// traversal of the output matrix. Layers outside that pattern (none are
// produced by NewMLP, but the Layer interface admits them) fall back to
// their exact batched kernel, so fast mode is never slower than exact on
// a foreign stack. Scratch discipline mirrors ForwardBatch: ping-pong
// between the two network-owned buffers, zero allocations after warm-up.
func (n *Network) forwardBatchFast(x []float64, b int) []float64 {
	cur := x
	which := 0
	for i := 0; i < len(n.Layers); {
		d, ok := n.Layers[i].(*Dense)
		if !ok {
			l := n.Layers[i]
			dst := n.fastScratch(which, b*l.OutSize())
			l.ForwardBatch(dst, cur, b)
			cur = dst
			which ^= 1
			i++
			continue
		}
		j := i + 1
		var bn *BatchNorm
		if j < len(n.Layers) {
			if v, ok := n.Layers[j].(*BatchNorm); ok {
				bn = v
				j++
			}
		}
		act := actNone
		if j < len(n.Layers) {
			switch n.Layers[j].(type) {
			case *Tanh:
				act = actTanh
				j++
			case *ReLU:
				act = actReLU
				j++
			}
		}
		dst := n.fastScratch(which, b*d.Out)
		d.forwardBatchFused(dst, cur, b, bn, act)
		cur = dst
		which ^= 1
		i = j
	}
	return cur
}

// fastScratch returns one of the two ping-pong scratch matrices resized
// to need, growing its backing array on demand.
func (n *Network) fastScratch(which, need int) []float64 {
	buf := n.batchBuf[which]
	if cap(buf) < need {
		buf = make([]float64, need)
		n.batchBuf[which] = buf
	}
	return buf[:need]
}

// forwardBatchFused computes dst = act(scale*(x*W^T + bias) + shift) in
// two passes instead of the exact path's three-plus (Dense write,
// BatchNorm divide/read/write, activation read/write, with math.Tanh
// calls): the batch-norm affine is folded all the way into a private
// folded copy of the weights and bias (foldedWeights), so the matmul
// pass carries literally zero extra work over a plain Dense matmul;
// then the activation runs once over the whole still-cache-hot logits
// matrix via the open-coded fastTanhVec. Both loops are kept free of
// opaque function calls (a call in the inner loop forces the
// accumulator and slice headers out of registers, measured at ~2x on
// the dense part alone). The in==3 case — the paper's state size, every
// serving hidden layer — is specialized: the three input features live
// in registers across the whole row sweep and the weight matrix is
// scanned linearly with no inner loop.
func (d *Dense) forwardBatchFused(dst, x []float64, b int, bn *BatchNorm, act fusedAct) {
	checkLen("Dense fused input", len(x), b*d.In)
	checkLen("Dense fused dst", len(dst), b*d.Out)
	w, bias := d.W.Val, d.B.Val
	if bn != nil {
		checkLen("Dense fused batch-norm", bn.size, d.Out)
		scale, shift := bn.foldedAffine()
		w, bias = d.foldedWeights(scale, shift)
	}
	in, out := d.In, d.Out
	if in == 3 {
		for r := 0; r < b; r++ {
			x0, x1, x2 := x[r*3], x[r*3+1], x[r*3+2]
			yr := dst[r*out : (r+1)*out]
			for o := range yr {
				row := w[o*3 : o*3+3]
				yr[o] = bias[o] + row[0]*x0 + row[1]*x1 + row[2]*x2
			}
		}
	} else {
		// Register-blocked over four outputs: the exact kernel's single
		// accumulator is a loop-carried add chain (~4 cycles/element on
		// scalar hardware); four independent chains sharing each x load
		// keep the FP units busy and quarter the x reloads.
		for r := 0; r < b; r++ {
			xr := x[r*in : (r+1)*in]
			yr := dst[r*out : (r+1)*out]
			o := 0
			for ; o+4 <= out; o += 4 {
				r0 := w[(o+0)*in : (o+1)*in]
				r1 := w[(o+1)*in : (o+2)*in]
				r2 := w[(o+2)*in : (o+3)*in]
				r3 := w[(o+3)*in : (o+4)*in]
				s0, s1, s2, s3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
				for i, xi := range xr {
					s0 += r0[i] * xi
					s1 += r1[i] * xi
					s2 += r2[i] * xi
					s3 += r3[i] * xi
				}
				yr[o], yr[o+1], yr[o+2], yr[o+3] = s0, s1, s2, s3
			}
			for ; o < out; o++ {
				row := w[o*in : (o+1)*in]
				s := bias[o]
				for i, xi := range xr {
					s += row[i] * xi
				}
				yr[o] = s
			}
		}
	}
	switch act {
	case actTanh:
		fastTanhVec(dst)
	case actReLU:
		for o, v := range dst {
			if !(v > 0) { // mirrors the exact kernel: -0 and NaN map to 0
				dst[o] = 0
			}
		}
	}
}

// foldedWeights folds a batch-norm scale/shift pair all the way into the
// weight matrix and bias:
//
//	scale*(W*x + b) + shift  ==  W'*x + b'
//	W'[o][i] = W[o][i]*scale[o],  b'[o] = b[o]*scale[o] + shift[o]
//
// so the fused matmul loop is a plain Dense matmul with no per-output
// affine work. The fold costs out*(in+1) multiplies per batch — noise
// next to the b*out*in matmul — and is recomputed every batch like
// foldedAffine, so stale statistics are impossible. The scratch is
// layer-private (clones build fresh layers) and reused: zero
// allocations after warm-up. Folding reassociates the float64 ops (the
// scale multiplies distribute into each product); the divergence is
// covered by the same measured contract as the rest of the fast path.
func (d *Dense) foldedWeights(scale, shift []float64) (w, b []float64) {
	if d.fw == nil {
		d.fw = make([]float64, len(d.W.Val))
		d.fb = make([]float64, d.Out)
	}
	in := d.In
	for o := 0; o < d.Out; o++ {
		s := scale[o]
		row := d.W.Val[o*in : (o+1)*in]
		frow := d.fw[o*in : (o+1)*in]
		for i, v := range row {
			frow[i] = v * s
		}
		d.fb[o] = d.B.Val[o]*s + shift[o]
	}
	return d.fw, d.fb
}

// fastTanhVec applies FastTanh element-wise in place. The rational
// evaluation is open-coded so the hot loop carries no per-element call
// overhead and the coefficients stay in registers;
// TestFastTanhVecMatchesScalar pins it to FastTanh bit for bit.
func fastTanhVec(v []float64) {
	for i, x := range v {
		if x != x { // NaN passes through
			continue
		}
		if x >= fastTanhSat {
			v[i] = 1
			continue
		}
		if x <= -fastTanhSat {
			v[i] = -1
			continue
		}
		if x > fastTanhClamp {
			x = fastTanhClamp
		} else if x < -fastTanhClamp {
			x = -fastTanhClamp
		}
		x2 := x * x
		p := x * (tanhA1 + x2*(tanhA3+x2*(tanhA5+x2*(tanhA7+x2*(tanhA9+x2*(tanhA11+x2*tanhA13))))))
		q := tanhB0 + x2*(tanhB2+x2*(tanhB4+x2*tanhB6))
		v[i] = p / q
	}
}

// foldedAffine folds the frozen normalization and the affine transform
// into one per-feature scale/shift pair:
//
//	gamma*(x-mean)/sqrt(Var+Eps) + beta  ==  x*scale + shift
//	scale = gamma/sqrt(Var+Eps),  shift = beta - mean*scale
//
// Recomputed per batch like the exact path's den cache, so stale
// statistics are impossible; the division happens once per feature per
// batch instead of once per element.
func (bn *BatchNorm) foldedAffine() (scale, shift []float64) {
	if bn.fscale == nil {
		bn.fscale = make([]float64, bn.size)
		bn.fshift = make([]float64, bn.size)
	}
	for i := range bn.fscale {
		s := bn.Gamma.Val[i] / math.Sqrt(bn.Var[i]+bn.Eps)
		bn.fscale[i] = s
		bn.fshift[i] = bn.Beta.Val[i] - bn.Mean[i]*s
	}
	return bn.fscale, bn.fshift
}

// forwardFast is the KernelFast vector forward: the b=1 case of
// forwardBatchFast, reusing the same fused kernels and scratch. It
// populates none of the caches Backward needs, so the caller (Forward)
// marks the network fast-dirty first.
func (n *Network) forwardFast(x []float64) []float64 {
	return n.forwardBatchFast(x, 1)
}
