package nn

import (
	"math/rand"
	"testing"
)

// randStates fills a b x in matrix with a mix of magnitudes so the tanh
// fast (polynomial) and slow (exp) paths, relu sign branches and softmax
// ranges are all exercised.
func randStates(r *rand.Rand, b, in int) []float64 {
	x := make([]float64, b*in)
	for i := range x {
		switch i % 3 {
		case 0:
			x[i] = r.NormFloat64() * 0.1
		case 1:
			x[i] = r.NormFloat64()
		default:
			x[i] = r.NormFloat64() * 100
		}
	}
	return x
}

// TestForwardBatchBitIdentical sweeps architectures and batch widths and
// requires exact float64 equality between ForwardBatch rows and the
// vector Forward on the same network.
func TestForwardBatchBitIdentical(t *testing.T) {
	specs := []MLPSpec{
		{In: 3, Hidden: []int{20}, Out: 3, BatchNorm: true, Activation: "tanh"},
		{In: 5, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"},
		{In: 5, Hidden: []int{16}, Out: 5, BatchNorm: true, Activation: "relu"},
		{In: 4, Hidden: []int{8, 8}, Out: 6, BatchNorm: true, Activation: "tanh"},
		{In: 7, Hidden: []int{12}, Out: 2, BatchNorm: false, Activation: "tanh"},
		{In: 2, Hidden: nil, Out: 4, BatchNorm: false, Activation: ""},
	}
	widths := []int{1, 2, 7, 16, 64}
	r := rand.New(rand.NewSource(42))
	for _, spec := range specs {
		net, err := NewMLP(spec, r)
		if err != nil {
			t.Fatalf("NewMLP(%+v): %v", spec, err)
		}
		// Warm up batch-norm statistics with varied samples so the frozen
		// statistics are non-trivial.
		for i := 0; i < 50; i++ {
			net.Forward(randStates(r, 1, spec.In), true)
		}
		for _, b := range widths {
			x := randStates(r, b, spec.In)
			got := net.ForwardBatch(x, b)
			if len(got) != b*spec.Out {
				t.Fatalf("%+v b=%d: output length %d, want %d", spec, b, len(got), b*spec.Out)
			}
			for row := 0; row < b; row++ {
				// The vector forward reuses layer scratch that ForwardBatch
				// does not touch, but run it after capturing the batch row
				// anyway to keep aliasing impossible.
				want := net.Forward(x[row*spec.In:(row+1)*spec.In], false)
				gotRow := got[row*spec.Out : (row+1)*spec.Out]
				for o := range want {
					if gotRow[o] != want[o] {
						t.Fatalf("%+v b=%d row=%d out=%d: batch %v != vector %v",
							spec, b, row, o, gotRow[o], want[o])
					}
				}
			}
		}
	}
}

// TestForwardBatchDoesNotUpdateStats pins the inference-mode contract:
// a batched forward leaves batch-norm running statistics untouched.
func TestForwardBatchDoesNotUpdateStats(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	spec := MLPSpec{In: 3, Hidden: []int{8}, Out: 3, BatchNorm: true, Activation: "tanh"}
	net, err := NewMLP(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		net.Forward(randStates(r, 1, spec.In), true)
	}
	var bn *BatchNorm
	for _, l := range net.Layers {
		if b, ok := l.(*BatchNorm); ok {
			bn = b
		}
	}
	mean := append([]float64(nil), bn.Mean...)
	variance := append([]float64(nil), bn.Var...)
	net.ForwardBatch(randStates(r, 9, spec.In), 9)
	for i := range mean {
		if bn.Mean[i] != mean[i] || bn.Var[i] != variance[i] {
			t.Fatalf("ForwardBatch moved running statistics at feature %d", i)
		}
	}
}

// TestForwardBatchZeroAlloc verifies the warm path allocates nothing and
// that growing then shrinking the batch width reuses the large scratch.
func TestForwardBatchZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	spec := MLPSpec{In: 5, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"}
	net, err := NewMLP(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	x := randStates(r, 64, spec.In)
	net.ForwardBatch(x, 64) // warm up at the largest width
	for _, b := range []int{64, 16, 3, 64} {
		b := b
		allocs := testing.AllocsPerRun(10, func() {
			net.ForwardBatch(x[:b*spec.In], b)
		})
		if allocs != 0 {
			t.Fatalf("ForwardBatch(b=%d) allocates %.1f per call, want 0", b, allocs)
		}
	}
}

func BenchmarkForwardSingle(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	spec := MLPSpec{In: 5, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"}
	net, _ := NewMLP(spec, r)
	for i := 0; i < 200; i++ {
		net.Forward(randStates(r, 1, spec.In), true)
	}
	x := randStates(r, 64, spec.In)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for row := 0; row < 64; row++ {
			benchSink = net.Forward(x[row*spec.In:(row+1)*spec.In], false)
		}
	}
}

func BenchmarkForwardBatch64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	spec := MLPSpec{In: 5, Hidden: []int{20}, Out: 5, BatchNorm: true, Activation: "tanh"}
	net, _ := NewMLP(spec, r)
	for i := 0; i < 200; i++ {
		net.Forward(randStates(r, 1, spec.In), true)
	}
	x := randStates(r, 64, spec.In)
	net.ForwardBatch(x, 64)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchSink = net.ForwardBatch(x, 64)
	}
}

var benchSink []float64
