package query

import (
	"math"
	"testing"
	"testing/quick"

	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func line(n int) traj.Trajectory {
	t := make(traj.Trajectory, n)
	for i := range t {
		t[i] = geo.Pt(float64(i), 0, float64(i))
	}
	return t
}

func TestPositionAt(t *testing.T) {
	tr := line(10)
	tests := []struct {
		ts    float64
		wantX float64
	}{
		{-5, 0},    // clamped before
		{0, 0},     // exactly first
		{4.5, 4.5}, // interpolated
		{9, 9},     // exactly last
		{99, 9},    // clamped after
	}
	for _, tc := range tests {
		got := PositionAt(tr, tc.ts)
		if !almost(got.X, tc.wantX, 1e-12) {
			t.Errorf("PositionAt(%v).X = %v, want %v", tc.ts, got.X, tc.wantX)
		}
	}
	if got := PositionAt(nil, 5); got != (geo.Point{}) {
		t.Error("empty trajectory should give zero point")
	}
}

func TestPositionAtMatchesExactPoints(t *testing.T) {
	tr := gen.New(gen.Geolife(), 1).Trajectory(100)
	for _, i := range []int{0, 17, 50, 99} {
		got := PositionAt(tr, tr[i].T)
		if !almost(got.X, tr[i].X, 1e-9) || !almost(got.Y, tr[i].Y, 1e-9) {
			t.Errorf("PositionAt(t_%d) = %v, want %v", i, got, tr[i])
		}
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(geo.Pt(5, 5, 0)) || !r.Contains(geo.Pt(0, 10, 0)) {
		t.Error("inclusive containment broken")
	}
	if r.Contains(geo.Pt(-1, 5, 0)) || r.Contains(geo.Pt(5, 11, 0)) {
		t.Error("outside point contained")
	}
}

func TestSegmentIntersects(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		name string
		a, b geo.Point
		want bool
	}{
		{"both inside", geo.Pt(2, 2, 0), geo.Pt(8, 8, 1), true},
		{"crossing", geo.Pt(-5, 5, 0), geo.Pt(15, 5, 1), true},
		{"diagonal through corner region", geo.Pt(-1, 9, 0), geo.Pt(9, 19, 1), true},
		{"entirely left", geo.Pt(-5, 2, 0), geo.Pt(-1, 8, 1), false},
		{"diagonal miss", geo.Pt(-2, 11, 0), geo.Pt(11, 24, 1), false},
		{"touching edge", geo.Pt(-5, 10, 0), geo.Pt(5, 10, 1), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.SegmentIntersects(tc.a, tc.b); got != tc.want {
				t.Errorf("segmentIntersects = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestWithinDuring(t *testing.T) {
	// Object moves along y=0 from x=0..9 over t=0..9.
	tr := line(10)
	r := Rect{3, -1, 5, 1}
	if !WithinDuring(tr, r, 0, 9) {
		t.Error("object passes through the rect")
	}
	if !WithinDuring(tr, r, 3.5, 4) {
		t.Error("object inside rect during [3.5, 4]")
	}
	if WithinDuring(tr, r, 6, 9) {
		t.Error("object already past the rect after t=6")
	}
	if WithinDuring(tr, r, 9, 6) {
		t.Error("inverted window accepted")
	}
	far := Rect{100, 100, 110, 110}
	if WithinDuring(tr, far, 0, 9) {
		t.Error("object never near far rect")
	}
}

func TestNearestApproach(t *testing.T) {
	tr := line(10)
	d, at := NearestApproach(tr, geo.Pt(4.5, 3, 0))
	if !almost(d, 3, 1e-9) {
		t.Errorf("distance %v, want 3", d)
	}
	if !almost(at, 4.5, 1e-9) {
		t.Errorf("time %v, want 4.5", at)
	}
	// Query beyond the end clamps to the last point.
	d, _ = NearestApproach(tr, geo.Pt(20, 0, 0))
	if !almost(d, 11, 1e-9) {
		t.Errorf("distance %v, want 11", d)
	}
}

func TestDTWIdentityZero(t *testing.T) {
	tr := gen.New(gen.Truck(), 2).Trajectory(50)
	if got := DTW(tr, tr); got != 0 {
		t.Errorf("DTW(x, x) = %v", got)
	}
	if got := DiscreteFrechet(tr, tr); got != 0 {
		t.Errorf("Frechet(x, x) = %v", got)
	}
}

func TestDTWKnownValue(t *testing.T) {
	a := traj.Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 0, 1)}
	b := traj.Trajectory{geo.Pt(0, 1, 0), geo.Pt(1, 1, 1)}
	// Optimal alignment pairs (a0,b0) and (a1,b1): 1 + 1 = 2.
	if got := DTW(a, b); !almost(got, 2, 1e-12) {
		t.Errorf("DTW = %v, want 2", got)
	}
	// Frechet is the bottleneck: max(1, 1) = 1.
	if got := DiscreteFrechet(a, b); !almost(got, 1, 1e-12) {
		t.Errorf("Frechet = %v, want 1", got)
	}
}

func TestFrechetSymmetricProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := gen.New(gen.Geolife(), seedA).Trajectory(20)
		b := gen.New(gen.Geolife(), seedB).Trajectory(30)
		return almost(DiscreteFrechet(a, b), DiscreteFrechet(b, a), 1e-9) &&
			almost(DTW(a, b), DTW(b, a), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestFrechetBoundsDTWRelationProperty(t *testing.T) {
	// DTW sums ground distances along a coupling; Frechet takes the max
	// along (a possibly different) coupling. DTW >= Frechet always holds
	// since the DTW-optimal coupling's max <= its sum, and Frechet
	// minimizes the max over couplings.
	f := func(seedA, seedB int64) bool {
		a := gen.New(gen.Truck(), seedA).Trajectory(15)
		b := gen.New(gen.Truck(), seedB).Trajectory(25)
		return DTW(a, b) >= DiscreteFrechet(a, b)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSimplificationPreservesQueries(t *testing.T) {
	// The whole point: a good simplification answers queries nearly as
	// well as the raw data. Keeping every second point of a smooth
	// trajectory must give small position error.
	tr := gen.New(gen.Geolife(), 5).Trajectory(200)
	idx := make([]int, 0, 100)
	for i := 0; i < 200; i += 2 {
		idx = append(idx, i)
	}
	if idx[len(idx)-1] != 199 {
		idx = append(idx, 199)
	}
	simp := tr.Pick(idx)
	var worst float64
	for ts := tr[0].T; ts <= tr[len(tr)-1].T; ts += 7 {
		d := geo.Dist(PositionAt(tr, ts), PositionAt(simp, ts))
		if d > worst {
			worst = d
		}
	}
	// Half the points of a 1-5s-sampled walk: interpolation error stays
	// within tens of meters.
	if worst > 100 {
		t.Errorf("worst position error %v — suspicious for a 2x simplification", worst)
	}
}
