package query

// Collection-level query-accuracy helpers: the judge the fleet
// subsystem optimizes for. Collective simplification (arXiv:2311.11204)
// scores a budget allocation not by per-trajectory error but by how
// faithfully the *simplified collection* answers the queries the
// database serves — which trajectories pass through a region, which one
// comes closest to a point, which are a location's nearest neighbours.
// These helpers compute those answer sets over whole collections and
// compare simplified against original.

import (
	"math"
	"sort"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// RangeAnswerSet returns the indices of trajectories whose interpolated
// path enters r at any time within [t1, t2] — the answer set of a
// range query over the collection.
func RangeAnswerSet(ts []traj.Trajectory, r Rect, t1, t2 float64) []int {
	var out []int
	for i, t := range ts {
		if WithinDuring(t, r, t1, t2) {
			out = append(out, i)
		}
	}
	return out
}

// SetRecall returns |want ∩ got| / |want|: the fraction of the true
// answer set a query over the simplified collection still finds. An
// empty true answer set recalls perfectly — there was nothing to miss.
func SetRecall(want, got []int) float64 {
	if len(want) == 0 {
		return 1
	}
	in := make(map[int]bool, len(got))
	for _, i := range got {
		in[i] = true
	}
	hit := 0
	for _, i := range want {
		if in[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// SetF1 returns the F1 score between the true and observed answer sets:
// recall alone rewards over-answering (a simplification whose inflated
// extent sweeps every query rectangle recalls 1.0), F1 penalizes it.
// Both sets empty scores 1; one empty scores 0.
func SetF1(want, got []int) float64 {
	if len(want) == 0 && len(got) == 0 {
		return 1
	}
	if len(want) == 0 || len(got) == 0 {
		return 0
	}
	in := make(map[int]bool, len(want))
	for _, i := range want {
		in[i] = true
	}
	hit := 0
	for _, i := range got {
		if in[i] {
			hit++
		}
	}
	if hit == 0 {
		return 0
	}
	precision := float64(hit) / float64(len(got))
	recall := float64(hit) / float64(len(want))
	return 2 * precision * recall / (precision + recall)
}

// NearestTrajectory returns the index of the collection trajectory whose
// path comes closest to q, with its approach distance. Ties break to
// the lower index; an empty collection returns (-1, +Inf).
func NearestTrajectory(ts []traj.Trajectory, q geo.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, t := range ts {
		if d, _ := NearestApproach(t, q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// KNearest returns the indices of the k trajectories with the smallest
// nearest-approach distance to q, closest first (ties by index). Fewer
// than k trajectories returns them all.
func KNearest(ts []traj.Trajectory, q geo.Point, k int) []int {
	type cand struct {
		i int
		d float64
	}
	cands := make([]cand, 0, len(ts))
	for i, t := range ts {
		d, _ := NearestApproach(t, q)
		cands = append(cands, cand{i: i, d: d})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].i < cands[b].i
	})
	if k > len(cands) {
		k = len(cands)
	}
	if k < 0 {
		k = 0
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].i
	}
	return out
}
