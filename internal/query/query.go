// Package query implements the trajectory query workloads that motivate
// simplification in the first place (the paper's introduction: lowering
// storage cost "and more importantly" the cost of query processing).
// Queries run identically on raw and simplified trajectories, which lets
// the evaluation harness measure how much answer quality a given
// simplification sacrifices:
//
//   - PositionAt: where was the object at time ts?
//   - Rect range queries: was the object inside a region during a window?
//   - NearestApproach: when and how close did the object come to a point?
//   - Similarity: DTW and discrete Fréchet distances between trajectories.
package query

import (
	"math"
	"sort"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// PositionAt returns the interpolated position of the object at time ts,
// clamped to the trajectory's time span. It assumes (and exploits) the
// constant-speed-per-segment interpretation the error measures use.
// The cost is O(log n).
func PositionAt(t traj.Trajectory, ts float64) geo.Point {
	n := len(t)
	if n == 0 {
		return geo.Point{}
	}
	if ts <= t[0].T {
		return t[0]
	}
	if ts >= t[n-1].T {
		return t[n-1]
	}
	// First index with T >= ts.
	i := sort.Search(n, func(i int) bool { return t[i].T >= ts })
	return geo.Seg(t[i-1], t[i]).At(ts)
}

// Rect is an axis-aligned spatial region.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the location of p lies in the rectangle
// (inclusive).
func (r Rect) Contains(p geo.Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// SegmentIntersects reports whether the segment a-b passes through the
// rectangle, via Cohen-Sutherland style outcode rejection plus a
// parametric (Liang-Barsky) clip for the diagonal cases.
func (r Rect) SegmentIntersects(a, b geo.Point) bool {
	if r.Contains(a) || r.Contains(b) {
		return true
	}
	// Trivial rejection: both endpoints strictly on the same outside.
	if (a.X < r.MinX && b.X < r.MinX) || (a.X > r.MaxX && b.X > r.MaxX) ||
		(a.Y < r.MinY && b.Y < r.MinY) || (a.Y > r.MaxY && b.Y > r.MaxY) {
		return false
	}
	// Liang-Barsky clip of the parametric segment against the slab.
	dx, dy := b.X-a.X, b.Y-a.Y
	u0, u1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		u := q / p
		if p < 0 {
			if u > u1 {
				return false
			}
			if u > u0 {
				u0 = u
			}
		} else {
			if u < u0 {
				return false
			}
			if u < u1 {
				u1 = u
			}
		}
		return true
	}
	return clip(-dx, a.X-r.MinX) && clip(dx, r.MaxX-a.X) &&
		clip(-dy, a.Y-r.MinY) && clip(dy, r.MaxY-a.Y) && u0 <= u1
}

// WithinDuring reports whether the object's (interpolated) path enters
// the rectangle at any time within [t1, t2].
func WithinDuring(t traj.Trajectory, r Rect, t1, t2 float64) bool {
	n := len(t)
	if n == 0 || t1 > t2 {
		return false
	}
	if n == 1 {
		return t[0].T >= t1 && t[0].T <= t2 && r.Contains(t[0])
	}
	// Clip the time window to the trajectory span and walk the segments
	// that overlap it.
	start := sort.Search(n, func(i int) bool { return t[i].T >= t1 })
	if start > 0 {
		start--
	}
	for i := start; i < n-1; i++ {
		if t[i].T > t2 {
			break
		}
		// Restrict the segment to the queried time window.
		s := geo.Seg(t[i], t[i+1])
		a, b := s.A, s.B
		if a.T < t1 {
			a = s.At(t1)
		}
		if b.T > t2 {
			b = s.At(t2)
		}
		if b.T < t1 || a.T > t2 {
			continue
		}
		if r.SegmentIntersects(a, b) {
			return true
		}
	}
	return false
}

// NearestApproach returns the minimum distance from the (interpolated)
// path of t to the query location q, and the time at which it occurs.
func NearestApproach(t traj.Trajectory, q geo.Point) (dist, at float64) {
	n := len(t)
	if n == 0 {
		return math.Inf(1), 0
	}
	best := geo.Dist(t[0], q)
	bestT := t[0].T
	for i := 0; i+1 < n; i++ {
		s := geo.Seg(t[i], t[i+1])
		u := s.ClosestParam(q)
		c := geo.Lerp(s.A, s.B, u)
		if d := geo.Dist(c, q); d < best {
			best = d
			bestT = c.T
		}
	}
	return best, bestT
}

// DTW returns the dynamic-time-warping distance between the point
// sequences of a and b under Euclidean ground distance. O(len(a)*len(b))
// time, O(min) memory.
func DTW(a, b traj.Trajectory) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	prev := make([]float64, m)
	cur := make([]float64, m)
	for j := range prev {
		d := geo.Dist(a[0], b[j])
		if j == 0 {
			prev[j] = d
		} else {
			prev[j] = prev[j-1] + d
		}
	}
	for i := 1; i < len(a); i++ {
		for j := 0; j < m; j++ {
			d := geo.Dist(a[i], b[j])
			switch {
			case j == 0:
				cur[j] = prev[0] + d
			default:
				cur[j] = d + math.Min(prev[j], math.Min(prev[j-1], cur[j-1]))
			}
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// DiscreteFrechet returns the discrete Fréchet distance (the classic
// coupled-walk bottleneck distance) between a and b. O(len(a)*len(b)).
func DiscreteFrechet(a, b traj.Trajectory) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	m := len(b)
	prev := make([]float64, m)
	cur := make([]float64, m)
	for j := range prev {
		d := geo.Dist(a[0], b[j])
		if j == 0 {
			prev[j] = d
		} else {
			prev[j] = math.Max(prev[j-1], d)
		}
	}
	for i := 1; i < len(a); i++ {
		for j := 0; j < m; j++ {
			d := geo.Dist(a[i], b[j])
			switch {
			case j == 0:
				cur[j] = math.Max(prev[0], d)
			default:
				reach := math.Min(prev[j], math.Min(prev[j-1], cur[j-1]))
				cur[j] = math.Max(reach, d)
			}
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}
