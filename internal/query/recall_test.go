package query

import (
	"math"
	"testing"

	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

// offsetLine is line(n) shifted dy upward: a collection of parallel
// tracks at known distances.
func offsetLine(n int, dy float64) traj.Trajectory {
	t := line(n)
	for i := range t {
		t[i].Y += dy
	}
	return t
}

// thin keeps every k-th point plus the endpoints: a crude but valid
// simplification for exercising the collection comparisons.
func thin(t traj.Trajectory, k int) traj.Trajectory {
	out := traj.Trajectory{t[0]}
	for i := 1; i < len(t)-1; i++ {
		if i%k == 0 {
			out = append(out, t[i])
		}
	}
	return append(out, t[len(t)-1])
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRangeAnswerSet(t *testing.T) {
	ts := []traj.Trajectory{
		offsetLine(10, 0),
		offsetLine(10, 5),
		offsetLine(10, 100),
	}
	r := Rect{2, -1, 4, 6} // crosses tracks 0 and 1, far below track 2
	if got := RangeAnswerSet(ts, r, 0, 9); !sameInts(got, []int{0, 1}) {
		t.Fatalf("answer set = %v, want [0 1]", got)
	}
	// Time window excludes the spatial overlap (x=t on these tracks).
	if got := RangeAnswerSet(ts, r, 7, 9); len(got) != 0 {
		t.Fatalf("late window answer set = %v, want empty", got)
	}
	if got := RangeAnswerSet(nil, r, 0, 9); len(got) != 0 {
		t.Fatalf("empty collection answered %v", got)
	}
}

func TestSetRecallAndF1(t *testing.T) {
	cases := []struct {
		name       string
		want, got  []int
		recall, f1 float64
	}{
		{"exact", []int{1, 2, 3}, []int{1, 2, 3}, 1, 1},
		{"half", []int{1, 2}, []int{2, 9}, 0.5, 0.5},
		{"miss", []int{1}, []int{2}, 0, 0},
		{"empty truth empty answer", nil, nil, 1, 1},
		{"empty truth noisy answer", nil, []int{4}, 1, 0},
		{"truth but empty answer", []int{4}, nil, 0, 0},
		{"over-answering", []int{1}, []int{1, 2, 3, 4}, 1, 0.4},
	}
	for _, c := range cases {
		if got := SetRecall(c.want, c.got); !almost(got, c.recall, 1e-12) {
			t.Errorf("%s: recall = %v, want %v", c.name, got, c.recall)
		}
		if got := SetF1(c.want, c.got); !almost(got, c.f1, 1e-12) {
			t.Errorf("%s: F1 = %v, want %v", c.name, got, c.f1)
		}
	}
}

func TestNearestTrajectoryAndKNearest(t *testing.T) {
	ts := []traj.Trajectory{
		offsetLine(10, 0),
		offsetLine(10, 3),
		offsetLine(10, 7),
	}
	q := geo.Pt(5, 2, 0)
	if i, d := NearestTrajectory(ts, q); i != 1 || !almost(d, 1, 1e-12) {
		t.Fatalf("nearest = %d at %v, want 1 at 1", i, d)
	}
	if got := KNearest(ts, q, 2); !sameInts(got, []int{1, 0}) {
		t.Fatalf("2-nearest = %v, want [1 0]", got)
	}
	// k beyond the collection returns everything, still ordered.
	if got := KNearest(ts, q, 10); !sameInts(got, []int{1, 0, 2}) {
		t.Fatalf("10-nearest = %v, want [1 0 2]", got)
	}
	if got := KNearest(ts, q, 0); len(got) != 0 {
		t.Fatalf("0-nearest = %v", got)
	}
	// Degenerate: empty collection.
	if i, d := NearestTrajectory(nil, q); i != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty nearest = %d %v", i, d)
	}
	if got := KNearest(nil, q, 3); len(got) != 0 {
		t.Fatalf("empty collection kNN = %v", got)
	}
	// Degenerate: single trajectory is always the answer.
	if i, _ := NearestTrajectory(ts[:1], q); i != 0 {
		t.Fatalf("single-member nearest = %d", i)
	}
	// Degenerate: all-identical trajectories tie; lowest index wins and
	// kNN stays deterministic.
	same := []traj.Trajectory{line(10), line(10), line(10)}
	if i, _ := NearestTrajectory(same, q); i != 0 {
		t.Fatalf("identical-collection nearest = %d, want 0", i)
	}
	if got := KNearest(same, q, 3); !sameInts(got, []int{0, 1, 2}) {
		t.Fatalf("identical-collection kNN = %v, want [0 1 2]", got)
	}
}

// TestRecallOnSimplifiedCollection is the fleet-eval contract in
// miniature: answer sets computed over a thinned collection, compared
// against the raw collection's, score in [0,1] and reach 1 when the
// simplification is lossless for the query.
func TestRecallOnSimplifiedCollection(t *testing.T) {
	g := gen.New(gen.Geolife(), 5)
	raw := g.Dataset(6, 120)
	simp := make([]traj.Trajectory, len(raw))
	for i, tr := range raw {
		simp[i] = thin(tr, 4)
	}

	// Range queries drawn from the data's own extent.
	var minX, maxX, minY, maxY = raw[0][0].X, raw[0][0].X, raw[0][0].Y, raw[0][0].Y
	for _, tr := range raw {
		for _, p := range tr {
			minX, maxX = min(minX, p.X), max(maxX, p.X)
			minY, maxY = min(minY, p.Y), max(maxY, p.Y)
		}
	}
	w, h := maxX-minX, maxY-minY
	queries := []Rect{
		{minX, minY, minX + w/2, minY + h/2},
		{minX + w/4, minY + h/4, minX + 3*w/4, minY + 3*h/4},
		{minX + w/2, minY + h/2, maxX, maxY},
	}
	t0, t1 := raw[0][0].T, raw[0][len(raw[0])-1].T
	for _, q := range queries {
		want := RangeAnswerSet(raw, q, t0, t1)
		got := RangeAnswerSet(simp, q, t0, t1)
		r := SetRecall(want, got)
		if r < 0 || r > 1 {
			t.Fatalf("recall %v out of range", r)
		}
		if f := SetF1(want, got); f < 0 || f > 1 {
			t.Fatalf("F1 %v out of range", f)
		}
	}

	// A lossless "simplification" (identity) must score 1 everywhere.
	for _, q := range queries {
		want := RangeAnswerSet(raw, q, t0, t1)
		if r := SetRecall(want, RangeAnswerSet(raw, q, t0, t1)); r != 1 {
			t.Fatalf("identity recall %v", r)
		}
	}

	// Nearest-neighbour agreement between raw and thinned collections is
	// well defined and bounded.
	q := geo.Pt((minX+maxX)/2, (minY+maxY)/2, 0)
	i, _ := NearestTrajectory(raw, q)
	j, _ := NearestTrajectory(simp, q)
	if i < 0 || j < 0 {
		t.Fatal("nearest query failed on populated collection")
	}
}
