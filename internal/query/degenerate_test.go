package query

import (
	"math"
	"testing"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// Degenerate-input coverage: every workload must answer sensibly (and
// finitely) for inputs at or past the edges of its domain — queries
// outside the time span, empty or inverted regions, inverted windows,
// minimal trajectories. These are exactly the shapes a simplified
// trajectory of a short or stationary stream produces.

func degenTraj() traj.Trajectory {
	return traj.Trajectory{geo.Pt(0, 0, 0), geo.Pt(10, 0, 10)}
}

func TestPositionAtOutsideSpan(t *testing.T) {
	tr := degenTraj()
	if p := PositionAt(tr, -100); !p.Equal(tr[0]) {
		t.Errorf("before span: got %v, want clamp to first point", p)
	}
	if p := PositionAt(tr, 1e9); !p.Equal(tr[1]) {
		t.Errorf("after span: got %v, want clamp to last point", p)
	}
	// Exactly at the endpoints.
	if p := PositionAt(tr, 0); !p.Equal(tr[0]) {
		t.Errorf("at start: got %v", p)
	}
	if p := PositionAt(tr, 10); !p.Equal(tr[1]) {
		t.Errorf("at end: got %v", p)
	}
	// Empty and single-point trajectories.
	if p := PositionAt(nil, 5); p != (geo.Point{}) {
		t.Errorf("empty trajectory: got %v, want zero point", p)
	}
	one := traj.Trajectory{geo.Pt(3, 4, 5)}
	if p := PositionAt(one, 99); !p.Equal(one[0]) {
		t.Errorf("single point: got %v", p)
	}
}

func TestWithinDuringInvertedRect(t *testing.T) {
	tr := degenTraj()
	inv := Rect{MinX: 5, MinY: 5, MaxX: -5, MaxY: -5}
	if WithinDuring(tr, inv, 0, 10) {
		t.Error("inverted rect reported containment")
	}
	// An inverted rect must also never report containment for any segment
	// orientation (diagonals probing the Liang-Barsky clip).
	diag := traj.Trajectory{geo.Pt(-10, -10, 0), geo.Pt(10, 10, 1)}
	if WithinDuring(diag, inv, 0, 1) {
		t.Error("inverted rect intersected a diagonal")
	}
	if inv.SegmentIntersects(geo.Pt(-1, 0, 0), geo.Pt(1, 0, 1)) {
		t.Error("inverted rect intersected a crossing segment")
	}
}

func TestWithinDuringEmptyRect(t *testing.T) {
	// A zero-area rect is a point region: only an exact pass-through hits.
	tr := degenTraj()
	pt := Rect{MinX: 5, MinY: 0, MaxX: 5, MaxY: 0}
	if !WithinDuring(tr, pt, 0, 10) {
		t.Error("point rect on the path not hit")
	}
	off := Rect{MinX: 5, MinY: 1, MaxX: 5, MaxY: 1}
	if WithinDuring(tr, off, 0, 10) {
		t.Error("point rect off the path hit")
	}
}

func TestWithinDuringInvertedWindow(t *testing.T) {
	tr := degenTraj()
	r := Rect{MinX: -1, MinY: -1, MaxX: 11, MaxY: 1}
	if WithinDuring(tr, r, 9, 1) {
		t.Error("t1 > t2 reported containment")
	}
	// Window entirely outside the trajectory span.
	if WithinDuring(tr, r, 100, 200) {
		t.Error("window after the span reported containment")
	}
	if WithinDuring(tr, r, -200, -100) {
		t.Error("window before the span reported containment")
	}
	// Degenerate window t1 == t2 at a covered instant still answers.
	if !WithinDuring(tr, r, 5, 5) {
		t.Error("instant window on the path missed")
	}
}

func TestNearestApproachSingleSegment(t *testing.T) {
	tr := degenTraj()
	d, at := NearestApproach(tr, geo.Pt(5, 3, 0))
	if math.Abs(d-3) > 1e-12 {
		t.Errorf("distance = %v, want 3", d)
	}
	if math.Abs(at-5) > 1e-12 {
		t.Errorf("time = %v, want 5", at)
	}
	// Query beyond the segment end clamps to the endpoint.
	d, at = NearestApproach(tr, geo.Pt(20, 0, 0))
	if math.Abs(d-10) > 1e-12 || math.Abs(at-10) > 1e-12 {
		t.Errorf("beyond end: d=%v at=%v, want 10, 10", d, at)
	}
	// Single-point trajectory: distance to that point, at its timestamp.
	one := traj.Trajectory{geo.Pt(1, 1, 7)}
	d, at = NearestApproach(one, geo.Pt(4, 5, 0))
	if math.Abs(d-5) > 1e-12 || at != 7 {
		t.Errorf("single point: d=%v at=%v, want 5, 7", d, at)
	}
	// Empty trajectory: +Inf distance, by documented convention.
	d, _ = NearestApproach(nil, geo.Pt(0, 0, 0))
	if !math.IsInf(d, 1) {
		t.Errorf("empty trajectory: d=%v, want +Inf", d)
	}
}

func TestSimilarityLengthOne(t *testing.T) {
	one := traj.Trajectory{geo.Pt(0, 0, 0)}
	two := degenTraj()
	// DTW against a single point is the sum of distances to that point.
	want := geo.Dist(two[0], one[0]) + geo.Dist(two[1], one[0])
	if d := DTW(one, two); math.Abs(d-want) > 1e-12 {
		t.Errorf("DTW len-1 = %v, want %v", d, want)
	}
	if d := DTW(two, one); math.Abs(d-want) > 1e-12 {
		t.Errorf("DTW len-1 (swapped) = %v, want %v", d, want)
	}
	// Fréchet against a single point is the max distance to that point.
	wantF := math.Max(geo.Dist(two[0], one[0]), geo.Dist(two[1], one[0]))
	if d := DiscreteFrechet(one, two); math.Abs(d-wantF) > 1e-12 {
		t.Errorf("Frechet len-1 = %v, want %v", d, wantF)
	}
	if d := DiscreteFrechet(two, one); math.Abs(d-wantF) > 1e-12 {
		t.Errorf("Frechet len-1 (swapped) = %v, want %v", d, wantF)
	}
	// Both length one.
	if d := DTW(one, one); d != 0 {
		t.Errorf("DTW 1x1 identical = %v", d)
	}
	// Empty operands keep the documented +Inf convention.
	if d := DTW(nil, two); !math.IsInf(d, 1) {
		t.Errorf("DTW empty = %v", d)
	}
	if d := DiscreteFrechet(two, nil); !math.IsInf(d, 1) {
		t.Errorf("Frechet empty = %v", d)
	}
}

func TestQueriesFiniteOnStationaryTrajectory(t *testing.T) {
	// A stationary object (zero-length segments throughout) must not
	// produce NaN in any workload.
	tr := traj.Trajectory{geo.Pt(2, 2, 0), geo.Pt(2, 2, 1), geo.Pt(2, 2, 2)}
	p := PositionAt(tr, 0.5)
	if math.IsNaN(p.X) || math.IsNaN(p.Y) {
		t.Errorf("PositionAt NaN on stationary trajectory: %v", p)
	}
	d, at := NearestApproach(tr, geo.Pt(5, 6, 0))
	if math.IsNaN(d) || math.IsNaN(at) {
		t.Errorf("NearestApproach NaN: d=%v at=%v", d, at)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("NearestApproach stationary: d=%v, want 5", d)
	}
	if v := DTW(tr, tr); v != 0 {
		t.Errorf("DTW self = %v", v)
	}
	if v := DiscreteFrechet(tr, tr); v != 0 {
		t.Errorf("Frechet self = %v", v)
	}
	if !WithinDuring(tr, Rect{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}, 0, 2) {
		t.Error("stationary point inside rect not reported")
	}
}
