package query

import (
	"testing"

	"rlts/internal/gen"
	"rlts/internal/geo"
)

var (
	sinkF float64
	sinkB bool
	sinkP geo.Point
)

func BenchmarkPositionAt(b *testing.B) {
	t := gen.New(gen.Geolife(), 1).Trajectory(10000)
	mid := (t[0].T + t[len(t)-1].T) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkP = PositionAt(t, mid)
	}
}

func BenchmarkWithinDuring(b *testing.B) {
	t := gen.New(gen.Geolife(), 1).Trajectory(10000)
	c := PositionAt(t, (t[0].T+t[len(t)-1].T)/2)
	r := Rect{c.X - 100, c.Y - 100, c.X + 100, c.Y + 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkB = WithinDuring(t, r, t[0].T, t[len(t)-1].T)
	}
}

func BenchmarkNearestApproach(b *testing.B) {
	t := gen.New(gen.Geolife(), 1).Trajectory(10000)
	q := geo.Pt(500, 500, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF, _ = NearestApproach(t, q)
	}
}

func BenchmarkDTW(b *testing.B) {
	a := gen.New(gen.Geolife(), 1).Trajectory(200)
	c := gen.New(gen.Geolife(), 2).Trajectory(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = DTW(a, c)
	}
}

func BenchmarkDiscreteFrechet(b *testing.B) {
	a := gen.New(gen.Geolife(), 1).Trajectory(200)
	c := gen.New(gen.Geolife(), 2).Trajectory(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = DiscreteFrechet(a, c)
	}
}
