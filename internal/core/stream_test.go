package core

import (
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/rl"
)

func streamPolicy(t *testing.T, opts Options) *rl.Policy {
	t.Helper()
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStreamerKeepsBudget(t *testing.T) {
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 10, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraj(31, 200)
	for _, pt := range tr {
		s.Push(pt)
		if s.BufferSize() > 10 {
			t.Fatalf("buffer grew to %d", s.BufferSize())
		}
	}
	if s.Seen() != 200 {
		t.Errorf("Seen = %d", s.Seen())
	}
	snap := s.Snapshot()
	if len(snap) > 11 { // W plus possibly the appended last point
		t.Errorf("snapshot %d points", len(snap))
	}
	if !snap[len(snap)-1].Equal(tr[len(tr)-1]) {
		t.Error("snapshot does not end at the last observation")
	}
	if !snap[0].Equal(tr[0]) {
		t.Error("snapshot does not start at the first observation")
	}
}

func TestStreamerWithSkip(t *testing.T) {
	opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: 2}
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 8, opts, true, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraj(33, 300)
	for _, pt := range tr {
		s.Push(pt)
	}
	snap := s.Snapshot()
	if len(snap) < 2 || len(snap) > 9 {
		t.Errorf("snapshot %d points", len(snap))
	}
	if !snap[len(snap)-1].Equal(tr[len(tr)-1]) {
		t.Error("snapshot does not end at the last observation")
	}
}

func TestStreamerMatchesSimplifyWithoutSkip(t *testing.T) {
	// Greedy, no-skip streaming must agree with the slice-based Simplify.
	opts := DefaultOptions(errm.PED, Online)
	p := streamPolicy(t, opts)
	tr := testTraj(35, 120)
	const w = 12
	kept, err := Simplify(p, tr, w, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamer(p, w, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range tr {
		s.Push(pt)
	}
	snap := s.Snapshot()
	if len(snap) != len(kept) {
		t.Fatalf("stream %d points, simplify %d", len(snap), len(kept))
	}
	for i, ix := range kept {
		if !snap[i].Equal(tr[ix]) {
			t.Fatalf("point %d differs: stream %v, simplify %v", i, snap[i], tr[ix])
		}
	}
}

func TestStreamerValidation(t *testing.T) {
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	if _, err := NewStreamer(p, 1, opts, false, nil); err == nil {
		t.Error("W=1 accepted")
	}
	batchOpts := DefaultOptions(errm.SED, Plus)
	pb := streamPolicy(t, batchOpts)
	if _, err := NewStreamer(pb, 5, batchOpts, false, nil); err == nil {
		t.Error("batch variant accepted for streaming")
	}
	if _, err := NewStreamer(p, 5, opts, true, nil); err == nil {
		t.Error("sampling without rand accepted")
	}
}
