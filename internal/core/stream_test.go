package core

import (
	"math"
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

func streamPolicy(t *testing.T, opts Options) *rl.Policy {
	t.Helper()
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStreamerKeepsBudget(t *testing.T) {
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 10, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraj(31, 200)
	for _, pt := range tr {
		s.Push(pt)
		if s.BufferSize() > 10 {
			t.Fatalf("buffer grew to %d", s.BufferSize())
		}
	}
	if s.Seen() != 200 {
		t.Errorf("Seen = %d", s.Seen())
	}
	snap := s.Snapshot()
	if len(snap) > 11 { // W plus possibly the appended last point
		t.Errorf("snapshot %d points", len(snap))
	}
	if !snap[len(snap)-1].Equal(tr[len(tr)-1]) {
		t.Error("snapshot does not end at the last observation")
	}
	if !snap[0].Equal(tr[0]) {
		t.Error("snapshot does not start at the first observation")
	}
}

func TestStreamerWithSkip(t *testing.T) {
	opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: 2}
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 8, opts, true, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraj(33, 300)
	for _, pt := range tr {
		s.Push(pt)
	}
	snap := s.Snapshot()
	if len(snap) < 2 || len(snap) > 9 {
		t.Errorf("snapshot %d points", len(snap))
	}
	if !snap[len(snap)-1].Equal(tr[len(tr)-1]) {
		t.Error("snapshot does not end at the last observation")
	}
}

func TestStreamerMatchesSimplifyWithoutSkip(t *testing.T) {
	// Greedy, no-skip streaming must agree with the slice-based Simplify.
	opts := DefaultOptions(errm.PED, Online)
	p := streamPolicy(t, opts)
	tr := testTraj(35, 120)
	const w = 12
	kept, err := Simplify(p, tr, w, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamer(p, w, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range tr {
		s.Push(pt)
	}
	snap := s.Snapshot()
	if len(snap) != len(kept) {
		t.Fatalf("stream %d points, simplify %d", len(snap), len(kept))
	}
	for i, ix := range kept {
		if !snap[i].Equal(tr[ix]) {
			t.Fatalf("point %d differs: stream %v, simplify %v", i, snap[i], tr[ix])
		}
	}
}

func TestStreamerSmallestBudget(t *testing.T) {
	// W=2 is the smallest legal budget: the buffer only ever holds the
	// endpoints plus the incoming point, so every interior point must be
	// dropped (or skipped) immediately. Exercises the under-three-point
	// valuation guard in Push.
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 2, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraj(41, 50)
	for _, pt := range tr {
		s.Push(pt)
		if s.BufferSize() > 2 {
			t.Fatalf("buffer grew to %d with W=2", s.BufferSize())
		}
	}
	snap := s.Snapshot()
	if len(snap) < 2 || len(snap) > 3 {
		t.Fatalf("snapshot %d points with W=2", len(snap))
	}
	if !snap[0].Equal(tr[0]) || !snap[len(snap)-1].Equal(tr[len(tr)-1]) {
		t.Error("W=2 snapshot does not span first..last observation")
	}
}

func TestStreamerSnapshotFewerPointsThanBudget(t *testing.T) {
	// Pushing fewer points than W must return exactly those points: no
	// padding, no decisions taken.
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 20, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraj(43, 7)
	for _, pt := range tr {
		s.Push(pt)
	}
	snap := s.Snapshot()
	if len(snap) != 7 {
		t.Fatalf("snapshot %d points, want all 7", len(snap))
	}
	for i := range snap {
		if !snap[i].Equal(tr[i]) {
			t.Fatalf("point %d altered: %v vs %v", i, snap[i], tr[i])
		}
	}
}

func TestStreamerSnapshotDeterministicAndIdempotent(t *testing.T) {
	// With sampling off, two streamers fed the same points must produce
	// identical snapshots, and snapshotting must not perturb the stream:
	// interleaved mid-stream snapshots leave the final result unchanged.
	opts := DefaultOptions(errm.DAD, Online)
	p := streamPolicy(t, opts)
	tr := testTraj(47, 150)
	const w = 9

	run := func(snapEvery int) []string {
		s, err := NewStreamer(p, w, opts, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, pt := range tr {
			s.Push(pt)
			if snapEvery > 0 && i%snapEvery == 0 {
				s.Snapshot()
			}
		}
		var out []string
		for _, pt := range s.Snapshot() {
			out = append(out, pt.String())
		}
		return out
	}

	plain := run(0)
	interleaved := run(10)
	if len(plain) != len(interleaved) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(plain), len(interleaved))
	}
	for i := range plain {
		if plain[i] != interleaved[i] {
			t.Fatalf("point %d differs: %s vs %s", i, plain[i], interleaved[i])
		}
	}
	// Back-to-back snapshots of the same streamer are identical too.
	s, err := NewStreamer(p, w, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range tr {
		s.Push(pt)
	}
	a, b := s.Snapshot(), s.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("repeat snapshot changed length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("repeat snapshot changed point %d", i)
		}
	}
}

func TestStreamerSnapshotAfterSkipAtTail(t *testing.T) {
	// Regression: when the final pushed point is swallowed by a skip
	// action, Snapshot appends it after the buffered tail. That appended
	// point must strictly advance the tail's timestamp so the snapshot
	// stays a valid traj.FromPoints input. Seed 3 is known (and pinned by
	// the assertion below) to end this stream with a skip.
	opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: 2}
	p := streamPolicy(t, opts)
	tr := testTraj(33, 60)
	s, err := NewStreamer(p, 6, opts, true, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range tr {
		s.Push(pt)
	}
	snap := s.Snapshot()
	if len(snap) != s.BufferSize()+1 {
		t.Fatalf("seed drifted: final point not skipped (buffer %d, snapshot %d)", s.BufferSize(), len(snap))
	}
	if !snap[len(snap)-1].Equal(tr[len(tr)-1]) {
		t.Error("snapshot does not end at the skipped last observation")
	}
	raw := make([][3]float64, len(snap))
	for i, q := range snap {
		raw[i] = [3]float64{q.X, q.Y, q.T}
	}
	if _, err := traj.FromPoints(raw); err != nil {
		t.Errorf("snapshot after tail skip is not a valid trajectory: %v", err)
	}
}

func TestStreamerDiscardsInvalidObservations(t *testing.T) {
	// Duplicate/backwards timestamps and non-finite points are dropped at
	// Push so the snapshot contract (strictly increasing, finite) holds
	// for any input sequence.
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 4, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := []geo.Point{
		geo.Pt(0, 0, 0),
		geo.Pt(1, 0, 1),
		geo.Pt(5, 5, 1),           // duplicate timestamp: dropped
		geo.Pt(2, 0, 0.5),         // backwards timestamp: dropped
		geo.Pt(math.NaN(), 0, 2),  // non-finite: dropped
		geo.Pt(3, 0, math.Inf(1)), // non-finite: dropped
		geo.Pt(3, 0, 2),
		geo.Pt(4, 0, 3),
	}
	for _, pt := range pts {
		s.Push(pt)
	}
	if s.Seen() != 4 {
		t.Errorf("Seen = %d, want 4 accepted points", s.Seen())
	}
	snap := s.Snapshot()
	raw := make([][3]float64, len(snap))
	for i, q := range snap {
		raw[i] = [3]float64{q.X, q.Y, q.T}
	}
	got, err := traj.FromPoints(raw)
	if err != nil {
		t.Fatalf("snapshot invalid after garbage pushes: %v", err)
	}
	want := traj.Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 0, 1), geo.Pt(3, 0, 2), geo.Pt(4, 0, 3)}
	if !got.Equal(want) {
		t.Errorf("snapshot = %v, want %v", got, want)
	}
}

func TestStreamerValidation(t *testing.T) {
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	if _, err := NewStreamer(p, 1, opts, false, nil); err == nil {
		t.Error("W=1 accepted")
	}
	batchOpts := DefaultOptions(errm.SED, Plus)
	pb := streamPolicy(t, batchOpts)
	if _, err := NewStreamer(pb, 5, batchOpts, false, nil); err == nil {
		t.Error("batch variant accepted for streaming")
	}
	if _, err := NewStreamer(p, 5, opts, true, nil); err == nil {
		t.Error("sampling without rand accepted")
	}
}

// TestStreamerSetBudget: shrinking evicts lowest-valued points down to the
// new cap immediately; growing raises the cap and the buffer refills as
// the stream advances. The budget is never exceeded at any point, and a
// shrink folds the evicted values into the error estimate.
func TestStreamerSetBudget(t *testing.T) {
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 20, opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraj(37, 300)
	for _, pt := range tr[:100] {
		s.Push(pt)
	}
	if s.BufferSize() != 20 {
		t.Fatalf("buffer %d after fill, want 20", s.BufferSize())
	}
	if s.Budget() != 20 {
		t.Fatalf("Budget() = %d", s.Budget())
	}
	before := s.ErrEst()
	if err := s.SetBudget(8); err != nil {
		t.Fatal(err)
	}
	if s.BufferSize() != 8 {
		t.Fatalf("buffer %d after shrink to 8", s.BufferSize())
	}
	if s.ErrEst() < before {
		t.Fatalf("ErrEst went backwards on shrink: %g -> %g", before, s.ErrEst())
	}
	// Snapshot after shrink must still be a valid trajectory ending at the
	// last observation.
	snap := s.Snapshot()
	if err := traj.Trajectory(snap).Validate(); err != nil {
		t.Fatalf("snapshot after shrink invalid: %v", err)
	}
	// Grow back: the buffer refills to the new cap and never overshoots.
	if err := s.SetBudget(15); err != nil {
		t.Fatal(err)
	}
	for _, pt := range tr[100:] {
		s.Push(pt)
		if s.BufferSize() > 15 {
			t.Fatalf("buffer %d exceeds grown budget 15", s.BufferSize())
		}
	}
	if s.BufferSize() != 15 {
		t.Fatalf("buffer %d after regrow and refill, want 15", s.BufferSize())
	}
	if err := s.SetBudget(1); err == nil {
		t.Fatal("SetBudget(1) accepted")
	}
}

// TestStreamerSetBudgetResumeBitIdentical: a streamer whose budget was
// resized mid-stream spills and rehydrates bit-identically — the fleet
// rebalance / durable-store interaction.
func TestStreamerSetBudgetResumeBitIdentical(t *testing.T) {
	opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: 2}
	tr := testTraj(41, 160)
	for _, sample := range []bool{false, true} {
		run := func(resumeAfterResize bool) []geo.Point {
			p := streamPolicy(t, opts)
			var r *rand.Rand
			if sample {
				r = rand.New(rand.NewSource(9))
			}
			s, err := NewStreamer(p, 12, opts, sample, r)
			if err != nil {
				t.Fatal(err)
			}
			for _, pt := range tr[:80] {
				s.Push(pt)
			}
			if err := s.SetBudget(6); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBudget(9); err != nil {
				t.Fatal(err)
			}
			if resumeAfterResize {
				raw := s.ExportState().AppendBinary(nil)
				st, err := DecodeStreamerState(raw)
				if err != nil {
					t.Fatal(err)
				}
				var rr *rand.Rand
				if sample {
					rr = rand.New(rand.NewSource(9))
				}
				s, err = ResumeStreamer(p, opts, st, rr)
				if err != nil {
					t.Fatalf("resume after resize: %v", err)
				}
			}
			for _, pt := range tr[80:] {
				s.Push(pt)
			}
			if math.IsNaN(s.ErrEst()) {
				t.Fatal("NaN ErrEst")
			}
			return s.Snapshot()
		}
		want := run(false)
		got := run(true)
		if !samePoints(got, want) {
			t.Fatalf("sample=%v: resume after resize diverged", sample)
		}
	}
}

// TestStreamerPolicyPressure: zero while the buffer is filling, finite
// and non-negative once decisions are pending, and reading it never
// perturbs a sampled stream (no RNG draws consumed).
func TestStreamerPolicyPressure(t *testing.T) {
	opts := DefaultOptions(errm.SED, Online)
	p := streamPolicy(t, opts)
	r := rand.New(rand.NewSource(11))
	s, err := NewStreamer(p, 10, opts, true, r)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraj(43, 120)
	for _, pt := range tr[:5] {
		s.Push(pt)
	}
	if v := s.PolicyPressure(); v != 0 {
		t.Fatalf("pressure %g during fill, want 0", v)
	}
	for _, pt := range tr[5:60] {
		s.Push(pt)
	}
	v := s.PolicyPressure()
	if math.IsNaN(v) || v < 0 {
		t.Fatalf("pressure %g out of range", v)
	}
	// Interleave pressure reads with pushes in one run and compare the
	// final snapshot against a read-free run: identical streams mean the
	// reads are side-effect free.
	run := func(read bool) []geo.Point {
		pp := streamPolicy(t, opts)
		ss, err := NewStreamer(pp, 10, opts, true, rand.New(rand.NewSource(13)))
		if err != nil {
			t.Fatal(err)
		}
		for i, pt := range tr {
			ss.Push(pt)
			if read && i%7 == 0 {
				ss.PolicyPressure()
			}
		}
		return ss.Snapshot()
	}
	if !samePoints(run(true), run(false)) {
		t.Fatal("PolicyPressure perturbed a sampled stream")
	}
}
