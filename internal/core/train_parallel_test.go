package core

import (
	"bytes"
	"testing"

	"rlts/internal/errm"
)

// TestTrainDeterministicAcrossWorkers proves the headline guarantee of the
// parallel trainer on the real MDPs: the same dataset, options and seed
// produce byte-identical saved policies whether rollouts run on one
// goroutine or eight. Run under -race this also exercises the concurrent
// rollout/gradient phases against the scan and full-buffer environments.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	for _, variant := range []Variant{Online, Plus, PlusPlus} {
		opts := DefaultOptions(errm.SED, variant)
		opts.J = 2
		train := func(workers int) []byte {
			ds := smallDataset(3, 8, 70)
			to := quickTrainOptions()
			to.RL.Workers = workers
			tr, _, err := Train(ds, opts, to)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.Policy.Save(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if !bytes.Equal(train(1), train(8)) {
			t.Errorf("%s: policy differs between Workers=1 and Workers=8", opts.Name())
		}
	}
}
