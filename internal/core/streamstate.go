package core

// Durable streamer state: ExportState captures everything a Streamer
// needs to continue bit-identically in another process — the buffer's
// full internal layout (list order, drop values, exact heap slots), the
// seen/skip counters, the last accepted point and the sampling RNG's
// position — and ResumeStreamer rebuilds a streamer from it. The binary
// codec (AppendBinary/DecodeStreamerState) is the versioned wire format
// the HTTP session layer spills to disk; the decoder is total (it
// errors on any malformed input, never panics or half-restores).
//
// RNG treatment: math/rand exposes no state serialization, so the
// export records how many Float64 draws the policy has consumed —
// exactly one per sampled decision — and ResumeStreamer fast-forwards a
// freshly seeded source that many steps. This is the same position-
// counter treatment the training checkpoints give the per-episode RNG
// streams (rl.Checkpoint.EpSeq). The replay is O(draws) but a draw is a
// few nanoseconds, so even a million-decision stream rehydrates in
// milliseconds.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"rlts/internal/buffer"
	"rlts/internal/geo"
	"rlts/internal/rl"
)

// StreamerStateVersion guards the streamer-state wire format; bump on
// incompatible changes. Version 2 added ErrEst (the online error
// estimate the fleet allocator reads) and relaxed the buffer-size
// invariants for budgets resized by SetBudget.
const StreamerStateVersion = 2

// StreamerState is the complete resumable state of a Streamer. The
// policy and Options are not part of it: they are process-level
// configuration the owner re-supplies at resume (and must supply
// unchanged for bit-identical continuation, just as rl.ResumePolicy
// refuses a changed training config).
type StreamerState struct {
	W       int
	Sample  bool
	Seen    int // points pushed so far
	Skip    int // pending pushes to drop silently
	Skipped int // points ever swallowed by skip actions
	Last    geo.Point
	HasLast bool
	Draws   uint64  // sampling RNG position (Float64 values consumed)
	ErrEst  float64 // running max drop value (Streamer.ErrEst)
	Entries []buffer.EntryState
}

// ExportState captures the streamer's resumable state. It flushes the
// pending metric deltas first so nothing is unaccounted if the streamer
// is discarded after the export (the spill path does exactly that).
func (s *Streamer) ExportState() *StreamerState {
	s.FlushMetrics()
	return &StreamerState{
		W:       s.w,
		Sample:  s.sample,
		Seen:    s.n,
		Skip:    s.skip,
		Skipped: s.nskipped,
		Last:    s.last,
		HasLast: s.hasLast,
		Draws:   s.draws,
		ErrEst:  s.errEst,
		Entries: s.buf.Export(),
	}
}

// ResumeStreamer rebuilds a streamer from an exported state. p and opts
// must be the policy and options of the originating streamer; r must be
// a rand source freshly seeded with the original seed when st.Sample is
// set (ResumeStreamer fast-forwards it to the recorded position), and
// may be nil otherwise. The state is validated in full before anything
// is built, so a corrupted state yields an error, never a streamer that
// panics later.
func ResumeStreamer(p *rl.Policy, opts Options, st *StreamerState, r *rand.Rand) (*Streamer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Variant != Online {
		return nil, fmt.Errorf("core: only the Online variant can stream, got %s", opts.Name())
	}
	if p.Spec.In != opts.StateSize() || p.Spec.Out != opts.NumActions() {
		return nil, fmt.Errorf("core: policy shape does not match options")
	}
	if st.Sample && r == nil {
		return nil, fmt.Errorf("core: resuming a sampling streamer without a rand source")
	}
	if err := st.validate(opts); err != nil {
		return nil, err
	}
	buf, err := buffer.Restore(st.Entries, st.W+1)
	if err != nil {
		return nil, fmt.Errorf("core: resume streamer: %w", err)
	}
	if st.Sample {
		for i := uint64(0); i < st.Draws; i++ {
			r.Float64()
		}
	}
	return &Streamer{
		opts:     opts,
		w:        st.W,
		p:        p,
		sample:   st.Sample,
		r:        r,
		buf:      buf,
		n:        st.Seen,
		skip:     st.Skip,
		nskipped: st.Skipped,
		last:     st.Last,
		hasLast:  st.HasLast,
		draws:    st.Draws,
		errEst:   st.ErrEst,
		met:      coreMetrics(),
	}, nil
}

// validate checks the state's internal consistency against the streamer
// invariants: the buffer never holds more points than the budget or than
// were pushed; trajectory endpoints are buffered and never droppable;
// buffered points are finite with strictly increasing timestamps and
// indices; the last accepted point caps the buffered tail. W and the
// buffer size are related by inequalities, not equalities: SetBudget can
// leave a mid-stream buffer below a freshly raised cap (it refills), so
// the pre-fleet "exactly W after fill" invariant no longer holds.
func (st *StreamerState) validate(opts Options) error {
	if st.W < 2 {
		return fmt.Errorf("core: streamer state: budget W must be >= 2, got %d", st.W)
	}
	if st.Seen < 0 || st.Skip < 0 || st.Skipped < 0 {
		return fmt.Errorf("core: streamer state: negative counter (seen %d, skip %d, skipped %d)",
			st.Seen, st.Skip, st.Skipped)
	}
	if st.Skip > opts.J {
		return fmt.Errorf("core: streamer state: pending skip %d exceeds J = %d", st.Skip, opts.J)
	}
	if !st.Sample && st.Draws != 0 {
		return fmt.Errorf("core: streamer state: %d RNG draws recorded without sampling", st.Draws)
	}
	if math.IsNaN(st.ErrEst) || math.IsInf(st.ErrEst, 0) || st.ErrEst < 0 {
		return fmt.Errorf("core: streamer state: error estimate %g out of range", st.ErrEst)
	}
	if len(st.Entries) > st.W {
		return fmt.Errorf("core: streamer state: %d points buffered exceed budget W = %d",
			len(st.Entries), st.W)
	}
	if len(st.Entries) > st.Seen {
		return fmt.Errorf("core: streamer state: %d points buffered of %d seen",
			len(st.Entries), st.Seen)
	}
	if want := min(st.Seen, 2); len(st.Entries) < want {
		return fmt.Errorf("core: streamer state: %d points buffered with %d seen (endpoints are never dropped)",
			len(st.Entries), st.Seen)
	}
	// The buffered head is the simplification's first endpoint and is
	// never droppable. (The tail MAY carry a stale heap slot: a skip
	// action un-appends the point behind it and the former predecessor
	// keeps its value until the next scan — see buffer.RemoveTail.)
	if len(st.Entries) > 0 && st.Entries[0].HeapPos != -1 {
		return fmt.Errorf("core: streamer state: buffered head claims heap slot %d", st.Entries[0].HeapPos)
	}
	if st.Seen > 0 && !st.HasLast {
		return fmt.Errorf("core: streamer state: %d points seen but no last point", st.Seen)
	}
	if st.HasLast && !st.Last.IsFinite() {
		return fmt.Errorf("core: streamer state: non-finite last point")
	}
	prevIdx, prevT := -1, math.Inf(-1)
	for i, es := range st.Entries {
		if !es.P.IsFinite() {
			return fmt.Errorf("core: streamer state: non-finite point at buffer position %d", i)
		}
		if math.IsNaN(es.Value) || math.IsInf(es.Value, 0) {
			return fmt.Errorf("core: streamer state: non-finite drop value at buffer position %d", i)
		}
		if es.Index <= prevIdx || es.Index >= st.Seen {
			return fmt.Errorf("core: streamer state: buffer index %d out of order at position %d (seen %d)",
				es.Index, i, st.Seen)
		}
		if es.P.T <= prevT {
			return fmt.Errorf("core: streamer state: buffer timestamps not increasing at position %d", i)
		}
		prevIdx, prevT = es.Index, es.P.T
	}
	if len(st.Entries) > 0 && st.Last.T < prevT {
		return fmt.Errorf("core: streamer state: last point precedes the buffered tail")
	}
	return nil
}

// Binary layout (all little-endian):
//
//	u32  version
//	u8   flags (bit 0 sample, bit 1 hasLast)
//	u32  w
//	u64  seen, skip, skipped, draws
//	f64  errEst
//	f64  last.X, last.Y, last.T
//	u32  entry count
//	per entry: u64 index, f64 x, f64 y, f64 t, f64 value, i64 heapPos
const streamerEntryBytes = 8 * 6

// AppendBinary appends the versioned wire encoding of the state to b.
func (st *StreamerState) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, StreamerStateVersion)
	var flags byte
	if st.Sample {
		flags |= 1
	}
	if st.HasLast {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint32(b, uint32(st.W))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.Seen))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.Skip))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.Skipped))
	b = binary.LittleEndian.AppendUint64(b, st.Draws)
	b = appendFloat(b, st.ErrEst)
	b = appendFloat(b, st.Last.X)
	b = appendFloat(b, st.Last.Y)
	b = appendFloat(b, st.Last.T)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.Entries)))
	for _, e := range st.Entries {
		b = binary.LittleEndian.AppendUint64(b, uint64(e.Index))
		b = appendFloat(b, e.P.X)
		b = appendFloat(b, e.P.Y)
		b = appendFloat(b, e.P.T)
		b = appendFloat(b, e.Value)
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.HeapPos)))
	}
	return b
}

// DecodeStreamerState decodes a state written by AppendBinary. The
// decoder is total: any truncated, oversized or malformed input yields
// an error. It performs wire-level validation only; semantic validation
// happens in ResumeStreamer, so a decoded state is not necessarily a
// usable one.
func DecodeStreamerState(data []byte) (*StreamerState, error) {
	d := byteReader{buf: data}
	ver := d.u32()
	if d.err == nil && ver != StreamerStateVersion {
		return nil, fmt.Errorf("core: streamer state version %d, want %d", ver, StreamerStateVersion)
	}
	flags := d.u8()
	st := &StreamerState{
		Sample:  flags&1 != 0,
		HasLast: flags&2 != 0,
	}
	st.W = int(d.u32())
	st.Seen = d.count()
	st.Skip = d.count()
	st.Skipped = d.count()
	st.Draws = d.u64()
	st.ErrEst = d.f64()
	st.Last.X = d.f64()
	st.Last.Y = d.f64()
	st.Last.T = d.f64()
	n := d.u32()
	if d.err != nil {
		return nil, fmt.Errorf("core: decode streamer state: %w", d.err)
	}
	if rem := len(data) - d.off; int(n)*streamerEntryBytes != rem {
		return nil, fmt.Errorf("core: decode streamer state: %d entries declared, %d bytes remain", n, rem)
	}
	st.Entries = make([]buffer.EntryState, n)
	for i := range st.Entries {
		e := &st.Entries[i]
		e.Index = d.count()
		e.P.X = d.f64()
		e.P.Y = d.f64()
		e.P.T = d.f64()
		e.Value = d.f64()
		e.HeapPos = int(int64(d.u64()))
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: decode streamer state: %w", d.err)
	}
	return st, nil
}

func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// byteReader is a bounds-checked little-endian cursor: reads past the
// end set err and return zeros instead of panicking, so decoders can
// read a whole header and check err once.
type byteReader struct {
	buf []byte
	off int
	err error
}

func (d *byteReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at byte %d (need %d of %d)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *byteReader) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *byteReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *byteReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *byteReader) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u64 that must fit a non-negative int.
func (d *byteReader) count() int {
	v := d.u64()
	if d.err == nil && v > math.MaxInt32 {
		d.err = fmt.Errorf("implausible count %d at byte %d", v, d.off)
		return 0
	}
	return int(v)
}
