package core

import (
	"fmt"

	"rlts/internal/buffer"
	"rlts/internal/errm"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// scanEnv is the MDP of the scanning variants (RLTS, RLTS-Skip, RLTS+,
// RLTS-Skip+): points are scanned one by one into a W-point buffer and each
// scan forces a decision — drop one of the k cheapest buffered points
// (making room for the incoming one) or, when J > 0, skip the next j
// incoming points outright.
//
// At every scan the incoming point is appended tentatively so that the old
// tail's value (Eq. 7) participates in the state; a skip action un-appends
// it again. Rewards (Eq. 8) are tracked incrementally with errm.Tracker
// and are computed only when the environment is built for training.
type scanEnv struct {
	opts    Options
	t       traj.Trajectory
	w       int
	rewards bool

	buf  *buffer.Buffer
	trk  *errm.Tracker
	i    int // original index currently being scanned
	cand []*buffer.Entry
	done bool

	state []float64 // buildState scratch, reused every scan
	mask  []bool    // buildState scratch, reused every scan
}

func newScanEnv(t traj.Trajectory, w int, opts Options, rewards bool) *scanEnv {
	return &scanEnv{opts: opts, t: t, w: w, rewards: rewards}
}

// CloneEnv implements rl.EnvCloner: the trajectory is shared read-only,
// everything mutable is rebuilt by Reset, so a fresh env over the same
// inputs is an independent episode generator.
func (e *scanEnv) CloneEnv() rl.Env {
	return newScanEnv(e.t, e.w, e.opts, e.rewards)
}

// StateSize implements rl.Env.
func (e *scanEnv) StateSize() int { return e.opts.StateSize() }

// NumActions implements rl.Env.
func (e *scanEnv) NumActions() int { return e.opts.NumActions() }

// Reset implements rl.Env: it refills the buffer with the first W points
// and scans the (W+1)-th, returning the first decision state.
func (e *scanEnv) Reset() ([]float64, []bool, bool) {
	e.done = false
	e.cand = nil
	if len(e.t) <= e.w {
		// Nothing to drop: the whole trajectory fits the budget.
		e.done = true
		return nil, nil, true
	}
	e.buf = buffer.New(e.w + 1)
	for i := 0; i < e.w; i++ {
		e.buf.Append(i, e.t[i])
	}
	for en := e.buf.Head().Next(); en != e.buf.Tail(); en = en.Next() {
		e.buf.SetValue(en, e.valueOf(en))
	}
	if e.rewards {
		e.trk = errm.NewTracker(e.opts.Measure, e.t)
		for i := 1; i < e.w; i++ {
			e.trk.ExtendTo(i)
		}
	} else {
		e.trk = nil
	}
	e.i = e.w
	return e.scan()
}

// scan appends the point at index e.i and builds the decision state.
func (e *scanEnv) scan() ([]float64, []bool, bool) {
	if e.i >= len(e.t) {
		e.done = true
		return nil, nil, true
	}
	old := e.buf.Tail()
	e.buf.Append(e.i, e.t[e.i])
	// Eq. 7: the previous tail becomes interior; compute (or refresh, after
	// a skip) its value.
	e.buf.SetValue(old, e.valueOf(old))
	if e.rewards && e.trk.Tail() != e.i {
		e.trk.ExtendTo(e.i)
	}
	state, mask := e.buildState()
	return state, mask, false
}

// valueOf computes the drop-value of an interior entry: Eq. 1 (buffer-
// local) for the online variant, Eq. 12 (full scanned history) for the
// batch variants.
func (e *scanEnv) valueOf(en *buffer.Entry) float64 {
	if e.opts.Variant == Online {
		return errm.OnlineValue(e.opts.Measure, en.Prev().P, en.P, en.Next().P)
	}
	return errm.SegmentError(e.opts.Measure, e.t, en.Prev().Index, en.Next().Index)
}

// buildState assembles the k lowest values (ascending) plus, for the batch
// Skip variants, the J look-ahead skip errors, together with the legal-
// action mask. The returned slices are env-owned scratch, valid until the
// next scan: every index is rewritten each call, and rl.Rollout copies
// states into episode storage before stepping.
func (e *scanEnv) buildState() ([]float64, []bool) {
	k, j := e.opts.K, e.opts.J
	e.cand = e.buf.KLowest(k)
	if e.state == nil {
		e.state = make([]float64, e.opts.StateSize())
		e.mask = make([]bool, e.opts.NumActions())
	}
	state, mask := e.state, e.mask
	var pad float64
	if len(e.cand) > 0 {
		pad = e.cand[len(e.cand)-1].Value()
	}
	for a := 0; a < k; a++ {
		if a < len(e.cand) {
			state[a] = e.cand[a].Value()
			mask[a] = true
		} else {
			state[a] = pad
			mask[a] = false
		}
	}
	withFeatures := e.opts.Variant != Online && len(state) == k+j
	tailPrev := e.buf.Tail().Prev()
	for s := 1; s <= j; s++ {
		// Skipping s points drops t[i..i+s-1] and continues the scan at
		// t[i+s], which must exist.
		legal := e.i+s <= len(e.t)-1
		mask[k+s-1] = legal
		if withFeatures {
			if legal {
				// Error of the segment the skip would create: from the old
				// tail across everything up to the continuation point.
				state[k+s-1] = errm.SegmentError(e.opts.Measure, e.t, tailPrev.Index, e.i+s)
			} else if s > 1 {
				state[k+s-1] = state[k+s-2]
			} else {
				state[k+s-1] = pad
			}
		}
	}
	return state, mask
}

// Step implements rl.Env.
func (e *scanEnv) Step(action int) ([]float64, []bool, float64, bool) {
	if e.done {
		panic("core: Step on finished episode")
	}
	k := e.opts.K
	var before float64
	if e.rewards {
		before = e.trk.Err()
	}
	switch {
	case action < 0 || action >= e.opts.NumActions():
		panic(fmt.Sprintf("core: action %d out of range", action))
	case action < k:
		if action >= len(e.cand) {
			panic(fmt.Sprintf("core: drop action %d has no candidate (masked)", action))
		}
		d := e.cand[action]
		prev, next := e.buf.Drop(d)
		if e.rewards {
			e.trk.Drop(d.Index)
		}
		e.repair(prev, next, d)
		e.i++
	default:
		s := action - k + 1 // skip s points
		if e.i+s > len(e.t)-1 {
			panic(fmt.Sprintf("core: skip %d beyond trajectory end (masked)", s))
		}
		e.buf.RemoveTail() // un-append the tentatively inserted t[i]
		if e.rewards {
			e.trk.ExtendTo(e.i + s)
			e.trk.Drop(e.i)
		}
		e.i += s
	}
	var reward float64
	if e.rewards {
		reward = before - e.trk.Err()
	}
	state, mask, done := e.scan()
	return state, mask, reward, done
}

// repair refreshes the values of the two neighbours of a dropped entry.
// In the online variant the paper's Eqs. 5-6 apply: the fresh Eq. 1 value
// is maxed with the error of the new anchor segment w.r.t. the point just
// dropped (the only other point of the destroyed segments that is still
// accessible). The batch variants recompute Eq. 12 directly, which covers
// every dropped point in the span.
func (e *scanEnv) repair(prev, next, dropped *buffer.Entry) {
	m := e.opts.Measure
	if prev.Prev() != nil {
		var v float64
		if e.opts.Variant == Online {
			v = errm.OnlineValue(m, prev.Prev().P, prev.P, next.P)
			if dv := errm.OnlineValue(m, prev.Prev().P, dropped.P, next.P); dv > v {
				v = dv
			}
		} else {
			v = errm.SegmentError(m, e.t, prev.Prev().Index, next.Index)
		}
		e.buf.SetValue(prev, v)
	}
	if next.Next() != nil {
		var v float64
		if e.opts.Variant == Online {
			v = errm.OnlineValue(m, prev.P, next.P, next.Next().P)
			if dv := errm.OnlineValue(m, prev.P, dropped.P, next.Next().P); dv > v {
				v = dv
			}
		} else {
			v = errm.SegmentError(m, e.t, prev.Index, next.Next().Index)
		}
		e.buf.SetValue(next, v)
	}
}

// ProgressKey implements rl.Progresser: the scan index. Episodes that
// skipped different numbers of points align at equal trajectory
// positions, which is what makes their returns comparable.
func (e *scanEnv) ProgressKey() int { return e.i }

// Kept returns the kept original indices after the episode finished.
func (e *scanEnv) Kept() []int {
	if e.buf == nil {
		// Degenerate episode: everything kept.
		kept := make([]int, len(e.t))
		for i := range kept {
			kept[i] = i
		}
		return kept
	}
	return e.buf.Indices()
}

var _ rl.Env = (*scanEnv)(nil)
