package core

import (
	"context"
	"fmt"
	"math/rand"

	"rlts/internal/rl"
	"rlts/internal/traj"
)

// ctxCheckEvery is how many MDP steps pass between context checks in
// SimplifyCtx: frequent enough that cancellation lands within microseconds
// on any trajectory, rare enough to keep the per-step cost invisible next
// to the policy forward pass.
const ctxCheckEvery = 64

// Simplify runs the configured RLTS algorithm over t with storage budget w
// using the given policy and returns the kept original indices (always
// including 0 and len(t)-1, with len <= max(w, 2)).
//
// sample selects stochastic action selection (the paper samples from the
// policy in the online mode and takes the argmax in the batch mode). r is
// only used when sample is true and may be nil otherwise.
func Simplify(p *rl.Policy, t traj.Trajectory, w int, opts Options, sample bool, r *rand.Rand) ([]int, error) {
	return SimplifyCtx(context.Background(), p, t, w, opts, sample, r)
}

// SimplifyCtx is Simplify honoring a context: when ctx is canceled or its
// deadline passes, the scan stops promptly and ctx.Err() is returned
// (wrapped, so errors.Is(err, context.Canceled) and friends work). The
// HTTP service uses it to make slow simplification requests cancellable.
func SimplifyCtx(ctx context.Context, p *rl.Policy, t traj.Trajectory, w int, opts Options, sample bool, r *rand.Rand) ([]int, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if w < 2 {
		return nil, fmt.Errorf("core: budget W must be >= 2, got %d", w)
	}
	if len(t) < 2 {
		return nil, traj.ErrTooShort
	}
	if p.Spec.In != opts.StateSize() || p.Spec.Out != opts.NumActions() {
		return nil, fmt.Errorf("core: policy shape (%d in, %d out) does not match options %s (k=%d, J=%d: want %d in, %d out)",
			p.Spec.In, p.Spec.Out, opts.Name(), opts.K, opts.J, opts.StateSize(), opts.NumActions())
	}
	if sample && r == nil {
		return nil, fmt.Errorf("core: sampling requested without a rand source")
	}
	env := newEnv(t, w, opts, false)
	state, mask, done := env.Reset()
	step := 0
	for ; !done; step++ {
		if step%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: simplify: %w", err)
			}
		}
		a := p.Act(state, mask, sample, r)
		state, mask, _, done = env.Step(a)
	}
	met := coreMetrics()
	met.simplifyRuns.Inc()
	met.simplifySteps.Add(uint64(step))
	return env.Kept(), nil
}

// SimplifyRandom runs the MDP with a uniformly random policy over the
// legal actions. It is the "random policy" arm of the paper's policy
// ablation (§VI-B(4)), not a production simplifier.
func SimplifyRandom(t traj.Trajectory, w int, opts Options, r *rand.Rand) ([]int, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if w < 2 {
		return nil, fmt.Errorf("core: budget W must be >= 2, got %d", w)
	}
	if len(t) < 2 {
		return nil, traj.ErrTooShort
	}
	env := newEnv(t, w, opts, false)
	_, mask, done := env.Reset()
	for !done {
		legal := legal(mask)
		a := legal[r.Intn(len(legal))]
		_, mask, _, done = env.Step(a)
	}
	return env.Kept(), nil
}

// SimplifyFixedAction runs the MDP always taking the given action when it
// is legal (falling back to the first legal action otherwise). With
// action 0 this is the "always drop the minimum-value point" hand-crafted
// rule that the learned policy is measured against in the policy ablation.
func SimplifyFixedAction(t traj.Trajectory, w int, opts Options, action int) ([]int, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if w < 2 {
		return nil, fmt.Errorf("core: budget W must be >= 2, got %d", w)
	}
	if len(t) < 2 {
		return nil, traj.ErrTooShort
	}
	if action < 0 || action >= opts.NumActions() {
		return nil, fmt.Errorf("core: fixed action %d out of range [0, %d)", action, opts.NumActions())
	}
	env := newEnv(t, w, opts, false)
	_, mask, done := env.Reset()
	for !done {
		a := action
		if !mask[a] {
			a = legal(mask)[0]
		}
		_, mask, _, done = env.Step(a)
	}
	return env.Kept(), nil
}

func legal(mask []bool) []int {
	out := make([]int, 0, len(mask))
	for i, ok := range mask {
		if ok {
			out = append(out, i)
		}
	}
	return out
}
