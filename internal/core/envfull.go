package core

import (
	"fmt"

	"rlts/internal/buffer"
	"rlts/internal/errm"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// fullEnv is the MDP of the ++ variants (RLTS++, RLTS-Skip++): the buffer
// has variable size and initially holds the whole trajectory; every step
// drops points until only W remain. States use the Eq. 12 value definition
// over the candidate's original span.
//
// For RLTS-Skip++ the paper states that "an action of skipping j points
// means dropping j points" without fixing which; we interpret it as
// dropping the j lowest-valued points in one decision (saving j-1 state
// constructions, which is exactly the efficiency the skip actions buy),
// and expose the j-th lowest value as the corresponding state feature.
// DESIGN.md records this interpretation.
type fullEnv struct {
	opts    Options
	t       traj.Trajectory
	w       int
	rewards bool

	buf  *buffer.Buffer
	trk  *errm.Tracker
	cand []*buffer.Entry
	done bool

	state []float64 // buildState scratch, reused every step
	mask  []bool    // buildState scratch, reused every step
}

func newFullEnv(t traj.Trajectory, w int, opts Options, rewards bool) *fullEnv {
	return &fullEnv{opts: opts, t: t, w: w, rewards: rewards}
}

// CloneEnv implements rl.EnvCloner: the trajectory is shared read-only,
// everything mutable is rebuilt by Reset.
func (e *fullEnv) CloneEnv() rl.Env {
	return newFullEnv(e.t, e.w, e.opts, e.rewards)
}

// StateSize implements rl.Env.
func (e *fullEnv) StateSize() int { return e.opts.StateSize() }

// NumActions implements rl.Env.
func (e *fullEnv) NumActions() int { return e.opts.NumActions() }

// Reset implements rl.Env: it loads the entire trajectory into the buffer
// and values every interior point.
func (e *fullEnv) Reset() ([]float64, []bool, bool) {
	e.done = false
	e.cand = nil
	n := len(e.t)
	if n <= e.w {
		e.done = true
		return nil, nil, true
	}
	e.buf = buffer.New(n)
	for i := 0; i < n; i++ {
		e.buf.Append(i, e.t[i])
	}
	m := e.opts.Measure
	for en := e.buf.Head().Next(); en != e.buf.Tail(); en = en.Next() {
		e.buf.SetValue(en, errm.SegmentError(m, e.t, en.Prev().Index, en.Next().Index))
	}
	if e.rewards {
		e.trk = errm.NewFullTracker(m, e.t)
	} else {
		e.trk = nil
	}
	state, mask := e.buildState()
	return state, mask, false
}

func (e *fullEnv) buildState() ([]float64, []bool) {
	k, j := e.opts.K, e.opts.J
	need := k
	if j > need {
		need = j
	}
	e.cand = e.buf.KLowest(need)
	if e.state == nil {
		e.state = make([]float64, e.opts.StateSize())
		e.mask = make([]bool, e.opts.NumActions())
	}
	state, mask := e.state, e.mask
	var pad float64
	if len(e.cand) > 0 {
		pad = e.cand[len(e.cand)-1].Value()
	}
	for a := 0; a < k; a++ {
		if a < len(e.cand) {
			state[a] = e.cand[a].Value()
			mask[a] = true
		} else {
			state[a] = pad
			mask[a] = false
		}
	}
	budget := e.buf.Size() - e.w // how many more points must be dropped
	withFeatures := len(state) == k+j
	for s := 1; s <= j; s++ {
		legal := s <= len(e.cand) && s <= budget
		mask[k+s-1] = legal
		if withFeatures {
			if s <= len(e.cand) {
				state[k+s-1] = e.cand[s-1].Value()
			} else {
				state[k+s-1] = pad
			}
		}
	}
	// A single drop must always be possible while the episode runs.
	if budget > 0 && len(e.cand) == 0 {
		panic("core: no droppable candidates with budget remaining")
	}
	return state, mask
}

// Step implements rl.Env.
func (e *fullEnv) Step(action int) ([]float64, []bool, float64, bool) {
	if e.done {
		panic("core: Step on finished episode")
	}
	k := e.opts.K
	var before float64
	if e.rewards {
		before = e.trk.Err()
	}
	var todo []*buffer.Entry
	switch {
	case action < 0 || action >= e.opts.NumActions():
		panic(fmt.Sprintf("core: action %d out of range", action))
	case action < k:
		if action >= len(e.cand) {
			panic(fmt.Sprintf("core: drop action %d has no candidate (masked)", action))
		}
		todo = e.cand[action : action+1]
	default:
		s := action - k + 1
		if s > len(e.cand) || s > e.buf.Size()-e.w {
			panic(fmt.Sprintf("core: skip action %d illegal (masked)", s))
		}
		todo = e.cand[:s]
	}
	m := e.opts.Measure
	for _, d := range todo {
		prev, next := e.buf.Drop(d)
		if e.rewards {
			e.trk.Drop(d.Index)
		}
		if prev.Prev() != nil {
			e.buf.SetValue(prev, errm.SegmentError(m, e.t, prev.Prev().Index, next.Index))
		}
		if next.Next() != nil {
			e.buf.SetValue(next, errm.SegmentError(m, e.t, prev.Index, next.Next().Index))
		}
	}
	var reward float64
	if e.rewards {
		reward = before - e.trk.Err()
	}
	if e.buf.Size() <= e.w {
		e.done = true
		return nil, nil, reward, true
	}
	state, mask := e.buildState()
	return state, mask, reward, false
}

// ProgressKey implements rl.Progresser: how many points have been dropped
// so far. Multi-drop skip actions advance it by more than one, so episodes
// align at equal remaining-buffer sizes.
func (e *fullEnv) ProgressKey() int { return len(e.t) - e.buf.Size() }

// Kept returns the kept original indices after the episode finished.
func (e *fullEnv) Kept() []int {
	if e.buf == nil {
		kept := make([]int, len(e.t))
		for i := range kept {
			kept[i] = i
		}
		return kept
	}
	return e.buf.Indices()
}

var _ rl.Env = (*fullEnv)(nil)

// keptEnv is the common read-out interface of both environments.
type keptEnv interface {
	rl.Env
	Kept() []int
}

// newEnv builds the environment matching the variant.
func newEnv(t traj.Trajectory, w int, opts Options, rewards bool) keptEnv {
	if opts.Variant == PlusPlus {
		return newFullEnv(t, w, opts, rewards)
	}
	return newScanEnv(t, w, opts, rewards)
}
