package core

import (
	"context"
	"fmt"
	"math/rand"

	"rlts/internal/nn"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// BatchItem is one simplification job in a BatchEngine run.
type BatchItem struct {
	T traj.Trajectory
	W int
	// R is this item's sampling source when the engine runs in sampled
	// mode. Every item needs its own stream: the engine draws from it in
	// exactly the per-step order a standalone Simplify call would, which
	// is what makes batched and sequential results bit-identical. Ignored
	// (and may be nil) in greedy mode.
	R *rand.Rand
}

// BatchResult is the per-item outcome of a BatchEngine run: the kept
// original indices, or the error that item failed with. Items fail
// independently — one malformed trajectory never poisons its batch.
type BatchResult struct {
	Kept []int
	Err  error
}

// lane is the per-trajectory bookkeeping of an in-flight batch run.
type lane struct {
	env   keptEnv
	item  int       // index into the items/results slices
	state []float64 // env-owned scratch from the last Reset/Step
	mask  []bool    // env-owned scratch from the last Reset/Step
	r     *rand.Rand
	steps int
}

// BatchEngine steps many trajectory environments in lockstep, gathering
// their decision states into one matrix per round so a single
// nn.Network.ForwardBatch drives every in-flight simplification. Each
// round advances every unfinished environment by exactly one MDP step;
// finished environments leave the matrix (the active set is compacted),
// so late rounds run at the surviving width.
//
// The result of every item is bit-identical to a standalone
// Simplify(p, item.T, item.W, opts, sample, item.R) call, at any batch
// width: ForwardBatch rows match Forward exactly (see nn/batch.go), the
// per-row softmax is the same code the vector path runs, and sampled
// mode consumes each item's RNG in the same per-step order as the
// sequential loop. DESIGN.md §12 walks through the argument;
// internal/check's differential stage enforces it continuously.
//
// A BatchEngine is not safe for concurrent use — it reuses the policy's
// forward scratch and its own gather matrices across calls. Concurrent
// servers run one engine per worker over a cloned policy (rl.Policy.Clone
// copies weights and batch-norm statistics, preserving bit-identity).
type BatchEngine struct {
	p      *rl.Policy
	opts   Options
	sample bool

	states []float64 // gathered state matrix, reused across rounds and runs
	masks  [][]bool  // per-row legal-action masks, reused likewise
	lanes  []lane
}

// NewBatchEngine validates the configuration and returns an engine
// applying p under opts. sample selects stochastic action selection (the
// paper's online-mode inference); greedy argmax otherwise. The
// validation mirrors SimplifyCtx so a misconfigured engine fails at
// construction, not per item.
func NewBatchEngine(p *rl.Policy, opts Options, sample bool) (*BatchEngine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("core: batch engine needs a policy")
	}
	if p.Spec.In != opts.StateSize() || p.Spec.Out != opts.NumActions() {
		return nil, fmt.Errorf("core: policy shape (%d in, %d out) does not match options %s (k=%d, J=%d: want %d in, %d out)",
			p.Spec.In, p.Spec.Out, opts.Name(), opts.K, opts.J, opts.StateSize(), opts.NumActions())
	}
	return &BatchEngine{p: p, opts: opts, sample: sample}, nil
}

// NewBatchEngine returns a batch engine over a clone of the trained
// policy (safe to use alongside the original) in the variant's inference
// mode: sampled for the online variant, greedy argmax for the batch
// variants — the same convention as Trained.Simplify. The clone inherits
// the policy's kernel selection, so an engine built from a FastClone
// runs the FastMath kernels.
func (tr *Trained) NewBatchEngine() (*BatchEngine, error) {
	return NewBatchEngine(tr.Policy.Clone(), tr.Opts, tr.Opts.Variant == Online)
}

// SetKernel selects the inference kernel of the engine's policy:
// nn.KernelExact keeps the bit-identity contract above; nn.KernelFast
// trades it for the fused approximate kernels, whose divergence is
// bounded by the tolerance pillar in internal/check (argmax decisions
// never change on the adversarial families, so greedy results remain
// equal in practice — but the proof weakens from bitwise to measured).
func (e *BatchEngine) SetKernel(k nn.Kernel) { e.p.SetKernel(k) }

// Run simplifies every item and returns one result per item, in order.
func (e *BatchEngine) Run(items []BatchItem) []BatchResult {
	return e.RunCtx(context.Background(), items)
}

// RunCtx is Run honoring a context: when ctx is canceled or its deadline
// passes, every still-unfinished item's result carries the wrapped
// ctx.Err() (already-finished items keep their kept indices) and the
// engine returns promptly. Cancellation is checked once per lockstep
// round, which is at least as frequent as the sequential path's
// per-trajectory cadence.
func (e *BatchEngine) RunCtx(ctx context.Context, items []BatchItem) []BatchResult {
	res := make([]BatchResult, len(items))
	met := coreMetrics()
	lanes := e.lanes[:0]
	for i := range items {
		it := &items[i]
		switch {
		case it.W < 2:
			res[i].Err = fmt.Errorf("core: budget W must be >= 2, got %d", it.W)
			continue
		case len(it.T) < 2:
			res[i].Err = traj.ErrTooShort
			continue
		case e.sample && it.R == nil:
			res[i].Err = fmt.Errorf("core: sampling requested without a rand source")
			continue
		}
		env := newEnv(it.T, it.W, e.opts, false)
		state, mask, done := env.Reset()
		if done {
			// Degenerate episode (trajectory fits the budget): finished
			// before the first decision, exactly like the sequential loop.
			res[i].Kept = env.Kept()
			met.simplifyRuns.Inc()
			continue
		}
		lanes = append(lanes, lane{env: env, item: i, state: state, mask: mask, r: it.R})
	}
	e.lanes = lanes // keep the (possibly grown) backing array for reuse
	in, out := e.opts.StateSize(), e.opts.NumActions()

	for len(lanes) > 0 {
		if err := ctx.Err(); err != nil {
			werr := fmt.Errorf("core: batch simplify: %w", err)
			for i := range lanes {
				res[lanes[i].item].Err = werr
			}
			break
		}
		b := len(lanes)
		if cap(e.states) < b*in {
			e.states = make([]float64, b*in)
		}
		if cap(e.masks) < b {
			e.masks = make([][]bool, b)
		}
		states, masks := e.states[:b*in], e.masks[:b]
		for li := range lanes {
			copy(states[li*in:(li+1)*in], lanes[li].state)
			masks[li] = lanes[li].mask
		}
		probs := e.p.ProbsBatch(states, b, masks)
		// Act on every lane, compacting finished ones out in place. The
		// masks gathered above were consumed by ProbsBatch already, so a
		// Step overwriting its env's scratch cannot disturb other rows.
		keep := lanes[:0]
		for li := range lanes {
			l := &lanes[li]
			row := probs[li*out : (li+1)*out]
			var a int
			if e.sample {
				a = rl.SampleAction(row, l.r)
			} else {
				a = rl.GreedyAction(row)
			}
			state, mask, _, done := l.env.Step(a)
			l.steps++
			if done {
				res[l.item].Kept = l.env.Kept()
				// Same flush discipline as SimplifyCtx: one atomic pair
				// per finished run, never per MDP step.
				met.simplifyRuns.Inc()
				met.simplifySteps.Add(uint64(l.steps))
			} else {
				l.state, l.mask = state, mask
				keep = append(keep, *l)
			}
		}
		lanes = keep
	}
	// Drop env/trajectory references so the reusable lane backing array
	// does not pin finished episodes across runs.
	clear(e.lanes[:cap(e.lanes)])
	e.lanes = e.lanes[:0]
	return res
}
