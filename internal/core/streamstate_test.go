package core

import (
	"math"
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/geo"
)

// samePoints compares two snapshots bit for bit.
func samePoints(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].X) != math.Float64bits(b[i].X) ||
			math.Float64bits(a[i].Y) != math.Float64bits(b[i].Y) ||
			math.Float64bits(a[i].T) != math.Float64bits(b[i].T) {
			return false
		}
	}
	return true
}

// resumeAt runs a streamer over tr but at push index cut exports its
// state, round-trips it through the binary codec, and continues on the
// rehydrated copy. seed seeds both the original and the fast-forwarded
// resume RNG.
func resumeAt(t *testing.T, opts Options, w int, tr []geo.Point, sample bool, seed int64, cut int) []geo.Point {
	t.Helper()
	p := streamPolicy(t, opts)
	var r *rand.Rand
	if sample {
		r = rand.New(rand.NewSource(seed))
	}
	s, err := NewStreamer(p, w, opts, sample, r)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range tr {
		if i == cut {
			raw := s.ExportState().AppendBinary(nil)
			st, err := DecodeStreamerState(raw)
			if err != nil {
				t.Fatalf("cut %d: decode: %v", cut, err)
			}
			var rr *rand.Rand
			if sample {
				rr = rand.New(rand.NewSource(seed))
			}
			s, err = ResumeStreamer(p, opts, st, rr)
			if err != nil {
				t.Fatalf("cut %d: resume: %v", cut, err)
			}
		}
		s.Push(pt)
	}
	return s.Snapshot()
}

// TestStreamerResumeBitIdentical is the core durability contract: a
// streamer spilled and rehydrated at ANY push boundary — mid buffer
// fill, mid pending skip, right after a drop — produces a snapshot
// bit-identical to the uninterrupted run, in greedy and sampled modes.
func TestStreamerResumeBitIdentical(t *testing.T) {
	const w = 8
	tr := testTraj(91, 120)
	for _, j := range []int{0, 2} {
		for _, sample := range []bool{false, true} {
			opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: j}
			seed := int64(17)
			p := streamPolicy(t, opts)
			var r *rand.Rand
			if sample {
				r = rand.New(rand.NewSource(seed))
			}
			base, err := NewStreamer(p, w, opts, sample, r)
			if err != nil {
				t.Fatal(err)
			}
			for _, pt := range tr {
				base.Push(pt)
			}
			want := base.Snapshot()
			for cut := 0; cut <= len(tr); cut++ {
				got := resumeAt(t, opts, w, tr, sample, seed, cut)
				if !samePoints(got, want) {
					t.Fatalf("J=%d sample=%v: resume at push %d diverged:\n got %v\nwant %v",
						j, sample, cut, got, want)
				}
			}
		}
	}
}

// TestStreamerResumeContinuesCounters: seen/skipped/draws carry over so
// downstream accounting (push responses, metrics) stays cumulative.
func TestStreamerResumeContinuesCounters(t *testing.T) {
	opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: 2}
	p := streamPolicy(t, opts)
	tr := testTraj(92, 100)
	s, err := NewStreamer(p, 6, opts, true, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range tr[:60] {
		s.Push(pt)
	}
	st := s.ExportState()
	if st.Seen != 60 {
		t.Fatalf("exported seen = %d", st.Seen)
	}
	res, err := ResumeStreamer(p, opts, st, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seen() != s.Seen() || res.Skipped() != s.Skipped() || res.BufferSize() != s.BufferSize() {
		t.Fatalf("resumed counters differ: seen %d/%d skipped %d/%d buffered %d/%d",
			res.Seen(), s.Seen(), res.Skipped(), s.Skipped(), res.BufferSize(), s.BufferSize())
	}
	l1, ok1 := s.Last()
	l2, ok2 := res.Last()
	if ok1 != ok2 || !l1.Equal(l2) {
		t.Fatal("resumed last point differs")
	}
}

func validState(t *testing.T) (*StreamerState, Options) {
	t.Helper()
	opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: 2}
	p := streamPolicy(t, opts)
	s, err := NewStreamer(p, 6, opts, true, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range testTraj(93, 40) {
		s.Push(pt)
	}
	return s.ExportState(), opts
}

func TestResumeStreamerRejectsCorruptState(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(st *StreamerState)
	}{
		{"tiny W", func(st *StreamerState) { st.W = 1 }},
		{"negative skip", func(st *StreamerState) { st.Skip = -1 }},
		{"skip beyond J", func(st *StreamerState) { st.Skip = 5 }},
		{"draws without sampling", func(st *StreamerState) { st.Sample = false; st.Draws = 3 }},
		{"buffer/seen mismatch", func(st *StreamerState) { st.Seen = 3 }},
		{"buffer beyond budget", func(st *StreamerState) { st.W = len(st.Entries) - 1 }},
		{"endpoints dropped", func(st *StreamerState) { st.Entries = st.Entries[:1]; st.Entries[0].HeapPos = -1 }},
		{"NaN error estimate", func(st *StreamerState) { st.ErrEst = math.NaN() }},
		{"negative error estimate", func(st *StreamerState) { st.ErrEst = -1 }},
		{"heap slot out of range", func(st *StreamerState) {
			for i := range st.Entries {
				if st.Entries[i].HeapPos >= 0 {
					st.Entries[i].HeapPos += 100 // beyond the member count
					break
				}
			}
		}},
		{"seen without last", func(st *StreamerState) { st.HasLast = false }},
		{"non-finite last", func(st *StreamerState) { st.Last.X = math.NaN() }},
		{"non-finite buffered point", func(st *StreamerState) { st.Entries[2].P.Y = math.Inf(1) }},
		{"NaN drop value", func(st *StreamerState) { st.Entries[2].Value = math.NaN() }},
		{"indices out of order", func(st *StreamerState) { st.Entries[2].Index = st.Entries[1].Index }},
		{"index beyond seen", func(st *StreamerState) { st.Entries[len(st.Entries)-1].Index = 10000 }},
		{"timestamps out of order", func(st *StreamerState) { st.Entries[2].P.T = st.Entries[0].P.T }},
		{"last precedes tail", func(st *StreamerState) { st.Last.T = st.Entries[0].P.T }},
		{"heap slot duplicated", func(st *StreamerState) {
			set := false
			for i := range st.Entries {
				if st.Entries[i].HeapPos == 0 {
					if set {
						t.Fatal("two roots in dump")
					}
					set = true
				}
			}
			for i := range st.Entries {
				if st.Entries[i].HeapPos == 1 {
					st.Entries[i].HeapPos = 0
				}
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st, opts := validState(t)
			c.corrupt(st)
			p := streamPolicy(t, opts)
			if _, err := ResumeStreamer(p, opts, st, rand.New(rand.NewSource(1))); err == nil {
				t.Fatal("corrupt state resumed without error")
			}
		})
	}
	// And the uncorrupted control resumes fine.
	st, opts := validState(t)
	if _, err := ResumeStreamer(streamPolicy(t, opts), opts, st, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("control state rejected: %v", err)
	}
}

// TestDecodeStreamerStateTotality: every truncation of a valid encoding
// and a sweep of bit flips either decode to an error or to a state —
// never a panic — and truncations always error.
func TestDecodeStreamerStateTotality(t *testing.T) {
	st, _ := validState(t)
	raw := st.AppendBinary(nil)
	if _, err := DecodeStreamerState(raw); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeStreamerState(raw[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	for i := 0; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		_, _ = DecodeStreamerState(mut) // must not panic
	}
	if _, err := DecodeStreamerState(append(raw, 0)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}

// TestStreamerStateRoundTrip: the codec preserves every field exactly.
func TestStreamerStateRoundTrip(t *testing.T) {
	st, _ := validState(t)
	got, err := DecodeStreamerState(st.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.W != st.W || got.Sample != st.Sample || got.Seen != st.Seen ||
		got.Skip != st.Skip || got.Skipped != st.Skipped || got.Draws != st.Draws ||
		got.HasLast != st.HasLast || !got.Last.Equal(st.Last) {
		t.Fatalf("header differs: %+v vs %+v", got, st)
	}
	if len(got.Entries) != len(st.Entries) {
		t.Fatalf("entry count %d vs %d", len(got.Entries), len(st.Entries))
	}
	for i := range st.Entries {
		a, b := got.Entries[i], st.Entries[i]
		if a.Index != b.Index || !a.P.Equal(b.P) || a.HeapPos != b.HeapPos ||
			math.Float64bits(a.Value) != math.Float64bits(b.Value) {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
		}
	}
	var empty StreamerState
	empty.W = 2
	got, err = DecodeStreamerState(empty.AppendBinary(nil))
	if err != nil || len(got.Entries) != 0 {
		t.Fatalf("empty state round-trip: %v", err)
	}
}
