package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testTraj(seed int64, n int) traj.Trajectory {
	return gen.New(gen.Geolife(), seed).Trajectory(n)
}

// runRandom plays an episode with uniformly random legal actions and
// returns the summed rewards and the environment.
func runRandom(e keptEnv, r *rand.Rand) float64 {
	state, mask, done := e.Reset()
	_ = state
	var total float64
	for !done {
		var legal []int
		for i, ok := range mask {
			if ok {
				legal = append(legal, i)
			}
		}
		if len(legal) == 0 {
			panic("no legal action")
		}
		a := legal[r.Intn(len(legal))]
		var reward float64
		state, mask, reward, done = e.Step(a)
		_ = state
		total += reward
	}
	return total
}

func allOptions(j int) []Options {
	var out []Options
	for _, v := range []Variant{Online, Plus, PlusPlus} {
		for _, m := range errm.Measures {
			out = append(out, Options{Measure: m, Variant: v, K: 3, J: j})
		}
	}
	return out
}

func TestEpisodeProducesValidSimplification(t *testing.T) {
	tr := testTraj(1, 60)
	r := rand.New(rand.NewSource(2))
	for _, j := range []int{0, 2} {
		for _, opts := range allOptions(j) {
			w := 12
			env := newEnv(tr, w, opts, false)
			runRandom(env, r)
			kept := env.Kept()
			if len(kept) > w {
				t.Errorf("%s/%v: kept %d > W %d", opts.Name(), opts.Measure, len(kept), w)
			}
			if kept[0] != 0 || kept[len(kept)-1] != len(tr)-1 {
				t.Errorf("%s/%v: endpoints not kept: %v", opts.Name(), opts.Measure, kept)
			}
			for i := 1; i < len(kept); i++ {
				if kept[i] <= kept[i-1] {
					t.Fatalf("%s/%v: kept not increasing: %v", opts.Name(), opts.Measure, kept)
				}
			}
		}
	}
}

func TestRewardsTelescopeToFinalError(t *testing.T) {
	// Eq. 9: the undiscounted reward sum must equal -eps(T'_final).
	tr := testTraj(3, 50)
	r := rand.New(rand.NewSource(4))
	for _, j := range []int{0, 2} {
		for _, opts := range allOptions(j) {
			env := newEnv(tr, 10, opts, true)
			total := runRandom(env, r)
			kept := env.Kept()
			finalErr := errm.Error(opts.Measure, tr, kept)
			if !almost(total, -finalErr, 1e-9) {
				t.Errorf("%s/%v: reward sum %v, want %v", opts.Name(), opts.Measure, total, -finalErr)
			}
		}
	}
}

func TestScanEnvStateShape(t *testing.T) {
	tr := testTraj(5, 40)
	opts := Options{Measure: errm.SED, Variant: Plus, K: 3, J: 2}
	env := newScanEnv(tr, 8, opts, false)
	state, mask, done := env.Reset()
	if done {
		t.Fatal("episode done immediately")
	}
	if len(state) != 5 || len(mask) != 5 {
		t.Fatalf("state/mask lengths %d/%d, want 5/5", len(state), len(mask))
	}
	// Values ascend over the k slots.
	if state[0] > state[1] || state[1] > state[2] {
		t.Errorf("state values not ascending: %v", state[:3])
	}
	// All drop actions legal at the start with W=8 (7 droppable).
	for a := 0; a < 3; a++ {
		if !mask[a] {
			t.Errorf("drop action %d masked at start", a)
		}
	}
	// Skip actions legal early in the trajectory.
	if !mask[3] || !mask[4] {
		t.Errorf("skip actions masked early: %v", mask)
	}
}

func TestOnlineSkipStateStaysK(t *testing.T) {
	opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: 2}
	if opts.StateSize() != 3 {
		t.Errorf("online skip state size %d, want 3 (k only)", opts.StateSize())
	}
	if opts.NumActions() != 5 {
		t.Errorf("actions %d, want 5", opts.NumActions())
	}
	optsPlus := Options{Measure: errm.SED, Variant: Plus, K: 3, J: 2}
	if optsPlus.StateSize() != 5 {
		t.Errorf("skip+ state size %d, want 5", optsPlus.StateSize())
	}
}

func TestSkipMaskNearTrajectoryEnd(t *testing.T) {
	// Drive an episode to the second-to-last scan and check skips that
	// would pass the final point are masked.
	tr := testTraj(7, 20)
	opts := Options{Measure: errm.SED, Variant: Online, K: 2, J: 5}
	env := newScanEnv(tr, 10, opts, false)
	_, mask, done := env.Reset()
	for !done {
		// Take the first legal drop action to advance one point at a time.
		a := -1
		for i := 0; i < opts.K; i++ {
			if mask[i] {
				a = i
				break
			}
		}
		// Check the mask is consistent with remaining points.
		remaining := len(tr) - 1 - env.i // points after the current scan
		for s := 1; s <= opts.J; s++ {
			want := s <= remaining
			if mask[opts.K+s-1] != want {
				t.Fatalf("at i=%d: skip %d mask = %v, want %v", env.i, s, mask[opts.K+s-1], want)
			}
		}
		_, mask, _, done = env.Step(a)
	}
}

func TestSkipActionSkipsPoints(t *testing.T) {
	tr := testTraj(9, 30)
	opts := Options{Measure: errm.SED, Variant: Online, K: 2, J: 3}
	env := newScanEnv(tr, 6, opts, false)
	_, mask, done := env.Reset()
	if done {
		t.Fatal("done at reset")
	}
	if !mask[opts.K+2] {
		t.Fatal("skip-3 masked at start")
	}
	i0 := env.i
	env.Step(opts.K + 2) // skip 3 points
	if env.i != i0+3 {
		t.Errorf("scan index %d after skip-3 from %d, want %d", env.i, i0, i0+3)
	}
	// Skipped points must never appear in the final simplification.
	for _, ix := range env.buf.Indices() {
		if ix > i0-1 && ix < i0+3 {
			t.Errorf("skipped point %d still buffered", ix)
		}
	}
}

func TestSkipReducesDecisions(t *testing.T) {
	tr := testTraj(11, 200)
	r := rand.New(rand.NewSource(12))
	opts := Options{Measure: errm.SED, Variant: Online, K: 3, J: 0}
	env := newScanEnv(tr, 20, opts, false)
	steps := countSteps(env, r)
	optsSkip := opts
	optsSkip.J = 3
	envSkip := newScanEnv(tr, 20, optsSkip, false)
	stepsSkip := countSteps(envSkip, r)
	if stepsSkip >= steps {
		t.Errorf("skip episode took %d decisions, plain %d; expected fewer", stepsSkip, steps)
	}
}

func countSteps(e keptEnv, r *rand.Rand) int {
	_, mask, done := e.Reset()
	n := 0
	for !done {
		var legal []int
		for i, ok := range mask {
			if ok {
				legal = append(legal, i)
			}
		}
		a := legal[r.Intn(len(legal))]
		_, mask, _, done = e.Step(a)
		n++
	}
	return n
}

func TestFullEnvDropsToBudget(t *testing.T) {
	tr := testTraj(13, 50)
	r := rand.New(rand.NewSource(14))
	for _, j := range []int{0, 2} {
		opts := Options{Measure: errm.PED, Variant: PlusPlus, K: 3, J: j}
		env := newFullEnv(tr, 15, opts, false)
		runRandom(env, r)
		if got := len(env.Kept()); got != 15 {
			// Multi-drop skips can overshoot by at most... they are masked
			// to never pass the budget, so exactly W is required.
			t.Errorf("J=%d: kept %d, want exactly 15", j, got)
		}
	}
}

func TestFullEnvSkipMaskRespectsBudget(t *testing.T) {
	tr := testTraj(15, 12)
	opts := Options{Measure: errm.SED, Variant: PlusPlus, K: 2, J: 4}
	env := newFullEnv(tr, 9, opts, false)
	_, mask, done := env.Reset()
	if done {
		t.Fatal("done at reset")
	}
	// Budget allows dropping only 3 points; skip-4 must be masked.
	if mask[opts.K+3] {
		t.Error("skip-4 legal with budget 3")
	}
	if !mask[opts.K+2] {
		t.Error("skip-3 masked with budget 3")
	}
}

func TestDegenerateTrajectoryFitsBudget(t *testing.T) {
	tr := testTraj(17, 10)
	opts := DefaultOptions(errm.SED, Online)
	env := newEnv(tr, 20, opts, true)
	_, _, done := env.Reset()
	if !done {
		t.Fatal("expected immediate done when n <= W")
	}
	kept := env.Kept()
	if len(kept) != 10 {
		t.Errorf("kept %d, want all 10", len(kept))
	}
}

func TestEnvResetReusable(t *testing.T) {
	tr := testTraj(19, 40)
	r := rand.New(rand.NewSource(20))
	for _, opts := range []Options{
		{Measure: errm.SED, Variant: Online, K: 3, J: 2},
		{Measure: errm.SED, Variant: PlusPlus, K: 3, J: 2},
	} {
		env := newEnv(tr, 10, opts, true)
		t1 := runRandom(env, rand.New(rand.NewSource(99)))
		t2 := runRandom(env, rand.New(rand.NewSource(99)))
		if !almost(t1, t2, 1e-9) {
			t.Errorf("%s: same seed episodes differ after Reset: %v vs %v", opts.Name(), t1, t2)
		}
		_ = r
	}
}

func TestKeptAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, wByte, vByte uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + int(wByte%40)
		tr := testTraj(seed, n)
		w := 5 + int(wByte%10)
		opts := Options{
			Measure: errm.Measures[int(vByte)%4],
			Variant: []Variant{Online, Plus, PlusPlus}[int(vByte/4)%3],
			K:       2 + int(vByte%2),
			J:       int(vByte % 3),
		}
		env := newEnv(tr, w, opts, false)
		runRandom(env, r)
		kept := env.Kept()
		if len(kept) > w && n > w {
			return false
		}
		sim := tr.Pick(kept)
		return sim.IsSimplificationOf(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEnvShapesMatchRLInterface(t *testing.T) {
	tr := testTraj(23, 30)
	opts := Options{Measure: errm.SAD, Variant: Plus, K: 4, J: 3}
	var env rl.Env = newEnv(tr, 8, opts, true)
	if env.StateSize() != 7 || env.NumActions() != 7 {
		t.Errorf("shapes %d/%d, want 7/7", env.StateSize(), env.NumActions())
	}
	state, mask, done := env.Reset()
	if done {
		t.Fatal("done at reset")
	}
	if len(state) != 7 || len(mask) != 7 {
		t.Errorf("state/mask %d/%d", len(state), len(mask))
	}
}
