package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// batchPolicy builds an untrained (random-weight) policy for opts —
// untrained weights exercise the equality proof just as well as trained
// ones, since both paths share the same network.
func batchPolicy(t *testing.T, opts Options, seed int64) *rl.Policy {
	t.Helper()
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 20, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// batchItems builds b trajectories of staggered lengths (so environments
// finish on different rounds, exercising the lane compaction) including,
// when b is large enough, a degenerate one that fits the budget whole.
func batchItems(b, w int) []BatchItem {
	items := make([]BatchItem, b)
	for i := range items {
		n := 24 + 11*i%97 + i
		if b >= 4 && i == 2 {
			n = w // fits the budget: done at Reset
		}
		items[i] = BatchItem{T: testTraj(int64(300+i), n), W: w}
	}
	return items
}

// TestBatchEngineMatchesSequential is the width sweep required by the
// batching work: at B = 1, 2, 7 and 64, in both argmax and sampled
// modes, across all three variants, BatchEngine must produce exactly
// the kept indices of B independent core.Simplify calls (sampled mode
// feeds both paths identically-seeded RNG streams).
func TestBatchEngineMatchesSequential(t *testing.T) {
	configs := []Options{
		{Measure: errm.SED, Variant: Online, K: 3},
		{Measure: errm.PED, Variant: Online, K: 3, J: 2},
		{Measure: errm.SAD, Variant: Plus, K: 3, J: 2},
		{Measure: errm.DAD, Variant: PlusPlus, K: 3, J: 2},
	}
	const w = 9
	for _, opts := range configs {
		p := batchPolicy(t, opts, 11)
		for _, sample := range []bool{false, true} {
			eng, err := NewBatchEngine(p, opts, sample)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range []int{1, 2, 7, 64} {
				items := batchItems(b, w)
				if sample {
					for i := range items {
						items[i].R = rand.New(rand.NewSource(int64(9000 + i)))
					}
				}
				got := eng.Run(items)
				if len(got) != b {
					t.Fatalf("%s sample=%v b=%d: %d results", opts.Name(), sample, b, len(got))
				}
				for i, res := range got {
					if res.Err != nil {
						t.Fatalf("%s sample=%v b=%d item %d: %v", opts.Name(), sample, b, i, res.Err)
					}
					var r *rand.Rand
					if sample {
						r = rand.New(rand.NewSource(int64(9000 + i)))
					}
					want, err := Simplify(p, items[i].T, w, opts, sample, r)
					if err != nil {
						t.Fatalf("sequential Simplify: %v", err)
					}
					if !equalInts(res.Kept, want) {
						t.Fatalf("%s sample=%v b=%d item %d (len %d): batch kept %v, sequential %v",
							opts.Name(), sample, b, i, len(items[i].T), res.Kept, want)
					}
				}
			}
		}
	}
}

// TestBatchEnginePerItemErrors verifies malformed items fail alone with
// the sequential path's error values while their neighbours succeed.
func TestBatchEnginePerItemErrors(t *testing.T) {
	opts := Options{Measure: errm.SED, Variant: Online, K: 3}
	p := batchPolicy(t, opts, 5)
	eng, err := NewBatchEngine(p, opts, true)
	if err != nil {
		t.Fatal(err)
	}
	good := testTraj(7, 40)
	items := []BatchItem{
		{T: good, W: 8, R: rand.New(rand.NewSource(1))},
		{T: good, W: 1, R: rand.New(rand.NewSource(2))},     // budget too small
		{T: good[:1], W: 8, R: rand.New(rand.NewSource(3))}, // too short
		{T: good, W: 8}, // sampling without RNG
		{T: good, W: 8, R: rand.New(rand.NewSource(4))},
	}
	res := eng.Run(items)
	if res[0].Err != nil || res[4].Err != nil {
		t.Fatalf("good items failed: %v, %v", res[0].Err, res[4].Err)
	}
	if res[1].Err == nil || res[2].Err == nil || res[3].Err == nil {
		t.Fatalf("malformed items succeeded: %+v", res)
	}
	if !errors.Is(res[2].Err, traj.ErrTooShort) {
		t.Fatalf("short trajectory error = %v, want traj.ErrTooShort", res[2].Err)
	}
	want, err := Simplify(p, good, 8, opts, true, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(res[0].Kept, want) {
		t.Fatalf("good item diverged from sequential: %v vs %v", res[0].Kept, want)
	}
}

// TestBatchEngineCtxCancel verifies a canceled context marks every
// unfinished item with the wrapped context error.
func TestBatchEngineCtxCancel(t *testing.T) {
	opts := Options{Measure: errm.SED, Variant: Online, K: 3}
	p := batchPolicy(t, opts, 5)
	eng, err := NewBatchEngine(p, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := eng.RunCtx(ctx, []BatchItem{{T: testTraj(1, 50), W: 8}, {T: testTraj(2, 60), W: 8}})
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestTrainedNewBatchEngine checks the Trained convenience constructor
// picks the variant's inference mode and matches Trained.Simplify.
func TestTrainedNewBatchEngine(t *testing.T) {
	opts := Options{Measure: errm.SED, Variant: Plus, K: 3, J: 2}
	tr := &Trained{Opts: opts, Policy: batchPolicy(t, opts, 21)}
	eng, err := tr.NewBatchEngine()
	if err != nil {
		t.Fatal(err)
	}
	tt := testTraj(3, 55)
	res := eng.Run([]BatchItem{{T: tt, W: 10}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	want, err := tr.Simplify(tt, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(res[0].Kept, want) {
		t.Fatalf("batch %v != Trained.Simplify %v", res[0].Kept, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
