package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/faultinject"
)

func trainedBytes(t *testing.T, tr *Trained) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeTrainBitIdentical is the end-to-end form of the checkpoint
// guarantee: kill a core.Train run at a batch boundary, resume it from
// the checkpoint with the same dataset and options, and the final saved
// policy is byte-identical to the uninterrupted run's.
func TestResumeTrainBitIdentical(t *testing.T) {
	ds := smallDataset(3, 6, 60)
	opts := DefaultOptions(errm.SED, Online)
	to := quickTrainOptions()
	to.RL.Epochs = 2 // 6 trajectories x 2 epochs = 12 batches

	base, baseRes, err := Train(ds, opts, to)
	if err != nil {
		t.Fatal(err)
	}
	want := trainedBytes(t, base)

	for _, crashAt := range []int{2, 7} {
		ckpt := filepath.Join(t.TempDir(), "train.ckpt")
		crashed := to
		crashed.RL.Checkpoint = ckpt
		crashed.RL.OnBatch = faultinject.CrashAfter(crashAt)
		if _, _, err := Train(ds, opts, crashed); !errors.Is(err, faultinject.ErrCrash) {
			t.Fatalf("crashAt=%d: want ErrCrash, got %v", crashAt, err)
		}

		resumeTo := to
		resumeTo.RL.Checkpoint = ckpt
		resumed, res, err := ResumeTrain(ds, opts, resumeTo)
		if err != nil {
			t.Fatalf("crashAt=%d: resume: %v", crashAt, err)
		}
		if got := trainedBytes(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("crashAt=%d: resumed policy differs from uninterrupted run", crashAt)
		}
		if res.EpisodesRun != baseRes.EpisodesRun || res.StepsRun != baseRes.StepsRun {
			t.Errorf("crashAt=%d: counters (%d, %d) != uninterrupted (%d, %d)",
				crashAt, res.EpisodesRun, res.StepsRun, baseRes.EpisodesRun, baseRes.StepsRun)
		}
	}
}

// TestResumeTrainValidation: resume without a checkpoint path, with a
// missing file, or against mismatched options must fail up front.
func TestResumeTrainValidation(t *testing.T) {
	ds := smallDataset(3, 4, 50)
	opts := DefaultOptions(errm.SED, Online)
	to := quickTrainOptions()
	if _, _, err := ResumeTrain(ds, opts, to); err == nil {
		t.Error("resume without a checkpoint path accepted")
	}
	to.RL.Checkpoint = filepath.Join(t.TempDir(), "missing.ckpt")
	if _, _, err := ResumeTrain(ds, opts, to); err == nil {
		t.Error("resume from a missing checkpoint accepted")
	}

	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	crashed := quickTrainOptions()
	crashed.RL.Checkpoint = ckpt
	crashed.RL.OnBatch = faultinject.CrashAfter(1)
	if _, _, err := Train(ds, opts, crashed); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatal(err)
	}
	// Options with a different state/action shape cannot adopt the policy.
	other := DefaultOptions(errm.SED, Online)
	other.K = 5
	otherTo := quickTrainOptions()
	otherTo.RL.Checkpoint = ckpt
	if _, _, err := ResumeTrain(ds, other, otherTo); err == nil {
		t.Error("resume under a different state size accepted")
	}
}

// TestSimplifyCtxCanceled: the context plumbed through the simplification
// entry points must abort the scan.
func TestSimplifyCtxCanceled(t *testing.T) {
	ds := smallDataset(1, 5, 60)
	opts := DefaultOptions(errm.SED, Online)
	tr, _, err := Train(ds, opts, quickTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	target := smallDataset(42, 1, 200)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.SimplifyGreedyCtx(ctx, target, 20); !errors.Is(err, context.Canceled) {
		t.Errorf("SimplifyGreedyCtx on canceled context: %v", err)
	}
	if _, err := tr.SimplifyCtx(ctx, target, 20, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("SimplifyCtx on canceled context: %v", err)
	}
	// A live context changes nothing.
	kept, err := tr.SimplifyGreedyCtx(context.Background(), target, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > 20 {
		t.Errorf("kept %d > 20", len(kept))
	}
}
