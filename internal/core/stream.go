package core

import (
	"fmt"
	"math/rand"

	"rlts/internal/buffer"
	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/obs"
	"rlts/internal/rl"
)

// Streamer is the push-based online interface of RLTS / RLTS-Skip: points
// are fed one at a time, as a GPS sensor produces them, and the W-point
// buffer always holds the current simplification of everything seen so
// far. This is the deployment shape of the paper's online mode — the
// slice-based Simplify is just this loop driven from an in-memory
// trajectory.
//
// Only the Online variant is streamable: the batch variants' states need
// access to dropped points or the whole trajectory. Skip actions work on a
// stream too: a skip of j discards the current and the next j-1 pushed
// points unseen. Since a stream has no known end, a skip may swallow what
// turns out to be the final point; Snapshot therefore appends the most
// recent point when it is not buffered, preserving the invariant that a
// simplification ends at the last observed point.
type Streamer struct {
	opts   Options
	w      int
	p      *rl.Policy
	sample bool
	r      *rand.Rand

	buf      *buffer.Buffer
	n        int // points pushed so far
	skip     int // pending pushes to drop silently
	nskipped int // points ever swallowed by skip actions
	last     geo.Point
	hasLast  bool

	// errEst is the online estimate of the simplification error introduced
	// so far: the running maximum of the drop value (Eq. 1) each removed
	// point carried at the moment it was dropped — by a policy action or a
	// budget shrink. It is the same per-point estimate STTrace accumulates
	// and the best obtainable without retaining the original stream; points
	// swallowed by skip actions are discarded unseen and cannot contribute
	// (the algorithm itself has no value for them either).
	errEst float64

	// draws counts the Float64 values consumed from r: the sampling RNG's
	// position. A stream resumed from ExportState re-derives the identical
	// stream of future draws by fast-forwarding a freshly seeded source
	// this many steps (the checkpoint treatment rl gives EpSeq, applied to
	// streams).
	draws uint64

	// Unflushed metric deltas: plain ints so Push costs nothing extra;
	// FlushMetrics publishes them as two atomic adds into met.
	met              *coreMetricsSet
	unflushedPushed  int
	unflushedSkipped int
}

// NewStreamer creates a streaming simplifier with buffer budget w.
// sample selects stochastic action selection (the paper's online-mode
// default); r may be nil when sample is false.
func NewStreamer(p *rl.Policy, w int, opts Options, sample bool, r *rand.Rand) (*Streamer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Variant != Online {
		return nil, fmt.Errorf("core: only the Online variant can stream, got %s", opts.Name())
	}
	if w < 2 {
		return nil, fmt.Errorf("core: budget W must be >= 2, got %d", w)
	}
	if p.Spec.In != opts.StateSize() || p.Spec.Out != opts.NumActions() {
		return nil, fmt.Errorf("core: policy shape does not match options")
	}
	if sample && r == nil {
		return nil, fmt.Errorf("core: sampling requested without a rand source")
	}
	return &Streamer{
		opts:   opts,
		w:      w,
		p:      p,
		sample: sample,
		r:      r,
		buf:    buffer.New(w + 1),
		met:    coreMetrics(),
	}, nil
}

// UseRegistry redirects this streamer's metrics (points pushed/skipped,
// buffer fill) from obs.Default() into reg. The HTTP session manager
// calls it right after NewStreamer so session metrics land in the
// registry its /metrics endpoint serves (Config.Metrics).
func (s *Streamer) UseRegistry(reg *obs.Registry) {
	s.met = coreMetricsFor(reg)
}

// Push feeds the next point of the stream. Observations that are not
// finite or whose timestamp does not advance past the previous push are
// discarded: the streamer's output contract (Snapshot is always a valid
// trajectory — finite points, strictly increasing timestamps) cannot be
// met otherwise, and for a GPS feed dropping a duplicate or out-of-order
// fix is the only sensible interpretation. Callers that need rejections
// surfaced (the HTTP session layer) validate before pushing.
func (s *Streamer) Push(pt geo.Point) {
	if !pt.IsFinite() || (s.hasLast && pt.T <= s.last.T) {
		return
	}
	s.last, s.hasLast = pt, true
	s.unflushedPushed++
	defer func() { s.n++ }()
	if s.skip > 0 {
		s.skip--
		s.nskipped++
		s.unflushedSkipped++
		return
	}
	// Fill while the buffer is below budget. Size, not points-pushed,
	// is the criterion: after SetBudget grows W the buffer refills to the
	// new cap (for a fixed-budget streamer the two are equivalent — size
	// equals pushes during fill and equals W after).
	if s.buf.Size() < s.w {
		s.buf.Append(s.n, pt)
		// Value the point that just became interior.
		if s.buf.Size() >= 3 {
			in := s.buf.Tail().Prev()
			s.buf.SetValue(in, s.value(in))
		}
		return
	}
	old := s.buf.Tail()
	s.buf.Append(s.n, pt)
	s.buf.SetValue(old, s.value(old))
	state, mask := s.buildState()
	a := s.p.Act(state, mask, s.sample, s.r)
	if s.sample {
		s.draws++ // Act consumes exactly one Float64 per sampled decision
	}
	if a < s.opts.K {
		d := s.cand(a)
		if v := d.Value(); v > s.errEst {
			s.errEst = v
		}
		prev, next := s.buf.Drop(d)
		s.repairOnline(prev, next, d)
		return
	}
	// Skip action: drop the point just pushed and the next (a-K) points.
	s.buf.RemoveTail()
	s.skip = a - s.opts.K
}

// cand returns the a-th lowest-valued droppable entry of the current
// state (recomputed; K is tiny).
func (s *Streamer) cand(a int) *buffer.Entry {
	return s.buf.KLowest(s.opts.K)[a]
}

func (s *Streamer) value(e *buffer.Entry) float64 {
	return errm.OnlineValue(s.opts.Measure, e.Prev().P, e.P, e.Next().P)
}

func (s *Streamer) buildState() ([]float64, []bool) {
	k, j := s.opts.K, s.opts.J
	cands := s.buf.KLowest(k)
	state := make([]float64, s.opts.StateSize())
	mask := make([]bool, s.opts.NumActions())
	var pad float64
	if len(cands) > 0 {
		pad = cands[len(cands)-1].Value()
	}
	for a := 0; a < k; a++ {
		if a < len(cands) {
			state[a] = cands[a].Value()
			mask[a] = true
		} else {
			state[a] = pad
		}
	}
	for sk := 1; sk <= j; sk++ {
		mask[k+sk-1] = true // stream end unknown; see Snapshot
	}
	return state, mask
}

func (s *Streamer) repairOnline(prev, next, dropped *buffer.Entry) {
	m := s.opts.Measure
	if prev.Prev() != nil {
		v := errm.OnlineValue(m, prev.Prev().P, prev.P, next.P)
		if dv := errm.OnlineValue(m, prev.Prev().P, dropped.P, next.P); dv > v {
			v = dv
		}
		s.buf.SetValue(prev, v)
	}
	if next.Next() != nil {
		v := errm.OnlineValue(m, prev.P, next.P, next.Next().P)
		if dv := errm.OnlineValue(m, prev.P, dropped.P, next.Next().P); dv > v {
			v = dv
		}
		s.buf.SetValue(next, v)
	}
}

// SetBudget changes the streamer's storage budget W. Growing is free:
// the cap is raised and the buffer refills as the stream advances.
// Shrinking evicts the lowest-valued droppable points immediately — the
// buffer's value heap (the machinery behind KLowest) already orders them
// — repairing neighbour values after each eviction exactly as a policy
// drop would, so the remaining simplification stays consistent. The
// fleet allocator calls this on rebalance; it is deterministic, and the
// evicted values fold into ErrEst like any other drop.
func (s *Streamer) SetBudget(w int) error {
	if w < 2 {
		return fmt.Errorf("core: budget W must be >= 2, got %d", w)
	}
	s.w = w
	for s.buf.Size() > w {
		e := s.buf.Min()
		if e == nil {
			// Only endpoints remain; size is <= 2 <= w, unreachable.
			break
		}
		if v := e.Value(); v > s.errEst {
			s.errEst = v
		}
		prev, next := s.buf.Drop(e)
		s.repairOnline(prev, next, e)
	}
	return nil
}

// Budget returns the current storage budget W.
func (s *Streamer) Budget() int { return s.w }

// ErrEst returns the online estimate of the simplification error
// introduced so far: the running maximum of the drop values of every
// point removed from the buffer (policy drops and budget shrinks). It is
// 0 while nothing has been dropped. This is an estimate computed from
// buffered neighbours at drop time, not an exact max-link recomputation
// against the original stream — the streamer does not retain the
// original, by design.
func (s *Streamer) ErrEst() float64 { return s.errEst }

// PolicyPressure returns the trained policy's value signal for budget
// allocation: the probability-weighted drop value of the next decision,
// sum over drop actions of pi(a|state) * state[a]. A session whose
// cheapest droppable points are expensive — and whose policy would still
// have to drop one — reports high pressure; one full of near-collinear
// points reports pressure near zero. Returns 0 while the buffer is
// below budget (no decision is pending). Reading probabilities consumes
// no RNG draws, so calling this never perturbs a sampled stream.
func (s *Streamer) PolicyPressure() float64 {
	if s.buf.Size() < s.w || s.buf.Droppable() == 0 {
		return 0
	}
	state, mask := s.buildState()
	probs := s.p.Probs(state, mask, false)
	var v float64
	for a := 0; a < s.opts.K && a < len(probs); a++ {
		if mask[a] {
			v += probs[a] * state[a]
		}
	}
	return v
}

// Seen returns the number of points pushed so far.
func (s *Streamer) Seen() int { return s.n }

// Skipped returns the number of points ever swallowed by skip actions.
func (s *Streamer) Skipped() int { return s.nskipped }

// BufferSize returns the number of points currently buffered.
func (s *Streamer) BufferSize() int { return s.buf.Size() }

// Last returns the most recent accepted point and whether one exists.
// Callers that validate pushes against cross-push ordering (the HTTP
// session layer) read the boundary from here instead of tracking their
// own copy.
func (s *Streamer) Last() (geo.Point, bool) { return s.last, s.hasLast }

// Snapshot returns the current simplified trajectory. If the most recent
// pushed point is not buffered (it was skipped), it is appended so the
// snapshot always ends at the latest observation. The append is guarded
// by timestamp, not point equality: the extra point is added only when
// its timestamp strictly advances past the buffered tail, so a snapshot
// of a stream with >= 2 accepted points is always a valid input to
// traj.FromPoints (no duplicate timestamps, strictly increasing order).
func (s *Streamer) Snapshot() []geo.Point {
	s.FlushMetrics()
	if s.w > 0 {
		s.met.streamBufferFill.Observe(float64(s.buf.Size()) / float64(s.w))
	}
	pts := s.buf.Points()
	if s.hasLast && (len(pts) == 0 || s.last.T > pts[len(pts)-1].T) {
		pts = append(pts, s.last)
	}
	return pts
}

// FlushMetrics publishes the per-point counters accumulated since the
// last flush to the obs registry. Snapshot flushes automatically; owners
// that retire a streamer without a final snapshot (the HTTP session
// manager's TTL eviction) call it so no points go unaccounted.
func (s *Streamer) FlushMetrics() {
	if s.unflushedPushed > 0 {
		s.met.streamPoints.Add(uint64(s.unflushedPushed))
		s.unflushedPushed = 0
	}
	if s.unflushedSkipped > 0 {
		s.met.streamSkipped.Add(uint64(s.unflushedSkipped))
		s.unflushedSkipped = 0
	}
}
