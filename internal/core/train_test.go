package core

import (
	"bytes"
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

func smallDataset(seed int64, count, n int) []traj.Trajectory {
	return gen.New(gen.Geolife(), seed).Dataset(count, n)
}

func quickTrainOptions() TrainOptions {
	to := DefaultTrainOptions()
	to.RL.Episodes = 4
	to.RL.Seed = 7
	return to
}

func TestTrainProducesWorkingPolicy(t *testing.T) {
	ds := smallDataset(1, 15, 80)
	opts := DefaultOptions(errm.SED, Online)
	tr, res, err := Train(ds, opts, quickTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EpisodesRun == 0 || res.StepsRun == 0 {
		t.Fatalf("no training happened: %+v", res)
	}
	target := smallDataset(99, 1, 100)[0]
	kept, err := tr.Simplify(target, 20, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > 20 {
		t.Errorf("kept %d > 20", len(kept))
	}
	if !target.Pick(kept).IsSimplificationOf(target) {
		t.Error("invalid simplification")
	}
}

func TestTrainedPolicyBeatsUntrainedPolicy(t *testing.T) {
	// The headline claim at miniature scale: a trained policy yields lower
	// SED error than an untrained (random-weight) policy on held-out data,
	// both evaluated the way the paper runs the online mode (sampling).
	ds := smallDataset(2, 40, 120)
	opts := DefaultOptions(errm.SED, Online)
	to := quickTrainOptions()
	to.RL.Episodes = 10
	to.RL.Epochs = 5
	trained, _, err := Train(ds, opts, to)
	if err != nil {
		t.Fatal(err)
	}

	test := smallDataset(77, 15, 120)
	const w = 12
	evalPolicy := func(p *rl.Policy) float64 {
		r := rand.New(rand.NewSource(5))
		var sum float64
		for _, tt := range test {
			for rep := 0; rep < 5; rep++ {
				kept, err := Simplify(p, tt, w, opts, true, r)
				if err != nil {
					t.Fatal(err)
				}
				sum += errm.Error(errm.SED, tt, kept)
			}
		}
		return sum
	}
	// The paper's policy ablation (§VI-B(4)): the learned policy must beat
	// a uniform-random policy over the same action space.
	uniformErr := func() float64 {
		r := rand.New(rand.NewSource(5))
		var sum float64
		for _, tt := range test {
			for rep := 0; rep < 5; rep++ {
				env := newEnv(tt, w, opts, false)
				runRandom(env, r)
				sum += errm.Error(errm.SED, tt, env.Kept())
			}
		}
		return sum
	}()
	trainedErr := evalPolicy(trained.Policy)
	if trainedErr >= uniformErr {
		t.Errorf("trained policy error %.3f not better than uniform-random %.3f", trainedErr, uniformErr)
	}
}

func TestTrainSkipVariant(t *testing.T) {
	ds := smallDataset(3, 10, 60)
	opts := Options{Measure: errm.PED, Variant: Plus, K: 3, J: 2}
	tr, _, err := Train(ds, opts, quickTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	target := smallDataset(88, 1, 80)[0]
	kept, err := tr.SimplifyGreedy(target, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > 16 {
		t.Errorf("kept %d > 16", len(kept))
	}
}

func TestTrainPlusPlusVariant(t *testing.T) {
	ds := smallDataset(4, 8, 50)
	opts := Options{Measure: errm.SED, Variant: PlusPlus, K: 3, J: 2}
	tr, _, err := Train(ds, opts, quickTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	target := smallDataset(66, 1, 60)[0]
	kept, err := tr.SimplifyGreedy(target, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 12 {
		t.Errorf("kept %d, want exactly 12", len(kept))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, _, err := Train(nil, DefaultOptions(errm.SED, Online), quickTrainOptions()); err == nil {
		t.Error("empty dataset accepted")
	}
	bad := DefaultOptions(errm.SED, Online)
	bad.K = 0
	if _, _, err := Train(smallDataset(5, 2, 50), bad, quickTrainOptions()); err == nil {
		t.Error("K=0 accepted")
	}
	// All trajectories shorter than the minimum budget: unusable.
	tiny := []traj.Trajectory{smallDataset(6, 1, 3)[0]}
	if _, _, err := Train(tiny, DefaultOptions(errm.SED, Online), quickTrainOptions()); err == nil {
		t.Error("dataset with no trainable trajectories accepted")
	}
}

func TestSimplifyValidation(t *testing.T) {
	ds := smallDataset(7, 5, 50)
	opts := DefaultOptions(errm.SED, Online)
	tr, _, err := Train(ds, opts, quickTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	target := ds[0]
	if _, err := Simplify(tr.Policy, target, 1, opts, false, nil); err == nil {
		t.Error("W=1 accepted")
	}
	if _, err := Simplify(tr.Policy, traj.Trajectory{target[0]}, 5, opts, false, nil); err == nil {
		t.Error("single-point trajectory accepted")
	}
	if _, err := Simplify(tr.Policy, target, 5, opts, true, nil); err == nil {
		t.Error("sampling without rand accepted")
	}
	mismatch := opts
	mismatch.K = 5
	if _, err := Simplify(tr.Policy, target, 5, mismatch, false, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestTrainedSaveLoadRoundTrip(t *testing.T) {
	ds := smallDataset(8, 6, 50)
	opts := Options{Measure: errm.DAD, Variant: Plus, K: 3, J: 2}
	tr, _, err := Train(ds, opts, quickTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := LoadTrained(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Opts != tr.Opts {
		t.Errorf("options mismatch: %+v vs %+v", tr2.Opts, tr.Opts)
	}
	target := smallDataset(55, 1, 70)[0]
	k1, err := tr.SimplifyGreedy(target, 14)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := tr2.SimplifyGreedy(target, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != len(k2) {
		t.Fatalf("different results after round trip: %v vs %v", k1, k2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("different results after round trip: %v vs %v", k1, k2)
		}
	}
}

func TestLoadTrainedRejectsGarbage(t *testing.T) {
	if _, err := LoadTrained(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadTrained(bytes.NewReader([]byte(`{"measure":"XYZ","variant":"rlts","k":3,"j":0,"policy":{}}`))); err == nil {
		t.Error("bad measure accepted")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	ds := smallDataset(9, 5, 60)
	opts := DefaultOptions(errm.SED, Plus)
	tr, _, err := Train(ds, opts, quickTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	target := smallDataset(44, 1, 80)[0]
	a, _ := tr.SimplifyGreedy(target, 16)
	b, _ := tr.SimplifyGreedy(target, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy simplification not deterministic")
		}
	}
}

func TestOptionsNameAndParse(t *testing.T) {
	tests := []struct {
		o    Options
		want string
	}{
		{Options{Variant: Online, K: 3}, "RLTS"},
		{Options{Variant: Online, K: 3, J: 2}, "RLTS-Skip"},
		{Options{Variant: Plus, K: 3}, "RLTS+"},
		{Options{Variant: Plus, K: 3, J: 2}, "RLTS-Skip+"},
		{Options{Variant: PlusPlus, K: 3}, "RLTS++"},
		{Options{Variant: PlusPlus, K: 3, J: 2}, "RLTS-Skip++"},
	}
	for _, tc := range tests {
		if got := tc.o.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
	for _, s := range []string{"rlts", "rlts+", "rlts++"} {
		if _, err := ParseVariant(s); err != nil {
			t.Errorf("ParseVariant(%q): %v", s, err)
		}
	}
	if _, err := ParseVariant("rlts+++"); err == nil {
		t.Error("bad variant accepted")
	}
}
