package core

import (
	"fmt"

	"rlts/internal/rl"
	"rlts/internal/traj"
)

// DecisionTrace records every policy decision of one greedy simplification
// run: the state the policy saw, the legal-action mask, the action the
// argmax chose, and the final kept indices. The FastMath tolerance pillar
// in internal/check replays the states through exact and fast kernels and
// compares distributions and argmax decisions on real decision-state
// inputs rather than synthetic vectors.
type DecisionTrace struct {
	// States holds len(Actions) row-major state rows of StateSize width.
	States []float64
	// Masks holds one legal-action mask per decision. Entries alias
	// nothing — each mask is an independent copy.
	Masks [][]bool
	// Actions holds the greedy action taken at each decision.
	Actions []int
	// Kept holds the simplification result (kept original indices).
	Kept []int
	// StateSize and NumActions record the row widths of States and Masks.
	StateSize, NumActions int
}

// TraceGreedy runs a greedy (argmax) simplification of t with budget w and
// returns the full decision trace. The kept indices are identical to
// Simplify(p, t, w, opts, false, nil) — the trace only copies out what the
// sequential loop already computes. Intended for differential testing and
// debugging, not hot paths: every state and mask is copied.
func TraceGreedy(p *rl.Policy, t traj.Trajectory, w int, opts Options) (*DecisionTrace, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if w < 2 {
		return nil, fmt.Errorf("core: budget W must be >= 2, got %d", w)
	}
	if len(t) < 2 {
		return nil, traj.ErrTooShort
	}
	if p.Spec.In != opts.StateSize() || p.Spec.Out != opts.NumActions() {
		return nil, fmt.Errorf("core: policy shape (%d in, %d out) does not match options %s (k=%d, J=%d: want %d in, %d out)",
			p.Spec.In, p.Spec.Out, opts.Name(), opts.K, opts.J, opts.StateSize(), opts.NumActions())
	}
	tr := &DecisionTrace{StateSize: opts.StateSize(), NumActions: opts.NumActions()}
	env := newEnv(t, w, opts, false)
	state, mask, done := env.Reset()
	for !done {
		tr.States = append(tr.States, state...)
		tr.Masks = append(tr.Masks, append([]bool(nil), mask...))
		a := p.Act(state, mask, false, nil)
		tr.Actions = append(tr.Actions, a)
		state, mask, _, done = env.Step(a)
	}
	tr.Kept = env.Kept()
	return tr, nil
}
