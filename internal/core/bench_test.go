package core

import (
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/rl"
)

// BenchmarkBuildState measures the decision-state construction of the
// scanning MDP — the single hottest call of both training and inference.
// With the env scratch warm it should not allocate.
func BenchmarkBuildState(b *testing.B) {
	t := smallDataset(1, 1, 2000)[0]
	for _, name := range []string{"online", "batch-skip"} {
		b.Run(name, func(b *testing.B) {
			opts := DefaultOptions(errm.SED, Online)
			if name == "batch-skip" {
				opts = DefaultOptions(errm.SED, Plus)
				opts.J = 2
			}
			env := newScanEnv(t, 200, opts, false)
			if _, _, done := env.Reset(); done {
				b.Fatal("degenerate episode")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = env.buildState()
			}
		})
	}
}

// BenchmarkRolloutEpisode measures one full training episode on the real
// scanning MDP, rewards included.
func BenchmarkRolloutEpisode(b *testing.B) {
	t := smallDataset(2, 1, 500)[0]
	opts := DefaultOptions(errm.SED, Online)
	env := newScanEnv(t, 50, opts, true)
	r := rand.New(rand.NewSource(3))
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 20, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rl.Rollout(env, p, r, false)
	}
}
