package core

import (
	"sync"

	"rlts/internal/errm"
	"rlts/internal/obs"
)

// Simplification metrics, registered in the process-wide obs registry.
// Hot-path discipline: the MDP step loop and Streamer.Push never touch an
// atomic per step — counts accumulate in plain locals/fields and flush as
// a single atomic add per run (Simplify) or per snapshot (Streamer), so
// the simplify/rollout benchmarks stay within noise of the uninstrumented
// build.
//
// Registration is lazy (first Simplify/Snapshot pays it) rather than
// package-init eager: init-time registry allocations shift the heap
// layout of everything allocated afterwards, which measurably perturbs
// the alignment-sensitive hot-path microbenchmarks.
type coreMetricsSet struct {
	simplifyRuns     *obs.Counter
	simplifySteps    *obs.Counter
	streamPoints     *obs.Counter
	streamSkipped    *obs.Counter
	streamBufferFill *obs.Histogram

	// simplifyError holds the per-measure error distribution of served
	// simplifications. The buckets span the synthetic profiles' typical
	// SED/PED meters and the dimensionless SAD/DAD radians.
	simplifyError map[errm.Measure]*obs.Histogram
}

var (
	coreMetricsMu    sync.Mutex
	coreMetricsByReg map[*obs.Registry]*coreMetricsSet
)

// coreMetricsFor returns the core metric set registered in reg, building
// it on first use. Most callers record into obs.Default() via
// coreMetrics(); the HTTP layer passes its own registry so serving-path
// series land where GET /metrics scrapes them (see Streamer.UseRegistry
// and ObserveErrorIn).
func coreMetricsFor(reg *obs.Registry) *coreMetricsSet {
	coreMetricsMu.Lock()
	defer coreMetricsMu.Unlock()
	if s, ok := coreMetricsByReg[reg]; ok {
		return s
	}
	errs := make(map[errm.Measure]*obs.Histogram, len(errm.Measures))
	for _, ms := range errm.Measures {
		errs[ms] = reg.Histogram("rlts_simplify_error",
			"Simplification error of served results, by measure",
			obs.ExpBuckets(1e-4, 4, 14), obs.L("measure", ms.String()))
	}
	s := &coreMetricsSet{
		simplifyRuns: reg.Counter("rlts_simplify_runs_total",
			"Completed Simplify/SimplifyCtx invocations"),
		simplifySteps: reg.Counter("rlts_simplify_steps_total",
			"MDP steps executed by Simplify/SimplifyCtx"),
		streamPoints: reg.Counter("rlts_stream_points_total",
			"Points pushed through core.Streamer instances"),
		streamSkipped: reg.Counter("rlts_stream_skipped_points_total",
			"Points discarded unseen by streaming skip actions"),
		streamBufferFill: reg.Histogram("rlts_stream_buffer_fill_ratio",
			"Buffer occupancy as a fraction of W, observed at snapshot time",
			obs.LinearBuckets(0.1, 0.1, 10)),
		simplifyError: errs,
	}
	if coreMetricsByReg == nil {
		coreMetricsByReg = make(map[*obs.Registry]*coreMetricsSet)
	}
	coreMetricsByReg[reg] = s
	return s
}

func coreMetrics() *coreMetricsSet { return coreMetricsFor(obs.Default()) }

// ObserveError records a computed simplification error into the
// per-measure distribution of the process-wide registry. Callers that
// already paid for errm.Error (the evaluation harness) feed it; the
// simplify hot path itself never computes errors.
func ObserveError(m errm.Measure, v float64) {
	ObserveErrorIn(obs.Default(), m, v)
}

// ObserveErrorIn is ObserveError recording into an explicit registry —
// the HTTP handlers use it so the distribution appears in the registry
// their /metrics endpoint serves.
func ObserveErrorIn(reg *obs.Registry, m errm.Measure, v float64) {
	if h, ok := coreMetricsFor(reg).simplifyError[m]; ok {
		h.Observe(v)
	}
}
