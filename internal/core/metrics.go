package core

import (
	"sync"

	"rlts/internal/errm"
	"rlts/internal/obs"
)

// Simplification metrics, registered in the process-wide obs registry.
// Hot-path discipline: the MDP step loop and Streamer.Push never touch an
// atomic per step — counts accumulate in plain locals/fields and flush as
// a single atomic add per run (Simplify) or per snapshot (Streamer), so
// the simplify/rollout benchmarks stay within noise of the uninstrumented
// build.
//
// Registration is lazy (first Simplify/Snapshot pays it) rather than
// package-init eager: init-time registry allocations shift the heap
// layout of everything allocated afterwards, which measurably perturbs
// the alignment-sensitive hot-path microbenchmarks.
type coreMetricsSet struct {
	simplifyRuns     *obs.Counter
	simplifySteps    *obs.Counter
	streamPoints     *obs.Counter
	streamSkipped    *obs.Counter
	streamBufferFill *obs.Histogram

	// simplifyError holds the per-measure error distribution of served
	// simplifications. The buckets span the synthetic profiles' typical
	// SED/PED meters and the dimensionless SAD/DAD radians.
	simplifyError map[errm.Measure]*obs.Histogram
}

var (
	coreMetricsOnce sync.Once
	coreMetricsVal  *coreMetricsSet
)

func coreMetrics() *coreMetricsSet {
	coreMetricsOnce.Do(func() {
		r := obs.Default()
		errs := make(map[errm.Measure]*obs.Histogram, len(errm.Measures))
		for _, ms := range errm.Measures {
			errs[ms] = r.Histogram("rlts_simplify_error",
				"Simplification error of served results, by measure",
				obs.ExpBuckets(1e-4, 4, 14), obs.L("measure", ms.String()))
		}
		coreMetricsVal = &coreMetricsSet{
			simplifyRuns: r.Counter("rlts_simplify_runs_total",
				"Completed Simplify/SimplifyCtx invocations"),
			simplifySteps: r.Counter("rlts_simplify_steps_total",
				"MDP steps executed by Simplify/SimplifyCtx"),
			streamPoints: r.Counter("rlts_stream_points_total",
				"Points pushed through core.Streamer instances"),
			streamSkipped: r.Counter("rlts_stream_skipped_points_total",
				"Points discarded unseen by streaming skip actions"),
			streamBufferFill: r.Histogram("rlts_stream_buffer_fill_ratio",
				"Buffer occupancy as a fraction of W, observed at snapshot time",
				obs.LinearBuckets(0.1, 0.1, 10)),
			simplifyError: errs,
		}
	})
	return coreMetricsVal
}

// ObserveError records a computed simplification error into the
// per-measure distribution. Callers that already paid for errm.Error
// (the HTTP handlers, the evaluation harness) feed it; the simplify hot
// path itself never computes errors.
func ObserveError(m errm.Measure, v float64) {
	if h, ok := coreMetrics().simplifyError[m]; ok {
		h.Observe(v)
	}
}
