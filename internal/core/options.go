// Package core implements the paper's contribution: the Min-Error
// trajectory simplification MDPs and the six RLTS algorithm variants built
// on learned policies.
//
//	RLTS / RLTS-Skip        — online mode (buffer-only state, Eq. 1 values)
//	RLTS+ / RLTS-Skip+      — batch mode (scanned-history state, Eq. 12 values)
//	RLTS++ / RLTS-Skip++    — batch mode (variable-size buffer over all points)
//
// The scanning variants process a trajectory point by point with a bounded
// buffer; at every scan the MDP state is the k lowest drop-values in the
// buffer and an action either drops one of those k points (making room for
// the incoming point) or — in the Skip variants — discards the next j
// incoming points outright. The ++ variants instead start from the full
// trajectory and repeatedly drop until the budget W is met.
//
// Package rl provides policy learning (REINFORCE); this package provides
// the environments, the inference loop and the training entry points.
package core

import (
	"fmt"

	"rlts/internal/errm"
)

// Variant selects the state definition / buffer regime of the MDP.
type Variant int

const (
	// Online is RLTS / RLTS-Skip: values are computed from buffered points
	// only (Eq. 1), usable in both online and batch modes.
	Online Variant = iota
	// Plus is RLTS+ / RLTS-Skip+: values cover all scanned points
	// (Eq. 12), so dropped points still inform the state. Batch mode only.
	Plus
	// PlusPlus is RLTS++ / RLTS-Skip++: a variable-size buffer holding the
	// entire trajectory, shrunk point by point. Batch mode only.
	PlusPlus
)

// String names the variant following the paper, without the Skip suffix
// (the skip capability is orthogonal and reported by Options.Name).
func (v Variant) String() string {
	switch v {
	case Online:
		return "RLTS"
	case Plus:
		return "RLTS+"
	case PlusPlus:
		return "RLTS++"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant converts a variant name ("rlts", "rlts+", "rlts++").
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "rlts", "RLTS", "online":
		return Online, nil
	case "rlts+", "RLTS+", "plus":
		return Plus, nil
	case "rlts++", "RLTS++", "plusplus":
		return PlusPlus, nil
	}
	return 0, fmt.Errorf("core: unknown variant %q", s)
}

// Options configures an RLTS MDP / algorithm instance.
type Options struct {
	Measure errm.Measure
	Variant Variant
	// K is the state size: the number of lowest drop-values exposed to the
	// policy and the number of drop actions. Paper default: 3.
	K int
	// J is the number of skip actions; 0 disables skipping (plain RLTS).
	// Paper default for the Skip variants: 2.
	J int
}

// DefaultOptions returns the paper's default hyper-parameters for the
// given measure and variant, without skipping.
func DefaultOptions(m errm.Measure, v Variant) Options {
	return Options{Measure: m, Variant: v, K: 3}
}

// Validate checks the options.
func (o Options) Validate() error {
	if !o.Measure.Valid() {
		return fmt.Errorf("core: invalid measure %d", int(o.Measure))
	}
	if o.K < 1 {
		return fmt.Errorf("core: K must be >= 1, got %d", o.K)
	}
	if o.J < 0 {
		return fmt.Errorf("core: J must be >= 0, got %d", o.J)
	}
	switch o.Variant {
	case Online, Plus, PlusPlus:
	default:
		return fmt.Errorf("core: invalid variant %d", int(o.Variant))
	}
	return nil
}

// Name returns the paper's name for the configured algorithm, e.g.
// "RLTS-Skip+" for {Variant: Plus, J: 2}.
func (o Options) Name() string {
	base := "RLTS"
	if o.J > 0 {
		base = "RLTS-Skip"
	}
	switch o.Variant {
	case Plus:
		return base + "+"
	case PlusPlus:
		return base + "++"
	default:
		return base
	}
}

// StateSize returns the policy input dimensionality: k drop-values, plus —
// for the batch Skip variants — J look-ahead skip errors (the paper's
// RLTS-Skip+ state augmentation).
func (o Options) StateSize() int {
	if o.J > 0 && o.Variant != Online {
		return o.K + o.J
	}
	return o.K
}

// NumActions returns the action-space size: k drop actions plus J skip
// actions.
func (o Options) NumActions() int { return o.K + o.J }
