package core

import (
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

// TestBatchValueSeesDroppedPoints pins the defining difference between
// RLTS (Eq. 1) and RLTS+ (Eq. 12): after points are dropped, the batch
// value of a buffer point accounts for the dropped points in its span
// while the online value does not.
func TestBatchValueSeesDroppedPoints(t *testing.T) {
	// Trajectory: a straight line except p2, which spikes off-line.
	// p1..p5 with a large spike at p2.
	tr := traj.Trajectory{
		geo.Pt(0, 0, 0),
		geo.Pt(1, 0, 1),
		geo.Pt(2, 9, 2), // spike (will be dropped first)
		geo.Pt(3, 0, 3),
		geo.Pt(4, 0, 4),
		geo.Pt(5, 0, 5),
		geo.Pt(6, 0, 6),
	}
	mkEnv := func(v Variant) *scanEnv {
		opts := Options{Measure: errm.PED, Variant: v, K: 5}
		return newScanEnv(tr, 4, opts, false)
	}
	for _, v := range []Variant{Online, Plus} {
		env := mkEnv(v)
		if _, _, done := env.Reset(); done {
			t.Fatal("done at reset")
		}
		// Find and drop the spike (index 2) via whichever candidate slot
		// holds it... dropping by value is policy business; here drive the
		// env directly: cand holds entries sorted by value.
		var spikeSlot = -1
		for i, e := range env.cand {
			if e.Index == 2 {
				spikeSlot = i
			}
		}
		if spikeSlot < 0 {
			t.Fatalf("%v: spike not among candidates", v)
		}
		env.Step(spikeSlot)
		// The buffer now bridges the dropped spike. The *stored* value of
		// the bridging neighbour includes the spike under both variants
		// (the repair rule of Eqs. 5-6 maxes in the just-dropped point),
		// but a *fresh* Eq. 1 value must ignore it while a fresh Eq. 12
		// value keeps it — that is exactly what separates RLTS from RLTS+.
		found := false
		for e := env.buf.Head(); e != nil; e = e.Next() {
			if e.Index == 3 && e.Prev() != nil && e.Next() != nil {
				found = true
				stored := e.Value()
				if stored < 5 {
					t.Errorf("%v: stored repair value of p3 = %v, want >= spike deviation (Eqs. 5-6)", v, stored)
				}
				fresh := env.valueOf(e)
				if v == Plus && fresh < 5 {
					t.Errorf("Plus: fresh Eq.12 value of p3 = %v, want >= spike deviation", fresh)
				}
				if v == Online && fresh > 5 {
					t.Errorf("Online: fresh Eq.1 value of p3 = %v, should ignore the dropped spike", fresh)
				}
			}
		}
		if !found {
			t.Fatalf("%v: p3 not interior", v)
		}
	}
}

// TestSimplifyRandomValidOutput exercises the random-policy ablation path.
func TestSimplifyRandomValidOutput(t *testing.T) {
	tr := testTraj(51, 80)
	r := rand.New(rand.NewSource(2))
	for _, v := range []Variant{Online, Plus, PlusPlus} {
		opts := Options{Measure: errm.SED, Variant: v, K: 3, J: 1}
		kept, err := SimplifyRandom(tr, 12, opts, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(kept) > 12 {
			t.Errorf("%v: kept %d", v, len(kept))
		}
		if !tr.Pick(kept).IsSimplificationOf(tr) {
			t.Errorf("%v: invalid simplification", v)
		}
	}
	if _, err := SimplifyRandom(tr, 1, DefaultOptions(errm.SED, Online), r); err == nil {
		t.Error("W=1 accepted")
	}
}
