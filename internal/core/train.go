package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"rlts/internal/errm"
	"rlts/internal/nn"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// TrainOptions configures policy learning for an RLTS variant.
type TrainOptions struct {
	RL rl.TrainConfig
	// WRatio sets the per-trajectory storage budget used during training:
	// W = max(MinW, WRatio * len(t)). The paper evaluates at W between
	// 0.1 and 0.5 of the trajectory length; training at 0.1 generalizes
	// across that range because the state is W-independent. Default 0.1.
	WRatio float64
	// MinW floors the training budget. Default 4 (so states are non-trivial).
	MinW int
}

// DefaultTrainOptions returns the paper's training setup.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{RL: rl.DefaultTrainConfig(), WRatio: 0.1, MinW: 4}
}

func (t *TrainOptions) fillDefaults() {
	if t.WRatio <= 0 || t.WRatio >= 1 {
		t.WRatio = 0.1
	}
	if t.MinW < 2 {
		t.MinW = 4
	}
}

// Trained bundles a learned policy with the options it was trained for,
// so it can be persisted and later applied without reassembling the
// configuration by hand.
type Trained struct {
	Opts   Options
	Policy *rl.Policy
}

// Train learns a policy for the given options over a repository of
// training trajectories (the paper samples 1,000 trajectories and runs 10
// episodes per trajectory). It returns the best policy observed together
// with training statistics.
func Train(dataset []traj.Trajectory, opts Options, to TrainOptions) (*Trained, *rl.TrainResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	to.fillDefaults()
	envs, err := buildTrainEnvs(dataset, opts, to)
	if err != nil {
		return nil, nil, err
	}
	r := rand.New(rand.NewSource(to.RL.Seed))
	hidden := to.RL.Hidden
	if hidden <= 0 {
		hidden = rl.DefaultTrainConfig().Hidden
	}
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), hidden, r)
	if err != nil {
		return nil, nil, err
	}
	initSkipBias(p, opts)
	res, err := rl.TrainPolicy(p, envs, to.RL)
	if err != nil {
		return nil, nil, err
	}
	// Use the final policy: single-episode rewards are not comparable
	// across trajectories of different difficulty, so the "best-episode"
	// snapshot tends to capture an easy trajectory rather than a good
	// policy when the training repository is heterogeneous.
	return &Trained{Opts: opts, Policy: res.Final}, res, nil
}

// ResumeTrain continues a Train run that checkpointed itself (TrainOptions
// with RL.Checkpoint set) and was interrupted. dataset and opts must be
// those of the original run: the environments are rebuilt from them the
// same deterministic way, so the resumed run finishes with the
// bit-identical policy of an uninterrupted one. Checkpointing stays active
// under the same path, so a resumed run that crashes again can itself be
// resumed.
func ResumeTrain(dataset []traj.Trajectory, opts Options, to TrainOptions) (*Trained, *rl.TrainResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	to.fillDefaults()
	if to.RL.Checkpoint == "" {
		return nil, nil, fmt.Errorf("core: resume needs TrainOptions.RL.Checkpoint to name the checkpoint file")
	}
	ck, err := rl.ReadCheckpointFile(to.RL.Checkpoint)
	if err != nil {
		return nil, nil, err
	}
	if ck.Policy.Spec.In != opts.StateSize() || ck.Policy.Spec.Out != opts.NumActions() {
		return nil, nil, fmt.Errorf("core: checkpoint policy shape (%d in, %d out) does not match options %s (want %d, %d)",
			ck.Policy.Spec.In, ck.Policy.Spec.Out, opts.Name(), opts.StateSize(), opts.NumActions())
	}
	envs, err := buildTrainEnvs(dataset, opts, to)
	if err != nil {
		return nil, nil, err
	}
	res, err := rl.ResumePolicy(ck, envs, to.RL)
	if err != nil {
		return nil, nil, err
	}
	return &Trained{Opts: opts, Policy: res.Final}, res, nil
}

// buildTrainEnvs constructs the per-trajectory training environments.
// Deterministic in its inputs: Train and ResumeTrain must see identical
// environment sequences for checkpoint resume to replay the original run.
func buildTrainEnvs(dataset []traj.Trajectory, opts Options, to TrainOptions) ([]rl.Env, error) {
	if len(dataset) == 0 {
		return nil, fmt.Errorf("core: empty training dataset")
	}
	envs := make([]rl.Env, 0, len(dataset))
	for _, t := range dataset {
		w := trainBudget(len(t), to)
		if len(t) <= w {
			continue // nothing to learn from
		}
		envs = append(envs, newEnv(t, w, opts, true))
	}
	if len(envs) == 0 {
		return nil, fmt.Errorf("core: no usable training trajectories (all shorter than W)")
	}
	return envs, nil
}

// initSkipBias starts the skip actions rare: a skipped point can never be
// recovered, and a policy that skips at the roughly uniform rate of a
// fresh softmax throws away ~J/(K+J) of the trajectory unseen before it
// has learned when skipping is safe. A negative output bias (~2% initial
// skip probability per skip action) makes skipping opt-in: the gradient
// raises it exactly where skips prove cheap.
func initSkipBias(p *rl.Policy, opts Options) {
	if opts.J == 0 {
		return
	}
	layers := p.Net.Layers
	out, ok := layers[len(layers)-1].(*nn.Dense)
	if !ok {
		return
	}
	for a := opts.K; a < opts.K+opts.J; a++ {
		out.B.Val[a] = -3
	}
}

func trainBudget(n int, to TrainOptions) int {
	w := int(to.WRatio * float64(n))
	if w < to.MinW {
		w = to.MinW
	}
	return w
}

// Simplify applies the trained policy to t with budget w. sample defaults
// to the paper's mode-dependent choice when sampleOverride is nil: the
// online variant samples, the batch variants take the argmax.
func (tr *Trained) Simplify(t traj.Trajectory, w int, r *rand.Rand) ([]int, error) {
	sample := tr.Opts.Variant == Online
	if sample && r == nil {
		r = rand.New(rand.NewSource(0))
	}
	return Simplify(tr.Policy, t, w, tr.Opts, sample, r)
}

// SimplifyCtx is Simplify honoring a context for cancellation.
func (tr *Trained) SimplifyCtx(ctx context.Context, t traj.Trajectory, w int, r *rand.Rand) ([]int, error) {
	sample := tr.Opts.Variant == Online
	if sample && r == nil {
		r = rand.New(rand.NewSource(0))
	}
	return SimplifyCtx(ctx, tr.Policy, t, w, tr.Opts, sample, r)
}

// SimplifyGreedy applies the trained policy deterministically (argmax),
// regardless of variant.
func (tr *Trained) SimplifyGreedy(t traj.Trajectory, w int) ([]int, error) {
	return Simplify(tr.Policy, t, w, tr.Opts, false, nil)
}

// SimplifyGreedyCtx is SimplifyGreedy honoring a context for cancellation.
func (tr *Trained) SimplifyGreedyCtx(ctx context.Context, t traj.Trajectory, w int) ([]int, error) {
	return SimplifyCtx(ctx, tr.Policy, t, w, tr.Opts, false, nil)
}

// FastClone returns an independent copy of the trained policy with the
// FastMath inference kernel selected (nn.KernelFast): fused approximate
// forwards with the bounded divergence contract of nn/fastmath.go and
// DESIGN.md §13. The original is untouched and stays exact. Serving and
// eval build their fast paths from FastClones so the exact default can
// never be contaminated.
func (tr *Trained) FastClone() *Trained {
	p := tr.Policy.Clone()
	p.SetKernel(nn.KernelFast)
	return &Trained{Opts: tr.Opts, Policy: p}
}

// savedTrained is the JSON wire format of a Trained policy.
type savedTrained struct {
	Measure string          `json:"measure"`
	Variant string          `json:"variant"`
	K       int             `json:"k"`
	J       int             `json:"j"`
	Policy  json.RawMessage `json:"policy"`
}

// Save writes the trained policy with its configuration.
func (tr *Trained) Save(w io.Writer) error {
	var pbuf bytes.Buffer
	if err := tr.Policy.Save(&pbuf); err != nil {
		return err
	}
	sv := savedTrained{
		Measure: tr.Opts.Measure.String(),
		Variant: variantTag(tr.Opts.Variant),
		K:       tr.Opts.K,
		J:       tr.Opts.J,
		Policy:  json.RawMessage(pbuf.Bytes()),
	}
	return json.NewEncoder(w).Encode(&sv)
}

// LoadTrained reads a policy written by Save.
func LoadTrained(r io.Reader) (*Trained, error) {
	var sv savedTrained
	if err := json.NewDecoder(r).Decode(&sv); err != nil {
		return nil, fmt.Errorf("core: decode trained policy: %w", err)
	}
	m, err := errm.Parse(sv.Measure)
	if err != nil {
		return nil, err
	}
	v, err := ParseVariant(sv.Variant)
	if err != nil {
		return nil, err
	}
	p, err := rl.LoadPolicy(bytes.NewReader(sv.Policy))
	if err != nil {
		return nil, err
	}
	tr := &Trained{Opts: Options{Measure: m, Variant: v, K: sv.K, J: sv.J}, Policy: p}
	if err := tr.Opts.Validate(); err != nil {
		return nil, err
	}
	if p.Spec.In != tr.Opts.StateSize() || p.Spec.Out != tr.Opts.NumActions() {
		return nil, fmt.Errorf("core: saved policy shape does not match its options")
	}
	return tr, nil
}

func variantTag(v Variant) string {
	switch v {
	case Plus:
		return "rlts+"
	case PlusPlus:
		return "rlts++"
	default:
		return "rlts"
	}
}
