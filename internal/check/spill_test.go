package check

import (
	"math"
	"math/rand"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/rl"
)

// Spill/rehydrate differential: a streamer that is serialized through the
// full binary codec (core.StreamerState — the bytes the server's session
// store writes to disk) and resumed must continue bit-identically to one
// that never left memory, no matter where in its life the spill lands.
// The adversarial cut points are the phase boundaries where the state
// shape changes: before any push, mid buffer-fill, at the exact fill
// boundary, mid pending-skip, and (via stride-1 resume) between every
// single pair of pushes.

// resumeEvery pushes tr into a streamer, spilling and rehydrating through
// the binary codec every stride pushes. seed reseeds the sampling RNG at
// every resume (the codec's draw counter fast-forwards it).
func resumeEvery(t *testing.T, p *rl.Policy, tr []geo.Point, w int, opts core.Options, sample bool, seed int64, stride int) []geo.Point {
	t.Helper()
	newRNG := func() *rand.Rand {
		if !sample {
			return nil
		}
		return rand.New(rand.NewSource(seed))
	}
	s, err := core.NewStreamer(p, w, opts, sample, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range tr {
		if i > 0 && i%stride == 0 {
			raw := s.ExportState().AppendBinary(nil)
			st, err := core.DecodeStreamerState(raw)
			if err != nil {
				t.Fatalf("push %d: decode spilled state: %v", i, err)
			}
			if s, err = core.ResumeStreamer(p, opts, st, newRNG()); err != nil {
				t.Fatalf("push %d: resume: %v", i, err)
			}
		}
		s.Push(pt)
	}
	return s.Snapshot()
}

func bitIdentical(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].X) != math.Float64bits(b[i].X) ||
			math.Float64bits(a[i].Y) != math.Float64bits(b[i].Y) ||
			math.Float64bits(a[i].T) != math.Float64bits(b[i].T) {
			return false
		}
	}
	return true
}

func TestSpillRehydrateDifferential(t *testing.T) {
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(3)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(7000 + round)))
				tr := g.gen(r, 40+r.Intn(80))
				for _, m := range errm.Measures {
					for _, j := range []int{0, 2} {
						for _, sample := range []bool{false, true} {
							opts := core.Options{Measure: m, Variant: core.Online, K: 3, J: j}
							p := checkPolicy(t, opts, int64(round)*10+int64(m))
							w := 5 + r.Intn(10)
							seed := int64(round*100 + int(m) + j)

							want := snapshotOf(t, p, tr, w, opts, sample, rand.New(rand.NewSource(seed)))
							// stride 1 spills between every pair of pushes —
							// it crosses the fill boundary and every pending
							// skip; the wider strides vary which decisions
							// happen fresh after a rehydrate.
							for _, stride := range []int{1, 7, len(tr)/2 + 1} {
								got := resumeEvery(t, p, tr, w, opts, sample, seed, stride)
								if !bitIdentical(got, want) {
									t.Fatalf("%s %s J=%d sample=%v round %d stride %d: rehydrated run diverged (%d vs %d points)",
										g.name, m, j, sample, round, stride, len(got), len(want))
								}
							}
						}
					}
				}
			}
		})
	}
}
