package check

import (
	"math"
	"math/rand"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/nn"
	"rlts/internal/rl"
)

// The FastMath tolerance pillar: the fused approximate kernels
// (nn.KernelFast) against the exact path, measured on the real decision
// states a greedy simplification visits — not synthetic vectors — across
// the full adversarial generator set, all measures and variants, and
// fresh random policy weights each round.
//
// Unlike the batch-engine differential (bitwise, DESIGN.md §12), FastMath
// is an explicit relaxation with a published contract (DESIGN.md §13,
// nn/fastmath.go):
//
//  1. every ProbsBatch output is within nn.FastProbsMaxAbsError absolute
//     and nn.FastProbsMaxRelError relative error of the exact value
//     (relative checked above nn.FastProbsRelFloor, where ULP distance
//     is meaningful);
//  2. the argmax decision of every decision state is unchanged — the
//     invariant serving actually relies on;
//  3. end to end, greedy fast simplification keeps the same indices as
//     greedy exact simplification on every adversarial family.
//
// (3) follows from (2) on these fixed seeds (same decisions → same next
// state, inductively), but is asserted independently so a divergence
// reports at the level operators observe it.

func TestFastMathTolerance(t *testing.T) {
	variants := []core.Variant{core.Online, core.Plus, core.PlusPlus}
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(2)
			var maxAbs, maxRel float64
			rows := 0
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(31000 + round)))
				for _, m := range errm.Measures {
					for _, v := range variants {
						opts := core.Options{Measure: m, Variant: v, K: 3}
						if v != core.Online {
							opts = core.DefaultOptions(m, v)
						}
						p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 8+r.Intn(16),
							rand.New(rand.NewSource(r.Int63())))
						if err != nil {
							t.Fatal(err)
						}
						tr := g.gen(rand.New(rand.NewSource(int64(900+round*100))), 12+r.Intn(40))
						w := 4 + r.Intn(8)

						trace, err := core.TraceGreedy(p, tr, w, opts)
						if err != nil {
							t.Fatalf("%s %s %s: trace: %v", g.name, m, v, err)
						}
						if len(trace.Actions) == 0 {
							continue // trajectory fit the budget, no decisions
						}

						fast := p.Clone()
						fast.SetKernel(nn.KernelFast)

						b := len(trace.Actions)
						out := opts.NumActions()
						// ProbsBatch returns network-owned scratch: copy the
						// exact rows before the fast forward reuses buffers.
						exact := append([]float64(nil), p.ProbsBatch(trace.States, b, trace.Masks)...)
						approx := fast.ProbsBatch(trace.States, b, trace.Masks)

						for row := 0; row < b; row++ {
							er := exact[row*out : (row+1)*out]
							fr := approx[row*out : (row+1)*out]
							for i := range er {
								abs := math.Abs(fr[i] - er[i])
								if abs > maxAbs {
									maxAbs = abs
								}
								if abs > nn.FastProbsMaxAbsError {
									t.Fatalf("%s %s %s row %d action %d: |fast-exact| = %g > %g (exact %g, fast %g)",
										g.name, m, v, row, i, abs, nn.FastProbsMaxAbsError, er[i], fr[i])
								}
								if math.Abs(er[i]) > nn.FastProbsRelFloor {
									rel := abs / math.Abs(er[i])
									if rel > maxRel {
										maxRel = rel
									}
									if rel > nn.FastProbsMaxRelError {
										t.Fatalf("%s %s %s row %d action %d: relative error %g > %g (exact %g, fast %g)",
											g.name, m, v, row, i, rel, nn.FastProbsMaxRelError, er[i], fr[i])
									}
								}
							}
							// The decision oracle: same argmax on every
							// decision state of every adversarial family.
							ea := rl.GreedyAction(er)
							fa := rl.GreedyAction(fr)
							if ea != fa {
								t.Fatalf("%s %s %s row %d: argmax flipped, exact %d fast %d (exact row %v, fast row %v)",
									g.name, m, v, row, ea, fa, er, fr)
							}
							if ea != trace.Actions[row] {
								t.Fatalf("%s %s %s row %d: replayed argmax %d != traced action %d",
									g.name, m, v, row, ea, trace.Actions[row])
							}
						}
						rows += b

						// End-to-end oracle: greedy fast run keeps the same
						// indices as the traced exact run.
						kept, err := core.Simplify(fast, tr, w, opts, false, nil)
						if err != nil {
							t.Fatalf("%s %s %s: fast simplify: %v", g.name, m, v, err)
						}
						if !sameInts(kept, trace.Kept) {
							t.Fatalf("%s %s %s (len %d, w %d): fast kept %v != exact kept %v",
								g.name, m, v, len(tr), w, kept, trace.Kept)
						}
					}
				}
			}
			t.Logf("%s: %d decision rows, max abs err %.3g (bound %.1g), max rel err %.3g (bound %.1g)",
				g.name, rows, maxAbs, nn.FastProbsMaxAbsError, maxRel, nn.FastProbsMaxRelError)
		})
	}
}

// TestFastCloneIsolation pins the opt-in shape of FastMath: FastClone
// selects the fast kernel on an independent copy, the original stays
// exact, and a clone of a fast policy inherits the fast kernel (the
// property engine pools rely on).
func TestFastCloneIsolation(t *testing.T) {
	opts := core.DefaultOptions(errm.SED, core.Plus)
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 12,
		rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	tr := &core.Trained{Opts: opts, Policy: p}
	ft := tr.FastClone()
	if got := ft.Policy.Kernel(); got != nn.KernelFast {
		t.Fatalf("FastClone kernel = %v, want fast", got)
	}
	if got := tr.Policy.Kernel(); got != nn.KernelExact {
		t.Fatalf("original kernel after FastClone = %v, want exact", got)
	}
	if got := ft.Policy.Clone().Kernel(); got != nn.KernelFast {
		t.Fatalf("clone of fast policy kernel = %v, want fast", got)
	}
}
