package check

import (
	"math"
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/minsize"
	"rlts/internal/traj"
)

// Metamorphic invariants: all four measures are defined through distances,
// headings differences and speeds, every one of which is preserved by a
// rigid motion of the plane and by a uniform shift of the clock. So for
// any trajectory and any simplification, the trajectory error must be
// invariant under translation, rotation (DAD's headings rotate together,
// so their difference — the equivariant quantity — is unchanged) and time
// shift. Asserted at 1e-9 relative tolerance on moderate-magnitude inputs,
// where double-precision rotation noise sits around 1e-12.

const rigidTol = 1e-9

type transform struct {
	name  string
	apply func(traj.Trajectory) traj.Trajectory
}

var rigidMotions = []transform{
	{"translate", func(t traj.Trajectory) traj.Trajectory { return translate(t, 123.456, -987.125) }},
	{"rotate-third", func(t traj.Trajectory) traj.Trajectory { return rotate(t, 2*math.Pi/3) }},
	{"rotate-quarter", func(t traj.Trajectory) traj.Trajectory { return rotate(t, math.Pi/2) }},
	{"rotate-small", func(t traj.Trajectory) traj.Trajectory { return rotate(t, 0.137) }},
	// Time shifts are powers of two: adding 2^k to a timestamp rounds by
	// at most ulp(2^k), and keeping the shift near the timestamp range
	// keeps segment durations (whose relative error the speeds amplify)
	// intact to ~1e-13. A calendar-size shift like 86400 would perturb
	// sub-second durations by ~1e-10 relative — conditioning noise at the
	// same order as the 1e-9 gate.
	{"time-shift", func(t traj.Trajectory) traj.Trajectory { return timeShift(t, 512) }},
	{"composed", func(t traj.Trajectory) traj.Trajectory {
		return timeShift(rotate(translate(t, -55.5, 17.25), 1.0), -4096)
	}},
}

// simplificationsOf yields a few interesting kept-index chains for t:
// endpoints only, a greedy simplification at a mid-range bound, and a
// random subsequence.
func simplificationsOf(t *testing.T, tr traj.Trajectory, m errm.Measure, r *rand.Rand) [][]int {
	t.Helper()
	n := len(tr)
	whole := errm.SegmentError(m, tr, 0, n-1)
	sets := [][]int{{0, n - 1}}
	if g, err := minsize.Greedy(tr, whole/4, m); err == nil {
		sets = append(sets, g)
	}
	kept := []int{0}
	for i := 1; i < n-1; i++ {
		if r.Intn(3) != 0 {
			kept = append(kept, i)
		}
	}
	sets = append(sets, append(kept, n-1))
	return sets
}

func TestErrorInvariantUnderRigidMotions(t *testing.T) {
	for _, g := range moderateGenerators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(6)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(8000 + round)))
				tr := g.gen(r, 12+r.Intn(20))
				for _, m := range errm.Measures {
					for _, kept := range simplificationsOf(t, tr, m, r) {
						base := errm.Error(m, tr, kept)
						for _, tf := range rigidMotions {
							got := errm.Error(m, tf.apply(tr), kept)
							if !closeRel(got, base, rigidTol) {
								t.Fatalf("%s %s round %d %s: error %v, original %v (kept %v)",
									g.name, m, round, tf.name, got, base, kept)
							}
						}
					}
				}
			}
		})
	}
}

func TestPointErrorInvariantUnderRigidMotions(t *testing.T) {
	// The invariance must hold at the primitive level too, for every
	// anchor-span/point attribution — a coarser max could mask a broken
	// primitive whose error never happens to be the maximum.
	for _, g := range moderateGenerators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(4)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(9000 + round)))
				tr := g.gen(r, 7+r.Intn(6))
				n := len(tr)
				images := make([]traj.Trajectory, len(rigidMotions))
				for ti, tf := range rigidMotions {
					images[ti] = tf.apply(tr)
				}
				for _, m := range errm.Measures {
					for a := 0; a < n-1; a++ {
						for b := a + 1; b < n; b++ {
							for i := a + 1; i < b; i++ {
								base := errm.PointError(m, tr, a, i, b)
								for ti, tf := range rigidMotions {
									got := errm.PointError(m, images[ti], a, i, b)
									if !closeRel(got, base, rigidTol) {
										t.Fatalf("%s %s round %d %s: PointError(%d,%d,%d) %v, original %v",
											g.name, m, round, tf.name, a, i, b, got, base)
									}
								}
							}
						}
					}
				}
			}
		})
	}
}

func TestHugeCoordsMatchScaledReference(t *testing.T) {
	// The scaling oracle for the overflow slow paths: multiplying every
	// coordinate of the huge family by 2^-511 is exact (a power of two
	// neither overflows nor loses mantissa bits in this range), and in
	// real arithmetic SED/PED/SAD scale by exactly that factor while DAD
	// is scale-invariant. The scaled trajectory computes entirely on the
	// well-tested fast paths, so it is a trustworthy reference for the
	// slow paths the original triggers on every call. This is the test
	// that distinguishes a correct slow-path value from a finite-but-wrong
	// one (e.g. a NaN laundered into 0 by a clamp).
	//
	// The tolerance model differs from the rigid-motion tests: a distance
	// between coordinates of magnitude M is only determined to ~ulp(M) in
	// float64, so when a point lies nearly on the anchor line the true
	// PED/SED sits below the coordinates' rounding floor and both paths
	// produce same-order noise that need not agree relatively. Distances
	// and speeds are therefore compared absolutely against 1e-9 * M (seven
	// orders above the 1e-16 floor, dozens below a laundering bug, which
	// is off by the full coordinate magnitude); DAD, an O(1) angle, keeps
	// an absolute 1e-9.
	const scaleTol = 1e-9
	const down = 0x1p-511
	const up = 0x1p511
	rounds := scaled(6)
	for round := 0; round < rounds; round++ {
		r := rand.New(rand.NewSource(int64(13000 + round)))
		tr := genHuge(r, 8+r.Intn(8))
		small := make(traj.Trajectory, len(tr))
		mag := 1.0
		for i, p := range tr {
			small[i] = geo.Pt(p.X*down, p.Y*down, p.T)
			mag = math.Max(mag, math.Max(math.Abs(p.X), math.Abs(p.Y)))
		}
		n := len(tr)
		for _, m := range errm.Measures {
			scale := mag
			if m == errm.DAD {
				scale = 1
			}
			for a := 0; a < n-1; a++ {
				for b := a + 1; b < n; b++ {
					for i := a + 1; i < b; i++ {
						got := errm.PointError(m, tr, a, i, b)
						want := errm.PointError(m, small, a, i, b)
						if m != errm.DAD {
							want *= up
						}
						if math.IsNaN(got) || math.Abs(got-want) > scaleTol*scale {
							t.Fatalf("%s round %d: PointError(%d,%d,%d)=%v, scaled reference %v (scale %v)",
								m, round, a, i, b, got, want, scale)
						}
					}
				}
			}
		}
	}
}

func TestOnlineValueInvariantUnderRigidMotions(t *testing.T) {
	// The online buffer-local value (Eq. 1) is built from the same
	// primitives and must be invariant too; it feeds both state features
	// and drop decisions, so a variance here would make learned policies
	// frame-dependent.
	for _, g := range moderateGenerators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(4)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(10000 + round)))
				tr := g.gen(r, 10+r.Intn(10))
				for _, m := range errm.Measures {
					for i := 1; i < len(tr)-1; i++ {
						base := errm.OnlineValue(m, tr[i-1], tr[i], tr[i+1])
						for _, tf := range rigidMotions {
							img := tf.apply(tr)
							got := errm.OnlineValue(m, img[i-1], img[i], img[i+1])
							if !closeRel(got, base, rigidTol) {
								t.Fatalf("%s %s round %d %s: OnlineValue at %d: %v, original %v",
									g.name, m, round, tf.name, i, got, base)
							}
						}
					}
				}
			}
		})
	}
}
