package check

import (
	"math"
	"math/rand"
	"testing"

	"rlts/internal/baseline/online"
	"rlts/internal/errm"
	"rlts/internal/minsize"
	"rlts/internal/traj"
)

// The error-bounded one-pass pillar: CISED (SED) and OPERB (PED) promise
// that every kept-index set they return scores at or below the requested
// bound under the *exact* errm.Error oracle — not under their own
// internal feasibility arithmetic. This file holds them to it across
// every adversarial family, including the overflow-probing extreme/huge
// families and the 1e-12 time deltas of near-dup-times, and calibrates
// their compression against minsize.Optimal on brute-forceable inputs.
// (The third backend of the bound=eps serving mode, minsize.SearchBudget,
// has its own oracle pillar in minsize_test.go.)

type boundedOnePass struct {
	name string
	m    errm.Measure
	run  func(traj.Trajectory, float64) ([]int, error)
}

func boundedOnePasses() []boundedOnePass {
	return []boundedOnePass{
		{"CISED", errm.SED, online.CISED},
		{"OPERB", errm.PED, online.OPERB},
	}
}

// boundsFor derives bound values spanning the trajectory's own error
// scale: fractions of the single-segment (keep-only-endpoints) error,
// which is finite by generator design, plus a near-zero and a
// generously-large absolute bound.
func boundsFor(m errm.Measure, tr traj.Trajectory) []float64 {
	whole := errm.SegmentError(m, tr, 0, len(tr)-1)
	bounds := []float64{0, 1e-12, 1e6}
	for _, frac := range []float64{0.05, 0.3, 1.1} {
		// The whole-segment error itself overflows on the extreme family;
		// a non-finite bound is rejected by the simplifiers by contract.
		if b := whole * frac; b > 0 && !math.IsInf(b, 0) {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

func TestBoundedOnePassBoundProof(t *testing.T) {
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(8)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(9000 + round)))
				tr := g.gen(r, 2+r.Intn(150))
				for _, a := range boundedOnePasses() {
					for _, eps := range boundsFor(a.m, tr) {
						kept, err := a.run(tr, eps)
						if err != nil {
							t.Fatalf("%s %s eps=%v: %v", g.name, a.name, eps, err)
						}
						if err := errm.CheckKept(tr, kept); err != nil {
							t.Fatalf("%s %s eps=%v: invalid kept: %v", g.name, a.name, eps, err)
						}
						// The exact oracle is the judge, not the
						// simplifier's feasibility arithmetic.
						if e := errm.Error(a.m, tr, kept); e > eps {
							t.Fatalf("%s %s: oracle error %v exceeds bound %v (n=%d kept=%d)",
								g.name, a.name, e, eps, len(tr), len(kept))
						}
					}
				}
			}
		})
	}
}

func TestBoundedOnePassCompressionVsOptimal(t *testing.T) {
	// On small inputs the DP gives the true minimum size: the one-pass
	// algorithms may never beat it (that would mean the oracle and the
	// one-pass bound disagree) and should land within a small factor of
	// it on the well-conditioned families.
	for _, g := range moderateGenerators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			var keptSum, optSum int
			rounds := scaled(6)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(9500 + round)))
				tr := g.gen(r, 8+r.Intn(20))
				for _, a := range boundedOnePasses() {
					for _, eps := range boundsFor(a.m, tr) {
						kept, err := a.run(tr, eps)
						if err != nil {
							t.Fatal(err)
						}
						opt, err := minsize.Optimal(tr, eps, a.m)
						if err != nil {
							t.Fatal(err)
						}
						if len(kept) < len(opt) {
							t.Fatalf("%s %s eps=%v: one-pass kept %d < optimal %d — bound oracle disagreement",
								g.name, a.name, eps, len(kept), len(opt))
						}
						keptSum += len(kept)
						optSum += len(opt)
					}
				}
			}
			if optSum > 0 {
				ratio := float64(keptSum) / float64(optSum)
				t.Logf("%s: one-pass/optimal kept-size ratio %.3f", g.name, ratio)
				// One pass costs compression, but an unbounded blowup
				// would mean the feasibility test is effectively always
				// cutting. Keep a loose ceiling so regressions surface.
				if ratio > 3 {
					t.Errorf("%s: one-pass keeps %.1fx the optimal points — feasibility test degraded", g.name, ratio)
				}
			}
		})
	}
}
