package check

import (
	"math"
	"math/rand"
	"os"
	"strconv"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// scaled multiplies an iteration budget by the CHECK_SCALE environment
// knob so `make check-diff` (and soak runs) can deepen the harness without
// touching code. CHECK_SCALE is a positive multiplier; unset or invalid
// means 1. The result is never below the base so a fractional scale cannot
// disable a test.
func scaled(base int) int {
	v := os.Getenv("CHECK_SCALE")
	if v == "" {
		return base
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 1 {
		return base
	}
	n := int(float64(base) * f)
	if n < base {
		return base
	}
	return n
}

// A generator deterministically produces one adversarial family of valid
// trajectories (finite points, strictly increasing timestamps) from a
// seeded rand. Every generator keeps the true values of all four measures
// representable in float64, so the harness can assert strict finiteness.
type generator struct {
	name string
	gen  func(r *rand.Rand, n int) traj.Trajectory
}

// generators is the full adversarial family set.
var generators = []generator{
	{"random-walk", genRandomWalk},
	{"collinear", genCollinear},
	{"stationary", genStationary},
	{"near-dup-times", genNearDupTimes},
	{"zigzag", genZigzag},
	{"extreme", genExtreme},
	{"huge", genHuge},
}

// moderateGenerators is the subset used by tolerance-based comparisons
// (reference-formula differentials, metamorphic invariance, brute-force
// min-size). It excludes two families whose relations hold exactly in real
// arithmetic but are ill-conditioned in float64, where a tolerance check
// measures conditioning rather than correctness:
//
//   - extreme: rotating 1e307 coordinates loses all low bits;
//   - near-dup-times: 1e-12 time deltas turn speeds into ~1e12 quantities
//     whose differences amplify last-ulp distance discrepancies by 12
//     orders of magnitude.
//
// Both families still go through every exact-equality oracle (tracker,
// streamer) and the adversarial finiteness sweep.
var moderateGenerators = []generator{
	{"random-walk", genRandomWalk},
	{"collinear", genCollinear},
	{"stationary", genStationary},
	{"zigzag", genZigzag},
}

// genRandomWalk is the baseline family: nothing degenerate, everything in
// a comfortable numeric range.
func genRandomWalk(r *rand.Rand, n int) traj.Trajectory {
	t := make(traj.Trajectory, 0, n)
	x, y, tm := r.Float64()*100, r.Float64()*100, r.Float64()*10
	for i := 0; i < n; i++ {
		t = append(t, geo.Pt(x, y, tm))
		x += r.NormFloat64() * 5
		y += r.NormFloat64() * 5
		tm += 0.1 + r.Float64()*4
	}
	return t
}

// genCollinear places every point exactly on one line (small-integer
// coordinates, so collinearity is exact in float64), with uneven spacing
// and occasional exact revisits of the previous x. Perpendicular errors
// are exactly zero; direction is constant or exactly reversed.
func genCollinear(r *rand.Rand, n int) traj.Trajectory {
	t := make(traj.Trajectory, 0, n)
	x := float64(r.Intn(10))
	tm := 0.0
	for i := 0; i < n; i++ {
		t = append(t, geo.Pt(x, 2*x+1, tm))
		if r.Intn(4) == 0 {
			x -= float64(r.Intn(3)) // backtrack along the line
		} else {
			x += float64(1 + r.Intn(4))
		}
		tm += 0.5 + r.Float64()
	}
	return t
}

// genStationary produces long zero-length runs (the object sits still while
// time advances) broken by occasional jumps: zero-length anchor segments,
// zero-length motion segments, and drops to exactly repeated locations.
func genStationary(r *rand.Rand, n int) traj.Trajectory {
	t := make(traj.Trajectory, 0, n)
	x, y, tm := float64(r.Intn(50)), float64(r.Intn(50)), 0.0
	for i := 0; i < n; i++ {
		t = append(t, geo.Pt(x, y, tm))
		tm += 0.25 + r.Float64()
		if r.Intn(5) == 0 { // move only rarely
			x += float64(r.Intn(7) - 3)
			y += float64(r.Intn(7) - 3)
		}
	}
	return t
}

// genNearDupTimes interleaves normal sampling intervals with intervals of
// 1e-12 time units: timestamps remain strictly increasing (base times stay
// small enough that 1e-12 exceeds one ulp) but interpolation parameters and
// speeds become enormous-denominator computations.
func genNearDupTimes(r *rand.Rand, n int) traj.Trajectory {
	t := make(traj.Trajectory, 0, n)
	x, y, tm := r.Float64()*40, r.Float64()*40, 1.0
	for i := 0; i < n; i++ {
		t = append(t, geo.Pt(x, y, tm))
		x += r.NormFloat64()
		y += r.NormFloat64()
		if r.Intn(3) == 0 {
			tm += 1e-12 // near-duplicate timestamp, still > one ulp here
		} else {
			tm += 0.5 + r.Float64()
		}
	}
	return t
}

// genZigzag alternates large spikes around a slow drift: every interior
// point is far from its anchor segment, keeping link errors large and
// heaps/trackers busy, and direction flips by ~pi each step.
func genZigzag(r *rand.Rand, n int) traj.Trajectory {
	t := make(traj.Trajectory, 0, n)
	tm := 0.0
	for i := 0; i < n; i++ {
		side := float64(1 - 2*(i%2))
		t = append(t, geo.Pt(float64(i)*2, side*(50+r.Float64()*100), tm))
		tm += 0.2 + r.Float64()
	}
	return t
}

// extremeMag is the largest coordinate magnitude the extreme generator
// emits. It is chosen so every true measure value stays representable:
// the worst pairwise displacement is the diagonal sqrt(2)*2*extremeMag
// ~ 1.70e308 < MaxFloat64, and with time deltas >= 2 every speed stays
// finite too. Squared lengths and naive coordinate differences still
// overflow, which is exactly the slow-path territory being probed.
const extremeMag = 6e307

// genExtreme jumps between far corners of the representable plane mixed
// with moderate points. Intermediate products (dx*dx, b-a at opposite
// extremes) overflow float64 while all true distances/speeds remain
// representable, so any NaN or Inf is a harness catch, not saturation.
func genExtreme(r *rand.Rand, n int) traj.Trajectory {
	corner := func() float64 {
		switch r.Intn(4) {
		case 0:
			return extremeMag
		case 1:
			return -extremeMag
		case 2:
			return 1e160 * (r.Float64() - 0.5)
		default:
			return r.NormFloat64() * 100
		}
	}
	t := make(traj.Trajectory, 0, n)
	tm := 0.0
	for i := 0; i < n; i++ {
		t = append(t, geo.Pt(corner(), corner(), tm))
		tm += 2 + 3*r.Float64()
	}
	return t
}

// genHuge emits only astronomical magnitudes, |coord| in [1e250, 6e306]:
// every squared coordinate difference overflows float64, so the overflow
// slow paths run on literally every primitive call. Scaling this family by
// 2^-511 — an exact operation on every float64 — lands it entirely in
// fast-path range, which is the basis of the scaling differential in
// metamorphic_test.go: finiteness assertions alone cannot tell a correct
// slow-path value from a garbage-but-finite one.
func genHuge(r *rand.Rand, n int) traj.Trajectory {
	coord := func() float64 {
		exp := 250 + r.Intn(57)
		v := (1 + r.Float64()*5) * math.Pow(10, float64(exp))
		if r.Intn(2) == 0 {
			return -v
		}
		return v
	}
	t := make(traj.Trajectory, 0, n)
	tm := 0.0
	for i := 0; i < n; i++ {
		t = append(t, geo.Pt(coord(), coord(), tm))
		tm += 2 + 3*r.Float64()
	}
	return t
}

// Rigid spatio-temporal motions for the metamorphic pillar.

func translate(t traj.Trajectory, dx, dy float64) traj.Trajectory {
	out := make(traj.Trajectory, len(t))
	for i, p := range t {
		out[i] = geo.Pt(p.X+dx, p.Y+dy, p.T)
	}
	return out
}

func rotate(t traj.Trajectory, theta float64) traj.Trajectory {
	s, c := math.Sin(theta), math.Cos(theta)
	out := make(traj.Trajectory, len(t))
	for i, p := range t {
		out[i] = geo.Pt(c*p.X-s*p.Y, s*p.X+c*p.Y, p.T)
	}
	return out
}

func timeShift(t traj.Trajectory, dt float64) traj.Trajectory {
	out := make(traj.Trajectory, len(t))
	for i, p := range t {
		out[i] = geo.Pt(p.X, p.Y, p.T+dt)
	}
	return out
}

// closeRel reports |a-b| <= tol relative to max(1, |a|, |b|): absolute
// near zero, relative elsewhere.
func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
