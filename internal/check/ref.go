package check

import (
	"math"

	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

// Independent reference implementations of the four measures, written
// directly from the paper's definitions with deliberately different
// arithmetic than internal/geo (Sqrt of a sum instead of Hypot, modular
// angle folding instead of absolute-difference folding, no overflow fast
// paths). They are only ever evaluated on moderate-magnitude inputs, where
// they agree with production to ~1e-12 relative; the differential tests
// compare at 1e-9.

func refDist(ax, ay, bx, by float64) float64 {
	dx, dy := bx-ax, by-ay
	return math.Sqrt(dx*dx + dy*dy)
}

// refSyncPos is the time-synchronized position on segment a-b at time tm,
// clamped to the segment; a zero (or negative) duration collapses to a.
func refSyncPos(a, b geo.Point, tm float64) (float64, float64) {
	if b.T <= a.T {
		return a.X, a.Y
	}
	u := (tm - a.T) / (b.T - a.T)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return a.X + u*(b.X-a.X), a.Y + u*(b.Y-a.Y)
}

func refSED(a, b, p geo.Point) float64 {
	x, y := refSyncPos(a, b, p.T)
	return refDist(p.X, p.Y, x, y)
}

func refPED(a, b, p geo.Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return refDist(p.X, p.Y, a.X, a.Y)
	}
	u := ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / l2
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return refDist(p.X, p.Y, a.X+u*dx, a.Y+u*dy)
}

// refAngDiff folds a heading difference into [0, pi] by shifting into
// (-pi, pi] first (a different route than geo.AngularDifference).
func refAngDiff(a, b float64) float64 {
	d := a - b
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return math.Abs(d)
}

func refDegenerate(a, b geo.Point) bool { return a.X == b.X && a.Y == b.Y }

func refDAD(sa, sb, ma, mb geo.Point) float64 {
	if refDegenerate(sa, sb) || refDegenerate(ma, mb) {
		return 0
	}
	return refAngDiff(math.Atan2(sb.Y-sa.Y, sb.X-sa.X), math.Atan2(mb.Y-ma.Y, mb.X-ma.X))
}

func refSpeed(a, b geo.Point) float64 {
	dt := b.T - a.T
	if dt <= 0 {
		return 0
	}
	return refDist(a.X, a.Y, b.X, b.Y) / dt
}

func refSAD(sa, sb, ma, mb geo.Point) float64 {
	return math.Abs(refSpeed(sa, sb) - refSpeed(ma, mb))
}

// refPointError mirrors errm.PointError, including the motion-segment
// attribution convention for DAD/SAD (the segment starting at i, or the
// incoming segment for the anchor's last point).
func refPointError(m errm.Measure, t traj.Trajectory, a, i, b int) float64 {
	ma, mb := i, i+1
	if i >= b {
		ma, mb = i-1, i
	}
	switch m {
	case errm.SED:
		return refSED(t[a], t[b], t[i])
	case errm.PED:
		return refPED(t[a], t[b], t[i])
	case errm.DAD:
		return refDAD(t[a], t[b], t[ma], t[mb])
	default:
		return refSAD(t[a], t[b], t[ma], t[mb])
	}
}

// refSegmentError mirrors errm.SegmentError: max over interior points for
// SED/PED, max over covered motion segments for DAD/SAD.
func refSegmentError(m errm.Measure, t traj.Trajectory, a, b int) float64 {
	if b <= a+1 {
		return 0
	}
	var worst float64
	switch m {
	case errm.SED, errm.PED:
		for i := a + 1; i < b; i++ {
			if d := refPointError(m, t, a, i, b); d > worst {
				worst = d
			}
		}
	default:
		for i := a; i < b; i++ {
			var d float64
			if m == errm.DAD {
				d = refDAD(t[a], t[b], t[i], t[i+1])
			} else {
				d = refSAD(t[a], t[b], t[i], t[i+1])
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// refError mirrors errm.Error: the max link error of a kept-index chain.
func refError(m errm.Measure, t traj.Trajectory, kept []int) float64 {
	var worst float64
	for i := 1; i < len(kept); i++ {
		if d := refSegmentError(m, t, kept[i-1], kept[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// bruteMinSize enumerates every subset of interior points (both endpoints
// are always kept) and returns the size of the smallest simplification
// whose error — judged by the reference formulas — is within bound.
// Exponential, so only for len(t) <= ~14.
func bruteMinSize(t traj.Trajectory, bound float64, m errm.Measure) int {
	n := len(t)
	interior := n - 2
	best := n
	for mask := 0; mask < 1<<uint(interior); mask++ {
		kept := make([]int, 0, n)
		kept = append(kept, 0)
		for i := 0; i < interior; i++ {
			if mask&(1<<uint(i)) != 0 {
				kept = append(kept, i+1)
			}
		}
		kept = append(kept, n-1)
		if len(kept) >= best {
			continue
		}
		if refError(m, t, kept) <= bound {
			best = len(kept)
		}
	}
	return best
}
