package check

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/minsize"
	"rlts/internal/traj"
)

// minsize.Optimal (DP over feasible anchor spans) against brute-force
// subset enumeration judged by the independent reference formulas. Bounds
// are chosen in the gaps between achievable error values so a ~1e-15
// formula discrepancy cannot flip a feasibility verdict and fake a
// mismatch: the oracle is sharp, not flaky.

// gapBounds returns bounds sitting strictly between consecutive distinct
// achievable segment-error values of t (plus one below the minimum
// positive value and one above the maximum).
func gapBounds(tr traj.Trajectory, m errm.Measure) []float64 {
	var vals []float64
	for a := 0; a < len(tr)-1; a++ {
		for b := a + 1; b < len(tr); b++ {
			vals = append(vals, errm.SegmentError(m, tr, a, b))
		}
	}
	sort.Float64s(vals)
	var bounds []float64
	for i := 1; i < len(vals); i++ {
		lo, hi := vals[i-1], vals[i]
		if hi-lo > 1e-6*(1+hi) { // a real gap, not formula noise
			bounds = append(bounds, lo+(hi-lo)/2)
		}
	}
	if len(vals) > 0 {
		bounds = append(bounds, vals[len(vals)-1]*2+1)
	}
	// Cap the per-trajectory bound count: enough to probe several sharp
	// feasibility frontiers without blowing up the brute-force budget.
	const maxBounds = 8
	if len(bounds) > maxBounds {
		picked := make([]float64, 0, maxBounds)
		for i := 0; i < maxBounds; i++ {
			picked = append(picked, bounds[i*len(bounds)/maxBounds])
		}
		bounds = picked
	}
	return bounds
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	for _, g := range moderateGenerators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(6)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(6000 + round)))
				tr := g.gen(r, 5+r.Intn(7)) // brute force: n <= 11
				for _, m := range errm.Measures {
					for _, bound := range gapBounds(tr, m) {
						kept, err := minsize.Optimal(tr, bound, m)
						if err != nil {
							t.Fatalf("%s %s bound %v: %v", g.name, m, bound, err)
						}
						if e := errm.Error(m, tr, kept); e > bound {
							t.Fatalf("%s %s: Optimal error %v exceeds bound %v", g.name, m, e, bound)
						}
						want := bruteMinSize(tr, bound, m)
						if len(kept) != want {
							t.Fatalf("%s %s bound %v: Optimal kept %d, brute force %d (traj %v)",
								g.name, m, bound, len(kept), want, tr)
						}
						// Greedy must be feasible and can never beat Optimal.
						gk, err := minsize.Greedy(tr, bound, m)
						if err != nil {
							t.Fatal(err)
						}
						if e := errm.Error(m, tr, gk); e > bound {
							t.Fatalf("%s %s: Greedy error %v exceeds bound %v", g.name, m, e, bound)
						}
						if len(gk) < len(kept) {
							t.Fatalf("%s %s: Greedy kept %d < Optimal %d", g.name, m, len(gk), len(kept))
						}
					}
				}
			}
		})
	}
}

func TestSearchBudgetAlwaysMeetsBound(t *testing.T) {
	// SearchBudget must return a bound-satisfying result even when f is
	// aggressively non-monotone — here, a seeded random subset per call,
	// the worst case for the binary search's monotonicity assumption.
	for _, g := range moderateGenerators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(5)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(7000 + round)))
				tr := g.gen(r, 15+r.Intn(15))
				fr := rand.New(rand.NewSource(int64(round)))
				f := func(t traj.Trajectory, w int) ([]int, error) {
					// Random subset of interior points, size <= w.
					n := len(t)
					perm := fr.Perm(n - 2)
					pick := perm[:min(w-2, n-2)]
					sort.Ints(pick)
					kept := []int{0}
					for _, i := range pick {
						kept = append(kept, i+1)
					}
					return append(kept, n-1), nil
				}
				for _, m := range errm.Measures {
					bound := errm.SegmentError(m, tr, 0, len(tr)-1) / 2
					kept, err := minsize.SearchBudget(tr, bound, m, f)
					if err != nil {
						t.Fatalf("%s %s: %v", g.name, m, err)
					}
					if e := errm.Error(m, tr, kept); e > bound {
						t.Fatalf("%s %s: SearchBudget error %v exceeds bound %v (kept %v)",
							g.name, m, e, bound, kept)
					}
				}
			}
		})
	}
}

func TestSearchBudgetNonMonotoneFallback(t *testing.T) {
	// A crafted f that is feasible at exactly one mid-range budget and
	// returns the (wildly infeasible) endpoints-only answer everywhere
	// below W=n. The trajectory is half zigzag — incompressible — and half
	// stationary — fully collapsible — so a genuinely small feasible
	// answer exists. Every budget the binary search probes is infeasible
	// except W=n, which is exactly the degenerate outcome the linear-scan
	// fallback exists to beat: it must find the one good budget instead of
	// surrendering to the identity.
	const n = 24
	tr := make(traj.Trajectory, 0, n)
	for i := 0; i < 12; i++ { // zigzag half: every interior point essential
		side := float64(1 - 2*(i%2))
		tr = append(tr, geo.Pt(float64(i), side*100, float64(i)))
	}
	for i := 12; i < n; i++ { // stationary half: interior points free
		tr = append(tr, geo.Pt(11, -100, float64(i)))
	}
	m := errm.SED
	// All zigzag points, the first stationary point, the last point:
	// error exactly 0 (stationary span collapses onto itself).
	good := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, n - 1}
	magic := len(good)
	f := func(t traj.Trajectory, w int) ([]int, error) {
		if w == magic {
			return good, nil
		}
		if w >= len(t) {
			kept := make([]int, len(t))
			for i := range kept {
				kept[i] = i
			}
			return kept, nil
		}
		return []int{0, len(t) - 1}, nil // infeasible: flattens the zigzag
	}
	bound := 1e-9
	if e := errm.Error(m, tr, good); e > bound {
		t.Fatalf("setup: good answer has error %v", e)
	}
	kept, err := minsize.SearchBudget(tr, bound, m, f)
	if err != nil {
		t.Fatal(err)
	}
	if e := errm.Error(m, tr, kept); e > bound {
		t.Fatalf("fallback result error %v exceeds bound", e)
	}
	if len(kept) != magic {
		t.Fatalf("fallback kept %d points, want the magic budget's %d (identity would be %d)",
			len(kept), magic, n)
	}
}

func TestSearchBudgetRejectsMalformedSimplifier(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := genRandomWalk(r, 30)
	bad := []func(traj.Trajectory, int) ([]int, error){
		func(t traj.Trajectory, w int) ([]int, error) { return []int{1, 2}, nil },            // missing endpoints
		func(t traj.Trajectory, w int) ([]int, error) { return []int{0, 5, 5, 29}, nil },     // not increasing
		func(t traj.Trajectory, w int) ([]int, error) { return []int{0, 99}, nil },           // out of range
		func(t traj.Trajectory, w int) ([]int, error) { return nil, nil },                    // empty
	}
	for i, f := range bad {
		_, err := minsize.SearchBudget(tr, 1.0, errm.SED, f)
		if !errors.Is(err, minsize.ErrInvalidSimplification) {
			t.Errorf("malformed f #%d: err = %v, want ErrInvalidSimplification", i, err)
		}
	}
	// A plain error from f propagates unwrapped.
	sentinel := errors.New("boom")
	_, err := minsize.SearchBudget(tr, 1.0, errm.SED, func(traj.Trajectory, int) ([]int, error) {
		return nil, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("f error not propagated: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
