package check

import (
	"math"
	"math/rand"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// The push-based core.Streamer and the slice-based online core.Simplify
// implement the same MDP over different plumbing (ring buffer + repair vs
// scan env). With no skip actions every decision point, state vector and
// action mask coincide, so feeding both the identical stream with the
// identical policy must produce the identical simplification — exactly.
// With skip actions the tail behaviour legitimately diverges (the scan env
// masks skips that overshoot the known end; a streamer cannot know the
// end), so the harness asserts structural invariants instead.

func checkPolicy(t *testing.T, opts core.Options, seed int64) *rl.Policy {
	t.Helper()
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 8, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func snapshotOf(t *testing.T, p *rl.Policy, tr traj.Trajectory, w int, opts core.Options, sample bool, r *rand.Rand) []geo.Point {
	t.Helper()
	s, err := core.NewStreamer(p, w, opts, sample, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range tr {
		s.Push(pt)
	}
	return s.Snapshot()
}

func TestStreamerMatchesSimplifyNoSkip(t *testing.T) {
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(4)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(4000 + round)))
				tr := g.gen(r, 40+r.Intn(80))
				for _, m := range errm.Measures {
					for _, sample := range []bool{false, true} {
						opts := core.Options{Measure: m, Variant: core.Online, K: 3}
						p := checkPolicy(t, opts, int64(round)*10+int64(m))
						w := 5 + r.Intn(10)

						// Two independent rand streams from one seed: the
						// policy consumes them identically on both paths.
						seed := int64(round*100 + int(m))
						kept, err := core.Simplify(p, tr, w, opts, sample, rand.New(rand.NewSource(seed)))
						if err != nil {
							t.Fatal(err)
						}
						snap := snapshotOf(t, p, tr, w, opts, sample, rand.New(rand.NewSource(seed)))

						if len(snap) != len(kept) {
							t.Fatalf("%s %s sample=%v round %d: stream %d points, simplify %d",
								g.name, m, sample, round, len(snap), len(kept))
						}
						for i, ix := range kept {
							if !snap[i].Equal(tr[ix]) {
								t.Fatalf("%s %s sample=%v round %d: point %d differs: stream %v simplify %v",
									g.name, m, sample, round, i, snap[i], tr[ix])
							}
						}
					}
				}
			}
		})
	}
}

func TestStreamerSkipInvariants(t *testing.T) {
	// J > 0: the snapshot must still be a valid simplification of the feed
	// — a subsequence spanning first..last observation, within budget, a
	// valid traj.FromPoints input, with finite error under its measure.
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(4)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(5000 + round)))
				tr := g.gen(r, 40+r.Intn(80))
				for _, m := range errm.Measures {
					for _, j := range []int{1, 2} {
						opts := core.Options{Measure: m, Variant: core.Online, K: 3, J: j}
						p := checkPolicy(t, opts, int64(round)*10+int64(m))
						w := 5 + r.Intn(10)
						snap := snapshotOf(t, p, tr, w, opts, true, rand.New(rand.NewSource(int64(round))))

						if len(snap) > w+1 {
							t.Fatalf("%s %s J=%d: snapshot %d points with W=%d", g.name, m, j, len(snap), w)
						}
						if !snap[0].Equal(tr[0]) || !snap[len(snap)-1].Equal(tr[len(tr)-1]) {
							t.Fatalf("%s %s J=%d: snapshot does not span first..last", g.name, m, j)
						}
						kept := subsequenceIndices(t, tr, snap)
						if kept == nil {
							t.Fatalf("%s %s J=%d: snapshot is not a subsequence of the feed", g.name, m, j)
						}
						raw := make([][3]float64, len(snap))
						for i, q := range snap {
							raw[i] = [3]float64{q.X, q.Y, q.T}
						}
						if _, err := traj.FromPoints(raw); err != nil {
							t.Fatalf("%s %s J=%d: snapshot invalid: %v", g.name, m, j, err)
						}
						if e := errm.Error(m, tr, kept); math.IsNaN(e) || math.IsInf(e, 0) {
							t.Fatalf("%s %s J=%d: snapshot error %v", g.name, m, j, e)
						}
					}
				}
			}
		})
	}
}

// subsequenceIndices maps snapshot points back to strictly increasing
// indices of tr, or nil if the snapshot is not a subsequence.
func subsequenceIndices(t *testing.T, tr traj.Trajectory, snap []geo.Point) []int {
	t.Helper()
	kept := make([]int, 0, len(snap))
	j := 0
	for _, q := range snap {
		for j < len(tr) && !tr[j].Equal(q) {
			j++
		}
		if j == len(tr) {
			return nil
		}
		kept = append(kept, j)
		j++
	}
	return kept
}
