package check

import (
	"math/rand"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/rl"
)

// The batch-engine differential: core.BatchEngine against per-trajectory
// core.Simplify over the full adversarial generator set, random policy
// weights, random batch widths and both inference modes. The engine's
// contract is bitwise equality at any width (DESIGN.md §12); any drift —
// a hoisted float64 expression, a mask mix-up across lanes, an RNG
// stream consumed out of order — surfaces here as a kept-index mismatch
// on geometry chosen to make rounding differences visible (extreme
// magnitudes, ties from collinear and stationary families).

func TestBatchEngineDifferential(t *testing.T) {
	variants := []core.Variant{core.Online, core.Plus, core.PlusPlus}
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(2)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(15000 + round)))
				for _, m := range errm.Measures {
					for _, v := range variants {
						opts := core.Options{Measure: m, Variant: v, K: 3}
						if v != core.Online {
							opts = core.DefaultOptions(m, v)
						}
						// Fresh random weights each round: differential
						// coverage over policy space, not one fixed net.
						p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 8+r.Intn(16),
							rand.New(rand.NewSource(r.Int63())))
						if err != nil {
							t.Fatal(err)
						}
						sample := r.Intn(2) == 0
						eng, err := core.NewBatchEngine(p, opts, sample)
						if err != nil {
							t.Fatal(err)
						}
						b := 1 + r.Intn(9)
						items := make([]core.BatchItem, b)
						seeds := make([]int64, b)
						for i := range items {
							tr := g.gen(rand.New(rand.NewSource(int64(700+round*100+i))), 12+r.Intn(40))
							w := 4 + r.Intn(8)
							items[i] = core.BatchItem{T: tr, W: w}
							if sample {
								seeds[i] = r.Int63()
								items[i].R = rand.New(rand.NewSource(seeds[i]))
							}
						}
						got := eng.Run(items)
						for i, res := range got {
							if res.Err != nil {
								t.Fatalf("%s %s %s b=%d item %d: %v", g.name, m, v, b, i, res.Err)
							}
							if err := errm.CheckKept(items[i].T, res.Kept); err != nil {
								t.Fatalf("%s %s %s item %d: invalid kept: %v", g.name, m, v, i, err)
							}
							var sr *rand.Rand
							if sample {
								sr = rand.New(rand.NewSource(seeds[i]))
							}
							want, err := core.Simplify(p, items[i].T, items[i].W, opts, sample, sr)
							if err != nil {
								t.Fatalf("sequential: %v", err)
							}
							if !sameInts(res.Kept, want) {
								t.Fatalf("%s %s %s sample=%v b=%d item %d (len %d, w %d): batch %v != sequential %v",
									g.name, m, v, sample, b, i, len(items[i].T), items[i].W, res.Kept, want)
							}
						}
					}
				}
			}
		})
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
