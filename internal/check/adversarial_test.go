package check

import (
	"math"
	"math/rand"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/traj"
)

// The adversarial pillar: every generator family is fed to every measure
// at every granularity and to both simplify modes (slice-based and
// streaming), asserting totality — no NaN ever, no Inf (each family keeps
// its true values representable, so an Inf is an overflow bug, not
// saturation), no panic, and structurally valid outputs.

func assertFiniteVal(t *testing.T, ctx string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("%s = %v, want finite", ctx, v)
	}
}

func TestMeasuresTotalOnAdversarialGeometry(t *testing.T) {
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(5)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(11000 + round)))
				tr := g.gen(r, 8+r.Intn(10))
				n := len(tr)
				for _, m := range errm.Measures {
					for a := 0; a < n-1; a++ {
						for b := a + 1; b < n; b++ {
							assertFiniteVal(t, g.name+" SegmentError "+m.String(), errm.SegmentError(m, tr, a, b))
							for i := a + 1; i < b; i++ {
								assertFiniteVal(t, g.name+" PointError "+m.String(), errm.PointError(m, tr, a, i, b))
							}
						}
					}
					for i := 1; i < n-1; i++ {
						assertFiniteVal(t, g.name+" OnlineValue "+m.String(), errm.OnlineValue(m, tr[i-1], tr[i], tr[i+1]))
					}
				}
			}
		})
	}
}

func TestSimplifyTotalOnAdversarialGeometry(t *testing.T) {
	// Both simplify modes, all three variants, across the full adversarial
	// set. SimplifyFixedAction(0) is policy-free (always drops the first
	// candidate), so this exercises the env/buffer machinery deterministically;
	// the policy-driven paths are covered by the streamer oracle tests.
	variants := []core.Variant{core.Online, core.Plus, core.PlusPlus}
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(3)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(12000 + round)))
				tr := g.gen(r, 20+r.Intn(40))
				w := 4 + r.Intn(8)
				for _, m := range errm.Measures {
					for _, v := range variants {
						opts := core.Options{Measure: m, Variant: v, K: 3}
						if v != core.Online {
							opts = core.DefaultOptions(m, v)
						}
						kept, err := core.SimplifyFixedAction(tr, w, opts, 0)
						if err != nil {
							t.Fatalf("%s %s %s: %v", g.name, m, v, err)
						}
						if err := errm.CheckKept(tr, kept); err != nil {
							t.Fatalf("%s %s %s: invalid kept: %v", g.name, m, v, err)
						}
						if len(kept) > max(w, 2) {
							t.Fatalf("%s %s %s: kept %d with budget %d", g.name, m, v, len(kept), w)
						}
						assertFiniteVal(t, g.name+" error "+m.String()+" "+v.String(), errm.Error(m, tr, kept))
					}

					// Streaming mode with skip actions over the same feed.
					opts := core.Options{Measure: m, Variant: core.Online, K: 3, J: 2}
					p := checkPolicy(t, opts, int64(round))
					snap := snapshotOf(t, p, tr, w, opts, true, rand.New(rand.NewSource(int64(round))))
					raw := make([][3]float64, len(snap))
					for i, q := range snap {
						raw[i] = [3]float64{q.X, q.Y, q.T}
					}
					st, err := traj.FromPoints(raw)
					if err != nil {
						t.Fatalf("%s %s streamer: invalid snapshot: %v", g.name, m, err)
					}
					kept := subsequenceIndices(t, tr, st)
					if kept == nil {
						t.Fatalf("%s %s streamer: snapshot not a subsequence", g.name, m)
					}
					assertFiniteVal(t, g.name+" streamer error "+m.String(), errm.Error(m, tr, kept))
				}
			}
		})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
