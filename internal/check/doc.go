// Package check is the differential and metamorphic correctness harness
// for the semantic core of the system: the four error measures (SED, PED,
// DAD, SAD), the incremental errm.Tracker that computes RL rewards, the
// streaming online path, and the Min-Size solvers. It exists because all
// of those rely on hand-derived geometry and bookkeeping that ordinary
// unit tests only spot-check; the harness instead proves agreement
// between independent implementations over adversarial inputs.
//
// Four pillars, mirroring the one-pass error-bounded simplification
// literature's use of exact oracles:
//
//   - Oracle equivalence: errm.Tracker drop/extend sequences against full
//     errm.Error recomputation (exact); core.Streamer push loops against
//     the slice-based online core.Simplify on identical feeds (exact when
//     no skip actions exist); minsize.Optimal against brute-force subset
//     enumeration on short trajectories; the errm measures against
//     independently coded reference formulas (tolerance-based).
//   - Metamorphic invariants: all four measures are invariant under
//     translation, rotation and uniform time shift (rigid motions of the
//     spatio-temporal input); asserted at 1e-9 relative tolerance.
//   - Adversarial geometry: seeded generators produce zero-length
//     segments, near-duplicate timestamps, collinear runs, stationary
//     stretches and extreme-magnitude coordinates; every measure and both
//     simplify modes must stay total (no NaN, no Inf for representable
//     true values, no panic) over all of them.
//   - CI wiring: `make check-diff` runs the harness under the race
//     detector with fixed seeds; scripts/check.sh runs it as a gate
//     stage. CHECK_SCALE multiplies the iteration budget for deeper
//     soak runs.
//
// Everything here is deterministic: generators and policies derive from
// fixed seeds, so a failure reproduces exactly.
package check
