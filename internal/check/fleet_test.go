package check

import (
	"fmt"
	"math/rand"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/fleet"
	"rlts/internal/traj"
)

// Fleet differential: the budget allocator's contract, probed with random
// member populations, and the rebalance loop's one load-bearing promise —
// the fleet's total stored points never exceed the global budget, not even
// transiently between two SetBudget calls — probed against live streamers
// fed by the adversarial generator families.

// randMembers draws a member population with deliberately nasty shapes:
// zero lengths, zero and tied signals, wildly skewed errors.
func randMembers(r *rand.Rand, n int) []fleet.Member {
	ms := make([]fleet.Member, n)
	for i := range ms {
		ms[i] = fleet.Member{
			ID:  fmt.Sprintf("m%04d", i),
			Len: r.Intn(5000),
		}
		switch r.Intn(4) {
		case 0: // silent member
		case 1: // tied signals
			ms[i].Err, ms[i].Pressure = 1, 1
		case 2: // skewed
			ms[i].Err = r.Float64() * 1e6
			ms[i].Pressure = r.Float64() * 1e-6
		default:
			ms[i].Err = r.Float64()
			ms[i].Pressure = r.Float64()
		}
	}
	return ms
}

// TestFleetAllocateDifferential: for every strategy, over random member
// populations, the allocation (a) sums to exactly the budget, (b) gives
// every member at least fleet.MinPerMember, and (c) is identical no
// matter how the caller orders the member slice.
func TestFleetAllocateDifferential(t *testing.T) {
	rounds := scaled(50)
	for round := 0; round < rounds; round++ {
		r := rand.New(rand.NewSource(int64(9100 + round)))
		n := 1 + r.Intn(40)
		ms := randMembers(r, n)
		budget := fleet.MinPerMember*n + r.Intn(10000)
		for _, st := range fleet.Strategies() {
			as, err := fleet.Allocate(st, ms, budget)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, st, err)
			}
			if got := fleet.Total(as); got != budget {
				t.Fatalf("round %d %s: allocated %d, budget %d", round, st, got, budget)
			}
			byID := make(map[string]int, len(as))
			for _, a := range as {
				if a.W < fleet.MinPerMember {
					t.Fatalf("round %d %s: member %s got W=%d", round, st, a.ID, a.W)
				}
				byID[a.ID] = a.W
			}
			// Determinism under caller ordering: shuffle and re-allocate.
			shuf := append([]fleet.Member(nil), ms...)
			r.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
			as2, err := fleet.Allocate(st, shuf, budget)
			if err != nil {
				t.Fatalf("round %d %s shuffled: %v", round, st, err)
			}
			for _, a := range as2 {
				if byID[a.ID] != a.W {
					t.Fatalf("round %d %s: member %s W=%d sorted vs %d shuffled",
						round, st, a.ID, a.W, byID[a.ID])
				}
			}
		}
	}
}

// TestFleetRebalanceBudgetInvariant streams adversarial trajectories
// through a fleet of live streamers while reallocating mid-stream, in
// the shrinks-before-grows order the server's rebalance engine uses, and
// asserts the stored-point total never exceeds the global budget after
// ANY single SetBudget call — the transient a naive apply order would
// violate.
func TestFleetRebalanceBudgetInvariant(t *testing.T) {
	opts := core.Options{Measure: errm.SED, Variant: core.Online, K: 3, J: 0}
	p := checkPolicy(t, opts, 42)
	const steps = 6
	rounds := scaled(4)
	for round := 0; round < rounds; round++ {
		r := rand.New(rand.NewSource(int64(9300 + round)))
		// A fleet drawn across the generator families: error profiles
		// differ wildly, so reallocations actually move budget.
		n := 3 + r.Intn(5)
		trajs := make([]traj.Trajectory, n)
		budget := 0
		for i := range trajs {
			g := generators[r.Intn(len(generators))]
			trajs[i] = g.gen(rand.New(rand.NewSource(int64(round*100+i))), 60+r.Intn(120))
			budget += len(trajs[i]) / 8
		}
		if budget < fleet.MinPerMember*n {
			budget = fleet.MinPerMember * n
		}
		share := budget / n
		if share < fleet.MinPerMember {
			share = fleet.MinPerMember
		}
		streams := make([]*core.Streamer, n)
		for i := range streams {
			s, err := core.NewStreamer(p, share, opts, false, nil)
			if err != nil {
				t.Fatal(err)
			}
			streams[i] = s
		}
		total := func() int {
			sum := 0
			for _, s := range streams {
				sum += s.BufferSize()
			}
			return sum
		}
		pushed := make([]int, n)
		for step := 0; step < steps; step++ {
			// Feed every member its next chunk of the stream.
			for i, tr := range trajs {
				hi := pushed[i] + (len(tr)+steps-1)/steps
				if hi > len(tr) {
					hi = len(tr)
				}
				for _, pt := range tr[pushed[i]:hi] {
					streams[i].Push(pt)
				}
				pushed[i] = hi
			}
			if got := total(); got > budget {
				t.Fatalf("round %d step %d: fleet holds %d points, budget %d", round, step, got, budget)
			}
			// Rebalance from live signals, rotating through the strategies.
			ms := make([]fleet.Member, n)
			for i, s := range streams {
				ms[i] = fleet.Member{
					ID:       fmt.Sprintf("s%02d", i),
					Len:      s.Seen(),
					Err:      s.ErrEst(),
					Pressure: s.PolicyPressure(),
				}
			}
			st := fleet.Strategies()[step%len(fleet.Strategies())]
			as, err := fleet.Allocate(st, ms, budget)
			if err != nil {
				t.Fatalf("round %d step %d: %v", round, step, err)
			}
			// Apply all shrinks first, then the grows, checking the
			// global total after every individual budget change.
			for pass := 0; pass < 2; pass++ {
				for _, a := range as {
					var i int
					if _, err := fmt.Sscanf(a.ID, "s%02d", &i); err != nil {
						t.Fatalf("round %d step %d: bad member id %q", round, step, a.ID)
					}
					shrink := a.W < streams[i].Budget()
					if (pass == 0) != shrink {
						continue
					}
					if err := streams[i].SetBudget(a.W); err != nil {
						t.Fatalf("round %d step %d: SetBudget(%d): %v", round, step, a.W, err)
					}
					if got := total(); got > budget {
						t.Fatalf("round %d step %d: transient overshoot %d > budget %d after resizing %s",
							round, step, got, budget, a.ID)
					}
				}
			}
		}
	}
}
