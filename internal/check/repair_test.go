package check

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

// The repair pillar: traj.Repair is the only path by which dirty input
// reaches the strict ingest contract, so its postcondition — output
// always satisfies traj.Validate, clean input is untouched — is checked
// here against both corruption layered on the realistic gen profiles
// and the check pillar's own adversarial geometry families.

var repairCfgs = []traj.RepairConfig{
	{},                          // defaults: window 16, no speed gate
	{Window: 4, MaxSpeed: 60},   // shallow window + gate
	{Window: 64, MaxSpeed: 30, AverageDups: true},
	{Window: -1, MaxSpeed: 100}, // reordering disabled, gate only
}

// TestRepairOutputAlwaysStrict is the core contract: every dirty family
// over every profile, repaired under every config, yields points that
// FromPoints accepts (or ErrTooShort when the damage consumed nearly
// everything — never any other error, never a panic).
func TestRepairOutputAlwaysStrict(t *testing.T) {
	rounds := scaled(2)
	for _, prof := range gen.Profiles() {
		for _, fam := range gen.DirtyFamilies() {
			for round := 0; round < rounds; round++ {
				seed := int64(31000 + round)
				clean := gen.New(prof, seed).Trajectory(120)
				raw := gen.Raw(fam.Corrupt(clean, seed+1))
				for _, cfg := range repairCfgs {
					got, rep, err := traj.Repair(raw, cfg)
					if err != nil {
						t.Fatalf("%s/%s cfg=%+v: %v", prof.Name, fam.Name, cfg, err)
					}
					if verr := got.Validate(); verr != nil {
						t.Fatalf("%s/%s cfg=%+v: repaired output invalid: %v", prof.Name, fam.Name, cfg, verr)
					}
					if rep.Pushed != rep.Emitted+rep.Dropped() {
						t.Fatalf("%s/%s cfg=%+v: report unbalanced after flush: %+v", prof.Name, fam.Name, cfg, rep)
					}
				}
			}
		}
	}
}

// TestRepairTotalOnAdversarialGeometry feeds the pillar's own geometry
// families (extreme magnitudes, near-duplicate times, stationary runs)
// through corruption and repair: the defect classifier must stay total —
// overflowed implied speeds compare as +Inf and gate cleanly.
func TestRepairTotalOnAdversarialGeometry(t *testing.T) {
	fam, ok := gen.DirtyFamilyByName("kitchen-sink")
	if !ok {
		t.Fatal("kitchen-sink family missing")
	}
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(3)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(32000 + round)))
				tr := g.gen(r, 30+r.Intn(60))
				raw := gen.Raw(fam.Corrupt(tr, int64(round)))
				for _, cfg := range repairCfgs {
					got, rep, err := traj.Repair(raw, cfg)
					if err != nil {
						// A gate that (correctly) rejects a whole
						// extreme-magnitude family as outliers is a
						// legal total outcome — but only as ErrTooShort
						// with balanced accounting.
						if !errors.Is(err, traj.ErrTooShort) {
							t.Fatalf("%s cfg=%+v: %v", g.name, cfg, err)
						}
						if rep.Pushed != rep.Emitted+rep.Dropped() {
							t.Fatalf("%s cfg=%+v: unbalanced report: %+v", g.name, cfg, rep)
						}
						continue
					}
					if verr := got.Validate(); verr != nil {
						t.Fatalf("%s cfg=%+v: invalid output: %v", g.name, cfg, verr)
					}
				}
			}
		})
	}
}

// TestRepairCleanBitIdentity: on already-valid input, gate-free repair
// is the identity — every adversarial family passes through bit-for-bit
// with a zero-defect report. The speed gate is deliberately excluded:
// families like near-dup-times have legitimate implied speeds of ~1e12,
// so a gate firing there is correct behaviour, not a defect (gated
// identity on realistic speeds is asserted by the server tests).
func TestRepairCleanBitIdentity(t *testing.T) {
	cleanCfgs := []traj.RepairConfig{
		{},
		{Window: 4},
		{Window: 64, AverageDups: true},
		{Window: -1},
	}
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(3)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(33000 + round)))
				tr := g.gen(r, 20+r.Intn(40))
				for _, cfg := range cleanCfgs {
					got, rep, err := traj.Repair(gen.Raw([]geo.Point(tr)), cfg)
					if err != nil {
						t.Fatalf("%s cfg=%+v: %v", g.name, cfg, err)
					}
					if rep.NonFinite+rep.Late+rep.Reordered+rep.Duplicates+rep.Outliers != 0 {
						t.Fatalf("%s cfg=%+v: clean input reported defects: %+v", g.name, cfg, rep)
					}
					if len(got) != len(tr) {
						t.Fatalf("%s cfg=%+v: length %d -> %d", g.name, cfg, len(tr), len(got))
					}
					for i := range got {
						if math.Float64bits(got[i].X) != math.Float64bits(tr[i].X) ||
							math.Float64bits(got[i].Y) != math.Float64bits(tr[i].Y) ||
							math.Float64bits(got[i].T) != math.Float64bits(tr[i].T) {
							t.Fatalf("%s cfg=%+v: point %d altered: %v -> %v", g.name, cfg, i, tr[i], got[i])
						}
					}
				}
			}
		})
	}
}

// TestRepairChunkingAndResumeDifferential: the streaming Repairer must
// emit the same sequence whatever the push chunking, and an
// export/resume cut at any position must be invisible — the same
// bit-identity contract the stream spill path relies on.
func TestRepairChunkingAndResumeDifferential(t *testing.T) {
	fam, _ := gen.DirtyFamilyByName("kitchen-sink")
	rounds := scaled(4)
	for round := 0; round < rounds; round++ {
		r := rand.New(rand.NewSource(int64(34000 + round)))
		prof := gen.Profiles()[round%len(gen.Profiles())]
		clean := gen.New(prof, int64(round)).Trajectory(80 + r.Intn(80))
		pts := fam.Corrupt(clean, int64(round)+5)
		cfg := traj.RepairConfig{Window: 1 + r.Intn(32), MaxSpeed: 20 + r.Float64()*80,
			AverageDups: round%2 == 0}

		// Reference: one point at a time, no interruption.
		ref := traj.NewRepairer(cfg)
		var want []geo.Point
		for _, p := range pts {
			want = append(want, ref.Push(p)...)
		}
		want = append(want, ref.Flush()...)

		// Chunked with a resume cut at a random position.
		cut := r.Intn(len(pts) + 1)
		a := traj.NewRepairer(cfg)
		var got []geo.Point
		for _, p := range pts[:cut] {
			got = append(got, a.Push(p)...)
		}
		blob := a.ExportState().AppendBinary(nil)
		st, err := traj.DecodeRepairState(blob)
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		b, err := traj.ResumeRepairer(st)
		if err != nil {
			t.Fatalf("round %d: resume: %v", round, err)
		}
		for _, p := range pts[cut:] {
			got = append(got, b.Push(p)...)
		}
		got = append(got, b.Flush()...)

		if len(got) != len(want) {
			t.Fatalf("round %d cut=%d: emitted %d, want %d", round, cut, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i].X) != math.Float64bits(want[i].X) ||
				math.Float64bits(got[i].Y) != math.Float64bits(want[i].Y) ||
				math.Float64bits(got[i].T) != math.Float64bits(want[i].T) {
				t.Fatalf("round %d cut=%d: emission %d differs: %v vs %v", round, cut, i, got[i], want[i])
			}
		}
		if ar, br := ref.Report(), b.Report(); ar != br {
			t.Fatalf("round %d cut=%d: reports differ: %+v vs %+v", round, cut, ar, br)
		}
	}
}
