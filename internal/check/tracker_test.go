package check

import (
	"math/rand"
	"testing"

	"rlts/internal/errm"
	"rlts/internal/traj"
)

// The Tracker maintains the trajectory error incrementally across
// drop/extend operations (the RL reward substrate, Eq. 8). Its oracle is
// the direct recomputation errm.Error over the same kept chain: both walk
// the identical primitives, so agreement must be exact (bitwise), for
// every adversarial family and after every single operation.

func TestTrackerDropSequencesMatchRecompute(t *testing.T) {
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(6)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(1000 + round)))
				tr := g.gen(r, 12+r.Intn(30))
				for _, m := range errm.Measures {
					tk := errm.NewFullTracker(m, tr)
					// Drop random interior points until only endpoints remain.
					for len(tk.Kept()) > 2 {
						kept := tk.Kept()
						i := kept[1+r.Intn(len(kept)-2)]
						got := tk.Drop(i)
						want := errm.Error(m, tr, tk.Kept())
						if got != want {
							t.Fatalf("%s %s round %d: after Drop(%d) tracker=%v recompute=%v kept=%v",
								g.name, m, round, i, got, want, tk.Kept())
						}
					}
				}
			}
		})
	}
}

// maxLinkError recomputes a kept chain's error from scratch with the same
// primitive the tracker uses. Unlike errm.Error it accepts a chain that
// has not yet reached the end of the trajectory (a stream in progress).
func maxLinkError(m errm.Measure, tr traj.Trajectory, kept []int) float64 {
	var worst float64
	for i := 1; i < len(kept); i++ {
		if d := errm.SegmentError(m, tr, kept[i-1], kept[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestTrackerExtendSkipDropMatchesRecompute(t *testing.T) {
	// Online-style mixed workload: extend with random skip gaps (as the
	// skip actions produce) interleaved with interior drops, checking the
	// tracker against full recomputation after every operation.
	for _, g := range generators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(6)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(2000 + round)))
				tr := g.gen(r, 20+r.Intn(40))
				for _, m := range errm.Measures {
					tk := errm.NewTracker(m, tr)
					tail := 0
					for step := 0; ; step++ {
						kept := tk.Kept()
						canDrop := len(kept) > 2
						canExtend := tail < len(tr)-1
						if !canExtend && (!canDrop || step%2 == 0) {
							break
						}
						if canExtend && (r.Intn(2) == 0 || !canDrop) {
							gap := 1 + r.Intn(3) // skip up to 2 points
							tail += gap
							if tail > len(tr)-1 {
								tail = len(tr) - 1
							}
							tk.ExtendTo(tail)
						} else {
							i := kept[1+r.Intn(len(kept)-2)]
							tk.Drop(i)
						}
						got, want := tk.Err(), maxLinkError(m, tr, tk.Kept())
						if got != want {
							t.Fatalf("%s %s round %d step %d: tracker=%v recompute=%v kept=%v",
								g.name, m, round, step, got, want, tk.Kept())
						}
					}
				}
			}
		})
	}
}

func TestMeasuresMatchReferenceFormulas(t *testing.T) {
	// Differential check of the measure primitives themselves against the
	// independently-coded reference formulas, over all anchor spans of
	// moderate-magnitude adversarial trajectories.
	const tol = 1e-9
	for _, g := range moderateGenerators {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rounds := scaled(8)
			for round := 0; round < rounds; round++ {
				r := rand.New(rand.NewSource(int64(3000 + round)))
				tr := g.gen(r, 8+r.Intn(8))
				n := len(tr)
				for _, m := range errm.Measures {
					for a := 0; a < n-1; a++ {
						for b := a + 1; b < n; b++ {
							got := errm.SegmentError(m, tr, a, b)
							want := refSegmentError(m, tr, a, b)
							if !closeRel(got, want, tol) {
								t.Fatalf("%s %s round %d: SegmentError(%d,%d)=%v ref=%v",
									g.name, m, round, a, b, got, want)
							}
							for i := a + 1; i < b; i++ {
								got := errm.PointError(m, tr, a, i, b)
								want := refPointError(m, tr, a, i, b)
								if !closeRel(got, want, tol) {
									t.Fatalf("%s %s round %d: PointError(%d,%d,%d)=%v ref=%v",
										g.name, m, round, a, i, b, got, want)
								}
							}
						}
					}
				}
			}
		})
	}
}
