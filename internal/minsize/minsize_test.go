package minsize

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"rlts/internal/baseline/batch"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

func testTraj(seed int64, n int) traj.Trajectory {
	return gen.New(gen.Geolife(), seed).Trajectory(n)
}

func TestGreedyRespectsBound(t *testing.T) {
	tr := testTraj(1, 200)
	for _, m := range errm.Measures {
		for _, bound := range []float64{0.5, 2, 10} {
			kept, err := Greedy(tr, bound, m)
			if err != nil {
				t.Fatal(err)
			}
			if e := errm.Error(m, tr, kept); e > bound+1e-9 {
				t.Errorf("%v bound %v: error %v exceeds bound", m, bound, e)
			}
			if !tr.Pick(kept).IsSimplificationOf(tr) {
				t.Errorf("%v: invalid simplification", m)
			}
		}
	}
}

func TestOptimalRespectsBoundAndBeatsGreedy(t *testing.T) {
	tr := testTraj(2, 80)
	for _, bound := range []float64{1, 5, 20} {
		opt, err := Optimal(tr, bound, errm.SED)
		if err != nil {
			t.Fatal(err)
		}
		if e := errm.Error(errm.SED, tr, opt); e > bound+1e-9 {
			t.Errorf("bound %v: optimal error %v exceeds bound", bound, e)
		}
		gr, err := Greedy(tr, bound, errm.SED)
		if err != nil {
			t.Fatal(err)
		}
		if len(opt) > len(gr) {
			t.Errorf("bound %v: optimal kept %d > greedy %d", bound, len(opt), len(gr))
		}
	}
}

func TestZeroBoundOnStraightLine(t *testing.T) {
	// A constant-velocity line is exactly representable by its endpoints
	// even at bound 0. 33 points make the interpolation parameter i/32
	// dyadic, so the synchronized positions are exact in floating point.
	tr := make(traj.Trajectory, 33)
	for i := range tr {
		tr[i] = geo.Pt(float64(i), float64(2*i), float64(i))
	}
	kept, err := Optimal(tr, 0, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("optimal kept %d, want 2", len(kept))
	}
	// Greedy checks every intermediate prefix segment, whose interpolation
	// parameters are not all dyadic — give it an epsilon bound for the
	// float dust.
	kept, err = Greedy(tr, 1e-9, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("greedy kept %d, want 2", len(kept))
	}
}

func TestLargerBoundNeverKeepsMoreProperty(t *testing.T) {
	f := func(seed int64, b1, b2 uint8) bool {
		tr := testTraj(seed, 60)
		lo, hi := float64(b1)/8, float64(b2)/8
		if lo > hi {
			lo, hi = hi, lo
		}
		kl, err := Optimal(tr, lo, errm.PED)
		if err != nil {
			return false
		}
		kh, err := Optimal(tr, hi, errm.PED)
		if err != nil {
			return false
		}
		return len(kh) <= len(kl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSearchBudget(t *testing.T) {
	tr := testTraj(3, 150)
	const bound = 5.0
	kept, err := SearchBudget(tr, bound, errm.SED, func(t traj.Trajectory, w int) ([]int, error) {
		return batch.BottomUp(t, w, errm.SED)
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := errm.Error(errm.SED, tr, kept); e > bound+1e-9 {
		t.Errorf("error %v exceeds bound", e)
	}
	// A much tighter budget must violate the bound (otherwise the search
	// would have found it): sanity that the search is minimal-ish.
	if len(kept) > 4 {
		tighter, err := batch.BottomUp(tr, len(kept)-3, errm.SED)
		if err != nil {
			t.Fatal(err)
		}
		if errm.Error(errm.SED, tr, tighter) <= bound {
			t.Errorf("budget %d also satisfies the bound; search not minimal", len(kept)-3)
		}
	}
}

func TestSearchBudgetCtxCancellation(t *testing.T) {
	tr := testTraj(11, 40)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := SearchBudgetCtx(ctx, tr, 0.5, errm.SED, func(t traj.Trajectory, w int) ([]int, error) {
		calls++
		cancel() // cancel mid-search: the next probe must not run
		return batch.BottomUp(t, w, errm.SED)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("simplifier probed %d times after cancellation, want 1", calls)
	}
	// An already-expired deadline stops before the first probe.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel2()
	_, err = SearchBudgetCtx(expired, tr, 0.5, errm.SED, func(_ traj.Trajectory, w int) ([]int, error) {
		t.Fatal("probe ran under an expired deadline")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestValidation(t *testing.T) {
	tr := testTraj(4, 30)
	if _, err := Greedy(tr, -1, errm.SED); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := Optimal(tr[:1], 1, errm.SED); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Greedy(tr, 1, errm.Measure(9)); err == nil {
		t.Error("bad measure accepted")
	}
}
