// Package minsize solves the dual of the paper's Min-Error problem:
// given an error bound, keep as few points as possible such that the
// simplified trajectory's error stays within the bound. The paper reviews
// this dual (§II) and excludes binary-search adaptations from its
// comparison on complexity grounds; the package provides both forms as a
// library extension:
//
//   - Greedy: one-pass maximal span extension, the classic online-style
//     dual algorithm. Fast, not size-optimal.
//   - Optimal: dynamic programming over feasible anchor segments,
//     size-optimal, quadratic-to-cubic time — for short trajectories and
//     for validating Greedy.
//   - SearchBudget: binary search over W delegating to any Min-Error
//     simplifier, the adaptation the paper mentions.
package minsize

import (
	"context"
	"errors"
	"fmt"

	"rlts/internal/errm"
	"rlts/internal/traj"
)

func check(t traj.Trajectory, bound float64, m errm.Measure) error {
	if len(t) < 2 {
		return traj.ErrTooShort
	}
	if bound < 0 {
		return fmt.Errorf("minsize: negative error bound %v", bound)
	}
	if !m.Valid() {
		return fmt.Errorf("minsize: invalid measure %d", int(m))
	}
	return nil
}

// Greedy returns a simplification with error <= bound by extending each
// anchor segment as far as it stays feasible. The result keeps both
// endpoints; its size is not optimal but is at most twice-ish the optimum
// in practice.
func Greedy(t traj.Trajectory, bound float64, m errm.Measure) ([]int, error) {
	if err := check(t, bound, m); err != nil {
		return nil, err
	}
	n := len(t)
	kept := []int{0}
	a := 0
	for a < n-1 {
		b := a + 1
		for b < n-1 && errm.SegmentError(m, t, a, b+1) <= bound {
			b++
		}
		kept = append(kept, b)
		a = b
	}
	return kept, nil
}

// Optimal returns a minimum-size simplification with error <= bound via
// dynamic programming: d[i] = the fewest kept points for T[0..i] ending
// at i, taking any feasible predecessor. O(n^2) feasibility checks, each
// an O(span) segment-error scan.
func Optimal(t traj.Trajectory, bound float64, m errm.Measure) ([]int, error) {
	if err := check(t, bound, m); err != nil {
		return nil, err
	}
	n := len(t)
	const inf = int(^uint(0) >> 1)
	d := make([]int, n)
	parent := make([]int, n)
	for i := range d {
		d[i] = inf
		parent[i] = -1
	}
	d[0] = 1
	for i := 1; i < n; i++ {
		for l := i - 1; l >= 0; l-- {
			if d[l] == inf {
				continue
			}
			if errm.SegmentError(m, t, l, i) > bound {
				continue
			}
			if d[l]+1 < d[i] {
				d[i] = d[l] + 1
				parent[i] = l
			}
		}
	}
	if d[n-1] == inf {
		// Adjacent segments always have zero error, so this cannot happen
		// with a non-negative bound — defend anyway.
		return nil, fmt.Errorf("minsize: no feasible simplification (bound %v)", bound)
	}
	kept := make([]int, 0, d[n-1])
	for i := n - 1; i >= 0; i = parent[i] {
		kept = append(kept, i)
		if parent[i] == -1 {
			break
		}
	}
	for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
		kept[l], kept[r] = kept[r], kept[l]
	}
	return kept, nil
}

// MinErrorFunc is any Min-Error simplifier (budget in, kept indices out).
type MinErrorFunc func(t traj.Trajectory, w int) ([]int, error)

// ErrInvalidSimplification is returned (wrapped) by SearchBudget when the
// probed simplifier yields indices that are not a valid simplification of
// t — missing endpoints, out of range, or not strictly increasing.
var ErrInvalidSimplification = errors.New("minsize: simplifier returned invalid kept indices")

// SearchBudget finds a small budget W whose Min-Error simplification by f
// has error <= bound, via binary search over W — the adaptation of
// Min-Error algorithms the paper's related work describes. The returned
// simplification is always verified to meet the bound.
//
// The binary search assumes f is error-monotone in W (a larger budget
// never hurts), which holds for the well-behaved heuristics but can be
// violated by a stochastic RLTS policy. A violation can make every probed
// budget look infeasible even though feasible budgets exist; instead of
// silently returning the identity simplification, SearchBudget then falls
// back to a linear scan over W = 2..len(t), returning the first budget
// whose (verified) result meets the bound. For a non-monotone f the
// result is therefore feasible but only heuristically small. Simplifier
// output that is not a valid simplification of t yields an error wrapping
// ErrInvalidSimplification rather than a panic.
func SearchBudget(t traj.Trajectory, bound float64, m errm.Measure, f MinErrorFunc) ([]int, error) {
	return SearchBudgetCtx(context.Background(), t, bound, m, f)
}

// SearchBudgetCtx is SearchBudget with cancellation: ctx is checked
// before every probed budget, so a serving deadline cuts off the linear
// fallback scan (up to n probes of f) instead of riding it out.
func SearchBudgetCtx(ctx context.Context, t traj.Trajectory, bound float64, m errm.Measure, f MinErrorFunc) ([]int, error) {
	if err := check(t, bound, m); err != nil {
		return nil, err
	}
	n := len(t)
	// eval probes one budget, validating f's output before measuring it.
	eval := func(w int) (kept []int, feasible bool, err error) {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		kept, err = f(t, w)
		if err != nil {
			return nil, false, err
		}
		if verr := errm.CheckKept(t, kept); verr != nil {
			return nil, false, fmt.Errorf("%w (budget %d): %v", ErrInvalidSimplification, w, verr)
		}
		return kept, errm.Error(m, t, kept) <= bound, nil
	}
	lo, hi := 2, n
	var best []int
	bestW := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		kept, feasible, err := eval(mid)
		if err != nil {
			return nil, err
		}
		if feasible {
			best, bestW = kept, mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if best != nil && bestW < n {
		return best, nil
	}
	// Either the search saw no feasible budget at all, or the only one it
	// found was W = n (which any f satisfies trivially and which signals
	// that every smaller probe failed). Both are expected for a genuinely
	// incompressible trajectory but are also exactly what a non-monotone f
	// produces when the probed budgets were unlucky — scan linearly so a
	// feasible budget cannot be missed.
	for w := 2; w < n; w++ {
		kept, feasible, err := eval(w)
		if err != nil {
			return nil, err
		}
		if feasible {
			return kept, nil
		}
	}
	if best != nil {
		return best, nil
	}
	// W = n always succeeds (identity simplification, error 0).
	kept := make([]int, n)
	for i := range kept {
		kept[i] = i
	}
	return kept, nil
}
