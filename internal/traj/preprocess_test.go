package traj

import (
	"math"
	"testing"
	"testing/quick"

	"rlts/internal/geo"
)

func gapTraj(gaps []float64) Trajectory {
	t := Trajectory{geo.Pt(0, 0, 0)}
	cur := 0.0
	for i, g := range gaps {
		cur += g
		t = append(t, geo.Pt(float64(i+1), 0, cur))
	}
	return t
}

func TestSplitAtGaps(t *testing.T) {
	tr := gapTraj([]float64{1, 1, 100, 1, 1, 200, 1})
	parts := SplitAtGaps(tr, 10)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	if parts[0].Len() != 3 || parts[1].Len() != 3 || parts[2].Len() != 2 {
		t.Errorf("part lengths %d/%d/%d, want 3/3/2",
			parts[0].Len(), parts[1].Len(), parts[2].Len())
	}
	// Total points preserved.
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != tr.Len() {
		t.Errorf("points lost: %d vs %d", total, tr.Len())
	}
	// No split requested.
	if got := SplitAtGaps(tr, 0); len(got) != 1 {
		t.Errorf("maxGap=0 split into %d", len(got))
	}
	// No gaps large enough.
	if got := SplitAtGaps(tr, 1000); len(got) != 1 {
		t.Errorf("huge maxGap split into %d", len(got))
	}
}

func TestSplitAtGapsSegmentsDoNotAlias(t *testing.T) {
	// Regression: segments used to be sub-slices of the input's backing
	// array, so appending to one (a routine act on a Trajectory value)
	// silently overwrote the next segment's first points and the input.
	tr := gapTraj([]float64{1, 1, 100, 1, 1, 200, 1})
	orig := tr.Clone()
	parts := SplitAtGaps(tr, 10)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	for i := range parts {
		parts[i] = append(parts[i], geo.Pt(-999, -999, 1e9))
	}
	for i, p := range tr {
		if !p.Equal(orig[i]) {
			t.Fatalf("input point %d clobbered by append to a segment: %+v", i, p)
		}
	}
	if got := parts[1][0]; !got.Equal(orig[3]) {
		t.Fatalf("second segment's first point clobbered: %+v", got)
	}
	// The unsplit fast paths must copy too.
	for _, maxGap := range []float64{0, 1000} {
		out := SplitAtGaps(tr, maxGap)[0]
		_ = append(out[:1], geo.Pt(-1, -1, -1))
		if !tr[1].Equal(orig[1]) {
			t.Fatalf("maxGap=%v: returned trajectory aliases the input", maxGap)
		}
	}
}

func TestSplitAtGapsPreservesPointsProperty(t *testing.T) {
	f := func(raw []uint8, maxGapRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		gaps := make([]float64, len(raw))
		for i, g := range raw {
			gaps[i] = float64(g)/16 + 0.01
		}
		tr := gapTraj(gaps)
		maxGap := float64(maxGapRaw) / 16
		parts := SplitAtGaps(tr, maxGap)
		total := 0
		for _, p := range parts {
			total += p.Len()
			if maxGap > 0 {
				for i := 1; i < p.Len(); i++ {
					if p[i].T-p[i-1].T > maxGap {
						return false // a gap survived inside a part
					}
				}
			}
		}
		return total == tr.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterShort(t *testing.T) {
	ts := []Trajectory{line(10), line(2), line(5)}
	out := FilterShort(ts, 5)
	if len(out) != 2 {
		t.Fatalf("kept %d, want 2", len(out))
	}
	if out[0].Len() != 10 || out[1].Len() != 5 {
		t.Error("wrong trajectories kept")
	}
}

func TestDownsample(t *testing.T) {
	// 1-second sampling, thin to >= 5 s.
	tr := line(21)
	out := Downsample(tr, 5)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(tr[0]) || !out[out.Len()-1].Equal(tr[20]) {
		t.Error("endpoints lost")
	}
	for i := 1; i < out.Len()-1; i++ {
		if out[i].T-out[i-1].T < 5 {
			t.Errorf("gap %v < 5 at %d", out[i].T-out[i-1].T, i)
		}
	}
	if !out.IsSimplificationOf(tr) {
		t.Error("downsample is not a subsequence")
	}
	// Tiny inputs unchanged.
	if got := Downsample(tr.Sub(0, 1), 5); got.Len() != 2 {
		t.Errorf("2-point input became %d", got.Len())
	}
}

func TestDownsampleDirtyTail(t *testing.T) {
	// Regression: the final point used to be appended unconditionally,
	// so a tail that duplicated (or regressed behind) the last kept
	// point's timestamp produced invalid output from Downsample.
	dup := Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 0, 2), geo.Pt(2, 0, 2)}
	out := Downsample(dup, 1)
	if err := out.Validate(); err != nil {
		t.Fatalf("duplicate tail: invalid output: %v (%v)", err, out)
	}
	if !out[out.Len()-1].Equal(dup[2]) {
		t.Errorf("duplicate tail: last point lost: %v", out)
	}
	back := Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 0, 5), geo.Pt(2, 0, 3)}
	out = Downsample(back, 1)
	if err := out.Validate(); err != nil {
		t.Fatalf("regressed tail: invalid output: %v (%v)", err, out)
	}
	// A non-finite interior gap must neither panic nor survive into the
	// output when the tail cannot advance past it.
	inf := Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 0, math.Inf(1)), geo.Pt(2, 0, 10)}
	out = Downsample(inf, 1)
	if err := out.Validate(); err != nil {
		t.Fatalf("non-finite gap: invalid output: %v (%v)", err, out)
	}
	nan := Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 0, math.NaN()), geo.Pt(2, 0, 10)}
	out = Downsample(nan, 1)
	if err := out.Validate(); err != nil {
		t.Fatalf("NaN gap: invalid output: %v (%v)", err, out)
	}
}

func TestCleanFloorsMinPoints(t *testing.T) {
	// Regression: minPoints < 2 used to let single-point runts through,
	// violating the >= 2 contract everything downstream assumes.
	b := gapTraj([]float64{99, 99})
	out, err := Clean([]Trajectory{b}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range out {
		if tr.Len() < 2 {
			t.Fatalf("Clean emitted a %d-point trajectory", tr.Len())
		}
	}
}

func TestClean(t *testing.T) {
	a := gapTraj([]float64{1, 1, 99, 1, 1, 1})
	b := gapTraj([]float64{99, 99})
	out, err := Clean([]Trajectory{a, b}, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// a splits into 3+4? points: gaps 1,1 | 99 splits; first part 3 pts,
	// second 4 pts; b splits into 3 single points -> all dropped.
	if len(out) != 2 {
		t.Fatalf("kept %d parts, want 2: %v", len(out), out)
	}
	bad := Trajectory{geo.Pt(0, 0, 5), geo.Pt(1, 0, 1)}
	if _, err := Clean([]Trajectory{bad}, 10, 2); err == nil {
		t.Error("invalid input accepted")
	}
}
