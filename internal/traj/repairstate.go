package traj

// Binary codec for RepairState, mirroring core.StreamerState's style:
// little-endian, length-prefixed, versioned, total on garbage. The HTTP
// session store embeds this blob in its spill envelope (as a versioned
// extension — see server spill.go), so a spilled session's repair window
// survives a restart bit-identically.
//
// Layout (all little-endian):
//
//	u8      codec version (1)
//	u64     cfg.Window (two's-complement int64)
//	f64     cfg.MaxSpeed
//	f64     cfg.DupRadius
//	u8      cfg.AverageDups (0/1)
//	u64     seq
//	u64     maxRelSeq
//	u32     pending count, then per fix: f64 x, f64 y, f64 t, u64 seq
//	u8      hasHeld; when 1: f64 x, f64 y, f64 t (first fix),
//	        f64 sumX, f64 sumY, u64 heldN
//	u8      hasLast; when 1: f64 x, f64 y, f64 t
//	u64 ×7  report (pushed, emitted, nonFinite, late, reordered,
//	        duplicates, outliers; two's-complement int64)
//
// Floats are raw IEEE-754 bits, so NaN payloads round-trip exactly (the
// validity checks happen in ResumeRepairer, not here).

import (
	"encoding/binary"
	"fmt"
	"math"

	"rlts/internal/geo"
)

// RepairStateVersion is the current repair-state codec version.
const RepairStateVersion = 1

// maxRepairPending bounds the decoded pending count so a corrupt length
// field cannot drive allocation. It comfortably exceeds any plausible
// reordering window.
const maxRepairPending = 1 << 20

// AppendBinary appends the state's binary encoding to b.
func (st *RepairState) AppendBinary(b []byte) []byte {
	le := binary.LittleEndian
	b = append(b, RepairStateVersion)
	b = le.AppendUint64(b, uint64(st.Cfg.Window))
	b = le.AppendUint64(b, math.Float64bits(st.Cfg.MaxSpeed))
	b = le.AppendUint64(b, math.Float64bits(st.Cfg.DupRadius))
	b = append(b, b2u(st.Cfg.AverageDups))
	b = le.AppendUint64(b, st.Seq)
	b = le.AppendUint64(b, st.MaxRelSeq)
	b = le.AppendUint32(b, uint32(len(st.Pending)))
	for _, f := range st.Pending {
		b = appendPoint(b, f.P)
		b = le.AppendUint64(b, f.Seq)
	}
	b = append(b, b2u(st.HasHeld))
	if st.HasHeld {
		b = appendPoint(b, st.HeldFirst)
		b = le.AppendUint64(b, math.Float64bits(st.HeldSumX))
		b = le.AppendUint64(b, math.Float64bits(st.HeldSumY))
		b = le.AppendUint64(b, uint64(st.HeldN))
	}
	b = append(b, b2u(st.HasLast))
	if st.HasLast {
		b = appendPoint(b, st.Last)
	}
	for _, v := range st.Report.fields() {
		b = le.AppendUint64(b, uint64(v))
	}
	return b
}

// DecodeRepairState parses a blob produced by AppendBinary. It is total:
// truncated, trailing-garbage or otherwise malformed input yields an
// error, never a panic. Semantic validity (heap property, balanced
// report, finite gate) is ResumeRepairer's job.
func DecodeRepairState(data []byte) (*RepairState, error) {
	d := &stateReader{buf: data}
	if v := d.u8(); d.err == nil && v != RepairStateVersion {
		return nil, fmt.Errorf("traj: repair state version %d, want %d", v, RepairStateVersion)
	}
	st := &RepairState{}
	st.Cfg.Window = int(int64(d.u64()))
	st.Cfg.MaxSpeed = d.f64()
	st.Cfg.DupRadius = d.f64()
	st.Cfg.AverageDups = d.bool()
	st.Seq = d.u64()
	st.MaxRelSeq = d.u64()
	n := int(d.u32())
	if d.err == nil && n > maxRepairPending {
		return nil, fmt.Errorf("traj: repair state declares %d pending fixes (max %d)", n, maxRepairPending)
	}
	if d.err == nil && n > 0 {
		st.Pending = make([]PendingFixState, n)
		for i := range st.Pending {
			st.Pending[i].P = d.point()
			st.Pending[i].Seq = d.u64()
		}
	}
	st.HasHeld = d.bool()
	if st.HasHeld {
		st.HeldFirst = d.point()
		st.HeldSumX = d.f64()
		st.HeldSumY = d.f64()
		st.HeldN = int(int64(d.u64()))
	}
	st.HasLast = d.bool()
	if st.HasLast {
		st.Last = d.point()
	}
	for _, f := range st.Report.fieldPtrs() {
		*f = int(int64(d.u64()))
	}
	if d.err != nil {
		return nil, fmt.Errorf("traj: decode repair state: %w", d.err)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("traj: repair state has %d trailing bytes", len(data)-d.off)
	}
	return st, nil
}

// fields returns the report counters in codec order.
func (r RepairReport) fields() [7]int {
	return [7]int{r.Pushed, r.Emitted, r.NonFinite, r.Late, r.Reordered, r.Duplicates, r.Outliers}
}

// fieldPtrs returns pointers to the report counters in codec order.
func (r *RepairReport) fieldPtrs() [7]*int {
	return [7]*int{&r.Pushed, &r.Emitted, &r.NonFinite, &r.Late, &r.Reordered, &r.Duplicates, &r.Outliers}
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func appendPoint(b []byte, p geo.Point) []byte {
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.X))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Y))
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(p.T))
}

// stateReader is a bounds-checked little-endian cursor: reads past the
// end set err and return zeros.
type stateReader struct {
	buf []byte
	off int
	err error
}

func (d *stateReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at byte %d (need %d of %d)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *stateReader) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *stateReader) bool() bool { return d.u8() != 0 }

func (d *stateReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *stateReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *stateReader) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *stateReader) point() geo.Point {
	return geo.Point{X: d.f64(), Y: d.f64(), T: d.f64()}
}
