package traj

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestFromPoints(t *testing.T) {
	got, err := FromPoints([][3]float64{{0, 0, 0}, {1, 2, 1}, {3, 4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got[1].X != 1 || got[1].Y != 2 || got[1].T != 1 {
		t.Fatalf("unexpected trajectory: %v", got)
	}

	cases := []struct {
		name   string
		points [][3]float64
		want   error
	}{
		{"empty", nil, ErrTooShort},
		{"single point", [][3]float64{{0, 0, 0}}, ErrTooShort},
		{"NaN x", [][3]float64{{math.NaN(), 0, 0}, {1, 1, 1}}, ErrNotFinite},
		{"Inf y", [][3]float64{{0, 0, 0}, {1, math.Inf(1), 1}}, ErrNotFinite},
		{"NaN t", [][3]float64{{0, 0, math.NaN()}, {1, 1, 1}}, ErrNotFinite},
		{"backwards time", [][3]float64{{0, 0, 5}, {1, 1, 1}}, ErrNotOrdered},
		{"duplicate time", [][3]float64{{0, 0, 1}, {1, 1, 1}}, ErrNotOrdered},
	}
	for _, tc := range cases {
		if _, err := FromPoints(tc.points); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadPLTRejectsNonFinite(t *testing.T) {
	header := "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n0,2,255,My Track,0,0,2,8421376\n0\n"
	// Inf parses fine in strconv but is not a usable coordinate.
	for _, line := range []string{
		"Inf,116.3,0,492,39745.10,2008-10-24,02:24:00\n",
		"39.9,-Inf,0,492,39745.10,2008-10-24,02:24:00\n",
		"NaN,116.3,0,492,39745.10,2008-10-24,02:24:00\n",
		"39.9,116.3,0,492,Inf,2008-10-24,02:24:00\n",
	} {
		if _, err := ReadPLT(strings.NewReader(header + line)); !errors.Is(err, ErrNotFinite) {
			t.Errorf("line %q: err = %v, want ErrNotFinite", strings.TrimSpace(line), err)
		}
	}
}

// FuzzFromPoints: the external-data constructor must never panic and must
// only produce trajectories its own Validate accepts.
func FuzzFromPoints(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 1.0, 1.0)
	f.Add(math.NaN(), 0.0, 0.0, 1.0, 1.0, 1.0)
	f.Add(0.0, 0.0, 5.0, 1.0, 1.0, 1.0)
	f.Add(math.Inf(1), math.Inf(-1), 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, x1, y1, t1, x2, y2, t2 float64) {
		tr, err := FromPoints([][3]float64{{x1, y1, t1}, {x2, y2, t2}})
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("FromPoints accepted an invalid trajectory: %v", err)
		}
	})
}
