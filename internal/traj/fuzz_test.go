package traj

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics and that everything it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("traj_id,x,y,t\n0,1,2,3\n0,2,3,4\n")
	f.Add("0,1,2,3\n1,9,9,9\n1,10,10,10\n")
	f.Add("0,1e300,-1e300,0\n0,0,0,1\n")
	f.Add(",,,\n")
	f.Add("0,NaN,0,0\n")
	f.Fuzz(func(t *testing.T, in string) {
		ts, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, tr := range ts {
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted invalid trajectory: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ts); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(ts) {
			t.Fatalf("round trip changed count: %d -> %d", len(ts), len(back))
		}
	})
}

// FuzzReadPLT checks the Geolife reader never panics and only yields
// valid trajectories.
func FuzzReadPLT(f *testing.F) {
	header := "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n0,2,255,My Track,0,0,2,8421376\n0\n"
	f.Add(header + "39.9,116.3,0,492,39745.10,2008-10-24,02:24:00\n")
	f.Add(header)
	f.Add("short")
	f.Add(header + "1e309,0,0,0,0,x,y\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadPLT(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trajectory: %v", err)
		}
	})
}
