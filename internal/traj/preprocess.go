package traj

import "fmt"

// Preprocessing utilities for raw GPS data. Real trajectory datasets
// (including the paper's three) are cleaned before simplification
// experiments: recordings are split where the sensor went silent, runts
// are discarded, and oversampled stretches are thinned.

// SplitAtGaps cuts t wherever consecutive points are more than maxGap
// seconds apart and returns the resulting sub-trajectories in order.
// A non-positive maxGap returns the trajectory unsplit. Every returned
// segment owns its backing array: appending to one can never clobber a
// neighbor or the input.
func SplitAtGaps(t Trajectory, maxGap float64) []Trajectory {
	if maxGap <= 0 || len(t) == 0 {
		return []Trajectory{t.Clone()}
	}
	var out []Trajectory
	start := 0
	for i := 1; i < len(t); i++ {
		if t[i].T-t[i-1].T > maxGap {
			out = append(out, t[start:i].Clone())
			start = i
		}
	}
	return append(out, t[start:].Clone())
}

// FilterShort drops trajectories with fewer than minPoints points.
func FilterShort(ts []Trajectory, minPoints int) []Trajectory {
	out := ts[:0:0]
	for _, t := range ts {
		if len(t) >= minPoints {
			out = append(out, t)
		}
	}
	return out
}

// Downsample keeps at most one point per minGap seconds (always keeping
// the first and last), thinning oversampled stretches. It returns a new
// trajectory; the input is unchanged. It is validity-preserving: on a
// valid trajectory the output is valid too, and on dirty input it never
// manufactures a defect the input did not have — in particular the
// unconditionally-kept last point evicts any kept interior point it
// fails to advance past, instead of being appended behind it.
func Downsample(t Trajectory, minGap float64) Trajectory {
	if len(t) <= 2 || minGap <= 0 {
		return t.Clone()
	}
	out := Trajectory{t[0]}
	last := t[0].T
	for i := 1; i < len(t)-1; i++ {
		// A NaN timestamp fails this comparison, so non-finite-gap
		// interior points are dropped rather than kept.
		if t[i].T-last >= minGap {
			out = append(out, t[i])
			last = t[i].T
		}
	}
	tail := t[len(t)-1]
	for len(out) > 1 && !(out[len(out)-1].T < tail.T) {
		out = out[:len(out)-1]
	}
	return append(out, tail)
}

// Clean is the standard pipeline: split at gaps, drop runts.
// It validates every output trajectory and reports the first problem.
// minPoints is floored at 2: anything shorter cannot be simplified, so
// letting it through would hand downstream code a trajectory that fails
// the FromPoints contract.
func Clean(ts []Trajectory, maxGap float64, minPoints int) ([]Trajectory, error) {
	if minPoints < 2 {
		minPoints = 2
	}
	var out []Trajectory
	for i, t := range ts {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("traj: input %d: %w", i, err)
		}
		out = append(out, SplitAtGaps(t, maxGap)...)
	}
	return FilterShort(out, minPoints), nil
}
