// Package traj defines the Trajectory type shared by the whole system,
// together with validation, summary statistics (Table I style), and CSV
// input/output.
package traj

import (
	"errors"
	"fmt"

	"rlts/internal/geo"
)

// Trajectory is a time-ordered sequence of spatio-temporal points.
// The zero value is an empty trajectory.
type Trajectory []geo.Point

// ErrTooShort is returned when an operation needs more points than the
// trajectory has (e.g. simplification needs at least two endpoints).
var ErrTooShort = errors.New("traj: trajectory too short")

// ErrNotOrdered is returned by Validate when timestamps are not strictly
// increasing.
var ErrNotOrdered = errors.New("traj: timestamps not strictly increasing")

// ErrDuplicateTime is the duplicate-timestamp case of ErrNotOrdered (it
// wraps it, so errors.Is(err, ErrNotOrdered) still holds): two samples
// claim the same instant, as re-sent fixes do, which ingest can classify
// separately from genuinely regressed clocks.
var ErrDuplicateTime = fmt.Errorf("%w: duplicate timestamp", ErrNotOrdered)

// ErrNotFinite is returned by Validate when a point contains NaN or Inf.
var ErrNotFinite = errors.New("traj: non-finite coordinate")

// FromPoints builds a validated trajectory from raw (x, y, t) triples —
// the constructor for externally-supplied data (HTTP payloads, decoded
// files). It rejects NaN/Inf coordinates and non-increasing timestamps
// with a descriptive error instead of letting garbage propagate into the
// error measures, and requires at least two points (nothing shorter can be
// simplified).
func FromPoints(points [][3]float64) (Trajectory, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 points, got %d", ErrTooShort, len(points))
	}
	t := make(Trajectory, len(points))
	for i, p := range points {
		t[i].X, t[i].Y, t[i].T = p[0], p[1], p[2]
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of points.
func (t Trajectory) Len() int { return len(t) }

// Duration returns the time span covered by the trajectory, in seconds.
func (t Trajectory) Duration() float64 {
	if len(t) < 2 {
		return 0
	}
	return t[len(t)-1].T - t[0].T
}

// PathLength returns the total Euclidean length along the trajectory.
func (t Trajectory) PathLength() float64 {
	var sum float64
	for i := 1; i < len(t); i++ {
		sum += geo.Dist(t[i-1], t[i])
	}
	return sum
}

// Sub returns the subtrajectory T[i:j] inclusive of both endpoints,
// i.e. <p_i, ..., p_j> in the paper's notation (0-based here).
// It shares backing storage with t.
func (t Trajectory) Sub(i, j int) Trajectory {
	if i < 0 || j >= len(t) || i > j {
		panic(fmt.Sprintf("traj: Sub(%d, %d) out of range for length %d", i, j, len(t)))
	}
	return t[i : j+1]
}

// Clone returns a deep copy of the trajectory.
func (t Trajectory) Clone() Trajectory {
	c := make(Trajectory, len(t))
	copy(c, t)
	return c
}

// Segment returns the directed segment from point i to point j.
func (t Trajectory) Segment(i, j int) geo.Segment {
	return geo.Seg(t[i], t[j])
}

// Validate checks that the trajectory is usable by the simplification
// algorithms: all points finite and timestamps strictly increasing.
func (t Trajectory) Validate() error {
	for i, p := range t {
		if !p.IsFinite() {
			return fmt.Errorf("%w: point %d = %v", ErrNotFinite, i, p)
		}
		if i > 0 && p.T <= t[i-1].T {
			base := ErrNotOrdered
			if p.T == t[i-1].T {
				base = ErrDuplicateTime
			}
			return fmt.Errorf("%w: point %d (t=%v) after point %d (t=%v)",
				base, i, p.T, i-1, t[i-1].T)
		}
	}
	return nil
}

// Pick returns the simplified trajectory consisting of the points of t at
// the given (strictly increasing, 0-based) indices. It panics if the
// indices are out of range or not strictly increasing: callers construct
// index sets programmatically and a violation is a bug, not bad input.
func (t Trajectory) Pick(indices []int) Trajectory {
	out := make(Trajectory, 0, len(indices))
	prev := -1
	for _, ix := range indices {
		if ix <= prev || ix >= len(t) {
			panic(fmt.Sprintf("traj: Pick index %d invalid (prev %d, len %d)", ix, prev, len(t)))
		}
		out = append(out, t[ix])
		prev = ix
	}
	return out
}

// Equal reports whether two trajectories are identical point for point.
func (t Trajectory) Equal(o Trajectory) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// IsSimplificationOf reports whether t is a valid simplified trajectory of
// orig: a subsequence of orig that keeps orig's first and last points.
func (t Trajectory) IsSimplificationOf(orig Trajectory) bool {
	if len(orig) < 2 || len(t) < 2 {
		return false
	}
	if !t[0].Equal(orig[0]) || !t[len(t)-1].Equal(orig[len(orig)-1]) {
		return false
	}
	j := 0
	for _, p := range t {
		for j < len(orig) && !orig[j].Equal(p) {
			j++
		}
		if j == len(orig) {
			return false
		}
		j++
	}
	return true
}
