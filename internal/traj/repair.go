package traj

// Repair is the dirty-GPS ingest stage: production position feeds arrive
// out-of-order, duplicated, noise-spiked and occasionally non-finite,
// all of which the strict FromPoints/Validate contract rejects. The
// Repairer turns such a raw fix stream into a stream that always
// satisfies that contract, deterministically, and accounts for every
// fix it altered or dropped in a per-defect RepairReport.
//
// The pipeline has three stages, applied in order to every pushed fix:
//
//  1. finite filter — NaN/Inf coordinates or timestamps are dropped
//     (counted NonFinite). Nothing downstream ever sees a non-finite
//     value, which is what makes the later stages total.
//  2. bounded reordering window — fixes sit in a min-heap (by timestamp,
//     arrival order breaking ties) of at most Window entries; a fix is
//     released only when the window is full, so any fix delayed by at
//     most Window-1 positions is re-sorted into place (counted
//     Reordered). A fix older than one already released is beyond what
//     the window can fix and is dropped (counted Late).
//  3. dedup + speed gate — released fixes with equal timestamps collapse
//     to one point (keep-first, or position-averaged with AverageDups;
//     counted Duplicates), except that when the speed gate is enabled a
//     duplicate displaced more than DupRadius from the group's first fix
//     is a zero-duration teleport, not a re-sent fix, and is dropped as
//     an outlier. Finally the gate drops any point whose implied speed
//     from the previously emitted point exceeds MaxSpeed (counted
//     Outliers). The gate self-heals after a genuine relocation: the
//     implied speed from the last emitted point shrinks as time
//     advances, so a sustained jump is accepted once enough time has
//     passed — only isolated spikes stay filtered.
//
// Clean input passes through bit-identically: a stream of finite,
// strictly-increasing fixes within the speed gate is emitted unchanged,
// point for point (proven by the internal/check repair pillar).
//
// The Repairer is streaming and resumable: ExportState captures the
// window contents, the pending duplicate group, the gate anchor and the
// report, and ResumeRepairer continues bit-identically — the HTTP
// session layer carries this through its spill codec.

import (
	"fmt"
	"math"

	"rlts/internal/geo"
)

// DefaultRepairWindow is the reordering window used when
// RepairConfig.Window is zero: deep enough for the transposition bursts
// real receivers produce, shallow enough that a snapshot lags the sensor
// by at most 16 fixes.
const DefaultRepairWindow = 16

// RepairConfig tunes the repair pipeline. The zero value enables the
// default reordering window and dedup with no speed gate.
type RepairConfig struct {
	// Window bounds the reordering buffer: a fix delayed by fewer than
	// Window positions is re-sorted into place; later fixes are dropped
	// as unrepairable. 0 means DefaultRepairWindow; negative disables
	// reordering (fixes flow straight through, late ones drop).
	Window int
	// MaxSpeed enables the teleport/outlier gate: a point whose implied
	// speed from the previously emitted point exceeds this (coordinate
	// units per second) is dropped. <= 0 disables the gate.
	MaxSpeed float64
	// DupRadius separates re-sent fixes from zero-duration teleports
	// when the gate is enabled: a duplicate-timestamp fix displaced
	// farther than this from its group's first fix is an outlier. 0
	// means MaxSpeed x 1s (the displacement a legitimate fix could
	// accumulate in one second). Ignored while the gate is disabled.
	DupRadius float64
	// AverageDups merges duplicate-timestamp fixes by averaging their
	// positions instead of keeping the first — re-sent fixes usually
	// differ only by receiver noise, and the mean cancels some of it.
	AverageDups bool
}

// window returns the effective reordering window size.
func (c RepairConfig) window() int {
	if c.Window == 0 {
		return DefaultRepairWindow
	}
	if c.Window < 0 {
		return 0
	}
	return c.Window
}

// dupRadius returns the effective teleport radius for duplicates.
func (c RepairConfig) dupRadius() float64 {
	if c.DupRadius > 0 {
		return c.DupRadius
	}
	return c.MaxSpeed
}

// RepairReport accounts for every fix the pipeline touched, by defect
// class. Pushed == Emitted + NonFinite + Late + Duplicates + Outliers +
// Pending (fixes still sitting in the window or the duplicate group).
type RepairReport struct {
	Pushed     int // raw fixes pushed
	Emitted    int // points emitted downstream
	NonFinite  int // dropped: NaN/Inf coordinate or timestamp
	Late       int // dropped: older than an already-released fix (beyond the window)
	Reordered  int // emitted out of arrival order (the window re-sorted them)
	Duplicates int // duplicate-timestamp fixes merged into their group's point
	Outliers   int // dropped by the speed gate (teleports, zero-duration included)
}

// Dropped returns the total fixes the pipeline discarded.
func (r RepairReport) Dropped() int {
	return r.NonFinite + r.Late + r.Duplicates + r.Outliers
}

// Add returns the per-defect sum r + o, for aggregating reports across
// trajectories.
func (r RepairReport) Add(o RepairReport) RepairReport {
	return RepairReport{
		Pushed:     r.Pushed + o.Pushed,
		Emitted:    r.Emitted + o.Emitted,
		NonFinite:  r.NonFinite + o.NonFinite,
		Late:       r.Late + o.Late,
		Reordered:  r.Reordered + o.Reordered,
		Duplicates: r.Duplicates + o.Duplicates,
		Outliers:   r.Outliers + o.Outliers,
	}
}

// Sub returns the per-defect difference r - o: the deltas between two
// cumulative reports (the HTTP layer turns these into counter
// increments).
func (r RepairReport) Sub(o RepairReport) RepairReport {
	return RepairReport{
		Pushed:     r.Pushed - o.Pushed,
		Emitted:    r.Emitted - o.Emitted,
		NonFinite:  r.NonFinite - o.NonFinite,
		Late:       r.Late - o.Late,
		Reordered:  r.Reordered - o.Reordered,
		Duplicates: r.Duplicates - o.Duplicates,
		Outliers:   r.Outliers - o.Outliers,
	}
}

// pendingFix is one fix waiting in the reordering window. seq is the
// arrival counter: it breaks timestamp ties so two fixes with equal
// timestamps release in arrival order (keep-first dedup depends on it),
// and it detects reordering at release time.
type pendingFix struct {
	P   geo.Point
	Seq uint64
}

// Repairer is the streaming repair pipeline. It is not safe for
// concurrent use; the HTTP session layer serializes it under the
// session lock like the streamer it feeds.
type Repairer struct {
	cfg RepairConfig

	heap []pendingFix // min-heap by (T, Seq)
	seq  uint64       // arrival counter
	// maxRelSeq is the largest arrival seq released from the window so
	// far; a release with a smaller seq was overtaken, i.e. reordered.
	maxRelSeq uint64

	// The pending duplicate group: fixes released from the window whose
	// timestamp equals heldT are merged here until a later timestamp
	// arrives and flushes the group through the gate.
	hasHeld    bool
	heldFirst  geo.Point // first-arrived fix of the group (keep-first, DupRadius anchor)
	heldSumX   float64   // position sums for AverageDups
	heldSumY   float64
	heldN      int
	// The gate anchor: the last point emitted downstream.
	hasLast bool
	last    geo.Point

	rep  RepairReport
	emit []geo.Point // scratch, reused across Push calls
}

// NewRepairer creates a streaming repairer.
func NewRepairer(cfg RepairConfig) *Repairer {
	return &Repairer{cfg: cfg}
}

// Config returns the repairer's configuration.
func (r *Repairer) Config() RepairConfig { return r.cfg }

// Report returns the cumulative per-defect accounting.
func (r *Repairer) Report() RepairReport { return r.rep }

// Pending returns the number of fixes buffered but not yet emitted (the
// reordering window plus the open duplicate group).
func (r *Repairer) Pending() int {
	n := len(r.heap)
	if r.hasHeld {
		n++
	}
	return n
}

// Push feeds the next raw fix and returns the points it released
// downstream, in strictly increasing timestamp order (possibly none:
// the window may absorb the fix entirely). The returned slice is scratch
// owned by the repairer and valid only until the next Push or Flush.
func (r *Repairer) Push(p geo.Point) []geo.Point {
	r.emit = r.emit[:0]
	r.rep.Pushed++
	if !p.IsFinite() {
		r.rep.NonFinite++
		return r.emit
	}
	r.heapPush(pendingFix{P: p, Seq: r.seq})
	r.seq++
	for len(r.heap) > r.cfg.window() {
		r.release(r.heapPop())
	}
	return r.emit
}

// Flush drains the window and the open duplicate group — the end of the
// stream. The returned slice is scratch like Push's. The repairer
// remains usable: fixes pushed afterwards continue the same stream
// (still gated against the last emitted point), though anything older
// than the flushed tail is now late by construction.
func (r *Repairer) Flush() []geo.Point {
	r.emit = r.emit[:0]
	for len(r.heap) > 0 {
		r.release(r.heapPop())
	}
	r.flushHeld()
	return r.emit
}

// release routes one fix popped from the window through dedup and the
// gate.
func (r *Repairer) release(f pendingFix) {
	if f.Seq < r.maxRelSeq {
		r.rep.Reordered++
	} else {
		r.maxRelSeq = f.Seq
	}
	// Ordering reference: the open group's timestamp if one exists, else
	// the last emitted point. The heap guarantees order within the
	// window; a fix can still be late relative to what already left it.
	switch {
	case r.hasHeld:
		if f.P.T < r.heldT() {
			r.rep.Late++
			return
		}
		if f.P.T == r.heldT() {
			r.joinHeld(f.P)
			return
		}
	case r.hasLast && f.P.T <= r.last.T:
		// A fix at exactly the gate anchor's timestamp is a duplicate of
		// an already-emitted point and cannot be merged retroactively.
		if f.P.T == r.last.T {
			r.rep.Duplicates++
		} else {
			r.rep.Late++
		}
		return
	}
	r.flushHeld()
	r.hasHeld = true
	r.heldFirst = f.P
	r.heldSumX, r.heldSumY = f.P.X, f.P.Y
	r.heldN = 1
}

func (r *Repairer) heldT() float64 { return r.heldFirst.T }

// joinHeld merges a duplicate-timestamp fix into the open group — or
// classifies it as a zero-duration teleport when the gate is on and the
// fix is displaced beyond DupRadius from the group's first fix.
func (r *Repairer) joinHeld(p geo.Point) {
	if r.cfg.MaxSpeed > 0 && geo.Dist(p, r.heldFirst) > r.cfg.dupRadius() {
		r.rep.Outliers++
		return
	}
	r.rep.Duplicates++
	if r.cfg.AverageDups {
		r.heldSumX += p.X
		r.heldSumY += p.Y
		r.heldN++
	}
}

// flushHeld closes the open duplicate group and sends its merged point
// through the speed gate.
func (r *Repairer) flushHeld() {
	if !r.hasHeld {
		return
	}
	p := r.heldFirst
	if r.cfg.AverageDups && r.heldN > 1 {
		p.X = r.heldSumX / float64(r.heldN)
		p.Y = r.heldSumY / float64(r.heldN)
	}
	r.hasHeld = false
	r.heldN = 0
	if r.cfg.MaxSpeed > 0 && r.hasLast {
		// dt > 0 by construction (dedup consumed equal timestamps), so
		// the division is total; an overflowed distance compares as +Inf
		// and gates like any other excessive speed.
		if speed := geo.Dist(p, r.last) / (p.T - r.last.T); speed > r.cfg.MaxSpeed {
			r.rep.Outliers++
			return
		}
	}
	r.rep.Emitted++
	r.last, r.hasLast = p, true
	r.emit = append(r.emit, p)
}

// Min-heap on (T, Seq). Hand-rolled so the pending array is exportable
// verbatim (heap layout is part of the resumable state, exactly like
// buffer.Buffer's value heap).

func (r *Repairer) heapLess(i, j int) bool {
	if r.heap[i].P.T != r.heap[j].P.T {
		return r.heap[i].P.T < r.heap[j].P.T
	}
	return r.heap[i].Seq < r.heap[j].Seq
}

func (r *Repairer) heapPush(f pendingFix) {
	r.heap = append(r.heap, f)
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !r.heapLess(i, parent) {
			break
		}
		r.heap[i], r.heap[parent] = r.heap[parent], r.heap[i]
		i = parent
	}
}

func (r *Repairer) heapPop() pendingFix {
	top := r.heap[0]
	n := len(r.heap) - 1
	r.heap[0] = r.heap[n]
	r.heap = r.heap[:n]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < n && r.heapLess(l, small) {
			small = l
		}
		if rr < n && r.heapLess(rr, small) {
			small = rr
		}
		if small == i {
			break
		}
		r.heap[i], r.heap[small] = r.heap[small], r.heap[i]
		i = small
	}
	return top
}

// Repair runs the whole pipeline over a raw fix list — the one-shot form
// the batch endpoints use. The returned trajectory always satisfies the
// strict Validate contract; when repair leaves fewer than two points the
// error wraps ErrTooShort and the report still describes what happened.
func Repair(points [][3]float64, cfg RepairConfig) (Trajectory, RepairReport, error) {
	rp := NewRepairer(cfg)
	out := make(Trajectory, 0, len(points))
	for _, p := range points {
		out = append(out, rp.Push(geo.Pt(p[0], p[1], p[2]))...)
	}
	out = append(out, rp.Flush()...)
	rep := rp.Report()
	if len(out) < 2 {
		return nil, rep, fmt.Errorf("%w: repair left %d of %d points (%d non-finite, %d late, %d duplicate, %d outlier)",
			ErrTooShort, len(out), len(points), rep.NonFinite, rep.Late, rep.Duplicates, rep.Outliers)
	}
	return out, rep, nil
}

// RepairState is the complete resumable state of a Repairer: the
// configuration, the window contents in exact heap layout, the open
// duplicate group, the gate anchor and the cumulative report.
// ResumeRepairer continues bit-identically from it; the HTTP session
// layer serializes it as a versioned extension of its spill envelope.
type RepairState struct {
	Cfg RepairConfig

	Seq       uint64
	MaxRelSeq uint64

	Pending []pendingFixState // heap array, verbatim layout

	HasHeld   bool
	HeldFirst geo.Point
	HeldSumX  float64
	HeldSumY  float64
	HeldN     int

	HasLast bool
	Last    geo.Point

	Report RepairReport
}

// pendingFixState mirrors pendingFix for export (exported fields).
type pendingFixState struct {
	P   geo.Point
	Seq uint64
}

// PendingFixState is the exported alias used by serializers.
type PendingFixState = pendingFixState

// ExportState captures the repairer's resumable state. The pending
// window is exported in its exact heap layout so a resumed repairer
// releases fixes in the identical order, timestamp ties included.
func (r *Repairer) ExportState() *RepairState {
	st := &RepairState{
		Cfg:       r.cfg,
		Seq:       r.seq,
		MaxRelSeq: r.maxRelSeq,
		HasHeld:   r.hasHeld,
		HeldFirst: r.heldFirst,
		HeldSumX:  r.heldSumX,
		HeldSumY:  r.heldSumY,
		HeldN:     r.heldN,
		HasLast:   r.hasLast,
		Last:      r.last,
		Report:    r.rep,
	}
	if len(r.heap) > 0 {
		st.Pending = make([]pendingFixState, len(r.heap))
		for i, f := range r.heap {
			st.Pending[i] = pendingFixState{P: f.P, Seq: f.Seq}
		}
	}
	return st
}

// ResumeRepairer rebuilds a repairer from an exported state, validating
// it in full first: a corrupted state yields an error, never a repairer
// that violates the output contract later.
func ResumeRepairer(st *RepairState) (*Repairer, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	r := NewRepairer(st.Cfg)
	r.seq = st.Seq
	r.maxRelSeq = st.MaxRelSeq
	r.hasHeld = st.HasHeld
	r.heldFirst = st.HeldFirst
	r.heldSumX, r.heldSumY = st.HeldSumX, st.HeldSumY
	r.heldN = st.HeldN
	r.hasLast = st.HasLast
	r.last = st.Last
	r.rep = st.Report
	r.heap = make([]pendingFix, len(st.Pending))
	for i, f := range st.Pending {
		r.heap[i] = pendingFix{P: f.P, Seq: f.Seq}
	}
	return r, nil
}

// validate checks the state's internal consistency: finite points, a
// well-formed heap, sequence numbers below the arrival counter, a
// plausible duplicate group and non-negative accounting.
func (st *RepairState) validate() error {
	if math.IsNaN(st.Cfg.MaxSpeed) || math.IsInf(st.Cfg.MaxSpeed, 0) ||
		math.IsNaN(st.Cfg.DupRadius) || math.IsInf(st.Cfg.DupRadius, 0) || st.Cfg.DupRadius < 0 {
		return fmt.Errorf("traj: repair state: non-finite gate configuration")
	}
	if len(st.Pending) > st.Cfg.window() {
		return fmt.Errorf("traj: repair state: %d pending fixes exceed window %d",
			len(st.Pending), st.Cfg.window())
	}
	rep := st.Report
	if rep.Pushed < 0 || rep.Emitted < 0 || rep.NonFinite < 0 || rep.Late < 0 ||
		rep.Reordered < 0 || rep.Duplicates < 0 || rep.Outliers < 0 {
		return fmt.Errorf("traj: repair state: negative report counter")
	}
	pending := len(st.Pending)
	if st.HasHeld {
		pending++
	}
	if rep.Emitted+rep.Dropped()+pending != rep.Pushed {
		return fmt.Errorf("traj: repair state: report does not balance (%d pushed vs %d accounted)",
			rep.Pushed, rep.Emitted+rep.Dropped()+pending)
	}
	seen := make(map[uint64]bool, len(st.Pending))
	for i, f := range st.Pending {
		if !f.P.IsFinite() {
			return fmt.Errorf("traj: repair state: non-finite pending fix at %d", i)
		}
		if f.Seq >= st.Seq {
			return fmt.Errorf("traj: repair state: pending seq %d not below arrival counter %d", f.Seq, st.Seq)
		}
		if seen[f.Seq] {
			return fmt.Errorf("traj: repair state: duplicate pending seq %d", f.Seq)
		}
		seen[f.Seq] = true
		if i > 0 {
			parent := (i - 1) / 2
			pp, cc := st.Pending[parent], st.Pending[i]
			if cc.P.T < pp.P.T || (cc.P.T == pp.P.T && cc.Seq < pp.Seq) {
				return fmt.Errorf("traj: repair state: heap property violated at %d", i)
			}
		}
	}
	if st.HasHeld {
		if !st.HeldFirst.IsFinite() ||
			math.IsNaN(st.HeldSumX) || math.IsInf(st.HeldSumX, 0) ||
			math.IsNaN(st.HeldSumY) || math.IsInf(st.HeldSumY, 0) {
			return fmt.Errorf("traj: repair state: non-finite duplicate group")
		}
		if st.HeldN < 1 {
			return fmt.Errorf("traj: repair state: duplicate group with %d members", st.HeldN)
		}
		if !st.Cfg.AverageDups && st.HeldN > 1 {
			return fmt.Errorf("traj: repair state: keep-first group claims %d members", st.HeldN)
		}
		if st.HasLast && st.HeldFirst.T <= st.Last.T {
			return fmt.Errorf("traj: repair state: duplicate group does not advance past the gate anchor")
		}
	} else if st.HeldN != 0 {
		return fmt.Errorf("traj: repair state: closed duplicate group with %d members", st.HeldN)
	}
	if st.HasLast && !st.Last.IsFinite() {
		return fmt.Errorf("traj: repair state: non-finite gate anchor")
	}
	return nil
}
