package traj

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rlts/internal/geo"
)

// The CSV format used by the cmd/ tools is one point per record:
//
//	traj_id,x,y,t
//
// Records must be grouped by traj_id (all points of a trajectory
// contiguous) and time-ordered within a trajectory. A header line is
// detected and skipped if the second field does not parse as a number.

// WriteCSV writes trajectories in the traj_id,x,y,t format.
// Trajectory ids are their indices in ts.
func WriteCSV(w io.Writer, ts []Trajectory) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("traj_id,x,y,t\n"); err != nil {
		return err
	}
	for id, t := range ts {
		for _, p := range t {
			if _, err := fmt.Fprintf(bw, "%d,%g,%g,%g\n", id, p.X, p.Y, p.T); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV reads trajectories in the traj_id,x,y,t format. It returns the
// trajectories in first-appearance order of their ids.
func ReadCSV(r io.Reader) ([]Trajectory, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = 4

	var (
		out     []Trajectory
		index   = map[string]int{}
		lineNum int
	)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traj: csv read: %w", err)
		}
		lineNum++
		if lineNum == 1 && looksLikeHeader(rec) {
			continue
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("traj: line %d: bad x %q: %w", lineNum, rec[1], err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(rec[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("traj: line %d: bad y %q: %w", lineNum, rec[2], err)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(rec[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("traj: line %d: bad t %q: %w", lineNum, rec[3], err)
		}
		id := strings.TrimSpace(rec[0])
		ix, ok := index[id]
		if !ok {
			ix = len(out)
			index[id] = ix
			out = append(out, nil)
		}
		out[ix] = append(out[ix], geo.Pt(x, y, t))
	}
	for i, t := range out {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("traj: trajectory %d: %w", i, err)
		}
	}
	return out, nil
}

func looksLikeHeader(rec []string) bool {
	// A header has no numeric fields at all; a data record always has
	// numeric x and t. Requiring both to be non-numeric avoids silently
	// swallowing a malformed first data record as a "header".
	_, errX := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
	_, errT := strconv.ParseFloat(strings.TrimSpace(rec[3]), 64)
	return errX != nil && errT != nil
}
