package traj

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rlts/internal/geo"
)

// ReadPLT reads a trajectory in the Geolife PLT format, so the real
// dataset can be plugged into this reproduction directly:
//
//	Geolife trajectory
//	WGS 84
//	Altitude is in Feet
//	Reserved 3
//	0,2,255,My Track,0,0,2,8421376
//	0
//	39.906631,116.385564,0,492,39745.1201851852,2008-10-24,02:53:04
//	...
//
// Records are latitude,longitude,0,altitude,timestamp-in-days,date,time.
// Latitude/longitude are projected to local meters with an equirectangular
// projection centered on the first point (adequate at city scale), and the
// fractional-day timestamp becomes seconds. Points with non-increasing
// timestamps (duplicate fixes, a known Geolife artifact) are dropped.
func ReadPLT(r io.Reader) (Trajectory, error) {
	const headerLines = 6
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for i := 0; i < headerLines; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("traj: plt header: %w", err)
			}
			return nil, fmt.Errorf("traj: plt file shorter than its %d-line header", headerLines)
		}
	}
	var (
		out             Trajectory
		lat0, lon0      float64
		haveOrigin      bool
		lineNum         = headerLines
		droppedOutOrder int
	)
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 5 {
			return nil, fmt.Errorf("traj: plt line %d: %d fields, want >= 5", lineNum, len(fields))
		}
		lat, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("traj: plt line %d: latitude: %w", lineNum, err)
		}
		lon, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("traj: plt line %d: longitude: %w", lineNum, err)
		}
		days, err := strconv.ParseFloat(strings.TrimSpace(fields[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("traj: plt line %d: timestamp: %w", lineNum, err)
		}
		// ParseFloat accepts "NaN" and "Inf", which would otherwise flow
		// silently through the projection into every error measure.
		if !isFinite(lat) || !isFinite(lon) || !isFinite(days) {
			return nil, fmt.Errorf("traj: plt line %d: %w: lat=%v lon=%v days=%v",
				lineNum, ErrNotFinite, lat, lon, days)
		}
		if !haveOrigin {
			lat0, lon0 = lat, lon
			haveOrigin = true
		}
		x, y := projectEquirectangular(lat, lon, lat0, lon0)
		t := days * 86400
		if n := len(out); n > 0 && t <= out[n-1].T {
			droppedOutOrder++
			continue
		}
		out = append(out, geo.Pt(x, y, t))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traj: plt: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("traj: plt file contains no points")
	}
	return out, nil
}

// ReadPLTFile reads one .plt file from disk.
func ReadPLTFile(path string) (Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadPLT(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// ReadPLTDir loads every .plt file under dir recursively (the Geolife
// release layout is Data/<user>/Trajectory/*.plt). Files that fail to
// parse are skipped with their errors collected; the call only fails when
// nothing loads.
func ReadPLTDir(dir string) ([]Trajectory, []error, error) {
	var (
		out  []Trajectory
		errs []error
	)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.EqualFold(filepath.Ext(path), ".plt") {
			return nil
		}
		t, err := ReadPLTFile(path)
		if err != nil {
			errs = append(errs, err)
			return nil
		}
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, errs, err
	}
	if len(out) == 0 {
		return nil, errs, fmt.Errorf("traj: no readable .plt files under %s", dir)
	}
	return out, errs, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// earthRadiusMeters is the WGS-84 mean Earth radius.
const earthRadiusMeters = 6371008.8

// projectEquirectangular maps (lat, lon) to local meters relative to
// (lat0, lon0).
func projectEquirectangular(lat, lon, lat0, lon0 float64) (x, y float64) {
	latRad := lat * math.Pi / 180
	lat0Rad := lat0 * math.Pi / 180
	x = (lon - lon0) * math.Pi / 180 * earthRadiusMeters * math.Cos(lat0Rad)
	y = (latRad - lat0Rad) * earthRadiusMeters
	return x, y
}
