package traj

import (
	"fmt"
	"strings"

	"rlts/internal/geo"
)

// Stats summarizes a dataset of trajectories the way the paper's Table I
// does: counts, sampling rate and mean inter-point distance.
type Stats struct {
	NumTrajectories int
	TotalPoints     int
	AvgPoints       float64 // average points per trajectory
	MinSampleRate   float64 // smallest inter-point time gap observed (s)
	MaxSampleRate   float64 // largest inter-point time gap observed (s)
	AvgSampleRate   float64 // mean inter-point time gap (s)
	AvgDistance     float64 // mean inter-point Euclidean distance
}

// Summarize computes dataset statistics over a slice of trajectories.
// Empty input yields a zero Stats.
func Summarize(ts []Trajectory) Stats {
	var s Stats
	s.NumTrajectories = len(ts)
	var sumGap, sumDist float64
	var gaps int
	for _, t := range ts {
		s.TotalPoints += len(t)
		for i := 1; i < len(t); i++ {
			gap := t[i].T - t[i-1].T
			if gaps == 0 || gap < s.MinSampleRate {
				s.MinSampleRate = gap
			}
			if gap > s.MaxSampleRate {
				s.MaxSampleRate = gap
			}
			sumGap += gap
			sumDist += geo.Dist(t[i-1], t[i])
			gaps++
		}
	}
	if s.NumTrajectories > 0 {
		s.AvgPoints = float64(s.TotalPoints) / float64(s.NumTrajectories)
	}
	if gaps > 0 {
		s.AvgSampleRate = sumGap / float64(gaps)
		s.AvgDistance = sumDist / float64(gaps)
	}
	return s
}

// String renders the stats as a small aligned table row block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# of trajectories:  %d\n", s.NumTrajectories)
	fmt.Fprintf(&b, "Total # of points:  %d\n", s.TotalPoints)
	fmt.Fprintf(&b, "Avg points/traj:    %.1f\n", s.AvgPoints)
	fmt.Fprintf(&b, "Sampling rate:      %.1fs ~ %.1fs (avg %.1fs)\n",
		s.MinSampleRate, s.MaxSampleRate, s.AvgSampleRate)
	fmt.Fprintf(&b, "Average distance:   %.2f", s.AvgDistance)
	return b.String()
}
