package traj

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const pltHeader = `Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
`

func TestReadPLT(t *testing.T) {
	in := pltHeader +
		"39.906631,116.385564,0,492,39745.1201851852,2008-10-24,02:53:04\n" +
		"39.906650,116.385600,0,492,39745.1202431713,2008-10-24,02:53:09\n" +
		"39.906700,116.385700,0,492,39745.1203020000,2008-10-24,02:53:14\n"
	tr, err := ReadPLT(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("got %d points, want 3", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The first point is the projection origin.
	if tr[0].X != 0 || tr[0].Y != 0 {
		t.Errorf("origin not at (0,0): %v", tr[0])
	}
	// ~19m north for 0.000019 deg at lat 39.9? lat delta 0.000019 deg
	// = 0.000019 * pi/180 * R ~ 2.1m; check rough magnitude.
	if tr[1].Y < 1 || tr[1].Y > 4 {
		t.Errorf("second point northing %v, want ~2m", tr[1].Y)
	}
	// Time gap: 0.0000579861 days ~ 5.01s.
	gap := tr[1].T - tr[0].T
	if math.Abs(gap-5) > 0.2 {
		t.Errorf("time gap %v, want ~5s", gap)
	}
}

func TestReadPLTDropsOutOfOrder(t *testing.T) {
	in := pltHeader +
		"39.9,116.3,0,492,39745.10,2008-10-24,02:24:00\n" +
		"39.9,116.3,0,492,39745.10,2008-10-24,02:24:00\n" + // duplicate timestamp
		"39.9,116.3,0,492,39745.11,2008-10-24,02:38:24\n"
	tr, err := ReadPLT(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("got %d points, want 2 (duplicate dropped)", tr.Len())
	}
}

func TestReadPLTErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"truncated header", "Geolife trajectory\nWGS 84\n"},
		{"no points", pltHeader},
		{"bad latitude", pltHeader + "abc,116.3,0,492,39745.1,2008-10-24,02:53:04\n"},
		{"bad longitude", pltHeader + "39.9,abc,0,492,39745.1,2008-10-24,02:53:04\n"},
		{"bad timestamp", pltHeader + "39.9,116.3,0,492,abc,2008-10-24,02:53:04\n"},
		{"too few fields", pltHeader + "39.9,116.3,0\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPLT(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadPLTDir(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "000", "Trajectory")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	good := pltHeader +
		"39.9,116.3,0,492,39745.10,2008-10-24,02:24:00\n" +
		"39.91,116.31,0,492,39745.11,2008-10-24,02:38:24\n"
	if err := os.WriteFile(filepath.Join(sub, "a.plt"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "bad.plt"), []byte("broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, errs, err := ReadPLTDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Errorf("loaded %d trajectories, want 1", len(ts))
	}
	if len(errs) != 1 {
		t.Errorf("collected %d errors, want 1 (the broken file)", len(errs))
	}
	// A directory with nothing readable fails.
	if _, _, err := ReadPLTDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestProjectionScale(t *testing.T) {
	// One degree of latitude is ~111.2 km everywhere.
	_, y := projectEquirectangular(40, 116, 39, 116)
	if math.Abs(y-111195) > 500 {
		t.Errorf("1 deg latitude = %v m, want ~111195", y)
	}
	// One degree of longitude at 60N is ~55.6 km.
	x, _ := projectEquirectangular(60, 117, 60, 116)
	if math.Abs(x-55597) > 500 {
		t.Errorf("1 deg longitude at 60N = %v m, want ~55597", x)
	}
}
