package traj

import (
	"math/rand"
	"reflect"
	"testing"

	"rlts/internal/geo"
)

func TestRepairStateCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	rp := NewRepairer(RepairConfig{Window: 12, MaxSpeed: 9, DupRadius: 4, AverageDups: true})
	for i := 0; i < 250; i++ {
		rp.Push(geo.Pt(r.NormFloat64()*4, r.NormFloat64()*4, float64(i/2)+r.NormFloat64()*4))
	}
	st := rp.ExportState()
	blob := st.AppendBinary(nil)
	back, err := DecodeRepairState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("round trip differs:\n%+v\n%+v", st, back)
	}
	// And the decoded state resumes.
	if _, err := ResumeRepairer(back); err != nil {
		t.Fatal(err)
	}
	// Empty-window state round-trips too.
	empty := NewRepairer(RepairConfig{}).ExportState()
	back, err = DecodeRepairState(empty.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(empty, back) {
		t.Fatal("empty state round trip differs")
	}
}

func TestDecodeRepairStateTotal(t *testing.T) {
	rp := NewRepairer(RepairConfig{Window: 6, MaxSpeed: 3})
	for i := 0; i < 40; i++ {
		rp.Push(geo.Pt(float64(i), 0, float64(i)))
	}
	blob := rp.ExportState().AppendBinary(nil)
	// Every truncation must error cleanly.
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeRepairState(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage must error.
	if _, err := DecodeRepairState(append(append([]byte{}, blob...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Wrong version must error.
	bad := append([]byte{}, blob...)
	bad[0] = 99
	if _, err := DecodeRepairState(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	// A hostile pending count must not drive allocation.
	big := append([]byte{}, blob...)
	// pending count sits after version(1) + window(8) + 2 floats(16) +
	// avg(1) + seq(8) + maxRelSeq(8) = offset 42.
	big[42], big[43], big[44], big[45] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeRepairState(big); err == nil {
		t.Fatal("hostile pending count accepted")
	}
}
