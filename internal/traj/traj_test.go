package traj

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rlts/internal/geo"
)

func line(n int) Trajectory {
	t := make(Trajectory, n)
	for i := range t {
		t[i] = geo.Pt(float64(i), 0, float64(i))
	}
	return t
}

func TestLenDurationPathLength(t *testing.T) {
	tr := line(5)
	if tr.Len() != 5 {
		t.Errorf("Len = %d, want 5", tr.Len())
	}
	if tr.Duration() != 4 {
		t.Errorf("Duration = %v, want 4", tr.Duration())
	}
	if tr.PathLength() != 4 {
		t.Errorf("PathLength = %v, want 4", tr.PathLength())
	}
	var empty Trajectory
	if empty.Duration() != 0 || empty.PathLength() != 0 {
		t.Error("empty trajectory should have zero duration and length")
	}
}

func TestSub(t *testing.T) {
	tr := line(10)
	sub := tr.Sub(2, 5)
	if sub.Len() != 4 {
		t.Fatalf("Sub len = %d, want 4", sub.Len())
	}
	if !sub[0].Equal(tr[2]) || !sub[3].Equal(tr[5]) {
		t.Error("Sub endpoints wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Sub out of range did not panic")
		}
	}()
	tr.Sub(5, 2)
}

func TestValidate(t *testing.T) {
	if err := line(5).Validate(); err != nil {
		t.Errorf("valid trajectory: %v", err)
	}
	bad := line(5)
	bad[3].T = bad[2].T // duplicate timestamp
	if err := bad.Validate(); err == nil {
		t.Error("unordered timestamps not rejected")
	}
	nan := line(5)
	nan[1].X = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("NaN not rejected")
	}
}

func TestPick(t *testing.T) {
	tr := line(10)
	s := tr.Pick([]int{0, 3, 9})
	if s.Len() != 3 || !s[1].Equal(tr[3]) {
		t.Fatalf("Pick wrong: %v", s)
	}
	if !s.IsSimplificationOf(tr) {
		t.Error("Pick result not a simplification")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-increasing Pick did not panic")
		}
	}()
	tr.Pick([]int{3, 3})
}

func TestIsSimplificationOf(t *testing.T) {
	tr := line(6)
	tests := []struct {
		name string
		s    Trajectory
		want bool
	}{
		{"identity", tr.Clone(), true},
		{"endpoints only", Trajectory{tr[0], tr[5]}, true},
		{"subsequence", Trajectory{tr[0], tr[2], tr[4], tr[5]}, true},
		{"missing last", Trajectory{tr[0], tr[3]}, false},
		{"missing first", Trajectory{tr[1], tr[5]}, false},
		{"foreign point", Trajectory{tr[0], geo.Pt(99, 99, 2.5), tr[5]}, false},
		{"too short", Trajectory{tr[0]}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.IsSimplificationOf(tr); got != tc.want {
				t.Errorf("IsSimplificationOf = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := line(4)
	c := tr.Clone()
	c[0].X = 99
	if tr[0].X == 99 {
		t.Error("Clone shares storage")
	}
}

func TestSummarize(t *testing.T) {
	ts := []Trajectory{line(5), line(3)}
	s := Summarize(ts)
	if s.NumTrajectories != 2 || s.TotalPoints != 8 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.AvgPoints != 4 {
		t.Errorf("AvgPoints = %v, want 4", s.AvgPoints)
	}
	if s.MinSampleRate != 1 || s.MaxSampleRate != 1 || s.AvgSampleRate != 1 {
		t.Errorf("sample rates wrong: %+v", s)
	}
	if s.AvgDistance != 1 {
		t.Errorf("AvgDistance = %v, want 1", s.AvgDistance)
	}
	if !strings.Contains(s.String(), "trajectories") {
		t.Error("String() missing content")
	}
	if z := Summarize(nil); z.NumTrajectories != 0 {
		t.Error("empty Summarize not zero")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ts := []Trajectory{line(4), {geo.Pt(1.5, -2.25, 0), geo.Pt(3, 4, 10.5)}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("got %d trajectories, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !got[i].Equal(ts[i]) {
			t.Errorf("trajectory %d differs: got %v want %v", i, got[i], ts[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"bad x", "0,abc,0,0\n"},
		{"bad y", "0,1,abc,0\n"},
		{"bad t", "0,1,2,abc\n"},
		{"wrong fields", "0,1,2\n"},
		{"unordered", "0,0,0,5\n0,1,1,3\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadCSVHeaderOptional(t *testing.T) {
	with := "traj_id,x,y,t\n0,1,2,3\n0,2,3,4\n"
	without := "0,1,2,3\n0,2,3,4\n"
	a, err := ReadCSV(strings.NewReader(with))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadCSV(strings.NewReader(without))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 || !a[0].Equal(b[0]) {
		t.Error("header handling differs")
	}
}

func TestPickPreservesSimplificationProperty(t *testing.T) {
	f := func(raw []bool) bool {
		n := len(raw) + 2
		tr := line(n)
		idx := []int{0}
		for i, keep := range raw {
			if keep {
				idx = append(idx, i+1)
			}
		}
		idx = append(idx, n-1)
		return tr.Pick(idx).IsSimplificationOf(tr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
