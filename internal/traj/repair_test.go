package traj

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"rlts/internal/geo"
)

func rawLine(n int) [][3]float64 {
	out := make([][3]float64, n)
	for i := range out {
		out[i] = [3]float64{float64(i), 0, float64(i)}
	}
	return out
}

func TestRepairCleanPassThrough(t *testing.T) {
	// Clean input must come out bit-identical, whatever the config.
	raw := rawLine(200)
	for _, cfg := range []RepairConfig{
		{},
		{Window: 1},
		{Window: 64, MaxSpeed: 10, AverageDups: true},
		{Window: -1, MaxSpeed: 2},
	} {
		got, rep, err := Repair(raw, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if len(got) != len(raw) {
			t.Fatalf("cfg %+v: %d points out, want %d", cfg, len(got), len(raw))
		}
		for i, p := range got {
			if p.X != raw[i][0] || p.Y != raw[i][1] || p.T != raw[i][2] {
				t.Fatalf("cfg %+v: point %d = %v, want %v", cfg, i, p, raw[i])
			}
		}
		if rep.Dropped() != 0 || rep.Reordered != 0 {
			t.Fatalf("cfg %+v: clean input produced defects: %+v", cfg, rep)
		}
	}
}

func TestRepairReorders(t *testing.T) {
	// Swap adjacent fixes throughout; a window of 2 restores order fully.
	raw := rawLine(100)
	for i := 0; i+1 < len(raw); i += 2 {
		raw[i], raw[i+1] = raw[i+1], raw[i]
	}
	got, rep, err := Repair(raw, RepairConfig{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d points, want 100", len(got))
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Reordered == 0 {
		t.Fatalf("no reorders counted: %+v", rep)
	}
	if rep.Dropped() != 0 {
		t.Fatalf("reorderable input dropped fixes: %+v", rep)
	}
}

func TestRepairLateDrop(t *testing.T) {
	// A fix delayed beyond the window cannot be re-sorted and must drop
	// as late, not corrupt the output order.
	raw := [][3]float64{
		{0, 0, 0}, {1, 0, 1}, {2, 0, 2}, {3, 0, 3}, {4, 0, 4},
		{0.5, 0, 0.5}, // 5 positions late, window is 2
		{5, 0, 5},
	}
	got, rep, err := Repair(raw, RepairConfig{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Late != 1 {
		t.Fatalf("Late = %d, want 1 (%+v)", rep.Late, rep)
	}
	if len(got) != 6 {
		t.Fatalf("got %d points, want 6", len(got))
	}
}

func TestRepairDedup(t *testing.T) {
	raw := [][3]float64{
		{0, 0, 0},
		{1, 0, 1}, {3, 0, 1}, {5, 0, 1}, // three fixes at t=1
		{2, 0, 2},
	}
	// Keep-first.
	got, rep, err := Repair(raw, RepairConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 2 {
		t.Fatalf("Duplicates = %d, want 2", rep.Duplicates)
	}
	if got[1].X != 1 {
		t.Fatalf("keep-first kept X=%v, want 1", got[1].X)
	}
	// Averaged.
	got, _, err = Repair(raw, RepairConfig{AverageDups: true})
	if err != nil {
		t.Fatal(err)
	}
	if got[1].X != 3 {
		t.Fatalf("averaged X=%v, want 3", got[1].X)
	}
	if got[1].T != 1 {
		t.Fatalf("averaged T=%v, want 1", got[1].T)
	}
}

func TestRepairSpeedGate(t *testing.T) {
	// A spike 1000 units away between 1-second fixes at speed 1.
	raw := [][3]float64{
		{0, 0, 0}, {1, 0, 1}, {1000, 0, 2}, {3, 0, 3}, {4, 0, 4},
	}
	got, rep, err := Repair(raw, RepairConfig{MaxSpeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outliers != 1 {
		t.Fatalf("Outliers = %d, want 1 (%+v)", rep.Outliers, rep)
	}
	for _, p := range got {
		if p.X == 1000 {
			t.Fatal("teleport survived the gate")
		}
	}
	// Self-healing: a genuine relocation is accepted once enough time
	// has passed for the implied speed to fall under the gate.
	raw = [][3]float64{
		{0, 0, 0}, {1, 0, 1}, {1000, 0, 2}, {1000, 0, 200}, {1001, 0, 201},
	}
	got, rep, err = Repair(raw, RepairConfig{MaxSpeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got[len(got)-1].X != 1001 {
		t.Fatalf("gate never recovered after relocation: %v", got)
	}
	if rep.Outliers != 1 {
		t.Fatalf("Outliers = %d, want 1 (%+v)", rep.Outliers, rep)
	}
}

func TestRepairZeroDurationTeleport(t *testing.T) {
	// Two fixes at the same timestamp, far apart: a zero-duration
	// teleport. The gate must classify it as an outlier (not divide by
	// zero, not emit it); without the gate it is an ordinary duplicate.
	raw := [][3]float64{
		{0, 0, 0}, {1, 0, 1}, {5000, 0, 1}, {2, 0, 2},
	}
	got, rep, err := Repair(raw, RepairConfig{MaxSpeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outliers != 1 || rep.Duplicates != 0 {
		t.Fatalf("gated dup-teleport: %+v, want 1 outlier 0 duplicates", rep)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	got, rep, err = Repair(raw, RepairConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 1 || rep.Outliers != 0 {
		t.Fatalf("ungated dup-teleport: %+v, want 1 duplicate 0 outliers", rep)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairNonFiniteTotal(t *testing.T) {
	raw := [][3]float64{
		{0, 0, 0},
		{math.NaN(), 0, 1},
		{1, math.Inf(1), 2},
		{2, 0, math.NaN()},
		{3, 0, 3},
	}
	got, rep, err := Repair(raw, RepairConfig{MaxSpeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonFinite != 3 {
		t.Fatalf("NonFinite = %d, want 3", rep.NonFinite)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d points, want 2", len(got))
	}
}

func TestRepairTooShort(t *testing.T) {
	_, rep, err := Repair([][3]float64{{0, 0, 0}, {math.NaN(), 0, 1}}, RepairConfig{})
	if !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
	if rep.NonFinite != 1 {
		t.Fatalf("report not populated on failure: %+v", rep)
	}
	if _, _, err := Repair(nil, RepairConfig{}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("nil input: err = %v, want ErrTooShort", err)
	}
}

func TestRepairReportBalances(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rp := NewRepairer(RepairConfig{Window: 8, MaxSpeed: 5})
	emitted := 0
	for i := 0; i < 500; i++ {
		p := geo.Pt(r.NormFloat64()*3, r.NormFloat64()*3, float64(i)+r.NormFloat64()*4)
		if r.Intn(20) == 0 {
			p.T = math.NaN()
		}
		emitted += len(rp.Push(p))
		rep := rp.Report()
		if rep.Emitted+rep.Dropped()+rp.Pending() != rep.Pushed {
			t.Fatalf("push %d: report does not balance: %+v pending %d", i, rep, rp.Pending())
		}
		if rep.Emitted != emitted {
			t.Fatalf("push %d: Emitted %d but saw %d points", i, rep.Emitted, emitted)
		}
	}
	emitted += len(rp.Flush())
	rep := rp.Report()
	if rp.Pending() != 0 {
		t.Fatalf("pending after flush: %d", rp.Pending())
	}
	if rep.Emitted+rep.Dropped() != rep.Pushed {
		t.Fatalf("final report does not balance: %+v", rep)
	}
}

// TestRepairChunkingInvariance: streaming fix-by-fix, in chunks, or
// one-shot must yield the identical output — the property the HTTP
// stream sessions rely on.
func TestRepairChunkingInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var raw [][3]float64
	for i := 0; i < 300; i++ {
		raw = append(raw, [3]float64{r.NormFloat64() * 5, r.NormFloat64() * 5, float64(i/3) + r.NormFloat64()*6})
	}
	cfg := RepairConfig{Window: 12, MaxSpeed: 8, AverageDups: true}
	want, wantRep, err := Repair(raw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRepairer(cfg)
	var got Trajectory
	i := 0
	for i < len(raw) {
		n := 1 + r.Intn(17)
		if i+n > len(raw) {
			n = len(raw) - i
		}
		for _, p := range raw[i : i+n] {
			got = append(got, rp.Push(geo.Pt(p[0], p[1], p[2]))...)
		}
		i += n
	}
	got = append(got, rp.Flush()...)
	if !got.Equal(want) {
		t.Fatalf("chunked output differs: %d vs %d points", len(got), len(want))
	}
	if rp.Report() != wantRep {
		t.Fatalf("chunked report differs: %+v vs %+v", rp.Report(), wantRep)
	}
}

// TestRepairExportResume: exporting mid-stream and resuming must
// continue bit-identically — the spill/rehydrate contract.
func TestRepairExportResume(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	var raw []geo.Point
	for i := 0; i < 400; i++ {
		raw = append(raw, geo.Pt(r.NormFloat64()*5, r.NormFloat64()*5, float64(i/2)+r.NormFloat64()*5))
	}
	cfg := RepairConfig{Window: 10, MaxSpeed: 6}
	for _, cut := range []int{0, 1, 37, 200, 399} {
		ref := NewRepairer(cfg)
		var want Trajectory
		for _, p := range raw {
			want = append(want, ref.Push(p)...)
		}
		want = append(want, ref.Flush()...)

		rp := NewRepairer(cfg)
		var got Trajectory
		for _, p := range raw[:cut] {
			got = append(got, rp.Push(p)...)
		}
		resumed, err := ResumeRepairer(rp.ExportState())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, p := range raw[cut:] {
			got = append(got, resumed.Push(p)...)
		}
		got = append(got, resumed.Flush()...)
		if !got.Equal(want) {
			t.Fatalf("cut %d: resumed output differs (%d vs %d points)", cut, len(got), len(want))
		}
		if resumed.Report() != ref.Report() {
			t.Fatalf("cut %d: resumed report differs: %+v vs %+v", cut, resumed.Report(), ref.Report())
		}
	}
}

func TestResumeRepairerRejectsCorruptState(t *testing.T) {
	mk := func() *RepairState {
		rp := NewRepairer(RepairConfig{Window: 4, MaxSpeed: 5})
		for i := 0; i < 10; i++ {
			rp.Push(geo.Pt(float64(i), 0, float64(i)))
		}
		return rp.ExportState()
	}
	cases := []struct {
		name string
		mut  func(*RepairState)
	}{
		{"NaN max speed", func(st *RepairState) { st.Cfg.MaxSpeed = math.NaN() }},
		{"pending over window", func(st *RepairState) { st.Cfg.Window = 2 }},
		{"negative counter", func(st *RepairState) { st.Report.Late = -1 }},
		{"unbalanced report", func(st *RepairState) { st.Report.Pushed += 3 }},
		{"non-finite pending", func(st *RepairState) { st.Pending[0].P.X = math.Inf(1) }},
		{"seq above counter", func(st *RepairState) { st.Pending[0].Seq = st.Seq + 1 }},
		{"duplicate seq", func(st *RepairState) { st.Pending[1].Seq = st.Pending[2].Seq }},
		{"heap violation", func(st *RepairState) { st.Pending[0].P.T = 1e9 }},
		{"non-finite anchor", func(st *RepairState) { st.Last.T = math.NaN() }},
		{"held behind anchor", func(st *RepairState) {
			st.HasHeld = true
			st.HeldN = 1
			st.HeldFirst = st.Last
			st.Report.Pushed++ // keep the balance so only the ordering check fires
		}},
		{"phantom held members", func(st *RepairState) { st.HeldN = 2 }},
	}
	for _, tc := range cases {
		st := mk()
		tc.mut(st)
		if _, err := ResumeRepairer(st); err == nil {
			t.Errorf("%s: corrupt state accepted", tc.name)
		}
	}
	// And the unmutated state is accepted.
	if _, err := ResumeRepairer(mk()); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

func TestValidateDuplicateTime(t *testing.T) {
	dup := Trajectory{geo.Pt(0, 0, 1), geo.Pt(1, 0, 1)}
	err := dup.Validate()
	if !errors.Is(err, ErrDuplicateTime) {
		t.Fatalf("duplicate: err = %v, want ErrDuplicateTime", err)
	}
	if !errors.Is(err, ErrNotOrdered) {
		t.Fatalf("ErrDuplicateTime must still match ErrNotOrdered, got %v", err)
	}
	back := Trajectory{geo.Pt(0, 0, 5), geo.Pt(1, 0, 1)}
	err = back.Validate()
	if errors.Is(err, ErrDuplicateTime) {
		t.Fatalf("regression misclassified as duplicate: %v", err)
	}
	if !errors.Is(err, ErrNotOrdered) {
		t.Fatalf("regression: err = %v, want ErrNotOrdered", err)
	}
}

// FuzzRepair holds the repair stage total: never panics, and whatever
// it emits always satisfies the strict FromPoints contract.
func FuzzRepair(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1}, 4, 10.0, false)
	f.Add([]byte{9, 9, 9, 9, 0, 0}, 0, 0.0, true)
	f.Add([]byte{255, 1, 128, 7, 3, 3, 3}, -1, 1.0, false)
	f.Fuzz(func(t *testing.T, data []byte, window int, maxSpeed float64, avg bool) {
		if window > 1<<16 || window < -1<<16 {
			return // keep the exported-state window check meaningful
		}
		r := rand.New(rand.NewSource(int64(len(data))))
		raw := make([][3]float64, 0, len(data))
		for _, b := range data {
			var p [3]float64
			switch b % 7 {
			case 0:
				p = [3]float64{math.NaN(), float64(b), float64(len(raw))}
			case 1:
				p = [3]float64{float64(b), math.Inf(1), math.Inf(-1)}
			case 2: // duplicate or regressed timestamp
				p = [3]float64{float64(b), 0, float64(len(raw) / 3)}
			case 3: // teleport
				p = [3]float64{1e300, -1e300, float64(len(raw))}
			default:
				p = [3]float64{r.NormFloat64(), r.NormFloat64(), float64(len(raw)) + r.NormFloat64()*3}
			}
			raw = append(raw, p)
		}
		got, rep, err := Repair(raw, RepairConfig{Window: window, MaxSpeed: maxSpeed, AverageDups: avg})
		if err != nil {
			if !errors.Is(err, ErrTooShort) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("repair emitted invalid output: %v", err)
		}
		if len(got) < 2 {
			t.Fatalf("nil error with %d points", len(got))
		}
		if rep.Emitted+rep.Dropped() != rep.Pushed {
			t.Fatalf("report does not balance: %+v", rep)
		}
	})
}
