package index

import (
	"math"
	"testing"
	"testing/quick"

	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/query"
	"rlts/internal/traj"
)

func testFleet(t *testing.T, count, n int) *Fleet {
	t.Helper()
	f, err := NewFleet(100)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.New(gen.Truck(), 7)
	for i := 0; i < count; i++ {
		if _, err := f.Add(g.Trajectory(n)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestNewFleetValidation(t *testing.T) {
	for _, bad := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := NewFleet(bad); err == nil {
			t.Errorf("cell size %v accepted", bad)
		}
	}
}

func TestAddValidation(t *testing.T) {
	f, _ := NewFleet(10)
	if _, err := f.Add(traj.Trajectory{geo.Pt(0, 0, 0)}); err == nil {
		t.Error("single-point trajectory accepted")
	}
	bad := traj.Trajectory{geo.Pt(0, 0, 5), geo.Pt(1, 1, 1)}
	if _, err := f.Add(bad); err == nil {
		t.Error("unordered trajectory accepted")
	}
	id, err := f.Add(traj.Trajectory{geo.Pt(0, 0, 0), geo.Pt(1, 1, 1)})
	if err != nil || id != 0 {
		t.Errorf("Add = %d, %v", id, err)
	}
	if f.Len() != 1 || f.Segments() != 1 {
		t.Errorf("Len=%d Segments=%d", f.Len(), f.Segments())
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	f := testFleet(t, 20, 150)
	// Probe rectangles centered on points of member trajectories.
	for probe := 0; probe < 20; probe++ {
		tr := f.Trajectory(probe % f.Len())
		c := tr[(probe*37)%len(tr)]
		r := query.Rect{MinX: c.X - 150, MinY: c.Y - 150, MaxX: c.X + 150, MaxY: c.Y + 150}
		t1, t2 := tr[0].T, tr[len(tr)-1].T
		got := f.RangeSearch(r, t1, t2)
		var want []int
		for id := 0; id < f.Len(); id++ {
			if query.WithinDuring(f.Trajectory(id), r, t1, t2) {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("probe %d: got %v, want %v", probe, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("probe %d: got %v, want %v", probe, got, want)
			}
		}
		// The probed trajectory itself must be found.
		found := false
		for _, id := range got {
			if id == probe%f.Len() {
				found = true
			}
		}
		if !found {
			t.Fatalf("probe %d: own trajectory not found", probe)
		}
	}
}

func TestRangeSearchEmptyCases(t *testing.T) {
	f := testFleet(t, 3, 50)
	r := query.Rect{MinX: 1e9, MinY: 1e9, MaxX: 1e9 + 1, MaxY: 1e9 + 1}
	if got := f.RangeSearch(r, 0, 1e9); got != nil {
		t.Errorf("far rect found %v", got)
	}
	if got := f.RangeSearch(query.Rect{}, 5, 1); got != nil {
		t.Errorf("inverted window found %v", got)
	}
	empty, _ := NewFleet(10)
	if got := empty.RangeSearch(query.Rect{MaxX: 1, MaxY: 1}, 0, 1); got != nil {
		t.Errorf("empty fleet found %v", got)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	f := testFleet(t, 15, 100)
	probes := []geo.Point{
		f.Trajectory(3)[40],
		geo.Pt(0, 0, 0),
		geo.Pt(5000, -3000, 0),
	}
	for _, q := range probes {
		gotID, gotD := f.Nearest(q)
		wantID, wantD := -1, math.Inf(1)
		for id := 0; id < f.Len(); id++ {
			if d, _ := query.NearestApproach(f.Trajectory(id), q); d < wantD {
				wantID, wantD = id, d
			}
		}
		if math.Abs(gotD-wantD) > 1e-9 {
			t.Errorf("Nearest(%v) dist = %v (id %d), brute force %v (id %d)",
				q, gotD, gotID, wantD, wantID)
		}
	}
	empty, _ := NewFleet(10)
	if id, d := empty.Nearest(geo.Pt(0, 0, 0)); id != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty fleet Nearest = %d, %v", id, d)
	}
}

func TestNearestProperty(t *testing.T) {
	fl := testFleet(t, 10, 60)
	f := func(xRaw, yRaw int16) bool {
		q := geo.Pt(float64(xRaw), float64(yRaw), 0)
		gotID, gotD := fl.Nearest(q)
		if gotID < 0 {
			return false
		}
		for id := 0; id < fl.Len(); id++ {
			if d, _ := query.NearestApproach(fl.Trajectory(id), q); d < gotD-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSimplifiedFleetShrinksIndex(t *testing.T) {
	// The motivation: simplification shrinks the index.
	g := gen.New(gen.Truck(), 9)
	raw, _ := NewFleet(100)
	simp, _ := NewFleet(100)
	for i := 0; i < 5; i++ {
		tr := g.Trajectory(200)
		if _, err := raw.Add(tr); err != nil {
			t.Fatal(err)
		}
		idx := make([]int, 0, 20)
		for j := 0; j < 200; j += 10 {
			idx = append(idx, j)
		}
		idx = append(idx, 199)
		if _, err := simp.Add(tr.Pick(idx)); err != nil {
			t.Fatal(err)
		}
	}
	if simp.Segments() >= raw.Segments()/5 {
		t.Errorf("simplified index has %d segments vs raw %d — expected ~10x fewer",
			simp.Segments(), raw.Segments())
	}
}
