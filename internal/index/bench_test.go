package index

import (
	"testing"

	"rlts/internal/gen"
	"rlts/internal/query"
)

// BenchmarkRangeSearch compares the indexed range query against the
// brute-force scan it replaces.
func BenchmarkRangeSearch(b *testing.B) {
	f, err := NewFleet(200)
	if err != nil {
		b.Fatal(err)
	}
	g := gen.New(gen.Truck(), 3)
	for i := 0; i < 100; i++ {
		if _, err := f.Add(g.Trajectory(500)); err != nil {
			b.Fatal(err)
		}
	}
	c := f.Trajectory(0)[250]
	r := query.Rect{MinX: c.X - 200, MinY: c.Y - 200, MaxX: c.X + 200, MaxY: c.Y + 200}
	t1, t2 := f.Trajectory(0)[0].T, f.Trajectory(0)[499].T

	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.RangeSearch(r, t1, t2)
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var out []int
			for id := 0; id < f.Len(); id++ {
				if query.WithinDuring(f.Trajectory(id), r, t1, t2) {
					out = append(out, id)
				}
			}
			_ = out
		}
	})
}

// BenchmarkNearest measures the expanding-ring nearest-trajectory query.
func BenchmarkNearest(b *testing.B) {
	f, err := NewFleet(200)
	if err != nil {
		b.Fatal(err)
	}
	g := gen.New(gen.Truck(), 4)
	for i := 0; i < 100; i++ {
		if _, err := f.Add(g.Trajectory(500)); err != nil {
			b.Fatal(err)
		}
	}
	q := f.Trajectory(42)[100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = f.Nearest(q)
	}
}
