// Package index provides a fleet store with a uniform-grid spatial index
// over trajectory segments — the server-side substrate the paper's
// introduction motivates: once hundreds of thousands of sensors
// accumulate trajectories at a server, queries must not scan everything.
// Simplified trajectories make the index smaller (fewer segments), which
// is exactly the storage/query saving Min-Error simplification buys.
//
// The index answers two fleet-level queries:
//
//   - RangeSearch: which trajectories pass through a rectangle during a
//     time window?
//   - Nearest: which trajectory's path comes closest to a point?
package index

import (
	"fmt"
	"math"
	"sort"

	"rlts/internal/geo"
	"rlts/internal/query"
	"rlts/internal/traj"
)

// Fleet is an indexed collection of trajectories. It is append-only; the
// zero value is not usable, use NewFleet.
type Fleet struct {
	cell  float64
	trajs []traj.Trajectory
	cells map[cellKey][]segRef
	segs  int
}

type cellKey struct{ x, y int32 }

// segRef identifies segment (seg, seg+1) of trajectory traj.
type segRef struct {
	traj int32
	seg  int32
}

// NewFleet creates a fleet with the given grid cell size (in coordinate
// units; pick roughly the median segment length for balanced buckets).
func NewFleet(cellSize float64) (*Fleet, error) {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("index: cell size must be positive and finite, got %v", cellSize)
	}
	return &Fleet{cell: cellSize, cells: make(map[cellKey][]segRef)}, nil
}

// Add indexes a trajectory and returns its fleet id.
func (f *Fleet) Add(t traj.Trajectory) (int, error) {
	if err := t.Validate(); err != nil {
		return 0, fmt.Errorf("index: %w", err)
	}
	if len(t) < 2 {
		return 0, traj.ErrTooShort
	}
	id := len(f.trajs)
	f.trajs = append(f.trajs, t)
	for i := 0; i+1 < len(t); i++ {
		ref := segRef{traj: int32(id), seg: int32(i)}
		for _, key := range f.segmentCells(t[i], t[i+1]) {
			f.cells[key] = append(f.cells[key], ref)
		}
		f.segs++
	}
	return id, nil
}

// Len returns the number of indexed trajectories.
func (f *Fleet) Len() int { return len(f.trajs) }

// Segments returns the number of indexed segments (the index size driver).
func (f *Fleet) Segments() int { return f.segs }

// Trajectory returns the trajectory with the given fleet id.
func (f *Fleet) Trajectory(id int) traj.Trajectory { return f.trajs[id] }

// segmentCells enumerates the grid cells overlapped by the bounding box
// of a segment. Segment-level boxes keep the walk simple; precise
// geometry is re-checked at query time.
func (f *Fleet) segmentCells(a, b geo.Point) []cellKey {
	minX, maxX := math.Min(a.X, b.X), math.Max(a.X, b.X)
	minY, maxY := math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
	x0, x1 := f.cellOf(minX), f.cellOf(maxX)
	y0, y1 := f.cellOf(minY), f.cellOf(maxY)
	out := make([]cellKey, 0, (x1-x0+1)*(y1-y0+1))
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			out = append(out, cellKey{x, y})
		}
	}
	return out
}

func (f *Fleet) cellOf(v float64) int32 {
	return int32(math.Floor(v / f.cell))
}

// RangeSearch returns the ids (ascending, deduplicated) of trajectories
// whose interpolated path enters r at any time within [t1, t2]. The grid
// narrows the candidates; the exact check is query.WithinDuring on the
// candidate trajectory.
func (f *Fleet) RangeSearch(r query.Rect, t1, t2 float64) []int {
	if t1 > t2 || len(f.trajs) == 0 {
		return nil
	}
	x0, x1 := f.cellOf(r.MinX), f.cellOf(r.MaxX)
	y0, y1 := f.cellOf(r.MinY), f.cellOf(r.MaxY)
	seen := make(map[int32]bool)
	var candidates []int32
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			for _, ref := range f.cells[cellKey{x, y}] {
				if !seen[ref.traj] {
					seen[ref.traj] = true
					candidates = append(candidates, ref.traj)
				}
			}
		}
	}
	var out []int
	for _, id := range candidates {
		if query.WithinDuring(f.trajs[id], r, t1, t2) {
			out = append(out, int(id))
		}
	}
	sort.Ints(out)
	return out
}

// Nearest returns the id of the trajectory whose path comes closest to q,
// together with that distance. It expands square rings of cells around q
// and stops once the closest found candidate is provably closer than any
// unexplored ring. An empty fleet returns id -1.
func (f *Fleet) Nearest(q geo.Point) (int, float64) {
	if len(f.trajs) == 0 {
		return -1, math.Inf(1)
	}
	cx, cy := f.cellOf(q.X), f.cellOf(q.Y)
	bestID := -1
	best := math.Inf(1)
	checked := make(map[int32]bool)
	maxRing := f.maxRing(cx, cy)
	for ring := int32(0); ring <= maxRing; ring++ {
		// Any segment in an unexplored ring is at least (ring-1) cells
		// away; once best beats that bound we can stop.
		if bound := float64(ring-1) * f.cell; bestID >= 0 && best <= bound {
			break
		}
		for _, key := range ringCells(cx, cy, ring) {
			for _, ref := range f.cells[key] {
				if checked[ref.traj] {
					continue
				}
				checked[ref.traj] = true
				if d, _ := query.NearestApproach(f.trajs[ref.traj], q); d < best {
					best = d
					bestID = int(ref.traj)
				}
			}
		}
	}
	return bestID, best
}

// maxRing bounds the ring expansion by the spread of populated cells.
func (f *Fleet) maxRing(cx, cy int32) int32 {
	var max int32
	for key := range f.cells {
		dx, dy := key.x-cx, key.y-cy
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		r := dx
		if dy > r {
			r = dy
		}
		if r > max {
			max = r
		}
	}
	return max
}

// ringCells enumerates the cells at Chebyshev distance exactly ring from
// (cx, cy).
func ringCells(cx, cy, ring int32) []cellKey {
	if ring == 0 {
		return []cellKey{{cx, cy}}
	}
	out := make([]cellKey, 0, 8*ring)
	for x := cx - ring; x <= cx+ring; x++ {
		out = append(out, cellKey{x, cy - ring}, cellKey{x, cy + ring})
	}
	for y := cy - ring + 1; y <= cy+ring-1; y++ {
		out = append(out, cellKey{cx - ring, y}, cellKey{cx + ring, y})
	}
	return out
}
