// Package fleet allocates a shared storage budget across a collection
// of simplification sessions. The single-trajectory problem solved by
// internal/core fixes one budget W per stream; in a database of
// trajectories the operationally meaningful constraint is a *global*
// point budget, and the question becomes how to split it. Following the
// collective-simplification formulation (arXiv:2311.11204), the split
// is judged by downstream query accuracy over the whole collection, not
// by per-trajectory error.
//
// The package is pure: it turns a list of member descriptors (length,
// current error estimate, policy pressure) and a global budget into a
// deterministic per-member budget assignment. Applying an assignment —
// calling Streamer.SetBudget, persisting the plan, emitting metrics —
// is the server layer's job.
//
// Three strategies are provided:
//
//   - Proportional: split by input length. The baseline every static
//     simplifier implicitly uses (keep the same ratio everywhere).
//   - ErrorGreedy: marginal-error descent. Under the standard decay
//     model err_i(w) ≈ E_i·L_i/w, the marginal gain of granting member
//     i one more point at budget w is E_i·L_i/(w·(w+1)); points are
//     granted one at a time to the member with the largest current
//     marginal gain. Members whose streams are hard to compress (high
//     current error) soak up budget; near-collinear streams release it.
//   - RLValue: the same descent driven by the trained policy's value
//     signal (Streamer.PolicyPressure — the probability-weighted drop
//     value of the pending decision) instead of the error estimate.
package fleet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"
)

// MinPerMember is the smallest budget any member may be assigned. A
// simplification must retain its two endpoints, and core.NewStreamer /
// SetBudget reject W < 2, so no allocation below this is applicable.
const MinPerMember = 2

// Strategy selects how the global budget is split.
type Strategy int

const (
	// Proportional splits the budget in proportion to input length.
	Proportional Strategy = iota
	// ErrorGreedy descends on marginal error: each point goes to the
	// member with the largest estimated error reduction for it.
	ErrorGreedy
	// RLValue runs the same marginal descent with the trained policy's
	// pressure signal in place of the error estimate.
	RLValue
)

// Strategies lists every allocation strategy in a fixed order; the
// evaluation experiment and the check harness iterate over it.
func Strategies() []Strategy {
	return []Strategy{Proportional, ErrorGreedy, RLValue}
}

func (s Strategy) String() string {
	switch s {
	case Proportional:
		return "proportional"
	case ErrorGreedy:
		return "error-greedy"
	case RLValue:
		return "rl-value"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy maps a wire name (case-insensitive) to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "proportional", "prop", "":
		return Proportional, nil
	case "error-greedy", "error_greedy", "greedy":
		return ErrorGreedy, nil
	case "rl-value", "rl_value", "rl", "adaptive":
		return RLValue, nil
	default:
		return 0, fmt.Errorf("fleet: unknown strategy %q (want proportional, error-greedy, or rl-value)", name)
	}
}

// Member describes one allocation target: a live stream session or a
// static trajectory in a collection.
type Member struct {
	// ID is the member's unique identifier (session id or dataset key).
	// Allocation sorts by ID, so results are independent of input order.
	ID string
	// Len is the number of points observed so far (Streamer.Seen, or
	// trajectory length for a static member).
	Len int
	// Err is the member's current simplification-error estimate
	// (Streamer.ErrEst or an errm.Tracker reading). Used by ErrorGreedy.
	Err float64
	// Pressure is the trained policy's value signal for the member
	// (Streamer.PolicyPressure). Used by RLValue.
	Pressure float64
}

// Assignment is one member's share of the global budget.
type Assignment struct {
	ID string `json:"id"`
	W  int    `json:"w"`
}

// Total sums the budget of an assignment list.
func Total(as []Assignment) int {
	t := 0
	for _, a := range as {
		t += a.W
	}
	return t
}

// Allocate splits budget points across members using the given
// strategy. The result is sorted by member ID and is deterministic: the
// same members (in any order) and budget always produce the identical
// assignment. Invariants on success:
//
//   - every assignment receives at least MinPerMember points,
//   - the assignments sum to exactly budget (so the global budget is
//     never exceeded and never silently undershot),
//   - an empty member list yields an empty, nil-error assignment.
//
// Allocate returns an error when the budget cannot cover
// MinPerMember·len(members), when member IDs are empty or duplicated,
// or when a member carries a negative/non-finite statistic.
func Allocate(strategy Strategy, members []Member, budget int) ([]Assignment, error) {
	if len(members) == 0 {
		return nil, nil
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i, m := range ms {
		if m.ID == "" {
			return nil, fmt.Errorf("fleet: member %d has empty id", i)
		}
		if i > 0 && ms[i-1].ID == m.ID {
			return nil, fmt.Errorf("fleet: duplicate member id %q", m.ID)
		}
		if m.Len < 0 {
			return nil, fmt.Errorf("fleet: member %q has negative length %d", m.ID, m.Len)
		}
		if m.Err < 0 || math.IsNaN(m.Err) || math.IsInf(m.Err, 0) {
			return nil, fmt.Errorf("fleet: member %q has invalid error %v", m.ID, m.Err)
		}
		if m.Pressure < 0 || math.IsNaN(m.Pressure) || math.IsInf(m.Pressure, 0) {
			return nil, fmt.Errorf("fleet: member %q has invalid pressure %v", m.ID, m.Pressure)
		}
	}
	floor := MinPerMember * len(ms)
	if budget < floor {
		return nil, fmt.Errorf("fleet: budget %d cannot cover %d members at %d points each",
			budget, len(ms), MinPerMember)
	}
	extra := budget - floor

	var ws []float64
	switch strategy {
	case Proportional:
		ws = lengthWeights(ms)
		return apportion(ms, ws, extra), nil
	case ErrorGreedy:
		ws = descentWeights(ms, func(m Member) float64 { return m.Err })
	case RLValue:
		ws = descentWeights(ms, func(m Member) float64 { return m.Pressure })
	default:
		return nil, fmt.Errorf("fleet: unknown strategy %d", int(strategy))
	}
	if ws == nil {
		// Every member reported a zero signal (fresh fleet, identical
		// near-collinear streams): nothing distinguishes them, so fall
		// back to the proportional baseline rather than starving all.
		return apportion(ms, lengthWeights(ms), extra), nil
	}
	return descend(ms, ws, extra), nil
}

// lengthWeights returns proportional weights from member lengths,
// degrading to equal shares when the fleet has seen no points at all.
func lengthWeights(ms []Member) []float64 {
	ws := make([]float64, len(ms))
	total := 0.0
	for i, m := range ms {
		ws[i] = float64(m.Len)
		total += ws[i]
	}
	if total == 0 {
		for i := range ws {
			ws[i] = 1
		}
	}
	return ws
}

// descentWeights builds the per-member numerator E_i·L_i of the
// marginal-gain score, or nil when every member's signal is zero.
func descentWeights(ms []Member, signal func(Member) float64) []float64 {
	ws := make([]float64, len(ms))
	any := false
	for i, m := range ms {
		// A zero-length member still gets weight from its signal: a
		// fresh stream with pending pressure should not be starved.
		l := float64(m.Len)
		if l < 1 {
			l = 1
		}
		ws[i] = signal(m) * l
		if ws[i] > 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return ws
}

// apportion distributes extra points over weights by the largest-
// remainder method on top of the MinPerMember floor. Ties in remainder
// break by member index, i.e. by ID — deterministic.
func apportion(ms []Member, ws []float64, extra int) []Assignment {
	total := 0.0
	for _, w := range ws {
		total += w
	}
	out := make([]Assignment, len(ms))
	type rem struct {
		i int
		r float64
	}
	rems := make([]rem, len(ms))
	given := 0
	for i := range ms {
		exact := float64(extra) * ws[i] / total
		fl := math.Floor(exact)
		out[i] = Assignment{ID: ms[i].ID, W: MinPerMember + int(fl)}
		given += int(fl)
		rems[i] = rem{i: i, r: exact - fl}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].r != rems[b].r {
			return rems[a].r > rems[b].r
		}
		return rems[a].i < rems[b].i
	})
	for k := 0; k < extra-given; k++ {
		out[rems[k%len(rems)].i].W++
	}
	return out
}

// descend grants extra points one at a time to the member with the
// largest marginal gain w_i/(cur_i·(cur_i+1)), the standard greedy
// solution to minimising Σ w_i/cur_i under Σ cur_i = budget. Ties break
// by member index. O(extra · log n); fleet budgets are session buffer
// sums, well within that.
func descend(ms []Member, ws []float64, extra int) []Assignment {
	out := make([]Assignment, len(ms))
	h := make(gainHeap, len(ms))
	for i := range ms {
		out[i] = Assignment{ID: ms[i].ID, W: MinPerMember}
		h[i] = gain{i: i, w: ws[i], cur: MinPerMember}
	}
	heap.Init(&h)
	for k := 0; k < extra; k++ {
		g := &h[0]
		out[g.i].W++
		g.cur++
		heap.Fix(&h, 0)
	}
	return out
}

type gain struct {
	i   int
	w   float64
	cur int
}

func (g gain) score() float64 {
	return g.w / (float64(g.cur) * float64(g.cur+1))
}

type gainHeap []gain

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(a, b int) bool {
	sa, sb := h[a].score(), h[b].score()
	if sa != sb {
		return sa > sb
	}
	return h[a].i < h[b].i
}
func (h gainHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(gain)) }
func (h *gainHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
