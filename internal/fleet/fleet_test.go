package fleet

import (
	"math"
	"math/rand"
	"testing"
)

func assertInvariants(t *testing.T, as []Assignment, members []Member, budget int) {
	t.Helper()
	if len(as) != len(members) {
		t.Fatalf("got %d assignments for %d members", len(as), len(members))
	}
	if got := Total(as); got != budget {
		t.Fatalf("assignments sum to %d, budget is %d", got, budget)
	}
	for _, a := range as {
		if a.W < MinPerMember {
			t.Fatalf("member %s assigned %d < MinPerMember", a.ID, a.W)
		}
	}
	for i := 1; i < len(as); i++ {
		if as[i-1].ID >= as[i].ID {
			t.Fatalf("assignments not sorted by id: %s before %s", as[i-1].ID, as[i].ID)
		}
	}
}

func byID(as []Assignment) map[string]int {
	m := make(map[string]int, len(as))
	for _, a := range as {
		m[a.ID] = a.W
	}
	return m
}

func TestAllocateInvariantsAllStrategies(t *testing.T) {
	members := []Member{
		{ID: "a", Len: 1000, Err: 0.5, Pressure: 0.1},
		{ID: "b", Len: 200, Err: 2.0, Pressure: 0.9},
		{ID: "c", Len: 5000, Err: 0.01, Pressure: 0.02},
		{ID: "d", Len: 1, Err: 0, Pressure: 0},
	}
	for _, s := range Strategies() {
		for _, budget := range []int{8, 9, 100, 1234} {
			as, err := Allocate(s, members, budget)
			if err != nil {
				t.Fatalf("%s budget %d: %v", s, budget, err)
			}
			assertInvariants(t, as, members, budget)
		}
	}
}

// TestAllocateDeterministic: shuffled member order must not change the
// result — the check harness diffs repeated runs byte for byte.
func TestAllocateDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	members := make([]Member, 20)
	for i := range members {
		members[i] = Member{
			ID:       string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Len:      r.Intn(5000) + 1,
			Err:      r.Float64() * 3,
			Pressure: r.Float64(),
		}
	}
	for _, s := range Strategies() {
		base, err := Allocate(s, members, 700)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			shuffled := make([]Member, len(members))
			copy(shuffled, members)
			r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			got, err := Allocate(s, shuffled, 700)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(base) {
				t.Fatalf("%s: length changed across shuffles", s)
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("%s: assignment %d differs across shuffles: %+v vs %+v", s, i, got[i], base[i])
				}
			}
		}
	}
}

func TestAllocateProportionalTracksLength(t *testing.T) {
	members := []Member{
		{ID: "long", Len: 9000},
		{ID: "short", Len: 1000},
	}
	as, err := Allocate(Proportional, members, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got := byID(as)
	// 996 extra over 9:1 weights on top of the 2-point floors.
	if got["long"] < 890 || got["short"] > 110 {
		t.Fatalf("proportional split off: %v", got)
	}
}

func TestAllocateErrorGreedyFavoursHighError(t *testing.T) {
	members := []Member{
		{ID: "smooth", Len: 1000, Err: 0.001},
		{ID: "rough", Len: 1000, Err: 1.0},
	}
	as, err := Allocate(ErrorGreedy, members, 200)
	if err != nil {
		t.Fatal(err)
	}
	got := byID(as)
	if got["rough"] <= got["smooth"] {
		t.Fatalf("error-greedy did not favour the high-error member: %v", got)
	}
	// Same lengths, ~1000x error ratio: the rough stream should take the
	// bulk of the budget, not a marginal edge.
	if got["rough"] < 150 {
		t.Fatalf("error-greedy split too timid: %v", got)
	}
}

func TestAllocateRLValueFavoursHighPressure(t *testing.T) {
	members := []Member{
		{ID: "calm", Len: 500, Err: 0.5, Pressure: 0.01},
		{ID: "hot", Len: 500, Err: 0.5, Pressure: 0.8},
	}
	as, err := Allocate(RLValue, members, 100)
	if err != nil {
		t.Fatal(err)
	}
	got := byID(as)
	if got["hot"] <= got["calm"] {
		t.Fatalf("rl-value did not favour the high-pressure member: %v", got)
	}
}

// TestAllocateZeroSignalFallsBack: a fleet where every member reports a
// zero signal (all-identical, near-collinear streams) degrades to the
// proportional split instead of an arbitrary one.
func TestAllocateZeroSignalFallsBack(t *testing.T) {
	members := []Member{
		{ID: "a", Len: 300},
		{ID: "b", Len: 100},
	}
	want, err := Allocate(Proportional, members, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{ErrorGreedy, RLValue} {
		got, err := Allocate(s, members, 100)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s zero-signal allocation differs from proportional: %+v vs %+v", s, got[i], want[i])
			}
		}
	}
}

func TestAllocateDegenerateFleets(t *testing.T) {
	for _, s := range Strategies() {
		// Empty fleet: empty allocation, no error.
		as, err := Allocate(s, nil, 100)
		if err != nil || len(as) != 0 {
			t.Fatalf("%s empty fleet: %v %v", s, as, err)
		}
		// Single member takes the whole budget.
		as, err = Allocate(s, []Member{{ID: "only", Len: 50, Err: 0.3, Pressure: 0.2}}, 77)
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != 1 || as[0].W != 77 {
			t.Fatalf("%s single member: %+v", s, as)
		}
		// All-identical members split evenly (up to the ±1 remainder).
		members := []Member{
			{ID: "a", Len: 100, Err: 0.5, Pressure: 0.5},
			{ID: "b", Len: 100, Err: 0.5, Pressure: 0.5},
			{ID: "c", Len: 100, Err: 0.5, Pressure: 0.5},
		}
		as, err = Allocate(s, members, 100)
		if err != nil {
			t.Fatal(err)
		}
		assertInvariants(t, as, members, 100)
		for _, a := range as {
			if a.W < 33 || a.W > 34 {
				t.Fatalf("%s identical members split unevenly: %+v", s, as)
			}
		}
	}
}

func TestAllocateRejectsBadInput(t *testing.T) {
	ok := []Member{{ID: "a", Len: 10}, {ID: "b", Len: 10}}
	cases := []struct {
		name    string
		members []Member
		budget  int
	}{
		{"budget below floor", ok, 3},
		{"empty id", []Member{{ID: "", Len: 10}}, 10},
		{"duplicate id", []Member{{ID: "x", Len: 1}, {ID: "x", Len: 2}}, 10},
		{"negative length", []Member{{ID: "a", Len: -1}}, 10},
		{"NaN error", []Member{{ID: "a", Len: 1, Err: math.NaN()}}, 10},
		{"negative error", []Member{{ID: "a", Len: 1, Err: -0.5}}, 10},
		{"infinite pressure", []Member{{ID: "a", Len: 1, Pressure: math.Inf(1)}}, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, s := range Strategies() {
				if _, err := Allocate(s, c.members, c.budget); err == nil {
					t.Fatalf("%s accepted bad input", s)
				}
			}
		})
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %s: %v %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Fatal("unknown strategy parsed")
	}
	if s, err := ParseStrategy(""); err != nil || s != Proportional {
		t.Fatalf("empty strategy should default to proportional: %v %v", s, err)
	}
}
