package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fuzzHandler is one baselines-only hardened handler shared by the fuzz
// targets: construction is not what's under test, the request paths are.
var (
	fuzzOnce sync.Once
	fuzzH    http.Handler
)

func fuzzServer() http.Handler {
	fuzzOnce.Do(func() {
		fuzzH = NewWith(nil, Config{MaxConcurrent: -1, RequestTimeout: -1}).Handler()
	})
	return fuzzH
}

// fuzzPost drives one request through the full middleware + handler stack
// and enforces the service's error contract: no panic (Harden would mask
// one as a 500), only expected statuses, and every non-200 body is the
// typed JSON error shape.
func fuzzPost(t *testing.T, path, body string) {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	fuzzServer().ServeHTTP(rr, req)

	switch rr.Code {
	case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
	case http.StatusInternalServerError:
		t.Fatalf("input caused a recovered panic (500): %q -> %s", body, rr.Body.Bytes())
	default:
		t.Fatalf("unexpected status %d for %q", rr.Code, body)
	}
	if rr.Code != http.StatusOK {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" || e.Code == "" {
			t.Fatalf("status %d body is not a typed JSON error: %q", rr.Code, rr.Body.Bytes())
		}
	}
}

func FuzzSimplifyHandler(f *testing.F) {
	seeds := []string{
		`{}`,
		`not json at all`,
		`{"points":[[0,0,0],[1,1,1]]}`,
		`{"algorithm":"uniform","w":2,"points":[[0,0,0],[1,1,1],[2,2,2]]}`,
		`{"algorithm":"bottom-up","ratio":0.5,"points":[[0,0,0],[1,1,1],[2,2,2],[3,3,3]]}`,
		`{"algorithm":"bellman","w":2,"points":[[0,0,0],[1,1,1],[2,2,2]]}`,
		`{"algorithm":"uniform","w":1,"points":[[0,0,0],[1,1,1]]}`,
		`{"algorithm":"uniform","ratio":-1,"points":[[0,0,0],[1,1,1]]}`,
		`{"algorithm":"uniform","ratio":1,"points":[[0,0,0],[1,1,1]]}`,
		`{"algorithm":"uniform","ratio":0.999999,"points":[[0,0,0],[1,1,1]]}`,
		`{"algorithm":"uniform","w":2,"points":[[0,0,0],[NaN,1,1]]}`,
		`{"algorithm":"uniform","w":2,"points":[[0,0,0],[1e999,1,1]]}`,
		`{"algorithm":"uniform","w":2,"points":[[0,0,5],[1,1,1]]}`,
		`{"algorithm":"uniform","w":2,"points":[[0,0,1],[1,1,1]]}`,
		`{"algorithm":"uniform","w":2,"points":[[0,0,0]]}`,
		`{"algorithm":"uniform","w":2,"measure":"DAD","points":[[0,0,0],[1,1,1]]}`,
		`{"algorithm":"rlts","w":2,"measure":"SED","points":[[0,0,0],[1,1,1]]}`,
		`{"w":-9223372036854775808,"points":[[0,0,0],[1,1,1]]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, "/v1/simplify", body)
	})
}

func FuzzStatsHandler(f *testing.F) {
	seeds := []string{
		`{}`,
		`garbage`,
		`{"points":[[0,0,0],[1,1,1]]}`,
		`{"points":[[0,0,0]]}`,
		`{"points":[[0,0,0],[NaN,0,1]]}`,
		`{"points":[[0,0,0],[0,0,0]]}`,
		`{"points":[[1e308,-1e308,0],[0,0,1]]}`,
		`{"points":[]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, "/v1/stats", body)
	})
}
