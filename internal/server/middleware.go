package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"rlts/internal/obs"
)

// Default hardening parameters; see Config.
const (
	DefaultMaxConcurrent  = 64
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxPoints      = 1_000_000
	DefaultDrainTimeout   = 30 * time.Second
	DefaultStreamTTL      = 5 * time.Minute
	DefaultMaxStreams     = 1024
	DefaultStreamShards   = 8
	DefaultMaxHotSessions = 4096
	DefaultMaxBatchItems  = 256
	DefaultBatchWidth     = 64
)

// Config tunes the service's protective middleware. The zero value means
// "use the defaults"; explicit negatives disable individual limits.
type Config struct {
	// MaxConcurrent caps simultaneously-processed requests; excess
	// requests are shed immediately with 429 rather than queued (a loaded
	// simplification server is CPU-bound, so queueing only grows latency).
	// 0 means DefaultMaxConcurrent, negative disables the cap.
	MaxConcurrent int
	// RequestTimeout is the per-request deadline applied to the request
	// context; handlers that honor the context (the policy simplification
	// path does) abort with 504 when it passes. 0 means
	// DefaultRequestTimeout, negative disables.
	RequestTimeout time.Duration
	// MaxPoints caps the trajectory size a single request may carry.
	// 0 means DefaultMaxPoints, negative disables.
	MaxPoints int
	// ErrorLog receives one line per recovered panic (default os.Stderr).
	ErrorLog io.Writer
	// Logger, when non-nil, receives structured request logs: one Debug
	// record per request (route, status, latency, request id) and Warn/
	// Error records for sheds, deadline expiries and recovered panics,
	// each carrying the request id for cross-referencing.
	Logger *slog.Logger
	// Metrics is the registry GET /metrics serves. Everything the serving
	// path records lands here: the middleware's request/shed/panic/deadline
	// series, the streaming session manager's lifecycle series, per-session
	// streamer point counters, and the rlts_simplify_error distributions.
	// Process-wide library metrics (rlts_simplify_runs/steps and the
	// rlts_train_* family) always register in obs.Default(), which is also
	// the default here when nil — so with a nil Metrics one scrape sees
	// everything.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (bypassing
	// shedding and deadlines, like /healthz). Off by default: profiling
	// endpoints leak operational detail and cost CPU, so exposure is an
	// explicit operator decision.
	EnablePprof bool
	// StreamTTL evicts streaming sessions idle for longer than this.
	// 0 means DefaultStreamTTL, negative disables eviction.
	StreamTTL time.Duration
	// MaxStreams caps concurrently open streaming sessions; creates beyond
	// it are rejected with 429. 0 means DefaultMaxStreams, negative
	// disables the cap.
	MaxStreams int
	// StreamShards is the number of lock domains the streaming session
	// store is split across: session ids hash onto shards, each with its
	// own mutex, TTL janitor and LRU accounting, so concurrent session
	// traffic (and a disk write during a spill) contends on 1/N of the
	// keyspace. 0 means DefaultStreamShards, negative means 1.
	StreamShards int
	// SpillDir enables session durability: cold sessions are serialized
	// to this directory (one CRC-sealed file per session, written
	// atomically), rehydrated bit-identically on their next touch, and
	// recovered across restarts. Empty disables spilling — sessions are
	// memory-only, the pre-durability behavior. See DESIGN.md §14.
	SpillDir string
	// MaxHotSessions bounds the sessions held in memory when SpillDir is
	// set; beyond it the least-recently-active sessions spill to disk.
	// 0 means DefaultMaxHotSessions, negative disables the bound (spill
	// happens only on DrainStreams). Ignored without SpillDir.
	MaxHotSessions int
	// SpillWrite, when non-nil, replaces the atomic file write the spill
	// path uses (storage.WriteFileAtomic). It exists for fault-injection
	// tests — a failing SpillWrite must leave sessions live in memory —
	// and for embedders with their own durable medium.
	SpillWrite func(path string, data []byte) error
	// MaxBatchItems caps the trajectories one POST /v1/simplify/batch
	// request may carry; larger batches are refused with 413 (clients
	// split them, the same contract as MaxPoints). 0 means
	// DefaultMaxBatchItems, negative disables the cap.
	MaxBatchItems int
	// BatchWidth caps how many trajectories one BatchEngine shard steps
	// in lockstep; a batch request is split into ceil(items/BatchWidth)
	// shards. Wider shards amortize the network forward further but
	// round-robin more working sets through the cache. 0 means
	// DefaultBatchWidth, negative means one unbounded shard per request.
	BatchWidth int
	// BatchWorkers caps how many shards of one batch request simplify
	// concurrently (each worker owns a policy clone, so results are
	// identical regardless). 0 means GOMAXPROCS, negative means 1.
	BatchWorkers int
	// DisableFast removes the FastMath serving path: no fast policy
	// registry is built, ?fast=1 requests run the exact kernels, and
	// responses report mode "exact". For operators who want the bitwise
	// reproducibility contract with no opt-out, at any request's whim.
	DisableFast bool
	// FleetRebalanceEvery, when positive, rebalances every fleet's
	// allocation on this cadence (see fleet.go) so member budgets track
	// the streams as they grow. Zero or negative disables the janitor;
	// rebalances then happen only on POST /v1/fleet/{id}/rebalance.
	// Off by default because a rebalance mutates member budgets — an
	// operator opts into automatic mutation explicitly.
	FleetRebalanceEvery time.Duration
}

func (c Config) normalized() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = DefaultMaxPoints
	}
	if c.ErrorLog == nil {
		c.ErrorLog = os.Stderr
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.StreamTTL == 0 {
		c.StreamTTL = DefaultStreamTTL
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = DefaultMaxStreams
	}
	switch {
	case c.StreamShards == 0:
		c.StreamShards = DefaultStreamShards
	case c.StreamShards < 0:
		c.StreamShards = 1
	}
	if c.MaxHotSessions == 0 {
		c.MaxHotSessions = DefaultMaxHotSessions
	}
	if c.MaxBatchItems == 0 {
		c.MaxBatchItems = DefaultMaxBatchItems
	}
	if c.BatchWidth == 0 {
		c.BatchWidth = DefaultBatchWidth
	}
	switch {
	case c.BatchWorkers == 0:
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	case c.BatchWorkers < 0:
		c.BatchWorkers = 1
	}
	return c
}

// bypassesHardening reports whether a path skips load shedding and the
// per-request deadline: liveness probes and scrapes must answer while the
// service is saturated, and pprof profiles legitimately run for longer
// than any request deadline.
func bypassesHardening(path string) bool {
	return path == "/healthz" || path == "/metrics" ||
		len(path) >= len("/debug/pprof") && path[:len("/debug/pprof")] == "/debug/pprof"
}

// Harden wraps h with the service's protective and observability
// middleware, outermost first:
//
//   - request identity: X-Request-ID is taken from the request (generated
//     when absent or unusable), echoed on the response and attached to
//     every metric-adjacent log record;
//   - instrumentation: per-route request counters and latency histograms,
//     an in-flight gauge, shed/panic/deadline counters — all in
//     cfg.Metrics — plus structured request logs on cfg.Logger;
//   - panic recovery: a panicking handler becomes a 500 JSON error and a
//     log line, never a dead process (http.ErrAbortHandler is re-raised,
//     as the net/http contract requires);
//   - load shedding: at most MaxConcurrent requests run at once, the rest
//     get an immediate 429 with a Retry-After hint;
//   - deadline: the request context expires after RequestTimeout. 504
//     responses carry Retry-After too (enforced by the status recorder,
//     whichever layer writes the 504).
//
// GET /healthz, GET /metrics and /debug/pprof bypass shedding and
// deadline so probes, scrapes and profiles still answer while the service
// is saturated. Harden is exported separately from Server so tests (and
// other services) can wrap arbitrary handlers.
func Harden(h http.Handler, cfg Config) http.Handler {
	cfg = cfg.normalized()
	met := newMetricsSet(cfg.Metrics)
	inner := h
	var sem chan struct{}
	if cfg.MaxConcurrent > 0 {
		sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid))

		route := routeLabel(r.URL.Path)
		sr := &statusRecorder{ResponseWriter: w}
		w = sr
		start := time.Now()
		defer func() {
			rec := recover()
			if rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				met.panics.Inc()
				fmt.Fprintf(cfg.ErrorLog, "server: panic serving %s %s: %v\n", r.Method, r.URL.Path, rec)
				if cfg.Logger != nil {
					cfg.Logger.Error("panic recovered", "request_id", rid,
						"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(rec))
				}
				httpError(w, http.StatusInternalServerError, codeInternal, "internal server error")
			}
			status := sr.Status()
			if status == http.StatusGatewayTimeout {
				met.deadlines.Inc()
			}
			elapsed := time.Since(start).Seconds()
			met.request(route, fmt.Sprintf("%d", status)).Inc()
			met.latency(route).Observe(elapsed)
			if cfg.Logger != nil {
				level := slog.LevelDebug
				if status >= 500 {
					level = slog.LevelWarn
				}
				cfg.Logger.Log(r.Context(), level, "request",
					"request_id", rid, "method", r.Method, "route", route,
					"status", status, "seconds", elapsed)
			}
		}()
		if bypassesHardening(r.URL.Path) {
			inner.ServeHTTP(w, r)
			return
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			default:
				met.shed.Inc()
				if cfg.Logger != nil {
					cfg.Logger.Warn("request shed", "request_id", rid,
						"method", r.Method, "route", route)
				}
				httpError(w, http.StatusTooManyRequests, codeOverloaded, "server at capacity, retry later")
				return
			}
		}
		met.inflight.Inc()
		defer met.inflight.Dec()
		if cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		inner.ServeHTTP(w, r)
	})
}

// Serve runs srv until ctx is canceled (typically by SIGTERM via
// signal.NotifyContext), then shuts down gracefully: the listener closes,
// in-flight requests get up to drain to finish, and only then does Serve
// return. A nil error means a clean start-to-drain lifecycle.
func Serve(ctx context.Context, srv *http.Server, drain time.Duration) error {
	addr := srv.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, srv, ln, drain)
}

// ServeListener is Serve on an existing listener (which it takes ownership
// of). Split out so tests can bind port 0 first and learn the address.
func ServeListener(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(sctx)
		<-errc // Serve has returned ErrServerClosed by now
		if err != nil {
			return fmt.Errorf("server: drain incomplete after %v: %w", drain, err)
		}
		return nil
	}
}
