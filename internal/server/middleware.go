package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"
)

// Default hardening parameters; see Config.
const (
	DefaultMaxConcurrent  = 64
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxPoints      = 1_000_000
	DefaultDrainTimeout   = 30 * time.Second
)

// Config tunes the service's protective middleware. The zero value means
// "use the defaults"; explicit negatives disable individual limits.
type Config struct {
	// MaxConcurrent caps simultaneously-processed requests; excess
	// requests are shed immediately with 429 rather than queued (a loaded
	// simplification server is CPU-bound, so queueing only grows latency).
	// 0 means DefaultMaxConcurrent, negative disables the cap.
	MaxConcurrent int
	// RequestTimeout is the per-request deadline applied to the request
	// context; handlers that honor the context (the policy simplification
	// path does) abort with 504 when it passes. 0 means
	// DefaultRequestTimeout, negative disables.
	RequestTimeout time.Duration
	// MaxPoints caps the trajectory size a single request may carry.
	// 0 means DefaultMaxPoints, negative disables.
	MaxPoints int
	// ErrorLog receives one line per recovered panic (default os.Stderr).
	ErrorLog io.Writer
}

func (c Config) normalized() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = DefaultMaxPoints
	}
	if c.ErrorLog == nil {
		c.ErrorLog = os.Stderr
	}
	return c
}

// Harden wraps h with the service's protective middleware, outermost
// first:
//
//   - panic recovery: a panicking handler becomes a 500 JSON error and a
//     log line, never a dead process (http.ErrAbortHandler is re-raised,
//     as the net/http contract requires);
//   - load shedding: at most MaxConcurrent requests run at once, the rest
//     get an immediate 429 with a Retry-After hint;
//   - deadline: the request context expires after RequestTimeout.
//
// GET /healthz bypasses shedding and deadline so liveness probes still
// answer while the service is saturated. Harden is exported separately
// from Server so tests (and other services) can wrap arbitrary handlers.
func Harden(h http.Handler, cfg Config) http.Handler {
	cfg = cfg.normalized()
	inner := h
	var sem chan struct{}
	if cfg.MaxConcurrent > 0 {
		sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				fmt.Fprintf(cfg.ErrorLog, "server: panic serving %s %s: %v\n", r.Method, r.URL.Path, rec)
				httpError(w, http.StatusInternalServerError, codeInternal, "internal server error")
			}
		}()
		if r.URL.Path == "/healthz" {
			inner.ServeHTTP(w, r)
			return
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			default:
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, codeOverloaded, "server at capacity, retry later")
				return
			}
		}
		if cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		inner.ServeHTTP(w, r)
	})
}

// Serve runs srv until ctx is canceled (typically by SIGTERM via
// signal.NotifyContext), then shuts down gracefully: the listener closes,
// in-flight requests get up to drain to finish, and only then does Serve
// return. A nil error means a clean start-to-drain lifecycle.
func Serve(ctx context.Context, srv *http.Server, drain time.Duration) error {
	addr := srv.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, srv, ln, drain)
}

// ServeListener is Serve on an existing listener (which it takes ownership
// of). Split out so tests can bind port 0 first and learn the address.
func ServeListener(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(sctx)
		<-errc // Serve has returned ErrServerClosed by now
		if err != nil {
			return fmt.Errorf("server: drain incomplete after %v: %w", drain, err)
		}
		return nil
	}
}
