package server

import (
	"net/http"
	"sync"

	"rlts/internal/core"
)

// FastMath serving. POST /v1/simplify and POST /v1/simplify/batch accept
// ?fast=1: policy inference then runs the fused approximate kernels
// (nn.KernelFast) instead of the exact ones — same decisions on every
// adversarial family, distributions within the measured bounds of
// DESIGN.md §13, at a >1.5x kernel speedup. Every response carries a
// "mode" field ("exact" or "fast") reporting which kernels actually ran:
// heuristic baselines have no fast variant and always report "exact", as
// does a ?fast=1 request against a server built with Config.DisableFast.

const (
	modeExact = "exact"
	modeFast  = "fast"
)

// fastRequested reports whether the request opted into the FastMath
// kernels via the fast query parameter ("1" or "true").
func fastRequested(r *http.Request) bool {
	switch r.URL.Query().Get("fast") {
	case "1", "true":
		return true
	}
	return false
}

// fastPolicies builds the FastMath counterpart of a policy registry: one
// FastClone per registered policy, under the same keys. The exact
// originals are never touched — fast serving is a parallel registry, not
// a mode flag on shared state, so the exact path cannot be contaminated.
func fastPolicies(policies map[string]*core.Trained) map[string]*core.Trained {
	fast := make(map[string]*core.Trained, len(policies))
	for k, p := range policies {
		fast[k] = p.FastClone()
	}
	return fast
}

// policyPools hands exclusive Trained clones to concurrent single-request
// handlers. A policy reuses its forward scratch across calls and is not
// safe for concurrent use, while the hardening middleware admits up to
// MaxConcurrent requests at once — so the single-simplify path checks a
// clone out per request instead of sharing the registered instance.
// Clones inherit the source's kernel selection (rl.Policy.Clone), so the
// pool keyed by a fast registry entry stays fast.
type policyPools struct {
	mu    sync.Mutex
	pools map[*core.Trained]*sync.Pool
}

func newPolicyPools() *policyPools {
	return &policyPools{pools: make(map[*core.Trained]*sync.Pool)}
}

// get checks out an exclusive clone of p, building one on pool miss.
func (pp *policyPools) get(p *core.Trained) *core.Trained {
	pp.mu.Lock()
	pool, ok := pp.pools[p]
	if !ok {
		pool = &sync.Pool{}
		pp.pools[p] = pool
	}
	pp.mu.Unlock()
	if c, ok := pool.Get().(*core.Trained); ok {
		return c
	}
	return &core.Trained{Opts: p.Opts, Policy: p.Policy.Clone()}
}

// put returns a clone checked out with get(p).
func (pp *policyPools) put(p *core.Trained, c *core.Trained) {
	pp.mu.Lock()
	pool := pp.pools[p]
	pp.mu.Unlock()
	pool.Put(c)
}
