package server

// Streaming session API: the HTTP face of core.Streamer, the paper's
// online mode. A session owns one streamer; clients create it with an
// algorithm, measure and buffer budget W, push points as their sensor
// produces them, and snapshot the current simplification at any time.
// Sessions are evicted after sitting idle for Config.StreamTTL.
//
//	POST   /v1/stream             create  {"algorithm","measure","w","sample","seed"}
//	POST   /v1/stream/{id}/points push    {"points": [[x,y,t], ...]}
//	GET    /v1/stream/{id}        snapshot
//	DELETE /v1/stream/{id}        close
//
// Pushed points are validated at this layer with the same traj rules as
// the batch endpoints: finite coordinates and strictly increasing
// timestamps, checked against the session's last accepted point, so a
// duplicate timestamp across two pushes is rejected just like one within
// a single push.

import (
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/obs"
	"rlts/internal/traj"
)

// Stream-specific error codes.
const (
	codeStreamNotFound = "stream_not_found"
	codeTooManyStreams = "too_many_streams"
	codeNotStreamable  = "not_streamable"
)

// streamSession is one live streaming simplification. The mutex
// serializes streamer access: core.Streamer is single-goroutine by
// design, and interleaved pushes from concurrent requests would be
// order-dependent anyway.
type streamSession struct {
	id   string
	algo string

	mu         sync.Mutex
	str        *core.Streamer
	w          int
	last       geo.Point // last accepted point, for cross-push validation
	hasLast    bool
	lastActive time.Time
	// closed is set (under mu) when the session is deleted by the client
	// or the TTL janitor. A handler that fetched the session from the map
	// before removal checks it after acquiring mu, so a push can never
	// land in — and report success against — a dead streamer whose
	// metrics were already flushed.
	closed bool
}

// streamManager owns every session, enforces the session cap and runs
// TTL eviction.
type streamManager struct {
	policies map[string]*core.Trained
	ttl      time.Duration
	max      int
	maxPush  int // per-push point cap (Config.MaxPoints)

	mu       sync.Mutex
	sessions map[string]*streamSession

	active  *obs.Gauge
	created *obs.Counter
	closed  *obs.Counter
	evicted *obs.Counter

	stopJanitor chan struct{}
	stopOnce    sync.Once
}

func newStreamManager(policies map[string]*core.Trained, cfg Config) *streamManager {
	reg := cfg.Metrics
	m := &streamManager{
		policies: policies,
		ttl:      cfg.StreamTTL,
		max:      cfg.MaxStreams,
		maxPush:  cfg.MaxPoints,
		sessions: make(map[string]*streamSession),
		active: reg.Gauge("rlts_stream_sessions_active",
			"Streaming sessions currently open"),
		created: reg.Counter("rlts_stream_sessions_created_total",
			"Streaming sessions ever created"),
		closed: reg.Counter("rlts_stream_sessions_closed_total",
			"Streaming sessions closed by the client"),
		evicted: reg.Counter("rlts_stream_sessions_evicted_total",
			"Streaming sessions evicted after sitting idle past the TTL"),
		stopJanitor: make(chan struct{}),
	}
	if m.ttl > 0 {
		go m.janitor()
	}
	return m
}

// janitor periodically sweeps idle sessions. The tick is a quarter of the
// TTL (floored so tests with millisecond TTLs still converge quickly),
// which bounds over-retention at 1.25×TTL.
func (m *streamManager) janitor() {
	tick := m.ttl / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stopJanitor:
			return
		case now := <-t.C:
			m.evictIdle(now)
		}
	}
}

func (m *streamManager) evictIdle(now time.Time) {
	m.mu.Lock()
	var idle []*streamSession
	for id, s := range m.sessions {
		s.mu.Lock()
		if now.Sub(s.lastActive) > m.ttl {
			// Marking closed under both locks means no handler can slip a
			// push in between the map removal and the final flush.
			s.closed = true
			delete(m.sessions, id)
			idle = append(idle, s)
		}
		s.mu.Unlock()
	}
	m.mu.Unlock()
	for _, s := range idle {
		m.evicted.Inc()
		m.active.Dec()
		s.mu.Lock()
		s.str.FlushMetrics()
		s.mu.Unlock()
	}
}

// stop terminates the janitor goroutine (Server.Close).
func (m *streamManager) stop() {
	m.stopOnce.Do(func() { close(m.stopJanitor) })
}

type streamCreateRequest struct {
	Algorithm string `json:"algorithm"`
	Measure   string `json:"measure"`
	W         int    `json:"w"`
	// Sample turns on stochastic action selection (the paper's online-mode
	// default is sampling; the API defaults to greedy so snapshots are
	// deterministic functions of the pushed points).
	Sample bool  `json:"sample"`
	Seed   int64 `json:"seed"`
}

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	var req streamCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	m := errm.SED
	if req.Measure != "" {
		var err error
		m, err = errm.Parse(req.Measure)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidMeasure, "%v", err)
			return
		}
	}
	algo := strings.ToLower(req.Algorithm)
	if algo == "" {
		algo = "rlts"
	}
	p, ok := s.policies[strings.ToLower(algo+"/"+m.String())]
	if !ok {
		httpError(w, http.StatusBadRequest, codeUnknownAlgorithm,
			"no policy registered for %q with measure %s", algo, m)
		return
	}
	if p.Opts.Variant != core.Online {
		httpError(w, http.StatusBadRequest, codeNotStreamable,
			"%s is a batch variant; only the online variant can stream", p.Opts.Name())
		return
	}
	if req.W < 2 {
		httpError(w, http.StatusBadRequest, codeInvalidBudget, "w must be >= 2, got %d", req.W)
		return
	}
	if s.cfg.MaxPoints > 0 && req.W > s.cfg.MaxPoints {
		httpError(w, http.StatusBadRequest, codeInvalidBudget,
			"w = %d exceeds the %d-point limit", req.W, s.cfg.MaxPoints)
		return
	}
	var rng *rand.Rand
	if req.Sample {
		rng = rand.New(rand.NewSource(req.Seed))
	}
	str, err := core.NewStreamer(p.Policy, req.W, p.Opts, req.Sample, rng)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	// Session metrics belong in the registry GET /metrics serves, not the
	// process-wide default.
	str.UseRegistry(s.cfg.Metrics)
	sess := &streamSession{
		id:         newRequestID(),
		algo:       p.Opts.Name(),
		str:        str,
		w:          req.W,
		lastActive: time.Now(),
	}
	sm := s.streams
	sm.mu.Lock()
	if sm.max > 0 && len(sm.sessions) >= sm.max {
		sm.mu.Unlock()
		httpError(w, http.StatusTooManyRequests, codeTooManyStreams,
			"%d streaming sessions already open", sm.max)
		return
	}
	sm.sessions[sess.id] = sess
	sm.mu.Unlock()
	sm.created.Inc()
	sm.active.Inc()
	writeJSON(w, map[string]interface{}{
		"id":        sess.id,
		"algorithm": sess.algo,
		"measure":   m.String(),
		"w":         req.W,
	})
}

// lookupStream fetches a session by the {id} path value, answering 404
// itself when the session does not exist (never created, closed, or
// evicted).
func (s *Server) lookupStream(w http.ResponseWriter, r *http.Request) *streamSession {
	id := r.PathValue("id")
	s.streams.mu.Lock()
	sess := s.streams.sessions[id]
	s.streams.mu.Unlock()
	if sess == nil {
		httpError(w, http.StatusNotFound, codeStreamNotFound, "no streaming session %q", id)
		return nil
	}
	return sess
}

func (s *Server) handleStreamPush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	sess := s.lookupStream(w, r)
	if sess == nil {
		return
	}
	var req struct {
		Points [][3]float64 `json:"points"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidPoints, "no points in push")
		return
	}
	if s.streams.maxPush > 0 && len(req.Points) > s.streams.maxPush {
		httpError(w, http.StatusRequestEntityTooLarge, codeTooManyPoints,
			"push has %d points, limit is %d", len(req.Points), s.streams.maxPush)
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		httpError(w, http.StatusNotFound, codeStreamNotFound, "no streaming session %q", sess.id)
		return
	}
	// Validate the batch with the shared traj rules, prefixed with the
	// session's last accepted point so cross-push ordering (including
	// duplicate timestamps at the boundary) is enforced identically.
	check := make(traj.Trajectory, 0, len(req.Points)+1)
	if sess.hasLast {
		check = append(check, sess.last)
	}
	for _, p := range req.Points {
		check = append(check, geo.Point{X: p[0], Y: p[1], T: p[2]})
	}
	if err := check.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidPoints, "invalid points: %v", err)
		return
	}
	batch := check
	if sess.hasLast {
		batch = check[1:]
	}
	for _, pt := range batch {
		sess.str.Push(pt)
	}
	sess.last, sess.hasLast = batch[len(batch)-1], true
	sess.lastActive = time.Now()
	writeJSON(w, map[string]interface{}{
		"seen":     sess.str.Seen(),
		"buffered": sess.str.BufferSize(),
	})
}

func (s *Server) handleStreamSession(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleStreamSnapshot(w, r)
	case http.MethodDelete:
		s.handleStreamClose(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET or DELETE only")
	}
}

func (s *Server) handleStreamSnapshot(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		httpError(w, http.StatusNotFound, codeStreamNotFound, "no streaming session %q", sess.id)
		return
	}
	snap := sess.str.Snapshot()
	seen := sess.str.Seen()
	sess.lastActive = time.Now()
	sess.mu.Unlock()
	pts := make([][3]float64, len(snap))
	for i, p := range snap {
		pts[i] = [3]float64{p.X, p.Y, p.T}
	}
	writeJSON(w, map[string]interface{}{
		"algorithm": sess.algo,
		"w":         sess.w,
		"seen":      seen,
		"kept":      len(pts),
		"points":    pts,
	})
}

func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.streams.mu.Lock()
	sess := s.streams.sessions[id]
	delete(s.streams.sessions, id)
	s.streams.mu.Unlock()
	if sess == nil {
		httpError(w, http.StatusNotFound, codeStreamNotFound, "no streaming session %q", id)
		return
	}
	s.streams.closed.Inc()
	s.streams.active.Dec()
	sess.mu.Lock()
	sess.closed = true
	sess.str.FlushMetrics()
	seen := sess.str.Seen()
	sess.mu.Unlock()
	writeJSON(w, map[string]interface{}{"closed": true, "seen": seen})
}
