package server

// Streaming session API: the HTTP face of core.Streamer, the paper's
// online mode. A session owns one streamer; clients create it with an
// algorithm, measure and buffer budget W, push points as their sensor
// produces them, and snapshot the current simplification at any time.
// Sessions are evicted after sitting idle for Config.StreamTTL.
//
//	POST   /v1/stream             create  {"algorithm","measure","w","sample","seed"}
//	GET    /v1/stream             list sessions (id, hot/cold tier, seen, kept)
//	POST   /v1/stream/{id}/points push    {"points": [[x,y,t], ...]}
//	GET    /v1/stream/{id}        snapshot
//	DELETE /v1/stream/{id}        close
//
// Pushed points are validated at this layer with the same traj rules as
// the batch endpoints: finite coordinates and strictly increasing
// timestamps, checked against the session's last accepted point, so a
// duplicate timestamp across two pushes is rejected just like one within
// a single push.
//
// Sessions live in a sharded store: session ids hash across
// Config.StreamShards shards, each with its own lock and TTL janitor, so
// a million sessions never serialize on one mutex and a disk write
// stalls only 1/N of the keyspace. With Config.SpillDir set the store is
// durable and memory-bounded: when a shard holds more than its share of
// Config.MaxHotSessions, the coldest sessions are serialized (versioned
// binary codec, CRC-sealed, written via storage.WriteAtomic) and
// rehydrated on their next push or snapshot, bit-identical to a session
// that never left memory; Server.DrainStreams spills everything for a
// restart. See spill.go and DESIGN.md §14 for the durability model.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/obs"
	"rlts/internal/traj"
)

// Stream-specific error codes.
const (
	codeStreamNotFound = "stream_not_found"
	codeTooManyStreams = "too_many_streams"
	codeNotStreamable  = "not_streamable"
	codeStreamCorrupt  = "stream_spill_corrupt"
	codeStreamBusy     = "stream_busy"
)

// streamSession is one live streaming simplification. The mutex
// serializes streamer access: core.Streamer is single-goroutine by
// design, and interleaved pushes from concurrent requests would be
// order-dependent anyway.
type streamSession struct {
	id   string
	key  string // policy registry key ("algo/measure", lower-case)
	algo string
	seed int64 // sampling seed; the RNG position lives in the streamer

	mu  sync.Mutex
	str *core.Streamer
	// rp, when non-nil, is the session's dirty-input repair stage: raw
	// pushes route through it and only its emitted points reach the
	// streamer. Fixes still sitting in the reordering window are NOT
	// flushed by snapshots or close — like skip-swallowed tails, they are
	// in flight until later fixes push them out (documented in DESIGN.md
	// §17). Spills carry its state as a versioned envelope extension.
	rp *traj.Repairer
	w  int
	// lastActive is the unix-nano time of the last client touch, atomic
	// so the LRU spill scan and the TTL janitor read it without taking
	// every session's lock.
	lastActive atomic.Int64
	// closed is set (under mu) when the session is deleted by the client
	// or the TTL janitor. A handler that fetched the session from the map
	// before removal checks it after acquiring mu, so a push can never
	// land in — and report success against — a dead streamer whose
	// metrics were already flushed.
	closed bool
	// spilled is set (under mu, with the shard lock also held) when the
	// session's state moved to disk. A handler holding a stale pointer
	// re-acquires through the store, which rehydrates from the spill
	// file. The streamer reference is nil while spilled.
	spilled bool
}

// touch records client activity for TTL eviction and LRU spill order.
func (s *streamSession) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// streamShard is one lock domain of the session store.
type streamShard struct {
	mu       sync.Mutex
	sessions map[string]*streamSession
}

// streamManager owns every session, enforces the session cap, runs TTL
// eviction, and — when a spill directory is configured — keeps the hot
// set bounded by spilling cold sessions to disk.
type streamManager struct {
	policies map[string]*core.Trained
	reg      *obs.Registry
	ttl      time.Duration
	max      int // cap on alive sessions (hot + spilled); <= 0 disables
	maxPush  int // per-push point cap (Config.MaxPoints)
	spillDir string
	maxHot   int // per-shard hot budget; <= 0 disables LRU spill

	spillWrite func(path string, data []byte) error

	shards []*streamShard
	// total counts alive sessions, hot and spilled. Creates reserve a
	// slot here BEFORE any counter or map is touched, so concurrent
	// creates can never overshoot max, even momentarily.
	total atomic.Int64

	active  *obs.Gauge // alive sessions (hot + spilled)
	hot     *obs.Gauge // sessions resident in memory
	created *obs.Counter
	closed  *obs.Counter
	evicted *obs.Counter

	spills      *obs.Counter
	rehydrated  *obs.Counter
	spillErrors *obs.Counter
	corrupt     *obs.Counter
	recovered   *obs.Counter

	stopJanitor chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
}

func newStreamManager(policies map[string]*core.Trained, cfg Config) *streamManager {
	reg := cfg.Metrics
	m := &streamManager{
		policies:   policies,
		reg:        reg,
		ttl:        cfg.StreamTTL,
		max:        cfg.MaxStreams,
		maxPush:    cfg.MaxPoints,
		spillDir:   cfg.SpillDir,
		spillWrite: cfg.SpillWrite,
		shards:     make([]*streamShard, cfg.StreamShards),
		active: reg.Gauge("rlts_stream_sessions_active",
			"Streaming sessions currently open (in memory or spilled to disk)"),
		hot: reg.Gauge("rlts_stream_sessions_hot",
			"Streaming sessions resident in memory"),
		created: reg.Counter("rlts_stream_sessions_created_total",
			"Streaming sessions ever created"),
		closed: reg.Counter("rlts_stream_sessions_closed_total",
			"Streaming sessions closed by the client"),
		evicted: reg.Counter("rlts_stream_sessions_evicted_total",
			"Streaming sessions evicted after sitting idle past the TTL"),
		spills: reg.Counter("rlts_stream_spills_total",
			"Session states spilled to disk (LRU pressure or drain)"),
		rehydrated: reg.Counter("rlts_stream_rehydrations_total",
			"Session states rehydrated from disk"),
		spillErrors: reg.Counter("rlts_stream_spill_errors_total",
			"Failed spill writes (session stayed live in memory)"),
		corrupt: reg.Counter("rlts_stream_spill_corrupt_total",
			"Corrupt or unreadable spill files quarantined"),
		recovered: reg.Counter("rlts_stream_sessions_recovered_total",
			"Spilled sessions found by the startup recovery scan"),
		stopJanitor: make(chan struct{}),
	}
	if m.spillWrite == nil {
		m.spillWrite = defaultSpillWrite
	}
	for i := range m.shards {
		m.shards[i] = &streamShard{sessions: make(map[string]*streamSession)}
	}
	if cfg.MaxHotSessions > 0 && m.spillDir != "" {
		m.maxHot = (cfg.MaxHotSessions + len(m.shards) - 1) / len(m.shards)
		if m.maxHot < 1 {
			m.maxHot = 1
		}
	}
	if m.spillDir != "" {
		m.recoveryScan()
	}
	if m.ttl > 0 {
		for _, sh := range m.shards {
			sh := sh
			m.wg.Add(1)
			go func() { defer m.wg.Done(); m.janitor(sh) }()
		}
		if m.spillDir != "" {
			m.wg.Add(1)
			go func() { defer m.wg.Done(); m.spillReaper() }()
		}
	}
	return m
}

// shardFor hashes a session id onto its shard (FNV-1a).
func (m *streamManager) shardFor(id string) *streamShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return m.shards[h.Sum32()%uint32(len(m.shards))]
}

// janitorTick bounds over-retention at 1.25×TTL while letting tests with
// millisecond TTLs converge quickly.
func (m *streamManager) janitorTick() time.Duration {
	tick := m.ttl / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	return tick
}

// janitor periodically sweeps one shard's idle sessions.
func (m *streamManager) janitor(sh *streamShard) {
	t := time.NewTicker(m.janitorTick())
	defer t.Stop()
	for {
		select {
		case <-m.stopJanitor:
			return
		case now := <-t.C:
			m.evictIdleShard(sh, now)
		}
	}
}

func (m *streamManager) evictIdleShard(sh *streamShard, now time.Time) {
	sh.mu.Lock()
	var idle []*streamSession
	for id, s := range sh.sessions {
		s.mu.Lock()
		if now.UnixNano()-s.lastActive.Load() > int64(m.ttl) {
			// Marking closed under both locks means no handler can slip a
			// push in between the map removal and the final flush.
			s.closed = true
			delete(sh.sessions, id)
			idle = append(idle, s)
		}
		s.mu.Unlock()
	}
	sh.mu.Unlock()
	for _, s := range idle {
		m.evicted.Inc()
		m.active.Dec()
		m.hot.Dec()
		m.total.Add(-1)
		s.mu.Lock()
		s.str.FlushMetrics()
		s.mu.Unlock()
	}
}

// evictIdle sweeps every shard; tests drive it by hand.
func (m *streamManager) evictIdle(now time.Time) {
	for _, sh := range m.shards {
		m.evictIdleShard(sh, now)
	}
}

// stop terminates the janitor goroutines (Server.Close).
func (m *streamManager) stop() {
	m.stopOnce.Do(func() { close(m.stopJanitor) })
	m.wg.Wait()
}

type streamCreateRequest struct {
	Algorithm string `json:"algorithm"`
	Measure   string `json:"measure"`
	W         int    `json:"w"`
	// Sample turns on stochastic action selection (the paper's online-mode
	// default is sampling; the API defaults to greedy so snapshots are
	// deterministic functions of the pushed points).
	Sample bool  `json:"sample"`
	Seed   int64 `json:"seed"`
	// Repair opts the session into dirty-input repair: pushes accept
	// out-of-order, duplicated and non-finite fixes and route them
	// through a per-session traj.Repairer instead of strict validation.
	Repair *repairParams `json:"repair,omitempty"`
}

// handleStream dispatches the /v1/stream collection route: POST creates
// a session, GET lists them.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleStreamCreate(w, r)
	case http.MethodGet:
		s.handleStreamList(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	var req streamCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	m := errm.SED
	if req.Measure != "" {
		var err error
		m, err = errm.Parse(req.Measure)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidMeasure, "%v", err)
			return
		}
	}
	algo := strings.ToLower(req.Algorithm)
	if algo == "" {
		algo = "rlts"
	}
	key := strings.ToLower(algo + "/" + m.String())
	p, ok := s.policies[key]
	if !ok {
		httpError(w, http.StatusBadRequest, codeUnknownAlgorithm,
			"no policy registered for %q with measure %s", algo, m)
		return
	}
	if p.Opts.Variant != core.Online {
		httpError(w, http.StatusBadRequest, codeNotStreamable,
			"%s is a batch variant; only the online variant can stream", p.Opts.Name())
		return
	}
	if req.W < 2 {
		httpError(w, http.StatusBadRequest, codeInvalidBudget, "w must be >= 2, got %d", req.W)
		return
	}
	if s.cfg.MaxPoints > 0 && req.W > s.cfg.MaxPoints {
		httpError(w, http.StatusBadRequest, codeInvalidBudget,
			"w = %d exceeds the %d-point limit", req.W, s.cfg.MaxPoints)
		return
	}
	var rng *rand.Rand
	if req.Sample {
		rng = rand.New(rand.NewSource(req.Seed))
	}
	// Each session gets its own policy clone: Probs/Act run on policy-owned
	// forward scratch, so two sessions pushing concurrently on the shared
	// registered instance would race. Clones share nothing mutable.
	str, err := core.NewStreamer(p.Policy.Clone(), req.W, p.Opts, req.Sample, rng)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	// Session metrics belong in the registry GET /metrics serves, not the
	// process-wide default.
	str.UseRegistry(s.cfg.Metrics)
	sess := &streamSession{
		id:   newRequestID(),
		key:  key,
		algo: p.Opts.Name(),
		seed: req.Seed,
		str:  str,
		w:    req.W,
	}
	if req.Repair != nil {
		sess.rp = traj.NewRepairer(req.Repair.config())
	}
	sess.touch()
	sm := s.streams
	// Reserve the slot atomically before anything becomes visible: the
	// cap can never be overshot, not even momentarily in the metrics.
	if sm.max > 0 && sm.total.Add(1) > int64(sm.max) {
		sm.total.Add(-1)
		httpError(w, http.StatusTooManyRequests, codeTooManyStreams,
			"%d streaming sessions already open", sm.max)
		return
	}
	sh := sm.shardFor(sess.id)
	sh.mu.Lock()
	sh.sessions[sess.id] = sess
	// Counters move with the map under the shard lock, so a scrape can
	// never observe more created/active sessions than the cap allows.
	sm.created.Inc()
	sm.active.Inc()
	sm.hot.Inc()
	sm.enforceBudgetLocked(sh, sess)
	sh.mu.Unlock()
	writeJSON(w, map[string]interface{}{
		"id":        sess.id,
		"algorithm": sess.algo,
		"measure":   m.String(),
		"w":         req.W,
		"repair":    sess.rp != nil,
	})
}

// apiError is a deferred httpError: the status/code/message triple of a
// failure, produced by internal helpers (acquireSession, the fleet
// rebalancer) that have no ResponseWriter in hand.
type apiError struct {
	status int
	code   string
	msg    string
}

func apiErrorf(status int, code, format string, args ...interface{}) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// acquireSession fetches the session by id with its mutex HELD and its
// liveness verified, rehydrating from the spill directory on a miss. The
// caller must Unlock it. On failure the returned apiError describes the
// response to send.
func (s *Server) acquireSession(id string) (*streamSession, *apiError) {
	sm := s.streams
	for attempt := 0; attempt < 4; attempt++ {
		sh := sm.shardFor(id)
		sh.mu.Lock()
		sess := sh.sessions[id]
		if sess == nil && sm.spillDir != "" {
			var err error
			sess, err = s.rehydrateLocked(sh, id)
			if err != nil {
				sh.mu.Unlock()
				return nil, apiErrorf(http.StatusNotFound, codeStreamCorrupt,
					"streaming session %q had a corrupt spill file; it was quarantined", id)
			}
		}
		sh.mu.Unlock()
		if sess == nil {
			return nil, apiErrorf(http.StatusNotFound, codeStreamNotFound, "no streaming session %q", id)
		}
		sess.mu.Lock()
		if sess.closed {
			sess.mu.Unlock()
			return nil, apiErrorf(http.StatusNotFound, codeStreamNotFound, "no streaming session %q", id)
		}
		if sess.spilled {
			// Stale pointer: the session moved to disk between the map
			// lookup and this lock. Re-acquire; the store will rehydrate.
			sess.mu.Unlock()
			continue
		}
		return sess, nil
	}
	return nil, apiErrorf(http.StatusTooManyRequests, codeStreamBusy,
		"session %q is thrashing between memory and disk; retry", id)
}

// acquire is acquireSession with the failure written to w. When the
// session cannot be produced, acquire answers the request itself and
// returns nil.
func (s *Server) acquire(w http.ResponseWriter, id string) *streamSession {
	sess, aerr := s.acquireSession(id)
	if aerr != nil {
		httpError(w, aerr.status, aerr.code, "%s", aerr.msg)
		return nil
	}
	return sess
}

func (s *Server) handleStreamPush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Points [][3]float64 `json:"points"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		s.repairMet.reject(codePointsTooShort)
		httpError(w, http.StatusBadRequest, codePointsTooShort, "no points in push")
		return
	}
	if s.streams.maxPush > 0 && len(req.Points) > s.streams.maxPush {
		httpError(w, http.StatusRequestEntityTooLarge, codeTooManyPoints,
			"push has %d points, limit is %d", len(req.Points), s.streams.maxPush)
		return
	}
	sess := s.acquire(w, r.PathValue("id"))
	if sess == nil {
		return
	}
	defer sess.mu.Unlock()
	if sess.rp != nil {
		// Repair mode: raw fixes route through the session's repairer;
		// only its emitted points (strictly increasing by construction,
		// gated against everything emitted before, across pushes) reach
		// the streamer. No strict validation — repairing is the point.
		before := sess.rp.Report()
		skippedBefore := sess.str.Skipped()
		for _, p := range req.Points {
			for _, pt := range sess.rp.Push(geo.Point{X: p[0], Y: p[1], T: p[2]}) {
				sess.str.Push(pt)
			}
		}
		delta := sess.rp.Report().Sub(before)
		s.repairMet.observe(delta)
		sess.touch()
		writeJSON(w, map[string]interface{}{
			"seen":     sess.str.Seen(),
			"buffered": sess.str.BufferSize(),
			"skipped":  sess.str.Skipped() - skippedBefore,
			"pending":  sess.rp.Pending(),
			"repair":   reportJSON(delta),
		})
		return
	}
	// Validate the batch with the shared traj rules, prefixed with the
	// session's last accepted point so cross-push ordering (including
	// duplicate timestamps at the boundary) is enforced identically.
	last, hasLast := sess.str.Last()
	check := make(traj.Trajectory, 0, len(req.Points)+1)
	if hasLast {
		check = append(check, last)
	}
	for _, p := range req.Points {
		check = append(check, geo.Point{X: p[0], Y: p[1], T: p[2]})
	}
	if err := check.Validate(); err != nil {
		code := pointsErrorCode(err)
		s.repairMet.reject(code)
		httpError(w, http.StatusBadRequest, code, "invalid points: %v", err)
		return
	}
	batch := check
	if hasLast {
		batch = check[1:]
	}
	skippedBefore := sess.str.Skipped()
	for _, pt := range batch {
		sess.str.Push(pt)
	}
	sess.touch()
	writeJSON(w, map[string]interface{}{
		"seen":     sess.str.Seen(),
		"buffered": sess.str.BufferSize(),
		"skipped":  sess.str.Skipped() - skippedBefore,
	})
}

// streamListEntry is one row of GET /v1/stream. Tier reports where the
// session's state lives: "hot" (in memory) or "cold" (spilled to disk).
type streamListEntry struct {
	ID        string  `json:"id"`
	Tier      string  `json:"tier"`
	Algorithm string  `json:"algorithm"`
	W         int     `json:"w"`
	Seen      int     `json:"seen"`
	Kept      int     `json:"kept"`
	Error     float64 `json:"error"`
}

func (s *Server) handleStreamList(w http.ResponseWriter, r *http.Request) {
	list := s.listSessions()
	writeJSON(w, map[string]interface{}{"sessions": list, "count": len(list)})
}

// listSessions enumerates every live session, hot and cold, sorted by
// id. Cold sessions are read straight from their spill files — decoding
// an envelope is cheap and a read-only listing must not drag sessions
// back into memory (or quarantine a corrupt file; that is the job of
// the next real touch, which can answer a client properly).
func (s *Server) listSessions() []streamListEntry {
	sm := s.streams
	var out []streamListEntry
	seen := make(map[string]bool)
	for _, sh := range sm.shards {
		sh.mu.Lock()
		hot := make([]*streamSession, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			hot = append(hot, sess)
		}
		sh.mu.Unlock()
		// Session locks are taken outside the shard lock so a slow
		// handler on one session cannot stall the whole shard's listing.
		for _, sess := range hot {
			sess.mu.Lock()
			if sess.closed || sess.spilled {
				sess.mu.Unlock()
				continue
			}
			out = append(out, streamListEntry{
				ID:        sess.id,
				Tier:      "hot",
				Algorithm: sess.algo,
				W:         sess.str.Budget(),
				Seen:      sess.str.Seen(),
				Kept:      len(sess.str.Snapshot()),
				Error:     sess.str.ErrEst(),
			})
			seen[sess.id] = true
			sess.mu.Unlock()
		}
	}
	if sm.spillDir != "" {
		ents, err := os.ReadDir(sm.spillDir)
		if err == nil {
			for _, e := range ents {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, spillExt) {
					continue
				}
				id := strings.TrimSuffix(name, spillExt)
				if !validSpillID(id) || seen[id] {
					continue
				}
				data, err := os.ReadFile(filepath.Join(sm.spillDir, name))
				if err != nil {
					continue
				}
				rec, err := decodeSession(data)
				if err != nil || rec.ID != id {
					continue
				}
				algo := rec.Key
				if p, ok := s.policies[rec.Key]; ok {
					algo = p.Opts.Name()
				}
				st := rec.State
				kept := len(st.Entries)
				// Mirror Streamer.Snapshot: the last accepted point is
				// appended when it is not the buffered tail.
				if st.HasLast && (kept == 0 || st.Last.T > st.Entries[kept-1].P.T) {
					kept++
				}
				out = append(out, streamListEntry{
					ID:        id,
					Tier:      "cold",
					Algorithm: algo,
					W:         st.W,
					Seen:      st.Seen,
					Kept:      kept,
					Error:     st.ErrEst,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Server) handleStreamSession(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleStreamSnapshot(w, r)
	case http.MethodDelete:
		s.handleStreamClose(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET or DELETE only")
	}
}

func (s *Server) handleStreamSnapshot(w http.ResponseWriter, r *http.Request) {
	sess := s.acquire(w, r.PathValue("id"))
	if sess == nil {
		return
	}
	snap := sess.str.Snapshot()
	seen := sess.str.Seen()
	// The live budget, not the creation-time w: a fleet rebalance may
	// have moved it since.
	budget := sess.str.Budget()
	errEst := sess.str.ErrEst()
	sess.touch()
	sess.mu.Unlock()
	pts := make([][3]float64, len(snap))
	for i, p := range snap {
		pts[i] = [3]float64{p.X, p.Y, p.T}
	}
	writeJSON(w, map[string]interface{}{
		"algorithm": sess.algo,
		"w":         budget,
		"seen":      seen,
		"kept":      len(pts),
		"error":     errEst,
		"points":    pts,
	})
}

func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sm := s.streams
	sh := sm.shardFor(id)
	sh.mu.Lock()
	sess := sh.sessions[id]
	if sess == nil {
		// Possibly spilled: close it on disk without paying for a full
		// policy rehydration.
		if sm.spillDir != "" {
			if done := s.closeSpilledLocked(w, sh, id); done {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
		httpError(w, http.StatusNotFound, codeStreamNotFound, "no streaming session %q", id)
		return
	}
	delete(sh.sessions, id)
	sh.mu.Unlock()
	sm.closed.Inc()
	sm.active.Dec()
	sm.hot.Dec()
	sm.total.Add(-1)
	sess.mu.Lock()
	sess.closed = true
	snap := sess.str.Snapshot() // flushes metrics
	seen := sess.str.Seen()
	sess.mu.Unlock()
	writeJSON(w, map[string]interface{}{"closed": true, "seen": seen, "kept": len(snap)})
}
