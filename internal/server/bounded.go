// The error-bounded serving mode: POST /v1/simplify with a "bound"
// field flips the request from Min-Error (fixed budget W, smallest
// error) to Min-Size (fixed error bound, smallest output). Three
// backends serve it:
//
//   - CISED — one-pass SED-bounded (internal/baseline/online)
//   - OPERB — one-pass PED-bounded (internal/baseline/online)
//   - Min-Size search — minsize.SearchBudgetCtx over a registered RL
//     policy (or minsize.Greedy when none matches the measure), the
//     only bounded option for DAD/SAD
//
// The "algorithm" field selects: "" routes by measure (SED→CISED,
// PED→OPERB, DAD/SAD→search), "auto" asks adaptive.RecommendBounded,
// "cised"/"operb" force a one-pass (the measure must match),
// "minsize" forces the search, and a registered policy name runs the
// search over that policy. Every response is re-scored by the exact
// errm.Error oracle and reports "bound_met" honestly — the one-pass
// algorithms guarantee it by construction, the search by verification.
package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strings"

	"rlts/internal/adaptive"
	baseOnline "rlts/internal/baseline/online"
	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/minsize"
	"rlts/internal/obs"
	"rlts/internal/traj"
)

// serveBounded answers a /v1/simplify request that carries "bound".
// The trajectory and measure are already validated by the caller.
func (s *Server) serveBounded(w http.ResponseWriter, r *http.Request, req *simplifyRequest, t traj.Trajectory, m errm.Measure) {
	bound := *req.Bound
	if bound < 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		httpError(w, http.StatusBadRequest, codeInvalidBudget,
			"bound must be finite and >= 0, got %v", bound)
		return
	}
	if req.W != 0 || req.Ratio != 0 {
		httpError(w, http.StatusBadRequest, codeInvalidBudget,
			"bound is mutually exclusive with w/ratio: a request fixes either the error or the budget")
		return
	}
	name, kept, err := s.runBounded(r.Context(), strings.ToLower(req.Algorithm), t, bound, m)
	if err != nil {
		writeRunError(w, err)
		return
	}
	e := errm.Error(m, t, kept)
	met := e <= bound
	s.cfg.Metrics.Counter("rlts_bound_requests_total",
		"Error-bounded simplify requests served, by backend algorithm",
		obs.L("algorithm", name)).Inc()
	if !met {
		s.boundUnmet.Inc()
	}
	resp := simplifyResponse{
		Algorithm: name,
		Mode:      modeExact,
		Kept:      len(kept),
		Of:        len(t),
		Error:     e,
		Bound:     req.Bound,
		BoundMet:  &met,
	}
	core.ObserveErrorIn(s.cfg.Metrics, m, e)
	for _, ix := range kept {
		p := t[ix]
		resp.Points = append(resp.Points, [3]float64{p.X, p.Y, p.T})
	}
	writeJSON(w, &resp)
}

// runBounded routes an error-bounded request to its backend.
func (s *Server) runBounded(ctx context.Context, algo string, t traj.Trajectory, bound float64, m errm.Measure) (string, []int, error) {
	var choice adaptive.BoundedAlgo
	switch algo {
	case "":
		switch m {
		case errm.SED:
			choice = adaptive.BoundedCISED
		case errm.PED:
			choice = adaptive.BoundedOPERB
		default:
			choice = adaptive.BoundedMinSize
		}
	case "auto":
		choice, _ = adaptive.RecommendBounded(t, m)
	case "cised":
		if m != errm.SED {
			return "", nil, fmt.Errorf("server: cised bounds SED only, not %v (omit algorithm to route by measure)", m)
		}
		choice = adaptive.BoundedCISED
	case "operb":
		if m != errm.PED {
			return "", nil, fmt.Errorf("server: operb bounds PED only, not %v (omit algorithm to route by measure)", m)
		}
		choice = adaptive.BoundedOPERB
	case "minsize":
		choice = adaptive.BoundedMinSize
	default:
		// A registered policy name runs the Min-Size search over that
		// policy; anything else is unknown.
		if p, ok := s.policies[algo+"/"+strings.ToLower(m.String())]; ok {
			return s.searchBudget(ctx, p, t, bound, m)
		}
		return "", nil, fmt.Errorf("server: unknown bounded algorithm %q (want cised, operb, minsize, auto or a policy name with a matching measure)", algo)
	}
	switch choice {
	case adaptive.BoundedCISED:
		kept, err := baseOnline.CISED(t, bound)
		return "CISED", kept, err
	case adaptive.BoundedOPERB:
		kept, err := baseOnline.OPERB(t, bound)
		return "OPERB", kept, err
	default:
		return s.searchBudget(ctx, s.policyForMeasure(m), t, bound, m)
	}
}

// policyForMeasure picks the registered policy for m, preferring the
// lexicographically-smallest name for determinism; nil when none match.
func (s *Server) policyForMeasure(m errm.Measure) *core.Trained {
	suffix := "/" + strings.ToLower(m.String())
	var bestKey string
	var best *core.Trained
	for k, p := range s.policies {
		if strings.HasSuffix(k, suffix) && (best == nil || k < bestKey) {
			bestKey, best = k, p
		}
	}
	return best
}

// searchBudget runs the Min-Size binary search over p (an exclusive
// pooled clone, like every policy run), or over minsize.Greedy when no
// policy serves the measure. Greedy is itself bound-respecting, so the
// fallback answers directly without the search.
func (s *Server) searchBudget(ctx context.Context, p *core.Trained, t traj.Trajectory, bound float64, m errm.Measure) (string, []int, error) {
	if p == nil {
		kept, err := minsize.Greedy(t, bound, m)
		return "Min-Size(Greedy)", kept, err
	}
	c := s.simp.get(p)
	defer s.simp.put(p, c)
	kept, err := minsize.SearchBudgetCtx(ctx, t, bound, m, func(tr traj.Trajectory, w int) ([]int, error) {
		return c.SimplifyGreedyCtx(ctx, tr, w)
	})
	return "Min-Size(" + p.Opts.Name() + ")", kept, err
}
