package server

// Fleet API: collective simplification under a shared storage budget.
// A fleet groups streaming sessions under one global point budget and a
// named allocation strategy (internal/fleet); rebalancing reads each
// member's live statistics (points seen, error estimate, policy
// pressure), computes a deterministic per-member budget split, and
// applies it through core.Streamer.SetBudget — shrinks first, so the
// collection never transiently holds more than the global budget.
//
//	POST   /v1/fleet                 create  {"budget","strategy"}
//	GET    /v1/fleet                 list fleets
//	GET    /v1/fleet/{id}            allocation + per-member error report
//	POST   /v1/fleet/{id}/attach     {"session": id}
//	POST   /v1/fleet/{id}/detach     {"session": id}
//	POST   /v1/fleet/{id}/rebalance  recompute and apply the allocation
//	DELETE /v1/fleet/{id}            delete the fleet (sessions survive)
//
// Fleets are durable alongside the sessions they govern: with
// Config.SpillDir set, every mutation persists the fleet record as
// <SpillDir>/<id>.fleet (atomic write, JSON), and a restarted server
// reloads the records at startup. Member budgets themselves live in the
// sessions' own spilled state (StreamerState.W), so an allocation
// survives a full spill/restart cycle without any extra machinery.
//
// A member that disappears (closed by its client, TTL-evicted, or its
// spill file quarantined) is detached automatically at the next
// rebalance and reported in the response; its budget returns to the
// pool. Sessions may exist outside any fleet, but attaching one session
// to two fleets is rejected — two allocators fighting over one W would
// make both budgets meaningless.

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rlts/internal/fleet"
	"rlts/internal/obs"
)

// Fleet-specific error codes.
const (
	codeFleetNotFound = "fleet_not_found"
	codeFleetInvalid  = "fleet_invalid"
	codeFleetMember   = "fleet_member"
)

const fleetExt = ".fleet"

// fleetRecord is one fleet's durable state — exactly what is serialized
// to <id>.fleet. Member statistics are not stored: they are live
// session properties, re-read at every rebalance.
type fleetRecord struct {
	ID       string `json:"id"`
	Budget   int    `json:"budget"`
	Strategy string `json:"strategy"`
	// Members holds the attached session ids, sorted.
	Members []string `json:"members"`
	// Alloc is the most recently applied allocation (empty before the
	// first rebalance).
	Alloc []fleet.Assignment `json:"alloc,omitempty"`
	// Rebalances counts allocation applications over the fleet's life.
	Rebalances int `json:"rebalances"`
}

func (f *fleetRecord) hasMember(id string) bool {
	for _, m := range f.Members {
		if m == id {
			return true
		}
	}
	return false
}

// fleetManager owns every fleet record. One mutex guards the whole map:
// fleet mutations are control-plane operations (a handful per minute),
// not data-plane ones, so sharding would buy nothing.
type fleetManager struct {
	mu     sync.Mutex
	fleets map[string]*fleetRecord
	// owner maps session id -> fleet id, enforcing single-fleet
	// membership.
	owner map[string]string
	dir   string // persistence directory (Config.SpillDir); "" = memory-only
	write func(path string, data []byte) error

	active     *obs.Gauge
	budget     *obs.Gauge
	members    *obs.Gauge
	rebalances *obs.Counter
	moved      *obs.Counter
	memberErr  func(strategy string) *obs.Histogram

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newFleetManager(cfg Config) *fleetManager {
	reg := cfg.Metrics
	m := &fleetManager{
		fleets: make(map[string]*fleetRecord),
		owner:  make(map[string]string),
		dir:    cfg.SpillDir,
		write:  cfg.SpillWrite,
		active: reg.Gauge("rlts_fleet_active",
			"Fleets currently defined"),
		budget: reg.Gauge("rlts_fleet_budget_points",
			"Global point budget summed across all fleets"),
		members: reg.Gauge("rlts_fleet_member_sessions",
			"Streaming sessions attached to a fleet"),
		rebalances: reg.Counter("rlts_fleet_rebalances_total",
			"Fleet allocations computed and applied"),
		moved: reg.Counter("rlts_fleet_budget_moved_total",
			"Budget points moved between sessions by rebalances"),
		memberErr: func(strategy string) *obs.Histogram {
			return reg.Histogram("rlts_fleet_member_error",
				"Per-member error estimates observed at rebalance, by allocation strategy",
				obs.ExpBuckets(1e-4, 4, 14), obs.L("strategy", strategy))
		},
		stop: make(chan struct{}),
	}
	if m.write == nil {
		m.write = defaultSpillWrite
	}
	if m.dir != "" {
		m.load()
	}
	return m
}

// load restores fleet records left by a previous process. Unreadable
// records are quarantined like corrupt session spills: renamed aside for
// the operator, never half-loaded.
func (m *fleetManager) load() {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, fleetExt) {
			continue
		}
		id := strings.TrimSuffix(name, fleetExt)
		if !validSpillID(id) {
			continue
		}
		path := filepath.Join(m.dir, name)
		rec := m.decodeFleetFile(path, id)
		if rec == nil {
			os.Rename(path, path+corruptExt)
			continue
		}
		m.fleets[id] = rec
		for _, sid := range rec.Members {
			m.owner[sid] = id
		}
		m.active.Inc()
		m.budget.Add(float64(rec.Budget))
		m.members.Add(float64(len(rec.Members)))
	}
}

func (m *fleetManager) decodeFleetFile(path, id string) *fleetRecord {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	rec := &fleetRecord{}
	if json.Unmarshal(data, rec) != nil || rec.ID != id ||
		rec.Budget < fleet.MinPerMember || len(rec.Members) > rec.Budget {
		return nil
	}
	if _, err := fleet.ParseStrategy(rec.Strategy); err != nil {
		return nil
	}
	return rec
}

// persist writes the fleet record under the manager lock. A write
// failure leaves the in-memory record authoritative (the same degraded
// mode session spills use); the next mutation retries.
func (m *fleetManager) persist(rec *fleetRecord) {
	if m.dir == "" {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	m.write(filepath.Join(m.dir, rec.ID+fleetExt), data)
}

func (m *fleetManager) shutdown() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

type fleetCreateRequest struct {
	Budget   int    `json:"budget"`
	Strategy string `json:"strategy"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleFleetCreate(w, r)
	case http.MethodGet:
		s.handleFleetList(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleFleetCreate(w http.ResponseWriter, r *http.Request) {
	var req fleetCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	strat, err := fleet.ParseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeFleetInvalid, "%v", err)
		return
	}
	if req.Budget < fleet.MinPerMember {
		httpError(w, http.StatusBadRequest, codeInvalidBudget,
			"fleet budget must be >= %d, got %d", fleet.MinPerMember, req.Budget)
		return
	}
	fm := s.fleets
	rec := &fleetRecord{
		ID:       newRequestID(),
		Budget:   req.Budget,
		Strategy: strat.String(),
	}
	fm.mu.Lock()
	fm.fleets[rec.ID] = rec
	fm.active.Inc()
	fm.budget.Add(float64(rec.Budget))
	fm.persist(rec)
	fm.mu.Unlock()
	writeJSON(w, map[string]interface{}{
		"id":       rec.ID,
		"budget":   rec.Budget,
		"strategy": rec.Strategy,
	})
}

func (s *Server) handleFleetList(w http.ResponseWriter, r *http.Request) {
	fm := s.fleets
	fm.mu.Lock()
	list := make([]map[string]interface{}, 0, len(fm.fleets))
	ids := make([]string, 0, len(fm.fleets))
	for id := range fm.fleets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := fm.fleets[id]
		list = append(list, map[string]interface{}{
			"id":         rec.ID,
			"budget":     rec.Budget,
			"strategy":   rec.Strategy,
			"members":    len(rec.Members),
			"rebalances": rec.Rebalances,
		})
	}
	fm.mu.Unlock()
	writeJSON(w, map[string]interface{}{"fleets": list, "count": len(list)})
}

func (s *Server) handleFleetID(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleFleetGet(w, r)
	case http.MethodDelete:
		s.handleFleetDelete(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET or DELETE only")
	}
}

// fleetMemberReport is one member's row in the GET /v1/fleet/{id}
// response: the applied budget next to the live session statistics the
// next rebalance would see.
type fleetMemberReport struct {
	ID    string  `json:"id"`
	W     int     `json:"w"`
	Tier  string  `json:"tier"`
	Seen  int     `json:"seen"`
	Kept  int     `json:"kept"`
	Error float64 `json:"error"`
}

func (s *Server) handleFleetGet(w http.ResponseWriter, r *http.Request) {
	fm := s.fleets
	id := r.PathValue("id")
	fm.mu.Lock()
	rec, ok := fm.fleets[id]
	var snapshot fleetRecord
	if ok {
		snapshot = *rec
		snapshot.Members = append([]string(nil), rec.Members...)
		snapshot.Alloc = append([]fleet.Assignment(nil), rec.Alloc...)
	}
	fm.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, codeFleetNotFound, "no fleet %q", id)
		return
	}
	// Join the member list against the session listing: a read-only
	// report must not rehydrate cold members just to describe them.
	byID := make(map[string]streamListEntry)
	for _, e := range s.listSessions() {
		byID[e.ID] = e
	}
	report := make([]fleetMemberReport, 0, len(snapshot.Members))
	total := 0
	for _, sid := range snapshot.Members {
		e, live := byID[sid]
		if !live {
			report = append(report, fleetMemberReport{ID: sid, Tier: "gone"})
			continue
		}
		report = append(report, fleetMemberReport{
			ID: sid, W: e.W, Tier: e.Tier, Seen: e.Seen, Kept: e.Kept, Error: e.Error,
		})
		total += e.Kept
	}
	writeJSON(w, map[string]interface{}{
		"id":         snapshot.ID,
		"budget":     snapshot.Budget,
		"strategy":   snapshot.Strategy,
		"rebalances": snapshot.Rebalances,
		"alloc":      snapshot.Alloc,
		"members":    report,
		"kept_total": total,
	})
}

func (s *Server) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	fm := s.fleets
	id := r.PathValue("id")
	fm.mu.Lock()
	rec, ok := fm.fleets[id]
	if ok {
		delete(fm.fleets, id)
		for _, sid := range rec.Members {
			delete(fm.owner, sid)
		}
		fm.active.Dec()
		fm.budget.Add(-float64(rec.Budget))
		fm.members.Add(-float64(len(rec.Members)))
		if fm.dir != "" && validSpillID(id) {
			os.Remove(filepath.Join(fm.dir, id+fleetExt))
		}
	}
	fm.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, codeFleetNotFound, "no fleet %q", id)
		return
	}
	// Members keep their current budgets; they are just no longer
	// governed.
	writeJSON(w, map[string]interface{}{"deleted": true, "members": len(rec.Members)})
}

type fleetMemberRequest struct {
	Session string `json:"session"`
}

func (s *Server) handleFleetAttach(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	var req fleetMemberRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	// Verify the session exists (rehydrating it if cold) BEFORE touching
	// the fleet record, so a typo'd id can never be attached.
	sess, aerr := s.acquireSession(req.Session)
	if aerr != nil {
		httpError(w, aerr.status, aerr.code, "%s", aerr.msg)
		return
	}
	sess.mu.Unlock()
	fm := s.fleets
	fm.mu.Lock()
	defer fm.mu.Unlock()
	rec, ok := fm.fleets[id]
	if !ok {
		httpError(w, http.StatusNotFound, codeFleetNotFound, "no fleet %q", id)
		return
	}
	if owner, taken := fm.owner[req.Session]; taken {
		if owner == id {
			httpError(w, http.StatusConflict, codeFleetMember,
				"session %q is already a member of this fleet", req.Session)
		} else {
			httpError(w, http.StatusConflict, codeFleetMember,
				"session %q already belongs to fleet %q", req.Session, owner)
		}
		return
	}
	if need := fleet.MinPerMember * (len(rec.Members) + 1); need > rec.Budget {
		httpError(w, http.StatusConflict, codeInvalidBudget,
			"fleet budget %d cannot cover %d members at %d points each",
			rec.Budget, len(rec.Members)+1, fleet.MinPerMember)
		return
	}
	rec.Members = append(rec.Members, req.Session)
	sort.Strings(rec.Members)
	fm.owner[req.Session] = id
	fm.members.Inc()
	fm.persist(rec)
	writeJSON(w, map[string]interface{}{"attached": true, "members": len(rec.Members)})
}

func (s *Server) handleFleetDetach(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	var req fleetMemberRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	fm := s.fleets
	fm.mu.Lock()
	defer fm.mu.Unlock()
	rec, ok := fm.fleets[id]
	if !ok {
		httpError(w, http.StatusNotFound, codeFleetNotFound, "no fleet %q", id)
		return
	}
	if !rec.hasMember(req.Session) {
		httpError(w, http.StatusNotFound, codeFleetMember,
			"session %q is not a member of fleet %q", req.Session, id)
		return
	}
	rec.Members = removeString(rec.Members, req.Session)
	rec.Alloc = removeAssignment(rec.Alloc, req.Session)
	delete(fm.owner, req.Session)
	fm.members.Dec()
	fm.persist(rec)
	writeJSON(w, map[string]interface{}{"detached": true, "members": len(rec.Members)})
}

func removeString(list []string, v string) []string {
	out := list[:0]
	for _, x := range list {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func removeAssignment(list []fleet.Assignment, id string) []fleet.Assignment {
	out := list[:0]
	for _, a := range list {
		if a.ID != id {
			out = append(out, a)
		}
	}
	return out
}

func (s *Server) handleFleetRebalance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	result, aerr := s.rebalanceFleet(r.PathValue("id"))
	if aerr != nil {
		httpError(w, aerr.status, aerr.code, "%s", aerr.msg)
		return
	}
	writeJSON(w, result)
}

// rebalanceFleet recomputes and applies one fleet's allocation. It is
// the shared engine behind POST /v1/fleet/{id}/rebalance and the
// periodic janitor.
//
// Three phases, deliberately not under one lock:
//
//  1. read: each member session is acquired in turn and its live
//     statistics (seen, error estimate, policy pressure, current
//     budget) copied out; members that no longer exist are detached.
//  2. allocate: fleet.Allocate on the copied statistics — pure,
//     deterministic.
//  3. apply: SetBudget per member, shrinks before grows, so the sum of
//     live budgets never exceeds the global budget at any instant.
//
// Sessions keep serving pushes between phases; an allocation is a
// statement about the statistics read in phase 1, which is the best any
// allocator of a live system can promise.
func (s *Server) rebalanceFleet(id string) (map[string]interface{}, *apiError) {
	fm := s.fleets
	fm.mu.Lock()
	rec, ok := fm.fleets[id]
	if !ok {
		fm.mu.Unlock()
		return nil, apiErrorf(http.StatusNotFound, codeFleetNotFound, "no fleet %q", id)
	}
	memberIDs := append([]string(nil), rec.Members...)
	budget := rec.Budget
	strategyName := rec.Strategy
	fm.mu.Unlock()
	strat, err := fleet.ParseStrategy(strategyName)
	if err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, codeInternal, "%v", err)
	}

	// Phase 1: read live member statistics.
	members := make([]fleet.Member, 0, len(memberIDs))
	oldW := make(map[string]int, len(memberIDs))
	var lost []string
	for _, sid := range memberIDs {
		sess, aerr := s.acquireSession(sid)
		if aerr != nil {
			if aerr.status == http.StatusTooManyRequests {
				// Thrashing is transient; keep the member, skip this round.
				return nil, aerr
			}
			lost = append(lost, sid)
			continue
		}
		members = append(members, fleet.Member{
			ID:       sid,
			Len:      sess.str.Seen(),
			Err:      sess.str.ErrEst(),
			Pressure: sess.str.PolicyPressure(),
		})
		oldW[sid] = sess.str.Budget()
		sess.mu.Unlock()
	}

	// Phase 2: allocate.
	alloc, err := fleet.Allocate(strat, members, budget)
	if err != nil {
		return nil, apiErrorf(http.StatusConflict, codeInvalidBudget, "%v", err)
	}

	// Phase 3: apply, shrinks before grows. A member that vanished
	// between phases joins the lost list; its share of this round's
	// budget goes unused until the next rebalance, never overspent.
	ordered := append([]fleet.Assignment(nil), alloc...)
	sort.Slice(ordered, func(i, j int) bool {
		di := ordered[i].W - oldW[ordered[i].ID]
		dj := ordered[j].W - oldW[ordered[j].ID]
		if di != dj {
			return di < dj
		}
		return ordered[i].ID < ordered[j].ID
	})
	moved := 0
	applied := 0
	for _, a := range ordered {
		if a.W == oldW[a.ID] {
			continue
		}
		sess, aerr := s.acquireSession(a.ID)
		if aerr != nil {
			lost = append(lost, a.ID)
			continue
		}
		if err := sess.str.SetBudget(a.W); err == nil {
			sess.w = a.W
			if d := a.W - oldW[a.ID]; d > 0 {
				moved += d
			} else {
				moved -= d
			}
			applied++
		}
		sess.mu.Unlock()
	}

	// Record the round.
	fm.mu.Lock()
	if cur, ok := fm.fleets[id]; ok {
		for _, sid := range lost {
			if cur.hasMember(sid) {
				cur.Members = removeString(cur.Members, sid)
				delete(fm.owner, sid)
				fm.members.Dec()
			}
		}
		cur.Alloc = alloc
		cur.Rebalances++
		fm.persist(cur)
	}
	fm.mu.Unlock()
	fm.rebalances.Inc()
	fm.moved.Add(uint64(moved))
	hist := fm.memberErr(strategyName)
	for _, m := range members {
		hist.Observe(m.Err)
	}

	return map[string]interface{}{
		"id":       id,
		"strategy": strategyName,
		"budget":   budget,
		"alloc":    alloc,
		"applied":  applied,
		"moved":    moved,
		"detached": lost,
	}, nil
}

// startFleetJanitor launches the periodic rebalancer when
// Config.FleetRebalanceEvery is positive. Each tick rebalances every
// fleet; errors (a fleet deleted mid-tick, a thrashing member) skip
// that fleet until the next tick.
func (s *Server) startFleetJanitor() {
	every := s.cfg.FleetRebalanceEvery
	if every <= 0 {
		return
	}
	fm := s.fleets
	fm.wg.Add(1)
	go func() {
		defer fm.wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-fm.stop:
				return
			case <-t.C:
				fm.mu.Lock()
				ids := make([]string, 0, len(fm.fleets))
				for id := range fm.fleets {
					ids = append(ids, id)
				}
				fm.mu.Unlock()
				sort.Strings(ids)
				for _, id := range ids {
					s.rebalanceFleet(id)
				}
			}
		}
	}()
}
