package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/obs"
	"rlts/internal/traj"
)

// POST /v1/simplify/batch — bulk simplification. One request carries many
// trajectories; the server simplifies them over core.BatchEngine shards
// (one matrix forward per lockstep round instead of one vector forward
// per point) spread across a bounded worker pool. Items fail
// independently: a malformed trajectory yields an inline per-item error
// while its neighbours still simplify. Like POST /v1/simplify, policies
// run greedy (argmax) inference, so results are deterministic and
// independent of sharding and worker scheduling.
//
// Request:
//
//	{"algorithm": "rlts+", "measure": "SED", "w": 50,   // or "ratio"
//	 "items": [{"points": [[x, y, t], ...], "w": 30},   // per-item override
//	           {"points": ...}, ...]}
//
// Response (one entry per item, in order):
//
//	{"algorithm": "RLTS+", "failed": 1,
//	 "items": [{"kept": 30, "of": 500, "error": 3.2, "points": [...]},
//	           {"failure": {"error": "...", "code": "invalid_points"}}]}

// codeTooManyItems is returned (413) when a batch exceeds
// Config.MaxBatchItems.
const codeTooManyItems = "too_many_items"

// batchItemRequest is one trajectory of a batch request. W and Ratio,
// when set, override the request-level budget for this item.
type batchItemRequest struct {
	Points [][3]float64 `json:"points"`
	W      int          `json:"w,omitempty"`
	Ratio  float64      `json:"ratio,omitempty"`
}

// batchRequest is the wire format of POST /v1/simplify/batch.
type batchRequest struct {
	Algorithm string             `json:"algorithm"`
	Measure   string             `json:"measure"`
	W         int                `json:"w"`
	Ratio     float64            `json:"ratio"`
	Repair    *repairParams      `json:"repair,omitempty"` // opt-in dirty-input repair, applied per item
	Items     []batchItemRequest `json:"items"`
}

// itemFailure is the inline error shape of one failed batch item,
// mirroring the top-level {"error", "code"} contract.
type itemFailure struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// batchItemResult is one item's outcome: the simplification fields on
// success, Failure alone otherwise. Error is a pointer so a perfect 0.0
// simplification error still serializes.
type batchItemResult struct {
	Kept    int               `json:"kept,omitempty"`
	Of      int               `json:"of,omitempty"`
	Error   *float64          `json:"error,omitempty"`
	Repair  *repairReportJSON `json:"repair,omitempty"`
	Points  [][3]float64      `json:"points,omitempty"`
	Failure *itemFailure      `json:"failure,omitempty"`
}

type batchResponse struct {
	Algorithm string            `json:"algorithm"`
	Mode      string            `json:"mode"` // "exact" or "fast" — the kernels that ran
	Failed    int               `json:"failed"`
	Items     []batchItemResult `json:"items"`
}

// batchMetricsSet holds the rlts_batch_* series for one registry.
type batchMetricsSet struct {
	requests *obs.Counter
	items    *obs.Counter
	failures *obs.Counter
	shards   *obs.Counter
	size     *obs.Histogram
}

func newBatchMetricsSet(reg *obs.Registry) *batchMetricsSet {
	return &batchMetricsSet{
		requests: reg.Counter("rlts_batch_requests_total",
			"Accepted POST /v1/simplify/batch requests"),
		items: reg.Counter("rlts_batch_items_total",
			"Trajectories received across batch requests"),
		failures: reg.Counter("rlts_batch_item_failures_total",
			"Batch items that failed with an inline per-item error"),
		shards: reg.Counter("rlts_batch_shards_total",
			"BatchEngine shard runs executed for batch requests"),
		size: reg.Histogram("rlts_batch_request_items",
			"Batch size distribution (items per request)",
			obs.ExpBuckets(1, 2, 11)),
	}
}

// batchRunner owns the per-policy BatchEngine pools and the batch
// metrics. Engines hold policy clones and per-run scratch, so pooling
// them keeps the steady-state request path allocation-light while every
// concurrent worker still gets exclusive scratch.
type batchRunner struct {
	cfg Config
	met *batchMetricsSet

	mu    sync.Mutex
	pools map[*core.Trained]*sync.Pool
}

func newBatchRunner(cfg Config) *batchRunner {
	return &batchRunner{
		cfg:   cfg,
		met:   newBatchMetricsSet(cfg.Metrics),
		pools: make(map[*core.Trained]*sync.Pool),
	}
}

// engine checks an idle engine for p out of the pool, building one (over
// its own policy clone, always greedy — the serving convention) on miss.
func (b *batchRunner) engine(p *core.Trained) (*core.BatchEngine, error) {
	b.mu.Lock()
	pool, ok := b.pools[p]
	if !ok {
		pool = &sync.Pool{}
		b.pools[p] = pool
	}
	b.mu.Unlock()
	if e, ok := pool.Get().(*core.BatchEngine); ok {
		return e, nil
	}
	return core.NewBatchEngine(p.Policy.Clone(), p.Opts, false)
}

func (b *batchRunner) release(p *core.Trained, e *core.BatchEngine) {
	b.mu.Lock()
	pool := b.pools[p]
	b.mu.Unlock()
	pool.Put(e)
}

// itemBudget resolves one item's storage budget (item override first,
// then the request default) without writing to the response, returning
// an inline failure instead.
func itemBudget(req *batchRequest, it *batchItemRequest, n int) (int, *itemFailure) {
	w, ratio := req.W, req.Ratio
	if it.W != 0 || it.Ratio != 0 {
		w, ratio = it.W, it.Ratio
	}
	if w != 0 {
		if w < 2 {
			return 0, &itemFailure{Error: errFmt("w must be >= 2, got %d", w), Code: codeInvalidBudget}
		}
		return w, nil
	}
	if ratio == 0 {
		ratio = 0.1
	}
	if ratio < 0 || ratio >= 1 {
		return 0, &itemFailure{Error: errFmt("ratio must be in (0, 1), got %g", ratio), Code: codeInvalidBudget}
	}
	b := int(ratio * float64(n))
	if b < 2 {
		b = 2
	}
	return b, nil
}

func (s *Server) handleSimplifyBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, codeBadRequest, "batch request needs at least one item")
		return
	}
	if s.cfg.MaxBatchItems > 0 && len(req.Items) > s.cfg.MaxBatchItems {
		httpError(w, http.StatusRequestEntityTooLarge, codeTooManyItems,
			"batch has %d items, limit is %d (split the request)", len(req.Items), s.cfg.MaxBatchItems)
		return
	}
	m := errm.SED
	if req.Measure != "" {
		var err error
		m, err = errm.Parse(req.Measure)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidMeasure, "%v", err)
			return
		}
	}
	key := strings.ToLower(req.Algorithm + "/" + m.String())
	p, ok := s.policies[key]
	if !ok {
		httpError(w, http.StatusBadRequest, codeUnknownAlgorithm,
			"batch simplification serves trained policies only; no policy for algorithm %q with measure %s",
			req.Algorithm, m)
		return
	}
	// FastMath opt-in: swap in the fast registry entry. The engine pools
	// key on the *core.Trained pointer, so fast and exact requests draw
	// from disjoint pools and an engine never changes kernels mid-life.
	mode := modeExact
	if fastRequested(r) {
		if fp, ok := s.fast[key]; ok {
			p, mode = fp, modeFast
			s.fastReq.Inc()
		}
	}
	met := s.batch.met
	met.requests.Inc()
	met.items.Add(uint64(len(req.Items)))
	met.size.Observe(float64(len(req.Items)))

	// Validate every item up front; valid ones become engine jobs.
	results := make([]batchItemResult, len(req.Items))
	type job struct {
		item int
		t    traj.Trajectory
	}
	jobs := make([]job, 0, len(req.Items))
	engineItems := make([]core.BatchItem, 0, len(req.Items))
	for i := range req.Items {
		it := &req.Items[i]
		if s.cfg.MaxPoints > 0 && len(it.Points) > s.cfg.MaxPoints {
			results[i].Failure = &itemFailure{
				Error: errFmt("trajectory has %d points, limit is %d", len(it.Points), s.cfg.MaxPoints),
				Code:  codeTooManyPoints,
			}
			continue
		}
		var t traj.Trajectory
		var err error
		if req.Repair != nil {
			var rep traj.RepairReport
			t, rep, err = traj.Repair(it.Points, req.Repair.config())
			if err != nil {
				s.repairMet.reject(codePointsTooShort)
				results[i].Failure = &itemFailure{Error: errFmt("repair: %v", err), Code: codePointsTooShort}
				continue
			}
			s.repairMet.observe(rep)
			results[i].Repair = reportJSON(rep)
		} else if t, err = traj.FromPoints(it.Points); err != nil {
			code := pointsErrorCode(err)
			s.repairMet.reject(code)
			results[i].Failure = &itemFailure{Error: errFmt("invalid trajectory: %v", err), Code: code}
			continue
		}
		b, fail := itemBudget(&req, it, len(t))
		if fail != nil {
			results[i].Failure = fail
			continue
		}
		jobs = append(jobs, job{item: i, t: t})
		engineItems = append(engineItems, core.BatchItem{T: t, W: b})
	}

	// Shard the valid items over BatchEngine workers. Each shard writes a
	// disjoint range of engineResults, so no locking is needed.
	engineResults := make([]core.BatchResult, len(engineItems))
	width := s.cfg.BatchWidth
	if width <= 0 || width > len(engineItems) {
		width = len(engineItems)
	}
	if width > 0 {
		ctx := r.Context()
		sem := make(chan struct{}, s.cfg.BatchWorkers)
		var wg sync.WaitGroup
		for lo := 0; lo < len(engineItems); lo += width {
			hi := lo + width
			if hi > len(engineItems) {
				hi = len(engineItems)
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(lo, hi int) {
				defer wg.Done()
				defer func() { <-sem }()
				met.shards.Inc()
				eng, err := s.batch.engine(p)
				if err != nil {
					for i := lo; i < hi; i++ {
						engineResults[i] = core.BatchResult{Err: err}
					}
					return
				}
				copy(engineResults[lo:hi], eng.RunCtx(ctx, engineItems[lo:hi]))
				s.batch.release(p, eng)
			}(lo, hi)
		}
		wg.Wait()
		// A request-level deadline or disconnect outranks per-item
		// reporting: answer with the transport shape writeRunError uses.
		if err := ctx.Err(); err != nil {
			writeRunError(w, err)
			return
		}
	}

	failed := 0
	for ji, res := range engineResults {
		i := jobs[ji].item
		if res.Err != nil {
			code := codeBadRequest
			if errors.Is(res.Err, traj.ErrTooShort) {
				code = codeInvalidPoints
			}
			results[i].Failure = &itemFailure{Error: res.Err.Error(), Code: code}
			continue
		}
		t := jobs[ji].t
		e := errm.Error(m, t, res.Kept)
		core.ObserveErrorIn(s.cfg.Metrics, m, e)
		results[i].Kept = len(res.Kept)
		results[i].Of = len(t)
		results[i].Error = &e
		pts := make([][3]float64, 0, len(res.Kept))
		for _, ix := range res.Kept {
			pt := t[ix]
			pts = append(pts, [3]float64{pt.X, pt.Y, pt.T})
		}
		results[i].Points = pts
	}
	for i := range results {
		if results[i].Failure != nil {
			failed++
		}
	}
	met.failures.Add(uint64(failed))
	writeJSON(w, &batchResponse{Algorithm: p.Opts.Name(), Mode: mode, Failed: failed, Items: results})
}

// errFmt is fmt.Sprintf under a name that keeps the failure-construction
// call sites compact.
func errFmt(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
