package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/faultinject"
	"rlts/internal/gen"
)

// errorBody decodes the typed JSON error shape.
func errorBody(t *testing.T, raw []byte) (msg, code string) {
	t.Helper()
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error response is not the typed JSON shape: %v (%q)", err, raw)
	}
	if e.Error == "" || e.Code == "" {
		t.Fatalf("error response missing fields: %q", raw)
	}
	return e.Error, e.Code
}

func TestPanicRecovery(t *testing.T) {
	var logBuf bytes.Buffer
	mux := http.NewServeMux()
	mux.Handle("/panic", faultinject.PanicHandler("boom"))
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fine"))
	})
	ts := httptest.NewServer(Harden(mux, Config{ErrorLog: &logBuf}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/panic")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	if _, code := errorBody(t, buf.Bytes()); code != codeInternal {
		t.Errorf("code = %q, want %q", code, codeInternal)
	}
	if !strings.Contains(logBuf.String(), "boom") {
		t.Errorf("panic not logged: %q", logBuf.String())
	}

	// The process survived; the next request is served normally.
	resp, err = http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server dead after panic: status %d", resp.StatusCode)
	}
}

func TestLoadShedding(t *testing.T) {
	started := make(chan struct{}, 1)
	h := Harden(faultinject.SlowHandler(10*time.Second, started),
		Config{MaxConcurrent: 1, RequestTimeout: -1})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Occupy the single slot, then cancel the occupant when done.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/slow", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if _, code := errorBody(t, buf.Bytes()); code != codeOverloaded {
		t.Errorf("code = %q, want %q", code, codeOverloaded)
	}
	cancel()
	wg.Wait()
}

func TestHealthzBypassesShedding(t *testing.T) {
	started := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.Handle("/slow", faultinject.SlowHandler(10*time.Second, started))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	ts := httptest.NewServer(Harden(mux, Config{MaxConcurrent: 1, RequestTimeout: -1}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/slow", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated server refused liveness probe: status %d", resp.StatusCode)
	}
}

func TestRequestDeadlineViaMiddleware(t *testing.T) {
	// A handler that honors its context sees the deadline imposed by
	// Harden fire.
	h := Harden(faultinject.SlowHandler(10*time.Second, nil),
		Config{RequestTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestSimplifyDeadlineReturns504(t *testing.T) {
	// The real policy path: with a nanosecond budget the context check at
	// the first MDP step fires and the handler answers 504 with the
	// timeout code.
	opts := core.DefaultOptions(errm.SED, core.Plus)
	to := core.DefaultTrainOptions()
	to.RL.Episodes = 2
	trained, _, err := core.Train(gen.New(gen.Geolife(), 1).Dataset(3, 50), opts, to)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith([]*core.Trained{trained}, Config{RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr := gen.New(gen.Geolife(), 2).Dataset(1, 300)[0]
	resp, raw := post(t, ts.URL+"/v1/simplify", map[string]interface{}{
		"algorithm": "rlts+", "measure": "SED", "w": 30, "points": points(tr),
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, raw)
	}
	if _, code := errorBody(t, raw); code != codeTimeout {
		t.Errorf("code = %q, want %q", code, codeTimeout)
	}
}

func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 1)
	h := Harden(faultinject.SlowHandler(200*time.Millisecond, started),
		Config{RequestTimeout: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ServeListener(ctx, srv, ln, 5*time.Second) }()

	type result struct {
		status int
		body   string
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			resc <- result{err: err}
			return
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		resc <- result{status: resp.StatusCode, body: buf.String()}
	}()
	<-started
	cancel() // "SIGTERM" while the request is in flight

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", res.err)
	}
	if res.status != http.StatusOK || res.body != "slow-ok" {
		t.Fatalf("in-flight request got (%d, %q), want (200, slow-ok)", res.status, res.body)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener returned %v after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeListener did not return after drain")
	}

	// The listener is closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestBodyTooLarge(t *testing.T) {
	ts := httptest.NewServer(NewWith(nil, Config{}).Handler())
	defer ts.Close()

	// All-whitespace keeps the JSON decoder reading until it trips the
	// byte limit rather than a syntax error.
	body := bytes.Repeat([]byte(" "), MaxBodyBytes+16)
	resp, err := http.Post(ts.URL+"/v1/simplify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if _, code := errorBody(t, buf.Bytes()); code != codeBodyTooLarge {
		t.Errorf("code = %q, want %q", code, codeBodyTooLarge)
	}
}

func TestTooManyPoints(t *testing.T) {
	ts := httptest.NewServer(NewWith(nil, Config{MaxPoints: 10}).Handler())
	defer ts.Close()

	tr := gen.New(gen.Geolife(), 1).Dataset(1, 11)[0]
	resp, raw := post(t, ts.URL+"/v1/simplify", map[string]interface{}{
		"algorithm": "uniform", "w": 5, "points": points(tr),
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, raw)
	}
	if _, code := errorBody(t, raw); code != codeTooManyPoints {
		t.Errorf("code = %q, want %q", code, codeTooManyPoints)
	}
}

func TestInputValidationCodes(t *testing.T) {
	ts := httptest.NewServer(NewWith(nil, Config{}).Handler())
	defer ts.Close()

	ok := points(gen.New(gen.Geolife(), 1).Dataset(1, 40)[0])
	cases := []struct {
		name   string
		body   interface{}
		status int
		code   string
	}{
		{"w below 2", map[string]interface{}{"algorithm": "uniform", "w": 1, "points": ok}, 400, codeInvalidBudget},
		{"negative ratio", map[string]interface{}{"algorithm": "uniform", "ratio": -0.5, "points": ok}, 400, codeInvalidBudget},
		{"ratio one", map[string]interface{}{"algorithm": "uniform", "ratio": 1.0, "points": ok}, 400, codeInvalidBudget},
		{"ratio above one", map[string]interface{}{"algorithm": "uniform", "ratio": 1.5, "points": ok}, 400, codeInvalidBudget},
		{"single point", map[string]interface{}{"algorithm": "uniform", "w": 2,
			"points": [][3]float64{{0, 0, 0}}}, 400, codePointsTooShort},
		{"unordered timestamps", map[string]interface{}{"algorithm": "uniform", "w": 2,
			"points": [][3]float64{{0, 0, 5}, {1, 1, 1}}}, 400, codePointsUnordered},
		{"duplicate timestamps", map[string]interface{}{"algorithm": "uniform", "w": 2,
			"points": [][3]float64{{0, 0, 1}, {1, 1, 1}}}, 400, codePointsDuplicate},
		{"unknown measure", map[string]interface{}{"algorithm": "uniform", "w": 2, "measure": "XYZ",
			"points": ok}, 400, codeInvalidMeasure},
		{"unknown algorithm", map[string]interface{}{"algorithm": "nope", "w": 2, "points": ok}, 400, codeUnknownAlgorithm},
	}
	for _, tc := range cases {
		resp, raw := post(t, ts.URL+"/v1/simplify", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, raw)
			continue
		}
		if _, code := errorBody(t, raw); code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, code, tc.code)
		}
	}

	// NaN cannot be expressed in JSON at all; it dies in the decoder as a
	// plain bad request, never reaching the algorithms.
	resp, err := http.Post(ts.URL+"/v1/simplify", "application/json",
		strings.NewReader(`{"algorithm":"uniform","w":2,"points":[[0,0,0],[NaN,1,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN literal: status %d, want 400", resp.StatusCode)
	}
	if _, code := errorBody(t, buf.Bytes()); code != codeBadRequest {
		t.Errorf("NaN literal: code %q, want %q", code, codeBadRequest)
	}
}
