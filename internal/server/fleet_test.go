package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"rlts/internal/fleet"
	"rlts/internal/gen"
)

// fleetResponse mirrors the GET /v1/fleet/{id} wire shape.
type fleetResponse struct {
	ID         string             `json:"id"`
	Budget     int                `json:"budget"`
	Strategy   string             `json:"strategy"`
	Rebalances int                `json:"rebalances"`
	Alloc      []fleet.Assignment `json:"alloc"`
	Members    []struct {
		ID    string  `json:"id"`
		W     int     `json:"w"`
		Tier  string  `json:"tier"`
		Seen  int     `json:"seen"`
		Kept  int     `json:"kept"`
		Error float64 `json:"error"`
	} `json:"members"`
	KeptTotal int `json:"kept_total"`
}

func createFleet(t *testing.T, url string, budget int, strategy string) string {
	t.Helper()
	resp, raw := post(t, url+"/v1/fleet", map[string]interface{}{
		"budget": budget, "strategy": strategy,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("create fleet: status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		ID string `json:"id"`
	}
	decodeRaw(t, raw, &out)
	if out.ID == "" {
		t.Fatalf("create fleet returned no id: %s", raw)
	}
	return out.ID
}

func attachSession(t *testing.T, url, fleetID, sessID string) (*http.Response, []byte) {
	t.Helper()
	return post(t, url+"/v1/fleet/"+fleetID+"/attach", map[string]interface{}{"session": sessID})
}

func getFleet(t *testing.T, url, id string) (*http.Response, fleetResponse) {
	t.Helper()
	resp, err := http.Get(url + "/v1/fleet/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fr fleetResponse
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, fr
}

func rebalanceFleet(t *testing.T, url, id string) (int, []fleet.Assignment) {
	t.Helper()
	resp, raw := post(t, url+"/v1/fleet/"+id+"/rebalance", map[string]interface{}{})
	if resp.StatusCode != 200 {
		t.Fatalf("rebalance: status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Applied int                `json:"applied"`
		Alloc   []fleet.Assignment `json:"alloc"`
	}
	decodeRaw(t, raw, &out)
	return out.Applied, out.Alloc
}

// fleetSessions opens n streaming sessions of algorithm algo with budget
// w each and feeds session i a trajectory of leni(i) points.
func fleetSessions(t *testing.T, url, algo string, n, w int, leni func(i int) int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = createStream(t, url, map[string]interface{}{"algorithm": algo, "measure": "SED", "w": w})
		tr := gen.New(gen.Geolife(), int64(41+i)).Dataset(1, leni(i))[0]
		pushPoints(t, url, ids[i], points(tr))
	}
	return ids
}

// TestFleetLifecycle walks the whole fleet API: create, attach, GET
// report, rebalance (allocation invariants, budgets applied to live
// sessions), detach, delete.
func TestFleetLifecycle(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})
	const budget = 60
	fid := createFleet(t, ts.URL, budget, "error-greedy")

	sids := fleetSessions(t, ts.URL, "rlts", 3, 30, func(i int) int { return 100 + 60*i })
	for _, sid := range sids {
		if resp, raw := attachSession(t, ts.URL, fid, sid); resp.StatusCode != 200 {
			t.Fatalf("attach %s: status %d: %s", sid, resp.StatusCode, raw)
		}
	}

	resp, fr := getFleet(t, ts.URL, fid)
	if resp.StatusCode != 200 || len(fr.Members) != 3 {
		t.Fatalf("fleet report: status %d, %d members", resp.StatusCode, len(fr.Members))
	}

	applied, alloc := rebalanceFleet(t, ts.URL, fid)
	if applied == 0 {
		t.Fatal("rebalance applied no budget changes (3x30 into 60 must shrink)")
	}
	if got := fleet.Total(alloc); got != budget {
		t.Fatalf("allocation sums to %d, budget is %d", got, budget)
	}
	for _, a := range alloc {
		if a.W < fleet.MinPerMember {
			t.Fatalf("member %s allocated %d < %d", a.ID, a.W, fleet.MinPerMember)
		}
	}

	// The allocation is live: every member's snapshot reports its new
	// budget, keeps no more than it, and carries the error estimate the
	// allocator used (the satellite "error in snapshot" contract).
	total := 0
	for _, a := range alloc {
		resp, raw := getRaw(t, ts.URL+"/v1/stream/"+a.ID)
		if resp.StatusCode != 200 {
			t.Fatalf("snapshot %s: status %d", a.ID, resp.StatusCode)
		}
		var snap struct {
			W     int     `json:"w"`
			Kept  int     `json:"kept"`
			Error float64 `json:"error"`
		}
		decodeRaw(t, raw, &snap)
		if snap.W != a.W {
			t.Fatalf("member %s snapshot reports w=%d, allocated %d", a.ID, snap.W, a.W)
		}
		// Snapshot may append the last observed point beyond the buffer.
		if snap.Kept > a.W+1 {
			t.Fatalf("member %s keeps %d points with budget %d", a.ID, snap.Kept, a.W)
		}
		if snap.Error <= 0 {
			t.Fatalf("member %s shrank from 30 to %d but reports zero error", a.ID, a.W)
		}
		total += snap.Kept
	}
	if total > budget+len(alloc) {
		t.Fatalf("fleet keeps %d points, budget %d (+%d snapshot tails)", total, budget, len(alloc))
	}

	// Detach one; the fleet forgets it but the session lives on.
	if resp, raw := post(t, ts.URL+"/v1/fleet/"+fid+"/detach",
		map[string]interface{}{"session": sids[0]}); resp.StatusCode != 200 {
		t.Fatalf("detach: status %d: %s", resp.StatusCode, raw)
	}
	if resp, _ := getSnapshot(t, ts.URL, sids[0]); resp.StatusCode != 200 {
		t.Fatal("detached session died")
	}

	// Delete the fleet; members survive ungoverned.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/"+fid, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("delete fleet: status %d", dresp.StatusCode)
	}
	if resp, _ := getFleet(t, ts.URL, fid); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted fleet still answers: %d", resp.StatusCode)
	}
	if resp, _ := getSnapshot(t, ts.URL, sids[1]); resp.StatusCode != 200 {
		t.Fatal("fleet deletion killed a member session")
	}
}

// TestStreamListEndpoint covers the GET /v1/stream satellite: hot and
// cold sessions are enumerated with tier, seen, kept and error.
func TestStreamListEndpoint(t *testing.T) {
	dir := t.TempDir()
	ts, sv, _ := spillServer(t, dir, Config{})

	a := createStream(t, ts.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
	b := createStream(t, ts.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
	pushPoints(t, ts.URL, a, streamPoints(t, 40))
	pushPoints(t, ts.URL, b, streamPoints(t, 60))

	// Spill everything: b should list as cold, straight from its file.
	if err := sv.DrainStreams(); err != nil {
		t.Fatal(err)
	}
	// Touch a so it rehydrates hot again.
	if resp, _ := getSnapshot(t, ts.URL, a); resp.StatusCode != 200 {
		t.Fatal("snapshot after drain failed")
	}

	resp, raw := getRaw(t, ts.URL+"/v1/stream")
	if resp.StatusCode != 200 {
		t.Fatalf("list: status %d: %s", resp.StatusCode, raw)
	}
	var list struct {
		Count    int               `json:"count"`
		Sessions []streamListEntry `json:"sessions"`
	}
	decodeRaw(t, raw, &list)
	if list.Count != 2 || len(list.Sessions) != 2 {
		t.Fatalf("list reports %d sessions, want 2: %s", list.Count, raw)
	}
	tiers := map[string]string{}
	for _, e := range list.Sessions {
		tiers[e.ID] = e.Tier
		if e.Seen == 0 || e.Kept == 0 || e.W != 8 {
			t.Fatalf("entry %+v missing stats", e)
		}
	}
	if tiers[a] != "hot" || tiers[b] != "cold" {
		t.Fatalf("tiers = %v, want a hot / b cold", tiers)
	}
}

// TestFleetSurvivesRestart: fleet records and the budgets they assigned
// must both come back after a drain + restart on the same directory.
func TestFleetSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts, sv, _ := spillServer(t, dir, Config{})

	fid := createFleet(t, ts.URL, 40, "error-greedy")
	sids := fleetSessions(t, ts.URL, "rlts-skip", 2, 25, func(i int) int { return 120 + 80*i })
	for _, sid := range sids {
		if resp, raw := attachSession(t, ts.URL, fid, sid); resp.StatusCode != 200 {
			t.Fatalf("attach: status %d: %s", resp.StatusCode, raw)
		}
	}
	_, alloc := rebalanceFleet(t, ts.URL, fid)

	if err := sv.DrainStreams(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	sv.Close()

	// "Restart": a fresh server over the same spill directory.
	ts2, _, _ := spillServer(t, dir, Config{})
	resp, fr := getFleet(t, ts2.URL, fid)
	if resp.StatusCode != 200 {
		t.Fatalf("fleet lost across restart: status %d", resp.StatusCode)
	}
	if fr.Budget != 40 || fr.Strategy != "error-greedy" || len(fr.Members) != 2 || fr.Rebalances != 1 {
		t.Fatalf("fleet record mutated across restart: %+v", fr)
	}
	for _, a := range alloc {
		resp, raw := getRaw(t, ts2.URL+"/v1/stream/"+a.ID)
		if resp.StatusCode != 200 {
			t.Fatalf("member %s lost across restart", a.ID)
		}
		var snap struct {
			W int `json:"w"`
		}
		decodeRaw(t, raw, &snap)
		if snap.W != a.W {
			t.Fatalf("member %s budget %d across restart, allocated %d", a.ID, snap.W, a.W)
		}
	}
	// The rehydrated fleet still honours the budget: the report's kept
	// total may exceed it only by the per-member snapshot tail (the
	// unbuffered last observation appended by Snapshot), never by
	// stored points.
	if fr.KeptTotal > fr.Budget+len(fr.Members) {
		t.Fatalf("fleet keeps %d points across restart, budget %d (+%d snapshot tails)",
			fr.KeptTotal, fr.Budget, len(fr.Members))
	}
	// And a rebalance on the restarted server still respects the budget.
	_, alloc2 := rebalanceFleet(t, ts2.URL, fid)
	if got := fleet.Total(alloc2); got != 40 {
		t.Fatalf("post-restart allocation sums to %d", got)
	}
}

func TestFleetAttachValidation(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})
	fid := createFleet(t, ts.URL, 10, "proportional")
	sid := createStream(t, ts.URL, map[string]interface{}{"measure": "SED", "w": 5})

	// Unknown session.
	if resp, _ := attachSession(t, ts.URL, fid, "00112233445566ff"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("attach of unknown session: status %d", resp.StatusCode)
	}
	// First attach succeeds; the second is a conflict.
	if resp, raw := attachSession(t, ts.URL, fid, sid); resp.StatusCode != 200 {
		t.Fatalf("attach: status %d: %s", resp.StatusCode, raw)
	}
	if resp, _ := attachSession(t, ts.URL, fid, sid); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double attach: status %d", resp.StatusCode)
	}
	// A session belongs to at most one fleet.
	fid2 := createFleet(t, ts.URL, 10, "proportional")
	if resp, _ := attachSession(t, ts.URL, fid2, sid); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-fleet attach: status %d", resp.StatusCode)
	}
	// The budget floor bounds membership: budget 10 covers 5 members max.
	for i := 0; i < 4; i++ {
		extra := createStream(t, ts.URL, map[string]interface{}{"measure": "SED", "w": 5})
		if resp, raw := attachSession(t, ts.URL, fid, extra); resp.StatusCode != 200 {
			t.Fatalf("attach %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	last := createStream(t, ts.URL, map[string]interface{}{"measure": "SED", "w": 5})
	if resp, _ := attachSession(t, ts.URL, fid, last); resp.StatusCode != http.StatusConflict {
		t.Fatalf("attach beyond budget floor: status %d", resp.StatusCode)
	}
	// Bad create requests.
	if resp, _ := post(t, ts.URL+"/v1/fleet", map[string]interface{}{"budget": 100, "strategy": "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown strategy: status %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/fleet", map[string]interface{}{"budget": 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tiny budget: status %d", resp.StatusCode)
	}
}

// TestFleetRebalanceDetachesDeadMembers: a member closed behind the
// fleet's back is dropped at the next rebalance and its budget returns
// to the pool.
func TestFleetRebalanceDetachesDeadMembers(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})
	fid := createFleet(t, ts.URL, 30, "proportional")
	sids := fleetSessions(t, ts.URL, "rlts", 3, 10, func(i int) int { return 100 })
	for _, sid := range sids {
		attachSession(t, ts.URL, fid, sid)
	}
	deleteStream(t, ts.URL, sids[1])

	_, alloc := rebalanceFleet(t, ts.URL, fid)
	if len(alloc) != 2 {
		t.Fatalf("allocation still covers %d members after one died", len(alloc))
	}
	if got := fleet.Total(alloc); got != 30 {
		t.Fatalf("survivors split %d, want the full 30", got)
	}
	if _, fr := getFleet(t, ts.URL, fid); len(fr.Members) != 2 {
		t.Fatalf("dead member still attached: %+v", fr.Members)
	}
}
