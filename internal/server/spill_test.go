package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/faultinject"
	"rlts/internal/gen"
	"rlts/internal/obs"
	"rlts/internal/rl"
)

// onlineTrainedJ is onlineTrained with skip actions enabled (J > 0), so
// spill tests cover the pending-skip counter and the "skipped" response
// field. Deterministic: the policy weights depend only on the seed.
func onlineTrainedJ(t *testing.T, j int) *core.Trained {
	t.Helper()
	opts := core.Options{Measure: errm.SED, Variant: core.Online, K: 3, J: j}
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return &core.Trained{Opts: opts, Policy: p}
}

// spillServer builds a durable test server over dir with an isolated
// registry and a skip-capable policy.
func spillServer(t *testing.T, dir string, cfg Config) (*httptest.Server, *Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	cfg.SpillDir = dir
	sv := NewWith([]*core.Trained{onlineTrainedJ(t, 2)}, cfg)
	t.Cleanup(sv.Close)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, sv, reg
}

func streamPoints(t *testing.T, n int) [][3]float64 {
	t.Helper()
	return points(gen.New(gen.Geolife(), 31).Dataset(1, n)[0])
}

func pushPoints(t *testing.T, url, id string, pts [][3]float64) (seen, buffered, skipped int) {
	t.Helper()
	resp, raw := post(t, url+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": pts})
	if resp.StatusCode != 200 {
		t.Fatalf("push: status %d: %s", resp.StatusCode, raw)
	}
	var pr struct {
		Seen     int `json:"seen"`
		Buffered int `json:"buffered"`
		Skipped  int `json:"skipped"`
	}
	decodeRaw(t, raw, &pr)
	return pr.Seen, pr.Buffered, pr.Skipped
}

// TestStreamRestartBitIdentical is the PR's acceptance scenario: a server
// killed mid-stream and restarted against the same spill directory
// produces snapshots bit-identical to an uninterrupted run — greedy and
// sampled.
func TestStreamRestartBitIdentical(t *testing.T) {
	pts := streamPoints(t, 160)
	for _, sample := range []bool{false, true} {
		create := map[string]interface{}{
			"algorithm": "rlts-skip", "w": 8, "sample": sample, "seed": 99,
		}

		// The uninterrupted control run.
		tsC, _, _ := spillServer(t, t.TempDir(), Config{})
		idC := createStream(t, tsC.URL, create)
		pushPoints(t, tsC.URL, idC, pts)
		_, want := getSnapshot(t, tsC.URL, idC)

		// The interrupted run: half the points, drain (the SIGTERM path),
		// process "dies", a new process picks up the same directory.
		dir := t.TempDir()
		regA := obs.NewRegistry()
		svA := NewWith([]*core.Trained{onlineTrainedJ(t, 2)},
			Config{Metrics: regA, SpillDir: dir})
		tsA := httptest.NewServer(svA.Handler())
		id := createStream(t, tsA.URL, create)
		pushPoints(t, tsA.URL, id, pts[:80])
		if err := svA.DrainStreams(); err != nil {
			t.Fatalf("sample=%v: drain: %v", sample, err)
		}
		tsA.Close()
		svA.Close()

		tsB, _, regB := spillServer(t, dir, Config{})
		if got := regB.Counter("rlts_stream_sessions_recovered_total", "").Value(); got != 1 {
			t.Errorf("sample=%v: recovered = %d, want 1", sample, got)
		}
		pushPoints(t, tsB.URL, id, pts[80:])
		if got := regB.Counter("rlts_stream_rehydrations_total", "").Value(); got != 1 {
			t.Errorf("sample=%v: rehydrations = %d, want 1", sample, got)
		}
		resp, got := getSnapshot(t, tsB.URL, id)
		if resp.StatusCode != 200 {
			t.Fatalf("sample=%v: snapshot after restart: status %d", sample, resp.StatusCode)
		}
		if got.Seen != want.Seen || len(got.Points) != len(want.Points) {
			t.Fatalf("sample=%v: restarted run diverged: seen %d/%d, kept %d/%d",
				sample, got.Seen, want.Seen, len(got.Points), len(want.Points))
		}
		for i := range got.Points {
			if got.Points[i] != want.Points[i] {
				t.Fatalf("sample=%v: point %d differs after restart: %v vs %v",
					sample, i, got.Points[i], want.Points[i])
			}
		}
	}
}

// TestStreamLRUSpillRehydrate drives the spill path through pure memory
// pressure: with a one-session hot budget, creating a second session
// pushes the first to disk, and touching it again brings it back with
// identical results.
func TestStreamLRUSpillRehydrate(t *testing.T) {
	dir := t.TempDir()
	ts, _, reg := spillServer(t, dir, Config{StreamShards: 1, MaxHotSessions: 1})
	pts := streamPoints(t, 120)

	idA := createStream(t, ts.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
	pushPoints(t, ts.URL, idA, pts[:60])
	time.Sleep(2 * time.Millisecond) // order the LRU scan's clock
	idB := createStream(t, ts.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
	if got := reg.Counter("rlts_stream_spills_total", "").Value(); got == 0 {
		t.Fatal("second create did not spill the cold session")
	}
	if _, err := os.Stat(filepath.Join(dir, idA+".sess")); err != nil {
		t.Fatalf("spilled session has no file: %v", err)
	}
	if got := reg.Gauge("rlts_stream_sessions_hot", "").Value(); got != 1 {
		t.Errorf("hot gauge = %v, want 1", got)
	}
	if got := reg.Gauge("rlts_stream_sessions_active", "").Value(); got != 2 {
		t.Errorf("active gauge = %v, want 2", got)
	}

	// Touch the cold one: it rehydrates (and the other spills in turn).
	pushPoints(t, ts.URL, idA, pts[60:])
	if got := reg.Counter("rlts_stream_rehydrations_total", "").Value(); got == 0 {
		t.Fatal("push to spilled session did not rehydrate")
	}
	if _, err := os.Stat(filepath.Join(dir, idA+".sess")); !os.IsNotExist(err) {
		t.Errorf("rehydrated session still has a spill file (err %v)", err)
	}
	_, got := getSnapshot(t, ts.URL, idA)

	// Control: same pushes, never spilled.
	tsC, _, _ := spillServer(t, t.TempDir(), Config{})
	idC := createStream(t, tsC.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
	pushPoints(t, tsC.URL, idC, pts[:60])
	pushPoints(t, tsC.URL, idC, pts[60:])
	_, want := getSnapshot(t, tsC.URL, idC)
	if got.Seen != want.Seen || len(got.Points) != len(want.Points) {
		t.Fatalf("spill round trip diverged: seen %d/%d kept %d/%d",
			got.Seen, want.Seen, len(got.Points), len(want.Points))
	}
	for i := range got.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs after spill round trip", i)
		}
	}
	_ = idB
}

// TestStreamSpillCorruptQuarantined: damaged spill files 404 with a
// distinct code, increment the corrupt counter, and move aside — the
// server never crashes and never half-restores.
func TestStreamSpillCorruptQuarantined(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"bit flip", func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d }},
		{"garbage", func(d []byte) []byte { return []byte("not a session") }},
		{"empty", func(d []byte) []byte { return nil }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			ts, sv, reg := spillServer(t, dir, Config{})
			id := createStream(t, ts.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
			pushPoints(t, ts.URL, id, streamPoints(t, 40))
			if err := sv.DrainStreams(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, id+".sess")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			resp, raw := getRaw(t, ts.URL+"/v1/stream/"+id)
			if resp.StatusCode != 404 {
				t.Fatalf("snapshot of corrupt session: status %d: %s", resp.StatusCode, raw)
			}
			if !strings.Contains(string(raw), codeStreamCorrupt) {
				t.Errorf("error body %s does not carry code %q", raw, codeStreamCorrupt)
			}
			if got := reg.Counter("rlts_stream_spill_corrupt_total", "").Value(); got != 1 {
				t.Errorf("corrupt counter = %d, want 1", got)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Errorf("corrupt file not quarantined: %v", err)
			}
			// The session is gone now: a second touch is a clean 404.
			resp, raw = getRaw(t, ts.URL+"/v1/stream/"+id)
			if resp.StatusCode != 404 || !strings.Contains(string(raw), codeStreamNotFound) {
				t.Errorf("second touch: status %d body %s, want plain 404", resp.StatusCode, raw)
			}
		})
	}
}

// TestStreamSpillWriteFailureDegrades: when the disk refuses spill
// writes, sessions stay live in memory (pushes and snapshots keep
// working), the error counter grows, and drain reports the loss.
func TestStreamSpillWriteFailureDegrades(t *testing.T) {
	ts, sv, reg := spillServer(t, t.TempDir(), Config{
		StreamShards:   1,
		MaxHotSessions: 1,
		SpillWrite:     faultinject.FailWrites(0, nil),
	})
	pts := streamPoints(t, 80)
	idA := createStream(t, ts.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
	pushPoints(t, ts.URL, idA, pts[:40])
	idB := createStream(t, ts.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
	if got := reg.Counter("rlts_stream_spill_errors_total", "").Value(); got == 0 {
		t.Fatal("failed spill not counted")
	}
	// Both sessions survived the failed spill, over budget but live.
	if seen, _, _ := pushPoints(t, ts.URL, idA, pts[40:]); seen != 80 {
		t.Errorf("session A seen = %d after failed spill, want 80", seen)
	}
	if resp, _ := getSnapshot(t, ts.URL, idB); resp.StatusCode != 200 {
		t.Errorf("session B snapshot: status %d", resp.StatusCode)
	}
	if got := reg.Gauge("rlts_stream_sessions_hot", "").Value(); got != 2 {
		t.Errorf("hot gauge = %v, want 2 (nothing spilled)", got)
	}
	if err := sv.DrainStreams(); err == nil {
		t.Error("drain with a failing disk reported success")
	}
}

// TestStreamCloseSpilledSession: DELETE of a session that lives on disk
// answers seen/kept from the spill file and removes it.
func TestStreamCloseSpilledSession(t *testing.T) {
	dir := t.TempDir()
	ts, sv, reg := spillServer(t, dir, Config{})
	id := createStream(t, ts.URL, map[string]interface{}{"algorithm": "rlts-skip", "w": 8})
	pts := streamPoints(t, 50)
	pushPoints(t, ts.URL, id, pts)
	_, snap := getSnapshot(t, ts.URL, id)
	if err := sv.DrainStreams(); err != nil {
		t.Fatal(err)
	}
	resp, raw := deleteRaw(t, ts.URL, id)
	if resp.StatusCode != 200 {
		t.Fatalf("close spilled: status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Closed bool `json:"closed"`
		Seen   int  `json:"seen"`
		Kept   int  `json:"kept"`
	}
	decodeRaw(t, raw, &out)
	if !out.Closed || out.Seen != snap.Seen || out.Kept != len(snap.Points) {
		t.Errorf("close spilled = %+v, want seen %d kept %d", out, snap.Seen, len(snap.Points))
	}
	if _, err := os.Stat(filepath.Join(dir, id+".sess")); !os.IsNotExist(err) {
		t.Errorf("closed session's spill file not removed (err %v)", err)
	}
	if got := reg.Gauge("rlts_stream_sessions_active", "").Value(); got != 0 {
		t.Errorf("active gauge = %v after close, want 0", got)
	}
}

// TestStreamPushReportsSkippedAndCloseReportsKept covers the response
// contract additions: per-push swallowed-point counts and the final kept
// size on DELETE.
func TestStreamPushReportsSkippedAndCloseReportsKept(t *testing.T) {
	ts, _, _ := spillServer(t, t.TempDir(), Config{})
	id := createStream(t, ts.URL, map[string]interface{}{
		"algorithm": "rlts-skip", "w": 8, "sample": true, "seed": 3,
	})
	pts := streamPoints(t, 200)
	total := 0
	for off := 0; off < len(pts); off += 50 {
		_, _, skipped := pushPoints(t, ts.URL, id, pts[off:off+50])
		if skipped < 0 || skipped > 50 {
			t.Fatalf("push reported skipped = %d of 50", skipped)
		}
		total += skipped
	}
	if total == 0 {
		t.Error("sampled skip policy over 200 points reported no skipped points")
	}
	_, snap := getSnapshot(t, ts.URL, id)
	resp, raw := deleteRaw(t, ts.URL, id)
	if resp.StatusCode != 200 {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	var out struct {
		Seen int `json:"seen"`
		Kept int `json:"kept"`
	}
	decodeRaw(t, raw, &out)
	if out.Kept != len(snap.Points) || out.Seen != 200 {
		t.Errorf("close = %+v, want kept %d seen 200", out, len(snap.Points))
	}
}

// TestStreamTraversalIDsNeverTouchDisk: lookup ids that are not
// well-formed session ids must not reach the filesystem (path traversal
// via /v1/stream/{id}).
func TestStreamTraversalIDsNeverTouchDisk(t *testing.T) {
	dir := t.TempDir()
	ts, _, _ := spillServer(t, dir, Config{})
	secret := filepath.Join(dir, "..", "secret.sess")
	if err := os.WriteFile(secret, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"..%2Fsecret", "ABCDEF0123456789", "0123456789abcde.", "x"} {
		resp, _ := getRaw(t, ts.URL+"/v1/stream/"+id)
		if resp.StatusCode != 404 {
			t.Errorf("id %q: status %d, want 404", id, resp.StatusCode)
		}
	}
	if _, err := os.Stat(secret); err != nil {
		t.Errorf("file outside the spill dir disturbed: %v", err)
	}
}

// TestServerCloseRacesStreamTraffic (run under -race): Server.Close and
// DrainStreams concurrent with in-flight creates, pushes, snapshots,
// deletes and janitor ticks must be free of data races and panics. The
// aggressive TTL keeps the janitors and the spill reaper busy throughout.
func TestServerCloseRacesStreamTraffic(t *testing.T) {
	ts, sv, _ := spillServer(t, t.TempDir(), Config{
		StreamTTL:      20 * time.Millisecond,
		StreamShards:   2,
		MaxHotSessions: 2,
	})
	pts := streamPoints(t, 30)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Best-effort traffic: eviction mid-loop makes 404s legal.
				resp, raw := post(t, ts.URL+"/v1/stream",
					map[string]interface{}{"algorithm": "rlts-skip", "w": 5})
				if resp.StatusCode != 200 {
					continue
				}
				var out struct {
					ID string `json:"id"`
				}
				decodeRaw(t, raw, &out)
				post(t, ts.URL+"/v1/stream/"+out.ID+"/points",
					map[string]interface{}{"points": pts})
				getRaw(t, ts.URL+"/v1/stream/"+out.ID)
				deleteRaw(t, ts.URL, out.ID)
			}
		}()
	}
	time.Sleep(60 * time.Millisecond)
	sv.DrainStreams() // may race new creates; error is acceptable
	sv.Close()        // janitors stop while traffic continues
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func decodeRaw(t *testing.T, raw []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
}

func deleteRaw(t *testing.T, url, id string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/stream/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// FuzzSessionDecode feeds arbitrary bytes to the spill envelope decoder:
// it must error or decode, never panic — and anything it accepts must
// re-encode to an envelope it accepts again (no half-restored records).
func FuzzSessionDecode(f *testing.F) {
	st := &core.StreamerState{W: 4, Seen: 2, HasLast: true}
	st.Last.X, st.Last.Y, st.Last.T = 1, 2, 3
	valid := encodeSession(&sessionRecord{
		ID: "00deadbeef00cafe", Key: "rlts/sed", Seed: 42, LastActive: 1700000000, State: st,
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:5])
	f.Add([]byte{})
	f.Add([]byte("RLSS"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeSession(data)
		if err != nil {
			return
		}
		if rec.State == nil || !validSpillID(rec.ID) || rec.Key == "" {
			t.Fatalf("decoder accepted a half-restored record: %+v", rec)
		}
		again, err := decodeSession(encodeSession(rec))
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if again.ID != rec.ID || again.Key != rec.Key || again.Seed != rec.Seed ||
			again.LastActive != rec.LastActive {
			t.Fatal("envelope round trip changed the record")
		}
	})
}
