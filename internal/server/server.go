// Package server exposes trajectory simplification as an HTTP service —
// the deployment shape of the paper's batch mode (a server holding
// accumulated trajectories that shrinks them before storage or query
// processing). The service is stateless: each request carries a
// trajectory and names an algorithm; trained RLTS policies are registered
// at construction.
//
// Endpoints (JSON in/out):
//
//	GET    /healthz               liveness probe
//	GET    /metrics               Prometheus text-format metrics scrape
//	GET    /v1/algorithms         available algorithm names
//	POST   /v1/simplify           simplify one trajectory
//	POST   /v1/simplify/batch     simplify many trajectories in one request
//	POST   /v1/stats              Table-I-style statistics for a trajectory
//	POST   /v1/stream             open a streaming session (see stream.go)
//	GET    /v1/stream             list streaming sessions
//	POST   /v1/stream/{id}/points push points into a session
//	GET    /v1/stream/{id}        snapshot a session's simplification
//	DELETE /v1/stream/{id}        close a session
//	POST   /v1/fleet              create a fleet (shared budget; see fleet.go)
//	GET    /v1/fleet              list fleets
//	GET    /v1/fleet/{id}         fleet allocation + per-member error report
//	POST   /v1/fleet/{id}/attach  attach a session to a fleet
//	POST   /v1/fleet/{id}/detach  detach a session
//	POST   /v1/fleet/{id}/rebalance recompute and apply the allocation
//	DELETE /v1/fleet/{id}         delete a fleet
//
// With Config.EnablePprof, net/http/pprof is additionally mounted under
// /debug/pprof/.
//
// A simplify request:
//
//	{"algorithm": "rlts+", "measure": "SED", "w": 50,        // or "ratio": 0.1
//	 "points": [[x, y, t], ...]}
//
// and its response:
//
//	{"algorithm": "RLTS+", "mode": "exact", "kept": 50, "of": 500,
//	 "error": 3.21, "points": [[x, y, t], ...]}
//
// POST /v1/simplify and /v1/simplify/batch accept ?fast=1 to run policy
// inference on the FastMath kernels (see fast.go and DESIGN.md §13); the
// response's "mode" field reports which kernels actually ran.
//
// Failures come back as typed JSON errors — {"error": message, "code":
// machine-readable-code} — with the conventional status: 400 for invalid
// input (non-finite coordinates, unordered timestamps, bad budgets), 413
// for oversized bodies or trajectories, 429 under load shedding, 504 when
// the per-request deadline expires, and 500 for recovered panics. The
// Harden middleware (panic recovery, load shedding, deadlines) wraps every
// handler; see middleware.go.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	baseBatch "rlts/internal/baseline/batch"
	baseOnline "rlts/internal/baseline/online"
	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/obs"
	"rlts/internal/traj"
)

// MaxBodyBytes bounds request bodies at 64 MiB. A 1,000,000-point
// trajectory is ~25-50 MB of JSON depending on coordinate precision, so
// the limit admits the largest sane request (see Config.MaxPoints) with
// headroom while refusing unbounded uploads with 413.
const MaxBodyBytes = 64 << 20

// Machine-readable error codes carried in the "code" field of error
// responses.
const (
	codeBadRequest       = "bad_request"
	codeInvalidPoints    = "invalid_points"
	codeInvalidBudget    = "invalid_budget"
	codeInvalidMeasure   = "invalid_measure"
	codeUnknownAlgorithm = "unknown_algorithm"
	codeMethodNotAllowed = "method_not_allowed"
	codeBodyTooLarge     = "body_too_large"
	codeTooManyPoints    = "too_many_points"
	codeOverloaded       = "overloaded"
	codeTimeout          = "timeout"
	codeInternal         = "internal"
)

// Server routes simplification requests to registered algorithms.
type Server struct {
	mux        *http.ServeMux
	cfg        Config
	policies   map[string]*core.Trained // lower-case name -> policy
	fast       map[string]*core.Trained // FastClones under the same keys (see fast.go)
	simp       *policyPools
	fastReq    *obs.Counter
	boundUnmet *obs.Counter
	repairMet  *repairMetrics
	streams    *streamManager
	fleets     *fleetManager
	batch      *batchRunner
}

// New creates a server with the given trained policies registered under
// their paper names (e.g. "rlts+") and default hardening (see Config).
// The heuristic baselines are always available.
func New(policies []*core.Trained) *Server {
	return NewWith(policies, Config{})
}

// NewWith is New with explicit hardening configuration.
func NewWith(policies []*core.Trained, cfg Config) *Server {
	s := &Server{
		mux:      http.NewServeMux(),
		cfg:      cfg.normalized(),
		policies: make(map[string]*core.Trained),
	}
	for _, p := range policies {
		key := strings.ToLower(p.Opts.Name() + "/" + p.Opts.Measure.String())
		s.policies[key] = p
	}
	if !s.cfg.DisableFast {
		s.fast = fastPolicies(s.policies)
	}
	s.simp = newPolicyPools()
	s.fastReq = s.cfg.Metrics.Counter("rlts_fast_requests_total",
		"Policy runs served with the FastMath kernels (?fast=1)")
	s.boundUnmet = s.cfg.Metrics.Counter("rlts_bound_unmet_total",
		"Error-bounded responses whose oracle-re-scored error exceeded the requested bound")
	s.repairMet = newRepairMetrics(s.cfg.Metrics)
	s.streams = newStreamManager(s.policies, s.cfg)
	s.fleets = newFleetManager(s.cfg)
	s.batch = newBatchRunner(s.cfg)
	s.startFleetJanitor()
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.Handle("/metrics", s.cfg.Metrics.Handler())
	s.mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("/v1/simplify", s.handleSimplify)
	s.mux.HandleFunc("/v1/simplify/batch", s.handleSimplifyBatch)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/stream", s.handleStream)
	s.mux.HandleFunc("/v1/stream/{id}", s.handleStreamSession)
	s.mux.HandleFunc("/v1/stream/{id}/points", s.handleStreamPush)
	s.mux.HandleFunc("/v1/fleet", s.handleFleet)
	s.mux.HandleFunc("/v1/fleet/{id}", s.handleFleetID)
	s.mux.HandleFunc("/v1/fleet/{id}/attach", s.handleFleetAttach)
	s.mux.HandleFunc("/v1/fleet/{id}/detach", s.handleFleetDetach)
	s.mux.HandleFunc("/v1/fleet/{id}/rebalance", s.handleFleetRebalance)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the http.Handler for the service, wrapped in the
// hardening and instrumentation middleware (request ids, metrics, panic
// recovery, load shedding, per-request deadlines).
func (s *Server) Handler() http.Handler { return Harden(s.mux, s.cfg) }

// Close releases background resources (the streaming session janitor
// and the fleet rebalancer). The HTTP side needs no teardown; Close
// exists so long-lived embedders and tests do not leak the goroutines.
func (s *Server) Close() {
	s.streams.stop()
	s.fleets.shutdown()
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET only")
		return
	}
	names := []string{
		"sttrace", "squish", "squish-e", "top-down", "bottom-up", "bellman", "span-search", "uniform",
	}
	for k := range s.policies {
		names = append(names, k)
	}
	sort.Strings(names)
	writeJSON(w, map[string]interface{}{"algorithms": names})
}

// simplifyRequest is the wire format of POST /v1/simplify. Exactly one
// of w/ratio (Min-Error: fixed budget, smallest error) or bound
// (Min-Size: fixed error, smallest output) may be set; see bounded.go
// for the bound mode.
type simplifyRequest struct {
	Algorithm string       `json:"algorithm"`
	Measure   string       `json:"measure"`
	W         int          `json:"w"`
	Ratio     float64      `json:"ratio"`
	Bound     *float64     `json:"bound,omitempty"`
	Repair    *repairParams `json:"repair,omitempty"` // opt-in dirty-input repair (see repair.go)
	Points    [][3]float64 `json:"points"`
}

type simplifyResponse struct {
	Algorithm string       `json:"algorithm"`
	Mode      string       `json:"mode"` // "exact" or "fast" — the kernels that ran
	Kept      int          `json:"kept"`
	Of        int          `json:"of"`
	Error     float64      `json:"error"`
	Bound     *float64     `json:"bound,omitempty"`     // echo of the requested bound
	BoundMet  *bool        `json:"bound_met,omitempty"` // re-scored by the exact oracle
	Repair    *repairReportJSON `json:"repair,omitempty"` // per-defect repair accounting
	Points    [][3]float64 `json:"points"`
}

// decodeBody decodes a JSON request body under the size limit, reporting
// the failure itself (413 for an oversized body, 400 otherwise). Returns
// false when the request is already answered.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, codeBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// parseTrajectory validates raw points into a trajectory, reporting the
// failure itself. Returns nil when the request is already answered.
func (s *Server) parseTrajectory(w http.ResponseWriter, points [][3]float64) traj.Trajectory {
	if s.cfg.MaxPoints > 0 && len(points) > s.cfg.MaxPoints {
		httpError(w, http.StatusRequestEntityTooLarge, codeTooManyPoints,
			"trajectory has %d points, limit is %d", len(points), s.cfg.MaxPoints)
		return nil
	}
	t, err := traj.FromPoints(points)
	if err != nil {
		s.rejectPoints(w, err)
		return nil
	}
	return t
}

// ingestTrajectory is parseTrajectory with the repair opt-in: when
// params is non-nil the raw points go through the repair pipeline
// instead of strict validation, and the per-defect accounting comes
// back for the response. Returns nil when the request is answered.
func (s *Server) ingestTrajectory(w http.ResponseWriter, points [][3]float64, params *repairParams) (traj.Trajectory, *repairReportJSON) {
	if s.cfg.MaxPoints > 0 && len(points) > s.cfg.MaxPoints {
		httpError(w, http.StatusRequestEntityTooLarge, codeTooManyPoints,
			"trajectory has %d points, limit is %d", len(points), s.cfg.MaxPoints)
		return nil, nil
	}
	if params == nil {
		return s.parseTrajectory(w, points), nil
	}
	return s.repairTrajectory(w, points, params)
}

// budget resolves the storage budget from the request's w/ratio pair,
// reporting invalid combinations itself. Returns (0, false) when the
// request is already answered.
func budget(w http.ResponseWriter, req *simplifyRequest, n int) (int, bool) {
	if req.W != 0 {
		if req.Ratio != 0 {
			// A conflicting pair used to be resolved silently in w's favor;
			// the caller meant something, and guessing which half hides bugs.
			httpError(w, http.StatusBadRequest, codeInvalidBudget,
				"w (%d) and ratio (%g) are mutually exclusive; send one", req.W, req.Ratio)
			return 0, false
		}
		if req.W < 2 {
			httpError(w, http.StatusBadRequest, codeInvalidBudget, "w must be >= 2, got %d", req.W)
			return 0, false
		}
		return req.W, true
	}
	ratio := req.Ratio
	if ratio == 0 {
		ratio = 0.1 // default budget: keep 10%
	}
	if ratio < 0 || ratio >= 1 {
		httpError(w, http.StatusBadRequest, codeInvalidBudget, "ratio must be in (0, 1), got %g", ratio)
		return 0, false
	}
	b := int(ratio * float64(n))
	if b < 2 {
		b = 2
	}
	return b, true
}

func (s *Server) handleSimplify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	var req simplifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	t, repairRep := s.ingestTrajectory(w, req.Points, req.Repair)
	if t == nil {
		return
	}
	m := errm.SED
	if req.Measure != "" {
		var err error
		m, err = errm.Parse(req.Measure)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidMeasure, "%v", err)
			return
		}
	}
	if req.Bound != nil {
		s.serveBounded(w, r, &req, t, m)
		return
	}
	b, ok := budget(w, &req, len(t))
	if !ok {
		return
	}
	name, kept, mode, err := s.run(r.Context(), strings.ToLower(req.Algorithm), t, b, m, fastRequested(r))
	if err != nil {
		writeRunError(w, err)
		return
	}
	resp := simplifyResponse{
		Algorithm: name,
		Mode:      mode,
		Kept:      len(kept),
		Of:        len(t),
		Error:     errm.Error(m, t, kept),
		Repair:    repairRep,
	}
	core.ObserveErrorIn(s.cfg.Metrics, m, resp.Error)
	for _, ix := range kept {
		p := t[ix]
		resp.Points = append(resp.Points, [3]float64{p.X, p.Y, p.T})
	}
	writeJSON(w, &resp)
}

// writeRunError maps a simplification failure to its transport shape:
// deadline expiry becomes 504, client cancellation is left unanswered
// (the connection is gone), and anything else is a 400.
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, codeTimeout, "request deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client went away; nothing useful can be written.
	default:
		httpError(w, http.StatusBadRequest, codeUnknownAlgorithm, "%v", err)
	}
}

// run dispatches to a policy or a baseline, reporting the kernel mode
// that ran alongside the result. Policies execute on an exclusive pooled
// clone (the registered instance's forward scratch is not concurrent-safe
// under MaxConcurrent-way parallelism) — from the fast registry when the
// request opted in and FastMath is enabled, the exact one otherwise. The
// context cancels the policy scan mid-trajectory; the heuristic baselines
// run to completion (they are bounded by MaxPoints, and bellman
// additionally by its own size cap) and have no fast variant.
func (s *Server) run(ctx context.Context, algo string, t traj.Trajectory, w int, m errm.Measure, fast bool) (string, []int, string, error) {
	key := strings.ToLower(algo + "/" + m.String())
	if p, ok := s.policies[key]; ok {
		mode := modeExact
		if fast {
			if fp, ok := s.fast[key]; ok {
				p, mode = fp, modeFast
				s.fastReq.Inc()
			}
		}
		c := s.simp.get(p)
		kept, err := c.SimplifyGreedyCtx(ctx, t, w)
		s.simp.put(p, c)
		return p.Opts.Name(), kept, mode, err
	}
	switch algo {
	case "sttrace":
		kept, err := baseOnline.STTrace(t, w, m)
		return "STTrace", kept, modeExact, err
	case "squish":
		kept, err := baseOnline.SQUISH(t, w, m)
		return "SQUISH", kept, modeExact, err
	case "squish-e", "squishe":
		kept, err := baseOnline.SQUISHE(t, w, m)
		return "SQUISH-E", kept, modeExact, err
	case "top-down", "topdown":
		kept, err := baseBatch.TopDown(t, w, m)
		return "Top-Down", kept, modeExact, err
	case "bottom-up", "bottomup", "":
		kept, err := baseBatch.BottomUp(t, w, m)
		return "Bottom-Up", kept, modeExact, err
	case "bellman":
		if len(t) > 2000 {
			return "", nil, modeExact, fmt.Errorf("server: bellman is cubic; refusing %d points (max 2000)", len(t))
		}
		kept, err := baseBatch.Bellman(t, w, m)
		return "Bellman", kept, modeExact, err
	case "span-search", "spansearch":
		kept, err := baseBatch.SpanSearch(t, w)
		return "Span-Search", kept, modeExact, err
	case "uniform":
		kept, err := baseOnline.Uniform(t, w)
		return "Uniform", kept, modeExact, err
	}
	return "", nil, modeExact, fmt.Errorf("server: unknown algorithm %q (policies need a matching measure)", algo)
}

type statsResponse struct {
	Points      int     `json:"points"`
	Duration    float64 `json:"duration_s"`
	PathLength  float64 `json:"path_length_m"`
	AvgGap      float64 `json:"avg_gap_s"`
	AvgDistance float64 `json:"avg_distance_m"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Points [][3]float64 `json:"points"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	t := s.parseTrajectory(w, req.Points)
	if t == nil {
		return
	}
	st := traj.Summarize([]traj.Trajectory{t})
	writeJSON(w, &statsResponse{
		Points:      t.Len(),
		Duration:    t.Duration(),
		PathLength:  t.PathLength(),
		AvgGap:      st.AvgSampleRate,
		AvgDistance: st.AvgDistance,
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will just break.
		return
	}
}

// httpError writes the typed JSON error shape: a human-readable message
// plus a stable machine-readable code.
func httpError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
		"code":  code,
	})
}
