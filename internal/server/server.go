// Package server exposes trajectory simplification as an HTTP service —
// the deployment shape of the paper's batch mode (a server holding
// accumulated trajectories that shrinks them before storage or query
// processing). The service is stateless: each request carries a
// trajectory and names an algorithm; trained RLTS policies are registered
// at construction.
//
// Endpoints (JSON in/out):
//
//	GET  /healthz               liveness probe
//	GET  /v1/algorithms         available algorithm names
//	POST /v1/simplify           simplify one trajectory
//	POST /v1/stats              Table-I-style statistics for a trajectory
//
// A simplify request:
//
//	{"algorithm": "rlts+", "measure": "SED", "w": 50,        // or "ratio": 0.1
//	 "points": [[x, y, t], ...]}
//
// and its response:
//
//	{"algorithm": "RLTS+", "kept": 50, "of": 500,
//	 "error": 3.21, "points": [[x, y, t], ...]}
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	baseBatch "rlts/internal/baseline/batch"
	baseOnline "rlts/internal/baseline/online"
	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/traj"
)

// MaxBodyBytes bounds request bodies (1,000,000 points ≈ 48 MB of JSON is
// far beyond any sane request).
const MaxBodyBytes = 64 << 20

// Server routes simplification requests to registered algorithms.
type Server struct {
	mux      *http.ServeMux
	policies map[string]*core.Trained // lower-case name -> policy
}

// New creates a server with the given trained policies registered under
// their paper names (e.g. "rlts+"). The heuristic baselines are always
// available.
func New(policies []*core.Trained) *Server {
	s := &Server{
		mux:      http.NewServeMux(),
		policies: make(map[string]*core.Trained),
	}
	for _, p := range policies {
		key := strings.ToLower(p.Opts.Name() + "/" + p.Opts.Measure.String())
		s.policies[key] = p
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("/v1/simplify", s.handleSimplify)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// Handler returns the http.Handler for the service.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	names := []string{
		"sttrace", "squish", "squish-e", "top-down", "bottom-up", "bellman", "span-search", "uniform",
	}
	for k := range s.policies {
		names = append(names, k)
	}
	sort.Strings(names)
	writeJSON(w, map[string]interface{}{"algorithms": names})
}

// simplifyRequest is the wire format of POST /v1/simplify.
type simplifyRequest struct {
	Algorithm string       `json:"algorithm"`
	Measure   string       `json:"measure"`
	W         int          `json:"w"`
	Ratio     float64      `json:"ratio"`
	Points    [][3]float64 `json:"points"`
}

type simplifyResponse struct {
	Algorithm string       `json:"algorithm"`
	Kept      int          `json:"kept"`
	Of        int          `json:"of"`
	Error     float64      `json:"error"`
	Points    [][3]float64 `json:"points"`
}

func (s *Server) handleSimplify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req simplifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	t, err := toTrajectory(req.Points)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m := errm.SED
	if req.Measure != "" {
		m, err = errm.Parse(req.Measure)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	budget := req.W
	if budget <= 0 {
		ratio := req.Ratio
		if ratio <= 0 || ratio > 1 {
			ratio = 0.1
		}
		budget = int(ratio * float64(len(t)))
	}
	if budget < 2 {
		budget = 2
	}
	name, kept, err := s.run(strings.ToLower(req.Algorithm), t, budget, m)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := simplifyResponse{
		Algorithm: name,
		Kept:      len(kept),
		Of:        len(t),
		Error:     errm.Error(m, t, kept),
	}
	for _, ix := range kept {
		p := t[ix]
		resp.Points = append(resp.Points, [3]float64{p.X, p.Y, p.T})
	}
	writeJSON(w, &resp)
}

// run dispatches to a policy or a baseline.
func (s *Server) run(algo string, t traj.Trajectory, w int, m errm.Measure) (string, []int, error) {
	if p, ok := s.policies[strings.ToLower(algo+"/"+m.String())]; ok {
		kept, err := p.SimplifyGreedy(t, w)
		return p.Opts.Name(), kept, err
	}
	switch algo {
	case "sttrace":
		kept, err := baseOnline.STTrace(t, w, m)
		return "STTrace", kept, err
	case "squish":
		kept, err := baseOnline.SQUISH(t, w, m)
		return "SQUISH", kept, err
	case "squish-e", "squishe":
		kept, err := baseOnline.SQUISHE(t, w, m)
		return "SQUISH-E", kept, err
	case "top-down", "topdown":
		kept, err := baseBatch.TopDown(t, w, m)
		return "Top-Down", kept, err
	case "bottom-up", "bottomup", "":
		kept, err := baseBatch.BottomUp(t, w, m)
		return "Bottom-Up", kept, err
	case "bellman":
		if len(t) > 2000 {
			return "", nil, fmt.Errorf("server: bellman is cubic; refusing %d points (max 2000)", len(t))
		}
		kept, err := baseBatch.Bellman(t, w, m)
		return "Bellman", kept, err
	case "span-search", "spansearch":
		kept, err := baseBatch.SpanSearch(t, w)
		return "Span-Search", kept, err
	case "uniform":
		kept, err := baseOnline.Uniform(t, w)
		return "Uniform", kept, err
	}
	return "", nil, fmt.Errorf("server: unknown algorithm %q (policies need a matching measure)", algo)
}

type statsResponse struct {
	Points      int     `json:"points"`
	Duration    float64 `json:"duration_s"`
	PathLength  float64 `json:"path_length_m"`
	AvgGap      float64 `json:"avg_gap_s"`
	AvgDistance float64 `json:"avg_distance_m"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Points [][3]float64 `json:"points"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	t, err := toTrajectory(req.Points)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := traj.Summarize([]traj.Trajectory{t})
	writeJSON(w, &statsResponse{
		Points:      t.Len(),
		Duration:    t.Duration(),
		PathLength:  t.PathLength(),
		AvgGap:      st.AvgSampleRate,
		AvgDistance: st.AvgDistance,
	})
}

func toTrajectory(points [][3]float64) (traj.Trajectory, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("server: need at least 2 points, got %d", len(points))
	}
	t := make(traj.Trajectory, len(points))
	for i, p := range points {
		t[i].X, t[i].Y, t[i].T = p[0], p[1], p[2]
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("server: invalid trajectory: %w", err)
	}
	return t, nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will just break.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
