package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/obs"
	"rlts/internal/traj"
)

// trainSmall returns a quickly-trained policy shared by the batch tests.
func trainSmall(t *testing.T) *core.Trained {
	t.Helper()
	opts := core.DefaultOptions(errm.SED, core.Plus)
	to := core.DefaultTrainOptions()
	to.RL.Episodes = 3
	trained, _, err := core.Train(gen.New(gen.Geolife(), 1).Dataset(5, 60), opts, to)
	if err != nil {
		t.Fatal(err)
	}
	return trained
}

func batchServer(t *testing.T, trained *core.Trained, cfg Config) *httptest.Server {
	t.Helper()
	s := NewWith([]*core.Trained{trained}, cfg)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func batchTrajs(n int) []traj.Trajectory {
	out := make([]traj.Trajectory, n)
	for i := range out {
		out[i] = gen.New(gen.Truck(), int64(40+i)).Trajectory(40 + 13*i)
	}
	return out
}

// TestSimplifyBatchMatchesSingle posts a mixed batch and checks every
// successful item reproduces exactly what POST /v1/simplify returns for
// the same trajectory, while the malformed item fails inline.
func TestSimplifyBatchMatchesSingle(t *testing.T) {
	trained := trainSmall(t)
	srv := batchServer(t, trained, Config{BatchWidth: 3})
	trajs := batchTrajs(7)
	items := make([]map[string]interface{}, 0, len(trajs)+1)
	for _, tr := range trajs {
		items = append(items, map[string]interface{}{"points": points(tr)})
	}
	// Item with a single point: invalid, must fail alone.
	items = append(items, map[string]interface{}{"points": [][3]float64{{1, 2, 3}}})

	resp, body := post(t, srv.URL+"/v1/simplify/batch", map[string]interface{}{
		"algorithm": "rlts+", "measure": "SED", "w": 10, "items": items,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "RLTS+" || len(out.Items) != len(items) || out.Failed != 1 {
		t.Fatalf("batch response header wrong: algorithm=%q items=%d failed=%d",
			out.Algorithm, len(out.Items), out.Failed)
	}
	last := out.Items[len(out.Items)-1]
	if last.Failure == nil || last.Failure.Code != codePointsTooShort {
		t.Fatalf("invalid item did not fail inline: %+v", last)
	}
	for i, tr := range trajs {
		it := out.Items[i]
		if it.Failure != nil {
			t.Fatalf("item %d failed: %+v", i, it.Failure)
		}
		resp, sbody := post(t, srv.URL+"/v1/simplify", map[string]interface{}{
			"algorithm": "rlts+", "measure": "SED", "w": 10, "points": points(tr),
		})
		if resp.StatusCode != 200 {
			t.Fatalf("single status %d: %s", resp.StatusCode, sbody)
		}
		var single simplifyResponse
		if err := json.Unmarshal(sbody, &single); err != nil {
			t.Fatal(err)
		}
		if it.Kept != single.Kept || it.Of != single.Of || !reflect.DeepEqual(it.Points, single.Points) {
			t.Fatalf("item %d diverged from single endpoint: batch kept %d/%d, single %d/%d",
				i, it.Kept, it.Of, single.Kept, single.Of)
		}
		if it.Error == nil || *it.Error != single.Error {
			t.Fatalf("item %d error mismatch: %v vs %v", i, it.Error, single.Error)
		}
	}
}

// TestSimplifyBatchShardingInvariance checks the response is identical
// whatever the shard width and worker count — the greedy engine's
// determinism surfaced at the API level.
func TestSimplifyBatchShardingInvariance(t *testing.T) {
	trained := trainSmall(t)
	req := map[string]interface{}{"algorithm": "rlts+", "measure": "SED", "ratio": 0.2}
	items := make([]map[string]interface{}, 0, 9)
	for _, tr := range batchTrajs(9) {
		items = append(items, map[string]interface{}{"points": points(tr)})
	}
	req["items"] = items
	var ref []byte
	for i, cfg := range []Config{
		{BatchWidth: -1, BatchWorkers: -1}, // one unbounded shard, serial
		{BatchWidth: 2, BatchWorkers: 4},
		{BatchWidth: 4, BatchWorkers: 2},
	} {
		srv := batchServer(t, trained, cfg)
		resp, body := post(t, srv.URL+"/v1/simplify/batch", req)
		if resp.StatusCode != 200 {
			t.Fatalf("cfg %d: status %d: %s", i, resp.StatusCode, body)
		}
		if i == 0 {
			ref = body
		} else if string(body) != string(ref) {
			t.Fatalf("cfg %d: response differs from single-shard reference:\n%s\nvs\n%s", i, body, ref)
		}
	}
}

// TestSimplifyBatchRequestErrors covers the request-level rejections:
// wrong method, empty batch, oversized batch (413), unknown algorithm
// and non-policy algorithms.
func TestSimplifyBatchRequestErrors(t *testing.T) {
	trained := trainSmall(t)
	srv := batchServer(t, trained, Config{MaxBatchItems: 3})
	tr := batchTrajs(1)[0]

	resp, err := http.Get(srv.URL + "/v1/simplify/batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}

	cases := []struct {
		name   string
		body   map[string]interface{}
		status int
		code   string
	}{
		{"empty", map[string]interface{}{"algorithm": "rlts+", "items": []interface{}{}},
			http.StatusBadRequest, codeBadRequest},
		{"too many", map[string]interface{}{"algorithm": "rlts+", "items": []interface{}{
			map[string]interface{}{"points": points(tr)}, map[string]interface{}{"points": points(tr)},
			map[string]interface{}{"points": points(tr)}, map[string]interface{}{"points": points(tr)},
		}}, http.StatusRequestEntityTooLarge, codeTooManyItems},
		{"unknown algorithm", map[string]interface{}{"algorithm": "nope", "items": []interface{}{
			map[string]interface{}{"points": points(tr)},
		}}, http.StatusBadRequest, codeUnknownAlgorithm},
		{"baseline not served", map[string]interface{}{"algorithm": "bottom-up", "items": []interface{}{
			map[string]interface{}{"points": points(tr)},
		}}, http.StatusBadRequest, codeUnknownAlgorithm},
		{"bad measure", map[string]interface{}{"algorithm": "rlts+", "measure": "nope", "items": []interface{}{
			map[string]interface{}{"points": points(tr)},
		}}, http.StatusBadRequest, codeInvalidMeasure},
	}
	for _, tc := range cases {
		resp, body := post(t, srv.URL+"/v1/simplify/batch", tc.body)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var e struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Code != tc.code {
			t.Fatalf("%s: code %q, want %q (err %v)", tc.name, e.Code, tc.code, err)
		}
	}
}

// TestSimplifyBatchPerItemBudgets exercises per-item w/ratio overrides
// and the inline invalid-budget failure.
func TestSimplifyBatchPerItemBudgets(t *testing.T) {
	trained := trainSmall(t)
	srv := batchServer(t, trained, Config{})
	tr := gen.New(gen.Truck(), 77).Trajectory(60)
	resp, body := post(t, srv.URL+"/v1/simplify/batch", map[string]interface{}{
		"algorithm": "rlts+", "w": 20,
		"items": []interface{}{
			map[string]interface{}{"points": points(tr)},             // inherits w=20
			map[string]interface{}{"points": points(tr), "w": 6},     // override
			map[string]interface{}{"points": points(tr), "w": 1},     // invalid override
			map[string]interface{}{"points": points(tr), "ratio": 3}, // invalid ratio
		},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 2 {
		t.Fatalf("failed = %d, want 2: %s", out.Failed, body)
	}
	if out.Items[0].Kept > 20 || out.Items[0].Kept < 3 {
		t.Fatalf("item 0 kept %d outside budget 20", out.Items[0].Kept)
	}
	if out.Items[1].Kept > 6 {
		t.Fatalf("item 1 kept %d > override budget 6", out.Items[1].Kept)
	}
	for _, i := range []int{2, 3} {
		if out.Items[i].Failure == nil || out.Items[i].Failure.Code != codeInvalidBudget {
			t.Fatalf("item %d: %+v, want invalid_budget failure", i, out.Items[i])
		}
	}
}

// TestSimplifyBatchConcurrentWithMetrics hammers the batch endpoint from
// many goroutines while scraping /metrics — the satellite -race
// requirement — then checks the rlts_batch_* series landed.
func TestSimplifyBatchConcurrentWithMetrics(t *testing.T) {
	trained := trainSmall(t)
	reg := obs.NewRegistry()
	srv := batchServer(t, trained, Config{Metrics: reg, BatchWidth: 2, BatchWorkers: 2})
	trajs := batchTrajs(4)
	items := make([]map[string]interface{}, 0, len(trajs))
	for _, tr := range trajs {
		items = append(items, map[string]interface{}{"points": points(tr)})
	}
	req := map[string]interface{}{"algorithm": "rlts+", "ratio": 0.2, "items": items}

	const posters, scrapes = 8, 5
	var wg sync.WaitGroup
	errc := make(chan error, posters+scrapes)
	for i := 0; i < posters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, srv.URL+"/v1/simplify/batch", req)
			if resp.StatusCode != 200 {
				errc <- fmt.Errorf("batch status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	for i := 0; i < scrapes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errc <- fmt.Errorf("metrics status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"rlts_batch_requests_total 8",
		"rlts_batch_items_total 32",
		"rlts_batch_shards_total",
		"rlts_batch_request_items",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
}
