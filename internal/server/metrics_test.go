package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rlts/internal/gen"
	"rlts/internal/obs"
)

// TestMetricsScrape is the acceptance check for the scrape endpoint: run
// real traffic through the hardened server, then GET /metrics and verify
// the output parses as Prometheus text format and carries the expected
// series.
func TestMetricsScrape(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})

	tr := gen.New(gen.Geolife(), 3).Dataset(1, 80)[0]
	resp, raw := post(t, ts.URL+"/v1/simplify",
		map[string]interface{}{"algorithm": "bottom-up", "w": 10, "points": points(tr)})
	if resp.StatusCode != 200 {
		t.Fatalf("simplify: status %d: %s", resp.StatusCode, raw)
	}
	// One 400 so a second code series exists.
	post(t, ts.URL+"/v1/simplify", map[string]interface{}{"w": 10})

	sresp, body := getRaw(t, ts.URL+"/metrics")
	if sresp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, body)
	}
	if v, ok := obs.Find(samples, "rlts_http_requests_total",
		map[string]string{"route": "/v1/simplify", "code": "200"}); !ok || v < 1 {
		t.Errorf("requests_total{simplify,200} = %g, %v", v, ok)
	}
	if v, ok := obs.Find(samples, "rlts_http_requests_total",
		map[string]string{"route": "/v1/simplify", "code": "400"}); !ok || v < 1 {
		t.Errorf("requests_total{simplify,400} = %g, %v", v, ok)
	}
	if v, ok := obs.Find(samples, "rlts_http_request_seconds_count",
		map[string]string{"route": "/v1/simplify"}); !ok || v < 2 {
		t.Errorf("request_seconds_count{simplify} = %g, %v", v, ok)
	}
	if v, ok := obs.Find(samples, "rlts_http_request_seconds_bucket",
		map[string]string{"route": "/v1/simplify", "le": "+Inf"}); !ok || v < 2 {
		t.Errorf("request_seconds_bucket{+Inf} = %g, %v", v, ok)
	}
	// The per-measure error distribution recorded by the simplify handler
	// goes to the server's own registry, so the scrape carries it.
	if v, ok := obs.Find(samples, "rlts_simplify_error_count",
		map[string]string{"measure": "SED"}); !ok || v < 1 {
		t.Errorf("rlts_simplify_error_count{SED} = %g, %v", v, ok)
	}
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})

	// Generated when absent: 16 hex chars.
	resp, _ := getRaw(t, ts.URL+"/healthz")
	rid := resp.Header.Get("X-Request-ID")
	if len(rid) != 16 {
		t.Errorf("generated request id %q, want 16 hex chars", rid)
	}

	// Echoed when supplied.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "my-trace-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "my-trace-42" {
		t.Errorf("request id not echoed: %q", got)
	}

	// Oversized ids are replaced, not echoed.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", 200))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("oversized id echoed back: %q", got)
	}
}

func TestRequestIDInLogs(t *testing.T) {
	var logBuf bytes.Buffer
	logger := obs.NewLogger(&logBuf, -8, true) // debug level, JSON
	reg := obs.NewRegistry()
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}), Config{Logger: logger, Metrics: reg})
	ts := httptest.NewServer(h)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/simplify", nil)
	req.Header.Set("X-Request-ID", "trace-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(logBuf.String(), `"request_id":"trace-abc-123"`) {
		t.Errorf("slog entry missing request id: %s", logBuf.String())
	}
}

// TestRetryAfterOn504 covers the satellite: deadline responses carry
// Retry-After no matter which layer writes the 504.
func TestRetryAfterOn504(t *testing.T) {
	reg := obs.NewRegistry()
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		writeRunError(w, r.Context().Err())
	})
	h := Harden(slow, Config{RequestTimeout: 20 * time.Millisecond, Metrics: reg})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/simplify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("504 response missing Retry-After")
	}
	if got := newMetricsSet(reg).deadlines.Value(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
}

func TestShedAndInflightMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	blocking := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.Write([]byte("done"))
	})
	h := Harden(blocking, Config{MaxConcurrent: 1, RequestTimeout: -1, Metrics: reg})
	ts := httptest.NewServer(h)
	defer ts.Close()

	met := newMetricsSet(reg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/simplify")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	if got := met.inflight.Value(); got != 1 {
		t.Errorf("inflight = %g with one request running", got)
	}
	resp, err := http.Get(ts.URL + "/v1/simplify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if got := met.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	if got := met.inflight.Value(); got != 0 {
		t.Errorf("inflight = %g after drain, want 0", got)
	}
}

func TestPanicCounter(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), Config{ErrorLog: &logBuf, Metrics: reg})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/simplify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if got := newMetricsSet(reg).panics.Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
}

func TestPprofGating(t *testing.T) {
	// Off by default.
	ts, _, _ := streamServer(t, Config{})
	resp, _ := getRaw(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode == 200 {
		t.Error("pprof reachable without EnablePprof")
	}

	// On when enabled.
	ts2, _, _ := streamServer(t, Config{EnablePprof: true})
	resp2, body := getRaw(t, ts2.URL+"/debug/pprof/cmdline")
	if resp2.StatusCode != 200 {
		t.Errorf("pprof cmdline: status %d: %s", resp2.StatusCode, body)
	}
}

func TestMetricsBypassesShedding(t *testing.T) {
	ts, _, _ := streamServer(t, Config{MaxConcurrent: 1})
	// Saturate the semaphore with a slow streaming push? Simpler: the
	// bypass is path-based, so a scrape succeeds even when MaxConcurrent
	// would otherwise be consumed by this very request chain.
	release := make(chan struct{})
	started := make(chan struct{})
	reg := obs.NewRegistry()
	blocking := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			reg.Handler().ServeHTTP(w, r)
			return
		}
		close(started)
		<-release
	})
	h := Harden(blocking, Config{MaxConcurrent: 1, RequestTimeout: -1, Metrics: reg})
	srv := httptest.NewServer(h)
	defer srv.Close()
	go func() {
		resp, err := http.Get(srv.URL + "/busy")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(release)
	if resp.StatusCode != 200 {
		t.Errorf("/metrics shed while saturated: status %d", resp.StatusCode)
	}
	_ = ts
}
