package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"rlts/internal/gen"
	"rlts/internal/obs"
)

// TestSimplifyFastMode: ?fast=1 on POST /v1/simplify runs the FastMath
// kernels (mode "fast"), keeps the same indices as the exact path (the
// argmax-stability contract of DESIGN.md §13), and bumps the
// rlts_fast_requests_total counter; a plain request stays exact.
func TestSimplifyFastMode(t *testing.T) {
	trained := trainSmall(t)
	reg := obs.NewRegistry()
	srv := batchServer(t, trained, Config{Metrics: reg})
	tr := gen.New(gen.Truck(), 99).Trajectory(80)
	req := map[string]interface{}{
		"algorithm": "rlts+", "measure": "SED", "w": 12, "points": points(tr),
	}

	resp, body := post(t, srv.URL+"/v1/simplify", req)
	if resp.StatusCode != 200 {
		t.Fatalf("exact status %d: %s", resp.StatusCode, body)
	}
	var exact simplifyResponse
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Mode != modeExact {
		t.Fatalf("plain request mode = %q, want %q", exact.Mode, modeExact)
	}

	resp, body = post(t, srv.URL+"/v1/simplify?fast=1", req)
	if resp.StatusCode != 200 {
		t.Fatalf("fast status %d: %s", resp.StatusCode, body)
	}
	var fast simplifyResponse
	if err := json.Unmarshal(body, &fast); err != nil {
		t.Fatal(err)
	}
	if fast.Mode != modeFast {
		t.Fatalf("?fast=1 mode = %q, want %q", fast.Mode, modeFast)
	}
	if fast.Kept != exact.Kept || fast.Of != exact.Of || !reflect.DeepEqual(fast.Points, exact.Points) {
		t.Fatalf("fast result diverged from exact: fast kept %d/%d, exact %d/%d",
			fast.Kept, fast.Of, exact.Kept, exact.Of)
	}
	if fast.Error != exact.Error {
		t.Fatalf("fast error %g != exact %g", fast.Error, exact.Error)
	}

	if got := counterValue(t, srv.URL, "rlts_fast_requests_total"); got != 1 {
		t.Fatalf("rlts_fast_requests_total = %g, want 1", got)
	}
}

// TestSimplifyBatchFastMode: the batch endpoint honors ?fast=1 with the
// same contract — mode "fast", item results identical to the exact batch.
func TestSimplifyBatchFastMode(t *testing.T) {
	trained := trainSmall(t)
	srv := batchServer(t, trained, Config{Metrics: obs.NewRegistry(), BatchWidth: 3})
	items := make([]map[string]interface{}, 0, 6)
	for _, tr := range batchTrajs(6) {
		items = append(items, map[string]interface{}{"points": points(tr)})
	}
	req := map[string]interface{}{
		"algorithm": "rlts+", "measure": "SED", "w": 10, "items": items,
	}

	var exact, fast batchResponse
	for _, q := range []struct {
		url string
		out *batchResponse
	}{
		{srv.URL + "/v1/simplify/batch", &exact},
		{srv.URL + "/v1/simplify/batch?fast=true", &fast},
	} {
		resp, body := post(t, q.url, req)
		if resp.StatusCode != 200 {
			t.Fatalf("%s status %d: %s", q.url, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, q.out); err != nil {
			t.Fatal(err)
		}
	}
	if exact.Mode != modeExact || fast.Mode != modeFast {
		t.Fatalf("modes = %q / %q, want exact / fast", exact.Mode, fast.Mode)
	}
	if exact.Failed != 0 || fast.Failed != 0 {
		t.Fatalf("failures: exact %d, fast %d", exact.Failed, fast.Failed)
	}
	if !reflect.DeepEqual(exact.Items, fast.Items) {
		t.Fatalf("fast batch items diverged from exact")
	}
}

// TestFastModeEdges pins the fall-back shapes: a baseline algorithm has no
// fast variant (mode stays "exact" under ?fast=1), and Config.DisableFast
// turns ?fast=1 into an exact run rather than an error.
func TestFastModeEdges(t *testing.T) {
	trained := trainSmall(t)
	srv := batchServer(t, trained, Config{Metrics: obs.NewRegistry(), DisableFast: true})
	tr := gen.New(gen.Truck(), 7).Trajectory(50)

	for _, algo := range []string{"rlts+", "bottom-up"} {
		resp, body := post(t, srv.URL+"/v1/simplify?fast=1", map[string]interface{}{
			"algorithm": algo, "measure": "SED", "w": 10, "points": points(tr),
		})
		if resp.StatusCode != 200 {
			t.Fatalf("%s status %d: %s", algo, resp.StatusCode, body)
		}
		var out simplifyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Mode != modeExact {
			t.Fatalf("%s with DisableFast: mode = %q, want %q", algo, out.Mode, modeExact)
		}
	}
	if got := counterValue(t, srv.URL, "rlts_fast_requests_total"); got != 0 {
		t.Fatalf("rlts_fast_requests_total = %g with DisableFast, want 0", got)
	}
}

// counterValue scrapes /metrics and returns the named counter's value
// (0 when the series has not been written yet).
func counterValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := obs.Find(samples, name, nil)
	return v
}
