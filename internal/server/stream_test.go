package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/obs"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// onlineTrained builds an untrained online-variant policy: the session
// API's behavior (budgets, validation, lifecycle) does not depend on
// policy quality, and skipping training keeps these tests fast.
func onlineTrained(t *testing.T) *core.Trained {
	t.Helper()
	opts := core.DefaultOptions(errm.SED, core.Online)
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return &core.Trained{Opts: opts, Policy: p}
}

// streamServer builds a test server with an isolated metrics registry so
// assertions on counters are not polluted by other tests in the process.
func streamServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	sv := NewWith([]*core.Trained{onlineTrained(t)}, cfg)
	t.Cleanup(sv.Close)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, sv, reg
}

func createStream(t *testing.T, url string, body interface{}) string {
	t.Helper()
	resp, raw := post(t, url+"/v1/stream", body)
	if resp.StatusCode != 200 {
		t.Fatalf("create: status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.ID == "" {
		t.Fatalf("create response %q: %v", raw, err)
	}
	return out.ID
}

type snapshotResponse struct {
	Algorithm string       `json:"algorithm"`
	W         int          `json:"w"`
	Seen      int          `json:"seen"`
	Kept      int          `json:"kept"`
	Points    [][3]float64 `json:"points"`
}

func getSnapshot(t *testing.T, url, id string) (*http.Response, snapshotResponse) {
	t.Helper()
	resp, err := http.Get(url + "/v1/stream/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap snapshotResponse
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return resp, snap
}

func deleteStream(t *testing.T, url, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/stream/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestStreamLifecycle is the acceptance scenario: create, push N points
// over several batches, snapshot a valid simplification with |T'| <= W,
// close.
func TestStreamLifecycle(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})
	const w = 10
	id := createStream(t, ts.URL, map[string]interface{}{"measure": "SED", "w": w})

	tr := gen.New(gen.Geolife(), 11).Dataset(1, 200)[0]
	pts := points(tr)
	for off := 0; off < len(pts); off += 50 {
		end := off + 50
		if end > len(pts) {
			end = len(pts)
		}
		resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points",
			map[string]interface{}{"points": pts[off:end]})
		if resp.StatusCode != 200 {
			t.Fatalf("push: status %d: %s", resp.StatusCode, raw)
		}
		var pr struct {
			Seen     int `json:"seen"`
			Buffered int `json:"buffered"`
		}
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Seen != end {
			t.Errorf("seen = %d after pushing %d", pr.Seen, end)
		}
		if pr.Buffered > w {
			t.Errorf("buffered = %d > W = %d", pr.Buffered, w)
		}
	}

	resp, snap := getSnapshot(t, ts.URL, id)
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	if snap.Seen != len(pts) {
		t.Errorf("snapshot seen = %d, want %d", snap.Seen, len(pts))
	}
	// The default options have no skip actions, so every snapshot point is
	// buffered: |T'| <= W, endpoints preserved, timestamps increasing.
	if len(snap.Points) > w {
		t.Errorf("|T'| = %d > W = %d", len(snap.Points), w)
	}
	if snap.Kept != len(snap.Points) {
		t.Errorf("kept = %d, len(points) = %d", snap.Kept, len(snap.Points))
	}
	if snap.Points[0] != pts[0] {
		t.Error("snapshot does not start at the first pushed point")
	}
	if snap.Points[len(snap.Points)-1] != pts[len(pts)-1] {
		t.Error("snapshot does not end at the last pushed point")
	}
	if _, err := traj.FromPoints(snap.Points); err != nil {
		t.Errorf("snapshot is not a valid trajectory: %v", err)
	}

	if resp := deleteStream(t, ts.URL, id); resp.StatusCode != 200 {
		t.Errorf("close: status %d", resp.StatusCode)
	}
}

func TestStreamPushAfterClose(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})
	id := createStream(t, ts.URL, map[string]interface{}{"w": 5})
	if resp := deleteStream(t, ts.URL, id); resp.StatusCode != 200 {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": [][3]float64{{0, 0, 0}, {1, 1, 1}}})
	if resp.StatusCode != 404 {
		t.Fatalf("push after close: status %d, want 404: %s", resp.StatusCode, raw)
	}
	if _, code := errorBody(t, raw); code != codeStreamNotFound {
		t.Errorf("code = %q, want %q", code, codeStreamNotFound)
	}
	// Double close is also a 404.
	if resp := deleteStream(t, ts.URL, id); resp.StatusCode != 404 {
		t.Errorf("double close: status %d, want 404", resp.StatusCode)
	}
}

func TestStreamRejectsDuplicateTimestamps(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})
	id := createStream(t, ts.URL, map[string]interface{}{"w": 5})

	// Duplicate within one push.
	resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": [][3]float64{{0, 0, 0}, {1, 0, 0}}})
	if resp.StatusCode != 400 {
		t.Fatalf("in-batch duplicate: status %d: %s", resp.StatusCode, raw)
	}
	if _, code := errorBody(t, raw); code != codePointsDuplicate {
		t.Errorf("code = %q, want %q", code, codePointsDuplicate)
	}

	// Duplicate across two pushes: the second push's first point repeats
	// the last accepted timestamp.
	resp, _ = post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": [][3]float64{{0, 0, 0}, {1, 0, 1}}})
	if resp.StatusCode != 200 {
		t.Fatalf("valid push rejected: status %d", resp.StatusCode)
	}
	resp, raw = post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": [][3]float64{{2, 0, 1}, {3, 0, 2}}})
	if resp.StatusCode != 400 {
		t.Fatalf("cross-push duplicate: status %d: %s", resp.StatusCode, raw)
	}
	if _, code := errorBody(t, raw); code != codePointsDuplicate {
		t.Errorf("code = %q, want %q", code, codePointsDuplicate)
	}
	// The rejected batch must not have advanced the stream.
	_, snap := getSnapshot(t, ts.URL, id)
	if snap.Seen != 2 {
		t.Errorf("seen = %d after rejected push, want 2", snap.Seen)
	}

	// Non-finite coordinates are rejected by the same validation.
	resp, raw = post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": [][3]float64{{2, 0, 5}}})
	if resp.StatusCode != 200 {
		t.Fatalf("single-point push rejected: status %d: %s", resp.StatusCode, raw)
	}
	resp, _ = post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": []interface{}{[]interface{}{"NaN", 0, 6}}})
	if resp.StatusCode != 400 {
		t.Errorf("NaN push: status %d, want 400", resp.StatusCode)
	}
}

// TestStreamSnapshotDeterminism: with sampling off, two sessions fed the
// same points produce byte-identical snapshots, and snapshotting is
// read-only (a second snapshot matches the first).
func TestStreamSnapshotDeterminism(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})
	tr := gen.New(gen.Geolife(), 13).Dataset(1, 150)[0]
	pts := points(tr)

	var snaps [2]snapshotResponse
	for i := range snaps {
		id := createStream(t, ts.URL, map[string]interface{}{"w": 8})
		resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points", map[string]interface{}{"points": pts})
		if resp.StatusCode != 200 {
			t.Fatalf("push: status %d: %s", resp.StatusCode, raw)
		}
		_, first := getSnapshot(t, ts.URL, id)
		_, again := getSnapshot(t, ts.URL, id)
		if fmt.Sprint(first.Points) != fmt.Sprint(again.Points) {
			t.Fatal("snapshot is not idempotent")
		}
		snaps[i] = first
	}
	if fmt.Sprint(snaps[0].Points) != fmt.Sprint(snaps[1].Points) {
		t.Error("two greedy sessions over the same points diverged")
	}
}

func TestStreamCreateValidation(t *testing.T) {
	ts, _, _ := streamServer(t, Config{})
	cases := []struct {
		name string
		body map[string]interface{}
		code string
	}{
		{"w too small", map[string]interface{}{"w": 1}, codeInvalidBudget},
		{"w missing", map[string]interface{}{}, codeInvalidBudget},
		{"unknown measure", map[string]interface{}{"w": 5, "measure": "XYZ"}, codeInvalidMeasure},
		{"unknown algorithm", map[string]interface{}{"w": 5, "algorithm": "bottom-up"}, codeUnknownAlgorithm},
	}
	for _, c := range cases {
		resp, raw := post(t, ts.URL+"/v1/stream", c.body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400: %s", c.name, resp.StatusCode, raw)
			continue
		}
		if _, code := errorBody(t, raw); code != c.code {
			t.Errorf("%s: code %q, want %q", c.name, code, c.code)
		}
	}
}

func TestStreamBatchVariantNotStreamable(t *testing.T) {
	reg := obs.NewRegistry()
	opts := core.DefaultOptions(errm.SED, core.Plus)
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 8, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	sv := NewWith([]*core.Trained{{Opts: opts, Policy: p}}, Config{Metrics: reg})
	t.Cleanup(sv.Close)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)

	resp, raw := post(t, ts.URL+"/v1/stream", map[string]interface{}{"w": 5, "algorithm": "rlts+"})
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
	if _, code := errorBody(t, raw); code != codeNotStreamable {
		t.Errorf("code = %q, want %q", code, codeNotStreamable)
	}
}

// TestStreamTTLEviction is the acceptance check: an idle session is gone
// after the TTL and the eviction counter incremented.
func TestStreamTTLEviction(t *testing.T) {
	ts, _, reg := streamServer(t, Config{StreamTTL: 40 * time.Millisecond})
	id := createStream(t, ts.URL, map[string]interface{}{"w": 5})
	post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": [][3]float64{{0, 0, 0}, {1, 0, 1}}})

	evicted := reg.Counter("rlts_stream_sessions_evicted_total", "")
	active := reg.Gauge("rlts_stream_sessions_active", "")
	deadline := time.Now().Add(3 * time.Second)
	for evicted.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if evicted.Value() == 0 {
		t.Fatal("idle session never evicted")
	}
	if got := active.Value(); got != 0 {
		t.Errorf("active sessions gauge = %g after eviction, want 0", got)
	}
	resp, raw := getRaw(t, ts.URL+"/v1/stream/"+id)
	if resp.StatusCode != 404 {
		t.Errorf("evicted session still answers: status %d: %s", resp.StatusCode, raw)
	}
}

func TestStreamSessionCap(t *testing.T) {
	ts, _, _ := streamServer(t, Config{MaxStreams: 2})
	createStream(t, ts.URL, map[string]interface{}{"w": 5})
	createStream(t, ts.URL, map[string]interface{}{"w": 5})
	resp, raw := post(t, ts.URL+"/v1/stream", map[string]interface{}{"w": 5})
	if resp.StatusCode != 429 {
		t.Fatalf("third create: status %d, want 429: %s", resp.StatusCode, raw)
	}
	if _, code := errorBody(t, raw); code != codeTooManyStreams {
		t.Errorf("code = %q, want %q", code, codeTooManyStreams)
	}
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestStreamPushToEvictedSession models the eviction race: a push handler
// that fetched the session from the map before the janitor removed it
// must not be able to push into the dead streamer and report success —
// the closed flag, set under the session mutex during eviction, rejects
// it with 404.
func TestStreamPushToEvictedSession(t *testing.T) {
	// Negative TTL disables the janitor goroutine; evictIdle is driven by
	// hand and treats every session as expired.
	ts, sv, reg := streamServer(t, Config{StreamTTL: -1})
	id := createStream(t, ts.URL, map[string]interface{}{"w": 5})

	sm := sv.streams
	sh := sm.shardFor(id)
	sh.mu.Lock()
	sess := sh.sessions[id]
	sh.mu.Unlock()
	if sess == nil {
		t.Fatal("session not in the manager map")
	}
	sm.evictIdle(time.Now())
	sess.mu.Lock()
	closed := sess.closed
	sess.mu.Unlock()
	if !closed {
		t.Fatal("evicted session not marked closed")
	}
	if got := reg.Counter("rlts_stream_sessions_evicted_total", "").Value(); got != 1 {
		t.Errorf("evicted counter = %d, want 1", got)
	}

	// Model the racing handler's view — it looked the session up before
	// eviction — by restoring the stale map entry, then push and snapshot.
	sh.mu.Lock()
	sh.sessions[id] = sess
	sh.mu.Unlock()
	resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": [][3]float64{{0, 0, 0}, {1, 0, 1}}})
	if resp.StatusCode != 404 {
		t.Errorf("push to evicted session: status %d, want 404: %s", resp.StatusCode, raw)
	}
	if snapResp, _ := getSnapshot(t, ts.URL, id); snapResp.StatusCode != 404 {
		t.Errorf("snapshot of evicted session: status %d, want 404", snapResp.StatusCode)
	}
	sh.mu.Lock()
	delete(sh.sessions, id)
	sh.mu.Unlock()
}

// TestStreamMetricsInServerRegistry: per-session streamer counters are
// recorded in Config.Metrics (what GET /metrics serves), not silently in
// the process-wide default registry.
func TestStreamMetricsInServerRegistry(t *testing.T) {
	ts, _, reg := streamServer(t, Config{})
	id := createStream(t, ts.URL, map[string]interface{}{"w": 5})
	pts := [][3]float64{{0, 0, 0}, {1, 0, 1}, {2, 0, 2}, {3, 0, 3}}
	if resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": pts}); resp.StatusCode != 200 {
		t.Fatalf("push: status %d: %s", resp.StatusCode, raw)
	}
	if resp := deleteStream(t, ts.URL, id); resp.StatusCode != 200 {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	if got := reg.Counter("rlts_stream_points_total", "").Value(); got != uint64(len(pts)) {
		t.Errorf("rlts_stream_points_total in server registry = %d, want %d", got, len(pts))
	}
}
