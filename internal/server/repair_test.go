package server

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"net/http/httptest"
	"testing"

	"rlts/internal/core"
	"rlts/internal/gen"
	"rlts/internal/obs"
	"rlts/internal/traj"
)

// dirtyPoints corrupts a clean generated trajectory with one defect
// family, in wire form. Non-finite rows are dropped: JSON cannot carry
// NaN or ±Inf, so no HTTP client can physically send them — that
// defect class is covered by the traj-level tests.
func dirtyPoints(t *testing.T, fam gen.DirtyConfig, n int) [][3]float64 {
	t.Helper()
	clean := gen.New(gen.Geolife(), 77).Trajectory(n)
	raw := gen.Raw(fam.Corrupt(clean, 177))
	out := raw[:0]
	for _, p := range raw {
		if isFiniteRow(p) {
			out = append(out, p)
		}
	}
	return out
}

func isFiniteRow(p [3]float64) bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// repairOpts is the repair opt-in used across these tests: window deep
// enough for every family's swaps, gate far above Geolife speeds.
var repairOpts = map[string]interface{}{"window": 16, "max_speed": 60}

// TestSimplifyRepairEveryFamily is the one-shot half of the acceptance
// criterion: with repair enabled, every dirty generator family ingests
// without a 400, and the simplification runs on the repaired points.
func TestSimplifyRepairEveryFamily(t *testing.T) {
	srv := testServer(t)
	sawStrictReject := false
	for _, fam := range gen.DirtyFamilies() {
		pts := dirtyPoints(t, fam, 300)
		// When the family actually breaks the strict contract (some,
		// like burst-gaps, only stretch time and stay valid), the
		// repair-less path must be a classified 400.
		if _, ferr := traj.FromPoints(pts); ferr != nil {
			resp, raw := post(t, srv.URL+"/v1/simplify", map[string]interface{}{
				"algorithm": "uniform", "w": 20, "points": pts,
			})
			if resp.StatusCode != 400 {
				t.Fatalf("%s: strict ingest accepted dirty input: %d %s", fam.Name, resp.StatusCode, raw)
			}
			_, code := errorBody(t, raw)
			switch code {
			case codePointsUnordered, codePointsDuplicate, codePointsNonFinite, codePointsTooShort:
				sawStrictReject = true
			default:
				t.Errorf("%s: unclassified reject code %q", fam.Name, code)
			}
		}
		// With repair every family must succeed.
		resp, raw := post(t, srv.URL+"/v1/simplify", map[string]interface{}{
			"algorithm": "uniform", "w": 20, "points": pts, "repair": repairOpts,
		})
		if resp.StatusCode != 200 {
			t.Fatalf("%s: repaired ingest failed: %d %s", fam.Name, resp.StatusCode, raw)
		}
		var out simplifyResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if out.Repair == nil || out.Repair.Pushed != len(pts) {
			t.Fatalf("%s: repair report missing or wrong: %+v", fam.Name, out.Repair)
		}
		if out.Repair.Emitted != out.Of {
			t.Errorf("%s: simplified %d points but repair emitted %d", fam.Name, out.Of, out.Repair.Emitted)
		}
		if kept, err := traj.FromPoints(out.Points); err != nil || kept.Len() != out.Kept {
			t.Errorf("%s: response points invalid: %v", fam.Name, err)
		}
	}
	if !sawStrictReject {
		t.Error("no family exercised the strict classified-reject path")
	}
}

// TestSimplifyRepairCleanIdentity: clean input with repair enabled is
// untouched — same simplification as without repair, zero defects.
func TestSimplifyRepairCleanIdentity(t *testing.T) {
	srv := testServer(t)
	pts := points(gen.New(gen.Geolife(), 9).Trajectory(200))
	req := map[string]interface{}{"algorithm": "rlts+", "measure": "SED", "w": 15, "points": pts}
	_, rawStrict := post(t, srv.URL+"/v1/simplify", req)
	req["repair"] = repairOpts
	resp, rawRepair := post(t, srv.URL+"/v1/simplify", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, rawRepair)
	}
	var strict, repaired simplifyResponse
	if err := json.Unmarshal(rawStrict, &strict); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawRepair, &repaired); err != nil {
		t.Fatal(err)
	}
	if repaired.Repair == nil || repaired.Repair.Emitted != len(pts) ||
		repaired.Repair.NonFinite+repaired.Repair.Late+repaired.Repair.Duplicates+repaired.Repair.Outliers != 0 {
		t.Fatalf("clean input produced defects: %+v", repaired.Repair)
	}
	if strict.Kept != repaired.Kept || strict.Error != repaired.Error {
		t.Fatalf("repair changed a clean simplification: %d/%g vs %d/%g",
			strict.Kept, strict.Error, repaired.Kept, repaired.Error)
	}
}

// TestBatchRepairMode: the batch endpoint accepts the repair opt-in,
// applies it per item, and reports per-item accounting.
func TestBatchRepairMode(t *testing.T) {
	srv := testServer(t)
	fam, _ := gen.DirtyFamilyByName("kitchen-sink")
	items := []map[string]interface{}{
		{"points": dirtyPoints(t, fam, 250)},
		{"points": points(gen.New(gen.Geolife(), 13).Trajectory(100))},
	}
	resp, raw := post(t, srv.URL+"/v1/simplify/batch", map[string]interface{}{
		"algorithm": "rlts+", "measure": "SED", "w": 10,
		"repair": repairOpts, "items": items,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out batchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 0 {
		t.Fatalf("repaired batch failed items: %s", raw)
	}
	if out.Items[0].Repair == nil || out.Items[0].Repair.Pushed == 0 {
		t.Fatalf("dirty item missing repair report: %+v", out.Items[0])
	}
	if out.Items[1].Repair == nil || out.Items[1].Repair.Emitted != 100 {
		t.Fatalf("clean item repair report wrong: %+v", out.Items[1].Repair)
	}
	// Without repair the dirty item fails inline while the clean one runs.
	resp, raw = post(t, srv.URL+"/v1/simplify/batch", map[string]interface{}{
		"algorithm": "rlts+", "measure": "SED", "w": 10, "items": items,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 1 || out.Items[0].Failure == nil || out.Items[1].Failure != nil {
		t.Fatalf("strict batch classification wrong: %s", raw)
	}
}

// TestStreamRepairEveryFamily is the streaming half of the acceptance
// criterion: a repair-enabled session ingests every dirty family,
// chunked arbitrarily, without a 400, and its snapshot is always a
// valid trajectory.
func TestStreamRepairEveryFamily(t *testing.T) {
	ts, _, reg := streamServer(t, Config{})
	for _, fam := range gen.DirtyFamilies() {
		pts := dirtyPoints(t, fam, 300)
		id := createStream(t, ts.URL, map[string]interface{}{
			"w": 8, "repair": repairOpts,
		})
		for lo := 0; lo < len(pts); lo += 37 {
			hi := lo + 37
			if hi > len(pts) {
				hi = len(pts)
			}
			resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points",
				map[string]interface{}{"points": pts[lo:hi]})
			if resp.StatusCode != 200 {
				t.Fatalf("%s: push [%d:%d] rejected: %d %s", fam.Name, lo, hi, resp.StatusCode, raw)
			}
		}
		resp, snap := getSnapshot(t, ts.URL, id)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: snapshot status %d", fam.Name, resp.StatusCode)
		}
		if len(snap.Points) >= 2 {
			if _, err := traj.FromPoints(snap.Points); err != nil {
				t.Fatalf("%s: snapshot invalid: %v", fam.Name, err)
			}
		}
	}
	// The per-defect counters saw the damage.
	var total uint64
	for _, defect := range []string{"non_finite", "late", "reordered", "duplicate", "outlier"} {
		total += reg.Counter("rlts_repair_points_total", "", obs.L("defect", defect)).Value()
	}
	if total == 0 {
		t.Error("rlts_repair_points_total saw no defects")
	}
}

// TestStreamRepairRestartBitIdentical extends the PR 7 acceptance
// scenario to repair sessions: drain mid-stream with fixes pending in
// the repair window, restart, and the final snapshot is bit-identical
// to an uninterrupted run — the v2 envelope carries the window.
func TestStreamRepairRestartBitIdentical(t *testing.T) {
	fam, _ := gen.DirtyFamilyByName("kitchen-sink")
	clean := gen.New(gen.Geolife(), 55).Trajectory(160)
	var pts [][3]float64
	for _, p := range gen.Raw(fam.Corrupt(clean, 7)) {
		if isFiniteRow(p) {
			pts = append(pts, p)
		}
	}
	create := map[string]interface{}{
		"algorithm": "rlts-skip", "w": 8, "repair": repairOpts,
	}

	// Uninterrupted control.
	tsC, _, _ := spillServer(t, t.TempDir(), Config{})
	idC := createStream(t, tsC.URL, create)
	pushPoints(t, tsC.URL, idC, pts)
	_, want := getSnapshot(t, tsC.URL, idC)

	// Interrupted run: cut mid-stream (the repair window is full at 16
	// pending fixes), drain, restart, finish.
	dir := t.TempDir()
	regA := obs.NewRegistry()
	svA := NewWith([]*core.Trained{onlineTrainedJ(t, 2)}, Config{Metrics: regA, SpillDir: dir})
	tsA := httptest.NewServer(svA.Handler())
	id := createStream(t, tsA.URL, create)
	pushPoints(t, tsA.URL, id, pts[:80])
	if err := svA.DrainStreams(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tsA.Close()
	svA.Close()

	tsB, _, _ := spillServer(t, dir, Config{})
	pushPoints(t, tsB.URL, id, pts[80:])
	_, got := getSnapshot(t, tsB.URL, id)
	if got.Seen != want.Seen || got.Kept != want.Kept || len(got.Points) != len(want.Points) {
		t.Fatalf("restart diverged: seen %d/%d kept %d/%d", got.Seen, want.Seen, got.Kept, want.Kept)
	}
	for i := range got.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("restart snapshot differs at %d: %v vs %v", i, got.Points[i], want.Points[i])
		}
	}
}

// TestSpillEnvelopeV1StillDecodes: spill files written before the repair
// extension (envelope version 1) must rehydrate unchanged.
func TestSpillEnvelopeV1StillDecodes(t *testing.T) {
	str, err := core.NewStreamer(onlineTrainedJ(t, 2).Policy, 8,
		onlineTrainedJ(t, 2).Opts, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	state := str.ExportState().AppendBinary(nil)
	// Hand-build the v1 layout: no repair section, state runs to the CRC.
	id := "00112233aabbccdd"
	key := "rlts-skip/sed"
	b := []byte(spillMagic)
	b = binary.LittleEndian.AppendUint32(b, 1)
	b = append(b, byte(len(id)))
	b = append(b, id...)
	b = append(b, byte(len(key)))
	b = append(b, key...)
	b = binary.LittleEndian.AppendUint64(b, 99)
	b = binary.LittleEndian.AppendUint64(b, uint64(0))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(state)))
	b = append(b, state...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))

	rec, err := decodeSession(b)
	if err != nil {
		t.Fatalf("v1 envelope rejected: %v", err)
	}
	if rec.ID != id || rec.Key != key || rec.Seed != 99 || rec.Repair != nil {
		t.Fatalf("v1 decode wrong: %+v", rec)
	}
	// And the v2 round trip preserves a repair section.
	rp := traj.NewRepairer(traj.RepairConfig{Window: 4, MaxSpeed: 10})
	rec.Repair = rp.ExportState()
	back, err := decodeSession(encodeSession(rec))
	if err != nil {
		t.Fatal(err)
	}
	if back.Repair == nil || back.Repair.Cfg != rp.Config() {
		t.Fatalf("v2 repair section lost: %+v", back.Repair)
	}
}

// TestPointsErrorCodeClassification unit-tests the classifier,
// including the non-finite branch that JSON wire bodies cannot reach
// (JSON has no NaN/Inf literal).
func TestPointsErrorCodeClassification(t *testing.T) {
	cases := []struct {
		pts  [][3]float64
		code string
	}{
		{[][3]float64{{0, 0, 0}, {1, 0, math.NaN()}}, codePointsNonFinite},
		{[][3]float64{{0, 0, 0}, {1, 0, 0}}, codePointsDuplicate},
		{[][3]float64{{0, 0, 5}, {1, 0, 2}}, codePointsUnordered},
		{[][3]float64{{0, 0, 0}}, codePointsTooShort},
	}
	for _, tc := range cases {
		_, err := traj.FromPoints(tc.pts)
		if err == nil {
			t.Fatalf("%v: expected error", tc.pts)
		}
		if got := pointsErrorCode(err); got != tc.code {
			t.Errorf("%v: code %q, want %q", tc.pts, got, tc.code)
		}
	}
}

// TestStreamRejectCodesClassified regression-tests each classified
// reject code on the strict stream path.
func TestStreamRejectCodesClassified(t *testing.T) {
	ts, _, reg := streamServer(t, Config{})
	id := createStream(t, ts.URL, map[string]interface{}{"w": 5})
	// Establish a last point so cross-push cases bite.
	resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points",
		map[string]interface{}{"points": [][3]float64{{0, 0, 0}, {1, 0, 1}}})
	if resp.StatusCode != 200 {
		t.Fatalf("seed push: %d %s", resp.StatusCode, raw)
	}
	cases := []struct {
		name   string
		pts    [][3]float64
		code   string
		defect string
	}{
		{"unordered", [][3]float64{{2, 0, 5}, {3, 0, 2}}, codePointsUnordered, "unordered"},
		{"duplicate", [][3]float64{{2, 0, 1}}, codePointsDuplicate, "duplicate"},
		{"too-short", [][3]float64{}, codePointsTooShort, "too_short"},
	}
	for _, tc := range cases {
		resp, raw := post(t, ts.URL+"/v1/stream/"+id+"/points",
			map[string]interface{}{"points": tc.pts})
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
			continue
		}
		if _, code := errorBody(t, raw); code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, code, tc.code)
		}
		if got := reg.Counter("rlts_ingest_rejects_total", "", obs.L("defect", tc.defect)).Value(); got != 1 {
			t.Errorf("%s: reject counter = %d, want 1", tc.name, got)
		}
	}
}
