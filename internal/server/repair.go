package server

// Opt-in dirty-input repair for the ingest endpoints. A request (or
// stream session) carrying a "repair" object routes its raw points
// through traj.Repairer before validation, so out-of-order, duplicated,
// noise-spiked or non-finite fixes are repaired instead of rejected with
// a 400. Without "repair" the strict contract stands, but rejects now
// carry a classified code (points_unordered / points_duplicate /
// points_non_finite / points_too_short) and a defect-labelled
// rlts_ingest_rejects_total increment, so operators can see WHAT the
// fleet's devices are sending before opting sessions into repair.
//
// Repaired requests report the per-defect accounting inline (the
// "repair" object of the response) and increment
// rlts_repair_points_total{defect=...}.

import (
	"errors"
	"net/http"

	"rlts/internal/obs"
	"rlts/internal/traj"
)

// Classified reject codes for the strict ingest paths: each is one
// defect class of the repair taxonomy (DESIGN.md §17).
const (
	codePointsUnordered = "points_unordered"
	codePointsDuplicate = "points_duplicate"
	codePointsNonFinite = "points_non_finite"
	codePointsTooShort  = "points_too_short"
)

// pointsErrorCode classifies a traj validation error into its
// machine-readable reject code (codeInvalidPoints when the error is not
// one of the known defect classes).
func pointsErrorCode(err error) string {
	switch {
	case errors.Is(err, traj.ErrNotFinite):
		return codePointsNonFinite
	case errors.Is(err, traj.ErrDuplicateTime):
		return codePointsDuplicate
	case errors.Is(err, traj.ErrNotOrdered):
		return codePointsUnordered
	case errors.Is(err, traj.ErrTooShort):
		return codePointsTooShort
	default:
		return codeInvalidPoints
	}
}

// repairParams is the wire form of a repair opt-in, mapping 1:1 onto
// traj.RepairConfig (zero values select the documented defaults).
type repairParams struct {
	Window      int     `json:"window,omitempty"`
	MaxSpeed    float64 `json:"max_speed,omitempty"`
	DupRadius   float64 `json:"dup_radius,omitempty"`
	AverageDups bool    `json:"average_dups,omitempty"`
}

func (p *repairParams) config() traj.RepairConfig {
	return traj.RepairConfig{
		Window:      p.Window,
		MaxSpeed:    p.MaxSpeed,
		DupRadius:   p.DupRadius,
		AverageDups: p.AverageDups,
	}
}

// repairReportJSON is the response shape of a repair accounting (one
// request's or one push's delta, or a session's cumulative total).
type repairReportJSON struct {
	Pushed     int `json:"pushed"`
	Emitted    int `json:"emitted"`
	NonFinite  int `json:"non_finite"`
	Late       int `json:"late"`
	Reordered  int `json:"reordered"`
	Duplicates int `json:"duplicates"`
	Outliers   int `json:"outliers"`
}

func reportJSON(r traj.RepairReport) *repairReportJSON {
	return &repairReportJSON{
		Pushed:     r.Pushed,
		Emitted:    r.Emitted,
		NonFinite:  r.NonFinite,
		Late:       r.Late,
		Reordered:  r.Reordered,
		Duplicates: r.Duplicates,
		Outliers:   r.Outliers,
	}
}

// repairMetrics holds the rlts_repair_* and reject series for one
// registry: a per-defect-class counter family plus a repaired-requests
// counter, and the defect-labelled reject counter the strict paths use.
type repairMetrics struct {
	requests *obs.Counter

	nonFinite  *obs.Counter
	late       *obs.Counter
	reordered  *obs.Counter
	duplicates *obs.Counter
	outliers   *obs.Counter

	rejects map[string]*obs.Counter
}

func newRepairMetrics(reg *obs.Registry) *repairMetrics {
	points := func(defect string) *obs.Counter {
		return reg.Counter("rlts_repair_points_total",
			"Fixes altered or dropped by the ingest repair stage, by defect class",
			obs.L("defect", defect))
	}
	reject := func(defect string) *obs.Counter {
		return reg.Counter("rlts_ingest_rejects_total",
			"Strict-validation ingest rejections, by defect class",
			obs.L("defect", defect))
	}
	return &repairMetrics{
		requests: reg.Counter("rlts_repair_requests_total",
			"Ingest requests served with repair enabled"),
		nonFinite:  points("non_finite"),
		late:       points("late"),
		reordered:  points("reordered"),
		duplicates: points("duplicate"),
		outliers:   points("outlier"),
		rejects: map[string]*obs.Counter{
			codePointsNonFinite: reject("non_finite"),
			codePointsDuplicate: reject("duplicate"),
			codePointsUnordered: reject("unordered"),
			codePointsTooShort:  reject("too_short"),
			codeInvalidPoints:   reject("other"),
		},
	}
}

// observe adds one repair delta to the per-defect counters.
func (m *repairMetrics) observe(d traj.RepairReport) {
	m.requests.Inc()
	add := func(c *obs.Counter, n int) {
		if n > 0 {
			c.Add(uint64(n))
		}
	}
	add(m.nonFinite, d.NonFinite)
	add(m.late, d.Late)
	add(m.reordered, d.Reordered)
	add(m.duplicates, d.Duplicates)
	add(m.outliers, d.Outliers)
}

// reject counts one classified strict-path rejection.
func (m *repairMetrics) reject(code string) {
	if c, ok := m.rejects[code]; ok {
		c.Inc()
	}
}

// rejectPoints is the strict paths' shared answer: classify, count,
// write the typed 400.
func (s *Server) rejectPoints(w http.ResponseWriter, err error) {
	code := pointsErrorCode(err)
	s.repairMet.reject(code)
	httpError(w, http.StatusBadRequest, code, "invalid trajectory: %v", err)
}

// repairTrajectory runs the one-shot repair pipeline for a request that
// opted in, reporting the failure itself (repair is total, so the only
// failure is fewer than two surviving points). Returns nil when the
// request is already answered.
func (s *Server) repairTrajectory(w http.ResponseWriter, points [][3]float64, params *repairParams) (traj.Trajectory, *repairReportJSON) {
	t, rep, err := traj.Repair(points, params.config())
	if err != nil {
		s.repairMet.reject(codePointsTooShort)
		httpError(w, http.StatusBadRequest, codePointsTooShort, "repair: %v", err)
		return nil, nil
	}
	s.repairMet.observe(rep)
	return t, reportJSON(rep)
}
