package server

import (
	"encoding/json"
	"testing"

	"rlts/internal/gen"
	"rlts/internal/traj"
)

func postBounded(t *testing.T, url string, body map[string]interface{}) (int, simplifyResponse, map[string]string) {
	t.Helper()
	resp, raw := post(t, url+"/v1/simplify", body)
	if resp.StatusCode != 200 {
		var e map[string]string
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("status %d, unparseable error body %q", resp.StatusCode, raw)
		}
		return resp.StatusCode, simplifyResponse{}, e
	}
	var out simplifyResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, nil
}

func boundedTraj() traj.Trajectory {
	return gen.New(gen.Geolife(), 42).Trajectory(120)
}

// requireBoundedOK asserts a 200 bounded response is internally honest:
// bound echoed, bound_met true, and the returned point count matching
// "kept". The oracle re-score itself happens server-side; the pillar in
// internal/check proves the algorithms, this proves the wiring.
func requireBoundedOK(t *testing.T, status int, out simplifyResponse, e map[string]string, wantAlgo string, bound float64) {
	t.Helper()
	if status != 200 {
		t.Fatalf("status %d: %v", status, e)
	}
	if out.Algorithm != wantAlgo {
		t.Errorf("algorithm %q, want %q", out.Algorithm, wantAlgo)
	}
	if out.Bound == nil || *out.Bound != bound {
		t.Errorf("bound not echoed: %v", out.Bound)
	}
	if out.BoundMet == nil || !*out.BoundMet {
		t.Errorf("bound_met = %v, want true (error %v, bound %v)", out.BoundMet, out.Error, bound)
	}
	if out.Error > bound {
		t.Errorf("reported error %v exceeds bound %v", out.Error, bound)
	}
	if len(out.Points) != out.Kept {
		t.Errorf("kept %d but %d points returned", out.Kept, len(out.Points))
	}
}

func TestBoundedRoutesByMeasure(t *testing.T) {
	srv := testServer(t)
	pts := points(boundedTraj())
	for _, tc := range []struct {
		measure, wantAlgo string
	}{
		{"SED", "CISED"},
		{"PED", "OPERB"},
		{"DAD", "Min-Size(Greedy)"}, // no DAD policy registered
		{"SAD", "Min-Size(Greedy)"},
	} {
		status, out, e := postBounded(t, srv.URL, map[string]interface{}{
			"measure": tc.measure, "bound": 5.0, "points": pts,
		})
		requireBoundedOK(t, status, out, e, tc.wantAlgo, 5.0)
		if out.Kept >= len(pts) && tc.measure != "DAD" && tc.measure != "SAD" {
			t.Errorf("%s: no compression at bound 5 (kept %d of %d)", tc.measure, out.Kept, len(pts))
		}
	}
}

func TestBoundedPolicySearch(t *testing.T) {
	// Naming the registered policy runs the Min-Size search over it.
	srv := testServer(t)
	pts := points(boundedTraj())
	status, out, e := postBounded(t, srv.URL, map[string]interface{}{
		"algorithm": "rlts+", "measure": "SED", "bound": 5.0, "points": pts,
	})
	requireBoundedOK(t, status, out, e, "Min-Size(RLTS+)", 5.0)
}

func TestBoundedAutoRouting(t *testing.T) {
	srv := testServer(t)
	pts := points(boundedTraj())
	status, out, e := postBounded(t, srv.URL, map[string]interface{}{
		"algorithm": "auto", "measure": "SED", "bound": 5.0, "points": pts,
	})
	if status != 200 {
		t.Fatalf("status %d: %v", status, e)
	}
	// 120 smooth-ish Geolife points: the router picks the one-pass.
	if out.Algorithm != "CISED" && out.Algorithm != "Min-Size(RLTS+)" {
		t.Errorf("auto picked %q", out.Algorithm)
	}
	if out.BoundMet == nil || !*out.BoundMet {
		t.Error("auto route missed the bound")
	}
}

func TestBoundedRejectsInvalidRequests(t *testing.T) {
	srv := testServer(t)
	pts := points(boundedTraj())
	cases := []struct {
		name     string
		body     map[string]interface{}
		wantCode string
	}{
		{"bound with w", map[string]interface{}{"measure": "SED", "bound": 5.0, "w": 10, "points": pts}, "invalid_budget"},
		{"bound with ratio", map[string]interface{}{"measure": "SED", "bound": 5.0, "ratio": 0.2, "points": pts}, "invalid_budget"},
		{"negative bound", map[string]interface{}{"measure": "SED", "bound": -1.0, "points": pts}, "invalid_budget"},
		{"cised under PED", map[string]interface{}{"algorithm": "cised", "measure": "PED", "bound": 5.0, "points": pts}, "unknown_algorithm"},
		{"operb under SED", map[string]interface{}{"algorithm": "operb", "measure": "SED", "bound": 5.0, "points": pts}, "unknown_algorithm"},
		{"unknown backend", map[string]interface{}{"algorithm": "nope", "measure": "SED", "bound": 5.0, "points": pts}, "unknown_algorithm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, e := postBounded(t, srv.URL, tc.body)
			if status != 400 {
				t.Fatalf("status %d, want 400", status)
			}
			if e["code"] != tc.wantCode {
				t.Errorf("code %q, want %q (%s)", e["code"], tc.wantCode, e["error"])
			}
		})
	}
}

func TestBoundedZeroBoundKeepsEverything(t *testing.T) {
	srv := testServer(t)
	tr := boundedTraj()
	status, out, e := postBounded(t, srv.URL, map[string]interface{}{
		"measure": "SED", "bound": 0.0, "points": points(tr),
	})
	requireBoundedOK(t, status, out, e, "CISED", 0)
	if out.Kept != len(tr) {
		t.Errorf("bound 0 kept %d of %d", out.Kept, len(tr))
	}
	if out.Error != 0 {
		t.Errorf("bound 0 error = %v", out.Error)
	}
}

func TestBoundedExplicitOnePass(t *testing.T) {
	srv := testServer(t)
	pts := points(boundedTraj())
	status, out, e := postBounded(t, srv.URL, map[string]interface{}{
		"algorithm": "operb", "measure": "PED", "bound": 3.0, "points": pts,
	})
	requireBoundedOK(t, status, out, e, "OPERB", 3.0)
	status, out, e = postBounded(t, srv.URL, map[string]interface{}{
		"algorithm": "minsize", "measure": "SED", "bound": 3.0, "points": pts,
	})
	requireBoundedOK(t, status, out, e, "Min-Size(RLTS+)", 3.0)
}

func TestBudgetConflictRejected(t *testing.T) {
	// Regression for the non-bounded path: w and ratio together used to
	// silently drop ratio; now the conflict is a typed 400.
	srv := testServer(t)
	pts := points(boundedTraj())
	resp, raw := post(t, srv.URL+"/v1/simplify", map[string]interface{}{
		"algorithm": "bottom-up", "measure": "SED", "w": 10, "ratio": 0.5, "points": pts,
	})
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, raw)
	}
	var e map[string]string
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if e["code"] != "invalid_budget" {
		t.Errorf("code %q, want invalid_budget", e["code"])
	}
	// Each alone still works.
	for _, body := range []map[string]interface{}{
		{"algorithm": "bottom-up", "w": 10, "points": pts},
		{"algorithm": "bottom-up", "ratio": 0.5, "points": pts},
	} {
		if resp, raw := post(t, srv.URL+"/v1/simplify", body); resp.StatusCode != 200 {
			t.Errorf("lone budget rejected: %d %s", resp.StatusCode, raw)
		}
	}
}
