package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/traj"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	// One small trained policy so the policy dispatch path is covered.
	opts := core.DefaultOptions(errm.SED, core.Plus)
	to := core.DefaultTrainOptions()
	to.RL.Episodes = 3
	trained, _, err := core.Train(gen.New(gen.Geolife(), 1).Dataset(5, 60), opts, to)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New([]*core.Trained{trained}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func points(tr traj.Trajectory) [][3]float64 {
	out := make([][3]float64, tr.Len())
	for i, p := range tr {
		out[i] = [3]float64{p.X, p.Y, p.T}
	}
	return out
}

func post(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestAlgorithmsList(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out.Algorithms, ",")
	for _, want := range []string{"bottom-up", "sttrace", "rlts+/sed"} {
		if !strings.Contains(joined, want) {
			t.Errorf("algorithms %v missing %q", out.Algorithms, want)
		}
	}
}

func TestSimplifyWithBaseline(t *testing.T) {
	srv := testServer(t)
	tr := gen.New(gen.Truck(), 2).Trajectory(200)
	resp, body := post(t, srv.URL+"/v1/simplify", map[string]interface{}{
		"algorithm": "bottom-up",
		"measure":   "SED",
		"ratio":     0.1,
		"points":    points(tr),
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out simplifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "Bottom-Up" || out.Kept > 20 || out.Of != 200 || len(out.Points) != out.Kept {
		t.Errorf("response wrong: %+v", out)
	}
	if out.Error < 0 {
		t.Errorf("negative error %v", out.Error)
	}
}

func TestSimplifyWithPolicy(t *testing.T) {
	srv := testServer(t)
	tr := gen.New(gen.Geolife(), 3).Trajectory(150)
	resp, body := post(t, srv.URL+"/v1/simplify", map[string]interface{}{
		"algorithm": "rlts+",
		"measure":   "SED",
		"w":         20,
		"points":    points(tr),
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out simplifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "RLTS+" || out.Kept > 20 {
		t.Errorf("response wrong: %+v", out)
	}
}

func TestSimplifyRejects(t *testing.T) {
	srv := testServer(t)
	tr := gen.New(gen.Geolife(), 4).Trajectory(50)
	cases := []map[string]interface{}{
		{"algorithm": "warp", "points": points(tr)},                        // unknown algo
		{"algorithm": "bottom-up", "points": [][3]float64{{0, 0, 0}}},      // too few points
		{"algorithm": "bottom-up", "measure": "XYZ", "points": points(tr)}, // bad measure
		{"algorithm": "rlts+", "measure": "PED", "points": points(tr)},     // policy measure mismatch
	}
	for i, c := range cases {
		resp, _ := post(t, srv.URL+"/v1/simplify", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Unordered timestamps rejected.
	resp, _ := post(t, srv.URL+"/v1/simplify", map[string]interface{}{
		"algorithm": "bottom-up",
		"points":    [][3]float64{{0, 0, 5}, {1, 1, 3}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unordered trajectory: status %d", resp.StatusCode)
	}
	// Bad JSON body.
	raw, err := http.Post(srv.URL+"/v1/simplify", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON: status %d", raw.StatusCode)
	}
	// Wrong method.
	get, err := http.Get(srv.URL + "/v1/simplify")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET simplify: status %d", get.StatusCode)
	}
}

func TestBellmanSizeCap(t *testing.T) {
	srv := testServer(t)
	tr := gen.New(gen.Geolife(), 5).Trajectory(2500)
	resp, body := post(t, srv.URL+"/v1/simplify", map[string]interface{}{
		"algorithm": "bellman",
		"ratio":     0.1,
		"points":    points(tr),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized bellman: status %d (%s)", resp.StatusCode, body)
	}
}

func TestStats(t *testing.T) {
	srv := testServer(t)
	tr := gen.New(gen.Truck(), 6).Trajectory(100)
	resp, body := post(t, srv.URL+"/v1/stats", map[string]interface{}{"points": points(tr)})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out statsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Points != 100 || out.Duration <= 0 || out.PathLength <= 0 {
		t.Errorf("stats wrong: %+v", out)
	}
}

func TestDefaultAlgorithmAndRatio(t *testing.T) {
	srv := testServer(t)
	tr := gen.New(gen.Geolife(), 7).Trajectory(100)
	// Empty algorithm falls back to Bottom-Up; missing budget to ratio 0.1.
	resp, body := post(t, srv.URL+"/v1/simplify", map[string]interface{}{"points": points(tr)})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out simplifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "Bottom-Up" || out.Kept != 10 {
		t.Errorf("defaults wrong: %+v", out)
	}
}
