package server

// Session spill: the durability half of the sharded stream store.
//
// A spilled session is one file, <SpillDir>/<id>.sess, written atomically
// (temp file + fsync + rename, storage.WriteFileAtomic) and sealed with a
// CRC so a torn or bit-rotted file is detected before any of it is
// trusted. The envelope carries everything the streamer state codec
// (core.StreamerState) does not know about: the session id, the policy
// registry key, the sampling seed and the last-active time.
//
//	"RLSS"  magic (4 bytes)
//	u32     envelope version
//	u8+...  session id (len-prefixed, lower-case hex)
//	u8+...  policy key (len-prefixed, "algo/measure")
//	u64     sampling seed (two's-complement int64)
//	u64     last-active time, unix nanoseconds
//	u32+... streamer state (len-prefixed core.StreamerState encoding)
//	u8      [v2] repair flag; when 1:
//	u32+... [v2] repair state (len-prefixed traj.RepairState encoding)
//	u32     CRC-32 (IEEE) of every preceding byte
//
// Version 2 added the repair extension; version-1 files (no repair
// section) still decode, so spills written before the upgrade rehydrate
// unchanged.
//
// Ownership of a session's state is exclusive: either the shard map holds
// it (hot) or the spill file does (cold), never both. Spilling moves it
// to disk under the shard lock; rehydration decodes, resumes and deletes
// the file under the same lock, so no interleaving of requests can see a
// half-moved session. A session is therefore durable from its most recent
// spill — pushes accepted after the last spill die with the process,
// which is the same contract training checkpoints give batches.
//
// Failure handling is asymmetric by design. A spill WRITE failure is
// survivable: the session simply stays hot and rlts_stream_spill_errors_
// total increments. A spill READ failure (bad magic, CRC mismatch,
// truncation, a state the streamer rejects) is not: the bytes are moved
// aside to <id>.sess.corrupt for the operator, rlts_stream_spill_corrupt_
// total increments, and the session is reported gone (404) — never a
// crash, never a half-restored streamer.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rlts/internal/core"
	"rlts/internal/storage"
	"rlts/internal/traj"
)

const (
	spillMagic = "RLSS"
	// spillVersion is the envelope version written; spillMinVersion..
	// spillVersion are accepted on read (v1 predates the repair
	// extension).
	spillVersion    = 2
	spillMinVersion = 1
	spillExt        = ".sess"
	// corruptExt is appended to a quarantined spill file's name (after
	// spillExt, so the recovery scan and the reaper skip it).
	corruptExt = ".corrupt"

	maxSpillID  = 64
	maxSpillKey = 255
)

func defaultSpillWrite(path string, data []byte) error {
	return storage.WriteFileAtomic(path, data)
}

// validSpillID reports whether id can safely name a spill file: NON-hex
// ids (including path separators, dots, anything traversal-shaped) never
// touch the filesystem. Generated session ids are 16 lower-case hex
// chars, so this rejects nothing legitimate.
func validSpillID(id string) bool {
	if len(id) == 0 || len(id) > maxSpillID {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (m *streamManager) spillPath(id string) string {
	return filepath.Join(m.spillDir, id+spillExt)
}

// sessionRecord is the decoded form of one spill file.
type sessionRecord struct {
	ID         string
	Key        string // policy registry key ("algo/measure")
	Seed       int64
	LastActive int64 // unix nanoseconds
	State      *core.StreamerState
	Repair     *traj.RepairState // nil for sessions without repair (and all v1 files)
}

// encodeSession produces the sealed envelope described atop this file.
func encodeSession(rec *sessionRecord) []byte {
	state := rec.State.AppendBinary(nil)
	b := make([]byte, 0, len(spillMagic)+32+len(rec.ID)+len(rec.Key)+len(state))
	b = append(b, spillMagic...)
	b = binary.LittleEndian.AppendUint32(b, spillVersion)
	b = append(b, byte(len(rec.ID)))
	b = append(b, rec.ID...)
	b = append(b, byte(len(rec.Key)))
	b = append(b, rec.Key...)
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.Seed))
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.LastActive))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(state)))
	b = append(b, state...)
	if rec.Repair != nil {
		b = append(b, 1)
		rs := rec.Repair.AppendBinary(nil)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(rs)))
		b = append(b, rs...)
	} else {
		b = append(b, 0)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeSession decodes and verifies a spill file. Like the streamer
// state decoder it is total: any malformed input — truncated, trailing
// garbage, CRC mismatch, implausible lengths — yields an error, never a
// panic or a partially-filled record.
func decodeSession(data []byte) (*sessionRecord, error) {
	if len(data) < len(spillMagic)+4+4 {
		return nil, fmt.Errorf("server: spill file too short (%d bytes)", len(data))
	}
	if string(data[:len(spillMagic)]) != spillMagic {
		return nil, fmt.Errorf("server: spill file has wrong magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("server: spill file checksum mismatch (%08x != %08x)", got, want)
	}
	d := spillReader{buf: body, off: len(spillMagic)}
	ver := d.u32()
	if d.err == nil && (ver < spillMinVersion || ver > spillVersion) {
		return nil, fmt.Errorf("server: spill envelope version %d, want %d..%d",
			ver, spillMinVersion, spillVersion)
	}
	rec := &sessionRecord{}
	rec.ID = d.str(maxSpillID)
	rec.Key = d.str(maxSpillKey)
	rec.Seed = int64(d.u64())
	rec.LastActive = int64(d.u64())
	stateLen := int(d.u32())
	if d.err != nil {
		return nil, fmt.Errorf("server: decode spill file: %w", d.err)
	}
	if ver == 1 {
		// v1: the streamer state runs to the end of the body.
		if stateLen != len(body)-d.off {
			return nil, fmt.Errorf("server: spill file declares %d state bytes, %d remain",
				stateLen, len(body)-d.off)
		}
	}
	stateBytes := d.take(stateLen)
	var repairBytes []byte
	if ver >= 2 {
		if d.bool() {
			repairBytes = d.take(int(d.u32()))
		}
		if d.err == nil && d.off != len(body) {
			d.err = fmt.Errorf("%d trailing bytes", len(body)-d.off)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("server: decode spill file: %w", d.err)
	}
	if !validSpillID(rec.ID) {
		return nil, fmt.Errorf("server: spill file carries invalid session id %q", rec.ID)
	}
	if rec.Key == "" {
		return nil, fmt.Errorf("server: spill file carries empty policy key")
	}
	st, err := core.DecodeStreamerState(stateBytes)
	if err != nil {
		return nil, err
	}
	rec.State = st
	if repairBytes != nil {
		rs, err := traj.DecodeRepairState(repairBytes)
		if err != nil {
			return nil, err
		}
		rec.Repair = rs
	}
	return rec, nil
}

// spillReader is a bounds-checked little-endian cursor (reads past the
// end set err and return zeros).
type spillReader struct {
	buf []byte
	off int
	err error
}

func (d *spillReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at byte %d (need %d of %d)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *spillReader) bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

func (d *spillReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *spillReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *spillReader) str(max int) string {
	n := d.take(1)
	if n == nil {
		return ""
	}
	if int(n[0]) > max {
		d.err = fmt.Errorf("string of %d bytes exceeds limit %d", n[0], max)
		return ""
	}
	return string(d.take(int(n[0])))
}

// spillSessionLocked moves one hot session to disk. The caller holds the
// shard lock; the session lock is taken here. Returns false when the
// write failed (the session stays hot and live — the ISSUE's degraded
// mode — and rlts_stream_spill_errors_total counts it).
func (m *streamManager) spillSessionLocked(sh *streamShard, sess *streamSession) bool {
	sess.mu.Lock()
	if sess.closed || sess.spilled {
		sess.mu.Unlock()
		return true
	}
	rec := &sessionRecord{
		ID:         sess.id,
		Key:        sess.key,
		Seed:       sess.seed,
		LastActive: sess.lastActive.Load(),
		State:      sess.str.ExportState(), // flushes metric deltas
	}
	if sess.rp != nil {
		rec.Repair = sess.rp.ExportState()
	}
	if err := m.spillWrite(m.spillPath(sess.id), encodeSession(rec)); err != nil {
		sess.mu.Unlock()
		m.spillErrors.Inc()
		return false
	}
	sess.spilled = true
	sess.str = nil // the spill file owns the state now; free the memory
	sess.mu.Unlock()
	delete(sh.sessions, sess.id)
	m.hot.Dec()
	m.spills.Inc()
	return true
}

// enforceBudgetLocked spills the coldest sessions of a shard until it is
// back under its hot budget. keep (the session the caller just inserted
// or rehydrated) is never chosen, so an old-but-just-touched session
// cannot be spilled back out in the same breath. Called under the shard
// lock; the disk write happens under it too — that is the point of
// sharding, a slow disk stalls 1/N of the keyspace, not all of it.
func (m *streamManager) enforceBudgetLocked(sh *streamShard, keep *streamSession) {
	if m.maxHot <= 0 {
		return
	}
	for len(sh.sessions) > m.maxHot {
		var victim *streamSession
		for _, s := range sh.sessions {
			if s == keep {
				continue
			}
			if victim == nil || s.lastActive.Load() < victim.lastActive.Load() {
				victim = s
			}
		}
		if victim == nil || !m.spillSessionLocked(sh, victim) {
			// Nothing spillable, or the disk is unhappy: stay over budget
			// rather than dropping live sessions.
			return
		}
	}
}

// quarantineLocked moves a spill file that failed to decode out of the
// store's namespace (best effort: rename to .corrupt, fall back to
// removal) and settles the accounting: the session it held is gone.
// Called under the shard lock.
func (m *streamManager) quarantineLocked(path string) {
	m.corrupt.Inc()
	removed := os.Rename(path, path+corruptExt) == nil
	if !removed {
		removed = os.Remove(path) == nil
	}
	if removed {
		m.active.Dec()
		m.total.Add(-1)
	}
}

// rehydrateLocked restores a spilled session into the shard map. Called
// with the shard lock held (all of a shard's spill-file I/O happens under
// its lock, which is what makes hot/cold ownership atomic). Returns
// (nil, nil) when no spill file exists or the session expired on disk,
// and a non-nil error when the file existed but could not be trusted —
// it has already been quarantined.
func (s *Server) rehydrateLocked(sh *streamShard, id string) (*streamSession, error) {
	sm := s.streams
	if !validSpillID(id) {
		return nil, nil
	}
	path := sm.spillPath(id)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		sm.quarantineLocked(path)
		return nil, err
	}
	rec, err := decodeSession(data)
	if err != nil || rec.ID != id {
		if err == nil {
			err = fmt.Errorf("server: spill file for %q carries session id %q", id, rec.ID)
		}
		sm.quarantineLocked(path)
		return nil, err
	}
	if sm.ttl > 0 && time.Now().UnixNano()-rec.LastActive > int64(sm.ttl) {
		// Expired while cold: the disk-tier equivalent of the janitor.
		if os.Remove(path) == nil {
			sm.evicted.Inc()
			sm.active.Dec()
			sm.total.Add(-1)
		}
		return nil, nil
	}
	p, ok := s.policies[rec.Key]
	if !ok {
		sm.quarantineLocked(path)
		return nil, fmt.Errorf("server: spilled session %q needs unregistered policy %q", id, rec.Key)
	}
	var rng *rand.Rand
	if rec.State.Sample {
		rng = rand.New(rand.NewSource(rec.Seed))
	}
	// Resume on a fresh policy clone for the same reason creates do: the
	// registered instance's forward scratch is shared, and sessions push
	// concurrently.
	str, err := core.ResumeStreamer(p.Policy.Clone(), p.Opts, rec.State, rng)
	if err != nil {
		sm.quarantineLocked(path)
		return nil, err
	}
	var rp *traj.Repairer
	if rec.Repair != nil {
		rp, err = traj.ResumeRepairer(rec.Repair)
		if err != nil {
			sm.quarantineLocked(path)
			return nil, err
		}
	}
	str.UseRegistry(sm.reg)
	sess := &streamSession{
		id:   id,
		key:  rec.Key,
		algo: p.Opts.Name(),
		seed: rec.Seed,
		str:  str,
		rp:   rp,
		w:    rec.State.W,
	}
	sess.touch()
	// Ownership moves back to memory: from here the file is stale, and
	// keeping it would let the reaper double-account the session.
	os.Remove(path)
	sh.sessions[id] = sess
	sm.hot.Inc()
	sm.rehydrated.Inc()
	sm.enforceBudgetLocked(sh, sess)
	return sess, nil
}

// closeSpilledLocked handles DELETE for a session that lives on disk:
// the state file answers seen/kept without paying for a policy resume.
// Called under the shard lock; reports true when the request was
// answered (closed, or corrupt-and-quarantined).
func (s *Server) closeSpilledLocked(w http.ResponseWriter, sh *streamShard, id string) bool {
	sm := s.streams
	if !validSpillID(id) {
		return false
	}
	path := sm.spillPath(id)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false
	}
	if err != nil {
		sm.quarantineLocked(path)
	} else if rec, derr := decodeSession(data); derr != nil || rec.ID != id {
		sm.quarantineLocked(path)
	} else {
		if os.Remove(path) == nil {
			sm.closed.Inc()
			sm.active.Dec()
			sm.total.Add(-1)
		}
		st := rec.State
		kept := len(st.Entries)
		// Mirror Streamer.Snapshot: the last accepted point is appended
		// when it is not the buffered tail.
		if st.HasLast && (kept == 0 || st.Last.T > st.Entries[kept-1].P.T) {
			kept++
		}
		writeJSON(w, map[string]interface{}{"closed": true, "seen": st.Seen, "kept": kept})
		return true
	}
	httpError(w, http.StatusNotFound, codeStreamCorrupt,
		"streaming session %q had a corrupt spill file; it was quarantined", id)
	return true
}

// drain spills every hot session so a restart can rehydrate them —
// the SIGTERM path (Server.DrainStreams). Write failures leave those
// sessions hot (they die with the process) and are reported.
func (m *streamManager) drain() error {
	if m.spillDir == "" {
		return fmt.Errorf("server: cannot drain sessions, no spill directory configured")
	}
	failed := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			if !m.spillSessionLocked(sh, sess) {
				failed++
			}
		}
		sh.mu.Unlock()
	}
	if failed > 0 {
		return fmt.Errorf("server: %d streaming sessions failed to spill and will not survive restart", failed)
	}
	return nil
}

// DrainStreams spills every live streaming session to Config.SpillDir so
// a restarted server (same spill directory) rehydrates them on their next
// push or snapshot, bit-identical. Call it after the HTTP listener has
// drained (no in-flight requests) and before process exit.
func (s *Server) DrainStreams() error { return s.streams.drain() }

// recoveryScan runs once at startup: it counts the spill files a previous
// process left behind so the session gauges and the create cap see them
// from the first request. Files are decoded lazily, on first touch.
func (m *streamManager) recoveryScan() {
	if err := os.MkdirAll(m.spillDir, 0o755); err != nil {
		return
	}
	ents, err := os.ReadDir(m.spillDir)
	if err != nil {
		return
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), spillExt) &&
			validSpillID(strings.TrimSuffix(e.Name(), spillExt)) {
			n++
		}
	}
	if n > 0 {
		m.recovered.Add(uint64(n))
		m.active.Add(float64(n))
		m.total.Add(int64(n))
	}
}

// spillReaper is the disk tier's janitor: spill files idle past the TTL
// (by mtime — a spill is written when the session was last worth keeping
// hot, so mtime ≥ last activity) are removed. It shares the in-memory
// janitor's cadence.
func (m *streamManager) spillReaper() {
	t := time.NewTicker(m.janitorTick())
	defer t.Stop()
	for {
		select {
		case <-m.stopJanitor:
			return
		case now := <-t.C:
			m.reapSpilled(now)
		}
	}
}

func (m *streamManager) reapSpilled(now time.Time) {
	ents, err := os.ReadDir(m.spillDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, spillExt) {
			continue
		}
		id := strings.TrimSuffix(name, spillExt)
		if !validSpillID(id) {
			continue
		}
		info, err := e.Info()
		if err != nil || now.Sub(info.ModTime()) <= m.ttl {
			continue
		}
		path := filepath.Join(m.spillDir, name)
		sh := m.shardFor(id)
		sh.mu.Lock()
		// Under the shard lock the hot/cold ownership is stable: skip if
		// the session rehydrated since the ReadDir, and re-stat in case
		// the file was re-spilled fresh in the meantime.
		if _, hot := sh.sessions[id]; !hot {
			if cur, err := os.Stat(path); err == nil && now.Sub(cur.ModTime()) > m.ttl {
				if os.Remove(path) == nil {
					m.evicted.Inc()
					m.active.Dec()
					m.total.Add(-1)
				}
			}
		}
		sh.mu.Unlock()
	}
}
