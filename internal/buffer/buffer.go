// Package buffer implements the bounded point buffer at the heart of both
// the RLTS algorithms and the online baselines (STTrace, SQUISH,
// SQUISH-E): a doubly-linked list of points in trajectory order, paired
// with an indexed min-heap over each droppable point's "value" (the error
// its removal would introduce).
//
// The buffer itself is policy-agnostic: callers decide which value
// function to use (Eq. 1 online, Eq. 12 batch, or a baseline heuristic)
// and which entry to drop; the buffer provides O(log W) maintenance of
// the value order, which is what gives every algorithm built on it the
// O((n-W) log W) complexity the paper reports.
package buffer

import (
	"fmt"

	"rlts/internal/geo"
)

// Entry is one buffered point. Its Value is meaningful only while the
// entry is droppable (has both neighbours); endpoints carry no value and
// live outside the heap.
type Entry struct {
	Index int // index of the point in the original trajectory
	P     geo.Point

	value      float64
	heapPos    int // position in the value heap, -1 if absent
	prev, next *Entry
}

// Value returns the entry's current value.
func (e *Entry) Value() float64 { return e.value }

// Prev returns the buffer predecessor, or nil at the head.
func (e *Entry) Prev() *Entry { return e.prev }

// Next returns the buffer successor, or nil at the tail.
func (e *Entry) Next() *Entry { return e.next }

// InHeap reports whether the entry currently participates in the value
// order (i.e. is droppable).
func (e *Entry) InHeap() bool { return e.heapPos >= 0 }

// Buffer is the bounded point buffer. The zero value is not usable; use
// New.
type Buffer struct {
	head, tail *Entry
	heap       []*Entry
	size       int

	kout      []*Entry // KLowest result scratch, reused across calls
	kfrontier []int    // KLowest frontier scratch, reused across calls
}

// New creates an empty buffer with capacity hint cap (the storage budget
// W; the buffer does not enforce it — the simplification loop does).
func New(capHint int) *Buffer {
	return &Buffer{heap: make([]*Entry, 0, capHint)}
}

// Size returns the number of buffered points.
func (b *Buffer) Size() int { return b.size }

// Droppable returns the number of entries in the value heap.
func (b *Buffer) Droppable() int { return len(b.heap) }

// Head and Tail return the first and last buffered entries (nil when
// empty).
func (b *Buffer) Head() *Entry { return b.head }

// Tail returns the last buffered entry, or nil when empty.
func (b *Buffer) Tail() *Entry { return b.tail }

// Append adds a point at the tail and returns its entry. The entry starts
// without a value (not droppable); once the caller can compute a value for
// the previous tail, it should call SetValue on it.
func (b *Buffer) Append(index int, p geo.Point) *Entry {
	e := &Entry{Index: index, P: p, heapPos: -1}
	if b.tail == nil {
		b.head, b.tail = e, e
	} else {
		e.prev = b.tail
		b.tail.next = e
		b.tail = e
	}
	b.size++
	return e
}

// SetValue assigns (or updates) the value of an interior entry and
// repairs its heap position. It panics on endpoints: they are never
// droppable.
func (b *Buffer) SetValue(e *Entry, v float64) {
	if e.prev == nil || e.next == nil {
		panic("buffer: SetValue on an endpoint")
	}
	if e.heapPos < 0 {
		e.value = v
		e.heapPos = len(b.heap)
		b.heap = append(b.heap, e)
		b.siftUp(e.heapPos)
		return
	}
	old := e.value
	e.value = v
	if v < old {
		b.siftUp(e.heapPos)
	} else if v > old {
		b.siftDown(e.heapPos)
	}
}

// Drop removes entry e from the buffer and the heap and returns its
// former neighbours so the caller can repair their values. Dropping an
// endpoint is a bug and panics.
func (b *Buffer) Drop(e *Entry) (prev, next *Entry) {
	if e.prev == nil || e.next == nil {
		panic("buffer: Drop on an endpoint")
	}
	prev, next = e.prev, e.next
	if e.heapPos >= 0 {
		b.heapRemove(e.heapPos)
	}
	prev.next = next
	next.prev = prev
	e.prev, e.next = nil, nil
	b.size--
	return prev, next
}

// RemoveTail detaches and returns the tail entry, used by the skip actions
// of RLTS-Skip to un-append a point that was tentatively inserted for state
// construction. The former predecessor becomes the tail again; if it
// carries a (now possibly stale) value it stays in the heap — the
// simplification loop recomputes it on the next scan before any state is
// built. Removing the only entry is a bug and panics.
func (b *Buffer) RemoveTail() *Entry {
	e := b.tail
	if e == nil || e.prev == nil {
		panic("buffer: RemoveTail on empty or single-entry buffer")
	}
	if e.heapPos >= 0 {
		b.heapRemove(e.heapPos)
	}
	b.tail = e.prev
	b.tail.next = nil
	e.prev = nil
	b.size--
	return e
}

// Min returns the droppable entry with the lowest value, or nil when no
// entry is droppable.
func (b *Buffer) Min() *Entry {
	if len(b.heap) == 0 {
		return nil
	}
	return b.heap[0]
}

// KLowest returns the k droppable entries with the lowest values in
// ascending order (fewer if the heap is smaller). The cost is
// O(k log W) using a bounded frontier walk over the heap array, leaving
// the heap untouched.
//
// The returned slice is backed by a buffer-owned scratch array: it is only
// valid until the next KLowest call on this buffer. Every caller in this
// repository consumes it (builds a state vector or picks an entry) before
// calling again; copy it if you need to hold on to it.
func (b *Buffer) KLowest(k int) []*Entry {
	if k > len(b.heap) {
		k = len(b.heap)
	}
	if k == 0 {
		return nil
	}
	out := b.kout[:0]
	// Frontier of heap positions ordered by value; the heap property
	// guarantees the next smallest is always on the frontier.
	frontier := append(b.kfrontier[:0], 0)
	for len(out) < k {
		// Extract the frontier element with the smallest value.
		bi := 0
		for i := 1; i < len(frontier); i++ {
			if b.heap[frontier[i]].value < b.heap[frontier[bi]].value {
				bi = i
			}
		}
		pos := frontier[bi]
		frontier = append(frontier[:bi], frontier[bi+1:]...)
		out = append(out, b.heap[pos])
		if l := 2*pos + 1; l < len(b.heap) {
			frontier = append(frontier, l)
		}
		if r := 2*pos + 2; r < len(b.heap) {
			frontier = append(frontier, r)
		}
	}
	b.kout, b.kfrontier = out, frontier
	return out
}

// Points returns the buffered points in trajectory order.
func (b *Buffer) Points() []geo.Point {
	out := make([]geo.Point, 0, b.size)
	for e := b.head; e != nil; e = e.next {
		out = append(out, e.P)
	}
	return out
}

// Indices returns the original indices of the buffered points in order.
func (b *Buffer) Indices() []int {
	out := make([]int, 0, b.size)
	for e := b.head; e != nil; e = e.next {
		out = append(out, e.Index)
	}
	return out
}

// checkInvariants verifies list and heap consistency; used by tests.
func (b *Buffer) checkInvariants() error {
	n := 0
	for e := b.head; e != nil; e = e.next {
		if e.next != nil && e.next.prev != e {
			return fmt.Errorf("buffer: broken links at index %d", e.Index)
		}
		n++
	}
	if n != b.size {
		return fmt.Errorf("buffer: size %d, list length %d", b.size, n)
	}
	for i, e := range b.heap {
		if e.heapPos != i {
			return fmt.Errorf("buffer: heapPos mismatch at %d", i)
		}
		if l := 2*i + 1; l < len(b.heap) && b.heap[l].value < e.value {
			return fmt.Errorf("buffer: heap violated at %d (left)", i)
		}
		if r := 2*i + 2; r < len(b.heap) && b.heap[r].value < e.value {
			return fmt.Errorf("buffer: heap violated at %d (right)", i)
		}
	}
	return nil
}

func (b *Buffer) siftUp(i int) {
	e := b.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if b.heap[parent].value <= e.value {
			break
		}
		b.heap[i] = b.heap[parent]
		b.heap[i].heapPos = i
		i = parent
	}
	b.heap[i] = e
	e.heapPos = i
}

func (b *Buffer) siftDown(i int) {
	e := b.heap[i]
	n := len(b.heap)
	for {
		small := i
		l, r := 2*i+1, 2*i+2
		sv := e.value
		if l < n && b.heap[l].value < sv {
			small, sv = l, b.heap[l].value
		}
		if r < n && b.heap[r].value < sv {
			small = r
		}
		if small == i {
			break
		}
		b.heap[i] = b.heap[small]
		b.heap[i].heapPos = i
		i = small
	}
	b.heap[i] = e
	e.heapPos = i
}

func (b *Buffer) heapRemove(pos int) {
	last := len(b.heap) - 1
	removed := b.heap[pos]
	removed.heapPos = -1
	if pos == last {
		b.heap = b.heap[:last]
		return
	}
	moved := b.heap[last]
	b.heap[pos] = moved
	moved.heapPos = pos
	b.heap = b.heap[:last]
	// The moved element may violate either direction.
	b.siftDown(pos)
	b.siftUp(moved.heapPos)
}
