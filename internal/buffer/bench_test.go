package buffer

import (
	"math/rand"
	"testing"

	"rlts/internal/geo"
)

// BenchmarkDropInsertCycle measures one full online-mode buffer cycle at
// budget W: append a point, value the previous tail, drop the minimum and
// repair both neighbours — the O(log W) loop body of every scanning
// algorithm.
func BenchmarkDropInsertCycle(b *testing.B) {
	for _, w := range []int{64, 1024, 16384} {
		b.Run(itoa(w), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			buf := New(w + 1)
			for i := 0; i < w; i++ {
				buf.Append(i, geo.Pt(r.Float64(), r.Float64(), float64(i)))
			}
			for e := buf.Head().Next(); e != buf.Tail(); e = e.Next() {
				buf.SetValue(e, r.Float64())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				old := buf.Tail()
				buf.Append(w+i, geo.Pt(r.Float64(), r.Float64(), float64(w+i)))
				buf.SetValue(old, r.Float64())
				d := buf.Min()
				prev, next := buf.Drop(d)
				if prev.Prev() != nil {
					buf.SetValue(prev, r.Float64())
				}
				if next.Next() != nil {
					buf.SetValue(next, r.Float64())
				}
			}
		})
	}
}

// BenchmarkKLowest measures the state-construction cost for the paper's
// default k=3.
func BenchmarkKLowest(b *testing.B) {
	for _, w := range []int{64, 1024, 16384} {
		b.Run(itoa(w), func(b *testing.B) {
			r := rand.New(rand.NewSource(2))
			buf := New(w)
			for i := 0; i < w; i++ {
				buf.Append(i, geo.Pt(r.Float64(), r.Float64(), float64(i)))
			}
			for e := buf.Head().Next(); e != buf.Tail(); e = e.Next() {
				buf.SetValue(e, r.Float64())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := buf.KLowest(3); len(got) != 3 {
					b.Fatal("wrong k")
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return "W" + string(buf[i:])
}
