package buffer

import (
	"fmt"

	"rlts/internal/geo"
)

// EntryState is the serializable form of one buffered entry. Together
// with its position in the Export slice (which records list order) it
// captures everything about the entry: the original trajectory index,
// the point, the drop value and the exact slot in the value heap.
//
// HeapPos must be preserved verbatim, not recomputed: a heap's internal
// arrangement depends on its insertion/removal history, and KLowest
// breaks value ties by heap layout. Restoring values into a freshly
// built heap would be order-equivalent but not layout-identical, and a
// simplification policy consuming KLowest output could then diverge
// from the never-serialized run on tied values.
type EntryState struct {
	Index   int
	P       geo.Point
	Value   float64
	HeapPos int // slot in the value heap, -1 if not droppable
}

// Export captures the buffer's full internal state: entries in list
// order, each with its heap slot. The result round-trips through
// Restore to a buffer that behaves bit-identically to the original
// under every operation.
func (b *Buffer) Export() []EntryState {
	out := make([]EntryState, 0, b.size)
	for e := b.head; e != nil; e = e.next {
		out = append(out, EntryState{Index: e.Index, P: e.P, Value: e.value, HeapPos: e.heapPos})
	}
	return out
}

// Restore rebuilds a buffer from an Export dump. It validates the dump
// fully before committing — heap slots must form a permutation of
// 0..h-1, the head must not be droppable, and the min-heap property
// must hold — so a corrupted dump yields an error, never a buffer that
// panics or misbehaves later.
func Restore(entries []EntryState, capHint int) (*Buffer, error) {
	if capHint < len(entries) {
		capHint = len(entries)
	}
	// Count heap members and bounds-check slots first.
	heapLen := 0
	for i, es := range entries {
		if es.HeapPos >= 0 {
			heapLen++
			if i == 0 {
				return nil, fmt.Errorf("buffer: restore: head entry claims heap slot %d", es.HeapPos)
			}
		} else if es.HeapPos != -1 {
			return nil, fmt.Errorf("buffer: restore: entry %d has heap slot %d (want >= -1)", i, es.HeapPos)
		}
	}
	b := &Buffer{heap: make([]*Entry, heapLen, capHint)}
	for i, es := range entries {
		e := &Entry{Index: es.Index, P: es.P, value: es.Value, heapPos: es.HeapPos}
		if b.tail == nil {
			b.head, b.tail = e, e
		} else {
			e.prev = b.tail
			b.tail.next = e
			b.tail = e
		}
		b.size++
		if es.HeapPos >= 0 {
			if es.HeapPos >= heapLen {
				return nil, fmt.Errorf("buffer: restore: entry %d heap slot %d out of range (heap size %d)", i, es.HeapPos, heapLen)
			}
			if b.heap[es.HeapPos] != nil {
				return nil, fmt.Errorf("buffer: restore: duplicate heap slot %d", es.HeapPos)
			}
			b.heap[es.HeapPos] = e
		}
	}
	// The per-slot occupancy check above plus matching counts make the
	// slots a permutation; verify the heap ordering invariant on values.
	for i, e := range b.heap {
		if l := 2*i + 1; l < heapLen && b.heap[l].value < e.value {
			return nil, fmt.Errorf("buffer: restore: heap property violated at slot %d (left child)", i)
		}
		if r := 2*i + 2; r < heapLen && b.heap[r].value < e.value {
			return nil, fmt.Errorf("buffer: restore: heap property violated at slot %d (right child)", i)
		}
	}
	return b, nil
}
