package buffer

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rlts/internal/geo"
)

func fill(b *Buffer, n int) []*Entry {
	es := make([]*Entry, n)
	for i := 0; i < n; i++ {
		es[i] = b.Append(i, geo.Pt(float64(i), 0, float64(i)))
	}
	return es
}

func TestAppendOrder(t *testing.T) {
	b := New(8)
	fill(b, 5)
	if b.Size() != 5 {
		t.Fatalf("Size = %d, want 5", b.Size())
	}
	idx := b.Indices()
	for i, ix := range idx {
		if ix != i {
			t.Fatalf("Indices = %v", idx)
		}
	}
	if b.Head().Index != 0 || b.Tail().Index != 4 {
		t.Error("head/tail wrong")
	}
	if err := b.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSetValueAndMin(t *testing.T) {
	b := New(8)
	es := fill(b, 6)
	vals := []float64{0, 5, 3, 8, 1, 0} // endpoints unused
	for i := 1; i <= 4; i++ {
		b.SetValue(es[i], vals[i])
	}
	if b.Droppable() != 4 {
		t.Fatalf("Droppable = %d, want 4", b.Droppable())
	}
	if m := b.Min(); m != es[4] {
		t.Errorf("Min = index %d, want 4", m.Index)
	}
	// Lowering a value must float it to the top.
	b.SetValue(es[3], 0.5)
	if m := b.Min(); m != es[3] {
		t.Errorf("Min after update = index %d, want 3", m.Index)
	}
	// Raising it must sink it again.
	b.SetValue(es[3], 99)
	if m := b.Min(); m != es[4] {
		t.Errorf("Min after raise = index %d, want 4", m.Index)
	}
	if err := b.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSetValueEndpointPanics(t *testing.T) {
	b := New(4)
	es := fill(b, 3)
	for _, e := range []*Entry{es[0], es[2]} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetValue on endpoint %d did not panic", e.Index)
				}
			}()
			b.SetValue(e, 1)
		}()
	}
}

func TestDrop(t *testing.T) {
	b := New(8)
	es := fill(b, 5)
	for i := 1; i <= 3; i++ {
		b.SetValue(es[i], float64(i))
	}
	prev, next := b.Drop(es[2])
	if prev != es[1] || next != es[3] {
		t.Error("Drop neighbours wrong")
	}
	if b.Size() != 4 || b.Droppable() != 2 {
		t.Errorf("Size=%d Droppable=%d", b.Size(), b.Droppable())
	}
	if es[2].InHeap() {
		t.Error("dropped entry still in heap")
	}
	want := []int{0, 1, 3, 4}
	for i, ix := range b.Indices() {
		if ix != want[i] {
			t.Fatalf("Indices = %v, want %v", b.Indices(), want)
		}
	}
	if err := b.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDropEndpointPanics(t *testing.T) {
	b := New(4)
	es := fill(b, 3)
	for _, e := range []*Entry{es[0], es[2]} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Drop endpoint did not panic")
				}
			}()
			b.Drop(e)
		}()
	}
}

func TestKLowest(t *testing.T) {
	b := New(16)
	es := fill(b, 10)
	vals := []float64{0, 7, 2, 9, 4, 1, 8, 3, 5, 0}
	for i := 1; i <= 8; i++ {
		b.SetValue(es[i], vals[i])
	}
	got := b.KLowest(3)
	if len(got) != 3 {
		t.Fatalf("KLowest len = %d", len(got))
	}
	wantVals := []float64{1, 2, 3}
	for i, e := range got {
		if e.Value() != wantVals[i] {
			t.Fatalf("KLowest vals = [%v %v %v], want %v",
				got[0].Value(), got[1].Value(), got[2].Value(), wantVals)
		}
	}
	// Requesting more than droppable truncates.
	if len(b.KLowest(99)) != 8 {
		t.Errorf("KLowest(99) len = %d, want 8", len(b.KLowest(99)))
	}
	if b.KLowest(0) != nil {
		t.Error("KLowest(0) should be nil")
	}
	// KLowest must not disturb the heap.
	if err := b.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoveTail(t *testing.T) {
	b := New(8)
	es := fill(b, 5)
	for i := 1; i <= 3; i++ {
		b.SetValue(es[i], float64(i))
	}
	got := b.RemoveTail()
	if got != es[4] || b.Size() != 4 || b.Tail() != es[3] {
		t.Errorf("RemoveTail: got index %d, size %d, tail %d", got.Index, b.Size(), b.Tail().Index)
	}
	// es[3] had a value; it must remain in the heap even though it is now
	// the tail (recomputed by the caller before the next state build).
	if !es[3].InHeap() {
		t.Error("new tail lost its heap slot")
	}
	// Removing a valued tail must also clear it from the heap.
	got = b.RemoveTail()
	if got != es[3] || es[3].InHeap() {
		t.Error("valued tail not removed from heap")
	}
	if err := b.checkInvariants(); err != nil {
		t.Error(err)
	}
	b.RemoveTail()
	b.RemoveTail()
	defer func() {
		if recover() == nil {
			t.Error("RemoveTail on single entry did not panic")
		}
	}()
	b.RemoveTail()
}

func TestPoints(t *testing.T) {
	b := New(4)
	fill(b, 3)
	ps := b.Points()
	if len(ps) != 3 || ps[1].X != 1 {
		t.Errorf("Points = %v", ps)
	}
}

func TestRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := New(32)
		var live []*Entry
		next := 0
		for op := 0; op < 300; op++ {
			switch {
			case len(live) < 3 || r.Intn(3) > 0:
				e := b.Append(next, geo.Pt(r.Float64(), r.Float64(), float64(next)))
				next++
				live = append(live, e)
				// The previous tail just became interior: give it a value.
				if len(live) >= 2 {
					in := live[len(live)-2]
					if in.Prev() != nil && in.Next() != nil {
						b.SetValue(in, r.Float64()*100)
					}
				}
			default:
				// Drop a random interior entry.
				i := 1 + r.Intn(len(live)-2)
				b.Drop(live[i])
				live = append(live[:i], live[i+1:]...)
				// Repair neighbour values as an algorithm would.
				for _, nb := range []*Entry{live[i-1], live[i]} {
					if nb.Prev() != nil && nb.Next() != nil {
						b.SetValue(nb, r.Float64()*100)
					}
				}
			}
			if err := b.checkInvariants(); err != nil {
				return false
			}
			// KLowest(4) must agree with a sort of all droppable values.
			k := b.KLowest(4)
			var all []float64
			for _, e := range b.heap {
				all = append(all, e.Value())
			}
			sort.Float64s(all)
			for i, e := range k {
				if e.Value() != all[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
